// Algorithm 4.6: coordinator-led delicate reconfiguration. The coordinator
// alone decides (needDelicateReconf()) once the whole view acknowledged the
// suspension; recMA's line-16/17 trigger is replaced by the direct call.
#include <gtest/gtest.h>

#include <deque>

#include "harness/monitors.hpp"
#include "harness/world.hpp"

namespace ssr::harness {
namespace {

struct Workload {
  std::map<NodeId, std::deque<wire::Bytes>> pending;
  void attach(World& w, NodeId id) {
    w.node(id).set_fetch([this, id]() -> std::optional<wire::Bytes> {
      auto& q = pending[id];
      if (q.empty()) return std::nullopt;
      wire::Bytes cmd = q.front();
      q.pop_front();
      return cmd;
    });
  }
};

const vs::KvStateMachine& kv(World& w, NodeId id) {
  return static_cast<const vs::KvStateMachine&>(
      const_cast<const vs::StateMachine&>(w.node(id).vs()->state_machine()));
}

// "Absorb new participants" policy: reconfigure whenever the participant
// set outgrew the configuration. This is the natural application policy for
// coordinator-led reconfiguration (the proposal set is the participants).
void absorb_policy(World& w, NodeId id) {
  auto& n = w.node(id);
  n.set_eval_conf([&n](const IdSet& cfg) {
    return !(n.recsa().participants() == cfg) &&
           !n.recsa().participants().empty();
  });
}

TEST(CoordinatorReconf, AbsorbsJoinerThroughSuspension) {
  WorldConfig cfg;
  cfg.seed = 601;
  cfg.node.enable_vs = true;
  World w(cfg);
  for (NodeId id = 1; id <= 3; ++id) w.add_node(id);
  ASSERT_TRUE(w.run_until_converged(300 * kSec).has_value());
  ASSERT_TRUE(w.run_until_vs_stable(900 * kSec).has_value());
  for (NodeId id = 1; id <= 3; ++id) absorb_policy(w, id);

  Workload load;
  for (NodeId id = 1; id <= 3; ++id) load.attach(w, id);
  load.pending[1].push_back(vs::KvStateMachine::set_cmd("pre", "reconf"));
  w.run_for(60 * kSec);
  ASSERT_EQ(*w.common_config(), (IdSet{1, 2, 3}));

  // A joiner arrives; once it is a participant, the coordinator's policy
  // fires: suspend → needDelicateReconf() → estab(participants).
  w.add_node(4);
  absorb_policy(w, 4);
  load.attach(w, 4);
  const SimTime deadline = w.scheduler().now() + 1800 * kSec;
  bool absorbed = false;
  while (!absorbed && w.scheduler().now() < deadline) {
    w.run_for(100 * kMsec);
    auto c = w.common_config();
    absorbed = c && c->contains(4) && w.vs_stable();
  }
  ASSERT_TRUE(absorbed) << "coordinator never reconfigured to absorb p4";

  // The replica state survived the coordinator-led reconfiguration
  // (Theorem 4.13) and the joiner received it through its view.
  for (NodeId id = 1; id <= 4; ++id) {
    const auto& data = kv(w, id).data();
    auto it = data.find("pre");
    ASSERT_NE(it, data.end()) << id;
    EXPECT_EQ(it->second, "reconf") << id;
  }
  // Service resumed: suspension lifted, new commands flow.
  load.pending[4].push_back(vs::KvStateMachine::set_cmd("post", "resumed"));
  w.run_for(120 * kSec);
  for (NodeId id = 1; id <= 4; ++id) {
    const auto& data = kv(w, id).data();
    auto it = data.find("post");
    ASSERT_NE(it, data.end()) << id;
  }
  EXPECT_FALSE(w.node(1).vs()->suspended());
}

// With a quiet prediction function the coordinator must never suspend or
// reconfigure (the closure side of Algorithm 4.6).
TEST(CoordinatorReconf, NoSuspensionWithoutPolicy) {
  WorldConfig cfg;
  cfg.seed = 603;
  cfg.node.enable_vs = true;
  World w(cfg);
  for (NodeId id = 1; id <= 3; ++id) w.add_node(id);
  ASSERT_TRUE(w.run_until_converged(300 * kSec).has_value());
  ASSERT_TRUE(w.run_until_vs_stable(900 * kSec).has_value());
  ConfigHistoryMonitor monitor;
  monitor.attach(w);
  w.run_for(180 * kSec);
  EXPECT_EQ(monitor.events().size(), 0u);
  std::uint64_t suspensions = 0;
  for (NodeId id = 1; id <= 3; ++id) {
    suspensions += w.node(id).vs()->stats().suspensions;
  }
  EXPECT_EQ(suspensions, 0u);
}

}  // namespace
}  // namespace ssr::harness
