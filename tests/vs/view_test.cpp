#include "vs/view.hpp"

#include <gtest/gtest.h>

#include "vs/vs_smr.hpp"

namespace ssr::vs {
namespace {

Counter mk_counter(NodeId creator, std::uint64_t seqn, NodeId wid) {
  Counter c;
  c.lbl.creator = creator;
  c.lbl.sting = 1;
  c.seqn = seqn;
  c.wid = wid;
  return c;
}

TEST(View, DefaultIsNull) {
  View v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.proposer(), kNoNode);
}

TEST(View, NullBelowEveryRealView) {
  View null_view;
  View real{mk_counter(1, 0, 1), IdSet{1}};
  EXPECT_TRUE(View::id_less(null_view, real));
  EXPECT_FALSE(View::id_less(real, null_view));
  EXPECT_FALSE(View::id_less(null_view, null_view));
}

TEST(View, IdOrderFollowsCounters) {
  View a{mk_counter(1, 3, 1), IdSet{1, 2}};
  View b{mk_counter(1, 4, 2), IdSet{1, 2}};
  EXPECT_TRUE(View::id_less(a, b));
  EXPECT_FALSE(View::id_less(b, a));
}

TEST(View, ProposerIsCounterWriter) {
  View v{mk_counter(1, 3, 7), IdSet{1, 7}};
  EXPECT_EQ(v.proposer(), 7u);
}

TEST(View, Roundtrip) {
  View v{mk_counter(2, 9, 3), IdSet{1, 2, 3}};
  wire::Writer w;
  v.encode(w);
  wire::Reader r(w.data());
  auto decoded = View::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, v);
}

TEST(VSRecordWire, FullRoundtrip) {
  VSRecord rec;
  rec.view = View{mk_counter(1, 5, 2), IdSet{1, 2, 3}};
  rec.status = Status::kPropose;
  rec.rnd = 42;
  rec.replica = wire::Bytes{1, 2, 3};
  rec.msgs = {{1, wire::Bytes{9}}, {2, wire::Bytes{}}};
  rec.input = wire::Bytes{7, 7};
  rec.prop_view = View{mk_counter(1, 6, 3), IdSet{1, 3}};
  rec.no_crd = true;
  rec.suspend = true;
  rec.crd = 3;
  auto decoded = VSRecord::decode(rec.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->view, rec.view);
  EXPECT_EQ(decoded->status, rec.status);
  EXPECT_EQ(decoded->rnd, rec.rnd);
  EXPECT_EQ(decoded->replica, rec.replica);
  EXPECT_EQ(decoded->msgs, rec.msgs);
  EXPECT_EQ(decoded->input, rec.input);
  EXPECT_EQ(decoded->prop_view, rec.prop_view);
  EXPECT_EQ(decoded->no_crd, rec.no_crd);
  EXPECT_EQ(decoded->suspend, rec.suspend);
  EXPECT_EQ(decoded->crd, rec.crd);
}

TEST(VSRecordWire, GarbageRejected) {
  EXPECT_FALSE(VSRecord::decode({}).has_value());
  EXPECT_FALSE(VSRecord::decode({1, 2, 3, 4}).has_value());
}

TEST(VSRecordWire, InvalidStatusRejected) {
  VSRecord rec;
  wire::Bytes raw = rec.encode();
  // The status byte follows the view encoding; patch it to an illegal value
  // by brute force: flip bytes until decode fails *specifically* on status.
  // Simpler: encode manually with status 9.
  wire::Writer w;
  rec.view.encode(w);
  w.u8(9);  // invalid status
  wire::Reader probe(w.data());
  (void)probe;
  // Append the remainder of a valid record; decode must reject.
  VSRecord full;
  wire::Bytes tail = full.encode();
  // Locate status offset: encode view alone to find the prefix length.
  wire::Writer prefix;
  full.view.encode(prefix);
  wire::Bytes patched = full.encode();
  patched[prefix.data().size()] = 9;
  EXPECT_FALSE(VSRecord::decode(patched).has_value());
}

TEST(KvStateMachine, AppliesAndSnapshots) {
  KvStateMachine sm;
  sm.apply(1, KvStateMachine::set_cmd("a", "1"));
  sm.apply(2, KvStateMachine::set_cmd("b", "2"));
  sm.apply(1, KvStateMachine::del_cmd("a"));
  EXPECT_EQ(sm.data().size(), 1u);
  EXPECT_EQ(sm.data().at("b"), "2");

  KvStateMachine other;
  other.restore(sm.snapshot());
  EXPECT_EQ(other.data(), sm.data());
  EXPECT_EQ(other.digest(), sm.digest());
}

TEST(KvStateMachine, DigestIsOrderSensitive) {
  KvStateMachine a, b;
  a.apply(1, KvStateMachine::set_cmd("x", "1"));
  a.apply(1, KvStateMachine::set_cmd("x", "2"));
  b.apply(1, KvStateMachine::set_cmd("x", "2"));
  b.apply(1, KvStateMachine::set_cmd("x", "1"));
  EXPECT_EQ(a.data().at("x"), "2");
  EXPECT_EQ(b.data().at("x"), "1");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(KvStateMachine, MalformedSnapshotResets) {
  KvStateMachine sm;
  sm.apply(1, KvStateMachine::set_cmd("a", "1"));
  sm.restore(wire::Bytes{1, 2, 3});
  EXPECT_TRUE(sm.data().empty());
}

TEST(KvStateMachine, UnknownCommandIgnoredDeterministically) {
  KvStateMachine a, b;
  a.apply(1, wire::Bytes{99, 1, 2});
  b.apply(1, wire::Bytes{99, 1, 2});
  EXPECT_TRUE(a.data().empty());
  EXPECT_EQ(a.digest(), b.digest());  // still digested identically
}

}  // namespace
}  // namespace ssr::vs
