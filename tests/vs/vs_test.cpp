#include "vs/vs_smr.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "harness/monitors.hpp"
#include "harness/world.hpp"

namespace ssr::harness {
namespace {

WorldConfig vs_config(std::uint64_t seed) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = true;
  return cfg;
}

World& converge_vs(World& w, std::size_t n, SimTime budget = 600 * kSec) {
  for (NodeId id = 1; id <= n; ++id) w.add_node(id);
  EXPECT_TRUE(w.run_until_converged(180 * kSec).has_value());
  EXPECT_TRUE(w.run_until_vs_stable(budget).has_value());
  return w;
}

// Feeds each node a queue of commands through the fetch interface.
struct Workload {
  std::map<NodeId, std::deque<wire::Bytes>> pending;

  void attach(World& w, NodeId id) {
    w.node(id).set_fetch([this, id]() -> std::optional<wire::Bytes> {
      auto& q = pending[id];
      if (q.empty()) return std::nullopt;
      wire::Bytes cmd = q.front();
      q.pop_front();
      return cmd;
    });
  }
  void push(NodeId id, wire::Bytes cmd) { pending[id].push_back(std::move(cmd)); }
  bool drained() const {
    for (const auto& [id, q] : pending) {
      (void)id;
      if (!q.empty()) return false;
    }
    return true;
  }
};

const vs::KvStateMachine& kv_of(World& w, NodeId id) {
  return static_cast<const vs::KvStateMachine&>(
      const_cast<const vs::StateMachine&>(w.node(id).vs()->state_machine()));
}

bool kv_has(World& w, NodeId id, const std::string& key,
            const std::string& value) {
  const auto& data = kv_of(w, id).data();
  auto it = data.find(key);
  return it != data.end() && it->second == value;
}

// A coordinator is elected and one view with all participants installs.
TEST(VsSmr, ViewEstablishes) {
  World w(vs_config(111));
  converge_vs(w, 4);
  NodeId crd = w.node(1).vs()->coordinator();
  EXPECT_NE(crd, kNoNode);
  for (NodeId id = 1; id <= 4; ++id) {
    auto* v = w.node(id).vs();
    EXPECT_EQ(v->coordinator(), crd) << id;
    EXPECT_EQ(v->view().set, (IdSet{1, 2, 3, 4})) << id;
    EXPECT_EQ(v->status(), vs::Status::kMulticast) << id;
  }
}

// Multicast rounds deliver commands to every replica identically.
TEST(VsSmr, CommandsReplicateToAllNodes) {
  World w(vs_config(113));
  converge_vs(w, 3);
  Workload load;
  for (NodeId id = 1; id <= 3; ++id) load.attach(w, id);
  load.push(1, vs::KvStateMachine::set_cmd("a", "1"));
  load.push(2, vs::KvStateMachine::set_cmd("b", "2"));
  load.push(3, vs::KvStateMachine::set_cmd("c", "3"));
  w.run_for(120 * kSec);
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_TRUE(kv_has(w, id, "a", "1")) << id;
    EXPECT_TRUE(kv_has(w, id, "b", "2")) << id;
    EXPECT_TRUE(kv_has(w, id, "c", "3")) << id;
  }
  // Replica digests must be identical (same history applied).
  const std::uint64_t d = kv_of(w, 1).digest();
  EXPECT_EQ(kv_of(w, 2).digest(), d);
  EXPECT_EQ(kv_of(w, 3).digest(), d);
}

// The virtual synchrony property: processors delivering the same
// (view, round) deliver exactly the same message batch.
TEST(VsSmr, VirtualSynchronyHolds) {
  World w(vs_config(115));
  for (NodeId id = 1; id <= 4; ++id) w.add_node(id);
  VirtualSynchronyMonitor monitor;
  monitor.attach(w);
  ASSERT_TRUE(w.run_until_converged(180 * kSec).has_value());
  ASSERT_TRUE(w.run_until_vs_stable(600 * kSec).has_value());
  Workload load;
  for (NodeId id = 1; id <= 4; ++id) load.attach(w, id);
  for (int i = 0; i < 8; ++i) {
    load.push(1 + (i % 4),
              vs::KvStateMachine::set_cmd("k" + std::to_string(i), "v"));
  }
  w.run_for(180 * kSec);
  EXPECT_GT(monitor.deliveries(), 0u);
  EXPECT_EQ(monitor.mismatches(), 0u);
}

// Coordinator crash: a new view forms and the replica state is preserved
// (the paper's supportive-majority liveness argument).
TEST(VsSmr, CoordinatorCrashPreservesState) {
  World w(vs_config(117));
  converge_vs(w, 4);
  Workload load;
  for (NodeId id = 1; id <= 4; ++id) load.attach(w, id);
  load.push(1, vs::KvStateMachine::set_cmd("survives", "yes"));
  w.run_for(90 * kSec);
  const NodeId crd = w.node(1).vs()->coordinator();
  ASSERT_TRUE(kv_has(w, crd, "survives", "yes"));
  w.crash(crd);
  // A new view without the crashed coordinator must install.
  const SimTime deadline = w.scheduler().now() + 900 * kSec;
  bool new_view = false;
  while (w.scheduler().now() < deadline && !new_view) {
    w.run_for(50 * kMsec);
    new_view = true;
    for (NodeId id : w.alive()) {
      auto* v = w.node(id).vs();
      if (v->view().set.contains(crd) || v->no_coordinator() ||
          v->status() != vs::Status::kMulticast) {
        new_view = false;
        break;
      }
    }
  }
  ASSERT_TRUE(new_view) << "no post-crash view installed";
  for (NodeId id : w.alive()) {
    EXPECT_TRUE(kv_has(w, id, "survives", "yes")) << id;
  }
}

// A joiner is absorbed into the next view and receives the replica state.
TEST(VsSmr, JoinerReceivesStateThroughView) {
  World w(vs_config(119));
  converge_vs(w, 3);
  Workload load;
  for (NodeId id = 1; id <= 3; ++id) load.attach(w, id);
  load.push(2, vs::KvStateMachine::set_cmd("base", "state"));
  w.run_for(90 * kSec);
  auto& n4 = w.add_node(4);
  const SimTime deadline = w.scheduler().now() + 900 * kSec;
  bool in_view = false;
  while (w.scheduler().now() < deadline && !in_view) {
    w.run_for(50 * kMsec);
    in_view = n4.recsa().is_participant() && n4.vs() != nullptr &&
              n4.vs()->view().set.contains(4) &&
              n4.vs()->status() == vs::Status::kMulticast;
  }
  ASSERT_TRUE(in_view) << "joiner never entered a view";
  EXPECT_TRUE(kv_has(w, 4, "base", "state"));
}

}  // namespace
}  // namespace ssr::harness
