// Decoder fuzzing: every protocol decoder must survive arbitrary bytes —
// the channels may contain stale packets of any content after a transient
// fault (paper, Section 2), and 'survive' means: no crash, no acceptance of
// structurally invalid messages.
#include <gtest/gtest.h>

#include "counter/counter.hpp"
#include "dlink/frame.hpp"
#include "label/label.hpp"
#include "reconf/recsa.hpp"
#include "util/rng.hpp"
#include "vs/vs_smr.hpp"

namespace ssr {
namespace {

wire::Bytes random_bytes(Rng& rng, std::size_t max_len) {
  wire::Bytes out(rng.next_below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_u64());
  return out;
}

/// Mutates a valid encoding with a few byte flips — the adversarial middle
/// ground between valid and random input.
wire::Bytes mutate(Rng& rng, wire::Bytes valid) {
  if (valid.empty()) return valid;
  const std::size_t flips = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < flips; ++i) {
    valid[rng.next_below(valid.size())] ^=
        static_cast<std::uint8_t>(1u << rng.next_below(8));
  }
  return valid;
}

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, RandomBytesNeverCrashAnyDecoder) {
  Rng rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    const wire::Bytes junk = random_bytes(rng, 96);
    (void)dlink::Frame::decode(junk);
    (void)dlink::decode_bundle(junk);
    (void)reconf::RecSAMessage::decode(junk);
    (void)vs::VSRecord::decode(junk);
    {
      wire::Reader r(junk);
      (void)label::Label::decode(r);
    }
    {
      wire::Reader r(junk);
      (void)label::LabelPair::decode(r);
    }
    {
      wire::Reader r(junk);
      (void)counter::Counter::decode(r);
    }
    {
      wire::Reader r(junk);
      (void)counter::CounterPair::decode(r);
    }
    {
      wire::Reader r(junk);
      (void)reconf::ConfigValue::decode(r);
    }
  }
  SUCCEED();
}

TEST_P(DecoderFuzz, MutatedRecSAMessagesDecodeOrDropCleanly) {
  Rng rng(GetParam() * 3 + 1);
  reconf::RecSAMessage m;
  m.fd = IdSet{1, 2, 3};
  m.part = IdSet{1, 2};
  m.config = reconf::ConfigValue::set(IdSet{1, 2});
  m.prp = reconf::Notification::proposal(1, IdSet{2, 3});
  m.echo = reconf::EchoView{IdSet{1}, reconf::Notification::none(), true};
  const wire::Bytes valid = m.encode();
  for (int i = 0; i < 300; ++i) {
    auto decoded = reconf::RecSAMessage::decode(mutate(rng, valid));
    if (decoded) {
      // Accepted mutants must still be structurally sound (phases in range).
      EXPECT_LE(decoded->prp.phase, 2);
    }
  }
}

TEST_P(DecoderFuzz, MutatedVSRecordsDecodeOrDropCleanly) {
  Rng rng(GetParam() * 5 + 2);
  vs::VSRecord rec;
  rec.view.set = IdSet{1, 2};
  rec.msgs = {{1, wire::Bytes{1, 2}}};
  rec.replica = wire::Bytes{3, 4, 5};
  const wire::Bytes valid = rec.encode();
  for (int i = 0; i < 300; ++i) {
    auto decoded = vs::VSRecord::decode(mutate(rng, valid));
    if (decoded) {
      EXPECT_LE(static_cast<int>(decoded->status), 2);
    }
  }
}

TEST_P(DecoderFuzz, MutatedFramesDecodeOrDropCleanly) {
  Rng rng(GetParam() * 7 + 3);
  dlink::Frame f;
  f.kind = dlink::FrameKind::kData;
  f.link_sender = 3;
  f.label = 5;
  f.payload = wire::Bytes{1, 2, 3, 4};
  const wire::Bytes valid = f.encode();
  for (int i = 0; i < 300; ++i) {
    auto decoded = dlink::Frame::decode(mutate(rng, valid));
    if (decoded) {
      const int k = static_cast<int>(decoded->kind);
      EXPECT_GE(k, 1);
      EXPECT_LE(k, 4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz,
                         ::testing::Values(1001, 1002, 1003, 1004));

}  // namespace
}  // namespace ssr
