#include "wire/wire.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace ssr::wire {
namespace {

TEST(Wire, ScalarRoundtrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.boolean(true);
  w.boolean(false);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, IdSetRoundtrip) {
  Writer w;
  w.id_set(IdSet{7, 3, 100000});
  Reader r(w.data());
  EXPECT_EQ(r.id_set(), (IdSet{3, 7, 100000}));
  EXPECT_TRUE(r.ok());
}

TEST(Wire, EmptyIdSetRoundtrip) {
  Writer w;
  w.id_set(IdSet{});
  Reader r(w.data());
  EXPECT_EQ(r.id_set(), IdSet{});
  EXPECT_TRUE(r.ok());
}

TEST(Wire, BytesAndStringRoundtrip) {
  Writer w;
  w.bytes(Bytes{1, 2, 3});
  w.str("hello");
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(Wire, ReadPastEndFails) {
  Writer w;
  w.u16(1);
  Reader r(w.data());
  r.u32();  // longer than the buffer
  EXPECT_FALSE(r.ok());
}

TEST(Wire, FailureIsSticky) {
  Writer w;
  w.u8(1);
  Reader r(w.data());
  r.u64();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // still failing, returns default
  EXPECT_FALSE(r.ok());
}

TEST(Wire, CorruptedBoolFlagged) {
  Bytes raw{7};  // neither 0 nor 1
  Reader r(raw);
  r.boolean();
  EXPECT_FALSE(r.ok());
}

TEST(Wire, TruncatedBytesLengthFails) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow — they do not
  Reader r(w.data());
  r.bytes();
  EXPECT_FALSE(r.ok());
}

TEST(Wire, ExhaustedDetectsTrailingGarbage) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_FALSE(r.exhausted());
  r.u8();
  EXPECT_TRUE(r.exhausted());
}

// Decoding arbitrary garbage must never crash — the fuzz sweep feeds random
// buffers through every accessor.
TEST(Wire, RandomGarbageNeverCrashes) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    Bytes junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    Reader r(junk);
    r.u8();
    r.id_set();
    r.bytes();
    r.u64();
    r.str();
    // ok() may be anything; the point is memory safety.
  }
  SUCCEED();
}

// --- BufferPool -------------------------------------------------------------

TEST(BufferPool, RecyclesCapacity) {
  BufferPool& pool = BufferPool::local();
  Bytes b = pool.acquire();
  b.reserve(512);
  const auto* data = b.data();
  pool.release(std::move(b));
  // LIFO freelist: the very next acquire returns the same allocation,
  // cleared but with capacity intact.
  Bytes again = pool.acquire();
  EXPECT_EQ(again.data(), data);
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), 512u);
  pool.release(std::move(again));
}

TEST(BufferPool, DropsCapacityLessAndGiantBuffers) {
  BufferPool& pool = BufferPool::local();
  const auto before = pool.stats();
  pool.release(Bytes{});  // nothing to keep
  Bytes giant;
  giant.reserve(BufferPool::kMaxRetainedCapacity + 1);
  pool.release(std::move(giant));
  const auto after = pool.stats();
  EXPECT_EQ(after.dropped - before.dropped, 2u);
  EXPECT_EQ(after.released - before.released, 0u);
}

TEST(BufferPool, WriterTakeHandsBufferToCaller) {
  BufferPool& pool = BufferPool::local();
  Bytes taken;
  {
    Writer w;
    w.u32(0xFEEDFACE);
    taken = w.take();
  }  // dtor releases only the moved-from shell (dropped, not pooled)
  ASSERT_EQ(taken.size(), 4u);
  const auto before = pool.stats();
  pool.release(std::move(taken));
  EXPECT_EQ(pool.stats().released - before.released, 1u);
}

// An untaken Writer returns its buffer to the pool on destruction.
TEST(BufferPool, AbandonedWriterReturnsBuffer) {
  BufferPool& pool = BufferPool::local();
  const auto before = pool.stats();
  {
    Writer w;
    w.u64(42);  // forces a real allocation into the buffer
  }
  EXPECT_EQ(pool.stats().released - before.released, 1u);
}

}  // namespace
}  // namespace ssr::wire
