// Tests of the harness itself: the invariant monitors that every other
// suite and bench relies on, and whole-world determinism (same seed ⇒
// identical executions), which the reproducibility of every experiment
// depends on.
#include <gtest/gtest.h>

#include "harness/fault_injector.hpp"
#include "harness/monitors.hpp"
#include "harness/world.hpp"

namespace ssr::harness {
namespace {

counter::Counter mk_counter(NodeId creator, std::uint64_t seqn, NodeId wid) {
  counter::Counter c;
  c.lbl.creator = creator;
  c.lbl.sting = 1;
  c.seqn = seqn;
  c.wid = wid;
  return c;
}

TEST(CounterOrderMonitorTest, DetectsRealTimeViolations) {
  CounterOrderMonitor m;
  // op A finished at t=10, op B started at t=20 — B must be greater.
  m.record(0, 10, mk_counter(1, 5, 1));
  m.record(20, 30, mk_counter(1, 4, 1));  // smaller! violation
  EXPECT_EQ(m.completed(), 2u);
  EXPECT_EQ(m.violations(), 1u);
}

TEST(CounterOrderMonitorTest, ConcurrentOpsNotConstrained) {
  CounterOrderMonitor m;
  // Overlapping in time: no real-time order, no violation either way.
  m.record(0, 100, mk_counter(1, 5, 1));
  m.record(50, 60, mk_counter(1, 4, 1));
  EXPECT_EQ(m.violations(), 0u);
}

TEST(CounterOrderMonitorTest, OrderedOpsPass) {
  CounterOrderMonitor m;
  m.record(0, 10, mk_counter(1, 1, 1));
  m.record(20, 30, mk_counter(1, 2, 2));
  m.record(40, 50, mk_counter(2, 0, 1));  // bigger label
  EXPECT_EQ(m.violations(), 0u);
}

TEST(ConfigHistoryMonitorTest, CountsEventsSince) {
  WorldConfig cfg;
  cfg.seed = 71;
  cfg.node.enable_vs = false;
  World w(cfg);
  ConfigHistoryMonitor m;
  for (NodeId id = 1; id <= 3; ++id) w.add_node(id);
  m.attach(w);
  ASSERT_TRUE(w.run_until_converged(180 * kSec).has_value());
  EXPECT_GT(m.events().size(), 0u);  // bootstrap produced config changes
  const SimTime now = w.scheduler().now();
  w.run_for(60 * kSec);
  EXPECT_EQ(m.events_since(now), 0u);  // quiet afterwards
}

TEST(WorldTest, AliveTracksCrashes) {
  WorldConfig cfg;
  cfg.seed = 73;
  cfg.node.enable_vs = false;
  World w(cfg);
  for (NodeId id = 1; id <= 3; ++id) w.add_node(id);
  EXPECT_EQ(w.alive(), (IdSet{1, 2, 3}));
  w.crash(2);
  EXPECT_EQ(w.alive(), (IdSet{1, 3}));
  EXPECT_TRUE(w.node(2).crashed());
}

TEST(WorldTest, ConvergedFalseWhileDiverged) {
  WorldConfig cfg;
  cfg.seed = 75;
  cfg.node.enable_vs = false;
  World w(cfg);
  for (NodeId id = 1; id <= 4; ++id) w.add_node(id);
  ASSERT_TRUE(w.run_until_converged(180 * kSec).has_value());
  FaultInjector fi(w, 750);
  fi.split_config(IdSet{1, 2}, IdSet{3, 4});
  EXPECT_FALSE(w.converged());
  EXPECT_FALSE(w.common_config().has_value());
}

// Reproducibility: identical seeds produce byte-identical convergence
// behaviour — the foundation of every experiment in EXPERIMENTS.md.
TEST(WorldTest, SameSeedSameExecution) {
  auto run = [](std::uint64_t seed) {
    WorldConfig cfg;
    cfg.seed = seed;
    cfg.node.enable_vs = false;
    World w(cfg);
    ConfigHistoryMonitor m;
    for (NodeId id = 1; id <= 4; ++id) w.add_node(id);
    m.attach(w);
    w.run_for(90 * kSec);
    w.node(1).recsa().estab(IdSet{1, 2, 3});
    w.run_for(90 * kSec);
    std::vector<std::pair<SimTime, NodeId>> trace;
    for (const auto& e : m.events()) trace.emplace_back(e.when, e.node);
    return std::make_pair(trace, w.scheduler().events_executed());
  };
  const auto a = run(12345);
  const auto b = run(12345);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run(54321);
  EXPECT_NE(a.second, c.second);  // different seed, different execution
}

}  // namespace
}  // namespace ssr::harness
