#include <gtest/gtest.h>

#include "harness/fault_injector.hpp"
#include "harness/monitors.hpp"
#include "harness/world.hpp"
#include "scenario/runner.hpp"

namespace ssr::harness {
namespace {

WorldConfig stack_config(std::uint64_t seed, bool vs) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = vs;
  return cfg;
}

// Corrupted FD counts alone (no recSA damage) must not break the
// configuration: counts wash out as tokens keep flowing.
TEST(TransientFault, CorruptedFdCountsWashOut) {
  World w(stack_config(401, false));
  for (NodeId id = 1; id <= 4; ++id) w.add_node(id);
  ASSERT_TRUE(w.run_until_converged(180 * kSec).has_value());
  const IdSet before = *w.common_config();
  FaultInjector fi(w, 4010);
  fi.corrupt_all_fd();
  ASSERT_TRUE(w.run_until_converged(600 * kSec).has_value());
  // The configuration either survived or was re-formed over all survivors.
  auto after = *w.common_config();
  EXPECT_TRUE(after == before || after == w.alive());
}

// Byte-level corruption on the wire: decoders drop garbage; the system
// keeps running (memory safety + liveness under a noisy channel).
TEST(TransientFault, BitFlipsOnTheWire) {
  WorldConfig cfg = stack_config(403, false);
  cfg.channel.corrupt_probability = 0.02;  // 2% of packets get a flipped bit
  World w(cfg);
  for (NodeId id = 1; id <= 3; ++id) w.add_node(id);
  ASSERT_TRUE(w.run_until_converged(400 * kSec).has_value());
  w.run_for(120 * kSec);
  EXPECT_TRUE(w.converged());
}

// Full-stack corruption with the VS layer enabled: after recovery the SMR
// service re-stabilizes with one coordinator and identical replicas.
TEST(TransientFault, FullStackRecoveryWithVs) {
  World w(stack_config(405, true));
  for (NodeId id = 1; id <= 3; ++id) w.add_node(id);
  ASSERT_TRUE(w.run_until_converged(300 * kSec).has_value());
  ASSERT_TRUE(w.run_until_vs_stable(900 * kSec).has_value());
  FaultInjector fi(w, 4050);
  fi.corrupt_all_recsa();
  fi.corrupt_all_fd();
  fi.fill_channels_with_garbage(2);
  ASSERT_TRUE(w.run_until_converged(900 * kSec).has_value());
  ASSERT_TRUE(w.run_until_vs_stable(1800 * kSec).has_value());
  // One coordinator, one view, multicast running.
  const NodeId crd = w.node(1).vs()->coordinator();
  for (NodeId id : w.alive()) {
    EXPECT_EQ(w.node(id).vs()->coordinator(), crd);
    EXPECT_EQ(w.node(id).vs()->status(), vs::Status::kMulticast);
  }
}

// Planted near-exhausted counters (the classic transient fault of §4.1:
// "transient failures can immediately drive the counter to its maximal
// value") are cancelled and replaced by a fresh epoch.
TEST(TransientFault, PlantedExhaustedCounterRecovers) {
  WorldConfig cfg = stack_config(407, false);
  cfg.node.counter.exhaust_bound = 1ULL << 20;
  World w(cfg);
  for (NodeId id = 1; id <= 3; ++id) w.add_node(id);
  ASSERT_TRUE(w.run_until_converged(180 * kSec).has_value());
  w.run_for(60 * kSec);
  FaultInjector fi(w, 4070);
  fi.plant_exhausted_counter(2, (1ULL << 20) + 5);
  w.run_for(60 * kSec);
  // Increment must still work and return a non-exhausted counter.
  std::optional<counter::Counter> got;
  for (int attempt = 0; attempt < 20 && !got; ++attempt) {
    bool done = false;
    if (w.node(1).increment().begin([&](std::optional<counter::Counter> c) {
          got = c;
          done = true;
        })) {
      const SimTime deadline = w.scheduler().now() + 60 * kSec;
      while (!done && w.scheduler().now() < deadline) w.run_for(5 * kMsec);
    }
    if (!got) w.run_for(5 * kSec);
  }
  ASSERT_TRUE(got.has_value());
  EXPECT_LT(got->seqn, 1ULL << 20);
}

// The closure half of the main theorem at full stack: a healthy system with
// VS enabled shows zero configuration events over a long window. Migrated
// onto the scenario engine; the closure invariant plays the monitor's role
// and the VS monitor rides along for free.
TEST(TransientFault, FullStackClosure) {
  using scenario::Action;
  scenario::ScenarioSpec spec;
  spec.name = "full-stack-closure";
  spec.initial_nodes = 3;
  spec.enable_vs = true;
  spec.phases = {
      {"converge",
       {Action::await_converged(300 * kSec),
        Action::await_vs_stable(900 * kSec)}},
      {"closure", {Action::mark_stable(), Action::run_for(240 * kSec)}},
  };
  const scenario::ScenarioResult r = scenario::run_scenario(spec, 409);
  EXPECT_TRUE(r.ok) << r.summary();
}

}  // namespace
}  // namespace ssr::harness
