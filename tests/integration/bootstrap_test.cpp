#include <gtest/gtest.h>

#include "harness/monitors.hpp"
#include "harness/world.hpp"
#include "scenario/library.hpp"
#include "scenario/runner.hpp"

namespace ssr::harness {
namespace {

// A freshly booted system has no participants at all ("complete collapse"
// in the paper's terms): the joining mechanism seeds a brute-force reset and
// every active processor becomes a participant of one common configuration
// (Theorem 3.15 reached from the all-joiner state).
TEST(Bootstrap, FiveNodesConvergeToCommonConfig) {
  WorldConfig cfg;
  cfg.seed = 7;
  World w(cfg);
  for (NodeId id = 1; id <= 5; ++id) w.add_node(id);
  auto t = w.run_until_converged(120 * kSec);
  ASSERT_TRUE(t.has_value()) << "no convergence within the time budget";
  auto common = w.common_config();
  ASSERT_TRUE(common.has_value());
  EXPECT_EQ(*common, (IdSet{1, 2, 3, 4, 5}));
  for (NodeId id = 1; id <= 5; ++id) {
    EXPECT_TRUE(w.node(id).recsa().is_participant()) << id;
  }
}

TEST(Bootstrap, SingleNodeBootstraps) {
  WorldConfig cfg;
  cfg.seed = 11;
  World w(cfg);
  w.add_node(1);
  auto t = w.run_until_converged(120 * kSec);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*w.common_config(), IdSet{1});
}

// Closure (Theorem 3.16): once converged, a long execution without crashes
// or explicit requests never changes the configuration. Migrated onto the
// scenario engine: the library's `bootstrap` scenario converges, marks the
// stabilization point and lets the closure invariant watch the quiet window.
TEST(Bootstrap, ClosureNoSpuriousReconfigurations) {
  auto spec = scenario::find_scenario("bootstrap");
  ASSERT_TRUE(spec.has_value());
  const scenario::ScenarioResult r = scenario::run_scenario(*spec, 13);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_TRUE(r.violations.empty()) << r.summary();
}

}  // namespace
}  // namespace ssr::harness
