#include <gtest/gtest.h>

#include "harness/fault_injector.hpp"
#include "harness/monitors.hpp"
#include "harness/world.hpp"
#include "scenario/runner.hpp"

namespace ssr::harness {
namespace {

WorldConfig fast_config(std::uint64_t seed) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = false;
  return cfg;
}

// Sets the "replace on any suspected member" policy at a node.
void aggressive_policy(node::Node& n) {
  n.set_eval_conf([&n](const IdSet& cfg) {
    return cfg.intersection_size(n.failure_detector().trusted()) < cfg.size();
  });
}

bool await_config(World& w, const IdSet& expect, SimTime budget) {
  const SimTime deadline = w.scheduler().now() + budget;
  while (w.scheduler().now() < deadline) {
    auto c = w.common_config();
    if (c && *c == expect) return true;
    w.run_for(50 * kMsec);
  }
  auto c = w.common_config();
  return c && *c == expect;
}

// Rolling churn: joins and crashes interleave, the configuration follows
// the participation (the paper's motivating scenario from the intro).
TEST(Churn, RollingReplacementThroughJoinsAndCrashes) {
  World w(fast_config(201));
  for (NodeId id = 1; id <= 4; ++id) {
    aggressive_policy(w.add_node(id));
  }
  ASSERT_TRUE(w.run_until_converged(180 * kSec).has_value());

  NodeId next = 5;
  for (NodeId victim = 1; victim <= 3; ++victim, ++next) {
    aggressive_policy(w.add_node(next));
    // Wait for the join.
    const SimTime deadline = w.scheduler().now() + 600 * kSec;
    while (w.scheduler().now() < deadline &&
           !w.node(next).recsa().is_participant()) {
      w.run_for(50 * kMsec);
    }
    ASSERT_TRUE(w.node(next).recsa().is_participant()) << next;
    w.crash(victim);
    ASSERT_TRUE(await_config(w, w.alive(), 900 * kSec))
        << "wave " << victim << " did not restabilize";
  }
  EXPECT_EQ(*w.common_config(), (IdSet{4, 5, 6, 7}));
}

// A majority collapse of the configuration is recovered through recMA's
// brute trigger; surviving joiners are pulled in as participants.
TEST(Churn, MajorityCollapseWithJoinersRecovers) {
  World w(fast_config(203));
  for (NodeId id = 1; id <= 5; ++id) w.add_node(id);
  ASSERT_TRUE(w.run_until_converged(180 * kSec).has_value());
  // Two joiners arrive...
  w.add_node(6);
  w.add_node(7);
  w.run_for(150 * kSec);
  // ...then a majority of the old configuration dies at once.
  w.crash(1);
  w.crash(2);
  w.crash(3);
  ASSERT_TRUE(await_config(w, w.alive(), 1200 * kSec));
  EXPECT_TRUE(w.common_config()->contains(6));
  EXPECT_TRUE(w.common_config()->contains(7));
}

// The full configuration crashes; only joiners survive. The complete
// collapse path (participate() → ⊥ → brute force) re-forms the system.
TEST(Churn, TotalConfigurationLossRecoversFromJoiners) {
  World w(fast_config(205));
  for (NodeId id = 1; id <= 3; ++id) w.add_node(id);
  ASSERT_TRUE(w.run_until_converged(180 * kSec).has_value());
  // Two nodes join but are *denied* participation (application refuses), so
  // they stay pure joiners.
  for (NodeId id = 1; id <= 3; ++id) {
    w.node(id).set_pass_query([] { return false; });
  }
  w.add_node(4);
  w.add_node(5);
  w.run_for(60 * kSec);
  ASSERT_FALSE(w.node(4).recsa().is_participant());
  ASSERT_FALSE(w.node(5).recsa().is_participant());
  // The whole configuration dies.
  w.crash(1);
  w.crash(2);
  w.crash(3);
  ASSERT_TRUE(await_config(w, IdSet{4, 5}, 1200 * kSec));
  EXPECT_TRUE(w.node(4).recsa().is_participant());
  EXPECT_TRUE(w.node(5).recsa().is_participant());
}

// Transient faults during churn: corruption is injected mid-wave and the
// system still reaches a conflict-free configuration of the survivors.
// Migrated onto the scenario engine — the same shape as the hand-rolled
// original, expressed declaratively and checked by the invariant registry.
TEST(Churn, CorruptionDuringChurnStillConverges) {
  using scenario::Action;
  scenario::ScenarioSpec spec;
  spec.name = "corruption-during-churn";
  spec.initial_nodes = 5;
  spec.phases = {
      {"converge", {Action::await_converged(180 * kSec)}},
      {"storm",
       {Action::add_nodes(1),              // node 6 joins...
        Action::run_for(30 * kSec),        // ...and mid-join:
        Action::corrupt_recsa(),           // every recSA corrupted,
        Action::garbage_channels(2),       // channels stuffed,
        Action::crash({2})}},              // one member dies.
      {"recover", {Action::await_converged(1200 * kSec)}},
  };
  scenario::ScenarioRunner runner(spec, 207);
  const scenario::ScenarioResult r = runner.run();
  ASSERT_TRUE(r.ok) << r.summary();
  // Everyone alive ends as a participant of one configuration.
  World& w = runner.world();
  const auto common = w.common_config();
  ASSERT_TRUE(common.has_value());
  EXPECT_EQ(*common, w.alive());
}

// Long random soak: random joins, crashes and corruptions; after the storm
// the system must settle. Parameterized across seeds.
class ChurnSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSoak, SettlesAfterRandomStorm) {
  const std::uint64_t seed = GetParam();
  World w(fast_config(seed));
  Rng rng(seed * 7919);
  NodeId next_id = 6;
  for (NodeId id = 1; id <= 5; ++id) w.add_node(id);
  ASSERT_TRUE(w.run_until_converged(180 * kSec).has_value());
  FaultInjector fi(w, seed + 1);
  for (int event = 0; event < 6; ++event) {
    switch (rng.next_below(3)) {
      case 0:
        if (w.alive().size() < 9) w.add_node(next_id++);
        break;
      case 1: {
        // Crash someone, but never below 2 alive.
        const IdSet alive = w.alive();
        if (alive.size() > 2) {
          const auto victims = alive.values();
          w.crash(victims[rng.next_below(victims.size())]);
        }
        break;
      }
      case 2: {
        const IdSet alive = w.alive();
        const auto ids = alive.values();
        fi.corrupt_recsa(ids[rng.next_below(ids.size())]);
        break;
      }
    }
    w.run_for(rng.next_range(5, 40) * kSec);
  }
  auto t = w.run_until_converged(1800 * kSec);
  ASSERT_TRUE(t.has_value()) << "seed " << seed;
  // Conflict-free and service-capable: the configuration is proper and a
  // majority of its members is alive. (It need not equal the alive set —
  // with the quarter policy a single missing member legally stays in the
  // config, and joiners are participants, not members.)
  const IdSet cfg_now = *w.common_config();
  EXPECT_GT(cfg_now.intersection_size(w.alive()), cfg_now.size() / 2)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSoak,
                         ::testing::Values(301, 302, 303, 304));

}  // namespace
}  // namespace ssr::harness
