#include "counter/counter.hpp"

#include <gtest/gtest.h>

namespace ssr::counter {
namespace {

Label mk_label(NodeId creator, std::uint32_t sting) {
  Label l;
  l.creator = creator;
  l.sting = sting;
  return l;
}

Counter mk(NodeId creator, std::uint64_t seqn, NodeId wid) {
  return Counter{mk_label(creator, 1), seqn, wid};
}

TEST(Counter, OrderBySeqnWithinLabel) {
  EXPECT_TRUE(Counter::ct_less(mk(1, 5, 1), mk(1, 6, 1)));
  EXPECT_FALSE(Counter::ct_less(mk(1, 6, 1), mk(1, 5, 1)));
}

TEST(Counter, WidBreaksTies) {
  EXPECT_TRUE(Counter::ct_less(mk(1, 5, 1), mk(1, 5, 2)));
  EXPECT_FALSE(Counter::ct_less(mk(1, 5, 2), mk(1, 5, 1)));
}

TEST(Counter, LabelDominatesSeqn) {
  Counter small{mk_label(1, 1), 999, 9};
  Counter big{mk_label(2, 1), 0, 0};
  EXPECT_TRUE(Counter::ct_less(small, big));
}

TEST(Counter, StrictOrderIsIrreflexive) {
  Counter c = mk(1, 5, 1);
  EXPECT_FALSE(Counter::ct_less(c, c));
}

TEST(Counter, Roundtrip) {
  Counter c = mk(3, 77, 4);
  wire::Writer w;
  c.encode(w);
  wire::Reader r(w.data());
  auto decoded = Counter::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, c);
}

TEST(CounterPair, ExhaustionCancels) {
  CounterPair p = CounterPair::of(mk(1, 100, 1));
  EXPECT_FALSE(p.exhausted(1000));
  EXPECT_TRUE(p.exhausted(100));
  p.cancel_exhausted();
  EXPECT_FALSE(p.legit());
  EXPECT_TRUE(p.has_main());
}

TEST(CounterPair, MergeKeepsGreatestSameLabel) {
  CounterPair a = CounterPair::of(mk(1, 5, 1));
  CounterPair b = CounterPair::of(mk(1, 9, 2));
  EXPECT_EQ(a.merged_with(b).mct->seqn, 9u);
  EXPECT_EQ(b.merged_with(a).mct->seqn, 9u);
}

TEST(CounterPair, MergePrefersCancelled) {
  CounterPair a = CounterPair::of(mk(1, 5, 1));
  CounterPair b = a;
  b.cancel_exhausted();
  EXPECT_FALSE(a.merged_with(b).legit());
  EXPECT_FALSE(b.merged_with(a).legit());
}

TEST(CounterPair, SameMainComparesLabelOnly) {
  CounterPair a = CounterPair::of(mk(1, 5, 1));
  CounterPair b = CounterPair::of(mk(1, 50, 2));
  EXPECT_TRUE(a.same_main(b));
}

TEST(CounterPair, TotalLessUsesSeqn) {
  CounterPair a = CounterPair::of(mk(1, 5, 1));
  CounterPair b = CounterPair::of(mk(1, 6, 1));
  EXPECT_TRUE(CounterPair::total_less(a, b));
  EXPECT_FALSE(CounterPair::total_less(b, a));
}

TEST(CounterPair, Roundtrip) {
  CounterPair p = CounterPair::of(mk(2, 8, 3));
  p.cancel_with(mk_label(2, 9));
  wire::Writer w;
  p.encode(w);
  wire::Reader r(w.data());
  EXPECT_EQ(CounterPair::decode(r), p);
}

}  // namespace
}  // namespace ssr::counter
