// Unit tests of the counter store (Algorithm 4.2's receipt action over
// counter pairs, Algorithm 4.3's structures).
#include "counter/counter_store.hpp"

#include <gtest/gtest.h>

namespace ssr::counter {
namespace {

Label mk_label(NodeId creator, std::uint32_t sting,
               std::vector<std::uint32_t> anti = {}) {
  Label l;
  l.creator = creator;
  l.sting = sting;
  std::sort(anti.begin(), anti.end());
  l.antistings = std::move(anti);
  return l;
}

Counter mk(NodeId creator, std::uint32_t sting, std::uint64_t seqn,
           NodeId wid) {
  return Counter{mk_label(creator, sting), seqn, wid};
}

CounterStore make_store(NodeId self, const IdSet& members) {
  CounterStore s(self, label::StoreConfig{}, Rng(7));
  s.rebuild(members);
  return s;
}

TEST(CounterStore, MintsFreshEpochWhenEmpty) {
  auto s = make_store(1, IdSet{1, 2});
  s.refresh();
  ASSERT_TRUE(s.local_max().legit());
  EXPECT_EQ(s.local_max().creator(), 1u);
  EXPECT_EQ(s.local_max().mct->seqn, 0u);
  EXPECT_EQ(s.local_max().mct->wid, 1u);
}

TEST(CounterStore, AdoptsGreaterCounterSameLabel) {
  auto s = make_store(1, IdSet{1, 2});
  const Counter base = mk(2, 9, 3, 1);
  s.receipt(CounterPair::of(base), CounterPair::null(), 2);
  ASSERT_TRUE(s.local_max().legit());
  EXPECT_EQ(*s.local_max().mct, base);
  const Counter higher = mk(2, 9, 7, 2);
  s.receipt(CounterPair::of(higher), CounterPair::null(), 2);
  EXPECT_EQ(*s.local_max().mct, higher);
}

TEST(CounterStore, SameLabelQueueKeepsGreatest) {
  auto s = make_store(1, IdSet{1, 2});
  s.receipt(CounterPair::of(mk(2, 9, 3, 1)), CounterPair::null(), 2);
  s.receipt(CounterPair::of(mk(2, 9, 7, 2)), CounterPair::null(), 2);
  const auto* q = s.queue(2);
  ASSERT_NE(q, nullptr);
  int copies = 0;
  for (const auto& cp : *q) {
    if (cp.has_main() && cp.main() == mk_label(2, 9)) {
      ++copies;
      EXPECT_EQ(cp.mct->seqn, 7u);
    }
  }
  EXPECT_EQ(copies, 1);
}

TEST(CounterStore, CancelledEpochNotSelected) {
  auto s = make_store(1, IdSet{1, 2});
  CounterPair dead = CounterPair::of(mk(2, 9, 100, 2));
  dead.cancel_exhausted();
  s.receipt(dead, CounterPair::null(), 2);
  // No legit counter from 2 → a fresh own epoch is minted instead.
  ASSERT_TRUE(s.local_max().legit());
  EXPECT_EQ(s.local_max().creator(), 1u);
}

TEST(CounterStore, GreaterLabelWinsOverGreaterSeqn) {
  auto s = make_store(1, IdSet{1, 2, 3});
  s.receipt(CounterPair::of(mk(2, 5, 999, 2)), CounterPair::null(), 2);
  s.receipt(CounterPair::of(mk(3, 5, 1, 3)), CounterPair::null(), 3);
  ASSERT_TRUE(s.local_max().legit());
  EXPECT_EQ(s.local_max().creator(), 3u);  // creator order dominates
}

TEST(CounterStore, RebuildPurgesEverything) {
  auto s = make_store(1, IdSet{1, 2, 3});
  s.receipt(CounterPair::of(mk(3, 5, 10, 3)), CounterPair::null(), 3);
  s.rebuild(IdSet{1, 2});
  EXPECT_EQ(s.max_entry(3), nullptr);
  s.refresh();
  ASSERT_TRUE(s.local_max().legit());
  EXPECT_NE(s.local_max().creator(), 3u);
}

TEST(CounterStore, ForeignCreatorCleanedFromMax) {
  auto s = make_store(1, IdSet{1, 2});
  s.inject_max(2, CounterPair::of(mk(9, 5, 10, 9)));
  s.clean_max(IdSet{1, 2});
  const auto* e = s.max_entry(2);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->has_main());
}

// The same-creator epoch chain: a fresh mint dominates the cancelled one.
TEST(CounterStore, FreshEpochDominatesOwnCancelled) {
  auto s = make_store(2, IdSet{1, 2});
  s.refresh();
  const Counter first = *s.local_max().mct;
  // Exhaust the first epoch.
  CounterPair dead = s.local_max();
  dead.cancel_exhausted();
  s.inject_max(2, dead);
  s.refresh();
  ASSERT_TRUE(s.local_max().legit());
  const Counter second = *s.local_max().mct;
  EXPECT_TRUE(Counter::ct_less(first, second))
      << first.to_string() << " vs " << second.to_string();
}

}  // namespace
}  // namespace ssr::counter
