#include "counter/increment.hpp"

#include <gtest/gtest.h>

#include "harness/fault_injector.hpp"
#include "harness/monitors.hpp"
#include "harness/world.hpp"

namespace ssr::harness {
namespace {

WorldConfig fast_config(std::uint64_t seed) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = false;
  return cfg;
}

World& converge(World& w, std::size_t n) {
  for (NodeId id = 1; id <= n; ++id) w.add_node(id);
  EXPECT_TRUE(w.run_until_converged(180 * kSec).has_value());
  return w;
}

// Issues one increment from `id` and runs the world until it completes.
std::optional<counter::Counter> increment_once(World& w, NodeId id,
                                               SimTime timeout = 60 * kSec) {
  std::optional<counter::Counter> result;
  bool done = false;
  EXPECT_TRUE(w.node(id).increment().begin(
      [&](std::optional<counter::Counter> c) {
        result = c;
        done = true;
      }));
  const SimTime deadline = w.scheduler().now() + timeout;
  while (!done && w.scheduler().now() < deadline) w.run_for(5 * kMsec);
  EXPECT_TRUE(done);
  return result;
}

// Retries until an increment completes (aborts are legal transients).
counter::Counter increment_retry(World& w, NodeId id, int max_tries = 30) {
  for (int i = 0; i < max_tries; ++i) {
    auto c = increment_once(w, id);
    if (c) return *c;
    w.run_for(5 * kSec);
  }
  ADD_FAILURE() << "increment never completed at node " << id;
  return counter::Counter{};
}

// Theorem 4.6: sequential completed increments are strictly increasing.
TEST(Increment, SequentialIncrementsStrictlyIncrease) {
  World w(fast_config(91));
  converge(w, 3);
  w.run_for(60 * kSec);  // let the labels converge
  counter::Counter prev = increment_retry(w, 1);
  for (int i = 0; i < 10; ++i) {
    const NodeId who = 1 + (i % 3);
    counter::Counter next = increment_retry(w, who);
    EXPECT_TRUE(counter::Counter::ct_less(prev, next))
        << prev.to_string() << " vs " << next.to_string();
    prev = next;
  }
}

// Real-time ordered increments from different processors respect ≺ct
// (verified by the monitor across every ordered pair).
TEST(Increment, MonitorFindsNoOrderViolations) {
  World w(fast_config(93));
  converge(w, 4);
  w.run_for(60 * kSec);
  CounterOrderMonitor monitor;
  for (int i = 0; i < 12; ++i) {
    const NodeId who = 1 + (i % 4);
    const SimTime started = w.scheduler().now();
    auto c = increment_once(w, who);
    if (c) monitor.record(started, w.scheduler().now(), *c);
  }
  EXPECT_GE(monitor.completed(), 6u);
  EXPECT_EQ(monitor.violations(), 0u);
}

// A participant that is not a configuration member increments through
// Algorithm 4.5 (majority read, local max, majority write).
TEST(Increment, NonMemberParticipantIncrements) {
  World w(fast_config(95));
  converge(w, 3);
  auto& n4 = w.add_node(4);
  w.run_for(120 * kSec);
  ASSERT_TRUE(n4.recsa().is_participant());
  ASSERT_FALSE(w.common_config()->contains(4));
  counter::Counter before = increment_retry(w, 1);
  counter::Counter c4 = increment_retry(w, 4);
  EXPECT_TRUE(counter::Counter::ct_less(before, c4));
  counter::Counter after = increment_retry(w, 2);
  EXPECT_TRUE(counter::Counter::ct_less(c4, after));
}

// Exhausted epochs roll over: with a tiny bound the members mint a new
// label and the counter keeps increasing (paper §4.2).
TEST(Increment, ExhaustionStartsNewEpoch) {
  WorldConfig cfg = fast_config(97);
  cfg.node.counter.exhaust_bound = 6;
  World w(cfg);
  converge(w, 3);
  w.run_for(60 * kSec);
  counter::Counter prev = increment_retry(w, 1);
  for (int i = 0; i < 14; ++i) {
    counter::Counter next = increment_retry(w, 1 + (i % 3));
    EXPECT_TRUE(counter::Counter::ct_less(prev, next)) << i;
    EXPECT_LE(next.seqn, 6u);
    prev = next;
  }
  // At least one epoch change must have happened.
  std::uint64_t cancels = 0;
  for (NodeId id = 1; id <= 3; ++id) {
    cancels += w.node(id).counters().stats().exhaust_cancels;
  }
  EXPECT_GT(cancels, 0u);
}

// Increments abort (⊥) rather than block or corrupt during reconfigurations.
TEST(Increment, AbortsDuringReconfiguration) {
  World w(fast_config(99));
  converge(w, 4);
  w.run_for(60 * kSec);
  ASSERT_TRUE(w.node(1).recsa().estab(IdSet{1, 2, 3}));
  // Immediately issue an increment: it must abort, not hang.
  bool done = false;
  std::optional<counter::Counter> result;
  ASSERT_TRUE(w.node(2).increment().begin(
      [&](std::optional<counter::Counter> c) {
        result = c;
        done = true;
      }));
  const SimTime deadline = w.scheduler().now() + 120 * kSec;
  while (!done && w.scheduler().now() < deadline) w.run_for(5 * kMsec);
  ASSERT_TRUE(done);
  // (A fast completion before the notification spread is also legal; what
  // matters is no hang and continued order afterwards.)
  ASSERT_TRUE(w.run_until_converged(200 * kSec).has_value());
  counter::Counter a = increment_retry(w, 1);
  counter::Counter b = increment_retry(w, 2);
  EXPECT_TRUE(counter::Counter::ct_less(a, b));
}

// begin() while busy is rejected; the op completes independently.
TEST(Increment, RejectsOverlappingOps) {
  World w(fast_config(101));
  converge(w, 3);
  w.run_for(60 * kSec);
  bool done = false;
  ASSERT_TRUE(w.node(1).increment().begin(
      [&](std::optional<counter::Counter>) { done = true; }));
  EXPECT_FALSE(w.node(1).increment().begin(
      [&](std::optional<counter::Counter>) {}));
  const SimTime deadline = w.scheduler().now() + 60 * kSec;
  while (!done && w.scheduler().now() < deadline) w.run_for(5 * kMsec);
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace ssr::harness
