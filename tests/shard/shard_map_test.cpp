#include "shard/shard_map.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace ssr::shard {
namespace {

TEST(ShardMap, UniformCoversEveryShard) {
  for (std::uint32_t k : {1u, 2u, 3u, 4u, 7u}) {
    const ShardMap m = ShardMap::uniform(k);
    EXPECT_EQ(m.shard_count(), k);
    EXPECT_EQ(m.epoch(), 1u);
    std::uint32_t total = 0;
    for (ShardId s = 0; s < k; ++s) {
      const std::uint32_t owned = m.slots_owned(s);
      EXPECT_GE(owned, static_cast<std::uint32_t>(ShardMap::kSlots) / k)
          << "shard " << s << " of " << k;
      total += owned;
    }
    EXPECT_EQ(total, ShardMap::kSlots);
  }
}

// Determinism across processes and architectures: the key hash is defined
// byte-at-a-time (FNV-1a 64), so these values are constants of the
// algorithm, not of this build. If this test fails on any platform, routers
// on different hosts would disagree about key placement.
TEST(ShardMap, KeyHashIsAStableCrossPlatformConstant) {
  EXPECT_EQ(ShardMap::hash_key(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(ShardMap::hash_key("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(ShardMap::hash_key("counter:0"), ShardMap::hash_key("counter:0"));
  EXPECT_NE(ShardMap::hash_key("counter:0"), ShardMap::hash_key("counter:1"));
  // Slot projections of a few concrete workload keys, pinned.
  EXPECT_EQ(ShardMap::slot_for_key("counter:0"),
            ShardMap::hash_key("counter:0") % ShardMap::kSlots);
  const ShardMap m = ShardMap::uniform(4);
  for (int i = 0; i < 100; ++i) {
    const std::string key = "key:" + std::to_string(i);
    EXPECT_EQ(m.shard_for_key(key), m.shard_of_slot(ShardMap::slot_for_key(key)));
    EXPECT_LT(m.shard_for_key(key), 4u);
  }
}

TEST(ShardMap, WireRoundTrip) {
  const ShardMap m = ShardMap::uniform(5, 42).with_shard_added();
  wire::Writer w;
  m.encode(w);
  wire::Reader r(w.data());
  const auto back = ShardMap::decode(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(*back, m);
  EXPECT_EQ(back->epoch(), 43u);
  EXPECT_EQ(back->shard_count(), 6u);
}

TEST(ShardMap, DecodeRejectsCorruptMaps) {
  // Slot owned by a shard ≥ shard_count.
  wire::Writer w;
  w.u64(7);
  w.u32(2);
  for (std::size_t s = 0; s < ShardMap::kSlots; ++s) {
    w.u8(s == 10 ? 9 : 0);
  }
  wire::Reader r(w.data());
  EXPECT_FALSE(ShardMap::decode(r).has_value());

  // Zero shards.
  wire::Writer w2;
  w2.u64(7);
  w2.u32(0);
  for (std::size_t s = 0; s < ShardMap::kSlots; ++s) w2.u8(0);
  wire::Reader r2(w2.data());
  EXPECT_FALSE(ShardMap::decode(r2).has_value());

  // Truncated image.
  wire::Reader r3(wire::Bytes{1, 2, 3});
  EXPECT_FALSE(ShardMap::decode(r3).has_value());
}

// Minimal movement: growing K → K+1 moves only ~1/(K+1) of the slot space,
// and every slot that did not move to the new shard keeps its old owner.
TEST(ShardMap, AddingAShardMovesOnlyItsShare) {
  for (std::uint32_t k : {1u, 2u, 3u, 4u, 8u}) {
    const ShardMap before = ShardMap::uniform(k);
    const ShardMap after = before.with_shard_added();
    EXPECT_EQ(after.epoch(), before.epoch() + 1);
    EXPECT_EQ(after.shard_count(), k + 1);
    const std::uint32_t share =
        static_cast<std::uint32_t>(ShardMap::kSlots) / (k + 1);
    std::uint32_t moved = 0;
    for (std::uint32_t slot = 0; slot < ShardMap::kSlots; ++slot) {
      if (after.shard_of_slot(slot) != before.shard_of_slot(slot)) {
        ++moved;
        // Moved slots go to the new shard only — never shuffled between
        // surviving shards.
        EXPECT_EQ(after.shard_of_slot(slot), k);
      }
    }
    EXPECT_EQ(moved, share) << "k=" << k;
    EXPECT_EQ(after.slots_owned(k), share);
    // Load stays balanced: no survivor owns more than ceil plus one of the
    // even share.
    for (ShardId s = 0; s <= k; ++s) {
      EXPECT_LE(after.slots_owned(s),
                static_cast<std::uint32_t>(ShardMap::kSlots) / (k + 1) + 2);
    }
  }
}

TEST(ShardMap, GrowthIsDeterministic) {
  const ShardMap a = ShardMap::uniform(3).with_shard_added();
  const ShardMap b = ShardMap::uniform(3).with_shard_added();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_string(), b.to_string());
}

TEST(ShardMap, AtEpochRestampsOnly) {
  const ShardMap m = ShardMap::uniform(2, 5);
  const ShardMap n = m.at_epoch(9);
  EXPECT_EQ(n.epoch(), 9u);
  EXPECT_EQ(n.shard_count(), 2u);
  for (std::uint32_t slot = 0; slot < ShardMap::kSlots; ++slot) {
    EXPECT_EQ(n.shard_of_slot(slot), m.shard_of_slot(slot));
  }
}

}  // namespace
}  // namespace ssr::shard
