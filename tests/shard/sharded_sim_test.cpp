#include "shard/sharded_sim.hpp"

#include <gtest/gtest.h>

#include "shard/sharded_scenario.hpp"

namespace ssr::shard {
namespace {

TEST(ShardedSim, LibraryRunsClean) {
  ASSERT_GE(sharded_library().size(), 3u);
  for (const ShardedSpec& spec : sharded_library()) {
    const ShardedResult r = run_sharded_sim(spec, 7);
    EXPECT_TRUE(r.ok) << r.summary();
    EXPECT_EQ(r.per_shard.size(), spec.shards) << spec.name;
    EXPECT_EQ(r.ops_aborted_healthy, 0u) << r.summary();
    EXPECT_GT(r.ops_completed, 0u) << r.summary();
    for (const auto& shard : r.per_shard) {
      EXPECT_TRUE(shard.violations.empty())
          << spec.name << " " << shard.name;
    }
  }
}

// Same (spec, seed) ⇒ bit-identical per-shard executions: the K worlds run
// in deterministic lockstep and the router is pure, so every shard's trace
// hash and scheduler event count replay exactly.
TEST(ShardedSim, RunsAreDeterministic) {
  const auto spec = find_sharded_scenario("sharded-bootstrap");
  ASSERT_TRUE(spec.has_value());
  const ShardedResult a = run_sharded_sim(*spec, 7);
  const ShardedResult b = run_sharded_sim(*spec, 7);
  ASSERT_EQ(a.per_shard.size(), b.per_shard.size());
  for (std::size_t s = 0; s < a.per_shard.size(); ++s) {
    EXPECT_EQ(a.per_shard[s].trace_hash, b.per_shard[s].trace_hash) << s;
    EXPECT_EQ(a.per_shard[s].trace_events, b.per_shard[s].trace_events) << s;
    EXPECT_EQ(a.per_shard[s].sched_events, b.per_shard[s].sched_events) << s;
  }
  EXPECT_EQ(a.ops_completed, b.ops_completed);

  // And shards are actually independent streams: distinct seeds per shard
  // mean distinct executions.
  EXPECT_NE(a.per_shard[0].trace_hash, a.per_shard[1].trace_hash);
}

TEST(ShardedSim, FaultInOneShardDoesNotStallOthers) {
  const auto spec = find_sharded_scenario("sharded-fault-isolation");
  ASSERT_TRUE(spec.has_value());
  const ShardedResult r = run_sharded_sim(*spec, 7);
  EXPECT_TRUE(r.ok) << r.summary();
  // Every abort happened on the stalled shard; healthy shards served every
  // op routed at them, through a concurrent reconfiguration in shard 0.
  EXPECT_EQ(r.ops_aborted_healthy, 0u) << r.summary();
  EXPECT_GT(r.ops_completed, 0u);
  EXPECT_EQ(r.ops_completed + r.ops_aborted_faulted, r.ops_attempted);
}

TEST(ShardedSim, MapGrowthRedirectsKeysUnderLoad) {
  const auto spec = find_sharded_scenario("sharded-map-growth");
  ASSERT_TRUE(spec.has_value());
  const ShardedResult r = run_sharded_sim(*spec, 7);
  EXPECT_TRUE(r.ok) << r.summary();
  // The epoch change landed mid-workload: at least one op was re-routed,
  // and the fresh shard actually served traffic.
  EXPECT_GT(r.ops_redirected, 0u) << r.summary();
  ASSERT_EQ(r.per_shard.size(), 3u);
  EXPECT_GT(r.per_shard[2].ops_completed, 0u)
      << "fresh shard never served a redirected key";
}

}  // namespace
}  // namespace ssr::shard
