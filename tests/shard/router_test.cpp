#include "shard/router.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ssr::shard {
namespace {

TEST(Router, RoutesKeysByCurrentMap) {
  Router router(ShardMap::uniform(4));
  for (int i = 0; i < 50; ++i) {
    const std::string key = "key:" + std::to_string(i);
    EXPECT_EQ(router.route(key), router.map().shard_for_key(key));
    EXPECT_LT(router.route(key), 4u);
  }
}

TEST(Router, AdoptionIsEpochMonotonic) {
  Router router(ShardMap::uniform(2, 5));
  EXPECT_FALSE(router.adopt(ShardMap::uniform(4, 5)));   // equal epoch
  EXPECT_FALSE(router.adopt(ShardMap::uniform(4, 3)));   // stale
  EXPECT_EQ(router.map().shard_count(), 2u);
  EXPECT_TRUE(router.adopt(ShardMap::uniform(4, 6)));
  EXPECT_EQ(router.map().shard_count(), 4u);
  EXPECT_EQ(router.map().epoch(), 6u);
}

TEST(Router, ListenersArePushedAdoptedMaps) {
  Router router(ShardMap::uniform(1));
  std::vector<std::uint64_t> seen_a;
  std::vector<std::uint64_t> seen_b;
  const std::size_t a =
      router.add_listener([&](const ShardMap& m) { seen_a.push_back(m.epoch()); });
  const std::size_t b =
      router.add_listener([&](const ShardMap& m) { seen_b.push_back(m.epoch()); });
  router.adopt(router.map().with_shard_added());  // epoch 2
  router.adopt(ShardMap::uniform(2, 1));          // stale: no callback
  router.remove_listener(b);
  router.adopt(router.map().with_shard_added());  // epoch 3
  EXPECT_EQ(seen_a, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(seen_b, (std::vector<std::uint64_t>{2}));
  router.remove_listener(a);
  router.adopt(router.map().with_shard_added());
  EXPECT_EQ(seen_a.size(), 2u);
}

TEST(Router, TargetRotatesThroughShardConfig) {
  Router router(ShardMap::uniform(2));
  Router::Op op = router.begin("some-key");
  EXPECT_EQ(router.target(op), std::nullopt);  // config unknown yet

  router.note_config(op.shard, IdSet{101, 102, 103});
  ASSERT_TRUE(router.target(op).has_value());
  const NodeId first = *router.target(op);
  EXPECT_EQ(router.on_failure(op), Router::Verdict::kRetry);
  const NodeId second = *router.target(op);
  EXPECT_NE(first, second);
  // Cursor wraps: three members, three distinct targets then repeat.
  EXPECT_EQ(router.on_failure(op), Router::Verdict::kRetry);
  EXPECT_EQ(router.on_failure(op), Router::Verdict::kRetry);
  EXPECT_EQ(*router.target(op), first);
}

TEST(Router, BoundedRetriesThenGiveUp) {
  Router router(ShardMap::uniform(1));
  router.note_config(0, IdSet{1});
  Router::Op op = router.begin("k");
  std::uint32_t retries = 0;
  while (router.on_failure(op) == Router::Verdict::kRetry) ++retries;
  EXPECT_EQ(retries + 1, router.max_attempts());
  // Once exhausted the verdict stays kGiveUp.
  EXPECT_EQ(router.on_failure(op), Router::Verdict::kGiveUp);
}

TEST(Router, MapChangeMidOpRedirects) {
  Router router(ShardMap::uniform(1));
  router.note_config(0, IdSet{1, 2});
  Router::Op op = router.begin("k");
  EXPECT_EQ(router.on_failure(op), Router::Verdict::kRetry);
  EXPECT_EQ(op.attempts, 1u);

  // The shard map grows under the op: next failure re-routes the key and
  // resets the attempt budget.
  router.adopt(router.map().with_shard_added());
  EXPECT_EQ(router.on_failure(op), Router::Verdict::kRedirect);
  EXPECT_EQ(op.attempts, 0u);
  EXPECT_EQ(op.redirects, 1u);
  EXPECT_EQ(op.map_epoch, router.map().epoch());
  EXPECT_EQ(op.shard, router.route("k"));
}

TEST(Router, RedirectBudgetIsBounded) {
  Router router(ShardMap::uniform(1));
  router.note_config(0, IdSet{1});
  Router::Op op = router.begin("k");
  std::uint32_t redirects = 0;
  // A pathologically flapping map: every failure sees a newer epoch.
  for (;;) {
    router.adopt(router.map().at_epoch(router.map().epoch() + 1));
    const auto v = router.on_failure(op);
    if (v == Router::Verdict::kGiveUp) break;
    ASSERT_EQ(v, Router::Verdict::kRedirect);
    ++redirects;
    ASSERT_LE(redirects, 100u);  // safety net
  }
  EXPECT_EQ(redirects, router.max_redirects());
}

}  // namespace
}  // namespace ssr::shard
