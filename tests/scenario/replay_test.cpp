#include <gtest/gtest.h>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"

namespace ssr::scenario {
namespace {

// Replay determinism: a (spec, seed) pair names exactly one execution, so
// running it twice must produce byte-identical traces — same hash, same
// event count, same virtual end time. Different seeds must diverge (the
// channel delays alone reshuffle every delivery).
class Replay : public ::testing::TestWithParam<const char*> {};

TEST_P(Replay, SameSeedSameTraceHash) {
  auto spec = find_scenario(GetParam());
  ASSERT_TRUE(spec.has_value());
  const ScenarioResult a = run_scenario(*spec, 97);
  // Run `a` leaves the thread's buffer pool warm and the process allocator
  // in a different state; run `b` must be byte-identical regardless —
  // recycling is invisible to the execution.
  const ScenarioResult b = run_scenario(*spec, 97);
  EXPECT_TRUE(a.ok) << a.summary();
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.sim_time, b.sim_time);
  // The event stream itself is equal, not just the protocol trace: same
  // scheduler event count and same buffer demand on both laps. (How many
  // acquires the freelist can serve depends on pool temperature, so
  // pool_reused is deliberately not compared — only the demand is pinned.)
  EXPECT_EQ(a.sched_events, b.sched_events);
  EXPECT_EQ(a.pool_acquired, b.pool_acquired);
}

TEST_P(Replay, DifferentSeedsDiverge) {
  auto spec = find_scenario(GetParam());
  ASSERT_TRUE(spec.has_value());
  const ScenarioResult a = run_scenario(*spec, 97);
  const ScenarioResult c = run_scenario(*spec, 98);
  EXPECT_NE(a.trace_hash, c.trace_hash);
}

// A deliberate subset of the library (replay runs every scenario 3×; the
// full set would triple the suite's wall time for no extra signal — the
// determinism machinery is scenario-agnostic).
INSTANTIATE_TEST_SUITE_P(Library, Replay,
                         ::testing::Values("bootstrap",
                                           "silent-after-convergence",
                                           "majority-split"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace ssr::scenario
