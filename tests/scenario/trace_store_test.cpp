// TraceRecorder's pooled ring-segment event store: indexing across segment
// boundaries, clear()-then-rerecord reuse (the "ring" contract the sweep
// workers and BM_TraceRecordAlloc lean on), hash stability across storage
// reorganizations, and segment recycling through the thread-local pool.
#include <gtest/gtest.h>

#include <cstdint>

#include "scenario/trace.hpp"

namespace ssr::scenario {
namespace {

// Records n synthetic events with distinguishable fields.
void fill(TraceRecorder& t, std::size_t n, std::uint64_t salt = 0) {
  for (std::size_t i = 0; i < n; ++i) {
    t.record(TraceKind::kPhaseStart, static_cast<NodeId>(i % 7),
             static_cast<std::uint64_t>(i) + salt, salt);
  }
}

TEST(TraceStore, IndexesAcrossSegmentBoundaries) {
  TraceRecorder t;
  const std::size_t n = TraceRecorder::kSegmentEvents * 3 + 17;
  fill(t, n);
  ASSERT_EQ(t.size(), n);
  for (std::size_t i : {std::size_t{0}, TraceRecorder::kSegmentEvents - 1,
                        TraceRecorder::kSegmentEvents,
                        2 * TraceRecorder::kSegmentEvents + 5, n - 1}) {
    EXPECT_EQ(t[i].a, i) << "event " << i;
    EXPECT_EQ(t[i].node, static_cast<NodeId>(i % 7));
  }
}

TEST(TraceStore, ClearRetainsAndRewrites) {
  TraceRecorder t;
  fill(t, TraceRecorder::kSegmentEvents + 100, /*salt=*/1);
  const std::uint64_t h1 = t.hash();

  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());

  // Re-record different content into the retained segments: no stale field
  // from the first fill may leak through (slots are recycled storage).
  fill(t, TraceRecorder::kSegmentEvents + 100, /*salt=*/2);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t[i].a, i + 2);
    EXPECT_EQ(t[i].b, 2u);
    EXPECT_EQ(t[i].when, 0u);  // unattached recorder: virtual time 0
  }
  EXPECT_NE(t.hash(), h1);
}

TEST(TraceStore, HashMatchesFreshRecorder) {
  // A warm, cleared recorder hashes identically to a brand-new one over the
  // same event stream — storage reuse is invisible to the determinism
  // machinery (this is what keeps sweep workers' recycled recorders honest).
  TraceRecorder warm;
  fill(warm, 2 * TraceRecorder::kSegmentEvents, /*salt=*/9);
  warm.clear();
  fill(warm, 300, /*salt=*/4);

  TraceRecorder fresh;
  fill(fresh, 300, /*salt=*/4);

  ASSERT_EQ(warm.size(), fresh.size());
  EXPECT_EQ(warm.hash(), fresh.hash());
}

TEST(TraceStore, SegmentsRecycleThroughThePool) {
  // Destroying a recorder returns its segments to the thread-local pool;
  // the next recorder on this thread grows pool-hit-first. Observable
  // contract here: heavy churn neither crashes nor corrupts events, and
  // hashes stay stable across the churn.
  std::uint64_t expected = 0;
  for (int lap = 0; lap < 10; ++lap) {
    TraceRecorder t;
    fill(t, 4 * TraceRecorder::kSegmentEvents + 31, /*salt=*/5);
    if (lap == 0) {
      expected = t.hash();
    } else {
      EXPECT_EQ(t.hash(), expected) << "lap " << lap;
    }
  }
}

TEST(TraceStore, EmptyHashIsBasis) {
  TraceRecorder t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.hash(), TraceRecorder::kFnvBasis);
}

}  // namespace
}  // namespace ssr::scenario
