// scenario::spec_io — the fuzzer's counterexample interchange format.
// Round-trips must be exact (a saved repro that loads differently is no
// repro at all) and the rendering must be canonical: equal specs serialize
// byte-identically, which the fuzzer determinism test compares directly.
#include <gtest/gtest.h>

#include <sstream>

#include "scenario/library.hpp"
#include "scenario/spec_io.hpp"

namespace ssr::scenario {
namespace {

using A = Action;

ScenarioSpec kitchen_sink() {
  ScenarioSpec s;
  s.name = "kitchen-sink";
  s.description = "one action of every kind, every stack option set";
  s.initial_nodes = 5;
  s.enable_vs = true;
  s.aggressive_policy = true;
  s.adopt_joiners = true;
  s.corrupt_probability = 0.012345678901234567;
  s.exhaust_bound = 777;
  s.adversarial = true;
  s.phases.push_back(Phase{
      "everything",
      {
          A::add_nodes(2),
          A::crash({1}),
          A::reboot({2}),
          A::split_network({1, 3}, {4, 5}),
          A::heal_network(),
          A::corrupt_recsa({3, 4}),
          A::corrupt_fd({}),
          A::split_config_state({1, 3, 4}, {4, 5}),
          A::garbage_channels(3),
          A::plant_exhausted_counter({3}, 700),
          A::plant_recma_flags({4}, true, false),
          A::increment_burst(2, {3, 4}),
          A::shmem_write({3}, "reg with spaces", 42),
          A::shmem_read({4}, "x"),
          A::run_for(5 * kSec),
          A::await_converged(60 * kSec),
          A::await_vs_stable(60 * kSec),
          A::await_participants({3, 4}, 60 * kSec),
          A::await_config_equals_alive(60 * kSec),
          A::mark_stable(),
          A::pause_nodes({3}),
          A::resume_nodes({3}),
          A::crash_all(),
          A::await_quiescent(30 * kSec),
      }});
  return s;
}

TEST(SpecIo, RoundTripsEveryActionKind) {
  const ScenarioSpec original = kitchen_sink();
  const std::string text = spec_to_string(original);
  std::istringstream in(text);
  const auto loaded = load_spec(in);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->name, original.name);
  EXPECT_EQ(loaded->description, original.description);
  EXPECT_EQ(loaded->initial_nodes, original.initial_nodes);
  EXPECT_EQ(loaded->enable_vs, original.enable_vs);
  EXPECT_EQ(loaded->aggressive_policy, original.aggressive_policy);
  EXPECT_EQ(loaded->adopt_joiners, original.adopt_joiners);
  EXPECT_EQ(loaded->corrupt_probability, original.corrupt_probability);
  EXPECT_EQ(loaded->exhaust_bound, original.exhaust_bound);
  EXPECT_EQ(loaded->adversarial, original.adversarial);
  ASSERT_EQ(loaded->phases.size(), original.phases.size());
  for (std::size_t p = 0; p < original.phases.size(); ++p) {
    EXPECT_EQ(loaded->phases[p].name, original.phases[p].name);
    const auto& la = loaded->phases[p].actions;
    const auto& oa = original.phases[p].actions;
    ASSERT_EQ(la.size(), oa.size());
    for (std::size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(la[i].kind, oa[i].kind) << "action " << i;
      EXPECT_EQ(la[i].targets, oa[i].targets) << "action " << i;
      EXPECT_EQ(la[i].group_b, oa[i].group_b) << "action " << i;
      EXPECT_EQ(la[i].n, oa[i].n) << "action " << i;
      EXPECT_EQ(la[i].duration, oa[i].duration) << "action " << i;
      EXPECT_EQ(la[i].reg, oa[i].reg) << "action " << i;
    }
  }

  // Canonical rendering: save(load(save(x))) == save(x), byte for byte.
  EXPECT_EQ(spec_to_string(*loaded), text);
}

TEST(SpecIo, LibrarySpecsRoundTrip) {
  for (const ScenarioSpec& spec : library()) {
    std::istringstream in(spec_to_string(spec));
    const auto loaded = load_spec(in);
    ASSERT_TRUE(loaded.has_value()) << spec.name;
    EXPECT_EQ(spec_to_string(*loaded), spec_to_string(spec)) << spec.name;
  }
}

TEST(SpecIo, ActionKindNamesRoundTrip) {
  for (int k = 1; k <= static_cast<int>(ActionKind::kResumeNodes); ++k) {
    const auto kind = static_cast<ActionKind>(k);
    const auto parsed = action_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(action_kind_from_string("no-such-kind").has_value());
}

TEST(SpecIo, RejectsMalformedInput) {
  const auto rejects = [](const std::string& text) {
    std::istringstream in(text);
    return !load_spec(in).has_value();
  };
  const std::string good = spec_to_string(kitchen_sink());

  EXPECT_TRUE(rejects(""));                       // no magic
  EXPECT_TRUE(rejects("ssrspec v2\nname x\nnodes 3\nend\n"));  // bad magic
  EXPECT_TRUE(rejects("ssrspec v1\nname x\nend\n"));    // nodes missing
  EXPECT_TRUE(rejects("ssrspec v1\nnodes 3\nend\n"));   // name missing
  EXPECT_TRUE(rejects("ssrspec v1\nname x\nnodes 3\n"));  // no end
  EXPECT_TRUE(rejects("ssrspec v1\nname x\nnodes 3\nbogus 1\nend\n"));
  EXPECT_TRUE(rejects("ssrspec v1\nname x\nnodes 3\nend\ntrailing\n"));
  EXPECT_TRUE(rejects("ssrspec v1\nname x\nnodes 3\n"
                      "action run_for targets= group= n=0 duration=1 reg=\n"
                      "end\n"));  // action before any phase
  EXPECT_TRUE(rejects("ssrspec v1\nname x\nnodes 3\nphase p\n"
                      "action warp targets= group= n=0 duration=1 reg=\n"
                      "end\n"));  // unknown action kind
  EXPECT_TRUE(rejects("ssrspec v1\nname x\nnodes 3\nphase p\n"
                      "action run_for targets=1,,2 group= n=0 duration=1 "
                      "reg=\n"
                      "end\n"));  // malformed id list
  EXPECT_FALSE(rejects(good));
}

TEST(SpecIo, FileRoundTrip) {
  const ScenarioSpec original = kitchen_sink();
  const std::string path = testing::TempDir() + "/spec_io_test.spec";
  ASSERT_TRUE(save_spec_file(path, original));
  const auto loaded = load_spec_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(spec_to_string(*loaded), spec_to_string(original));
  EXPECT_FALSE(load_spec_file(path + ".does-not-exist").has_value());
}

}  // namespace
}  // namespace ssr::scenario
