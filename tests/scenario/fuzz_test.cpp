// scenario::Fuzzer — generation purity, validity of generated specs, the
// serial-vs-parallel determinism property (extending the PR 9 sweep test to
// the fuzz report), the greedy shrinker on a known-bad fixture, and the
// adversarial scheduler's per-seed determinism.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "scenario/fuzz.hpp"
#include "scenario/library.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec_io.hpp"

namespace ssr::scenario {
namespace {

using A = Action;

TEST(Fuzzer, GenerationIsSeedPure) {
  FuzzOptions opt;
  opt.seed = 20160711;  // middleware'16 nod
  const Fuzzer a(opt), b(opt);
  std::set<std::string> renderings;
  for (std::uint64_t i = 0; i < 16; ++i) {
    // Same (seed, index) => byte-identical spec and identical run seed.
    const std::string spec = spec_to_string(a.generate(i));
    EXPECT_EQ(spec, spec_to_string(b.generate(i))) << "case " << i;
    EXPECT_EQ(a.run_seed(i), b.run_seed(i)) << "case " << i;
    renderings.insert(spec);
  }
  // Different indices actually explore different shapes.
  EXPECT_EQ(renderings.size(), 16u);

  FuzzOptions other = opt;
  other.seed = opt.seed + 1;
  EXPECT_NE(spec_to_string(Fuzzer(other).generate(0)),
            spec_to_string(a.generate(0)));
}

TEST(Fuzzer, GeneratedSpecsStayInsideTheValidityModel) {
  FuzzOptions opt;
  opt.seed = 99;
  const Fuzzer fuzzer(opt);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const ScenarioSpec spec = fuzzer.generate(i);
    EXPECT_TRUE(Fuzzer::spec_references_valid(spec)) << spec.name;
    ASSERT_GE(spec.phases.size(), 2u) << spec.name;
    // Every generated run starts from a converged cohort and ends with a
    // settle phase that heals partitions before the final await.
    EXPECT_EQ(spec.phases.front().actions.front().kind,
              ActionKind::kAwaitConverged);
    EXPECT_EQ(spec.phases.back().actions.front().kind,
              ActionKind::kHealNetwork);
    EXPECT_GE(spec.initial_nodes, 3u);
    EXPECT_LE(spec.initial_nodes, 7u);
    // And round-trips through the counterexample format.
    std::istringstream in(spec_to_string(spec));
    const auto loaded = load_spec(in);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(spec_to_string(*loaded), spec_to_string(spec));
  }
}

TEST(Fuzzer, SpecReferencesValidTracksMintedIds) {
  ScenarioSpec s;
  s.name = "v";
  s.initial_nodes = 3;
  s.phases.push_back(Phase{"p", {A::crash({3})}});
  EXPECT_TRUE(Fuzzer::spec_references_valid(s));

  s.phases[0].actions = {A::crash({4})};  // never created
  EXPECT_FALSE(Fuzzer::spec_references_valid(s));

  s.phases[0].actions = {A::add_nodes(1), A::crash({4})};  // created first
  EXPECT_TRUE(Fuzzer::spec_references_valid(s));

  s.phases[0].actions = {A::crash({4}), A::add_nodes(1)};  // created late
  EXPECT_FALSE(Fuzzer::spec_references_valid(s));

  s.phases[0].actions = {A::reboot({2}), A::crash({4})};  // reboot mints 4
  EXPECT_TRUE(Fuzzer::spec_references_valid(s));

  s.phases[0].actions = {A::split_network({1, 2}, {3, 9})};
  EXPECT_FALSE(Fuzzer::spec_references_valid(s));  // group_b checked too

  s.phases[0].actions = {A::crash({0})};
  EXPECT_FALSE(Fuzzer::spec_references_valid(s));  // ids are 1-based
}

TEST(Fuzzer, FailureSignatureRanksViolationsFirst) {
  ScenarioResult r;
  r.ok = true;
  EXPECT_EQ(Fuzzer::failure_signature(r), "");

  r.ok = false;
  r.failure = "await_converged: no convergence within the time budget";
  EXPECT_EQ(Fuzzer::failure_signature(r), "failure:" + r.failure);

  r.violations.push_back({"counter-order", "details vary per run"});
  EXPECT_EQ(Fuzzer::failure_signature(r), "violation:counter-order");
}

/// The known-bad fixture: await_quiescent without crash_all is a guaranteed
/// "silence" invariant violation, padded with noise actions the shrinker
/// must strip. The minimum that still fails with the same signature is one
/// phase holding the await alone at the 3-node floor.
TEST(Fuzzer, ShrinkerReducesKnownBadFixtureToMinimum) {
  ScenarioSpec spec;
  spec.name = "known-bad";
  spec.initial_nodes = 5;
  spec.phases.push_back(Phase{"noise",
                              {A::run_for(5 * kSec), A::garbage_channels(2),
                               A::corrupt_fd({1, 4}), A::run_for(3 * kSec)}});
  spec.phases.push_back(Phase{"bad", {A::await_quiescent(10 * kSec)}});
  spec.phases.push_back(Phase{"tail-noise", {A::run_for(2 * kSec)}});

  const std::uint64_t seed = 3;
  const ScenarioResult before = run_scenario(spec, seed);
  ASSERT_FALSE(before.ok);
  const std::string signature = Fuzzer::failure_signature(before);
  ASSERT_EQ(signature, "violation:silence");

  std::size_t runs = 0;
  const ScenarioSpec shrunk =
      Fuzzer::shrink(spec, seed, signature, /*max_runs=*/200, &runs);

  ASSERT_EQ(shrunk.phases.size(), 1u);
  ASSERT_EQ(shrunk.phases[0].actions.size(), 1u);
  EXPECT_EQ(shrunk.phases[0].actions[0].kind, ActionKind::kAwaitQuiescent);
  EXPECT_EQ(shrunk.initial_nodes, 3u);  // node floor reached
  EXPECT_GT(runs, 0u);
  EXPECT_LE(runs, 200u);

  // The shrunk repro still fails the same way.
  EXPECT_EQ(Fuzzer::failure_signature(run_scenario(shrunk, seed)), signature);
}

TEST(Fuzzer, ShrinkPreservesFailureSignatureClass) {
  // A spec that fails an await (not a violation): partition the cohort,
  // bridge the failure detector's blind window so each side has already
  // reconfigured to its own half, then demand global convergence without
  // ever healing — the sides can never agree. Shrinking must not morph
  // this into a different failure class.
  ScenarioSpec spec;
  spec.name = "missed-await";
  spec.initial_nodes = 4;
  spec.phases.push_back(Phase{"pad", {A::run_for(2 * kSec)}});
  spec.phases.push_back(Phase{"overload",
                              {A::split_network({1, 2}, {3, 4}),
                               A::run_for(30 * kSec),
                               A::await_converged(60 * kSec)}});

  const std::uint64_t seed = 11;
  const ScenarioResult before = run_scenario(spec, seed);
  ASSERT_FALSE(before.ok);
  const std::string signature = Fuzzer::failure_signature(before);
  ASSERT_EQ(signature.rfind("failure:await_converged", 0), 0u) << signature;

  const ScenarioSpec shrunk = Fuzzer::shrink(spec, seed, signature, 100);
  EXPECT_LT(shrunk.phases.size(), spec.phases.size());
  EXPECT_EQ(Fuzzer::failure_signature(run_scenario(shrunk, seed)), signature);
}

/// The PR 9 serial-vs-parallel sweep property, extended to the fuzz
/// report: one campaign seed names one report, byte-identical at any
/// --jobs count. Seed 9's first two cases are cheap passing runs, so the
/// lap stays fast; shrinking is disabled because it is serial anyway.
TEST(Fuzzer, ReportIsIdenticalAtAnyJobsCount) {
  FuzzOptions opt;
  opt.seed = 9;
  opt.cases = 2;
  opt.max_shrink_runs = 0;

  opt.jobs = 1;
  Fuzzer serial(opt);
  const FuzzReport a = serial.run();

  opt.jobs = 2;
  Fuzzer parallel(opt);
  const FuzzReport b = parallel.run();

  ASSERT_EQ(a.cases_run, b.cases_run);
  EXPECT_EQ(a.failures, b.failures);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].ok, b.results[i].ok) << "case " << i;
    EXPECT_EQ(a.results[i].failure, b.results[i].failure) << "case " << i;
    EXPECT_EQ(a.results[i].trace_hash, b.results[i].trace_hash)
        << "case " << i;
    EXPECT_EQ(a.results[i].sched_events, b.results[i].sched_events)
        << "case " << i;
  }
  ASSERT_EQ(a.counterexamples.size(), b.counterexamples.size());
  for (std::size_t i = 0; i < a.counterexamples.size(); ++i) {
    EXPECT_EQ(a.counterexamples[i].signature, b.counterexamples[i].signature);
    EXPECT_EQ(spec_to_string(a.counterexamples[i].spec),
              spec_to_string(b.counterexamples[i].spec));
  }
}

TEST(Adversary, SameSeedSameTraceDifferentFromFair) {
  auto spec = find_scenario("partition-heal");
  ASSERT_TRUE(spec.has_value());
  const ScenarioResult fair = run_scenario(*spec, 7);
  ASSERT_TRUE(fair.ok);

  spec->adversarial = true;
  const ScenarioResult adv1 = run_scenario(*spec, 7);
  const ScenarioResult adv2 = run_scenario(*spec, 7);
  // Worst-case scheduling is still a pure function of (spec, seed)...
  EXPECT_EQ(adv1.trace_hash, adv2.trace_hash);
  EXPECT_EQ(adv1.sched_events, adv2.sched_events);
  EXPECT_EQ(adv1.ok, adv2.ok);
  // ...and actually changes the delivery schedule.
  EXPECT_NE(adv1.trace_hash, fair.trace_hash);
  // Fair communication still holds inside the delay bounds: the paper's
  // liveness prerequisite, so the run must still converge.
  EXPECT_TRUE(adv1.ok) << adv1.failure;
}

}  // namespace
}  // namespace ssr::scenario
