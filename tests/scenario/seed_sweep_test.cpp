// Seed-sweep property: a (spec, seed) pair names exactly one execution.
// The 20-seed lap per scenario now runs through the parallel SweepRunner
// (jobs=4) — exercising the sweep engine in the tier-1 suite — and asserts
// the two halves of the contract at scale:
//  * stability  — re-running a seed (serially, through the plain runner)
//    reproduces the identical trace hash, event count and virtual end time,
//    which doubles as a sweep-vs-direct-execution equivalence check;
//  * divergence — any two different seeds produce different hashes (the
//    channel delays alone reshuffle every delivery, and a 64-bit FNV
//    collision across 20 seeds would itself be a red flag).
#include <gtest/gtest.h>

#include <map>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"
#include "scenario/sweep.hpp"

namespace ssr::scenario {
namespace {

constexpr std::uint64_t kFirstSeed = 1;
constexpr std::uint64_t kLastSeed = 20;

class SeedSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SeedSweep, HashesStablePerSeedAndDistinctAcrossSeeds) {
  auto spec = find_scenario(GetParam());
  ASSERT_TRUE(spec.has_value()) << GetParam();

  SweepOptions opt;
  opt.jobs = 4;
  SweepRunner runner(opt);
  runner.add_seed_range(*spec, kFirstSeed, kLastSeed);
  const SweepSummary sweep = runner.run();
  ASSERT_EQ(sweep.results.size(), kLastSeed - kFirstSeed + 1);
  EXPECT_TRUE(sweep.ok);

  std::map<std::uint64_t, const ScenarioResult*> by_seed;
  for (const ScenarioResult& r : sweep.results) {
    EXPECT_TRUE(r.ok) << r.summary();
    by_seed.emplace(r.seed, &r);
  }
  ASSERT_EQ(by_seed.size(), sweep.results.size()) << "duplicate seeds";

  // Divergence: every pair of seeds yields a different execution.
  for (auto a = by_seed.begin(); a != by_seed.end(); ++a) {
    for (auto b = std::next(a); b != by_seed.end(); ++b) {
      EXPECT_NE(a->second->trace_hash, b->second->trace_hash)
          << GetParam() << ": seeds " << a->first << " and " << b->first
          << " collided";
    }
  }

  // Stability: spot-check seeds reproduce byte-identically through the
  // plain (non-sweep) runner — a parallel sweep job and a direct serial run
  // are the same execution.
  for (std::uint64_t seed : {kFirstSeed, (kFirstSeed + kLastSeed) / 2,
                             kLastSeed}) {
    const ScenarioResult again = run_scenario(*spec, seed);
    const ScenarioResult& first = *by_seed.at(seed);
    EXPECT_EQ(first.trace_hash, again.trace_hash) << GetParam() << " seed "
                                                  << seed;
    EXPECT_EQ(first.trace_events, again.trace_events);
    EXPECT_EQ(first.sim_time, again.sim_time);
    EXPECT_EQ(first.sched_events, again.sched_events);
  }
}

INSTANTIATE_TEST_SUITE_P(Library, SeedSweep,
                         ::testing::Values("majority-split", "epoch-rollover",
                                           "garbage-channel-recovery"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace ssr::scenario
