// Seed-sweep property: a (spec, seed) pair names exactly one execution.
// Sweeping seeds 1..20 over three library scenarios asserts the two halves
// of that contract at scale:
//  * stability  — re-running a seed reproduces the identical trace hash,
//    event count and virtual end time;
//  * divergence — any two different seeds produce different hashes (the
//    channel delays alone reshuffle every delivery, and a 64-bit FNV
//    collision across 20 seeds would itself be a red flag).
#include <gtest/gtest.h>

#include <map>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"

namespace ssr::scenario {
namespace {

constexpr std::uint64_t kFirstSeed = 1;
constexpr std::uint64_t kLastSeed = 20;

class SeedSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SeedSweep, HashesStablePerSeedAndDistinctAcrossSeeds) {
  auto spec = find_scenario(GetParam());
  ASSERT_TRUE(spec.has_value()) << GetParam();

  std::map<std::uint64_t, ScenarioResult> by_seed;
  for (std::uint64_t seed = kFirstSeed; seed <= kLastSeed; ++seed) {
    ScenarioResult r = run_scenario(*spec, seed);
    EXPECT_TRUE(r.ok) << r.summary();
    by_seed.emplace(seed, std::move(r));
  }

  // Divergence: every pair of seeds yields a different execution.
  for (auto a = by_seed.begin(); a != by_seed.end(); ++a) {
    for (auto b = std::next(a); b != by_seed.end(); ++b) {
      EXPECT_NE(a->second.trace_hash, b->second.trace_hash)
          << GetParam() << ": seeds " << a->first << " and " << b->first
          << " collided";
    }
  }

  // Stability: spot-check seeds reproduce byte-identically on a second lap
  // (the full determinism machinery is seed-agnostic; replay_test covers
  // the remaining scenarios at depth).
  for (std::uint64_t seed : {kFirstSeed, (kFirstSeed + kLastSeed) / 2,
                             kLastSeed}) {
    const ScenarioResult again = run_scenario(*spec, seed);
    const ScenarioResult& first = by_seed.at(seed);
    EXPECT_EQ(first.trace_hash, again.trace_hash) << GetParam() << " seed "
                                                  << seed;
    EXPECT_EQ(first.trace_events, again.trace_events);
    EXPECT_EQ(first.sim_time, again.sim_time);
    EXPECT_EQ(first.sched_events, again.sched_events);
  }
}

INSTANTIATE_TEST_SUITE_P(Library, SeedSweep,
                         ::testing::Values("majority-split", "epoch-rollover",
                                           "garbage-channel-recovery"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace ssr::scenario
