// SweepRunner determinism property: a parallel sweep is the same computation
// as a serial one. jobs=1 and jobs=4 over 3 scenarios × seeds 1..20 must
// agree on every per-(scenario, seed) trace hash, event count and end time,
// and both must report in submission order. Plus unit coverage of the job
// matrix builders and the merged summary.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/library.hpp"
#include "scenario/sweep.hpp"

namespace ssr::scenario {
namespace {

constexpr const char* kScenarios[] = {"majority-split", "epoch-rollover",
                                      "garbage-channel-recovery"};
constexpr std::uint64_t kFirstSeed = 1;
constexpr std::uint64_t kLastSeed = 20;

SweepSummary sweep_at(std::size_t jobs) {
  SweepOptions opt;
  opt.jobs = jobs;
  SweepRunner runner(opt);
  for (const char* name : kScenarios) {
    auto spec = find_scenario(name);
    EXPECT_TRUE(spec.has_value()) << name;
    runner.add_seed_range(*spec, kFirstSeed, kLastSeed);
  }
  EXPECT_EQ(runner.job_count(),
            std::size(kScenarios) * (kLastSeed - kFirstSeed + 1));
  return runner.run();
}

TEST(SweepRunner, ParallelIsByteIdenticalToSerial) {
  const SweepSummary serial = sweep_at(1);
  const SweepSummary parallel = sweep_at(4);

  ASSERT_EQ(serial.results.size(), parallel.results.size());
  EXPECT_TRUE(serial.ok);
  EXPECT_TRUE(parallel.ok);

  // Element-wise equality in submission order: this checks both halves of
  // the contract at once — identical per-job executions AND deterministic
  // report order regardless of worker finish order.
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    const ScenarioResult& s = serial.results[i];
    const ScenarioResult& p = parallel.results[i];
    EXPECT_EQ(s.name, p.name) << "job " << i;
    EXPECT_EQ(s.seed, p.seed) << "job " << i;
    EXPECT_EQ(s.trace_hash, p.trace_hash)
        << "job " << i << " (" << s.name << " seed " << s.seed << ")";
    EXPECT_EQ(s.trace_events, p.trace_events) << "job " << i;
    EXPECT_EQ(s.sim_time, p.sim_time) << "job " << i;
    EXPECT_EQ(s.sched_events, p.sched_events) << "job " << i;
    EXPECT_EQ(s.ok, p.ok) << "job " << i;
  }

  // The merged latency histograms aggregate the same per-job data, so the
  // sweep-level percentiles agree too.
  EXPECT_EQ(serial.op_latency.count(), parallel.op_latency.count());
  EXPECT_EQ(serial.op_latency.percentile(50),
            parallel.op_latency.percentile(50));
  EXPECT_EQ(serial.op_latency.percentile(99),
            parallel.op_latency.percentile(99));
}

TEST(SweepRunner, SubmissionOrderIsReportOrder) {
  auto spec_a = find_scenario("majority-split");
  auto spec_b = find_scenario("epoch-rollover");
  ASSERT_TRUE(spec_a && spec_b);

  SweepOptions opt;
  opt.jobs = 4;
  SweepRunner runner(opt);
  // Interleave specs and seeds out of any natural sort order.
  runner.add(*spec_b, 9);
  runner.add(*spec_a, 3);
  runner.add(*spec_b, 1);
  runner.add(*spec_a, 7);
  ASSERT_EQ(runner.job_count(), 4u);

  const SweepSummary s = runner.run();
  ASSERT_EQ(s.results.size(), 4u);
  EXPECT_EQ(s.results[0].name, "epoch-rollover");
  EXPECT_EQ(s.results[0].seed, 9u);
  EXPECT_EQ(s.results[1].name, "majority-split");
  EXPECT_EQ(s.results[1].seed, 3u);
  EXPECT_EQ(s.results[2].name, "epoch-rollover");
  EXPECT_EQ(s.results[2].seed, 1u);
  EXPECT_EQ(s.results[3].name, "majority-split");
  EXPECT_EQ(s.results[3].seed, 7u);
}

TEST(SweepRunner, MoreJobsThanWorkNeededStillRunsClean) {
  auto spec = find_scenario("bootstrap");
  ASSERT_TRUE(spec.has_value());
  SweepOptions opt;
  opt.jobs = 8;  // more workers than the 2 jobs below
  SweepRunner runner(opt);
  runner.add_seed_range(*spec, 5, 6);
  const SweepSummary s = runner.run();
  EXPECT_TRUE(s.ok);
  EXPECT_EQ(s.results.size(), 2u);
  EXPECT_EQ(s.failed, 0u);
}

TEST(SweepRunner, SummaryAggregatesCountsAndFailures) {
  auto spec = find_scenario("vs-workload");
  ASSERT_TRUE(spec.has_value());
  SweepOptions opt;
  opt.jobs = 2;
  SweepRunner runner(opt);
  runner.add_seed_range(*spec, 1, 4);
  const SweepSummary s = runner.run();
  ASSERT_EQ(s.results.size(), 4u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_TRUE(s.ok);
  // Merged histogram count equals the sum over per-job histograms.
  std::uint64_t total = 0;
  for (const ScenarioResult& r : s.results) total += r.op_latency.count();
  EXPECT_EQ(s.op_latency.count(), total);
  // The one-line rendering mentions the run count.
  EXPECT_NE(s.summary().find("4 runs"), std::string::npos) << s.summary();
}

}  // namespace
}  // namespace ssr::scenario
