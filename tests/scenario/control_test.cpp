// Control-channel protocol: framing, payload helpers, and the
// client/server pair over a real loopback socket — including the
// duplicate-request replay that keeps retried commands idempotent.
#include "scenario/control.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ssr::scenario::ctl {
namespace {

TEST(ControlProtocol, ParsesRequests) {
  auto r = parse_request("42 BLOCK 1,2,3");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->reqid, 42u);
  EXPECT_EQ(r->cmd, "BLOCK");
  ASSERT_EQ(r->args.size(), 1u);
  EXPECT_EQ(r->args[0], "1,2,3");

  EXPECT_TRUE(parse_request("7 STATUS").has_value());
  EXPECT_FALSE(parse_request("").has_value());
  EXPECT_FALSE(parse_request("STATUS").has_value());  // no reqid
  EXPECT_FALSE(parse_request("9").has_value());       // no command
}

TEST(ControlProtocol, IdListsRoundtrip) {
  EXPECT_EQ(format_ids({}), "-");
  EXPECT_EQ(format_ids({3, 1, 2}), "1,2,3");
  auto ids = parse_ids("1,2,3");
  ASSERT_TRUE(ids.has_value());
  EXPECT_EQ(*ids, (IdSet{1, 2, 3}));
  auto none = parse_ids("-");
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->empty());
  EXPECT_FALSE(parse_ids("").has_value());
  EXPECT_FALSE(parse_ids("1,,2").has_value());
  EXPECT_FALSE(parse_ids("1,x").has_value());
}

TEST(ControlProtocol, KvAndHexRoundtrip) {
  const auto kv = parse_kv("a=1 b=xyz malformed c=2");
  EXPECT_EQ(kv.at("a"), "1");
  EXPECT_EQ(kv.at("b"), "xyz");
  EXPECT_EQ(kv.at("c"), "2");
  EXPECT_EQ(kv.count("malformed"), 0u);

  const wire::Bytes blob{0x00, 0x7F, 0xFF, 0x10};
  const std::string hex = hex_encode(blob);
  EXPECT_EQ(hex, "007fff10");
  auto back = hex_decode(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, blob);
  EXPECT_FALSE(hex_decode("abc").has_value());   // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());    // bad digit
}

TEST(ControlEndpoints, RequestReplyOverLoopback) {
  ControlServer server;
  ControlClient client;
  ASSERT_NE(server.port(), 0);

  // The application counter is written by the server thread and read by the
  // test thread after join; the annotated mutex makes clang's thread-safety
  // analysis prove the discipline TSan checks at runtime.
  util::Mutex mu;
  int applications SSR_GUARDED_BY(mu) = 0;
  const auto handler = [&](const Request& req) -> std::string {
    if (req.cmd == "PING") {
      util::MutexLock lock(mu);
      return "OK pong=" + std::to_string(++applications);
    }
    return "ERR unknown command";
  };

  // The server is single-threaded by design (the daemon polls it between
  // transport laps); a helper thread stands in for that loop here.
  std::atomic<bool> stop{false};
  std::thread srv([&] {
    while (!stop.load()) {
      server.poll(handler);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  auto r1 = client.request(server.port(), "PING");
  auto r2 = client.request(server.port(), "PING");
  auto r3 = client.request(server.port(), "NOPE");
  stop.store(true);
  srv.join();

  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(*r1, "OK pong=1");
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r2, "OK pong=2");
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(*r3, "ERR unknown command");
  util::MutexLock lock(mu);
  EXPECT_EQ(applications, 2);
}

TEST(ControlEndpoints, DuplicateReqidReplaysCachedReply) {
  ControlServer server;
  int applications = 0;
  const auto handler = [&](const Request&) -> std::string {
    return "OK n=" + std::to_string(++applications);
  };

  const int raw = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  to.sin_port = htons(server.port());
  const std::string wire = "7 PING";
  // The same reqid twice — a client retransmit after a lost reply.
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(::sendto(raw, wire.data(), wire.size(), 0,
                       reinterpret_cast<sockaddr*>(&to), sizeof(to)),
              static_cast<ssize_t>(wire.size()));
  }
  // Let both datagrams land, then drain them in one poll.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.poll(handler);

  char buf[256];
  std::string first, second;
  for (int i = 0; i < 50 && second.empty(); ++i) {
    const ssize_t n = ::recv(raw, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      (first.empty() ? first : second).assign(buf, static_cast<size_t>(n));
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ::close(raw);
  EXPECT_EQ(first, "7 OK n=1");
  EXPECT_EQ(second, "7 OK n=1");  // replayed, not re-applied
  EXPECT_EQ(applications, 1);
}

}  // namespace
}  // namespace ssr::scenario::ctl
