#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"

namespace ssr::scenario {
namespace {

TEST(ScenarioLibrary, HasAtLeastEightScenarios) {
  EXPECT_GE(library().size(), 8u);
  for (const ScenarioSpec& s : library()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.phases.empty()) << s.name;
    EXPECT_TRUE(find_scenario(s.name).has_value()) << s.name;
  }
}

TEST(ScenarioLibrary, NamesAreUnique) {
  const auto& specs = library();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_NE(specs[i].name, specs[j].name);
    }
  }
}

// Transport-seam regression: the node stack talks to the fabric only
// through net::Transport, and SimTransport must be a pure pass-through —
// neither the RNG draw order nor the event order may shift. These hashes
// were recorded with `scenario_runner --all --seed 7` on the
// pre-abstraction fabric (nodes holding net::Network& directly); any drift
// means a refactor changed an execution byte. A scenario absent from the
// table (i.e. added later) only skips the pin, not the run.
std::optional<std::uint64_t> golden_hash(const std::string& name) {
  static const std::map<std::string, std::uint64_t> kGolden = {
      {"bootstrap", 0xce2678749c4583c8ULL},
      {"rolling-churn", 0xbe6ff89e3ace23f6ULL},
      {"majority-split", 0x41d52179c0d85f75ULL},
      {"flood-of-joiners", 0xd007c8c49c9302f2ULL},
      {"epoch-rollover", 0x5c7f699101078647ULL},
      {"garbage-channel-recovery", 0xb195c4603df5a386ULL},
      {"partition-heal", 0x031c62e095a445aeULL},
      {"silent-after-convergence", 0x7e9b5019c0999d93ULL},
      {"transient-blast", 0xdfcca4eecaffd454ULL},
      {"vs-workload", 0x2612b84b5b6b7f0dULL},
  };
  auto it = kGolden.find(name);
  if (it == kGolden.end()) return std::nullopt;
  return it->second;
}

// Every library scenario runs clean: awaits met, zero invariant violations,
// and (for the pinned set) a byte-identical trace to the golden record.
// Parameterized over library() itself so a newly added scenario is covered
// automatically.
class RunsClean : public ::testing::TestWithParam<std::string> {};

TEST_P(RunsClean, ZeroViolationsAndGoldenTrace) {
  auto spec = find_scenario(GetParam());
  ASSERT_TRUE(spec.has_value()) << GetParam();
  const ScenarioResult r = run_scenario(*spec, 7);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_TRUE(r.violations.empty()) << r.summary();
  EXPECT_TRUE(r.failure.empty()) << r.summary();
  EXPECT_GT(r.trace_events, 0u);
  if (auto hash = golden_hash(GetParam())) {
    EXPECT_EQ(r.trace_hash, *hash)
        << "trace drifted from the pre-Transport-refactor fabric: "
        << r.summary();
  }
}

std::vector<std::string> library_names() {
  std::vector<std::string> out;
  for (const ScenarioSpec& s : library()) out.push_back(s.name);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Library, RunsClean,
                         ::testing::ValuesIn(library_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace ssr::scenario
