#include <gtest/gtest.h>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"

namespace ssr::scenario {
namespace {

TEST(ScenarioLibrary, HasAtLeastEightScenarios) {
  EXPECT_GE(library().size(), 8u);
  for (const ScenarioSpec& s : library()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.phases.empty()) << s.name;
    EXPECT_TRUE(find_scenario(s.name).has_value()) << s.name;
  }
}

TEST(ScenarioLibrary, NamesAreUnique) {
  const auto& specs = library();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      EXPECT_NE(specs[i].name, specs[j].name);
    }
  }
}

// Every library scenario runs clean: awaits met, zero invariant violations.
// Parameterized over library() itself so a newly added scenario is covered
// automatically.
class RunsClean : public ::testing::TestWithParam<std::string> {};

TEST_P(RunsClean, ZeroViolations) {
  auto spec = find_scenario(GetParam());
  ASSERT_TRUE(spec.has_value()) << GetParam();
  const ScenarioResult r = run_scenario(*spec, 7);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_TRUE(r.violations.empty()) << r.summary();
  EXPECT_TRUE(r.failure.empty()) << r.summary();
  EXPECT_GT(r.trace_events, 0u);
}

std::vector<std::string> library_names() {
  std::vector<std::string> out;
  for (const ScenarioSpec& s : library()) out.push_back(s.name);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Library, RunsClean,
                         ::testing::ValuesIn(library_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace ssr::scenario
