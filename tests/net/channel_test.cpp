#include "net/channel.hpp"

#include <gtest/gtest.h>

namespace ssr::net {
namespace {

ChannelConfig reliable_config() {
  ChannelConfig cfg;
  cfg.loss_probability = 0.0;
  cfg.duplicate_probability = 0.0;
  cfg.capacity = 4;
  return cfg;
}

TEST(Channel, DeliversPayload) {
  sim::Scheduler sched;
  std::vector<wire::Bytes> got;
  Channel ch(sched, Rng(1), reliable_config(), 1, 2,
             [&](Packet p) { got.push_back(p.payload); });
  ch.send(wire::Bytes{42});
  sched.run_until(kSec);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], wire::Bytes{42});
}

TEST(Channel, StampsSrcDst) {
  sim::Scheduler sched;
  Packet seen;
  Channel ch(sched, Rng(1), reliable_config(), 7, 9,
             [&](Packet p) { seen = p; });
  ch.send(wire::Bytes{1});
  sched.run_until(kSec);
  EXPECT_EQ(seen.src, 7u);
  EXPECT_EQ(seen.dst, 9u);
}

TEST(Channel, CapacityBoundsInFlight) {
  sim::Scheduler sched;
  auto cfg = reliable_config();
  cfg.capacity = 4;
  std::size_t delivered = 0;
  Channel ch(sched, Rng(3), cfg, 1, 2, [&](Packet) { ++delivered; });
  for (int i = 0; i < 100; ++i) ch.send(wire::Bytes{std::uint8_t(i)});
  EXPECT_LE(ch.in_flight(), 4u);
  sched.run_until(kSec);
  EXPECT_LE(delivered, 4u);
  EXPECT_GT(ch.stats().overflowed, 0u);
}

TEST(Channel, LossyChannelDropsSome) {
  sim::Scheduler sched;
  auto cfg = reliable_config();
  cfg.loss_probability = 0.5;
  std::size_t delivered = 0;
  Channel ch(sched, Rng(5), cfg, 1, 2, [&](Packet) { ++delivered; });
  for (int i = 0; i < 200; ++i) {
    ch.send(wire::Bytes{1});
    sched.run_for(10 * kMsec);  // drain so capacity never interferes
  }
  EXPECT_GT(delivered, 50u);
  EXPECT_LT(delivered, 150u);
  EXPECT_GT(ch.stats().lost, 0u);
}

// Fair communication: a packet sent repeatedly is received eventually even
// on a very lossy channel (loss < 1).
TEST(Channel, FairCommunication) {
  sim::Scheduler sched;
  auto cfg = reliable_config();
  cfg.loss_probability = 0.9;
  bool got = false;
  Channel ch(sched, Rng(11), cfg, 1, 2, [&](Packet) { got = true; });
  for (int i = 0; i < 500 && !got; ++i) {
    ch.send(wire::Bytes{1});
    sched.run_for(5 * kMsec);
  }
  EXPECT_TRUE(got);
}

TEST(Channel, DuplicationDeliversTwice) {
  sim::Scheduler sched;
  auto cfg = reliable_config();
  cfg.duplicate_probability = 1.0;
  cfg.capacity = 64;
  std::size_t delivered = 0;
  Channel ch(sched, Rng(13), cfg, 1, 2, [&](Packet) { ++delivered; });
  ch.send(wire::Bytes{1});
  sched.run_until(kSec);
  EXPECT_EQ(delivered, 2u);
}

TEST(Channel, InjectGarbageDeliversArbitraryBytes) {
  sim::Scheduler sched;
  std::vector<wire::Bytes> got;
  Channel ch(sched, Rng(17), reliable_config(), 1, 2,
             [&](Packet p) { got.push_back(p.payload); });
  ch.inject_garbage(3);
  sched.run_until(kSec);
  EXPECT_EQ(got.size(), 3u);
  for (const auto& b : got) EXPECT_FALSE(b.empty());
}

TEST(Channel, FlushDropsInFlight) {
  sim::Scheduler sched;
  std::size_t delivered = 0;
  Channel ch(sched, Rng(19), reliable_config(), 1, 2,
             [&](Packet) { ++delivered; });
  ch.send(wire::Bytes{1});
  ch.send(wire::Bytes{2});
  ch.flush();
  sched.run_until(kSec);
  EXPECT_EQ(delivered, 0u);
}

// in_flight() is a live count: it tracks schedule/deliver/cancel exactly
// (no pending-handle scans — delivered packets leave the set as they fire).
TEST(Channel, InFlightTracksDeliveriesAndFlush) {
  sim::Scheduler sched;
  auto cfg = reliable_config();
  cfg.capacity = 8;
  std::size_t delivered = 0;
  Channel ch(sched, Rng(29), cfg, 1, 2, [&](Packet&) { ++delivered; });
  for (int i = 0; i < 3; ++i) ch.send(wire::Bytes{std::uint8_t(i)});
  EXPECT_EQ(ch.in_flight(), 3u);
  sched.run_until(kSec);
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(ch.in_flight(), 0u);
  ch.send(wire::Bytes{9});
  ch.send(wire::Bytes{10});
  EXPECT_EQ(ch.in_flight(), 2u);
  ch.flush();
  EXPECT_EQ(ch.in_flight(), 0u);
  EXPECT_TRUE(sched.empty());  // flush left only tombstones
}

// Overflow with victim omission keeps the live count exact: the victim's
// event is cancelled and replaced by the new packet.
TEST(Channel, OverflowKeepsLiveCountAtCapacity) {
  sim::Scheduler sched;
  auto cfg = reliable_config();
  cfg.capacity = 3;
  std::size_t delivered = 0;
  Channel ch(sched, Rng(31), cfg, 1, 2, [&](Packet&) { ++delivered; });
  for (int i = 0; i < 50; ++i) {
    ch.send(wire::Bytes{std::uint8_t(i)});
    EXPECT_LE(ch.in_flight(), 3u);
  }
  EXPECT_GT(ch.stats().overflowed, 0u);
  sched.run_until(kSec);
  EXPECT_EQ(ch.in_flight(), 0u);
  EXPECT_EQ(delivered, ch.stats().delivered);
  EXPECT_LE(delivered, 3u);
}

// Steady-state traffic recycles payload buffers through the wire pool: after
// a warm-up lap, sends stop requesting fresh allocations.
TEST(Channel, SteadyStateReusesPooledBuffers) {
  sim::Scheduler sched;
  std::size_t delivered = 0;
  Channel ch(sched, Rng(37), reliable_config(), 1, 2,
             [&](Packet&) { ++delivered; });
  auto send_one = [&] {
    wire::Writer w;
    w.u64(0xABCDEF);
    ch.send(w.take());
    sched.run_until(sched.now() + kSec);
  };
  for (int i = 0; i < 4; ++i) send_one();  // warm the pool
  const auto before = wire::BufferPool::local().stats();
  for (int i = 0; i < 16; ++i) send_one();
  const auto after = wire::BufferPool::local().stats();
  EXPECT_EQ(after.acquired - before.acquired,
            after.reused - before.reused);  // every acquire was a pool hit
  EXPECT_EQ(delivered, 20u);
}

TEST(Channel, CorruptionFlipsBytes) {
  sim::Scheduler sched;
  auto cfg = reliable_config();
  cfg.corrupt_probability = 1.0;
  wire::Bytes got;
  Channel ch(sched, Rng(23), cfg, 1, 2, [&](Packet p) { got = p.payload; });
  ch.send(wire::Bytes{0x00, 0x00, 0x00, 0x00});
  sched.run_until(kSec);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_NE(got, (wire::Bytes{0, 0, 0, 0}));
}

}  // namespace
}  // namespace ssr::net
