#include "net/network.hpp"

#include <gtest/gtest.h>

namespace ssr::net {
namespace {

ChannelConfig reliable_config() {
  ChannelConfig cfg;
  cfg.loss_probability = 0.0;
  cfg.duplicate_probability = 0.0;
  return cfg;
}

struct Fixture {
  sim::Scheduler sched;
  Network net{sched, Rng(99), reliable_config()};
};

TEST(Network, RoutesBetweenAttachedNodes) {
  Fixture f;
  std::vector<std::pair<NodeId, wire::Bytes>> got;
  f.net.attach(2, [&](const Packet& p) { got.emplace_back(p.src, p.payload); });
  f.net.send(1, 2, wire::Bytes{5});
  f.sched.run_until(kSec);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 1u);
  EXPECT_EQ(got[0].second, wire::Bytes{5});
}

TEST(Network, DetachedDestinationDropsSilently) {
  Fixture f;
  f.net.send(1, 2, wire::Bytes{5});
  f.sched.run_until(kSec);  // no handler — nothing to observe, no crash
  SUCCEED();
}

TEST(Network, ReattachOfLiveNodeAborts) {
  // A silent handler replacement would splice a second incarnation of a
  // node into the fabric; the old handler (and whatever owned it) would
  // keep dangling. Re-attach is a programming error — detach first.
  Fixture f;
  f.net.attach(1, [](const Packet&) {});
  EXPECT_DEATH(f.net.attach(1, [](const Packet&) {}), "re-attach");
  f.net.detach(1);
  f.net.attach(1, [](const Packet&) {});  // detach → attach stays legal
  SUCCEED();
}

TEST(Network, DetachWithPacketsInFlightDropsThemSilently) {
  Fixture f;
  std::size_t delivered = 0;
  f.net.attach(2, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 5; ++i) f.net.send(1, 2, wire::Bytes{1});
  ASSERT_EQ(f.net.channel(1, 2).in_flight(), 5u);
  f.net.detach(2);  // crash with traffic still in the channel
  f.sched.run_until(kSec);
  // The channel drains its events; none reach the crashed destination.
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(f.net.channel(1, 2).in_flight(), 0u);
  // A fresh incarnation attaching later must not receive the stale burst.
  f.net.attach(2, [&](const Packet&) { ++delivered; });
  f.sched.run_until(2 * kSec);
  EXPECT_EQ(delivered, 0u);
}

TEST(Network, DetachModelsCrash) {
  Fixture f;
  std::size_t delivered = 0;
  f.net.attach(2, [&](const Packet&) { ++delivered; });
  f.net.send(1, 2, wire::Bytes{1});
  f.sched.run_until(kSec);
  EXPECT_EQ(delivered, 1u);
  f.net.detach(2);
  f.net.send(1, 2, wire::Bytes{2});
  f.sched.run_until(2 * kSec);
  EXPECT_EQ(delivered, 1u);  // crashed processor takes no further steps
}

TEST(Network, ChannelsArePerDirectedPair) {
  Fixture f;
  f.net.attach(1, [](const Packet&) {});
  f.net.attach(2, [](const Packet&) {});
  f.net.send(1, 2, wire::Bytes{1});
  f.net.send(2, 1, wire::Bytes{2});
  EXPECT_EQ(f.net.channel(1, 2).stats().sent, 1u);
  EXPECT_EQ(f.net.channel(2, 1).stats().sent, 1u);
}

TEST(Network, LoopbackDelivers) {
  Fixture f;
  std::size_t delivered = 0;
  f.net.attach(3, [&](const Packet&) { ++delivered; });
  f.net.send(3, 3, wire::Bytes{1});
  f.sched.run_until(kSec);
  EXPECT_EQ(delivered, 1u);
}

TEST(Network, SplitBlocksCrossTrafficUntilHealed) {
  Fixture f;
  std::size_t at1 = 0, at3 = 0;
  f.net.attach(1, [&](const Packet&) { ++at1; });
  f.net.attach(3, [&](const Packet&) { ++at3; });
  f.net.split({1, 2}, {3, 4});
  EXPECT_TRUE(f.net.blocked(1, 3));
  EXPECT_TRUE(f.net.blocked(3, 1));
  EXPECT_FALSE(f.net.blocked(1, 2));
  f.net.send(1, 3, wire::Bytes{1});
  f.net.send(3, 1, wire::Bytes{2});
  f.sched.run_until(kSec);
  EXPECT_EQ(at1, 0u);
  EXPECT_EQ(at3, 0u);
  EXPECT_EQ(f.net.packets_blocked(), 2u);
  f.net.heal();
  f.net.send(1, 3, wire::Bytes{3});
  f.sched.run_until(2 * kSec);
  EXPECT_EQ(at3, 1u);
}

TEST(Network, IsolationIsOrthogonalToPartitions) {
  // isolate/rejoin model SIGSTOP/SIGCONT on the process backend: pausing a
  // node must not eat partition blocks, and healing a partition must not
  // resume a paused node.
  Fixture f;
  f.net.split({1, 2}, {3, 4});
  f.net.isolate(2);
  EXPECT_TRUE(f.net.blocked(2, 1));  // isolation cuts within the partition
  EXPECT_TRUE(f.net.blocked(2, 3));
  f.net.rejoin(2);
  EXPECT_FALSE(f.net.blocked(2, 1));  // isolation gone...
  EXPECT_TRUE(f.net.blocked(2, 3));   // ...but the split block survived
  EXPECT_TRUE(f.net.blocked(1, 4));

  f.net.isolate(2);
  f.net.heal();
  EXPECT_FALSE(f.net.blocked(1, 3));  // partition healed
  EXPECT_TRUE(f.net.blocked(2, 1));   // the paused node stays unreachable
  f.net.rejoin(2);
  EXPECT_FALSE(f.net.blocked(2, 1));
}

TEST(Network, InFlightPacketsSurviveAPartitionCut) {
  Fixture f;
  std::size_t delivered = 0;
  f.net.attach(2, [&](const Packet&) { ++delivered; });
  f.net.send(1, 2, wire::Bytes{1});  // leaves before the cut
  f.net.split({1}, {2});
  f.sched.run_until(kSec);
  EXPECT_EQ(delivered, 1u);  // the fabric does not destroy departed traffic
}

TEST(Network, ForEachChannelVisitsAll) {
  Fixture f;
  f.net.send(1, 2, {});
  f.net.send(2, 3, {});
  int visited = 0;
  f.net.for_each_channel([&](NodeId, NodeId, Channel&) { ++visited; });
  EXPECT_EQ(visited, 2);
}

}  // namespace
}  // namespace ssr::net
