// Loopback exercises of the UDP transport: two in-process endpoints on
// real sockets exchange token-link frames, and hostile datagrams (garbage,
// truncations, wrong version, unknown destination) are dropped without
// crashing — the same garbage-tolerance contract the simulated channels
// enforce on the decode paths.
#include "net/udp_transport.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "dlink/token_link.hpp"
#include "net/session.hpp"

namespace ssr::net {
namespace {

UdpTransportConfig self_only(NodeId id) {
  UdpTransportConfig cfg;
  cfg.self = id;
  cfg.peers[id] = UdpEndpoint{"127.0.0.1", 0};  // OS-assigned port
  return cfg;
}

/// Polls both endpoints until `pred` holds or `wall_ms` elapses.
template <class Pred>
bool pump(UdpTransport& a, UdpTransport& b, Pred pred, int wall_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(wall_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    a.poll_once(kMsec);
    b.poll_once(kMsec);
  }
  return pred();
}

// The envelope codec itself (roundtrip, bit-flip/truncation/version-skew
// sweeps) is covered in tests/udp/session_test.cpp — the codec lives in
// net::Session now; this file exercises the socket datapath above it.

// The hostile-envelope sweep through a real socket: hostile datagrams
// only ever move the drop counters, and delivery keeps working afterwards.
TEST(UdpTransport, HostileDatagramSweepCountsCleanDrops) {
  UdpTransport t(self_only(1));
  std::size_t delivered = 0;
  t.attach(1, [&](const Packet&) { ++delivered; });

  const int raw = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_port = htons(t.local_port());
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const wire::Bytes good = Session::encode_envelope(0, 5, 1, {1, 2, 3});

  // One datagram per magic/version-byte bit flip (all must drop as
  // malformed — a flipped src/dst would decode fine), plus two truncations.
  std::size_t fired = 0;
  for (std::size_t byte = 0; byte < 4 + 1; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      wire::Bytes d = good;
      d[byte] ^= static_cast<std::uint8_t>(1u << bit);
      ASSERT_EQ(::sendto(raw, d.data(), d.size(), 0,
                         reinterpret_cast<sockaddr*>(&to), sizeof(to)),
                static_cast<ssize_t>(d.size()));
      ++fired;
    }
  }
  for (std::size_t cut : {1u, 7u}) {
    wire::Bytes d = good;
    d.resize(d.size() - cut);
    ASSERT_EQ(::sendto(raw, d.data(), d.size(), 0,
                       reinterpret_cast<sockaddr*>(&to), sizeof(to)),
              static_cast<ssize_t>(d.size()));
    ++fired;
  }
  ::close(raw);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline &&
         t.stats().dropped_malformed < fired) {
    t.poll_once(kMsec);
  }
  EXPECT_EQ(t.stats().dropped_malformed, fired);
  EXPECT_EQ(t.stats().dropped_unattached, 0u);
  EXPECT_EQ(delivered, 0u);

  t.send(1, 1, wire::Bytes{9});
  const auto deadline2 =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline2 && delivered == 0) {
    t.poll_once(kMsec);
  }
  EXPECT_EQ(delivered, 1u);
}

// Two fleets on one host, same node ids, different shard tags: traffic
// stamped for shard 1 must never reach a shard-0 node even when an address
// book entry (mis)routes it there — and the drop is visible in stats, not
// silent. Within the same shard, the tag is pass-through.
TEST(UdpTransport, ForeignShardTrafficIsFilteredBeforeDelivery) {
  UdpTransportConfig cfg_a = self_only(1);      // shard 0 (default)
  UdpTransportConfig cfg_b = self_only(1);
  cfg_b.shard = 1;
  UdpTransport a(cfg_a), b(cfg_b);
  // Deliberate cross-shard misconfiguration: a routes "node 1" to b.
  a.set_peer(1, UdpEndpoint{"127.0.0.1", b.local_port()});
  std::size_t b_got = 0;
  b.attach(1, [&](const Packet&) { ++b_got; });

  a.send(1, 1, wire::Bytes{42});
  pump(a, b, [&] { return b.stats().dropped_wrong_shard >= 1; }, 2000);
  EXPECT_EQ(b.stats().dropped_wrong_shard, 1u);
  EXPECT_EQ(b.stats().received, 0u);
  EXPECT_EQ(b_got, 0u);

  // Same-shard traffic with an explicit tag flows normally.
  UdpTransportConfig cfg_c = self_only(2);
  cfg_c.shard = 1;
  UdpTransport c(cfg_c);
  c.set_peer(1, UdpEndpoint{"127.0.0.1", b.local_port()});
  c.send(2, 1, wire::Bytes{7});
  EXPECT_TRUE(pump(c, b, [&] { return b_got >= 1; }, 2000));
  EXPECT_EQ(b.stats().received, 1u);
}

TEST(UdpTransport, BlockedPeerFilterCutsBothDirections) {
  UdpTransport a(self_only(1)), b(self_only(2));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", b.local_port()});
  b.set_peer(1, UdpEndpoint{"127.0.0.1", a.local_port()});
  std::size_t a_got = 0, b_got = 0;
  a.attach(1, [&](const Packet&) { ++a_got; });
  b.attach(2, [&](const Packet&) { ++b_got; });

  a.set_blocked({2});
  a.send(1, 2, wire::Bytes{1});       // suppressed at the sender
  b.send(2, 1, wire::Bytes{2});       // dropped at a's receive side
  pump(a, b, [&] { return a.stats().filtered_in >= 1; }, 2000);
  EXPECT_EQ(a.stats().filtered_out, 1u);
  EXPECT_EQ(a.stats().filtered_in, 1u);
  EXPECT_EQ(a_got, 0u);
  EXPECT_EQ(b_got, 0u);

  // Healing the filter restores both directions.
  a.set_blocked({});
  a.send(1, 2, wire::Bytes{3});
  b.send(2, 1, wire::Bytes{4});
  EXPECT_TRUE(pump(a, b, [&] { return a_got >= 1 && b_got >= 1; }, 2000));
}

TEST(UdpTransport, LearnsPeerAddressFromIncomingDatagrams) {
  // b starts with no route to a (a's entry would normally come from the
  // peers file); one well-formed datagram from a teaches it.
  UdpTransport a(self_only(1)), b(self_only(2));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", b.local_port()});
  std::size_t a_got = 0, b_got = 0;
  a.attach(1, [&](const Packet&) { ++a_got; });
  b.attach(2, [&](const Packet&) { ++b_got; });

  EXPECT_FALSE(b.has_peer(1));
  a.send(1, 2, wire::Bytes{7});
  ASSERT_TRUE(pump(a, b, [&] { return b_got >= 1; }, 2000));
  EXPECT_TRUE(b.has_peer(1));

  b.send(2, 1, wire::Bytes{8});  // reply over the learned route
  EXPECT_TRUE(pump(a, b, [&] { return a_got >= 1; }, 2000));
}

TEST(UdpTransport, DeliversBetweenTwoEndpoints) {
  UdpTransport a(self_only(1)), b(self_only(2));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", b.local_port()});
  b.set_peer(1, UdpEndpoint{"127.0.0.1", a.local_port()});

  std::vector<Packet> got;
  b.attach(2, [&](const Packet& p) { got.push_back(p); });
  a.send(1, 2, wire::Bytes{42});
  ASSERT_TRUE(pump(a, b, [&] { return !got.empty(); }, 2000));
  EXPECT_EQ(got[0].src, 1u);
  EXPECT_EQ(got[0].payload, wire::Bytes{42});
}

TEST(UdpTransport, TokenLinkPairCompletesRoundsOverSockets) {
  UdpTransport ta(self_only(1)), tb(self_only(2));
  ta.set_peer(2, UdpEndpoint{"127.0.0.1", tb.local_port()});
  tb.set_peer(1, UdpEndpoint{"127.0.0.1", ta.local_port()});

  dlink::LinkConfig lc;
  lc.retransmit_period = 2 * kMsec;  // wall clock now — pace for a real loop
  lc.ack_threshold = 2;
  lc.clean_threshold = 2;

  std::vector<wire::Bytes> a_outbox{{10}, {11}, {12}};
  std::vector<wire::Bytes> b_got;
  auto pop = [&]() -> wire::Bytes {
    if (a_outbox.empty()) return {};
    wire::Bytes out = a_outbox.front();
    a_outbox.erase(a_outbox.begin());
    return out;
  };
  dlink::TokenLink a(
      ta, Rng(1), lc, 1, 2, pop, [](const wire::Bytes&) {}, [] {});
  dlink::TokenLink b(
      tb, Rng(2), lc, 2, 1, [] { return wire::Bytes{}; },
      [&](const wire::Bytes& d) {
        if (!d.empty()) b_got.push_back(d);
      },
      [] {});
  ta.attach(1, [&](const Packet& p) {
    auto f = dlink::Frame::decode(p.payload);
    if (f) a.handle_frame(*f);
  });
  tb.attach(2, [&](const Packet& p) {
    auto f = dlink::Frame::decode(p.payload);
    if (f) b.handle_frame(*f);
  });
  a.start();
  b.start();

  ASSERT_TRUE(pump(ta, tb, [&] { return b_got.size() >= 3; }, 10000))
      << "rounds=" << a.stats().rounds_completed
      << " cleans=" << a.stats().cleans_completed;
  EXPECT_EQ(b_got[0], wire::Bytes{10});
  EXPECT_EQ(b_got[1], wire::Bytes{11});
  EXPECT_EQ(b_got[2], wire::Bytes{12});
  EXPECT_GE(a.stats().cleans_completed, 1u);
  // The third payload is delivered inside round 3, before its acks close
  // the round on the sender — so only 2 rounds are guaranteed complete.
  EXPECT_GE(a.stats().rounds_completed, 2u);
}

TEST(UdpTransport, CorruptedDatagramsAreDroppedNotFatal) {
  UdpTransport t(self_only(1));
  std::size_t delivered = 0;
  t.attach(1, [&](const Packet&) { ++delivered; });

  // Fire raw garbage at the transport's port from a plain socket.
  const int raw = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_port = htons(t.local_port());
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const wire::Bytes junk{0xFF, 0x00, 0xAB, 0xCD, 0xEF, 0x12, 0x34};
  const wire::Bytes truncated = [&] {
    wire::Bytes env = Session::encode_envelope(0, 5, 1, {1, 2, 3});
    env.resize(env.size() - 2);
    return env;
  }();
  const wire::Bytes unknown_dst = Session::encode_envelope(0, 5, 99, {1});
  for (const wire::Bytes* d : {&junk, &truncated, &unknown_dst}) {
    ASSERT_EQ(::sendto(raw, d->data(), d->size(), 0,
                       reinterpret_cast<sockaddr*>(&to), sizeof(to)),
              static_cast<ssize_t>(d->size()));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline &&
         t.stats().dropped_malformed + t.stats().dropped_unattached < 3) {
    t.poll_once(kMsec);
  }
  ::close(raw);
  EXPECT_EQ(t.stats().dropped_malformed, 2u);
  EXPECT_EQ(t.stats().dropped_unattached, 1u);
  EXPECT_EQ(delivered, 0u);

  // The transport still works after eating garbage.
  t.send(1, 1, wire::Bytes{9});
  const auto deadline2 =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline2 && delivered == 0) {
    t.poll_once(kMsec);
  }
  EXPECT_EQ(delivered, 1u);
}

TEST(UdpTransport, TimersFireInOrderAndCancelledOnesDoNot) {
  UdpTransport t(self_only(1));
  std::vector<int> fired;
  t.schedule_after(10 * kMsec, [&] { fired.push_back(2); });
  t.schedule_after(2 * kMsec, [&] { fired.push_back(1); });
  TimerHandle cancelled =
      t.schedule_after(5 * kMsec, [&] { fired.push_back(99); });
  EXPECT_TRUE(cancelled.pending());
  cancelled.cancel();
  EXPECT_FALSE(cancelled.pending());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline && fired.size() < 2) {
    t.poll_once(5 * kMsec);
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(UdpTransport, ReattachAsserts) {
  UdpTransport t(self_only(1));
  t.attach(1, [](const Packet&) {});
  EXPECT_DEATH(t.attach(1, [](const Packet&) {}), "re-attach");
  t.detach(1);
  t.attach(1, [](const Packet&) {});  // legal again after detach
}

}  // namespace
}  // namespace ssr::net
