#!/usr/bin/env bash
# Multi-process UDP smoke: launch 3 ssr_node daemons on localhost, wait for
# every one to report the common configuration {1,2,3} and for node 1 to
# complete a counter increment, then tear everything down.
#
#   udp_smoke.sh <path-to-ssr_node> [timeout-seconds]
set -u

BIN="${1:?usage: udp_smoke.sh <ssr_node binary> [timeout-seconds]}"
TIMEOUT="${2:-90}"
DIR="$(mktemp -d)"
PIDS=()

cleanup() {
  if [ "${#PIDS[@]}" -gt 0 ]; then
    kill "${PIDS[@]}" 2>/dev/null
    wait "${PIDS[@]}" 2>/dev/null
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

# A PID- and RANDOM-derived base port keeps concurrent CI runs apart;
# capped below 32768 to stay out of the Linux ephemeral port range.
BASE=$((10000 + ($$ * 13 + RANDOM) % 22000))
{
  echo "1 127.0.0.1 $BASE"
  echo "2 127.0.0.1 $((BASE + 1))"
  echo "3 127.0.0.1 $((BASE + 2))"
} > "$DIR/peers.txt"

for id in 1 2 3; do
  inc=0
  [ "$id" -eq 1 ] && inc=1
  "$BIN" --id "$id" --peers "$DIR/peers.txt" --seconds "$TIMEOUT" \
    --increments "$inc" > "$DIR/n$id.log" 2>&1 &
  PIDS+=("$!")
done

deadline=$((SECONDS + TIMEOUT))
while [ "$SECONDS" -lt "$deadline" ]; do
  if grep -q "^SSR_NODE_DONE$" "$DIR/n1.log" 2>/dev/null \
     && grep -q "^SSR_NODE_DONE$" "$DIR/n2.log" 2>/dev/null \
     && grep -q "^SSR_NODE_DONE$" "$DIR/n3.log" 2>/dev/null \
     && grep -q "^INCREMENT_OK" "$DIR/n1.log"; then
    echo "udp_smoke: OK ($(grep -h ^CONVERGED "$DIR"/n*.log | tr '\n' ' '))"
    exit 0
  fi
  # Bail out early if a daemon died (port clash, assertion, ...).
  for pid in "${PIDS[@]}"; do
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "udp_smoke: FAIL — a node exited early"
      tail -n 25 "$DIR"/n*.log
      exit 1
    fi
  done
  sleep 1
done

echo "udp_smoke: FAIL — goals not reached within ${TIMEOUT}s"
tail -n 25 "$DIR"/n*.log
exit 1
