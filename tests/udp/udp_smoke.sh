#!/usr/bin/env bash
# Multi-process UDP smoke: launch 3 ssr_node daemons on localhost, wait for
# every one to report the common configuration {1,2,3} and for node 1 to
# complete a counter increment, then tear everything down.
#
# Ports are never guessed: every daemon binds port 0, reports the
# OS-assigned port through --port-file, and this script publishes the
# complete map with one atomic rewrite of the shared peers file — the
# daemons poll the file (and learn addresses from incoming datagrams) until
# every entry is resolved. Concurrent runs can no longer collide.
#
#   udp_smoke.sh <path-to-ssr_node> [timeout-seconds]
set -u

BIN="${1:?usage: udp_smoke.sh <ssr_node binary> [timeout-seconds]}"
TIMEOUT="${2:-90}"
DIR="$(mktemp -d)"
PIDS=()

cleanup() {
  if [ "${#PIDS[@]}" -gt 0 ]; then
    kill "${PIDS[@]}" 2>/dev/null
    wait "${PIDS[@]}" 2>/dev/null
  fi
  rm -rf "$DIR"
}
trap cleanup EXIT

# Everyone starts with an all-zero map and discovers their own port.
{
  echo "1 127.0.0.1 0"
  echo "2 127.0.0.1 0"
  echo "3 127.0.0.1 0"
} > "$DIR/peers.txt"

for id in 1 2 3; do
  inc=0
  [ "$id" -eq 1 ] && inc=1
  "$BIN" --id "$id" --peers "$DIR/peers.txt" --port-file "$DIR/port.$id" \
    --seconds "$TIMEOUT" --increments "$inc" > "$DIR/n$id.log" 2>&1 &
  PIDS+=("$!")
done

# Collect the assigned ports and publish the completed map atomically.
port_deadline=$((SECONDS + 20))
while :; do
  if [ -s "$DIR/port.1" ] && [ -s "$DIR/port.2" ] && [ -s "$DIR/port.3" ]; then
    {
      echo "1 127.0.0.1 $(awk '{print $1}' "$DIR/port.1")"
      echo "2 127.0.0.1 $(awk '{print $1}' "$DIR/port.2")"
      echo "3 127.0.0.1 $(awk '{print $1}' "$DIR/port.3")"
    } > "$DIR/peers.txt.tmp"
    mv "$DIR/peers.txt.tmp" "$DIR/peers.txt"
    break
  fi
  if [ "$SECONDS" -ge "$port_deadline" ]; then
    echo "udp_smoke: FAIL — daemons never reported their ports"
    tail -n 25 "$DIR"/n*.log 2>/dev/null
    exit 1
  fi
  sleep 0.2
done

deadline=$((SECONDS + TIMEOUT))
while [ "$SECONDS" -lt "$deadline" ]; do
  if grep -q "^SSR_NODE_DONE$" "$DIR/n1.log" 2>/dev/null \
     && grep -q "^SSR_NODE_DONE$" "$DIR/n2.log" 2>/dev/null \
     && grep -q "^SSR_NODE_DONE$" "$DIR/n3.log" 2>/dev/null \
     && grep -q "^INCREMENT_OK" "$DIR/n1.log"; then
    echo "udp_smoke: OK ($(grep -h ^CONVERGED "$DIR"/n*.log | tr '\n' ' '))"
    exit 0
  fi
  # Bail out early if a daemon died (assertion, bad binary, ...).
  for pid in "${PIDS[@]}"; do
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "udp_smoke: FAIL — a node exited early"
      tail -n 25 "$DIR"/n*.log
      exit 1
    fi
  done
  sleep 1
done

echo "udp_smoke: FAIL — goals not reached within ${TIMEOUT}s"
tail -n 25 "$DIR"/n*.log
exit 1
