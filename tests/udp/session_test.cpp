// net::Session unit tests: the envelope codec sweeps ported from the
// pre-extraction UdpTransport tests (bit flips, truncation, version skew —
// the extraction must provably preserve PR 5 semantics), plus the
// session-owned classification and peer-learning policy that used to be
// buried in the socket drain loop.
#include "net/session.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace ssr::net {
namespace {

TEST(SessionEnvelope, Roundtrip) {
  const wire::Bytes payload{1, 2, 3, 4};
  const wire::Bytes datagram = Session::encode_envelope(3, 7, 9, payload);
  std::uint32_t shard = 0;
  auto pkt =
      Session::decode_envelope(datagram.data(), datagram.size(), &shard);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(shard, 3u);
  EXPECT_EQ(pkt->src, 7u);
  EXPECT_EQ(pkt->dst, 9u);
  EXPECT_EQ(pkt->payload, payload);
}

TEST(SessionEnvelope, SealStampsTheSessionShard) {
  Session s(SessionConfig{1, 42, true});
  const wire::Bytes payload{9, 8, 7};
  const wire::Bytes datagram = s.seal(1, 2, payload);
  std::uint32_t shard = 0;
  auto pkt =
      Session::decode_envelope(datagram.data(), datagram.size(), &shard);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(shard, 42u);
  EXPECT_EQ(pkt->src, 1u);
  EXPECT_EQ(pkt->dst, 2u);
  EXPECT_EQ(pkt->payload, payload);
}

TEST(SessionEnvelope, RejectsGarbageAndTruncation) {
  EXPECT_FALSE(Session::decode_envelope(nullptr, 0).has_value());
  const wire::Bytes junk{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3};
  EXPECT_FALSE(Session::decode_envelope(junk.data(), junk.size()));
  wire::Bytes good = Session::encode_envelope(0, 1, 2, {5, 6, 7});
  for (std::size_t cut = 1; cut < good.size(); ++cut) {
    EXPECT_FALSE(Session::decode_envelope(good.data(), good.size() - cut))
        << "accepted a datagram truncated by " << cut;
  }
  wire::Bytes bad_version = good;
  bad_version[4] ^= 0xFF;  // the version byte follows the u32 magic
  EXPECT_FALSE(
      Session::decode_envelope(bad_version.data(), bad_version.size()));
  wire::Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(Session::decode_envelope(trailing.data(), trailing.size()));
}

// Table-driven hostile-envelope sweep: every single-bit flip over the whole
// datagram and a version skew table. A flip inside the framing (magic,
// version, length) must be rejected; a flip inside src/dst/payload yields a
// well-formed envelope with different content — either way decode must not
// crash and must never return a packet whose payload length disagrees with
// the framing.
TEST(SessionEnvelope, TableDrivenBitFlipsNeverCrashOrMisframe) {
  const wire::Bytes payload{0x10, 0x20, 0x30, 0x40, 0x50};
  const wire::Bytes good = Session::encode_envelope(0, 3, 4, payload);
  std::size_t rejected = 0;
  for (std::size_t byte = 0; byte < good.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      wire::Bytes flipped = good;
      flipped[byte] ^= static_cast<std::uint8_t>(1u << bit);
      auto pkt = Session::decode_envelope(flipped.data(), flipped.size());
      if (!pkt.has_value()) {
        ++rejected;
        continue;
      }
      EXPECT_EQ(pkt->payload.size(), payload.size())
          << "byte " << byte << " bit " << bit;
    }
  }
  // Everything in the magic/version/length region must have been rejected.
  EXPECT_GE(rejected, (4 + 1 + 4) * 8u);

  for (int version : {0, 1, 17, 255}) {
    wire::Bytes d = good;
    d[4] = static_cast<std::uint8_t>(version);
    EXPECT_FALSE(Session::decode_envelope(d.data(), d.size()))
        << "accepted version " << version;
  }

  // Truncation table: every prefix of a valid datagram is rejected.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_FALSE(Session::decode_envelope(good.data(), len))
        << "accepted truncated length " << len;
  }
}

// -- admit(): classification + learning policy ------------------------------

Session::Address addr_of(std::uint8_t tag) {
  Session::Address a(8, 0);
  a[0] = tag;
  return a;
}

TEST(SessionAdmit, ClassifiesMalformedWrongShardAndAccept) {
  Session s(SessionConfig{1, 0, true});
  Packet out;

  const wire::Bytes junk{0xBA, 0xD0, 0xBA, 0xD0, 0xBA, 0xD0};
  EXPECT_EQ(s.admit(junk.data(), junk.size(), nullptr, 0, &out),
            Session::Verdict::kMalformed);

  const wire::Bytes foreign = Session::encode_envelope(5, 2, 1, {1});
  EXPECT_EQ(s.admit(foreign.data(), foreign.size(), nullptr, 0, &out),
            Session::Verdict::kWrongShard);

  const wire::Bytes ok = Session::encode_envelope(0, 2, 1, {1, 2});
  EXPECT_EQ(s.admit(ok.data(), ok.size(), nullptr, 0, &out),
            Session::Verdict::kAccept);
  EXPECT_EQ(out.src, 2u);
  EXPECT_EQ(out.dst, 1u);
  EXPECT_EQ(out.payload, (wire::Bytes{1, 2}));
}

TEST(SessionAdmit, LearnsAndRefreshesRoutesFromAcceptedDatagrams) {
  Session s(SessionConfig{1, 0, true});
  Packet out;
  const wire::Bytes from_2 = Session::encode_envelope(0, 2, 1, {1});

  // First contact installs the route.
  const Session::Address a1 = addr_of(0xAA);
  EXPECT_FALSE(s.has_route(2));
  ASSERT_EQ(s.admit(from_2.data(), from_2.size(), a1.data(), a1.size(), &out),
            Session::Verdict::kAccept);
  ASSERT_TRUE(s.has_route(2));
  EXPECT_EQ(*s.route(2), a1);
  EXPECT_EQ(s.stats().learned, 1u);

  // Same source address again: no rebind.
  ASSERT_EQ(s.admit(from_2.data(), from_2.size(), a1.data(), a1.size(), &out),
            Session::Verdict::kAccept);
  EXPECT_EQ(s.stats().learned, 1u);

  // The peer respawned elsewhere: the route follows it.
  const Session::Address a2 = addr_of(0xBB);
  ASSERT_EQ(s.admit(from_2.data(), from_2.size(), a2.data(), a2.size(), &out),
            Session::Verdict::kAccept);
  EXPECT_EQ(*s.route(2), a2);
  EXPECT_EQ(s.stats().learned, 2u);
}

TEST(SessionAdmit, NeverLearnsSelfForeignShardsOrWithoutAnAddress) {
  Session s(SessionConfig{1, 0, true});
  Packet out;
  const Session::Address a = addr_of(0xCC);

  // Own id: a datagram claiming to be from self must not install a route.
  const wire::Bytes from_self = Session::encode_envelope(0, 1, 1, {1});
  ASSERT_EQ(
      s.admit(from_self.data(), from_self.size(), a.data(), a.size(), &out),
      Session::Verdict::kAccept);
  EXPECT_FALSE(s.has_route(1));

  // Foreign shard: well-formed, but the same node id legitimately exists
  // in every shard — its address must never be learned.
  const wire::Bytes foreign = Session::encode_envelope(7, 3, 1, {1});
  EXPECT_EQ(s.admit(foreign.data(), foreign.size(), a.data(), a.size(), &out),
            Session::Verdict::kWrongShard);
  EXPECT_FALSE(s.has_route(3));

  // No usable source address: accepted, not learned.
  const wire::Bytes from_4 = Session::encode_envelope(0, 4, 1, {1});
  EXPECT_EQ(s.admit(from_4.data(), from_4.size(), nullptr, 0, &out),
            Session::Verdict::kAccept);
  EXPECT_FALSE(s.has_route(4));

  EXPECT_EQ(s.stats().learned, 0u);
}

TEST(SessionAdmit, LearningCanBeDisabled) {
  Session s(SessionConfig{1, 0, false});
  Packet out;
  const Session::Address a = addr_of(0xDD);
  const wire::Bytes from_2 = Session::encode_envelope(0, 2, 1, {1});
  ASSERT_EQ(s.admit(from_2.data(), from_2.size(), a.data(), a.size(), &out),
            Session::Verdict::kAccept);
  EXPECT_FALSE(s.has_route(2));
}

TEST(SessionRoutes, SetRouteOverridesAndRouteReturnsNullWhenUnknown) {
  Session s(SessionConfig{1, 0, true});
  EXPECT_EQ(s.route(9), nullptr);
  s.set_route(9, addr_of(0x01));
  ASSERT_NE(s.route(9), nullptr);
  EXPECT_EQ(*s.route(9), addr_of(0x01));
  s.set_route(9, addr_of(0x02));
  EXPECT_EQ(*s.route(9), addr_of(0x02));
}

}  // namespace
}  // namespace ssr::net
