// Syscall-batching datapath tests: the sendmmsg ring (flush on full, on the
// explicit tick-boundary hook, and before a poll sleep), partial sendmmsg
// completions, per-datagram errors inside a batch, and the recvmmsg drain —
// including the EINTR-retry / real-error split that used to silently end a
// drain. Kernel edge cases are scripted through the transport's raw syscall
// seams, so every branch runs deterministically.
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "net/session.hpp"
#include "net/udp_transport.hpp"

namespace ssr::net {
namespace {

UdpTransportConfig self_only(NodeId id, std::size_t batch) {
  UdpTransportConfig cfg;
  cfg.self = id;
  cfg.peers[id] = UdpEndpoint{"127.0.0.1", 0};  // OS-assigned port
  cfg.batch = batch;
  return cfg;
}

/// Polls both endpoints until `pred` holds or `wall_ms` elapses.
template <class Pred>
bool pump(UdpTransport& a, UdpTransport& b, Pred pred, int wall_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(wall_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    a.poll_once(kMsec);
    b.poll_once(kMsec);
  }
  return pred();
}

// Scripted syscall state (reset per test; the seams are raw function
// pointers, so the script lives in globals).
struct SyscallScript {
  int send_calls = 0;
  int recv_calls = 0;
  unsigned clamp = 0;       // >0: send at most this many datagrams per call
  int fail_first_errno = 0;  // first call fails with this errno, then real
  int always_errno = 0;      // every call fails with this errno
};
SyscallScript g_script;

int scripted_sendmmsg(int fd, mmsghdr* msgs, unsigned n, int flags) {
  ++g_script.send_calls;
  if (g_script.always_errno != 0) {
    errno = g_script.always_errno;
    return -1;
  }
  if (g_script.fail_first_errno != 0 && g_script.send_calls == 1) {
    errno = g_script.fail_first_errno;
    return -1;
  }
  if (g_script.clamp > 0 && n > g_script.clamp) n = g_script.clamp;
  return static_cast<int>(::sendmmsg(fd, msgs, n, flags));
}

int scripted_recvmmsg(int fd, mmsghdr* msgs, unsigned n, int flags,
                      timespec* timeout) {
  ++g_script.recv_calls;
  if (g_script.always_errno != 0) {
    errno = g_script.always_errno;
    return -1;
  }
  if (g_script.fail_first_errno != 0 && g_script.recv_calls == 1) {
    errno = g_script.fail_first_errno;
    return -1;
  }
  return static_cast<int>(::recvmmsg(fd, msgs, n, flags, timeout));
}

// -- Ring flush points -------------------------------------------------------

TEST(UdpBatch, RingFullTriggersOneSendmmsgForTheWholeBatch) {
  UdpTransport a(self_only(1, 4)), b(self_only(2, 4));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", b.local_port()});
  std::size_t b_got = 0;
  b.attach(2, [&](const Packet&) { ++b_got; });

  for (std::uint8_t i = 0; i < 4; ++i) a.send(1, 2, wire::Bytes{i});
  // The 4th send filled the ring: everything left in one syscall already.
  EXPECT_EQ(a.stats().send_syscalls, 1u);
  EXPECT_EQ(a.stats().sent, 4u);
  EXPECT_EQ(a.stats().batched_sends, 4u);
  EXPECT_TRUE(pump(a, b, [&] { return b_got >= 4; }, 2000));
}

TEST(UdpBatch, ExplicitFlushDrainsAPartialRing) {
  UdpTransport a(self_only(1, 8)), b(self_only(2, 8));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", b.local_port()});
  std::size_t b_got = 0;
  b.attach(2, [&](const Packet&) { ++b_got; });

  for (std::uint8_t i = 0; i < 3; ++i) a.send(1, 2, wire::Bytes{i});
  EXPECT_EQ(a.stats().send_syscalls, 0u);  // staged, nothing on the wire yet
  a.flush();  // the tick-boundary hook
  EXPECT_EQ(a.stats().send_syscalls, 1u);
  EXPECT_EQ(a.stats().sent, 3u);
  EXPECT_EQ(a.stats().batched_sends, 3u);
  a.flush();  // empty ring: no syscall
  EXPECT_EQ(a.stats().send_syscalls, 1u);
  EXPECT_TRUE(pump(a, b, [&] { return b_got >= 3; }, 2000));
}

TEST(UdpBatch, PollSleepFlushesStagedSendsFirst) {
  UdpTransport a(self_only(1, 16)), b(self_only(2, 16));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", b.local_port()});
  std::size_t b_got = 0;
  b.attach(2, [&](const Packet&) { ++b_got; });

  a.send(1, 2, wire::Bytes{1});
  a.send(1, 2, wire::Bytes{2});
  EXPECT_EQ(a.stats().send_syscalls, 0u);
  // A poll must never sleep on a staged send: the ring flushes on entry.
  a.poll_once(kMsec);
  EXPECT_EQ(a.stats().send_syscalls, 1u);
  EXPECT_EQ(a.stats().sent, 2u);
  EXPECT_TRUE(pump(a, b, [&] { return b_got >= 2; }, 2000));
}

TEST(UdpBatch, BatchOfOneDegradesToUnbatchedWithNoSharedSyscalls) {
  UdpTransport a(self_only(1, 1)), b(self_only(2, 1));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", b.local_port()});
  std::size_t b_got = 0;
  b.attach(2, [&](const Packet&) { ++b_got; });

  for (std::uint8_t i = 0; i < 5; ++i) a.send(1, 2, wire::Bytes{i});
  EXPECT_EQ(a.stats().send_syscalls, 5u);  // one per datagram
  EXPECT_EQ(a.stats().sent, 5u);
  EXPECT_EQ(a.stats().batched_sends, 0u);  // nothing ever shared a syscall
  EXPECT_TRUE(pump(a, b, [&] { return b_got >= 5; }, 2000));
}

// -- Send-side taxonomy ------------------------------------------------------

TEST(UdpBatch, MissingRouteCountsNoRouteNotSendFailure) {
  UdpTransport a(self_only(1, 4));
  a.send(1, 99, wire::Bytes{1});  // no route to 99
  EXPECT_EQ(a.stats().no_route, 1u);
  EXPECT_EQ(a.stats().send_failures, 0u);
  a.flush();
  EXPECT_EQ(a.stats().send_syscalls, 0u);  // nothing was staged
}

TEST(UdpBatch, PartialSendmmsgReturnResumesAtFirstUnsentDatagram) {
  UdpTransport a(self_only(1, 4)), b(self_only(2, 4));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", b.local_port()});
  std::size_t b_got = 0;
  b.attach(2, [&](const Packet&) { ++b_got; });

  g_script = SyscallScript{};
  g_script.clamp = 3;  // kernel "accepts" at most 3 datagrams per call
  a.set_syscall_hooks(&scripted_sendmmsg, nullptr);
  for (std::uint8_t i = 0; i < 4; ++i) a.send(1, 2, wire::Bytes{i});
  a.set_syscall_hooks(nullptr, nullptr);

  // 3 + 1: the flush loop resumed at the unsent tail, losing nothing.
  EXPECT_EQ(g_script.send_calls, 2);
  EXPECT_EQ(a.stats().send_syscalls, 2u);
  EXPECT_EQ(a.stats().sent, 4u);
  EXPECT_EQ(a.stats().send_failures, 0u);
  EXPECT_EQ(a.stats().batched_sends, 3u);  // the singleton tail rides alone
  EXPECT_TRUE(pump(a, b, [&] { return b_got >= 4; }, 2000));
}

TEST(UdpBatch, PerDatagramErrorSkipsTheHeadAndFlushesTheRest) {
  UdpTransport a(self_only(1, 4)), b(self_only(2, 4));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", b.local_port()});
  std::size_t b_got = 0;
  b.attach(2, [&](const Packet&) { ++b_got; });

  g_script = SyscallScript{};
  g_script.fail_first_errno = EACCES;  // head datagram is rejected outright
  a.set_syscall_hooks(&scripted_sendmmsg, nullptr);
  for (std::uint8_t i = 0; i < 4; ++i) a.send(1, 2, wire::Bytes{i});
  a.set_syscall_hooks(nullptr, nullptr);

  EXPECT_EQ(a.stats().send_failures, 1u);  // the poisoned head
  EXPECT_EQ(a.stats().sent, 3u);           // the rest still went out
  EXPECT_EQ(a.stats().send_syscalls, 1u);
  EXPECT_TRUE(pump(a, b, [&] { return b_got >= 3; }, 2000));
}

TEST(UdpBatch, KernelBackpressureDropsTheRingAsLosses) {
  UdpTransport a(self_only(1, 4));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", 9});  // never delivered anyway

  g_script = SyscallScript{};
  g_script.always_errno = ENOBUFS;
  a.set_syscall_hooks(&scripted_sendmmsg, nullptr);
  for (std::uint8_t i = 0; i < 4; ++i) a.send(1, 2, wire::Bytes{i});
  EXPECT_EQ(a.stats().send_failures, 4u);  // whole ring charged as lost
  EXPECT_EQ(a.stats().sent, 0u);
  EXPECT_EQ(a.stats().send_syscalls, 0u);

  // The ring is empty again: the transport keeps working once the
  // backpressure clears.
  a.set_syscall_hooks(nullptr, nullptr);
  a.send(1, 2, wire::Bytes{1});
  a.flush();
  EXPECT_EQ(a.stats().sent, 1u);
}

// -- Receive side ------------------------------------------------------------

TEST(UdpBatch, RecvmmsgDrainSplitsWellFormedFromGarbage) {
  UdpTransport t(self_only(1, 8));
  std::size_t delivered = 0;
  t.attach(1, [&](const Packet&) { ++delivered; });

  const int raw = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(raw, 0);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_port = htons(t.local_port());
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const auto fire = [&](const wire::Bytes& d) {
    ASSERT_EQ(::sendto(raw, d.data(), d.size(), 0,
                       reinterpret_cast<sockaddr*>(&to), sizeof(to)),
              static_cast<ssize_t>(d.size()));
  };

  // One burst interleaving good envelopes, garbage, a truncation and a
  // foreign shard tag — a single recvmmsg drain must sort them all.
  fire(Session::encode_envelope(0, 5, 1, {1}));
  fire(wire::Bytes{0xFF, 0xEE, 0xDD});
  fire(Session::encode_envelope(0, 5, 1, {2}));
  wire::Bytes cut = Session::encode_envelope(0, 5, 1, {3});
  cut.resize(cut.size() - 2);
  fire(cut);
  fire(Session::encode_envelope(9, 5, 1, {4}));  // wrong shard
  fire(Session::encode_envelope(0, 5, 1, {5}));
  ::close(raw);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline && delivered < 3) {
    t.poll_once(kMsec);
  }
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(t.stats().received, 3u);
  EXPECT_EQ(t.stats().dropped_malformed, 2u);
  EXPECT_EQ(t.stats().dropped_wrong_shard, 1u);
  EXPECT_EQ(t.stats().recv_errors, 0u);
  EXPECT_GE(t.stats().recv_syscalls, 1u);
}

TEST(UdpBatch, StraySignalRetriesTheDrainInsteadOfEndingIt) {
  UdpTransport a(self_only(1, 4)), b(self_only(2, 4));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", b.local_port()});
  std::size_t b_got = 0;
  b.attach(2, [&](const Packet&) { ++b_got; });

  a.send(1, 2, wire::Bytes{1});
  a.flush();

  g_script = SyscallScript{};
  g_script.fail_first_errno = EINTR;  // a signal lands mid-drain
  b.set_syscall_hooks(nullptr, &scripted_recvmmsg);
  EXPECT_TRUE(pump(a, b, [&] { return b_got >= 1; }, 2000));
  b.set_syscall_hooks(nullptr, nullptr);
  EXPECT_GE(g_script.recv_calls, 2);  // EINTR, then the retry that delivered
  EXPECT_EQ(b.stats().recv_errors, 0u);  // EINTR is not an error
}

TEST(UdpBatch, RealReceiveErrorsAreCountedNotSilent) {
  UdpTransport a(self_only(1, 4)), b(self_only(2, 4));
  a.set_peer(2, UdpEndpoint{"127.0.0.1", b.local_port()});
  b.attach(2, [](const Packet&) {});

  a.send(1, 2, wire::Bytes{1});
  a.flush();

  g_script = SyscallScript{};
  g_script.always_errno = EIO;
  b.set_syscall_hooks(nullptr, &scripted_recvmmsg);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline &&
         b.stats().recv_errors == 0) {
    b.poll_once(kMsec);
  }
  EXPECT_GE(b.stats().recv_errors, 1u);
  EXPECT_EQ(b.stats().received, 0u);
  b.set_syscall_hooks(nullptr, nullptr);
}

}  // namespace
}  // namespace ssr::net
