#include "shmem/register_service.hpp"

#include <gtest/gtest.h>

#include "harness/world.hpp"

namespace ssr::harness {
namespace {

WorldConfig fast_config(std::uint64_t seed) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = false;
  return cfg;
}

World& converge(World& w, std::size_t n) {
  for (NodeId id = 1; id <= n; ++id) w.add_node(id);
  EXPECT_TRUE(w.run_until_converged(180 * kSec).has_value());
  w.run_for(60 * kSec);  // labels/counters settle
  return w;
}

bool write_sync(World& w, NodeId id, const std::string& name,
                const std::string& value, SimTime timeout = 90 * kSec) {
  bool done = false, ok = false;
  if (!w.node(id).registers().write(
          name, wire::Bytes(value.begin(), value.end()),
          [&](bool success, counter::Counter) {
            ok = success;
            done = true;
          })) {
    return false;
  }
  const SimTime deadline = w.scheduler().now() + timeout;
  while (!done && w.scheduler().now() < deadline) w.run_for(5 * kMsec);
  return done && ok;
}

bool write_retry(World& w, NodeId id, const std::string& name,
                 const std::string& value, int tries = 20) {
  for (int i = 0; i < tries; ++i) {
    if (write_sync(w, id, name, value)) return true;
    w.run_for(5 * kSec);
  }
  return false;
}

struct ReadResult {
  bool ok = false;
  std::string value;
  bool valid = false;
};

ReadResult read_sync(World& w, NodeId id, const std::string& name,
                     SimTime timeout = 90 * kSec) {
  ReadResult res;
  bool done = false;
  if (!w.node(id).registers().read(
          name, [&](bool success, const wire::Bytes& v, counter::Counter) {
            res.ok = success;
            res.value.assign(v.begin(), v.end());
            res.valid = !v.empty();
            done = true;
          })) {
    return res;
  }
  const SimTime deadline = w.scheduler().now() + timeout;
  while (!done && w.scheduler().now() < deadline) w.run_for(5 * kMsec);
  if (!done) res.ok = false;
  return res;
}

ReadResult read_retry(World& w, NodeId id, const std::string& name,
                      int tries = 20) {
  for (int i = 0; i < tries; ++i) {
    ReadResult r = read_sync(w, id, name);
    if (r.ok) return r;
    w.run_for(5 * kSec);
  }
  return {};
}

TEST(Shmem, WriteThenReadSameNode) {
  World w(fast_config(121));
  converge(w, 3);
  ASSERT_TRUE(write_retry(w, 1, "x", "hello"));
  ReadResult r = read_retry(w, 1, "x");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, "hello");
}

TEST(Shmem, ReadFromOtherNodeSeesWrite) {
  World w(fast_config(123));
  converge(w, 3);
  ASSERT_TRUE(write_retry(w, 1, "shared", "v1"));
  ReadResult r = read_retry(w, 3, "shared");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, "v1");
}

TEST(Shmem, LastWriteWins) {
  World w(fast_config(125));
  converge(w, 3);
  ASSERT_TRUE(write_retry(w, 1, "k", "first"));
  ASSERT_TRUE(write_retry(w, 2, "k", "second"));
  ReadResult r = read_retry(w, 3, "k");
  ASSERT_TRUE(r.ok);
  // The second write completed after the first; its counter tag is larger,
  // so every subsequent read must return it (MWMR atomicity).
  EXPECT_EQ(r.value, "second");
}

TEST(Shmem, UnwrittenRegisterReadsEmpty) {
  World w(fast_config(127));
  converge(w, 3);
  ReadResult r = read_retry(w, 2, "nothing-here");
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.valid);
}

TEST(Shmem, IndependentRegisters) {
  World w(fast_config(129));
  converge(w, 3);
  ASSERT_TRUE(write_retry(w, 1, "a", "va"));
  ASSERT_TRUE(write_retry(w, 2, "b", "vb"));
  EXPECT_EQ(read_retry(w, 3, "a").value, "va");
  EXPECT_EQ(read_retry(w, 3, "b").value, "vb");
}

// Operations during a reconfiguration abort (the service is suspending,
// paper §4.3 end) and succeed once the new configuration is in place; the
// register value survives the delicate reconfiguration.
TEST(Shmem, ValueSurvivesDelicateReconfiguration) {
  World w(fast_config(131));
  converge(w, 4);
  ASSERT_TRUE(write_retry(w, 1, "durable", "kept"));
  ASSERT_TRUE(w.node(1).recsa().estab(IdSet{1, 2, 3}));
  ASSERT_TRUE(w.run_until_converged(300 * kSec).has_value());
  w.run_for(60 * kSec);
  ReadResult r = read_retry(w, 2, "durable");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, "kept");
}

TEST(Shmem, RejectsOverlappingOps) {
  World w(fast_config(133));
  converge(w, 3);
  bool done = false;
  ASSERT_TRUE(w.node(1).registers().write(
      "q", wire::Bytes{1}, [&](bool, counter::Counter) { done = true; }));
  EXPECT_FALSE(w.node(1).registers().write(
      "q2", wire::Bytes{2}, [](bool, counter::Counter) {}));
  const SimTime deadline = w.scheduler().now() + 90 * kSec;
  while (!done && w.scheduler().now() < deadline) w.run_for(5 * kMsec);
  EXPECT_TRUE(done);
}

// Write tags are strictly increasing across completed writes.
TEST(Shmem, TagsStrictlyIncrease) {
  World w(fast_config(135));
  converge(w, 3);
  std::vector<counter::Counter> tags;
  for (int i = 0; i < 5; ++i) {
    bool done = false;
    const NodeId who = 1 + (i % 3);
    while (!w.node(who).registers().write(
        "seq", wire::Bytes{std::uint8_t(i)},
        [&](bool ok, counter::Counter tag) {
          if (ok) tags.push_back(tag);
          done = true;
        })) {
      w.run_for(5 * kSec);
    }
    const SimTime deadline = w.scheduler().now() + 90 * kSec;
    while (!done && w.scheduler().now() < deadline) w.run_for(5 * kMsec);
    w.run_for(2 * kSec);
  }
  ASSERT_GE(tags.size(), 3u);
  for (std::size_t i = 1; i < tags.size(); ++i) {
    EXPECT_TRUE(counter::Counter::ct_less(tags[i - 1], tags[i])) << i;
  }
}

}  // namespace
}  // namespace ssr::harness
