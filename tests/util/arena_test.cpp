// util::Arena contract: bump allocation inside reusable blocks, O(1) reset
// that recycles storage without touching the heap, power-of-two alignment,
// and a dedicated-block fallback for oversize requests — the properties the
// label stores' mint-scratch paths and the sweep engine lean on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena.hpp"

namespace ssr::util {
namespace {

bool aligned(const void* p, std::size_t align) {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

TEST(Arena, BumpsWithinOneBlock) {
  Arena a(1024);
  void* p1 = a.allocate(100);
  void* p2 = a.allocate(100);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(a.blocks(), 1u);
  // Bump order: the second allocation sits above the first.
  EXPECT_GT(reinterpret_cast<std::uintptr_t>(p2),
            reinterpret_cast<std::uintptr_t>(p1));
}

TEST(Arena, ResetReusesTheSameStorage) {
  Arena a(1024);
  void* first = a.allocate(64);
  a.allocate(512);
  const std::size_t blocks_before = a.blocks();
  const std::size_t cap_before = a.capacity_bytes();

  a.reset();
  // Same request sequence after reset: identical placement, zero growth.
  void* again = a.allocate(64);
  a.allocate(512);
  EXPECT_EQ(first, again);
  EXPECT_EQ(a.blocks(), blocks_before);
  EXPECT_EQ(a.capacity_bytes(), cap_before);
}

TEST(Arena, ResetStopsHeapGrowthAtHighWaterMark) {
  Arena a(256);
  // First lap establishes the high-water mark (spills across blocks)...
  for (int i = 0; i < 20; ++i) a.allocate(48);
  const std::size_t mark = a.capacity_bytes();
  EXPECT_GT(a.blocks(), 1u);
  // ...after which no reset-and-refill lap adds storage.
  for (int lap = 1; lap < 5; ++lap) {
    a.reset();
    for (int i = 0; i < 20; ++i) a.allocate(48);
    EXPECT_EQ(a.capacity_bytes(), mark) << "lap " << lap << " grew the arena";
  }
}

TEST(Arena, RespectsAlignment) {
  Arena a(1024);
  a.allocate(1);  // misalign the bump offset
  for (std::size_t align : {2u, 8u, 16u, 64u, 128u}) {
    void* p = a.allocate(8, align);
    EXPECT_TRUE(aligned(p, align)) << "align " << align;
    a.allocate(1);  // re-misalign between iterations
  }
}

TEST(Arena, OversizeRequestGetsDedicatedBlock) {
  Arena a(128);
  void* small = a.allocate(16);
  ASSERT_NE(small, nullptr);
  // 10x the block size: must still succeed, in its own block.
  void* big = a.allocate(1280);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(a.blocks(), 2u);
  EXPECT_GE(a.capacity_bytes(), 1280u + 128u);
  // The oversize block is writable end to end.
  std::memset(big, 0xAB, 1280);
  // And recycled by reset like any other block.
  const std::size_t cap = a.capacity_bytes();
  a.reset();
  a.allocate(16);
  a.allocate(1280);
  EXPECT_EQ(a.capacity_bytes(), cap);
}

TEST(Arena, AllocationCounterCounts) {
  Arena a;
  EXPECT_EQ(a.allocations(), 0u);
  a.allocate(8);
  a.allocate(8);
  a.reset();
  a.allocate(8);
  EXPECT_EQ(a.allocations(), 3u);
}

TEST(ArenaAllocator, BacksAStdVector) {
  Arena a(4096);
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(a)};
  for (int i = 0; i < 100; ++i) v.push_back(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
  // All growth came from the arena, not the heap.
  EXPECT_GT(a.allocations(), 0u);

  // Rebuild after reset: same arena storage serves a fresh vector.
  v = std::vector<int, ArenaAllocator<int>>{ArenaAllocator<int>(a)};
  a.reset();
  const std::size_t cap = a.capacity_bytes();
  v.reserve(100);
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(a.capacity_bytes(), cap);
}

}  // namespace
}  // namespace ssr::util
