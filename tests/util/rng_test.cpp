#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

namespace ssr {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(10), 10u);
}

TEST(Rng, NextRangeInclusive) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all values hit
}

TEST(Rng, NextRangeFullWidth) {
  // hi - lo + 1 wraps to 0 over the full 64-bit range; the draw must come
  // straight from next_u64 instead of tripping next_below's bound assert.
  Rng r(17);
  std::set<std::uint64_t> seen;
  bool high = false, low = false;
  for (int i = 0; i < 256; ++i) {
    const auto v = r.next_range(0, std::numeric_limits<std::uint64_t>::max());
    seen.insert(v);
    high = high || v > (1ULL << 63);
    low = low || v < (1ULL << 63);
  }
  EXPECT_EQ(seen.size(), 256u);  // no collisions expected in 256 draws
  EXPECT_TRUE(high);
  EXPECT_TRUE(low);
  // And the stream stays aligned with a plain next_u64 sequence.
  Rng a(23), b(23);
  EXPECT_EQ(a.next_range(0, std::numeric_limits<std::uint64_t>::max()),
            b.next_u64());
}

TEST(Rng, NextRangeSingleValue) {
  Rng r(19);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(r.next_range(7, 7), 7u);
    EXPECT_EQ(r.next_range(0, 0), 0u);
    const auto top = std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(r.next_range(top, top), top);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (r.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  Rng parent2(5);
  parent2.fork();
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

}  // namespace
}  // namespace ssr
