// util::LatencyHistogram: recording/percentile sanity and — the property the
// sweep engine rides on — merge() being exact bucket-wise aggregation, so a
// merged histogram answers percentile queries identically to one that saw
// every sample directly.
#include <gtest/gtest.h>

#include <cstdint>

#include "util/histogram.hpp"

namespace ssr::util {
namespace {

TEST(LatencyHistogram, EmptyReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(99.9), 0u);
}

TEST(LatencyHistogram, PercentilesBoundedByLogLinearError) {
  LatencyHistogram h;
  for (std::uint64_t us = 1; us <= 1000; ++us) h.record(us);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max(), 1000u);
  // Log-linear buckets guarantee ≤ 1/16 relative error on the upper edge.
  const std::uint64_t p50 = h.percentile(50);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 500u + 500u / 16 + 1);
  const std::uint64_t p99 = h.percentile(99);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1000u);
}

TEST(LatencyHistogram, MergeSumsCountsAndTakesMaxOfMax) {
  LatencyHistogram a, b;
  for (std::uint64_t us = 1; us <= 100; ++us) a.record(us);
  for (std::uint64_t us = 900; us <= 1000; ++us) b.record(us);
  a.merge(b);
  EXPECT_EQ(a.count(), 100u + 101u);
  EXPECT_EQ(a.max(), 1000u);
  // b untouched.
  EXPECT_EQ(b.count(), 101u);
  EXPECT_EQ(b.max(), 1000u);
}

TEST(LatencyHistogram, MergeEqualsDirectRecording) {
  // Split one sample stream across three histograms, merge, and compare
  // against a histogram that recorded everything: identical percentiles at
  // every probe point (merge is exact, unlike averaging percentiles).
  LatencyHistogram direct, parts[3];
  std::uint64_t x = 12345;
  for (int i = 0; i < 3000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;  // LCG
    const std::uint64_t us = (x >> 33) % 2'000'000;
    direct.record(us);
    parts[i % 3].record(us);
  }
  LatencyHistogram merged;
  for (const LatencyHistogram& p : parts) merged.merge(p);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.max(), direct.max());
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(merged.percentile(p), direct.percentile(p)) << "p" << p;
  }
}

TEST(LatencyHistogram, BucketsSurvivePastFourBillionSamples) {
  // Per-bucket counters must be as wide as count_: a uint32 bucket wraps
  // to zero after 2^32 samples while count() keeps the true total, so
  // every percentile walk skips the wrapped bucket and reports a wildly
  // inflated value. Amplify by self-merge doubling instead of 2^33 calls.
  LatencyHistogram h;
  h.record(10);
  for (int i = 0; i < 33; ++i) h.merge(h);  // bucket[10] = 2^33
  h.record(1'000'000);
  EXPECT_EQ(h.count(), (1ULL << 33) + 1);
  EXPECT_EQ(h.percentile(50), 10u);
  EXPECT_EQ(h.max(), 1'000'000u);
}

TEST(LatencyHistogram, MergeEmptyIsIdentity) {
  LatencyHistogram h, empty;
  h.record(42);
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 42u);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.percentile(100), h.percentile(100));
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(7);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
}

}  // namespace
}  // namespace ssr::util
