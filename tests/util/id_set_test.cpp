#include "util/id_set.hpp"

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(IdSet, StartsEmpty) {
  IdSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(1));
}

TEST(IdSet, InitializerListSortsAndDeduplicates) {
  IdSet s{5, 1, 3, 1, 5};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.values(), (std::vector<NodeId>{1, 3, 5}));
}

TEST(IdSet, FromVectorNormalizes) {
  IdSet s = IdSet::from_vector({9, 2, 2, 7, 9});
  EXPECT_EQ(s.values(), (std::vector<NodeId>{2, 7, 9}));
}

TEST(IdSet, InsertReportsNovelty) {
  IdSet s;
  EXPECT_TRUE(s.insert(4));
  EXPECT_FALSE(s.insert(4));
  EXPECT_TRUE(s.insert(2));
  EXPECT_EQ(s.values(), (std::vector<NodeId>{2, 4}));
}

TEST(IdSet, EraseReportsPresence) {
  IdSet s{1, 2, 3};
  EXPECT_TRUE(s.erase(2));
  EXPECT_FALSE(s.erase(2));
  EXPECT_EQ(s.values(), (std::vector<NodeId>{1, 3}));
}

TEST(IdSet, SubsetOf) {
  IdSet small{1, 3};
  IdSet big{1, 2, 3};
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  EXPECT_TRUE(IdSet{}.subset_of(small));
  EXPECT_TRUE(small.subset_of(small));
}

TEST(IdSet, SetAlgebra) {
  IdSet a{1, 2, 3, 4};
  IdSet b{3, 4, 5};
  EXPECT_EQ(a.intersect(b), (IdSet{3, 4}));
  EXPECT_EQ(a.unite(b), (IdSet{1, 2, 3, 4, 5}));
  EXPECT_EQ(a.subtract(b), (IdSet{1, 2}));
  EXPECT_EQ(a.intersection_size(b), 2u);
  EXPECT_EQ(a.intersection_size(IdSet{}), 0u);
}

TEST(IdSet, OrderingIsLexicographicOnSortedContents) {
  EXPECT_LT((IdSet{1, 2}), (IdSet{1, 3}));
  EXPECT_LT((IdSet{1}), (IdSet{1, 2}));
  EXPECT_EQ((IdSet{2, 1}), (IdSet{1, 2}));
}

TEST(IdSet, ToString) {
  EXPECT_EQ((IdSet{3, 1}).to_string(), "{1,3}");
  EXPECT_EQ(IdSet{}.to_string(), "{}");
}

// --- small-buffer boundary coverage -------------------------------------
// IdSet stores ≤ kInlineCapacity ids in the object; these tests walk sets
// across the inline/heap boundary in both directions and through copies
// and moves, where a buggy SBO shows up as lost or duplicated elements.

std::vector<NodeId> iota_ids(std::size_t n, NodeId start = 0) {
  std::vector<NodeId> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = start + static_cast<NodeId>(i);
  return v;
}

TEST(IdSet, GrowsPastInlineCapacity) {
  IdSet s;
  const std::size_t n = IdSet::kInlineCapacity * 3;
  // Descending inserts exercise the shifting slow path at every size.
  for (std::size_t i = n; i > 0; --i) {
    EXPECT_TRUE(s.insert(static_cast<NodeId>(i - 1)));
  }
  EXPECT_EQ(s.size(), n);
  EXPECT_EQ(s.values(), iota_ids(n));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(s.contains(static_cast<NodeId>(i)));
  }
  EXPECT_FALSE(s.contains(static_cast<NodeId>(n)));
}

TEST(IdSet, EraseAcrossInlineBoundary) {
  IdSet s = IdSet::from_vector(iota_ids(IdSet::kInlineCapacity + 4));
  // Shrink back below the inline capacity; contents must stay exact.
  for (NodeId id = 0; id < 8; ++id) {
    EXPECT_TRUE(s.erase(id));
  }
  EXPECT_EQ(s.size(), IdSet::kInlineCapacity - 4);
  EXPECT_EQ(s.values(), iota_ids(IdSet::kInlineCapacity - 4, 8));
  EXPECT_FALSE(s.erase(0));
}

TEST(IdSet, CopyAndMoveSemantics) {
  const IdSet small{1, 2, 3};
  const IdSet big = IdSet::from_vector(iota_ids(IdSet::kInlineCapacity * 2));

  IdSet small_copy = small;
  IdSet big_copy = big;
  EXPECT_EQ(small_copy, small);
  EXPECT_EQ(big_copy, big);

  // Mutating the copy must not alias the original.
  small_copy.insert(99);
  big_copy.erase(0);
  EXPECT_NE(small_copy, small);
  EXPECT_NE(big_copy, big);
  EXPECT_EQ(small.size(), 3u);
  EXPECT_EQ(big.size(), IdSet::kInlineCapacity * 2);

  IdSet moved_small = std::move(small_copy);
  IdSet moved_big = std::move(big_copy);
  EXPECT_TRUE(moved_small.contains(99));
  EXPECT_FALSE(moved_big.contains(0));
  EXPECT_EQ(moved_big.size(), IdSet::kInlineCapacity * 2 - 1);

  // Assignment over existing contents, both directions of the boundary.
  moved_small = big;
  EXPECT_EQ(moved_small, big);
  moved_big = small;
  EXPECT_EQ(moved_big, small);
  moved_big = std::move(moved_small);
  EXPECT_EQ(moved_big, big);
}

TEST(IdSet, SetAlgebraOnLargeSets) {
  const std::size_t n = IdSet::kInlineCapacity * 2;
  IdSet evens;
  IdSet all = IdSet::from_vector(iota_ids(n));
  for (std::size_t i = 0; i < n; i += 2) {
    evens.insert(static_cast<NodeId>(i));
  }
  EXPECT_TRUE(evens.subset_of(all));
  EXPECT_EQ(all.intersect(evens), evens);
  EXPECT_EQ(all.unite(evens), all);
  EXPECT_EQ(all.subtract(evens).size(), n / 2);
  EXPECT_EQ(all.intersection_size(evens), n / 2);
  EXPECT_GT(evens, all);  // {0,2,...} vs {0,1,...}: 2 > 1 at index 1
}

}  // namespace
}  // namespace ssr
