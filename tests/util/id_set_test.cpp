#include "util/id_set.hpp"

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(IdSet, StartsEmpty) {
  IdSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(1));
}

TEST(IdSet, InitializerListSortsAndDeduplicates) {
  IdSet s{5, 1, 3, 1, 5};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.values(), (std::vector<NodeId>{1, 3, 5}));
}

TEST(IdSet, FromVectorNormalizes) {
  IdSet s = IdSet::from_vector({9, 2, 2, 7, 9});
  EXPECT_EQ(s.values(), (std::vector<NodeId>{2, 7, 9}));
}

TEST(IdSet, InsertReportsNovelty) {
  IdSet s;
  EXPECT_TRUE(s.insert(4));
  EXPECT_FALSE(s.insert(4));
  EXPECT_TRUE(s.insert(2));
  EXPECT_EQ(s.values(), (std::vector<NodeId>{2, 4}));
}

TEST(IdSet, EraseReportsPresence) {
  IdSet s{1, 2, 3};
  EXPECT_TRUE(s.erase(2));
  EXPECT_FALSE(s.erase(2));
  EXPECT_EQ(s.values(), (std::vector<NodeId>{1, 3}));
}

TEST(IdSet, SubsetOf) {
  IdSet small{1, 3};
  IdSet big{1, 2, 3};
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  EXPECT_TRUE(IdSet{}.subset_of(small));
  EXPECT_TRUE(small.subset_of(small));
}

TEST(IdSet, SetAlgebra) {
  IdSet a{1, 2, 3, 4};
  IdSet b{3, 4, 5};
  EXPECT_EQ(a.intersect(b), (IdSet{3, 4}));
  EXPECT_EQ(a.unite(b), (IdSet{1, 2, 3, 4, 5}));
  EXPECT_EQ(a.subtract(b), (IdSet{1, 2}));
  EXPECT_EQ(a.intersection_size(b), 2u);
  EXPECT_EQ(a.intersection_size(IdSet{}), 0u);
}

TEST(IdSet, OrderingIsLexicographicOnSortedContents) {
  EXPECT_LT((IdSet{1, 2}), (IdSet{1, 3}));
  EXPECT_LT((IdSet{1}), (IdSet{1, 2}));
  EXPECT_EQ((IdSet{2, 1}), (IdSet{1, 2}));
}

TEST(IdSet, ToString) {
  EXPECT_EQ((IdSet{3, 1}).to_string(), "{1,3}");
  EXPECT_EQ(IdSet{}.to_string(), "{}");
}

}  // namespace
}  // namespace ssr
