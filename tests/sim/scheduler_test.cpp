#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ssr::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 100u);
}

TEST(Scheduler, FifoTieBreakAtEqualTimes) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  s.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  SimTime fired_at = 0;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { fired_at = s.now(); });
  });
  s.run_until(1000);
  EXPECT_EQ(fired_at, 75u);
}

TEST(Scheduler, DeadlineStopsExecution) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(200, [&] { ++fired; });
  s.run_until(100);
  EXPECT_EQ(fired, 1);
  s.run_until(300);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, CancelledEventsDoNotRun) {
  Scheduler s;
  int fired = 0;
  auto h = s.schedule_at(10, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run_until(100);
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 10) s.schedule_after(5, step);
  };
  s.schedule_at(0, step);
  s.run_until(1000);
  EXPECT_EQ(chain, 10);
  EXPECT_EQ(s.events_executed(), 10u);
}

TEST(Scheduler, StepExecutesOneEvent) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1, [&] { ++fired; });
  s.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(s.step(100));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step(100));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step(100));
}

// Quiescence detection must see through tombstones: a queue holding only
// cancelled events is empty (the silence invariant of the scenario engine
// relies on this after crashing every node).
TEST(Scheduler, EmptyIgnoresTombstonedEvents) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  auto a = s.schedule_at(10, [] {});
  auto b = s.schedule_at(20, [] {});
  EXPECT_FALSE(s.empty());
  a.cancel();
  b.cancel();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Scheduler, EmptyFalseWhileLiveEventBehindTombstones) {
  Scheduler s;
  auto a = s.schedule_at(5, [] {});
  int fired = 0;
  s.schedule_at(30, [&] { ++fired; });
  a.cancel();
  EXPECT_FALSE(s.empty());  // the live event at 30 still counts
  s.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, HandleOutlivingSchedulerEventIsSafe) {
  Scheduler s;
  Scheduler::Handle h;
  {
    h = s.schedule_at(5, [] {});
  }
  s.run_until(10);
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, must not crash
}

}  // namespace
}  // namespace ssr::sim
