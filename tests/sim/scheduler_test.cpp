#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ssr::sim {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 100u);
}

TEST(Scheduler, FifoTieBreakAtEqualTimes) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  s.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler s;
  SimTime fired_at = 0;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { fired_at = s.now(); });
  });
  s.run_until(1000);
  EXPECT_EQ(fired_at, 75u);
}

TEST(Scheduler, DeadlineStopsExecution) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(200, [&] { ++fired; });
  s.run_until(100);
  EXPECT_EQ(fired, 1);
  s.run_until(300);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, CancelledEventsDoNotRun) {
  Scheduler s;
  int fired = 0;
  auto h = s.schedule_at(10, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  s.run_until(100);
  EXPECT_EQ(fired, 0);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 10) s.schedule_after(5, step);
  };
  s.schedule_at(0, step);
  s.run_until(1000);
  EXPECT_EQ(chain, 10);
  EXPECT_EQ(s.events_executed(), 10u);
}

TEST(Scheduler, StepExecutesOneEvent) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1, [&] { ++fired; });
  s.schedule_at(2, [&] { ++fired; });
  EXPECT_TRUE(s.step(100));
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step(100));
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(s.step(100));
}

// Quiescence detection must see through tombstones: a queue holding only
// cancelled events is empty (the silence invariant of the scenario engine
// relies on this after crashing every node).
TEST(Scheduler, EmptyIgnoresTombstonedEvents) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  auto a = s.schedule_at(10, [] {});
  auto b = s.schedule_at(20, [] {});
  EXPECT_FALSE(s.empty());
  a.cancel();
  b.cancel();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(Scheduler, EmptyFalseWhileLiveEventBehindTombstones) {
  Scheduler s;
  auto a = s.schedule_at(5, [] {});
  int fired = 0;
  s.schedule_at(30, [&] { ++fired; });
  a.cancel();
  EXPECT_FALSE(s.empty());  // the live event at 30 still counts
  s.run_until(100);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, HandleOutlivingSchedulerEventIsSafe) {
  Scheduler s;
  Scheduler::Handle h;
  {
    h = s.schedule_at(5, [] {});
  }
  s.run_until(10);
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op, must not crash
}

// --- {slot, generation} handle scheme ---------------------------------------

// Cancelling after the event fired must be a no-op even when the slot has
// been reused by a *new* live event: the stale generation must not kill the
// newcomer.
TEST(Scheduler, CancelAfterFireDoesNotKillSlotReuse) {
  Scheduler s;
  int first = 0;
  auto h1 = s.schedule_at(5, [&] { ++first; });
  s.run_until(10);
  EXPECT_EQ(first, 1);
  EXPECT_FALSE(h1.pending());
  // The freed slot is at the head of the freelist: the next event reuses it.
  int second = 0;
  auto h2 = s.schedule_at(20, [&] { ++second; });
  EXPECT_EQ(h2.slot(), h1.slot());  // reuse confirmed
  EXPECT_NE(h2.generation(), h1.generation());
  h1.cancel();  // stale generation — must not cancel the new event
  EXPECT_TRUE(h2.pending());
  s.run_until(30);
  EXPECT_EQ(second, 1);
}

TEST(Scheduler, DoubleCancelIsIdempotentAcrossSlotReuse) {
  Scheduler s;
  int fired = 0;
  auto h1 = s.schedule_at(10, [&] { ++fired; });
  h1.cancel();
  h1.cancel();  // second cancel: no-op, must not double-free the slot
  auto h2 = s.schedule_at(15, [&] { ++fired; });
  EXPECT_EQ(h2.slot(), h1.slot());
  h1.cancel();  // still stale — the reused slot stays live
  EXPECT_TRUE(h2.pending());
  s.run_until(100);
  EXPECT_EQ(fired, 1);
}

// A handle that outlives several reuse laps of its slot keeps reading as
// not-pending (generation mismatch), never as the current occupant.
TEST(Scheduler, StaleHandleSurvivesManyReuseLaps) {
  Scheduler s;
  auto stale = s.schedule_at(1, [] {});
  s.run_until(2);
  for (int lap = 0; lap < 100; ++lap) {
    auto h = s.schedule_after(1, [] {});
    EXPECT_FALSE(stale.pending());
    if (lap % 2 == 0) h.cancel();
    s.run_for(2);
  }
  EXPECT_FALSE(stale.pending());
  stale.cancel();
  EXPECT_TRUE(s.empty());
}

// Slot reuse keeps the slab bounded by the peak live population, not by
// traffic volume: a send/deliver loop must not grow the slab.
TEST(Scheduler, SlabBoundedByPeakLiveEvents) {
  Scheduler s;
  for (int i = 0; i < 1000; ++i) {
    s.schedule_after(1, [] {});
    s.run_for(2);
  }
  EXPECT_LE(s.slots_total(), 4u);
  EXPECT_EQ(s.live_events(), 0u);
}

// Typed packet events interleave with closure events in exact (when, seq)
// order — the fast path must not reorder against the general path.
TEST(Scheduler, PacketEventsInterleaveWithClosuresInSeqOrder) {
  struct Recorder final : PacketSink {
    std::vector<int>* order;
    void deliver_packet(wire::Bytes&& payload) override {
      order->push_back(static_cast<int>(payload[0]));
      wire::BufferPool::local().release(std::move(payload));
    }
  };
  Scheduler s;
  std::vector<int> order;
  Recorder sink;
  sink.order = &order;
  s.schedule_packet_after(7, &sink, wire::Bytes{1});
  s.schedule_at(7, [&] { order.push_back(2); });
  s.schedule_packet_after(7, &sink, wire::Bytes{3});
  s.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(Scheduler, CancelledPacketEventDoesNotDeliver) {
  struct Counter final : PacketSink {
    int delivered = 0;
    void deliver_packet(wire::Bytes&& payload) override {
      ++delivered;
      wire::BufferPool::local().release(std::move(payload));
    }
  };
  Scheduler s;
  Counter sink;
  auto h = s.schedule_packet_after(5, &sink, wire::Bytes{42});
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(s.empty());  // tombstone only — quiescence is exact
  s.run_until(100);
  EXPECT_EQ(sink.delivered, 0);
}

// Events scheduled from inside an executing event (the staged batch path)
// run at their proper times and orders.
TEST(Scheduler, EventsStagedDuringStepRunInOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(10, [&] {
    order.push_back(0);
    s.schedule_after(0, [&] { order.push_back(1); });  // same time, later seq
    s.schedule_after(5, [&] { order.push_back(3); });
    s.schedule_after(1, [&] { order.push_back(2); });
  });
  s.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Cancelling an event that is still in the staged batch (scheduled by the
// currently executing event) must work like any other cancel.
TEST(Scheduler, CancelOfStagedEventHolds) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(10, [&] {
    auto h = s.schedule_after(5, [&] { ++fired; });
    h.cancel();
  });
  s.run_until(100);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace ssr::sim
