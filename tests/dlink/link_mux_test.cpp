#include "dlink/link_mux.hpp"

#include <gtest/gtest.h>

#include "net/sim_transport.hpp"

namespace ssr::dlink {
namespace {

struct MuxPair {
  sim::Scheduler sched;
  net::Network net;
  net::SimTransport transport;
  MuxConfig cfg;
  std::unique_ptr<LinkMux> a, b;

  MuxPair() : net(sched, Rng(31), channel_config()), transport(net) {
    cfg.link.ack_threshold = 2 * channel_config().capacity + 1;
    cfg.link.clean_threshold = 2 * channel_config().capacity + 1;
    a = std::make_unique<LinkMux>(transport, 1, cfg, Rng(41));
    b = std::make_unique<LinkMux>(transport, 2, cfg, Rng(42));
    transport.attach(1, [this](const net::Packet& p) { a->handle_packet(p); });
    transport.attach(2, [this](const net::Packet& p) { b->handle_packet(p); });
  }

  static net::ChannelConfig channel_config() {
    net::ChannelConfig ch;
    ch.capacity = 3;
    ch.loss_probability = 0.05;
    return ch;
  }
};

TEST(LinkMux, StateSlotDeliversLatest) {
  MuxPair m;
  std::vector<wire::Bytes> got;
  m.b->subscribe(kPortRecSA,
                 [&](NodeId from, const wire::Bytes& d) {
                   EXPECT_EQ(from, 1u);
                   got.push_back(d);
                 });
  m.a->connect(2);
  m.b->connect(1);
  m.a->publish_state(kPortRecSA, 2, wire::Bytes{1});
  m.sched.run_until(10 * kSec);
  m.a->publish_state(kPortRecSA, 2, wire::Bytes{2});
  m.sched.run_until(20 * kSec);
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.back(), wire::Bytes{2});  // latest state wins
}

TEST(LinkMux, DatagramsDeliverInOrder) {
  MuxPair m;
  std::vector<wire::Bytes> got;
  m.b->subscribe(kPortCounter,
                 [&](NodeId, const wire::Bytes& d) { got.push_back(d); });
  m.a->connect(2);
  m.b->connect(1);
  for (std::uint8_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(m.a->send_datagram(kPortCounter, 2, {i}));
  }
  m.sched.run_until(40 * kSec);
  ASSERT_EQ(got.size(), 6u);
  for (std::uint8_t i = 1; i <= 6; ++i) EXPECT_EQ(got[i - 1], wire::Bytes{i});
}

TEST(LinkMux, DatagramQueueBounded) {
  MuxPair m;
  m.a->connect(2);
  bool saw_reject = false;
  for (int i = 0; i < 100; ++i) {
    if (!m.a->send_datagram(kPortCounter, 2, wire::Bytes{1})) {
      saw_reject = true;
      break;
    }
  }
  EXPECT_TRUE(saw_reject);
}

TEST(LinkMux, MultiplePortsAreIndependent) {
  MuxPair m;
  wire::Bytes got_a, got_b;
  m.b->subscribe(kPortRecSA, [&](NodeId, const wire::Bytes& d) { got_a = d; });
  m.b->subscribe(kPortLabel, [&](NodeId, const wire::Bytes& d) { got_b = d; });
  m.a->connect(2);
  m.b->connect(1);
  m.a->publish_state(kPortRecSA, 2, wire::Bytes{10});
  m.a->publish_state(kPortLabel, 2, wire::Bytes{20});
  m.sched.run_until(15 * kSec);
  EXPECT_EQ(got_a, wire::Bytes{10});
  EXPECT_EQ(got_b, wire::Bytes{20});
}

TEST(LinkMux, AutoConnectOnFirstContact) {
  MuxPair m;
  wire::Bytes got;
  m.b->subscribe(kPortRecSA, [&](NodeId, const wire::Bytes& d) { got = d; });
  // Only `a` initiates; `b` must create its endpoints on first packet.
  m.a->connect(2);
  m.a->publish_state(kPortRecSA, 2, wire::Bytes{7});
  m.sched.run_until(15 * kSec);
  EXPECT_EQ(got, wire::Bytes{7});
  EXPECT_TRUE(m.b->peers().contains(1));
}

TEST(LinkMux, ClearStateStopsCarrying) {
  MuxPair m;
  int deliveries = 0;
  m.b->subscribe(kPortRecSA, [&](NodeId, const wire::Bytes&) { ++deliveries; });
  m.a->connect(2);
  m.b->connect(1);
  m.a->publish_state(kPortRecSA, 2, wire::Bytes{1});
  m.sched.run_until(10 * kSec);
  const int before = deliveries;
  EXPECT_GT(before, 0);
  m.a->clear_state(kPortRecSA, 2);
  m.sched.run_until(20 * kSec);
  // A handful may straggle from in-flight frames; then it must stop.
  const int after_clear = deliveries;
  m.sched.run_until(30 * kSec);
  EXPECT_LE(deliveries - after_clear, 1);
  (void)before;
}

TEST(LinkMux, ShutdownSilencesNode) {
  MuxPair m;
  m.a->connect(2);
  m.b->connect(1);
  m.a->publish_state(kPortRecSA, 2, wire::Bytes{1});
  m.sched.run_until(5 * kSec);
  m.a->shutdown();
  const auto sent = m.net.channel(1, 2).stats().sent;
  m.sched.run_until(15 * kSec);
  EXPECT_EQ(m.net.channel(1, 2).stats().sent, sent);
}

TEST(LinkMux, HeartbeatsFlowBothWays) {
  MuxPair m;
  int beats_a = 0, beats_b = 0;
  m.a->set_heartbeat_handler([&](NodeId peer) {
    EXPECT_EQ(peer, 2u);
    ++beats_a;
  });
  m.b->set_heartbeat_handler([&](NodeId) { ++beats_b; });
  m.a->connect(2);
  m.b->connect(1);
  m.sched.run_until(20 * kSec);
  EXPECT_GT(beats_a, 5);
  EXPECT_GT(beats_b, 5);
}

}  // namespace
}  // namespace ssr::dlink
