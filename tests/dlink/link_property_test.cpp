// Property sweep for the token link: in-order, no-duplicate, gap-free
// delivery of queued datagrams must hold across hostile channel settings
// (loss × duplication × capacity), as long as loss < 1 (fair communication).
#include <gtest/gtest.h>

#include "dlink/link_mux.hpp"
#include "net/sim_transport.hpp"

namespace ssr::dlink {
namespace {

struct ChannelCase {
  double loss;
  double dup;
  std::size_t capacity;
  std::uint64_t seed;
};

class LinkProperty : public ::testing::TestWithParam<ChannelCase> {};

TEST_P(LinkProperty, InOrderGapFreeDelivery) {
  const ChannelCase param = GetParam();
  sim::Scheduler sched;
  net::ChannelConfig ch;
  ch.capacity = param.capacity;
  ch.loss_probability = param.loss;
  ch.duplicate_probability = param.dup;
  net::Network net(sched, Rng(param.seed), ch);
  net::SimTransport transport(net);
  MuxConfig cfg;
  cfg.link.ack_threshold = 2 * param.capacity + 1;
  cfg.link.clean_threshold = 2 * param.capacity + 1;
  cfg.datagram_queue_capacity = 64;
  LinkMux a(transport, 1, cfg, Rng(param.seed + 1));
  LinkMux b(transport, 2, cfg, Rng(param.seed + 2));
  transport.attach(1, [&](const net::Packet& p) { a.handle_packet(p); });
  transport.attach(2, [&](const net::Packet& p) { b.handle_packet(p); });

  std::vector<std::uint8_t> got;
  b.subscribe(kPortCounter, [&](NodeId, const wire::Bytes& d) {
    ASSERT_EQ(d.size(), 1u);
    got.push_back(d[0]);
  });
  a.connect(2);
  b.connect(1);

  // Feed 30 sequenced datagrams, retrying when the queue is full.
  std::uint8_t next = 0;
  const std::uint8_t total = 30;
  while (next < total && sched.now() < 600 * kSec) {
    if (a.send_datagram(kPortCounter, 2, {next})) {
      ++next;
    } else {
      sched.run_for(50 * kMsec);
    }
  }
  ASSERT_EQ(next, total) << "could not enqueue the workload";
  sched.run_until(sched.now() + 600 * kSec);

  ASSERT_EQ(got.size(), static_cast<std::size_t>(total))
      << "loss=" << param.loss << " dup=" << param.dup;
  for (std::uint8_t i = 0; i < total; ++i) {
    EXPECT_EQ(got[i], i) << "order broken at " << int(i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Channels, LinkProperty,
    ::testing::Values(ChannelCase{0.0, 0.0, 3, 11}, ChannelCase{0.1, 0.0, 3, 12},
                      ChannelCase{0.3, 0.05, 3, 13},
                      ChannelCase{0.05, 0.3, 3, 14},
                      ChannelCase{0.2, 0.2, 2, 15},
                      ChannelCase{0.1, 0.1, 6, 16},
                      ChannelCase{0.5, 0.1, 3, 17}));

}  // namespace
}  // namespace ssr::dlink
