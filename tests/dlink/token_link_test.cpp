#include "dlink/token_link.hpp"

#include <gtest/gtest.h>

#include "net/sim_transport.hpp"

namespace ssr::dlink {
namespace {

TEST(Frame, EncodeDecodeRoundtrip) {
  Frame f;
  f.kind = FrameKind::kData;
  f.link_sender = 3;
  f.label = 9;
  f.payload = wire::Bytes{1, 2, 3};
  auto decoded = Frame::decode(f.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, FrameKind::kData);
  EXPECT_EQ(decoded->link_sender, 3u);
  EXPECT_EQ(decoded->label, 9);
  EXPECT_EQ(decoded->payload, (wire::Bytes{1, 2, 3}));
}

TEST(Frame, AckHasNoPayload) {
  Frame f;
  f.kind = FrameKind::kAck;
  f.link_sender = 1;
  f.label = 2;
  auto decoded = Frame::decode(f.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, FrameKind::kAck);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Frame, GarbageRejected) {
  EXPECT_FALSE(Frame::decode(wire::Bytes{}).has_value());
  EXPECT_FALSE(Frame::decode(wire::Bytes{0}).has_value());
  EXPECT_FALSE(Frame::decode(wire::Bytes{99, 1, 2}).has_value());
}

TEST(Bundle, RoundtripMultipleItems) {
  std::vector<BundleItem> items;
  items.push_back({kPortRecSA, true, wire::Bytes{1}});
  items.push_back({kPortCounter, false, wire::Bytes{2, 3}});
  auto decoded = decode_bundle(encode_bundle(items));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].port, kPortRecSA);
  EXPECT_TRUE((*decoded)[0].is_state);
  EXPECT_EQ((*decoded)[1].data, (wire::Bytes{2, 3}));
  EXPECT_FALSE((*decoded)[1].is_state);
}

TEST(Bundle, TrailingGarbageRejected) {
  auto raw = encode_bundle({{kPortRecSA, true, wire::Bytes{1}}});
  raw.push_back(0xFF);
  EXPECT_FALSE(decode_bundle(raw).has_value());
}

// --- Link pair harness ------------------------------------------------------

struct LinkPair {
  sim::Scheduler sched;
  net::Network net;
  net::SimTransport transport;
  LinkConfig cfg;
  std::vector<wire::Bytes> a_outbox, b_outbox;  // next payloads to send
  std::vector<wire::Bytes> a_got, b_got;
  int a_beats = 0, b_beats = 0;
  std::unique_ptr<TokenLink> a, b;

  explicit LinkPair(net::ChannelConfig ch = make_channel(), LinkConfig lc = {})
      : net(sched, Rng(7), ch), transport(net), cfg(lc) {
    cfg.ack_threshold = 2 * ch.capacity + 1;
    cfg.clean_threshold = 2 * ch.capacity + 1;
    a = std::make_unique<TokenLink>(
        transport, Rng(1), cfg, 1, 2, [this] { return pop(a_outbox); },
        [this](const wire::Bytes& d) { a_got_push(d); }, [this] { ++a_beats; });
    b = std::make_unique<TokenLink>(
        transport, Rng(2), cfg, 2, 1, [this] { return pop(b_outbox); },
        [this](const wire::Bytes& d) { b_got_push(d); }, [this] { ++b_beats; });
    transport.attach(1, [this](const net::Packet& p) {
      auto f = Frame::decode(p.payload);
      if (f) a->handle_frame(*f);
    });
    transport.attach(2, [this](const net::Packet& p) {
      auto f = Frame::decode(p.payload);
      if (f) b->handle_frame(*f);
    });
  }

  static net::ChannelConfig make_channel() {
    net::ChannelConfig ch;
    ch.capacity = 3;
    ch.loss_probability = 0.05;
    return ch;
  }

  wire::Bytes pop(std::vector<wire::Bytes>& box) {
    if (box.empty()) return {};
    wire::Bytes out = box.front();
    box.erase(box.begin());
    return out;
  }
  void a_got_push(const wire::Bytes& d) {
    if (!d.empty()) a_got.push_back(d);
  }
  void b_got_push(const wire::Bytes& d) {
    if (!d.empty()) b_got.push_back(d);
  }
};

TEST(TokenLink, DeliversQueuedPayloadsInOrder) {
  LinkPair lp;
  for (std::uint8_t i = 1; i <= 5; ++i) lp.a_outbox.push_back({i});
  lp.a->start();
  lp.b->start();
  lp.sched.run_until(30 * kSec);
  ASSERT_GE(lp.b_got.size(), 5u);
  for (std::uint8_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(lp.b_got[i - 1], wire::Bytes{i}) << int(i);
  }
}

TEST(TokenLink, TokenRoundsProduceHeartbeats) {
  LinkPair lp;
  lp.a->start();
  lp.b->start();
  lp.sched.run_until(20 * kSec);
  EXPECT_GT(lp.a_beats, 10);
  EXPECT_GT(lp.b_beats, 10);
  EXPECT_GT(lp.a->stats().rounds_completed, 5u);
}

TEST(TokenLink, CleaningCompletesBeforeData) {
  LinkPair lp;
  lp.a->start();
  lp.b->start();
  EXPECT_TRUE(lp.a->cleaning());
  lp.sched.run_until(20 * kSec);
  EXPECT_FALSE(lp.a->cleaning());
  EXPECT_EQ(lp.a->stats().cleans_completed, 1u);
}

TEST(TokenLink, StrictCleanDiscardsPreCleanData) {
  LinkPair lp;
  // Stale data packet sits in the channel before any cleaning.
  Frame stale;
  stale.kind = FrameKind::kData;
  stale.link_sender = 1;
  stale.label = 3;
  stale.payload = wire::Bytes{0xEE};
  lp.net.channel(1, 2).inject_packet(stale.encode());
  lp.a->start();
  lp.b->start();
  lp.sched.run_until(20 * kSec);
  for (const auto& d : lp.b_got) EXPECT_NE(d, wire::Bytes{0xEE});
  EXPECT_GT(lp.b->stats().stale_discarded, 0u);
}

TEST(TokenLink, SurvivesChannelGarbage) {
  LinkPair lp;
  lp.a_outbox.push_back({42});
  lp.a->start();
  lp.b->start();
  lp.net.channel(1, 2).inject_garbage(3);
  lp.net.channel(2, 1).inject_garbage(3);
  lp.sched.run_until(30 * kSec);
  ASSERT_FALSE(lp.b_got.empty());
  EXPECT_EQ(lp.b_got[0], wire::Bytes{42});
}

TEST(TokenLink, ShutdownStopsTraffic) {
  LinkPair lp;
  lp.a->start();
  lp.b->start();
  lp.sched.run_until(5 * kSec);
  lp.a->shutdown();
  lp.b->shutdown();
  const auto sent_before = lp.net.channel(1, 2).stats().sent;
  lp.sched.run_until(10 * kSec);
  EXPECT_EQ(lp.net.channel(1, 2).stats().sent, sent_before);
}

TEST(TokenLink, HighLossStillDelivers) {
  auto ch = LinkPair::make_channel();
  ch.loss_probability = 0.4;
  LinkPair lp(ch);
  for (std::uint8_t i = 1; i <= 3; ++i) lp.a_outbox.push_back({i});
  lp.a->start();
  lp.b->start();
  lp.sched.run_until(120 * kSec);
  ASSERT_GE(lp.b_got.size(), 3u);
  EXPECT_EQ(lp.b_got[0], wire::Bytes{1});
  EXPECT_EQ(lp.b_got[1], wire::Bytes{2});
  EXPECT_EQ(lp.b_got[2], wire::Bytes{3});
}

}  // namespace
}  // namespace ssr::dlink
