#include "label/labeling.hpp"

#include <gtest/gtest.h>

#include "harness/fault_injector.hpp"
#include "harness/world.hpp"

namespace ssr::harness {
namespace {

WorldConfig fast_config(std::uint64_t seed) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = false;
  return cfg;
}

World& converge(World& w, std::size_t n) {
  for (NodeId id = 1; id <= n; ++id) w.add_node(id);
  EXPECT_TRUE(w.run_until_converged(180 * kSec).has_value());
  return w;
}

// All members report the same legit maximal label.
bool labels_agree(World& w) {
  std::optional<label::Label> common;
  auto cfg = w.common_config();
  if (!cfg) return false;
  for (NodeId id : *cfg) {
    if (!w.alive().contains(id)) continue;
    auto& lab = w.node(id).labeling();
    if (!lab.member()) return false;
    auto& mx = lab.local_max();
    if (!mx.legit()) return false;
    if (!common) {
      common = mx.main();
    } else if (!(*common == mx.main())) {
      return false;
    }
  }
  return common.has_value();
}

bool run_until_labels_agree(World& w, SimTime timeout) {
  const SimTime deadline = w.scheduler().now() + timeout;
  while (w.scheduler().now() < deadline) {
    if (labels_agree(w)) return true;
    w.run_for(20 * kMsec);
  }
  return labels_agree(w);
}

// Theorem 4.4 / Corollary 4.3: members converge to one maximal label.
TEST(Labeling, MembersConvergeToGlobalMaxLabel) {
  World w(fast_config(81));
  converge(w, 4);
  EXPECT_TRUE(run_until_labels_agree(w, 120 * kSec));
}

// After a delicate reconfiguration the structures are rebuilt for the new
// member set and convergence is re-established.
TEST(Labeling, ReconfigurationRebuildsAndReconverges) {
  World w(fast_config(83));
  converge(w, 4);
  ASSERT_TRUE(run_until_labels_agree(w, 120 * kSec));
  ASSERT_TRUE(w.node(1).recsa().estab(IdSet{1, 2, 3}));
  ASSERT_TRUE(w.run_until_converged(200 * kSec).has_value());
  EXPECT_TRUE(run_until_labels_agree(w, 120 * kSec));
  std::uint64_t rebuilds = 0;
  for (NodeId id = 1; id <= 3; ++id) {
    rebuilds += w.node(id).labeling().stats().rebuilds;
  }
  EXPECT_GT(rebuilds, 0u);
  // Node 4 is no longer a member and must not run the label algorithm.
  EXPECT_FALSE(w.node(4).labeling().member());
}

// Lemma 4.1: labels created by non-members are purged and never readopted.
TEST(Labeling, NonMemberLabelsPurged) {
  World w(fast_config(85));
  converge(w, 3);
  ASSERT_TRUE(run_until_labels_agree(w, 120 * kSec));
  // Plant a label by a non-member creator (id 99) as node 1's max.
  Rng rng(850);
  label::Label foreign = label::Label::next_label(99, std::vector<label::Label>{}, rng);
  w.node(1).labeling().store().inject_max(2, label::LabelPair::of(foreign));
  ASSERT_TRUE(run_until_labels_agree(w, 120 * kSec));
  for (NodeId id = 1; id <= 3; ++id) {
    EXPECT_NE(w.node(id).labeling().local_max().creator(), 99u) << id;
  }
}

// Corrupted stores (arbitrary labels everywhere) still converge — and the
// number of fresh label creations stays within the analytical bound.
TEST(Labeling, ConvergesFromCorruptedStores) {
  World w(fast_config(87));
  converge(w, 3);
  ASSERT_TRUE(run_until_labels_agree(w, 120 * kSec));
  Rng rng(870);
  for (NodeId id = 1; id <= 3; ++id) {
    auto& store = w.node(id).labeling().store();
    for (NodeId j = 1; j <= 3; ++j) {
      label::Label junk = label::Label::next_label(j, std::vector<label::Label>{}, rng);
      junk.sting = static_cast<std::uint32_t>(rng.next_below(1000));
      store.inject_max(j, label::LabelPair::of(junk));
      store.inject_stored(j, label::LabelPair::of(junk));
    }
  }
  EXPECT_TRUE(run_until_labels_agree(w, 200 * kSec));
  // Theorem 4.4: O(N(N²+m)) creations from an arbitrary state; here the
  // constants are tiny — use a generous explicit cap to catch runaways.
  std::uint64_t creations = 0;
  for (NodeId id = 1; id <= 3; ++id) {
    creations += w.node(id).labeling().store().stats().created;
  }
  EXPECT_LE(creations, 200u);
}

}  // namespace
}  // namespace ssr::harness
