#include "label/label.hpp"

#include <gtest/gtest.h>

namespace ssr::label {
namespace {

Label mk(NodeId creator, std::uint32_t sting,
         std::vector<std::uint32_t> anti = {}) {
  Label l;
  l.creator = creator;
  l.sting = sting;
  std::sort(anti.begin(), anti.end());
  l.antistings = std::move(anti);
  return l;
}

TEST(Label, CancelsRequiresBothDirections) {
  // b cancels a: a's sting is in b's antistings, b's sting not in a's.
  Label a = mk(1, 10, {});
  Label b = mk(1, 20, {10});
  EXPECT_TRUE(Label::cancels(a, b));
  EXPECT_FALSE(Label::cancels(b, a));
}

TEST(Label, IncomparableSameCreator) {
  Label a = mk(1, 10, {20});
  Label b = mk(1, 20, {10});
  // Each sting is in the other's antistings: neither dominates.
  EXPECT_FALSE(Label::cancels(a, b));
  EXPECT_FALSE(Label::cancels(b, a));
}

TEST(Label, CrossCreatorOrderedById) {
  Label a = mk(1, 99);
  Label b = mk(2, 1);
  EXPECT_TRUE(Label::lb_less(a, b));
  EXPECT_FALSE(Label::lb_less(b, a));
  EXPECT_TRUE(Label::total_less(a, b));
}

TEST(Label, TotalLessIsDeterministicOnIncomparables) {
  Label a = mk(1, 10, {20});
  Label b = mk(1, 20, {10});
  EXPECT_NE(Label::total_less(a, b), Label::total_less(b, a));
}

TEST(Label, NextLabelDominatesKnown) {
  Rng rng(5);
  std::vector<Label> known;
  for (std::uint32_t s = 100; s < 110; ++s) known.push_back(mk(3, s, {s + 1}));
  Label next = Label::next_label(3, known, rng);
  EXPECT_EQ(next.creator, 3u);
  for (const Label& k : known) {
    EXPECT_TRUE(Label::cancels(k, next)) << k.to_string();
  }
}

TEST(Label, NextLabelIgnoresForeignCreators) {
  Rng rng(7);
  std::vector<Label> known{mk(9, 1, {2})};
  Label next = Label::next_label(3, known, rng);
  EXPECT_EQ(next.creator, 3u);
  EXPECT_TRUE(next.antistings.empty());
}

TEST(Label, NextLabelChainGrows) {
  // Repeated creation yields a strictly growing chain under ≺lb.
  Rng rng(11);
  std::vector<Label> known;
  for (int i = 0; i < 20; ++i) {
    Label next = Label::next_label(1, known, rng);
    for (const Label& k : known) EXPECT_TRUE(Label::cancels(k, next));
    known.insert(known.begin(), next);
    if (known.size() > Label::kAntistings) known.pop_back();
  }
}

TEST(Label, Roundtrip) {
  Label l = mk(4, 77, {1, 2, 3});
  wire::Writer w;
  l.encode(w);
  wire::Reader r(w.data());
  auto decoded = Label::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, l);
}

TEST(Label, OversizedAntistingsRejected) {
  wire::Writer w;
  w.node_id(1);
  w.u32(5);
  w.u16(1000);  // larger than kAntistings
  wire::Reader r(w.data());
  EXPECT_FALSE(Label::decode(r).has_value());
}

TEST(LabelPair, LegitAndCancel) {
  LabelPair p = LabelPair::of(mk(1, 5));
  EXPECT_TRUE(p.legit());
  EXPECT_TRUE(p.has_main());
  p.cancel_with(mk(1, 6));
  EXPECT_FALSE(p.legit());
  EXPECT_TRUE(p.has_main());
}

TEST(LabelPair, NullPair) {
  LabelPair p = LabelPair::null();
  EXPECT_FALSE(p.has_main());
  EXPECT_FALSE(p.legit());
}

TEST(LabelPair, MergePrefersCancelled) {
  LabelPair legit = LabelPair::of(mk(1, 5));
  LabelPair cancelled = legit;
  cancelled.cancel_with(mk(1, 9));
  EXPECT_FALSE(legit.merged_with(cancelled).legit());
  EXPECT_FALSE(cancelled.merged_with(legit).legit());
}

TEST(LabelPair, ForeignCreatorDetection) {
  LabelPair p = LabelPair::of(mk(7, 5));
  EXPECT_TRUE(p.has_foreign_creator(IdSet{1, 2}));
  EXPECT_FALSE(p.has_foreign_creator(IdSet{7}));
  p.cancel_with(mk(3, 1));
  EXPECT_TRUE(p.has_foreign_creator(IdSet{7}));
}

TEST(LabelPair, Roundtrip) {
  LabelPair p = LabelPair::of(mk(2, 8, {1}));
  p.cancel_with(mk(2, 9, {8}));
  wire::Writer w;
  p.encode(w);
  wire::Reader r(w.data());
  EXPECT_EQ(LabelPair::decode(r), p);
}

}  // namespace
}  // namespace ssr::label
