#include "label/pair_store.hpp"

#include <gtest/gtest.h>

#include "label/label_store.hpp"

namespace ssr::label {
namespace {

Label mk(NodeId creator, std::uint32_t sting,
         std::vector<std::uint32_t> anti = {}) {
  Label l;
  l.creator = creator;
  l.sting = sting;
  std::sort(anti.begin(), anti.end());
  l.antistings = std::move(anti);
  return l;
}

LabelStore make_store(NodeId self, const IdSet& members) {
  LabelStore s(self, StoreConfig{}, Rng(42));
  s.rebuild(members);
  return s;
}

// useOwnLabel(): with nothing known, a fresh own label is created and
// becomes the local max.
TEST(PairStore, CreatesOwnLabelWhenEmpty) {
  auto s = make_store(1, IdSet{1, 2});
  s.refresh();
  EXPECT_TRUE(s.local_max().legit());
  EXPECT_EQ(s.local_max().creator(), 1u);
  EXPECT_EQ(s.stats().created, 1u);
}

// Line 26: the maximal legit label among the max entries is adopted.
TEST(PairStore, AdoptsGreaterLegitLabel) {
  auto s = make_store(1, IdSet{1, 2});
  s.refresh();  // own label, creator 1
  LabelPair theirs = LabelPair::of(mk(2, 50));
  s.receipt(theirs, LabelPair::null(), 2);
  // Creator 2 > creator 1 in the cross-creator order.
  EXPECT_TRUE(s.local_max().legit());
  EXPECT_EQ(s.local_max().creator(), 2u);
}

// Line 19: a peer echoing a cancellation of our max forces us off it.
TEST(PairStore, EchoedCancellationAdopted) {
  auto s = make_store(2, IdSet{1, 2});
  s.refresh();
  LabelPair mine = s.local_max();
  LabelPair cancelled = mine;
  cancelled.cancel_with(mk(2, mine.main().sting + 1));
  s.receipt(LabelPair::null(), cancelled, 1);
  // Our old max was cancelled; a new own label was minted (creator 2 is the
  // greatest member, so the new max is ours again but fresher).
  EXPECT_TRUE(s.local_max().legit());
  EXPECT_FALSE(s.local_max().same_main(mine));
  EXPECT_GE(s.stats().created, 2u);
}

// staleInfo(): a label stored under the wrong creator's queue flushes all.
TEST(PairStore, StaleQueueFlushed) {
  auto s = make_store(1, IdSet{1, 2});
  s.refresh();
  s.inject_stored(2, LabelPair::of(mk(1, 7)));  // creator 1 in queue 2
  s.refresh();
  EXPECT_GE(s.stats().stale_flushes, 1u);
  const auto* q2 = s.queue(2);
  EXPECT_TRUE(q2 == nullptr || q2->empty() ||
              (*q2)[0].creator() == 2u);
}

// Line 22: stored evidence cancels a lesser stored label.
TEST(PairStore, StoredEvidenceCancels) {
  auto s = make_store(1, IdSet{1, 2});
  Label small = mk(2, 10);
  Label big = mk(2, 20, {10});  // big cancels small
  s.receipt(LabelPair::of(small), LabelPair::null(), 2);
  s.receipt(LabelPair::of(big), LabelPair::null(), 2);
  s.refresh();
  // The max must be the big label; the small one is cancelled in the queue.
  EXPECT_TRUE(s.local_max().legit());
  EXPECT_EQ(s.local_max().main(), big);
  const auto* q = s.queue(2);
  ASSERT_NE(q, nullptr);
  bool small_cancelled = false;
  for (const auto& lp : *q) {
    if (lp.has_main() && lp.main() == small && !lp.legit())
      small_cancelled = true;
  }
  EXPECT_TRUE(small_cancelled);
}

// Incomparable labels of one creator cancel each other; a fresh dominating
// label is created by that creator.
TEST(PairStore, IncomparablesBothCancelled) {
  auto s = make_store(2, IdSet{1, 2});
  Label a = mk(2, 10, {20});
  Label b = mk(2, 20, {10});
  s.receipt(LabelPair::of(a), LabelPair::null(), 1);
  s.refresh();
  s.inject_max(1, LabelPair::of(b));
  s.refresh();
  // Eventually the local max is a *new* own label dominating both.
  for (int i = 0; i < 4; ++i) s.refresh();
  EXPECT_TRUE(s.local_max().legit());
  const Label& m = s.local_max().main();
  EXPECT_FALSE(m == a);
  EXPECT_FALSE(m == b);
}

// rebuild(): non-member structures disappear.
TEST(PairStore, RebuildDropsNonMembers) {
  auto s = make_store(1, IdSet{1, 2, 3});
  s.receipt(LabelPair::of(mk(3, 5)), LabelPair::null(), 3);
  s.rebuild(IdSet{1, 2});
  EXPECT_EQ(s.max_entry(3), nullptr);
  s.refresh();
  EXPECT_TRUE(s.local_max().legit());
  EXPECT_NE(s.local_max().creator(), 3u);
}

// Queue capacity is enforced.
TEST(PairStore, QueueCapacityBounded) {
  StoreConfig cfg;
  cfg.peer_queue_capacity = 3;
  LabelStore s(1, cfg, Rng(43));
  s.rebuild(IdSet{1, 2});
  for (std::uint32_t i = 0; i < 20; ++i) {
    s.receipt(LabelPair::of(mk(2, 100 + i)), LabelPair::null(), 2);
  }
  const auto* q = s.queue(2);
  ASSERT_NE(q, nullptr);
  EXPECT_LE(q->size(), 3u);
}

// Duplicate mains are merged (the cancelled copy wins).
TEST(PairStore, DuplicatesMerged) {
  auto s = make_store(1, IdSet{1, 2});
  Label l = mk(2, 9);
  LabelPair legit = LabelPair::of(l);
  LabelPair cancelled = legit;
  cancelled.cancel_with(mk(2, 10, {9}));
  s.inject_stored(2, legit);
  s.inject_stored(2, cancelled);
  s.refresh();
  const auto* q = s.queue(2);
  if (q != nullptr) {
    int copies = 0;
    for (const auto& lp : *q) {
      if (lp.has_main() && lp.main() == l) ++copies;
    }
    EXPECT_LE(copies, 1);
  }
}

// The mint path's candidate scratch is arena-backed and rewound per mint:
// after the first few mints establish the arena's high-water mark, repeated
// minting adds no backing storage (the allocation-cleanup contract; the
// counting-new benches guard the maintain path, this guards the mint
// scratch end to end).
TEST(PairStore, MintScratchStopsGrowing) {
  auto s = make_store(1, IdSet{1});
  // Force repeated mints: cancel the own max with itself as evidence; the
  // next maintenance round propagates the cancellation into the stored
  // queue, finds no legit label anywhere, and must mint afresh.
  auto force_mint = [&s] {
    LabelPair dead = s.local_max();
    ASSERT_TRUE(dead.has_main());
    dead.cancel_with(dead.main());
    s.inject_max(1, dead);
    s.refresh();
  };
  s.refresh();  // first mint
  for (int i = 0; i < 4; ++i) force_mint();
  const std::uint64_t minted = s.stats().created;
  ASSERT_GT(minted, 1u);
  const std::size_t mark = s.mint_arena().capacity_bytes();
  ASSERT_GT(s.mint_arena().allocations(), 0u);
  for (int i = 0; i < 50; ++i) force_mint();
  EXPECT_GT(s.stats().created, minted);
  EXPECT_EQ(s.mint_arena().capacity_bytes(), mark)
      << "mint scratch grew past its high-water mark";
}

}  // namespace
}  // namespace ssr::label
