#include "fd/theta_fd.hpp"

#include <gtest/gtest.h>

namespace ssr::fd {
namespace {

TEST(ThetaFD, TrustsSelfAlways) {
  ThetaFD fd(1, {});
  EXPECT_TRUE(fd.trusted().contains(1));
  EXPECT_EQ(fd.active_estimate(), 1u);
}

TEST(ThetaFD, TrustsHeartbeatingPeers) {
  ThetaFD fd(1, {});
  for (int i = 0; i < 10; ++i) {
    fd.heartbeat(2);
    fd.heartbeat(3);
  }
  EXPECT_EQ(fd.trusted(), (IdSet{1, 2, 3}));
  EXPECT_EQ(fd.active_estimate(), 3u);
}

TEST(ThetaFD, SuspectsSilentPeerEventually) {
  FdConfig cfg;
  cfg.theta = 5;
  ThetaFD fd(1, cfg);
  fd.heartbeat(2);
  fd.heartbeat(3);
  // 3 goes silent; 2 keeps beating — 3's count grows without bound.
  for (int i = 0; i < 200; ++i) fd.heartbeat(2);
  EXPECT_TRUE(fd.trusted().contains(2));
  EXPECT_FALSE(fd.trusted().contains(3));
}

TEST(ThetaFD, RecentlyCrashedStillRankedUntilGapGrows) {
  FdConfig cfg;
  cfg.theta = 5;
  ThetaFD fd(1, cfg);
  for (int i = 0; i < 10; ++i) {
    fd.heartbeat(2);
    fd.heartbeat(3);
  }
  // Immediately after the crash the counts are still close.
  fd.heartbeat(2);
  EXPECT_TRUE(fd.trusted().contains(3));
}

TEST(ThetaFD, ActiveEstimateSeesGap) {
  FdConfig cfg;
  cfg.theta = 4;
  ThetaFD fd(1, cfg);
  fd.heartbeat(2);
  fd.heartbeat(3);
  fd.heartbeat(4);
  for (int i = 0; i < 300; ++i) {
    fd.heartbeat(2);
    fd.heartbeat(3);
  }
  // 4 is far behind the gap: estimate counts self + 2 + 3.
  EXPECT_EQ(fd.active_estimate(), 3u);
}

TEST(ThetaFD, RankingSortsByFreshness) {
  ThetaFD fd(1, {});
  fd.heartbeat(5);
  fd.heartbeat(6);
  fd.heartbeat(7);  // freshest
  auto r = fd.ranking();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].first, 7u);
}

TEST(ThetaFD, BoundedStorageEvictsStalest) {
  FdConfig cfg;
  cfg.max_nodes = 4;  // self + 3 peers
  ThetaFD fd(1, cfg);
  for (NodeId p = 2; p <= 10; ++p) fd.heartbeat(p);
  EXPECT_LE(fd.ranking().size(), 3u);
  EXPECT_LE(fd.trusted().size(), 4u);
}

TEST(ThetaFD, ForgetDropsEntry) {
  ThetaFD fd(1, {});
  fd.heartbeat(2);
  fd.forget(2);
  EXPECT_FALSE(fd.trusted().contains(2));
}

TEST(ThetaFD, RecoversFromCorruptedCounts) {
  FdConfig cfg;
  cfg.theta = 5;
  ThetaFD fd(1, cfg);
  fd.heartbeat(2);
  fd.heartbeat(3);
  Rng rng(77);
  fd.inject_corruption(rng, 1'000'000);
  // Alive peers keep exchanging tokens; their counts re-zero and the
  // corrupted values wash out (self-stabilization of the detector).
  for (int i = 0; i < 50; ++i) {
    fd.heartbeat(2);
    fd.heartbeat(3);
  }
  EXPECT_TRUE(fd.trusted().contains(2));
  EXPECT_TRUE(fd.trusted().contains(3));
}

class ThetaSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Property: for any Θ, a continuously heartbeating peer is trusted and a
// peer that stopped is eventually suspected.
TEST_P(ThetaSweep, CompletenessAndAccuracy) {
  FdConfig cfg;
  cfg.theta = GetParam();
  ThetaFD fd(1, cfg);
  fd.heartbeat(2);
  fd.heartbeat(3);
  for (int i = 0; i < 5000; ++i) fd.heartbeat(2);
  EXPECT_TRUE(fd.trusted().contains(2));
  EXPECT_FALSE(fd.trusted().contains(3));
}

INSTANTIATE_TEST_SUITE_P(Thetas, ThetaSweep,
                         ::testing::Values(2, 4, 8, 16, 64));

}  // namespace
}  // namespace ssr::fd
