#include "reconf/recma.hpp"

#include <gtest/gtest.h>

#include "harness/fault_injector.hpp"
#include "harness/monitors.hpp"
#include "harness/world.hpp"

namespace ssr::harness {
namespace {

WorldConfig fast_config(std::uint64_t seed) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = false;  // exercise recMA's own trigger paths
  return cfg;
}

World& converge(World& w, std::size_t n) {
  for (NodeId id = 1; id <= n; ++id) w.add_node(id);
  EXPECT_TRUE(w.run_until_converged(180 * kSec).has_value());
  return w;
}

std::uint64_t total_majority_triggers(World& w) {
  std::uint64_t t = 0;
  for (NodeId id : w.alive()) t += w.node(id).recma().stats().majority_loss_triggers;
  return t;
}

std::uint64_t total_eval_triggers(World& w) {
  std::uint64_t t = 0;
  for (NodeId id : w.alive()) t += w.node(id).recma().stats().eval_conf_triggers;
  return t;
}

// After a crash the survivors still agree on the *old* configuration, so
// converged() holds trivially; wait until the expected new config installs.
bool run_until_config(World& w, const IdSet& expect, SimTime timeout) {
  const SimTime deadline = w.scheduler().now() + timeout;
  while (w.scheduler().now() < deadline) {
    auto c = w.common_config();
    if (c && *c == expect) return true;
    w.run_for(20 * kMsec);
  }
  auto c = w.common_config();
  return c && *c == expect;
}

// Lines 12–14: when a majority of the configuration collapses and the whole
// local core agrees, recMA re-establishes a configuration from the alive
// participants (Lemma 3.20, case 1).
TEST(RecMA, MajorityCollapseTriggersReconfiguration) {
  World w(fast_config(41));
  converge(w, 5);
  w.crash(3);
  w.crash(4);
  w.crash(5);
  ASSERT_TRUE(run_until_config(w, IdSet{1, 2}, 400 * kSec));
  EXPECT_GT(total_majority_triggers(w), 0u);
}

// Lines 16–18: the prediction function advises reconfiguration and a
// members' majority concurs (Lemma 3.20, case 2). Quarter-failed policy on
// a 4-member configuration fires after a single crash.
TEST(RecMA, EvalConfMajorityTriggersReconfiguration) {
  World w(fast_config(43));
  converge(w, 4);
  w.crash(4);
  ASSERT_TRUE(run_until_config(w, IdSet{1, 2, 3}, 400 * kSec));
  EXPECT_GT(total_eval_triggers(w) + total_majority_triggers(w), 0u);
}

// Closure: with every member alive and the prediction function quiet,
// recMA must never trigger (Lemma 3.19).
TEST(RecMA, NoTriggerInSteadyState) {
  World w(fast_config(45));
  converge(w, 4);
  const std::uint64_t before =
      total_eval_triggers(w) + total_majority_triggers(w);
  w.run_for(120 * kSec);
  EXPECT_EQ(total_eval_triggers(w) + total_majority_triggers(w), before);
  EXPECT_TRUE(w.converged());
}

// Lemma 3.18: stale flags planted by a transient fault cause at most a
// bounded number of spurious triggerings, and the system returns to a
// steady config state.
TEST(RecMA, PlantedStaleFlagsAreBounded) {
  World w(fast_config(47));
  converge(w, 4);
  FaultInjector fi(w, 470);
  for (NodeId id = 1; id <= 4; ++id) fi.plant_recma_flags(id, true, true);
  w.run_for(120 * kSec);
  ASSERT_TRUE(w.run_until_converged(200 * kSec).has_value());
  // The bound in the paper is O(N² cap); with clean local recomputation the
  // observed number is tiny.
  EXPECT_LE(total_eval_triggers(w) + total_majority_triggers(w), 8u);
  EXPECT_TRUE(w.converged());
}

// A participant that is not a member must never trigger (line 6 guard).
TEST(RecMA, NonMemberDoesNotTrigger) {
  World w(fast_config(49));
  converge(w, 3);
  // Shrink the configuration so node 3 is a non-member participant.
  ASSERT_TRUE(w.node(1).recsa().estab(IdSet{1, 2}));
  ASSERT_TRUE(w.run_until_converged(200 * kSec).has_value());
  ASSERT_EQ(*w.common_config(), (IdSet{1, 2}));
  const auto before = w.node(3).recma().stats();
  w.run_for(60 * kSec);
  EXPECT_EQ(w.node(3).recma().stats().majority_loss_triggers,
            before.majority_loss_triggers);
  EXPECT_EQ(w.node(3).recma().stats().eval_conf_triggers,
            before.eval_conf_triggers);
}

}  // namespace
}  // namespace ssr::harness
