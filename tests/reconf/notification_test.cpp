#include "reconf/notification.hpp"

#include <gtest/gtest.h>

namespace ssr::reconf {
namespace {

TEST(Notification, DefaultIsNoProposal) {
  Notification n;
  EXPECT_TRUE(n.is_default());
  EXPECT_EQ(n, Notification::none());
}

TEST(Notification, ProposalIsNotDefault) {
  auto n = Notification::proposal(1, IdSet{1, 2});
  EXPECT_FALSE(n.is_default());
  EXPECT_EQ(n.phase, 1);
  EXPECT_EQ(n.set, (IdSet{1, 2}));
}

TEST(Notification, LexOrderPhaseDominates) {
  auto p1 = Notification::proposal(1, IdSet{9});
  auto p2 = Notification::proposal(2, IdSet{1});
  EXPECT_TRUE(Notification::lex_less(p1, p2));
  EXPECT_FALSE(Notification::lex_less(p2, p1));
}

TEST(Notification, LexOrderSetBreaksTies) {
  auto a = Notification::proposal(1, IdSet{1, 2});
  auto b = Notification::proposal(1, IdSet{1, 3});
  EXPECT_TRUE(Notification::lex_less(a, b));
  EXPECT_FALSE(Notification::lex_less(b, a));
  EXPECT_FALSE(Notification::lex_less(a, a));
}

TEST(Notification, DefaultBelowEverything) {
  EXPECT_TRUE(
      Notification::lex_less(Notification::none(), Notification::proposal(1, IdSet{1})));
}

TEST(Notification, DegreeFormula) {
  auto n = Notification::proposal(2, IdSet{1});
  EXPECT_EQ(n.degree(false), 4);
  EXPECT_EQ(n.degree(true), 5);
  EXPECT_EQ(Notification::none().degree(false), 0);
}

TEST(Notification, Roundtrip) {
  for (const auto& n :
       {Notification::none(), Notification::proposal(1, IdSet{1, 5}),
        Notification::proposal(2, IdSet{})}) {
    wire::Writer w;
    n.encode(w);
    wire::Reader r(w.data());
    EXPECT_EQ(Notification::decode(r), n);
  }
}

TEST(Notification, CorruptedPhaseClamped) {
  wire::Writer w;
  w.u8(7);  // invalid phase
  w.boolean(false);
  wire::Reader r(w.data());
  EXPECT_EQ(Notification::decode(r).phase, 0);
}

}  // namespace
}  // namespace ssr::reconf
