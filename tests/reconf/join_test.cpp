#include "reconf/join.hpp"

#include <gtest/gtest.h>

#include "harness/world.hpp"

namespace ssr::harness {
namespace {

WorldConfig fast_config(std::uint64_t seed) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = false;
  return cfg;
}

World& converge(World& w, std::size_t n) {
  for (NodeId id = 1; id <= n; ++id) w.add_node(id);
  EXPECT_TRUE(w.run_until_converged(180 * kSec).has_value());
  return w;
}

// Theorem 3.26: a joiner that the application admits becomes a participant;
// the configuration itself does not change (joins are not reconfigurations).
TEST(Join, AdmittedJoinerBecomesParticipant) {
  World w(fast_config(61));
  converge(w, 3);
  const IdSet config_before = *w.common_config();
  auto& n4 = w.add_node(4);
  w.run_for(120 * kSec);
  EXPECT_TRUE(n4.recsa().is_participant());
  EXPECT_GE(n4.joiner().stats().joined, 1u);
  ASSERT_TRUE(w.converged());
  EXPECT_EQ(*w.common_config(), config_before);
  // The new participant is visible in the members' participant sets.
  EXPECT_TRUE(w.node(1).recsa().participants().contains(4));
}

// passQuery() = False keeps the joiner out (application-controlled churn),
// but the joiner keeps asking (liveness of the request loop).
TEST(Join, DeniedJoinerStaysOut) {
  World w(fast_config(63));
  converge(w, 3);
  for (NodeId id = 1; id <= 3; ++id) {
    w.node(id).set_pass_query([] { return false; });
  }
  auto& n4 = w.add_node(4);
  w.run_for(90 * kSec);
  EXPECT_FALSE(n4.recsa().is_participant());
  EXPECT_TRUE(n4.joiner().waiting_to_join());
  // The system itself stays healthy.
  EXPECT_TRUE(w.converged());
}

// A majority of passes is required: if only one member of three grants,
// the joiner must not be promoted.
TEST(Join, MinorityOfPassesInsufficient) {
  World w(fast_config(65));
  converge(w, 3);
  w.node(2).set_pass_query([] { return false; });
  w.node(3).set_pass_query([] { return false; });
  auto& n4 = w.add_node(4);
  w.run_for(90 * kSec);
  EXPECT_FALSE(n4.recsa().is_participant());
}

// Claim 3.24: no joiner is promoted while a reconfiguration is in progress.
// We hold the system in a notification state by continuously re-proposing.
TEST(Join, NoPromotionDuringReconfiguration) {
  World w(fast_config(67));
  converge(w, 4);
  // Kick off a delicate replacement and immediately add a joiner.
  ASSERT_TRUE(w.node(1).recsa().estab(IdSet{1, 2, 3}));
  auto& n5 = w.add_node(5);
  // While the proposer has not completed the replacement, noReco() is false
  // at every informed node; sample the joiner during this window.
  bool promoted_during_reco = false;
  for (int i = 0; i < 40; ++i) {
    w.run_for(500 * kUsec);
    if (!w.node(1).recsa().no_reco() && n5.recsa().is_participant()) {
      promoted_during_reco = true;
    }
  }
  EXPECT_FALSE(promoted_during_reco);
  // Afterwards the join eventually succeeds.
  ASSERT_TRUE(w.run_until_converged(200 * kSec).has_value());
  w.run_for(120 * kSec);
  EXPECT_TRUE(n5.recsa().is_participant());
}

// Several joiners are admitted concurrently.
TEST(Join, ManyJoiners) {
  World w(fast_config(69));
  converge(w, 3);
  for (NodeId id = 4; id <= 7; ++id) w.add_node(id);
  w.run_for(240 * kSec);
  for (NodeId id = 4; id <= 7; ++id) {
    EXPECT_TRUE(w.node(id).recsa().is_participant()) << id;
  }
  EXPECT_TRUE(w.converged());
}

// Members grant passes only while they are members; the grant counter moves.
TEST(Join, PassesAreGrantedByMembers) {
  World w(fast_config(71));
  converge(w, 3);
  w.add_node(4);
  w.run_for(120 * kSec);
  std::uint64_t grants = 0;
  for (NodeId id = 1; id <= 3; ++id) {
    grants += w.node(id).joiner().stats().passes_granted;
  }
  EXPECT_GT(grants, 0u);
}

}  // namespace
}  // namespace ssr::harness
