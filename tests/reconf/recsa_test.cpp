#include "reconf/recsa.hpp"

#include <gtest/gtest.h>

#include "harness/fault_injector.hpp"
#include "harness/monitors.hpp"
#include "harness/world.hpp"

namespace ssr::harness {
namespace {

WorldConfig fast_config(std::uint64_t seed) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = false;  // isolate the reconfiguration scheme
  return cfg;
}

World& converge(World& w, std::size_t n) {
  for (NodeId id = 1; id <= n; ++id) w.add_node(id);
  EXPECT_TRUE(w.run_until_converged(180 * kSec).has_value());
  return w;
}

TEST(RecSAMessageWire, Roundtrip) {
  reconf::RecSAMessage m;
  m.fd = IdSet{1, 2, 3};
  m.part = IdSet{1, 2};
  m.config = reconf::ConfigValue::set(IdSet{1, 2});
  m.prp = reconf::Notification::proposal(1, IdSet{2, 3});
  m.all = true;
  m.echo = reconf::EchoView{IdSet{1}, reconf::Notification::none(), false};
  auto decoded = reconf::RecSAMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->fd, m.fd);
  EXPECT_EQ(decoded->part, m.part);
  EXPECT_EQ(decoded->config, m.config);
  EXPECT_EQ(decoded->prp, m.prp);
  EXPECT_EQ(decoded->all, m.all);
  EXPECT_EQ(decoded->echo, m.echo);
}

TEST(RecSAMessageWire, GarbageRejected) {
  EXPECT_FALSE(reconf::RecSAMessage::decode({}).has_value());
  EXPECT_FALSE(reconf::RecSAMessage::decode({1, 2, 3}).has_value());
}

// --- Brute-force stabilization ---------------------------------------------

// A planted configuration conflict (type-2 stale information) drives the
// brute-force reset: ⊥ propagates, then config ← FD at every node
// (Lemma 3.2 / Claims 3.3–3.6).
TEST(RecSABruteForce, ConflictTriggersResetAndReconverges) {
  World w(fast_config(21));
  converge(w, 4);
  FaultInjector fi(w, 99);
  fi.split_config(IdSet{1, 2}, IdSet{3, 4});
  auto t = w.run_until_converged(180 * kSec);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*w.common_config(), (IdSet{1, 2, 3, 4}));
  // At least one node must have detected staleness and reset.
  std::uint64_t resets = 0;
  for (NodeId id = 1; id <= 4; ++id) {
    resets += w.node(id).recsa().stats().resets_started;
  }
  EXPECT_GT(resets, 0u);
}

// Type-4: the configuration names only crashed processors while joiners are
// alive — detected and recovered by reset (complete-collapse handling).
TEST(RecSABruteForce, ConfigOfDeadNodesIsReplaced) {
  World w(fast_config(23));
  converge(w, 4);
  for (NodeId id = 1; id <= 4; ++id) {
    w.node(id).recsa().inject_config(
        id, reconf::ConfigValue::set(IdSet{90, 91, 92}));
  }
  auto t = w.run_until_converged(240 * kSec);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*w.common_config(), (IdSet{1, 2, 3, 4}));
}

// --- Delicate replacement (the Fig. 2 automaton) ----------------------------

TEST(RecSADelicate, EstabReplacesConfigWithoutBruteForce) {
  World w(fast_config(25));
  converge(w, 4);
  std::uint64_t resets_before = 0;
  for (NodeId id = 1; id <= 4; ++id) {
    resets_before += w.node(id).recsa().stats().resets_started;
  }
  ASSERT_TRUE(w.node(1).recsa().estab(IdSet{1, 2, 3}));
  auto t = w.run_until_converged(180 * kSec);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*w.common_config(), (IdSet{1, 2, 3}));
  // Delicate replacement must not fall back to brute force (Theorem 3.16).
  std::uint64_t resets_after = 0;
  for (NodeId id = 1; id <= 4; ++id) {
    resets_after += w.node(id).recsa().stats().resets_started;
  }
  EXPECT_EQ(resets_after, resets_before);
  // The proposer walked the automaton: 1→2 and 2→0.
  EXPECT_GE(w.node(1).recsa().stats().phase_transitions, 2u);
  EXPECT_GE(w.node(1).recsa().stats().delicate_installs, 1u);
  // Node 4 is still a participant (it follows the new config from outside).
  EXPECT_TRUE(w.node(4).recsa().is_participant());
}

TEST(RecSADelicate, EstabRejectsBadArguments) {
  World w(fast_config(27));
  converge(w, 3);
  auto& recsa = w.node(1).recsa();
  EXPECT_FALSE(recsa.estab(IdSet{}));  // empty set
  const IdSet current = recsa.get_config().ids();
  EXPECT_FALSE(recsa.estab(current));  // identical configuration
}

TEST(RecSADelicate, ConcurrentProposalsSelectOne) {
  World w(fast_config(29));
  converge(w, 5);
  // Two simultaneous proposals: the lexically greater set must win.
  ASSERT_TRUE(w.node(1).recsa().estab(IdSet{1, 2, 3}));
  ASSERT_TRUE(w.node(5).recsa().estab(IdSet{1, 2, 4}));
  auto t = w.run_until_converged(180 * kSec);
  ASSERT_TRUE(t.has_value());
  // ⟨1,{1,2,4}⟩ >lex ⟨1,{1,2,3}⟩.
  EXPECT_EQ(*w.common_config(), (IdSet{1, 2, 4}));
}

TEST(RecSADelicate, NoRecoIsFalseDuringReplacement) {
  World w(fast_config(31));
  converge(w, 3);
  ASSERT_TRUE(w.node(1).recsa().estab(IdSet{1, 2}));
  // Immediately after estab the proposer itself reports a reconfiguration.
  EXPECT_FALSE(w.node(1).recsa().no_reco());
  ASSERT_TRUE(w.run_until_converged(180 * kSec).has_value());
  EXPECT_TRUE(w.node(1).recsa().no_reco());
}

// --- Crash handling ----------------------------------------------------------

TEST(RecSACrash, SurvivesMinorityCrash) {
  World w(fast_config(33));
  converge(w, 5);
  w.crash(5);
  // The remaining majority keeps a common configuration; recMA eventually
  // replaces it (quarter-failed policy does not fire at 1/5, so the old
  // config simply stays in place and stays conflict-free).
  w.run_for(60 * kSec);
  EXPECT_TRUE(w.converged());
}

// --- Convergence from arbitrary states (Theorem 3.15) ------------------------

struct CorruptionCase {
  std::uint64_t seed;
  std::size_t nodes;
};

class RecSACorruptionSweep : public ::testing::TestWithParam<CorruptionCase> {};

TEST_P(RecSACorruptionSweep, ConvergesFromArbitraryState) {
  const auto param = GetParam();
  World w(fast_config(param.seed));
  converge(w, param.nodes);
  FaultInjector fi(w, param.seed * 31 + 7);
  fi.corrupt_all_recsa();
  fi.fill_channels_with_garbage(2);
  auto t = w.run_until_converged(400 * kSec);
  ASSERT_TRUE(t.has_value())
      << "seed=" << param.seed << " nodes=" << param.nodes;
  // All alive processors are participants of one common configuration.
  const IdSet alive = w.alive();
  EXPECT_EQ(*w.common_config(), alive);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RecSACorruptionSweep,
    ::testing::Values(CorruptionCase{101, 3}, CorruptionCase{102, 3},
                      CorruptionCase{103, 4}, CorruptionCase{104, 4},
                      CorruptionCase{105, 5}, CorruptionCase{106, 5},
                      CorruptionCase{107, 6}, CorruptionCase{108, 6}));

}  // namespace
}  // namespace ssr::harness
