#include "reconf/config_value.hpp"

#include <gtest/gtest.h>

namespace ssr::reconf {
namespace {

TEST(ConfigValue, DefaultIsNonParticipant) {
  ConfigValue v;
  EXPECT_TRUE(v.is_non_participant());
  EXPECT_FALSE(v.is_bottom());
  EXPECT_FALSE(v.is_set());
  EXPECT_FALSE(v.is_proper());
}

TEST(ConfigValue, BottomAndSet) {
  EXPECT_TRUE(ConfigValue::bottom().is_bottom());
  auto s = ConfigValue::set(IdSet{1, 2});
  EXPECT_TRUE(s.is_set());
  EXPECT_TRUE(s.is_proper());
  EXPECT_EQ(s.ids(), (IdSet{1, 2}));
}

TEST(ConfigValue, EmptySetIsNotProper) {
  auto s = ConfigValue::set(IdSet{});
  EXPECT_TRUE(s.is_set());
  EXPECT_FALSE(s.is_proper());  // type-2 stale information
}

TEST(ConfigValue, EqualityDistinguishesTags) {
  EXPECT_EQ(ConfigValue::bottom(), ConfigValue::bottom());
  EXPECT_NE(ConfigValue::bottom(), ConfigValue::non_participant());
  EXPECT_NE(ConfigValue::set(IdSet{1}), ConfigValue::set(IdSet{2}));
  EXPECT_EQ(ConfigValue::set(IdSet{1}), ConfigValue::set(IdSet{1}));
}

TEST(ConfigValue, RoundtripAllTags) {
  for (const auto& v :
       {ConfigValue::non_participant(), ConfigValue::bottom(),
        ConfigValue::set(IdSet{3, 5, 9})}) {
    wire::Writer w;
    v.encode(w);
    wire::Reader r(w.data());
    EXPECT_EQ(ConfigValue::decode(r), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(ConfigValue, CorruptedTagDecodesAsReset) {
  wire::Bytes raw{42};  // invalid tag byte
  wire::Reader r(raw);
  EXPECT_TRUE(ConfigValue::decode(r).is_bottom());
}

TEST(ConfigValue, DeterministicTotalOrder) {
  // Used by chsConfig()'s choose(); only determinism matters.
  auto a = ConfigValue::set(IdSet{1});
  auto b = ConfigValue::set(IdSet{2});
  EXPECT_TRUE((a < b) != (b < a));
  EXPECT_TRUE(ConfigValue::non_participant() < ConfigValue::bottom());
  EXPECT_TRUE(ConfigValue::bottom() < a);
}

}  // namespace
}  // namespace ssr::reconf
