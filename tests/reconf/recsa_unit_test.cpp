// White-box tests of Algorithm 3.1's predicates: the stale-information
// classification (Definition 3.1), the noReco() invariant tests, and the
// interface guards. Uses a single-node world so the engine runs against a
// real link mux but with fully controlled state.
#include <gtest/gtest.h>

#include "harness/world.hpp"

namespace ssr::harness {
namespace {

WorldConfig unit_config(std::uint64_t seed) {
  WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = false;
  return cfg;
}

// A converged single-node system: config = {1}, quiet.
std::unique_ptr<World> solo() {
  auto w = std::make_unique<World>(unit_config(901));
  w->add_node(1);
  EXPECT_TRUE(w->run_until_converged(120 * kSec).has_value());
  return w;
}

TEST(RecSAUnit, SoloNodeIsQuietParticipant) {
  auto w = solo();
  auto& r = w->node(1).recsa();
  EXPECT_TRUE(r.is_participant());
  EXPECT_TRUE(r.no_reco());
  EXPECT_EQ(r.get_config(), reconf::ConfigValue::set(IdSet{1}));
  EXPECT_EQ(r.participants(), IdSet{1});
}

// Type-1 stale information: a phase-0 notification carrying a set is
// cleaned by a reset within one iteration.
TEST(RecSAUnit, Type1StaleDetected) {
  auto w = solo();
  auto& r = w->node(1).recsa();
  const auto before = r.stats().stale_detected[1];
  r.inject_notification(1, reconf::Notification{0, true, IdSet{1}});
  w->run_for(10 * kSec);
  EXPECT_GT(r.stats().stale_detected[1], before);
  EXPECT_TRUE(w->converged());  // recovered
}

// Type-2: an empty-set configuration triggers a reset and recovery.
TEST(RecSAUnit, Type2EmptyConfigDetected) {
  auto w = solo();
  auto& r = w->node(1).recsa();
  const auto resets = r.stats().resets_started;
  r.inject_config(1, reconf::ConfigValue::set(IdSet{}));
  w->run_for(10 * kSec);
  EXPECT_GT(r.stats().resets_started, resets);
  EXPECT_TRUE(w->converged());
}

// Type-2: a ⊥ config entry (reset marker) propagates and completes.
TEST(RecSAUnit, BottomConfigCompletesReset) {
  auto w = solo();
  auto& r = w->node(1).recsa();
  r.inject_config(1, reconf::ConfigValue::bottom());
  w->run_for(10 * kSec);
  EXPECT_TRUE(w->converged());
  EXPECT_EQ(*w->common_config(), IdSet{1});
}

// Type-4: a proper config disjoint from the participants is replaced.
TEST(RecSAUnit, Type4DisjointConfigDetected) {
  auto w = solo();
  auto& r = w->node(1).recsa();
  const auto before = r.stats().stale_detected[4];
  r.inject_config(1, reconf::ConfigValue::set(IdSet{77, 78}));
  w->run_for(10 * kSec);
  EXPECT_GT(r.stats().stale_detected[4], before);
  EXPECT_TRUE(w->converged());
  EXPECT_EQ(*w->common_config(), IdSet{1});
}

// noReco() is false while any notification is present in the local view.
TEST(RecSAUnit, NotificationBlocksNoReco) {
  auto w = solo();
  auto& r = w->node(1).recsa();
  ASSERT_TRUE(r.no_reco());
  r.inject_notification(1, reconf::Notification::proposal(1, IdSet{1}));
  EXPECT_FALSE(r.no_reco());
}

// estab() guards: rejected for non-participants, during reconfigurations,
// for the empty set and for the identical configuration.
TEST(RecSAUnit, EstabGuards) {
  auto w = solo();
  auto& r = w->node(1).recsa();
  EXPECT_FALSE(r.estab(IdSet{}));
  EXPECT_FALSE(r.estab(IdSet{1}));  // == current config
  // During a reconfiguration (own notification active):
  r.inject_notification(1, reconf::Notification::proposal(1, IdSet{1}));
  EXPECT_FALSE(r.estab(IdSet{1, 2}));
}

// An accepted estab() on a solo system walks the automaton alone
// (1 → 2 → 0) and installs the proposal.
TEST(RecSAUnit, SoloDelicateReplacement) {
  auto w = solo();
  auto& r = w->node(1).recsa();
  // Propose a set including a phantom member 9: not proper usage but legal
  // input — the config installs, then type-4 cleanup does NOT fire because
  // 1 ∈ config ∩ part.
  ASSERT_TRUE(r.estab(IdSet{1, 9}));
  w->run_for(30 * kSec);
  EXPECT_TRUE(r.no_reco());
  EXPECT_TRUE(r.get_config().is_set());
  EXPECT_TRUE(r.get_config().ids().contains(1));
  EXPECT_GE(r.stats().delicate_installs, 1u);
}

// getConfig() during quiet periods returns the chosen common value; during
// a replacement it returns the local view.
TEST(RecSAUnit, GetConfigFollowsQuietness) {
  auto w = solo();
  auto& r = w->node(1).recsa();
  EXPECT_EQ(r.get_config(), reconf::ConfigValue::set(IdSet{1}));
  r.inject_notification(1, reconf::Notification::proposal(1, IdSet{1}));
  EXPECT_FALSE(r.no_reco());
  EXPECT_EQ(r.get_config(), reconf::ConfigValue::set(IdSet{1}));  // local copy
}

// Crash cleanup (line 25a): entries of untrusted processors revert to
// (], dfltNtf) — observable through peer_part_view / peer_is_participant.
TEST(RecSAUnit, CrashCleanupForgetsUntrusted) {
  auto w = solo();
  auto& r = w->node(1).recsa();
  r.inject_config(42, reconf::ConfigValue::set(IdSet{42}));
  // 42 never heartbeats, so the next iterations wipe the entry. The planted
  // conflicting value triggers at most a transient reset, then: gone.
  w->run_for(20 * kSec);
  EXPECT_FALSE(r.peer_is_participant(42));
  EXPECT_TRUE(w->converged());
}

// Fuzz: arbitrary state + repeated ticks never crash and always return to a
// legal execution (memory-safety + convergence at the unit level).
class RecSAFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecSAFuzz, SurvivesArbitraryLocalState) {
  auto w = std::make_unique<World>(unit_config(GetParam()));
  w->add_node(1);
  w->add_node(2);
  ASSERT_TRUE(w->run_until_converged(120 * kSec).has_value());
  Rng rng(GetParam() * 131);
  for (int round = 0; round < 6; ++round) {
    w->node(1).recsa().inject_corruption(rng, IdSet{1, 2, 50, 60});
    w->run_for(30 * kSec);
  }
  EXPECT_TRUE(w->run_until_converged(600 * kSec).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecSAFuzz,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

}  // namespace
}  // namespace ssr::harness
