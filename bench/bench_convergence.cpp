// E2 — Theorem 3.15 (convergence): virtual time to reach a conflict-free
// configuration from an arbitrary (corrupted) starting state, as a function
// of system size. Both corruption modes of the paper are exercised:
// arbitrary processor state and stale channel content.
#include "bench_common.hpp"

namespace ssr::bench {
namespace {

void BM_ConvergenceFromArbitraryState(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double total_ms = 0;
  std::uint64_t seed = 900;
  for (auto _ : state) {
    harness::World w(world_config(seed));
    boot(w, n, state);
    harness::FaultInjector fi(w, seed * 13 + 1);
    fi.corrupt_all_recsa();
    fi.corrupt_all_fd();
    fi.fill_channels_with_garbage(2);
    const double ms = run_until(w, 900 * kSec, [&] { return w.converged(); });
    if (ms < 0) {
      state.SkipWithError("did not converge");
      return;
    }
    total_ms += ms;
    ++seed;
  }
  state.counters["converge_sim_ms"] =
      benchmark::Counter(total_ms / static_cast<double>(state.iterations()));
}

BENCHMARK(BM_ConvergenceFromArbitraryState)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->ArgName("N")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Conflict-only corruption (split-brain configs, the classic scenario).
void BM_ConvergenceFromSplitBrain(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double total_ms = 0;
  std::uint64_t seed = 1300;
  for (auto _ : state) {
    harness::World w(world_config(seed++));
    boot(w, n, state);
    IdSet a, b;
    for (NodeId id = 1; id <= n; ++id) {
      (id <= n / 2 ? a : b).insert(id);
    }
    harness::FaultInjector fi(w, seed);
    fi.split_config(a, b);
    const double ms = run_until(w, 900 * kSec, [&] { return w.converged(); });
    if (ms < 0) {
      state.SkipWithError("did not converge");
      return;
    }
    total_ms += ms;
  }
  state.counters["converge_sim_ms"] =
      benchmark::Counter(total_ms / static_cast<double>(state.iterations()));
}

BENCHMARK(BM_ConvergenceFromSplitBrain)
    ->Arg(4)
    ->Arg(6)
    ->Arg(8)
    ->ArgName("N")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace ssr::bench

BENCHMARK_MAIN();
