// Scenario-engine bench: runs library scenarios end to end on the
// deterministic scheduler and reports virtual-time-to-completion plus the
// trace volume. This is the migration target for ad-hoc bench scripts: a
// new execution shape is a ScenarioSpec, not another hand-rolled driver.
#include <benchmark/benchmark.h>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"

namespace ssr::bench {
namespace {

void run_named(benchmark::State& state, const char* name) {
  auto spec = scenario::find_scenario(name);
  if (!spec) {
    state.SkipWithError("unknown scenario");
    return;
  }
  double sim_ms = 0;
  double events = 0;
  std::uint64_t seed = 9000;
  for (auto _ : state) {
    const scenario::ScenarioResult r = scenario::run_scenario(*spec, seed++);
    if (!r.ok) {
      state.SkipWithError(r.summary().c_str());
      return;
    }
    sim_ms += static_cast<double>(r.sim_time) / kMsec;
    events += static_cast<double>(r.trace_events);
  }
  const double it = static_cast<double>(state.iterations());
  state.counters["sim_ms"] = benchmark::Counter(sim_ms / it);
  state.counters["trace_events"] = benchmark::Counter(events / it);
}

void BM_ScenarioBootstrap(benchmark::State& state) {
  run_named(state, "bootstrap");
}
void BM_ScenarioTransientBlast(benchmark::State& state) {
  run_named(state, "transient-blast");
}
void BM_ScenarioMajoritySplit(benchmark::State& state) {
  run_named(state, "majority-split");
}
void BM_ScenarioPartitionHeal(benchmark::State& state) {
  run_named(state, "partition-heal");
}

BENCHMARK(BM_ScenarioBootstrap)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_ScenarioTransientBlast)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_ScenarioMajoritySplit)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_ScenarioPartitionHeal)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace ssr::bench

BENCHMARK_MAIN();
