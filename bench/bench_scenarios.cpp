// Scenario-engine bench: runs library scenarios end to end on the
// deterministic scheduler and reports virtual-time-to-completion plus the
// trace volume. This is the migration target for ad-hoc bench scripts: a
// new execution shape is a ScenarioSpec, not another hand-rolled driver.
//
// On exit the accumulated per-scenario metrics are written to
// BENCH_scenarios.json in the working directory (events/sec, packet
// counts) so CI and regression tooling can diff runs without scraping
// benchmark text output.
//
// The BM_WriterFieldAppend pair quantifies the wire::Writer::reserve()
// pre-allocation used on the hot encode paths (frames, bundles, UDP
// envelopes): Arg(0) grows the buffer per field, Arg(1) reserves once.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <string>

#include "dlink/token_link.hpp"
#include "net/channel.hpp"
#include "scenario/library.hpp"
#include "scenario/runner.hpp"

// --- Global allocation counter ----------------------------------------------
// Every operator new in the process bumps this counter; BM_ChannelSendAlloc
// samples it around the steady-state send→deliver loop to assert the packet
// hot path performs zero heap allocations. Counting is process-wide, which
// is exactly the point: any hidden allocation — closure, tombstone, payload
// copy, container growth — is caught no matter which layer snuck it in.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ssr::bench {
namespace {

/// Set when an allocation assertion fails, so the process exits nonzero and
/// CI fails loudly instead of just printing a slower number.
bool g_alloc_regression = false;

struct ScenarioAgg {
  int iterations = 0;
  double wall_ms = 0;
  double sim_ms = 0;
  double trace_events = 0;
  double sched_events = 0;
  double packets_sent = 0;
  double packets_delivered = 0;
  double pool_acquired = 0;
  double pool_reused = 0;
};

std::map<std::string, ScenarioAgg>& metrics() {
  static std::map<std::string, ScenarioAgg> m;
  return m;
}

void run_named(benchmark::State& state, const char* name) {
  auto spec = scenario::find_scenario(name);
  if (!spec) {
    state.SkipWithError("unknown scenario");
    return;
  }
  // Per-invocation accumulator for the reported counters; the static map
  // only feeds write_json (it outlives repetitions, so dividing it by this
  // invocation's iteration count would inflate repeated runs).
  ScenarioAgg local;
  std::uint64_t seed = 9000;
  for (auto _ : state) {
    const auto wall_start = std::chrono::steady_clock::now();
    const scenario::ScenarioResult r = scenario::run_scenario(*spec, seed++);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    if (!r.ok) {
      state.SkipWithError(r.summary().c_str());
      return;
    }
    ++local.iterations;
    local.wall_ms += wall_ms;
    local.sim_ms += static_cast<double>(r.sim_time) / kMsec;
    local.trace_events += static_cast<double>(r.trace_events);
    local.sched_events += static_cast<double>(r.sched_events);
    local.packets_sent += static_cast<double>(r.packets_sent);
    local.packets_delivered += static_cast<double>(r.packets_delivered);
    local.pool_acquired += static_cast<double>(r.pool_acquired);
    local.pool_reused += static_cast<double>(r.pool_reused);
  }
  ScenarioAgg& agg = metrics()[name];
  agg.iterations += local.iterations;
  agg.wall_ms += local.wall_ms;
  agg.sim_ms += local.sim_ms;
  agg.trace_events += local.trace_events;
  agg.sched_events += local.sched_events;
  agg.packets_sent += local.packets_sent;
  agg.packets_delivered += local.packets_delivered;
  agg.pool_acquired += local.pool_acquired;
  agg.pool_reused += local.pool_reused;
  const double it = static_cast<double>(state.iterations());
  state.counters["sim_ms"] = benchmark::Counter(local.sim_ms / it);
  state.counters["trace_events"] = benchmark::Counter(local.trace_events / it);
  state.counters["events_per_sec"] = benchmark::Counter(
      local.wall_ms > 0 ? local.sched_events / (local.wall_ms / 1e3) : 0);
  state.counters["packets_sent"] = benchmark::Counter(local.packets_sent / it);
  state.counters["pool_hit_pct"] = benchmark::Counter(
      local.pool_acquired > 0 ? 100.0 * local.pool_reused / local.pool_acquired
                              : 0);
}

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"benchmark\": \"scenarios\",\n  \"scenarios\": [\n");
  bool first = true;
  for (const auto& [name, a] : metrics()) {
    if (a.iterations == 0) continue;
    const double it = a.iterations;
    const double events_per_sec =
        a.wall_ms > 0 ? a.sched_events / (a.wall_ms / 1e3) : 0;
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"iterations\": %d, "
                 "\"wall_ms\": %.3f, \"sim_ms\": %.3f, "
                 "\"trace_events\": %.1f, \"sched_events\": %.1f, "
                 "\"events_per_sec\": %.1f, "
                 "\"packets_sent\": %.1f, \"packets_delivered\": %.1f, "
                 "\"pool_acquired\": %.1f, \"pool_reused\": %.1f}",
                 first ? "" : ",\n", name.c_str(), a.iterations,
                 a.wall_ms / it, a.sim_ms / it, a.trace_events / it,
                 a.sched_events / it, events_per_sec, a.packets_sent / it,
                 a.packets_delivered / it, a.pool_acquired / it,
                 a.pool_reused / it);
    first = false;
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void BM_ScenarioBootstrap(benchmark::State& state) {
  run_named(state, "bootstrap");
}
void BM_ScenarioTransientBlast(benchmark::State& state) {
  run_named(state, "transient-blast");
}
void BM_ScenarioMajoritySplit(benchmark::State& state) {
  run_named(state, "majority-split");
}
void BM_ScenarioPartitionHeal(benchmark::State& state) {
  run_named(state, "partition-heal");
}

BENCHMARK(BM_ScenarioBootstrap)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_ScenarioTransientBlast)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_ScenarioMajoritySplit)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_ScenarioPartitionHeal)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// --- Allocation micro-bench -------------------------------------------------

/// Steady-state Channel::send → delivery with a warmed pool must perform
/// exactly 0 heap allocations per packet: the payload buffer is pooled, the
/// scheduler event comes from the slab, and no closure is built. The bench
/// errors out (and the process exits nonzero) on any regression, so a new
/// allocation on the hot path fails CI loudly instead of just slowly.
void BM_ChannelSendAlloc(benchmark::State& state) {
  sim::Scheduler sched;
  net::ChannelConfig cfg;
  cfg.loss_probability = 0;
  cfg.duplicate_probability = 0;
  cfg.corrupt_probability = 0;
  cfg.capacity = 8;
  std::uint64_t delivered = 0;
  net::Channel ch(sched, Rng(1), cfg, 1, 2, [&](net::Packet& pkt) {
    benchmark::DoNotOptimize(pkt.payload.data());
    ++delivered;
  });
  auto send_one = [&](std::uint64_t tag) {
    wire::Writer w;
    w.u64(0x1122334455667788ULL);
    w.u64(tag);
    w.u32(7);
    ch.send(w.take());
    sched.run_for(5 * kMsec);  // drain: max_delay is 2ms
  };
  for (std::uint64_t i = 0; i < 64; ++i) send_one(i);  // warm pool + slab
  std::uint64_t packets = 0;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    send_one(packets);
    ++packets;
  }
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_packet"] = benchmark::Counter(
      packets > 0 ? static_cast<double>(allocs) / static_cast<double>(packets)
                  : 0);
  state.counters["delivered"] =
      benchmark::Counter(static_cast<double>(delivered));
  if (allocs != 0) {
    g_alloc_regression = true;
    state.SkipWithError("steady-state send→deliver allocated on the heap");
  }
}
BENCHMARK(BM_ChannelSendAlloc);

// --- Wire encode micro-benches ----------------------------------------------

/// The per-field append pattern of every protocol encoder; Arg(1) adds the
/// single up-front reserve() the hot paths now use.
void BM_WriterFieldAppend(benchmark::State& state) {
  const bool reserve = state.range(0) != 0;
  const wire::Bytes blob(24, 0xAB);  // a typical state-slot payload
  std::size_t bytes = 0;
  for (auto _ : state) {
    wire::Writer w;
    if (reserve) w.reserve(16 * (1 + 4 + 4 + blob.size()));
    for (int i = 0; i < 16; ++i) {
      w.u8(static_cast<std::uint8_t>(i));
      w.u32(static_cast<std::uint32_t>(i));
      w.bytes(blob);
    }
    bytes += w.data().size();
    benchmark::DoNotOptimize(w.data().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WriterFieldAppend)->Arg(0)->Arg(1);

/// End-to-end frame encode (bundle of state slots inside a data frame) —
/// the hottest serialization path: every token retransmission runs it.
void BM_FrameEncodeBundle(benchmark::State& state) {
  std::vector<dlink::BundleItem> items;
  for (std::uint8_t p = 0; p < 6; ++p) {
    items.push_back(dlink::BundleItem{p, true, wire::Bytes(32, p)});
  }
  dlink::Frame f;
  f.kind = dlink::FrameKind::kData;
  f.link_sender = 1;
  f.label = 3;
  std::size_t bytes = 0;
  for (auto _ : state) {
    f.payload = dlink::encode_bundle(items);
    const wire::Bytes raw = f.encode();
    bytes += raw.size();
    benchmark::DoNotOptimize(raw.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FrameEncodeBundle);

}  // namespace
}  // namespace ssr::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ssr::bench::write_json("BENCH_scenarios.json");
  if (ssr::bench::g_alloc_regression) {
    std::fprintf(stderr,
                 "FAIL: the zero-allocation hot-path assertion tripped\n");
    return 1;
  }
  return 0;
}
