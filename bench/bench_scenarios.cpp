// Scenario-engine bench: runs library scenarios end to end on the
// deterministic scheduler and reports virtual-time-to-completion plus the
// trace volume. This is the migration target for ad-hoc bench scripts: a
// new execution shape is a ScenarioSpec, not another hand-rolled driver.
//
// On exit the accumulated per-scenario metrics are written to
// BENCH_scenarios.json in the working directory (events/sec, packet
// counts) so CI and regression tooling can diff runs without scraping
// benchmark text output.
//
// The BM_WriterFieldAppend pair quantifies the wire::Writer::reserve()
// pre-allocation used on the hot encode paths (frames, bundles, UDP
// envelopes): Arg(0) grows the buffer per field, Arg(1) reserves once.
#include <benchmark/benchmark.h>

#include <time.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "dlink/token_link.hpp"
#include "label/label_store.hpp"
#include "net/channel.hpp"
#include "scenario/library.hpp"
#include "scenario/runner.hpp"
#include "scenario/sweep.hpp"
#include "scenario/trace.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

#if defined(__linux__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "net/udp_transport.hpp"
#include "wire/wire.hpp"
#endif

// --- Global allocation counter ----------------------------------------------
// Every operator new in the process bumps this counter; BM_ChannelSendAlloc
// samples it around the steady-state send→deliver loop to assert the packet
// hot path performs zero heap allocations. Counting is process-wide, which
// is exactly the point: any hidden allocation — closure, tombstone, payload
// copy, container growth — is caught no matter which layer snuck it in.

// Counting is disabled under ThreadSanitizer: TSan interposes on the
// allocator itself, so replacing global operator new both fights those
// interceptors and trips gcc's -Wmismatched-new-delete (malloc-backed new
// paired with free). The zero-allocation contract is enforced by the
// regular bench job; the TSan job is after races, not counts.
#if defined(__SANITIZE_THREAD__)
#define SSR_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SSR_TSAN_BUILD 1
#endif
#endif
#ifndef SSR_TSAN_BUILD
#define SSR_TSAN_BUILD 0
#endif

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

#if !SSR_TSAN_BUILD
void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}
#endif
}  // namespace

#if !SSR_TSAN_BUILD
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#endif  // !SSR_TSAN_BUILD

namespace ssr::bench {
namespace {

/// Set when an allocation assertion fails, so the process exits nonzero and
/// CI fails loudly instead of just printing a slower number.
bool g_alloc_regression = false;

struct ScenarioAgg {
  int iterations = 0;
  double wall_ms = 0;
  double sim_ms = 0;
  double trace_events = 0;
  double sched_events = 0;
  double packets_sent = 0;
  double packets_delivered = 0;
  double pool_acquired = 0;
  double pool_reused = 0;
  double ops_completed = 0;
  double op_p50_us = 0;
  double op_p99_us = 0;
};

std::map<std::string, ScenarioAgg>& metrics() {
  static std::map<std::string, ScenarioAgg> m;
  return m;
}

void run_named(benchmark::State& state, const char* name) {
  auto spec = scenario::find_scenario(name);
  if (!spec) {
    state.SkipWithError("unknown scenario");
    return;
  }
  // Per-invocation accumulator for the reported counters; the static map
  // only feeds write_json (it outlives repetitions, so dividing it by this
  // invocation's iteration count would inflate repeated runs).
  ScenarioAgg local;
  std::uint64_t seed = 9000;
  for (auto _ : state) {
    const auto wall_start = std::chrono::steady_clock::now();
    const scenario::ScenarioResult r = scenario::run_scenario(*spec, seed++);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    if (!r.ok) {
      state.SkipWithError(r.summary().c_str());
      return;
    }
    ++local.iterations;
    local.wall_ms += wall_ms;
    local.sim_ms += static_cast<double>(r.sim_time) / kMsec;
    local.trace_events += static_cast<double>(r.trace_events);
    local.sched_events += static_cast<double>(r.sched_events);
    local.packets_sent += static_cast<double>(r.packets_sent);
    local.packets_delivered += static_cast<double>(r.packets_delivered);
    local.pool_acquired += static_cast<double>(r.pool_acquired);
    local.pool_reused += static_cast<double>(r.pool_reused);
    local.ops_completed += static_cast<double>(r.ops_completed);
    local.op_p50_us += static_cast<double>(r.op_p50_us);
    local.op_p99_us += static_cast<double>(r.op_p99_us);
  }
  ScenarioAgg& agg = metrics()[name];
  agg.iterations += local.iterations;
  agg.wall_ms += local.wall_ms;
  agg.sim_ms += local.sim_ms;
  agg.trace_events += local.trace_events;
  agg.sched_events += local.sched_events;
  agg.packets_sent += local.packets_sent;
  agg.packets_delivered += local.packets_delivered;
  agg.pool_acquired += local.pool_acquired;
  agg.pool_reused += local.pool_reused;
  agg.ops_completed += local.ops_completed;
  agg.op_p50_us += local.op_p50_us;
  agg.op_p99_us += local.op_p99_us;
  const double it = static_cast<double>(state.iterations());
  state.counters["sim_ms"] = benchmark::Counter(local.sim_ms / it);
  state.counters["trace_events"] = benchmark::Counter(local.trace_events / it);
  state.counters["events_per_sec"] = benchmark::Counter(
      local.wall_ms > 0 ? local.sched_events / (local.wall_ms / 1e3) : 0);
  state.counters["packets_sent"] = benchmark::Counter(local.packets_sent / it);
  state.counters["pool_hit_pct"] = benchmark::Counter(
      local.pool_acquired > 0 ? 100.0 * local.pool_reused / local.pool_acquired
                              : 0);
  if (local.ops_completed > 0) {
    state.counters["op_p50_us"] = benchmark::Counter(local.op_p50_us / it);
    state.counters["op_p99_us"] = benchmark::Counter(local.op_p99_us / it);
  }
}

struct ShardedAgg {
  int iterations = 0;
  double wall_ms = 0;
  double agg_events = 0;   // scheduler events summed over every shard
  double max_cpu_sec = 0;  // slowest shard's thread CPU time, summed per iter
};

std::map<int, ShardedAgg>& sharded_metrics() {
  static std::map<int, ShardedAgg> m;
  return m;
}

struct SweepAgg {
  int iterations = 0;
  double wall_ms = 0;
  double runs = 0;         // (spec, seed) jobs completed
  double agg_events = 0;   // scheduler events summed over every job
  double max_cpu_sec = 0;  // slowest worker's thread CPU time, summed per iter
};

// Keyed by --jobs; jobs=1 is the serial baseline speedup_vs_1job divides by.
std::map<int, SweepAgg>& sweep_metrics() {
  static std::map<int, SweepAgg> m;
  return m;
}

#if defined(__linux__)
struct UdpBatchAgg {
  int iterations = 0;
  double datagrams = 0;           // kernel-accepted datagrams at the parent
  double packets_per_sec = 0;     // accepted datagrams/sec, summed per iter
  double dgrams_per_syscall = 0;  // parent sent / parent send_syscalls
};

// Keyed by ring depth; batch=1 is the unbatched baseline the speedup
// figure divides by.
std::map<int, UdpBatchAgg>& udp_batch_metrics() {
  static std::map<int, UdpBatchAgg> m;
  return m;
}
#endif

void write_json(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"benchmark\": \"scenarios\",\n  \"scenarios\": [\n");
  bool first = true;
  for (const auto& [name, a] : metrics()) {
    if (a.iterations == 0) continue;
    const double it = a.iterations;
    const double events_per_sec =
        a.wall_ms > 0 ? a.sched_events / (a.wall_ms / 1e3) : 0;
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"iterations\": %d, "
                 "\"wall_ms\": %.3f, \"sim_ms\": %.3f, "
                 "\"trace_events\": %.1f, \"sched_events\": %.1f, "
                 "\"events_per_sec\": %.1f, "
                 "\"packets_sent\": %.1f, \"packets_delivered\": %.1f, "
                 "\"pool_acquired\": %.1f, \"pool_reused\": %.1f, "
                 "\"ops_completed\": %.1f, "
                 "\"op_p50_us\": %.1f, \"op_p99_us\": %.1f}",
                 first ? "" : ",\n", name.c_str(), a.iterations,
                 a.wall_ms / it, a.sim_ms / it, a.trace_events / it,
                 a.sched_events / it, events_per_sec, a.packets_sent / it,
                 a.packets_delivered / it, a.pool_acquired / it,
                 a.pool_reused / it, a.ops_completed / it, a.op_p50_us / it,
                 a.op_p99_us / it);
    first = false;
  }
  std::fprintf(f, "\n  ]");
  if (!sharded_metrics().empty()) {
    // Aggregate capacity normalized by the slowest shard's CPU time (see
    // BM_ShardedThroughput); speedup_vs_1shard is the headline shared-
    // nothing scaling number the CI bench diff watches.
    double base = 0;
    if (auto it = sharded_metrics().find(1);
        it != sharded_metrics().end() && it->second.max_cpu_sec > 0) {
      base = it->second.agg_events / it->second.max_cpu_sec;
    }
    std::fprintf(f, ",\n  \"sharded_throughput\": [\n");
    bool first = true;
    for (const auto& [shards, a] : sharded_metrics()) {
      if (a.iterations == 0 || a.max_cpu_sec <= 0) continue;
      const double per_cpu = a.agg_events / a.max_cpu_sec;
      std::fprintf(f,
                   "%s    {\"shards\": %d, \"iterations\": %d, "
                   "\"wall_ms\": %.3f, \"agg_sched_events\": %.1f, "
                   "\"agg_events_per_cpu_sec\": %.1f, "
                   "\"speedup_vs_1shard\": %.3f}",
                   first ? "" : ",\n", shards, a.iterations,
                   a.wall_ms / a.iterations, a.agg_events / a.iterations,
                   per_cpu, base > 0 ? per_cpu / base : 0);
      first = false;
    }
    std::fprintf(f, "\n  ]");
  }
  if (!sweep_metrics().empty()) {
    // Parallel sweep engine (see BM_SweepThroughput): aggregate scheduler
    // events normalized by the slowest worker's CPU seconds, so the scaling
    // figure measures per-core capacity on any host. speedup_vs_1job is the
    // floor bench_compare.py --check-sweep-scaling enforces.
    double base = 0;
    if (auto it = sweep_metrics().find(1);
        it != sweep_metrics().end() && it->second.max_cpu_sec > 0) {
      base = it->second.agg_events / it->second.max_cpu_sec;
    }
    std::fprintf(f, ",\n  \"sweep\": [\n");
    bool first = true;
    for (const auto& [jobs, a] : sweep_metrics()) {
      if (a.iterations == 0 || a.max_cpu_sec <= 0) continue;
      const double per_cpu = a.agg_events / a.max_cpu_sec;
      std::fprintf(f,
                   "%s    {\"jobs\": %d, \"iterations\": %d, "
                   "\"wall_ms\": %.3f, \"runs\": %.1f, "
                   "\"agg_sched_events\": %.1f, "
                   "\"agg_events_per_cpu_sec\": %.1f, "
                   "\"speedup_vs_1job\": %.3f}",
                   first ? "" : ",\n", jobs, a.iterations,
                   a.wall_ms / a.iterations, a.runs / a.iterations,
                   a.agg_events / a.iterations, per_cpu,
                   base > 0 ? per_cpu / base : 0);
      first = false;
    }
    std::fprintf(f, "\n  ]");
  }
#if defined(__linux__)
  if (!udp_batch_metrics().empty()) {
    // Two-process loopback burst (see BM_UdpBatchThroughput). The floors
    // bench_compare.py enforces: the batched row's datagrams per send
    // syscall and its speedup over the batch=1 baseline.
    double base_pps = 0;
    if (auto it = udp_batch_metrics().find(1);
        it != udp_batch_metrics().end() && it->second.iterations > 0) {
      base_pps = it->second.packets_per_sec / it->second.iterations;
    }
    std::fprintf(f, ",\n  \"udp_batch\": [\n");
    bool first = true;
    for (const auto& [batch, a] : udp_batch_metrics()) {
      if (a.iterations == 0) continue;
      const double it = a.iterations;
      const double pps = a.packets_per_sec / it;
      std::fprintf(f,
                   "%s    {\"batch\": %d, \"iterations\": %d, "
                   "\"datagrams\": %.1f, \"packets_per_sec\": %.1f, "
                   "\"datagrams_per_send_syscall\": %.2f, "
                   "\"speedup_vs_batch1\": %.3f}",
                   first ? "" : ",\n", batch, a.iterations, a.datagrams / it,
                   pps, a.dgrams_per_syscall / it,
                   base_pps > 0 ? pps / base_pps : 0);
      first = false;
    }
    std::fprintf(f, "\n  ]");
  }
#endif
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

void BM_ScenarioBootstrap(benchmark::State& state) {
  run_named(state, "bootstrap");
}
void BM_ScenarioTransientBlast(benchmark::State& state) {
  run_named(state, "transient-blast");
}
void BM_ScenarioMajoritySplit(benchmark::State& state) {
  run_named(state, "majority-split");
}
void BM_ScenarioPartitionHeal(benchmark::State& state) {
  run_named(state, "partition-heal");
}

BENCHMARK(BM_ScenarioBootstrap)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_ScenarioTransientBlast)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_ScenarioMajoritySplit)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
BENCHMARK(BM_ScenarioPartitionHeal)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// --- Sharded throughput -----------------------------------------------------

double thread_cpu_sec() {
  timespec ts{};
  ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// K shards, one thread per shard, each running an identical
/// converge-then-increment script in its own fully independent World. The
/// sharded service shares nothing across shards — no lock, no common
/// scheduler, thread-local buffer pools — so aggregate capacity should
/// scale with the number of cores you give it.
///
/// This host may have a single core, so the headline metric is CPU-time
/// normalized: aggregate scheduler events divided by the *slowest* shard's
/// thread CPU seconds. That is the events/sec a K-core deployment would
/// sustain (each shard pinned to a core and gated by the slowest one) —
/// a capacity-per-core projection, not a wall-clock measurement; wall time
/// on an N-core host is reported separately and scales only up to N.
void BM_ShardedThroughput(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  scenario::ScenarioSpec spec;
  spec.name = "sharded-throughput";
  spec.initial_nodes = 3;
  spec.phases = {
      {"load",
       {scenario::Action::await_converged(90 * kSec),
        scenario::Action::increment_burst(16),
        scenario::Action::run_for(10 * kSec)}}};
  ShardedAgg local;
  std::uint64_t seed = 4200;
  // Harvest shared across the shard threads; the mutex (and clang's
  // -Wthread-safety on the SSR_GUARDED_BY field) enforces the discipline
  // that the TSan job verifies dynamically.
  struct ShardOutcome {
    double cpu_sec = 0;
    double events = 0;
    bool ok = false;
  };
  util::Mutex harvest_mu;
  std::vector<ShardOutcome> harvest SSR_GUARDED_BY(harvest_mu);
  for (auto _ : state) {
    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    {
      util::MutexLock lock(harvest_mu);
      harvest.clear();
      harvest.reserve(static_cast<std::size_t>(shards));
    }
    const std::uint64_t base_seed = seed++;
    threads.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
      threads.emplace_back([&, s] {
        const double c0 = thread_cpu_sec();
        const scenario::ScenarioResult r = scenario::run_scenario(
            spec, base_seed + 0x9E3779B97F4A7C15ULL *
                                  static_cast<std::uint64_t>(s + 1));
        ShardOutcome out;
        out.cpu_sec = thread_cpu_sec() - c0;
        out.events = static_cast<double>(r.sched_events);
        out.ok = r.ok;
        util::MutexLock lock(harvest_mu);
        harvest.push_back(out);
      });
    }
    for (std::thread& t : threads) t.join();
    util::MutexLock lock(harvest_mu);
    for (const ShardOutcome& out : harvest) {
      if (!out.ok) {
        state.SkipWithError("a shard's scenario failed");
        return;
      }
    }
    ++local.iterations;
    local.wall_ms += std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
    double iter_events = 0, iter_max_cpu = 0;
    for (const ShardOutcome& out : harvest) {
      iter_events += out.events;
      iter_max_cpu = std::max(iter_max_cpu, out.cpu_sec);
    }
    local.agg_events += iter_events;
    local.max_cpu_sec += iter_max_cpu;
  }
  ShardedAgg& agg = sharded_metrics()[shards];
  agg.iterations += local.iterations;
  agg.wall_ms += local.wall_ms;
  agg.agg_events += local.agg_events;
  agg.max_cpu_sec += local.max_cpu_sec;
  state.counters["agg_events_per_cpu_sec"] = benchmark::Counter(
      local.max_cpu_sec > 0 ? local.agg_events / local.max_cpu_sec : 0);
}
BENCHMARK(BM_ShardedThroughput)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(2);

// --- Parallel sweep throughput ----------------------------------------------

/// The sweep engine over one scenario × 16 seeds at Arg(0) worker threads.
/// Jobs are fully independent worlds, so aggregate capacity should scale
/// with cores; like BM_ShardedThroughput, the headline metric is CPU-time
/// normalized — aggregate scheduler events divided by the *slowest*
/// worker's thread CPU seconds (SweepSummary::max_worker_cpu_sec) — which
/// projects the events/sec an N-core host would sustain even when this
/// host has a single timesliced core. write_json derives speedup_vs_1job
/// from it; bench_compare.py --check-sweep-scaling holds the ≥2.0x floor
/// at 4 jobs.
void BM_SweepThroughput(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  auto spec = scenario::find_scenario("majority-split");
  if (!spec) {
    state.SkipWithError("unknown scenario");
    return;
  }
  constexpr std::uint64_t kFirstSeed = 100;
  constexpr std::uint64_t kSeeds = 16;
  SweepAgg local;
  for (auto _ : state) {
    scenario::SweepOptions opt;
    opt.jobs = jobs;
    scenario::SweepRunner runner(opt);
    runner.add_seed_range(*spec, kFirstSeed, kFirstSeed + kSeeds - 1);
    const scenario::SweepSummary s = runner.run();
    if (!s.ok) {
      state.SkipWithError("a sweep job failed");
      return;
    }
    if (s.max_worker_cpu_sec <= 0) {
      state.SkipWithError("no per-thread CPU clock on this platform");
      return;
    }
    ++local.iterations;
    local.wall_ms += s.wall_ms;
    local.runs += static_cast<double>(s.results.size());
    for (const scenario::ScenarioResult& r : s.results) {
      local.agg_events += static_cast<double>(r.sched_events);
    }
    local.max_cpu_sec += s.max_worker_cpu_sec;
  }
  SweepAgg& agg = sweep_metrics()[static_cast<int>(jobs)];
  agg.iterations += local.iterations;
  agg.wall_ms += local.wall_ms;
  agg.runs += local.runs;
  agg.agg_events += local.agg_events;
  agg.max_cpu_sec += local.max_cpu_sec;
  state.counters["agg_events_per_cpu_sec"] = benchmark::Counter(
      local.max_cpu_sec > 0 ? local.agg_events / local.max_cpu_sec : 0);
}
BENCHMARK(BM_SweepThroughput)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(2);

// --- UDP syscall batching ----------------------------------------------------

#if defined(__linux__)

/// Child half of BM_UdpBatchThroughput: a real second process with its own
/// UdpTransport that learns nothing statically — it announces itself with an
/// empty hello toward the parent's port, then drains the parent's burst
/// traffic, until the 0xFF stop marker (or a watchdog deadline) ends it.
[[noreturn]] void udp_drain_child(std::uint16_t parent_port,
                                  std::size_t batch) {
  net::UdpTransportConfig cfg;
  cfg.self = 2;
  cfg.peers[2] = net::UdpEndpoint{"127.0.0.1", 0};
  cfg.batch = batch;
  net::UdpTransport t(cfg);
  t.set_peer(1, net::UdpEndpoint{"127.0.0.1", parent_port});
  bool done = false;
  t.attach(2, [&](const net::Packet& p) {
    if (p.payload.size() == 1 && p.payload[0] == 0xFF) done = true;
  });
  const SimTime deadline = t.now() + 30 * kSec;
  SimTime next_hello = 0;
  while (!done && t.now() < deadline) {
    if (t.stats().received == 0 && t.now() >= next_hello) {
      t.send(2, 1, wire::Bytes{});
      t.flush();
      next_hello = t.now() + 50 * kMsec;
    }
    t.poll_once(5 * kMsec);
  }
  ::_exit(0);
}

/// Two-process loopback burst: the parent fires kBursts windows of kWindow
/// data datagrams at a forked drain child — the protocol's own traffic
/// shape, a tick fanning a frame to every peer, scaled up. Each window is
/// staged back-to-back in the send ring, so at batch=16 a 32-datagram
/// window is exactly two sendmmsg calls; at batch=1 it degrades to one
/// syscall per datagram (the A/B baseline). Reported: kernel-accepted
/// datagrams/sec at the parent and parent-side datagrams per send syscall;
/// write_json derives speedup_vs_batch1. bench_compare.py holds the floors
/// (≥8 datagrams/syscall batched, ≥1.5x the unbatched rate).
void BM_UdpBatchThroughput(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  constexpr int kWindow = 32;
  constexpr int kBursts = 400;
  constexpr std::size_t kPayload = 32;
  UdpBatchAgg local;
  for (auto _ : state) {
    net::UdpTransportConfig cfg;
    cfg.self = 1;
    cfg.peers[1] = net::UdpEndpoint{"127.0.0.1", 0};
    cfg.batch = batch;
    net::UdpTransport parent(cfg);
    parent.attach(1, [](const net::Packet&) {});
    const pid_t pid = ::fork();
    if (pid == 0) udp_drain_child(parent.local_port(), batch);
    if (pid < 0) {
      state.SkipWithError("fork failed");
      return;
    }
    // The child's hello teaches the parent the route.
    const SimTime hello_deadline = parent.now() + 10 * kSec;
    while (!parent.has_peer(2) && parent.now() < hello_deadline) {
      parent.poll_once(5 * kMsec);
    }
    bool ok = parent.has_peer(2);
    double pps = 0, dps = 0;
    if (ok) {
      const std::uint64_t sent0 = parent.stats().sent;
      const std::uint64_t sys0 = parent.stats().send_syscalls;
      int staged = 0;
      const auto wall_start = std::chrono::steady_clock::now();
      for (int burst = 0; burst < kBursts; ++burst) {
        for (int i = 0; i < kWindow; ++i) {
          wire::Bytes b = wire::BufferPool::local().acquire();
          b.assign(kPayload, static_cast<std::uint8_t>(staged));
          parent.send(1, 2, std::move(b));
          ++staged;
        }
        parent.flush();  // window boundary — the tick-boundary hook
      }
      const double wall_sec =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();
      const std::uint64_t dsent = parent.stats().sent - sent0;
      const std::uint64_t dsys = parent.stats().send_syscalls - sys0;
      pps = wall_sec > 0 ? static_cast<double>(dsent) / wall_sec : 0;
      dps = dsys > 0 ? static_cast<double>(dsent) / static_cast<double>(dsys)
                     : 0;
      local.datagrams += static_cast<double>(dsent);
      ok = dsent > 0 && pps > 0;
    }
    // Stop the child; keep nudging until it exits, then hard-kill at the
    // deadline so a wedged child can never hang the bench.
    const auto kill_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(3);
    int status = 0;
    for (;;) {
      parent.send(1, 2, wire::Bytes{0xFF});
      parent.flush();
      if (::waitpid(pid, &status, WNOHANG) != 0) break;
      if (std::chrono::steady_clock::now() > kill_deadline) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, &status, 0);
        break;
      }
      parent.poll_once(1 * kMsec);
    }
    if (!ok) {
      state.SkipWithError("loopback burst never completed");
      return;
    }
    ++local.iterations;
    local.packets_per_sec += pps;
    local.dgrams_per_syscall += dps;
  }
  UdpBatchAgg& agg = udp_batch_metrics()[static_cast<int>(batch)];
  agg.iterations += local.iterations;
  agg.datagrams += local.datagrams;
  agg.packets_per_sec += local.packets_per_sec;
  agg.dgrams_per_syscall += local.dgrams_per_syscall;
  if (local.iterations > 0) {
    state.counters["packets_per_sec"] =
        benchmark::Counter(local.packets_per_sec / local.iterations);
    state.counters["dgrams_per_send_syscall"] =
        benchmark::Counter(local.dgrams_per_syscall / local.iterations);
  }
}
BENCHMARK(BM_UdpBatchThroughput)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(16)
    ->Arg(32)
    ->Iterations(2);

#endif  // defined(__linux__)

// --- Allocation micro-bench -------------------------------------------------

/// Steady-state Channel::send → delivery with a warmed pool must perform
/// exactly 0 heap allocations per packet: the payload buffer is pooled, the
/// scheduler event comes from the slab, and no closure is built. The bench
/// errors out (and the process exits nonzero) on any regression, so a new
/// allocation on the hot path fails CI loudly instead of just slowly.
void BM_ChannelSendAlloc(benchmark::State& state) {
  sim::Scheduler sched;
  net::ChannelConfig cfg;
  cfg.loss_probability = 0;
  cfg.duplicate_probability = 0;
  cfg.corrupt_probability = 0;
  cfg.capacity = 8;
  std::uint64_t delivered = 0;
  net::Channel ch(sched, Rng(1), cfg, 1, 2, [&](net::Packet& pkt) {
    benchmark::DoNotOptimize(pkt.payload.data());
    ++delivered;
  });
  auto send_one = [&](std::uint64_t tag) {
    wire::Writer w;
    w.u64(0x1122334455667788ULL);
    w.u64(tag);
    w.u32(7);
    ch.send(w.take());
    sched.run_for(5 * kMsec);  // drain: max_delay is 2ms
  };
  for (std::uint64_t i = 0; i < 64; ++i) send_one(i);  // warm pool + slab
  std::uint64_t packets = 0;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    send_one(packets);
    ++packets;
  }
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_packet"] = benchmark::Counter(
      packets > 0 ? static_cast<double>(allocs) / static_cast<double>(packets)
                  : 0);
  state.counters["delivered"] =
      benchmark::Counter(static_cast<double>(delivered));
  if (allocs != 0) {
    g_alloc_regression = true;
    state.SkipWithError("steady-state send→deliver allocated on the heap");
  }
}
BENCHMARK(BM_ChannelSendAlloc);

/// Steady-state PairStore::maintain(): after the store has adopted a stable
/// maximal label and every peer's max entry sits merged in its creator's
/// queue, a receipt→maintain round must not touch the heap — the dedupe
/// pass runs in place, duplicate merges assign into existing storage, and
/// the adoption step reuses a scratch pair. Same contract (and the same
/// loud CI failure) as BM_ChannelSendAlloc.
void BM_PairStoreMaintainAlloc(benchmark::State& state) {
  using label::Label;
  using label::LabelPair;
  label::LabelStore store(1, label::StoreConfig{}, Rng(42));
  store.rebuild(IdSet{1, 2, 3});
  // Stable legit labels from both peers; creator 3's label is the maximal
  // one the store keeps adopting.
  const LabelPair from2 = LabelPair::of(Label{2, 7, {1, 2, 3}});
  const LabelPair from3 = LabelPair::of(Label{3, 9, {4, 5, 6}});
  const LabelPair none = LabelPair::null();
  auto round = [&] {
    store.receipt(from2, none, 2);
    store.receipt(from3, none, 3);
    store.refresh();
  };
  for (int i = 0; i < 64; ++i) round();  // converge + warm every container
  std::uint64_t rounds = 0;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    round();
    ++rounds;
  }
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  state.counters["allocs_per_round"] = benchmark::Counter(
      rounds > 0 ? static_cast<double>(allocs) / static_cast<double>(rounds)
                 : 0);
  state.counters["labels_created"] =
      benchmark::Counter(static_cast<double>(store.stats().created));
  if (allocs != 0) {
    g_alloc_regression = true;
    state.SkipWithError("steady-state maintain() allocated on the heap");
  }
}
BENCHMARK(BM_PairStoreMaintainAlloc);

/// Steady-state TraceRecorder::record() with warmed ring segments must be a
/// pure slot write: zero heap allocations per event. The recorder is warmed
/// past several segment boundaries, clear()-rewound (which retains the
/// segments), and then driven through record/clear laps that stay within
/// the warmed high-water mark — the exact lifecycle of a sweep worker
/// recycling its recorder between jobs. Same loud CI failure on regression
/// as the other counting-new benches.
void BM_TraceRecordAlloc(benchmark::State& state) {
  scenario::TraceRecorder trace;
  const std::size_t warm_events = 3 * scenario::TraceRecorder::kSegmentEvents;
  for (std::size_t i = 0; i < warm_events; ++i) {
    trace.record(scenario::TraceKind::kPhaseStart, 1, i, i);
  }
  trace.clear();
  std::uint64_t events = 0;
  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  for (auto _ : state) {
    if (trace.size() == warm_events) trace.clear();  // ring lap boundary
    trace.record(scenario::TraceKind::kVsDeliver, 2, events, events * 31);
    ++events;
  }
  const std::uint64_t allocs =
      g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
  benchmark::DoNotOptimize(trace.hash());
  state.counters["allocs_per_event"] = benchmark::Counter(
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events)
                 : 0);
  if (allocs != 0) {
    g_alloc_regression = true;
    state.SkipWithError("steady-state trace recording allocated on the heap");
  }
}
BENCHMARK(BM_TraceRecordAlloc);

// --- Wire encode micro-benches ----------------------------------------------

/// The per-field append pattern of every protocol encoder; Arg(1) adds the
/// single up-front reserve() the hot paths now use.
void BM_WriterFieldAppend(benchmark::State& state) {
  const bool reserve = state.range(0) != 0;
  const wire::Bytes blob(24, 0xAB);  // a typical state-slot payload
  std::size_t bytes = 0;
  for (auto _ : state) {
    wire::Writer w;
    if (reserve) w.reserve(16 * (1 + 4 + 4 + blob.size()));
    for (int i = 0; i < 16; ++i) {
      w.u8(static_cast<std::uint8_t>(i));
      w.u32(static_cast<std::uint32_t>(i));
      w.bytes(blob);
    }
    bytes += w.data().size();
    benchmark::DoNotOptimize(w.data().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WriterFieldAppend)->Arg(0)->Arg(1);

/// End-to-end frame encode (bundle of state slots inside a data frame) —
/// the hottest serialization path: every token retransmission runs it.
void BM_FrameEncodeBundle(benchmark::State& state) {
  std::vector<dlink::BundleItem> items;
  for (std::uint8_t p = 0; p < 6; ++p) {
    items.push_back(dlink::BundleItem{p, true, wire::Bytes(32, p)});
  }
  dlink::Frame f;
  f.kind = dlink::FrameKind::kData;
  f.link_sender = 1;
  f.label = 3;
  std::size_t bytes = 0;
  for (auto _ : state) {
    f.payload = dlink::encode_bundle(items);
    const wire::Bytes raw = f.encode();
    bytes += raw.size();
    benchmark::DoNotOptimize(raw.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FrameEncodeBundle);

}  // namespace
}  // namespace ssr::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ssr::bench::write_json("BENCH_scenarios.json");
  if (ssr::bench::g_alloc_regression) {
    std::fprintf(stderr,
                 "FAIL: the zero-allocation hot-path assertion tripped\n");
    return 1;
  }
  return 0;
}
