#pragma once

// Shared helpers for the experiment benches (DESIGN.md §4). Every bench
// drives full-stack simulations and reports *virtual-time* metrics through
// benchmark counters; wall time only reflects simulator speed.

#include <benchmark/benchmark.h>

#include "harness/fault_injector.hpp"
#include "harness/monitors.hpp"
#include "harness/world.hpp"

namespace ssr::bench {

inline harness::WorldConfig world_config(std::uint64_t seed, bool vs = false) {
  harness::WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = vs;
  return cfg;
}

/// Boots `n` nodes and converges; aborts the bench on failure.
inline void boot(harness::World& w, std::size_t n, benchmark::State& state) {
  for (NodeId id = 1; id <= n; ++id) w.add_node(id);
  if (!w.run_until_converged(300 * kSec)) {
    state.SkipWithError("bootstrap did not converge");
  }
}

inline double to_ms(SimTime t) { return static_cast<double>(t) / kMsec; }

/// Runs the world until `pred` holds; returns virtual time spent (ms) or
/// -1 on timeout.
template <class Pred>
double run_until(harness::World& w, SimTime timeout, Pred pred) {
  const SimTime start = w.scheduler().now();
  const SimTime deadline = start + timeout;
  while (w.scheduler().now() < deadline) {
    if (pred()) return to_ms(w.scheduler().now() - start);
    w.run_for(10 * kMsec);
  }
  return pred() ? to_ms(w.scheduler().now() - start) : -1.0;
}

}  // namespace ssr::bench
