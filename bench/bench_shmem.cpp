// E9 — §4.3 shared-memory emulation: MWMR register operation latency vs
// configuration size, and behaviour across a delicate reconfiguration
// (operations abort during the change, the value survives, service resumes).
#include "bench_common.hpp"

namespace ssr::bench {
namespace {

bool write_sync(harness::World& w, NodeId id, const std::string& name,
                const std::string& value, double* ms_out = nullptr) {
  bool done = false, ok = false;
  const SimTime start = w.scheduler().now();
  if (!w.node(id).registers().write(name,
                                    wire::Bytes(value.begin(), value.end()),
                                    [&](bool success, counter::Counter) {
                                      ok = success;
                                      done = true;
                                    })) {
    return false;
  }
  const SimTime deadline = w.scheduler().now() + 60 * kSec;
  while (!done && w.scheduler().now() < deadline) w.run_for(kMsec);
  if (ms_out && done && ok) *ms_out = to_ms(w.scheduler().now() - start);
  return done && ok;
}

bool read_sync(harness::World& w, NodeId id, const std::string& name,
               std::string* value_out, double* ms_out = nullptr) {
  bool done = false, ok = false;
  const SimTime start = w.scheduler().now();
  if (!w.node(id).registers().read(
          name, [&](bool success, const wire::Bytes& v, counter::Counter) {
            ok = success;
            if (value_out) value_out->assign(v.begin(), v.end());
            done = true;
          })) {
    return false;
  }
  const SimTime deadline = w.scheduler().now() + 60 * kSec;
  while (!done && w.scheduler().now() < deadline) w.run_for(kMsec);
  if (ms_out && done && ok) *ms_out = to_ms(w.scheduler().now() - start);
  return done && ok;
}

void BM_RegisterOps(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double write_ms = 0, read_ms = 0;
  double writes = 0, reads = 0, aborts = 0;
  std::uint64_t seed = 6100;
  for (auto _ : state) {
    harness::World w(world_config(seed++));
    boot(w, n, state);
    w.run_for(120 * kSec);
    for (int i = 0; i < 10; ++i) {
      const NodeId who = 1 + (i % n);
      double ms = 0;
      if (write_sync(w, who, "r" + std::to_string(i % 3),
                     std::to_string(i), &ms)) {
        write_ms += ms;
        writes += 1;
      } else {
        aborts += 1;
        w.run_for(2 * kSec);
      }
    }
    for (int i = 0; i < 10; ++i) {
      const NodeId who = 1 + ((i + 1) % n);
      double ms = 0;
      std::string v;
      if (read_sync(w, who, "r" + std::to_string(i % 3), &v, &ms)) {
        read_ms += ms;
        reads += 1;
      } else {
        aborts += 1;
        w.run_for(2 * kSec);
      }
    }
  }
  state.counters["write_sim_ms"] =
      benchmark::Counter(writes > 0 ? write_ms / writes : -1);
  state.counters["read_sim_ms"] =
      benchmark::Counter(reads > 0 ? read_ms / reads : -1);
  state.counters["aborts"] = benchmark::Counter(aborts);
}

BENCHMARK(BM_RegisterOps)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->ArgName("N")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// Register survival across a delicate reconfiguration; operations issued
// during the replacement abort (the emulation is suspending — paper §4.3),
// and the value is intact afterwards.
void BM_RegisterAcrossReconfig(benchmark::State& state) {
  double recover_ms = 0;
  double lost = 0;
  std::uint64_t seed = 6500;
  for (auto _ : state) {
    harness::World w(world_config(seed++));
    boot(w, 4, state);
    w.run_for(120 * kSec);
    if (!write_sync(w, 1, "durable", "payload")) {
      state.SkipWithError("initial write failed");
      return;
    }
    w.node(1).recsa().estab(IdSet{1, 2, 3});
    const SimTime start = w.scheduler().now();
    if (run_until(w, 900 * kSec, [&] {
          auto c = w.common_config();
          return c && *c == IdSet{1, 2, 3};
        }) < 0) {
      state.SkipWithError("reconfiguration did not complete");
      return;
    }
    // First successful read after the reconfiguration.
    std::string v;
    const SimTime deadline = w.scheduler().now() + 300 * kSec;
    bool ok = false;
    while (!ok && w.scheduler().now() < deadline) {
      ok = read_sync(w, 2, "durable", &v);
      if (!ok) w.run_for(5 * kSec);
    }
    if (!ok) {
      state.SkipWithError("service did not resume");
      return;
    }
    recover_ms += to_ms(w.scheduler().now() - start);
    if (v != "payload") lost += 1;
  }
  state.counters["resume_sim_ms"] =
      benchmark::Counter(recover_ms / static_cast<double>(state.iterations()));
  state.counters["values_lost"] = benchmark::Counter(lost);
}

BENCHMARK(BM_RegisterAcrossReconfig)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace ssr::bench

BENCHMARK_MAIN();
