// E3 — Theorem 3.16 (closure): legal executions never change the
// configuration spontaneously, and the latency of an explicit delicate
// replacement scales with the barrier round-trips, not with brute force.
#include "bench_common.hpp"

namespace ssr::bench {
namespace {

// Spurious configuration changes over a long legal execution (expect 0).
void BM_ClosureQuiescence(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double spurious = 0;
  std::uint64_t seed = 1500;
  for (auto _ : state) {
    harness::World w(world_config(seed++));
    boot(w, n, state);
    harness::ConfigHistoryMonitor monitor;
    monitor.attach(w);
    w.run_for(300 * kSec);
    spurious += static_cast<double>(monitor.events().size());
    if (!w.converged()) {
      state.SkipWithError("left the legal execution");
      return;
    }
  }
  state.counters["spurious_changes"] =
      benchmark::Counter(spurious / static_cast<double>(state.iterations()));
}

BENCHMARK(BM_ClosureQuiescence)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->ArgName("N")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// Latency of one explicit delicate replacement vs system size.
void BM_DelicateLatency(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double total_ms = 0;
  std::uint64_t seed = 1700;
  for (auto _ : state) {
    harness::World w(world_config(seed++));
    boot(w, n, state);
    IdSet target;
    for (NodeId id = 1; id < n; ++id) target.insert(id);
    if (!w.node(1).recsa().estab(target)) {
      state.SkipWithError("estab rejected");
      return;
    }
    const double ms = run_until(w, 600 * kSec, [&] {
      auto c = w.common_config();
      return c && *c == target;
    });
    if (ms < 0) {
      state.SkipWithError("replacement did not complete");
      return;
    }
    total_ms += ms;
  }
  state.counters["replace_sim_ms"] =
      benchmark::Counter(total_ms / static_cast<double>(state.iterations()));
}

BENCHMARK(BM_DelicateLatency)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->ArgName("N")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace ssr::bench

BENCHMARK_MAIN();
