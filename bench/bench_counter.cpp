// E6 — Theorem 4.6: the counter scheme provides a monotonically increasing
// counter. Measured: increment latency and throughput vs configuration
// size, order violations across completed operations (must be 0), and the
// cost of an epoch rollover (exhaustion → fresh label).
#include "bench_common.hpp"

namespace ssr::bench {
namespace {

std::optional<counter::Counter> increment_once(harness::World& w, NodeId id) {
  std::optional<counter::Counter> result;
  bool done = false;
  if (!w.node(id).increment().begin([&](std::optional<counter::Counter> c) {
        result = c;
        done = true;
      })) {
    return std::nullopt;
  }
  const SimTime deadline = w.scheduler().now() + 60 * kSec;
  while (!done && w.scheduler().now() < deadline) w.run_for(kMsec);
  return result;
}

void BM_IncrementLatency(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double total_ms = 0;
  double completed = 0;
  double violations = 0;
  std::uint64_t seed = 3300;
  for (auto _ : state) {
    harness::World w(world_config(seed++));
    boot(w, n, state);
    w.run_for(120 * kSec);  // label convergence
    harness::CounterOrderMonitor monitor;
    const int ops = 20;
    for (int i = 0; i < ops; ++i) {
      const NodeId who = 1 + (i % n);
      const SimTime started = w.scheduler().now();
      auto c = increment_once(w, who);
      if (c) {
        monitor.record(started, w.scheduler().now(), *c);
        total_ms += to_ms(w.scheduler().now() - started);
        completed += 1;
      } else {
        w.run_for(2 * kSec);
      }
    }
    violations += static_cast<double>(monitor.violations());
  }
  state.counters["increment_sim_ms"] =
      benchmark::Counter(completed > 0 ? total_ms / completed : -1);
  state.counters["completed"] =
      benchmark::Counter(completed / static_cast<double>(state.iterations()));
  state.counters["order_violations"] = benchmark::Counter(violations);
}

BENCHMARK(BM_IncrementLatency)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->ArgName("N")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// Epoch rollover: tiny exhaustion bound forces frequent fresh labels; the
// dispensed sequence must stay strictly increasing and the extra latency of
// rollover increments is reported.
void BM_EpochRollover(benchmark::State& state) {
  const std::uint64_t bound = static_cast<std::uint64_t>(state.range(0));
  double violations = 0;
  double rollovers = 0;
  double completed = 0;
  std::uint64_t seed = 3700;
  for (auto _ : state) {
    harness::WorldConfig cfg = world_config(seed++);
    cfg.node.counter.exhaust_bound = bound;
    harness::World w(cfg);
    boot(w, 3, state);
    w.run_for(120 * kSec);
    std::optional<counter::Counter> prev;
    for (int i = 0; i < 24; ++i) {
      auto c = increment_once(w, 1 + (i % 3));
      if (!c) {
        w.run_for(2 * kSec);
        continue;
      }
      completed += 1;
      if (prev) {
        if (!counter::Counter::ct_less(*prev, *c)) violations += 1;
        if (!(prev->lbl == c->lbl)) rollovers += 1;
      }
      prev = c;
    }
  }
  state.counters["completed"] =
      benchmark::Counter(completed / static_cast<double>(state.iterations()));
  state.counters["epoch_rollovers"] =
      benchmark::Counter(rollovers / static_cast<double>(state.iterations()));
  state.counters["order_violations"] = benchmark::Counter(violations);
}

BENCHMARK(BM_EpochRollover)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->ArgName("bound")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace ssr::bench

BENCHMARK_MAIN();
