// E1 — Paper Fig. 2: the configuration replacement automaton.
//
// Reproduces the figure behaviorally: k concurrent estab() proposals are
// selected down to a single one (lex max), installed through the phased
// barrier (1 → 2 → 0), and the system returns to monitoring. Reported
// series: replacement latency, phase transitions on the proposer, number of
// brute-force resets (must stay 0 — delicate replacement never degrades).
#include "bench_common.hpp"

namespace ssr::bench {
namespace {

void BM_DelicateReplacement(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t proposers = static_cast<std::size_t>(state.range(1));
  double total_ms = 0;
  double transitions = 0;
  double resets = 0;
  std::uint64_t seed = 500;
  for (auto _ : state) {
    harness::World w(world_config(seed++));
    boot(w, n, state);
    std::uint64_t resets_before = 0;
    for (NodeId id = 1; id <= n; ++id) {
      resets_before += w.node(id).recsa().stats().resets_started;
    }
    // k concurrent proposals for different subsets; lexical max must win.
    for (std::size_t p = 0; p < proposers; ++p) {
      IdSet proposal;
      for (NodeId id = 1; id <= n; ++id) {
        if (id != static_cast<NodeId>(n - p)) proposal.insert(id);
      }
      w.node(static_cast<NodeId>(p + 1)).recsa().estab(proposal);
    }
    const double ms =
        run_until(w, 300 * kSec, [&] { return w.converged(); });
    if (ms < 0) {
      state.SkipWithError("replacement did not converge");
      return;
    }
    total_ms += ms;
    for (NodeId id = 1; id <= n; ++id) {
      transitions += static_cast<double>(
          w.node(id).recsa().stats().phase_transitions);
      resets += static_cast<double>(w.node(id).recsa().stats().resets_started);
    }
    resets -= static_cast<double>(resets_before);
  }
  state.counters["replace_sim_ms"] =
      benchmark::Counter(total_ms / static_cast<double>(state.iterations()));
  state.counters["phase_transitions"] =
      benchmark::Counter(transitions / static_cast<double>(state.iterations()));
  state.counters["brute_resets"] =
      benchmark::Counter(resets / static_cast<double>(state.iterations()));
}

BENCHMARK(BM_DelicateReplacement)
    ->ArgsProduct({{4, 6, 8}, {1, 2, 3}})
    ->ArgNames({"N", "proposers"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace ssr::bench

BENCHMARK_MAIN();
