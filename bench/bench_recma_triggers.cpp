// E4 — Lemma 3.18: the number of reconfiguration triggerings caused by
// stale recMA state is bounded by O(N²·cap). We plant the worst-case stale
// flags (noMaj = needReconf = true for every entry at every node) plus
// corrupted failure-detector counts, count the estab() calls until the
// system quiesces, and compare with the analytical bound.
#include "bench_common.hpp"

namespace ssr::bench {
namespace {

std::uint64_t total_triggers(harness::World& w) {
  std::uint64_t t = 0;
  for (NodeId id : w.alive()) {
    const auto& s = w.node(id).recma().stats();
    t += s.majority_loss_triggers + s.eval_conf_triggers;
  }
  return t;
}

void BM_StaleFlagTriggers(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t cap = static_cast<std::size_t>(state.range(1));
  double triggers = 0;
  std::uint64_t seed = 2100;
  for (auto _ : state) {
    harness::WorldConfig cfg = world_config(seed++);
    cfg.channel.capacity = cap;
    cfg.node.mux.link.ack_threshold = 2 * cap + 1;
    cfg.node.mux.link.clean_threshold = 2 * cap + 1;
    harness::World w(cfg);
    boot(w, n, state);
    const std::uint64_t before = total_triggers(w);
    harness::FaultInjector fi(w, seed);
    for (NodeId id = 1; id <= n; ++id) {
      fi.plant_recma_flags(id, true, true);
      fi.corrupt_fd(id);
    }
    w.run_for(200 * kSec);
    if (run_until(w, 400 * kSec, [&] { return w.converged(); }) < 0) {
      state.SkipWithError("did not restabilize");
      return;
    }
    triggers += static_cast<double>(total_triggers(w) - before);
  }
  const double bound = static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(cap);
  state.counters["stale_triggers"] =
      benchmark::Counter(triggers / static_cast<double>(state.iterations()));
  state.counters["paper_bound_N2cap"] = benchmark::Counter(bound);
}

BENCHMARK(BM_StaleFlagTriggers)
    ->ArgsProduct({{3, 5, 7}, {2, 4, 8}})
    ->ArgNames({"N", "cap"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace ssr::bench

BENCHMARK_MAIN();
