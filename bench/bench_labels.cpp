// E5 — Theorem 4.4: label creations before a global maximal label is
// established. From an arbitrary (corrupted) starting state the bound is
// O(N(N²+m)); after a reconfiguration, the rebuilt (emptied) structures
// bound creations by O(N²). The bench reports both measured counts next to
// the analytical bounds — the *shape* to check is the large gap between
// the two cases.
#include "bench_common.hpp"

namespace ssr::bench {
namespace {

bool labels_agree(harness::World& w) {
  std::optional<label::Label> common;
  auto cfg = w.common_config();
  if (!cfg) return false;
  for (NodeId id : *cfg) {
    if (!w.alive().contains(id)) continue;
    auto& lab = w.node(id).labeling();
    if (!lab.member() || !lab.local_max().legit()) return false;
    if (!common) {
      common = lab.local_max().main();
    } else if (!(*common == lab.local_max().main())) {
      return false;
    }
  }
  return common.has_value();
}

std::uint64_t total_creations(harness::World& w) {
  std::uint64_t t = 0;
  for (NodeId id : w.alive()) {
    t += w.node(id).labeling().store().stats().created;
  }
  return t;
}

void BM_LabelCreationsArbitraryStart(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double creations = 0;
  std::uint64_t seed = 2500;
  for (auto _ : state) {
    harness::World w(world_config(seed++));
    boot(w, n, state);
    if (run_until(w, 300 * kSec, [&] { return labels_agree(w); }) < 0) {
      state.SkipWithError("labels did not converge");
      return;
    }
    // Corrupt every store with arbitrary labels by every member.
    Rng rng(seed * 17);
    const std::uint64_t before = total_creations(w);
    for (NodeId id = 1; id <= n; ++id) {
      auto& store = w.node(id).labeling().store();
      for (NodeId j = 1; j <= n; ++j) {
        label::Label junk = label::Label::next_label(j, std::vector<label::Label>{}, rng);
        store.inject_max(j, label::LabelPair::of(junk));
        store.inject_stored(j, label::LabelPair::of(junk));
      }
    }
    if (run_until(w, 600 * kSec, [&] { return labels_agree(w); }) < 0) {
      state.SkipWithError("labels did not reconverge");
      return;
    }
    creations += static_cast<double>(total_creations(w) - before);
  }
  const double m = 6.0;  // channel capacity in label pairs (cap·2 links)
  state.counters["creations"] =
      benchmark::Counter(creations / static_cast<double>(state.iterations()));
  state.counters["paper_bound_N(N2+m)"] = benchmark::Counter(
      static_cast<double>(n) * (static_cast<double>(n * n) + m));
}

BENCHMARK(BM_LabelCreationsArbitraryStart)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->ArgName("N")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_LabelCreationsAfterReconfig(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double creations = 0;
  std::uint64_t seed = 2900;
  for (auto _ : state) {
    harness::World w(world_config(seed++));
    boot(w, n, state);
    if (run_until(w, 300 * kSec, [&] { return labels_agree(w); }) < 0) {
      state.SkipWithError("labels did not converge");
      return;
    }
    const std::uint64_t before = total_creations(w);
    IdSet target;
    for (NodeId id = 1; id < n; ++id) target.insert(id);
    w.node(1).recsa().estab(target);
    if (run_until(w, 600 * kSec, [&] {
          auto c = w.common_config();
          return c && *c == target && labels_agree(w);
        }) < 0) {
      state.SkipWithError("post-reconfig labels did not converge");
      return;
    }
    creations += static_cast<double>(total_creations(w) - before);
  }
  state.counters["creations"] =
      benchmark::Counter(creations / static_cast<double>(state.iterations()));
  state.counters["paper_bound_N2"] =
      benchmark::Counter(static_cast<double>(n) * static_cast<double>(n));
}

BENCHMARK(BM_LabelCreationsAfterReconfig)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->ArgName("N")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace ssr::bench

BENCHMARK_MAIN();
