// E10 — ablation studies for the design choices documented in DESIGN.md §3:
//  (a) the one-phase-ahead barrier relaxation (deviation #4) — disabling it
//      restores the paper's literal unison tests, which under the coalescing
//      token link degrade delicate replacements into brute-force resets;
//  (b) the snap-stabilizing link cleaning (strict_clean) — disabling it lets
//      freshly booted processors consume stale channel packets;
//  (c) the failure detector's Θ — the accuracy/latency trade-off for crash
//      detection driving reconfiguration speed.
#include "bench_common.hpp"

namespace ssr::bench {
namespace {

void BM_BarrierRelaxationAblation(benchmark::State& state) {
  const bool relaxed = state.range(0) != 0;
  double resets = 0;
  double completed = 0;
  std::uint64_t seed = 7100;
  for (auto _ : state) {
    harness::WorldConfig cfg = world_config(seed++);
    cfg.node.recsa.relaxed_barrier = relaxed;
    harness::World w(cfg);
    boot(w, 5, state);
    std::uint64_t resets_before = 0;
    for (NodeId id = 1; id <= 5; ++id) {
      resets_before += w.node(id).recsa().stats().resets_started;
    }
    // Five delicate replacements back to back.
    for (int round = 0; round < 5; ++round) {
      IdSet target;
      for (NodeId id = 1; id <= 5; ++id) {
        if (id != static_cast<NodeId>(1 + (round % 5))) target.insert(id);
      }
      for (NodeId id = 1; id <= 5; ++id) {
        if (w.node(id).recsa().estab(target)) break;
      }
      if (run_until(w, 100 * kSec, [&] { return w.converged(); }) >= 0) {
        completed += 1;
      }
    }
    std::uint64_t resets_after = 0;
    for (NodeId id = 1; id <= 5; ++id) {
      resets_after += w.node(id).recsa().stats().resets_started;
    }
    resets += static_cast<double>(resets_after - resets_before);
  }
  state.counters["brute_resets"] =
      benchmark::Counter(resets / static_cast<double>(state.iterations()));
  state.counters["replacements_ok"] =
      benchmark::Counter(completed / static_cast<double>(state.iterations()));
}

BENCHMARK(BM_BarrierRelaxationAblation)
    ->Arg(1)  // relaxed (default)
    ->Arg(0)  // strict (paper-literal)
    ->ArgName("relaxed")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_StrictCleanAblation(benchmark::State& state) {
  const bool strict = state.range(0) != 0;
  double stale_blocked = 0;
  double contaminated_resets = 0;
  double converged = 0;
  std::uint64_t seed = 7500;
  for (auto _ : state) {
    harness::WorldConfig cfg = world_config(seed++);
    cfg.node.mux.link.strict_clean = strict;
    harness::World w(cfg);
    // Protocol-shaped stale packets sit in the channels *before* the
    // processors boot: forged recSA states claiming a bogus configuration,
    // riding valid data frames — exactly what the snap-stabilizing cleaning
    // must keep a fresh processor from consuming.
    reconf::RecSAMessage bogus;
    bogus.fd = IdSet{1, 2, 3, 4};
    bogus.part = IdSet{1, 2, 3, 4};
    bogus.config = reconf::ConfigValue::set(IdSet{90, 91});
    wire::Bytes bundle = dlink::encode_bundle(
        {{dlink::kPortRecSA, true, bogus.encode()}});
    for (NodeId a = 1; a <= 4; ++a) {
      for (NodeId b = 1; b <= 4; ++b) {
        if (a == b) continue;
        for (std::uint8_t lbl = 0; lbl < 3; ++lbl) {
          dlink::Frame f;
          f.kind = dlink::FrameKind::kData;
          f.link_sender = a;
          f.label = lbl;
          f.payload = bundle;
          w.network().channel(a, b).inject_packet(f.encode());
        }
      }
    }
    for (NodeId id = 1; id <= 4; ++id) w.add_node(id);
    if (w.run_until_converged(400 * kSec)) converged += 1;
    for (NodeId a = 1; a <= 4; ++a) {
      auto& n = w.node(a);
      for (NodeId b : n.mux().peers()) {
        const auto* link = n.mux().link(b);
        if (link) {
          stale_blocked += static_cast<double>(link->stats().stale_discarded);
        }
      }
      contaminated_resets +=
          static_cast<double>(n.recsa().stats().stale_detected[2]);
    }
  }
  state.counters["stale_blocked"] = benchmark::Counter(
      stale_blocked / static_cast<double>(state.iterations()));
  state.counters["type2_detections"] = benchmark::Counter(
      contaminated_resets / static_cast<double>(state.iterations()));
  state.counters["converged"] =
      benchmark::Counter(converged / static_cast<double>(state.iterations()));
}

BENCHMARK(BM_StrictCleanAblation)
    ->Arg(1)
    ->Arg(0)
    ->ArgName("strict")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void BM_ThetaAblation(benchmark::State& state) {
  const std::uint64_t theta = static_cast<std::uint64_t>(state.range(0));
  double detect_ms = 0;
  std::uint64_t seed = 7900;
  for (auto _ : state) {
    harness::WorldConfig cfg = world_config(seed++);
    cfg.node.fd.theta = theta;
    harness::World w(cfg);
    boot(w, 4, state);
    w.crash(4);
    const SimTime crash_time = w.scheduler().now();
    const double ms = run_until(w, 900 * kSec, [&] {
      for (NodeId id = 1; id <= 3; ++id) {
        if (w.node(id).failure_detector().trusted().contains(4)) return false;
      }
      return true;
    });
    if (ms < 0) {
      state.SkipWithError("crash never detected");
      return;
    }
    detect_ms += to_ms(w.scheduler().now() - crash_time);
  }
  state.counters["detect_sim_ms"] =
      benchmark::Counter(detect_ms / static_cast<double>(state.iterations()));
}

BENCHMARK(BM_ThetaAblation)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->ArgName("theta")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace ssr::bench

BENCHMARK_MAIN();
