// E7 — Theorem 4.13: virtually synchronous SMR across reconfigurations.
// Measured: multicast round throughput in steady state; the service gap
// around a member crash that triggers the coordinator-led delicate
// reconfiguration (Algorithm 4.6); virtual-synchrony violations and replica
// divergence (both must be 0).
#include <deque>

#include "bench_common.hpp"

namespace ssr::bench {
namespace {

struct Feeder {
  std::map<NodeId, std::deque<wire::Bytes>> pending;
  int produced = 0;

  void attach(harness::World& w, NodeId id) {
    w.node(id).set_fetch([this, id]() -> std::optional<wire::Bytes> {
      auto& q = pending[id];
      if (q.empty()) return std::nullopt;
      wire::Bytes cmd = q.front();
      q.pop_front();
      return cmd;
    });
  }
  void produce(NodeId id) {
    pending[id].push_back(
        vs::KvStateMachine::set_cmd("k" + std::to_string(produced % 16),
                                    std::to_string(produced)));
    ++produced;
  }
};

const vs::KvStateMachine& kv(harness::World& w, NodeId id) {
  return static_cast<const vs::KvStateMachine&>(
      const_cast<const vs::StateMachine&>(w.node(id).vs()->state_machine()));
}

std::uint64_t rounds_at_coordinator(harness::World& w) {
  for (NodeId id : w.alive()) {
    auto* v = w.node(id).vs();
    if (v != nullptr && v->is_coordinator()) return v->round();
  }
  return 0;
}

void BM_SmrRoundThroughput(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double rounds_per_s = 0;
  double divergence = 0;
  double vs_mismatches = 0;
  std::uint64_t seed = 4100;
  for (auto _ : state) {
    harness::World w(world_config(seed++, /*vs=*/true));
    harness::VirtualSynchronyMonitor monitor;
    for (NodeId id = 1; id <= n; ++id) w.add_node(id);
    monitor.attach(w);
    if (!w.run_until_converged(300 * kSec) ||
        !w.run_until_vs_stable(900 * kSec)) {
      state.SkipWithError("SMR did not stabilize");
      return;
    }
    Feeder feeder;
    for (NodeId id = 1; id <= n; ++id) feeder.attach(w, id);
    const std::uint64_t r0 = rounds_at_coordinator(w);
    const SimTime t0 = w.scheduler().now();
    const SimTime window = 120 * kSec;
    while (w.scheduler().now() < t0 + window) {
      for (NodeId id = 1; id <= n; ++id) feeder.produce(id);
      w.run_for(kSec);
    }
    const std::uint64_t r1 = rounds_at_coordinator(w);
    rounds_per_s += static_cast<double>(r1 - r0) /
                    (static_cast<double>(window) / kSec);
    const std::uint64_t d = kv(w, 1).digest();
    for (NodeId id = 2; id <= n; ++id) {
      if (kv(w, id).digest() != d) divergence += 1;
    }
    vs_mismatches += static_cast<double>(monitor.mismatches());
  }
  state.counters["rounds_per_sim_s"] =
      benchmark::Counter(rounds_per_s / static_cast<double>(state.iterations()));
  state.counters["replica_divergence"] = benchmark::Counter(divergence);
  state.counters["vs_violations"] = benchmark::Counter(vs_mismatches);
}

BENCHMARK(BM_SmrRoundThroughput)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->ArgName("N")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Member crash → view change → coordinator-led delicate reconfiguration →
// service resumes on the new configuration. Reported: the service gap and
// whether the replica state survived (divergence must be 0).
void BM_SmrReconfigurationGap(benchmark::State& state) {
  double gap_ms = 0;
  double state_lost = 0;
  std::uint64_t seed = 4500;
  for (auto _ : state) {
    harness::World w(world_config(seed++, /*vs=*/true));
    for (NodeId id = 1; id <= 4; ++id) w.add_node(id);
    if (!w.run_until_converged(300 * kSec) ||
        !w.run_until_vs_stable(900 * kSec)) {
      state.SkipWithError("SMR did not stabilize");
      return;
    }
    Feeder feeder;
    for (NodeId id = 1; id <= 4; ++id) feeder.attach(w, id);
    feeder.pending[1].push_back(vs::KvStateMachine::set_cmd("marker", "v"));
    w.run_for(60 * kSec);
    // Crash a non-coordinator member.
    const NodeId crd = w.node(1).vs()->coordinator();
    NodeId victim = kNoNode;
    for (NodeId id = 1; id <= 4; ++id) {
      if (id != crd) {
        victim = id;
        break;
      }
    }
    w.crash(victim);
    const SimTime crash_time = w.scheduler().now();
    const double ms = run_until(w, 1800 * kSec, [&] {
      auto c = w.common_config();
      if (!c || c->contains(victim)) return false;
      return w.vs_stable();
    });
    if (ms < 0) {
      state.SkipWithError("service did not resume on new configuration");
      return;
    }
    gap_ms += to_ms(w.scheduler().now() - crash_time);
    for (NodeId id : w.alive()) {
      const auto& data = kv(w, id).data();
      auto it = data.find("marker");
      if (it == data.end() || it->second != "v") state_lost += 1;
    }
  }
  state.counters["reconfig_gap_sim_ms"] =
      benchmark::Counter(gap_ms / static_cast<double>(state.iterations()));
  state.counters["state_lost"] = benchmark::Counter(state_lost);
}

BENCHMARK(BM_SmrReconfigurationGap)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace
}  // namespace ssr::bench

BENCHMARK_MAIN();
