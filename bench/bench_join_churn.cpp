// E8 — §3.3 joining mechanism: latency from boot to participation as a
// function of concurrent joiners, and the admission behaviour under a
// crash/join churn mix. Joins never change the configuration (that is
// recMA's job), so the config must stay put while participants grow.
#include "bench_common.hpp"

namespace ssr::bench {
namespace {

void BM_JoinLatency(benchmark::State& state) {
  const std::size_t joiners = static_cast<std::size_t>(state.range(0));
  double total_ms = 0;
  std::uint64_t seed = 5100;
  for (auto _ : state) {
    harness::World w(world_config(seed++));
    boot(w, 3, state);
    const IdSet config_before = *w.common_config();
    harness::ConfigHistoryMonitor history;
    history.attach(w);
    for (std::size_t j = 0; j < joiners; ++j) {
      w.add_node(static_cast<NodeId>(4 + j));
    }
    const double ms = run_until(w, 900 * kSec, [&] {
      for (std::size_t j = 0; j < joiners; ++j) {
        if (!w.node(static_cast<NodeId>(4 + j)).recsa().is_participant()) {
          return false;
        }
      }
      return true;
    });
    if (ms < 0) {
      state.SkipWithError("joiners were not admitted");
      return;
    }
    total_ms += ms;
    // Joins must not move the configuration: zero config-change events at
    // the pre-existing members, and the same config once quiet again.
    if (run_until(w, 300 * kSec, [&] { return w.converged(); }) < 0 ||
        !(*w.common_config() == config_before) ||
        history.events().size() != 0) {
      state.SkipWithError("join changed the configuration");
      return;
    }
  }
  state.counters["join_sim_ms"] =
      benchmark::Counter(total_ms / static_cast<double>(state.iterations()));
}

BENCHMARK(BM_JoinLatency)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(6)
    ->ArgName("joiners")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// Churn waves: join one + crash one per wave; the scheme must keep one
// conflict-free configuration through every wave (count of waves survived).
void BM_ChurnWaves(benchmark::State& state) {
  const std::size_t waves = static_cast<std::size_t>(state.range(0));
  double survived = 0;
  double total_ms = 0;
  std::uint64_t seed = 5500;
  for (auto _ : state) {
    harness::World w(world_config(seed++));
    boot(w, 5, state);
    auto aggressive = [&](NodeId id) {
      auto& n = w.node(id);
      n.set_eval_conf([&n](const IdSet& cfg) {
        return cfg.intersection_size(n.failure_detector().trusted()) <
               cfg.size();
      });
    };
    for (NodeId id = 1; id <= 5; ++id) aggressive(id);
    NodeId next_id = 6;
    NodeId victim = 1;
    const SimTime start = w.scheduler().now();
    for (std::size_t wv = 0; wv < waves; ++wv) {
      w.add_node(next_id);
      aggressive(next_id);
      if (run_until(w, 900 * kSec, [&] {
            return w.node(next_id).recsa().is_participant();
          }) < 0) {
        break;
      }
      w.crash(victim);
      const NodeId crashed = victim;
      if (run_until(w, 900 * kSec, [&] {
            auto c = w.common_config();
            return c && !c->contains(crashed);
          }) < 0) {
        break;
      }
      survived += 1;
      ++next_id;
      ++victim;
    }
    total_ms += to_ms(w.scheduler().now() - start);
  }
  state.counters["waves_survived"] =
      benchmark::Counter(survived / static_cast<double>(state.iterations()));
  state.counters["total_sim_ms"] =
      benchmark::Counter(total_ms / static_cast<double>(state.iterations()));
}

BENCHMARK(BM_ChurnWaves)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("waves")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace ssr::bench

BENCHMARK_MAIN();
