#include "shmem/register_service.hpp"

namespace ssr::shmem {

namespace {
void encode_tagged(wire::Writer& w, const TaggedValue& tv) {
  w.boolean(tv.valid);
  if (tv.valid) {
    tv.tag.encode(w);
    w.bytes(tv.value);
  }
}

TaggedValue decode_tagged(wire::Reader& r) {
  TaggedValue tv;
  tv.valid = r.boolean();
  if (tv.valid) {
    auto tag = Counter::decode(r);
    if (!tag) {
      tv.valid = false;
      return tv;
    }
    tv.tag = *tag;
    tv.value = r.bytes();
  }
  return tv;
}
}  // namespace

RegisterService::RegisterService(dlink::LinkMux& mux, reconf::RecSA& recsa,
                                 counter::CounterManager& counters,
                                 NodeId self, ShmemConfig cfg, Rng rng)
    : mux_(mux),
      recsa_(recsa),
      counters_(counters),
      self_(self),
      cfg_(cfg),
      rng_(rng),
      inc_(recsa, counters, mux, self, cfg.inc, rng_.fork()) {
  mux_.subscribe(dlink::kPortShmem, [this](NodeId from, const wire::Bytes& d) {
    on_message(from, d);
  });
}

const TaggedValue* RegisterService::replica(const std::string& name) const {
  auto it = replicas_.find(name);
  return it == replicas_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Server side (configuration members)
// ---------------------------------------------------------------------------

void RegisterService::serve_read(NodeId from, std::uint32_t op,
                                 const std::string& name) {
  wire::Writer w;
  w.u8(Msg::kReadResp);
  w.u32(op);
  const bool serving = counters_.member() && recsa_.no_reco();
  w.boolean(!serving);  // abort flag
  if (serving) {
    auto it = replicas_.find(name);
    encode_tagged(w, it == replicas_.end() ? TaggedValue{} : it->second);
  } else {
    ++stats_.server_aborts;
    encode_tagged(w, TaggedValue{});
  }
  mux_.send_datagram(dlink::kPortShmem, from, w.take());
}

void RegisterService::serve_write(NodeId from, std::uint32_t op,
                                  const std::string& name, TaggedValue tv) {
  wire::Writer w;
  w.u8(Msg::kWriteResp);
  w.u32(op);
  const bool serving = counters_.member() && recsa_.no_reco();
  w.boolean(!serving);
  if (serving && tv.valid) {
    auto& rep = replicas_[name];
    if (!rep.valid || Counter::ct_less(rep.tag, tv.tag)) rep = std::move(tv);
  } else if (!serving) {
    ++stats_.server_aborts;
  }
  mux_.send_datagram(dlink::kPortShmem, from, w.take());
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

bool RegisterService::start_op(const std::string& name) {
  if (busy()) return false;
  const reconf::ConfigValue& cur = recsa_.get_config_ref();
  if (!recsa_.no_reco() || !cur.is_proper()) return false;
  name_ = name;
  members_ = cur.ids();
  op_id_ = static_cast<std::uint32_t>(rng_.next_u64());
  query_replies_.clear();
  prop_acks_.clear();
  ticks_in_op_ = 0;
  return true;
}

bool RegisterService::read(const std::string& name, ReadCallback cb) {
  if (!start_op(name)) return false;
  is_read_ = true;
  read_cb_ = std::move(cb);
  phase_ = Phase::kQuery;
  for (NodeId j : members_) send_query(j);
  if (query_replies_.size() > members_.size() / 2) on_query_majority();
  return true;
}

bool RegisterService::write(const std::string& name, wire::Bytes value,
                            WriteCallback cb) {
  if (!start_op(name)) return false;
  is_read_ = false;
  write_cb_ = std::move(cb);
  new_value_ = std::move(value);
  // Phase 1 of a write: query the current tag from a majority (standard
  // two-phase write). The minted counter tag alone is not sufficient across
  // configurations: a fresh epoch label of the new member set may compare
  // below the old epoch's stored tag (labels do not carry over between
  // configurations — paper §4.1), so the final tag is the greater of the
  // minted counter and an ABD-style bump of the observed maximum.
  phase_ = Phase::kQuery;
  for (NodeId j : members_) send_query(j);
  if (query_replies_.size() > members_.size() / 2) on_query_majority();
  return true;
}

void RegisterService::on_query_majority() {
  // Pick the latest stored ⟨tag, value⟩ among the majority.
  TaggedValue observed;
  for (const auto& [j, reply] : query_replies_) {
    (void)j;
    if (!reply.valid) continue;
    if (!observed.valid || Counter::ct_less(observed.tag, reply.tag)) {
      observed = reply;
    }
  }
  if (is_read_) {
    pending_ = observed;
    if (!pending_.valid) {
      // Nothing written yet: complete without a propagate phase.
      finish(true);
      return;
    }
    begin_propagate();  // two-phase read: write-back before returning
    return;
  }
  // Write: mint a counter tag, then outbid the observed one if needed.
  phase_ = Phase::kWriteTag;
  const TaggedValue floor = observed;
  if (!inc_.begin([this, floor](std::optional<Counter> c) {
        if (phase_ != Phase::kWriteTag) return;
        if (!c) {
          finish(false);
          return;
        }
        Counter tag = *c;
        if (floor.valid && !Counter::ct_less(floor.tag, tag)) {
          tag = Counter{floor.tag.lbl, floor.tag.seqn + 1, self_};
        }
        pending_ = TaggedValue{tag, new_value_, true};
        begin_propagate();
      })) {
    finish(false);
  }
}

void RegisterService::send_query(NodeId to) {
  if (to == self_) {
    // Local replica answers directly when we are a serving member.
    if (counters_.member() && recsa_.no_reco()) {
      auto it = replicas_.find(name_);
      query_replies_[self_] =
          it == replicas_.end() ? TaggedValue{} : it->second;
    }
    return;
  }
  wire::Writer w;
  w.u8(Msg::kReadReq);
  w.u32(op_id_);
  w.str(name_);
  mux_.send_datagram(dlink::kPortShmem, to, w.take());
}

void RegisterService::send_propagate(NodeId to) {
  if (to == self_) {
    if (counters_.member() && recsa_.no_reco()) {
      auto& rep = replicas_[name_];
      if (!rep.valid || Counter::ct_less(rep.tag, pending_.tag)) rep = pending_;
      prop_acks_.insert(self_);
    }
    return;
  }
  wire::Writer w;
  w.u8(Msg::kWriteReq);
  w.u32(op_id_);
  w.str(name_);
  encode_tagged(w, pending_);
  mux_.send_datagram(dlink::kPortShmem, to, w.take());
}

void RegisterService::begin_propagate() {
  phase_ = Phase::kPropagate;
  prop_acks_.clear();
  for (NodeId j : members_) send_propagate(j);
  if (prop_acks_.size() > members_.size() / 2) finish(true);
}

void RegisterService::on_message(NodeId from, const wire::Bytes& data) {
  wire::Reader r(data);
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case Msg::kReadReq: {
      const std::uint32_t op = r.u32();
      std::string name = r.str();
      if (!r.ok() || !r.exhausted()) return;
      serve_read(from, op, name);
      return;
    }
    case Msg::kWriteReq: {
      const std::uint32_t op = r.u32();
      std::string name = r.str();
      TaggedValue tv = decode_tagged(r);
      if (!r.ok() || !r.exhausted()) return;
      serve_write(from, op, name, std::move(tv));
      return;
    }
    case Msg::kReadResp: {
      const std::uint32_t op = r.u32();
      const bool abort = r.boolean();
      TaggedValue tv = decode_tagged(r);
      if (!r.ok() || !r.exhausted()) return;
      if (op != op_id_ || phase_ != Phase::kQuery) return;
      if (abort) {
        finish(false);
        return;
      }
      query_replies_[from] = std::move(tv);
      if (query_replies_.size() > members_.size() / 2) on_query_majority();
      return;
    }
    case Msg::kWriteResp: {
      const std::uint32_t op = r.u32();
      const bool abort = r.boolean();
      if (!r.ok() || !r.exhausted()) return;
      if (op != op_id_ || phase_ != Phase::kPropagate) return;
      if (abort) {
        finish(false);
        return;
      }
      prop_acks_.insert(from);
      if (prop_acks_.size() > members_.size() / 2) finish(true);
      return;
    }
    default:
      return;
  }
}

void RegisterService::tick() {
  if (phase_ == Phase::kIdle) return;
  inc_.tick();
  ++ticks_in_op_;
  if (!recsa_.no_reco() || ticks_in_op_ > cfg_.timeout_ticks) {
    finish(false);
    return;
  }
  if (ticks_in_op_ % cfg_.resend_every_ticks == 0) {
    if (phase_ == Phase::kQuery) {
      for (NodeId j : members_) {
        if (!query_replies_.count(j)) send_query(j);
      }
    } else if (phase_ == Phase::kPropagate) {
      for (NodeId j : members_) {
        if (!prop_acks_.contains(j)) send_propagate(j);
      }
    }
  }
}

void RegisterService::finish(bool ok) {
  const bool was_read = is_read_;
  const TaggedValue result = pending_;
  phase_ = Phase::kIdle;
  pending_ = TaggedValue{};
  if (ok) {
    if (was_read) {
      ++stats_.reads_completed;
    } else {
      ++stats_.writes_completed;
    }
  } else {
    ++stats_.ops_aborted;
  }
  if (was_read) {
    ReadCallback cb = std::move(read_cb_);
    read_cb_ = nullptr;
    if (cb) cb(ok, result.value, result.tag);
  } else {
    WriteCallback cb = std::move(write_cb_);
    write_cb_ = nullptr;
    if (cb) cb(ok, result.tag);
  }
}

}  // namespace ssr::shmem
