#pragma once

#include <functional>
#include <map>
#include <string>

#include "counter/increment.hpp"

namespace ssr::shmem {

using counter::Counter;

/// A tagged register replica: the value with the counter tag of its writer.
struct TaggedValue {
  Counter tag;
  wire::Bytes value;
  bool valid = false;
};

struct ShmemStats {
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t ops_aborted = 0;
  std::uint64_t server_aborts = 0;
};

struct ShmemConfig {
  unsigned timeout_ticks = 160;
  unsigned resend_every_ticks = 8;
  counter::IncrementConfig inc;
};

/// Self-stabilizing reconfigurable MWMR shared-memory emulation (paper §4.3,
/// end): a typical two-phase quorum read/write protocol over the current
/// configuration, with write tags minted by the self-stabilizing counter
/// scheme (so tags are totally ordered and survive epoch exhaustion), and
/// suspension during reconfigurations (servers answer Abort; clients retry).
///
/// Completed operations per register are ordered by their tags: a read
/// returns the value of the latest tag in a majority and writes it back
/// before returning (the standard two-phase read), giving atomic
/// (linearizable) single-register semantics between reconfigurations and
/// across delicate reconfigurations.
class RegisterService {
 public:
  using ReadCallback =
      std::function<void(bool ok, const wire::Bytes& value, Counter tag)>;
  using WriteCallback = std::function<void(bool ok, Counter tag)>;

  RegisterService(dlink::LinkMux& mux, reconf::RecSA& recsa,
                  counter::CounterManager& counters, NodeId self,
                  ShmemConfig cfg, Rng rng);

  /// Starts a read of `name`; false if an operation is already in flight.
  bool read(const std::string& name, ReadCallback cb);
  /// Starts a write; false if an operation is already in flight.
  bool write(const std::string& name, wire::Bytes value, WriteCallback cb);

  /// Drives retransmissions/timeouts; call from the node loop.
  void tick();

  bool busy() const { return phase_ != Phase::kIdle; }
  const ShmemStats& stats() const { return stats_; }
  /// Server-side replica inspection (tests).
  const TaggedValue* replica(const std::string& name) const;

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kQuery,      // both: collecting ⟨tag, value⟩ from a majority
    kWriteTag,   // write: minting the tag via inc()
    kPropagate,  // both: writing ⟨tag, value⟩ back to a majority
  };

  struct Msg {
    static constexpr std::uint8_t kReadReq = 1;
    static constexpr std::uint8_t kReadResp = 2;
    static constexpr std::uint8_t kWriteReq = 3;
    static constexpr std::uint8_t kWriteResp = 4;
  };

  void on_message(NodeId from, const wire::Bytes& data);
  void serve_read(NodeId from, std::uint32_t op, const std::string& name);
  void serve_write(NodeId from, std::uint32_t op, const std::string& name,
                   TaggedValue tv);
  bool start_op(const std::string& name);
  void send_query(NodeId to);
  void send_propagate(NodeId to);
  void on_query_majority();
  void begin_propagate();
  void finish(bool ok);

  dlink::LinkMux& mux_;
  reconf::RecSA& recsa_;
  counter::CounterManager& counters_;
  NodeId self_;
  ShmemConfig cfg_;
  Rng rng_;
  counter::IncrementClient inc_;

  // Server side: replicas held by configuration members.
  std::map<std::string, TaggedValue> replicas_;

  // Client side: one operation at a time.
  Phase phase_ = Phase::kIdle;
  bool is_read_ = false;
  std::uint32_t op_id_ = 0;
  std::string name_;
  IdSet members_;
  std::map<NodeId, TaggedValue> query_replies_;
  IdSet prop_acks_;
  TaggedValue pending_;   // value to propagate
  wire::Bytes new_value_;  // write payload awaiting its tag
  unsigned ticks_in_op_ = 0;
  ReadCallback read_cb_;
  WriteCallback write_cb_;

  ShmemStats stats_;
};

}  // namespace ssr::shmem
