#include "counter/increment.hpp"

namespace ssr::counter {

IncrementClient::IncrementClient(reconf::RecSA& recsa, CounterManager& mgr,
                                 dlink::LinkMux& mux, NodeId self,
                                 IncrementConfig cfg, Rng rng)
    : recsa_(recsa), mgr_(mgr), mux_(mux), self_(self), cfg_(cfg), rng_(rng) {
  mgr_.add_response_handler([this](NodeId from, std::uint8_t tag,
                                   std::uint32_t op, bool abort,
                                   const CounterPair& pair) {
    on_response(from, tag, op, abort, pair);
  });
}

void IncrementClient::send_read(NodeId to) {
  wire::Writer w;
  w.u8(CounterMsg::kReadReq);
  w.u32(op_id_);
  mux_.send_datagram(dlink::kPortCounter, to, w.take());
}

void IncrementClient::send_write(NodeId to) {
  wire::Writer w;
  w.u8(CounterMsg::kWriteReq);
  w.u32(op_id_);
  new_counter_.encode(w);
  mux_.send_datagram(dlink::kPortCounter, to, w.take());
}

bool IncrementClient::begin(Callback cb) {
  if (busy_) return false;
  const reconf::ConfigValue& cur = recsa_.get_config_ref();
  if (!recsa_.no_reco() || !cur.is_proper()) {
    // Line 29 of Algorithm 4.3: increments are refused outright during
    // reconfigurations.
    ++stats_.aborted;
    cb(std::nullopt);
    return true;
  }
  busy_ = true;
  phase_ = Phase::kRead;
  // Random operation ids keep concurrent clients' responses disjoint.
  op_id_ = static_cast<std::uint32_t>(rng_.next_u64());
  members_ = cur.ids();
  member_mode_ = members_.contains(self_) && mgr_.member();
  read_replies_.clear();
  write_acks_.clear();
  ticks_in_op_ = 0;
  callback_ = std::move(cb);
  for (NodeId j : members_) {
    if (j == self_ && member_mode_) {
      // A member answers its own majRead locally (its maxC is authoritative).
      mgr_.find_max();
      read_replies_[self_] = mgr_.local_max();
      continue;
    }
    send_read(j);
  }
  // A single-member configuration can complete the read phase immediately.
  if (read_replies_.size() > members_.size() / 2) start_write();
  return true;
}

void IncrementClient::on_response(NodeId from, std::uint8_t tag,
                                  std::uint32_t op, bool abort,
                                  const CounterPair& pair) {
  if (!busy_ || op != op_id_) return;
  if (abort) {
    finish(std::nullopt);  // any Abort terminates the procedure with ⊥
    return;
  }
  if (tag == CounterMsg::kReadResp && phase_ == Phase::kRead) {
    read_replies_[from] = pair;
    if (member_mode_) {
      // Members fold every reply into their own structures (line 19).
      mgr_.store().receipt(pair, CounterPair::null(), from);
    }
    if (read_replies_.size() > members_.size() / 2) start_write();
    return;
  }
  if (tag == CounterMsg::kWriteResp && phase_ == Phase::kWrite) {
    write_acks_.insert(from);
    if (write_acks_.size() > members_.size() / 2) {
      if (member_mode_) mgr_.adopt_local(new_counter_);
      ++stats_.completed;
      finish(new_counter_);
    }
    return;
  }
}

void IncrementClient::start_write() {
  std::optional<Counter> max_counter;
  if (member_mode_) {
    // Algorithm 4.4: repeat findMaxCounter() until legit ∧ ¬exhausted;
    // find_max() mints a fresh epoch label when everything is cancelled.
    for (unsigned i = 0; i < cfg_.find_max_attempts; ++i) {
      mgr_.find_max();
      const CounterPair& p = mgr_.local_max();
      if (p.legit() && !p.exhausted(mgr_.exhaust_bound())) {
        max_counter = *p.mct;
        break;
      }
    }
  } else {
    // Algorithm 4.5: the best legit, non-exhausted counter returned by the
    // majority; ⊥ if none (e.g., the epoch labels have not converged yet).
    for (const auto& [from, p] : read_replies_) {
      (void)from;
      if (!p.legit() || p.exhausted(mgr_.exhaust_bound())) continue;
      if (!max_counter || Counter::ct_less(*max_counter, *p.mct)) {
        max_counter = *p.mct;
      }
    }
  }
  if (!max_counter) {
    finish(std::nullopt);
    return;
  }
  new_counter_ = Counter{max_counter->lbl, max_counter->seqn + 1, self_};
  phase_ = Phase::kWrite;
  write_acks_.clear();
  for (NodeId j : members_) {
    if (j == self_ && member_mode_) {
      mgr_.store().receipt(CounterPair::of(new_counter_),
                           CounterPair::null(), self_);
      write_acks_.insert(self_);
      continue;
    }
    send_write(j);
  }
  if (write_acks_.size() > members_.size() / 2) {
    if (member_mode_) mgr_.adopt_local(new_counter_);
    ++stats_.completed;
    finish(new_counter_);
  }
}

void IncrementClient::tick() {
  if (!busy_) return;
  ++ticks_in_op_;
  if (!recsa_.no_reco() || ticks_in_op_ > cfg_.timeout_ticks) {
    finish(std::nullopt);
    return;
  }
  if (ticks_in_op_ % cfg_.resend_every_ticks == 0) {
    for (NodeId j : members_) {
      if (j == self_) continue;
      if (phase_ == Phase::kRead && !read_replies_.count(j)) send_read(j);
      if (phase_ == Phase::kWrite && !write_acks_.contains(j)) send_write(j);
    }
  }
}

void IncrementClient::finish(std::optional<Counter> result) {
  if (!result) ++stats_.aborted;
  busy_ = false;
  phase_ = Phase::kIdle;
  Callback cb = std::move(callback_);
  callback_ = nullptr;
  if (cb) cb(std::move(result));
}

}  // namespace ssr::counter
