#pragma once

#include "counter/counter.hpp"
#include "label/pair_store.hpp"

namespace ssr::counter {

/// Algorithm 4.2's receipt action over counter pairs (the renamed
/// maxC[] / storedCnts[] structures of Algorithm 4.3).
class CounterStore : public label::PairStore<CounterPair> {
 public:
  CounterStore(NodeId self, label::StoreConfig cfg, Rng rng);

 private:
  static CounterPair create(NodeId self, Rng& rng,
                            const std::deque<CounterPair>& known);
  Rng rng_;
};

}  // namespace ssr::counter
