#pragma once

#include "counter/counter.hpp"
#include "label/pair_store.hpp"
#include "util/arena.hpp"

namespace ssr::counter {

/// Algorithm 4.2's receipt action over counter pairs (the renamed
/// maxC[] / storedCnts[] structures of Algorithm 4.3).
class CounterStore : public label::PairStore<CounterPair> {
 public:
  CounterStore(NodeId self, label::StoreConfig cfg, Rng rng);

 private:
  CounterPair create(NodeId self, const std::deque<CounterPair>& known);
  Rng rng_;
  /// Per-mint candidate scratch, reset each call (see LabelStore::create).
  util::Arena arena_;
};

}  // namespace ssr::counter
