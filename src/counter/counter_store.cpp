#include "counter/counter_store.hpp"

#include <span>

namespace ssr::counter {

CounterStore::CounterStore(NodeId self, label::StoreConfig cfg, Rng rng)
    : label::PairStore<CounterPair>(
          self, cfg,
          [this, self](const std::deque<CounterPair>& known) {
            return create(self, known);
          }),
      rng_(rng) {}

CounterPair CounterStore::create(NodeId self,
                                 const std::deque<CounterPair>& known) {
  // Candidate labels are read through pointers into the stored queue; the
  // pointer list lives in mint-scratch arena storage rewound per call, so
  // the bootstrap path stops allocating once the arena's high-water mark
  // covers the (bounded) queue.
  arena_.reset();
  std::vector<const Label*, util::ArenaAllocator<const Label*>> labels{
      util::ArenaAllocator<const Label*>(arena_)};
  labels.reserve(2 * known.size());
  for (const CounterPair& cp : known) {
    if (cp.mct) labels.push_back(&cp.mct->lbl);
    if (cp.cct) labels.push_back(&cp.cct->lbl);
  }
  // A fresh epoch starts at seqn = 0 with the creator as writer
  // (Algorithm 4.3 interface note).
  Counter c;
  c.lbl = Label::next_label(
      self, std::span<const Label* const>(labels.data(), labels.size()), rng_);
  c.seqn = 0;
  c.wid = self;
  return CounterPair::of(c);
}

}  // namespace ssr::counter
