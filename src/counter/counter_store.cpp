#include "counter/counter_store.hpp"

namespace ssr::counter {

CounterStore::CounterStore(NodeId self, label::StoreConfig cfg, Rng rng)
    : label::PairStore<CounterPair>(
          self, cfg,
          [this, self](const std::deque<CounterPair>& known) {
            return create(self, rng_, known);
          }),
      rng_(rng) {}

CounterPair CounterStore::create(NodeId self, Rng& rng,
                                 const std::deque<CounterPair>& known) {
  std::vector<Label> labels;
  for (const CounterPair& cp : known) {
    if (cp.mct) labels.push_back(cp.mct->lbl);
    if (cp.cct) labels.push_back(cp.cct->lbl);
  }
  // A fresh epoch starts at seqn = 0 with the creator as writer
  // (Algorithm 4.3 interface note).
  Counter c;
  c.lbl = Label::next_label(self, labels, rng);
  c.seqn = 0;
  c.wid = self;
  return CounterPair::of(c);
}

}  // namespace ssr::counter
