#include "counter/counter_algo.hpp"

namespace ssr::counter {

namespace {
CounterPair clean_cp(CounterPair x, const IdSet& members) {
  if (x.has_foreign_creator(members)) return CounterPair::null();
  return x;
}
}  // namespace

CounterManager::CounterManager(dlink::LinkMux& mux, reconf::RecSA& recsa,
                               NodeId self, CounterConfig cfg, Rng rng)
    : mux_(mux),
      recsa_(recsa),
      self_(self),
      cfg_(cfg),
      store_(self, cfg.store, rng) {
  mux_.subscribe(dlink::kPortCounter,
                 [this](NodeId from, const wire::Bytes& d) {
                   on_message(from, d);
                 });
}

bool CounterManager::conf_change(const reconf::ConfigValue& cur) const {
  return !cur.is_proper() || !(cur.ids() == store_.members());
}

void CounterManager::cancel_exhausted() {
  store_.for_each_max([&](NodeId, CounterPair& p) {
    if (p.legit() && p.exhausted(cfg_.exhaust_bound)) {
      p.cancel_exhausted();
      ++stats_.exhaust_cancels;
    }
  });
  store_.for_each_stored([&](NodeId, CounterPair& p) {
    if (p.legit() && p.exhausted(cfg_.exhaust_bound)) {
      p.cancel_exhausted();
      ++stats_.exhaust_cancels;
    }
  });
}

void CounterManager::find_max() {
  cancel_exhausted();
  store_.refresh();
}

void CounterManager::adopt_local(const Counter& c) {
  store_.inject_max(self_, CounterPair::of(c));
  store_.refresh();  // records the new counter in its creator's queue
}

wire::Bytes CounterManager::encode_exchange(NodeId peer) {
  wire::Writer w;
  w.u8(CounterMsg::kExchange);
  CounterPair mine = clean_cp(store_.local_max(), store_.members());
  const CounterPair* theirs = store_.max_entry(peer);
  CounterPair echo =
      theirs ? clean_cp(*theirs, store_.members()) : CounterPair::null();
  mine.encode(w);
  echo.encode(w);
  return w.take();
}

void CounterManager::tick() {
  const reconf::ConfigValue& cur = recsa_.get_config_ref();
  const bool no_reco = recsa_.no_reco();

  member_ = cur.is_proper() && cur.ids().contains(self_) &&
            recsa_.is_participant();
  if (!member_) {
    mux_.clear_state_all(dlink::kPortCounter);
    return;
  }

  if (no_reco && conf_change(cur)) {  // lines 14–19
    ++stats_.rebuilds;
    store_.rebuild(cur.ids());
    store_.empty_all_queues();
    store_.clean_max(cur.ids());
    find_max();
  }

  if (no_reco && !conf_change(cur)) {  // lines 20–22
    cancel_exhausted();
    for (NodeId k : store_.members()) {
      if (k == self_) continue;
      mux_.publish_state(dlink::kPortCounter, k, encode_exchange(k));
    }
  }
  mux_.for_each_peer([&](NodeId peer) {
    if (!store_.members().contains(peer))
      mux_.clear_state(dlink::kPortCounter, peer);
  });
}

void CounterManager::serve_read(NodeId from, std::uint32_t op) {
  wire::Writer w;
  w.u8(CounterMsg::kReadResp);
  w.u32(op);
  if (member_ && recsa_.no_reco()) {  // lines 20–24 of Algorithm 4.4
    ++stats_.reads_served;
    find_max();
    w.boolean(false);
    store_.local_max().encode(w);
  } else {
    ++stats_.aborts_sent;
    w.boolean(true);
    CounterPair::null().encode(w);
  }
  mux_.send_datagram(dlink::kPortCounter, from, w.take());
}

void CounterManager::serve_write(NodeId from, std::uint32_t op,
                                 const Counter& c) {
  wire::Writer w;
  w.u8(CounterMsg::kWriteResp);
  w.u32(op);
  if (member_ && recsa_.no_reco()) {  // lines 32–36 of Algorithm 4.4
    CounterPair incoming = clean_cp(CounterPair::of(c), store_.members());
    // Epoch-boundary guard: after exhaustion every member mints a fresh
    // label, and only one that dominates every label this server has ever
    // stored may seed the next epoch — including *cancelled* labels, since
    // exhausted epochs carried completed counters that later increments
    // must exceed. A write whose label is strictly below any stored label
    // is refused so a completed increment can never be ≺ct-below an
    // earlier completed one. Same-label writes are always accepted —
    // concurrent increments of one epoch are legal and ordered by writer
    // id (paper §4.2).
    find_max();
    bool stale_label = false;
    if (incoming.has_main()) {
      const Label& lbl = incoming.main();
      const auto check = [&](NodeId, CounterPair& p) {
        if (stale_label || !p.has_main()) return;
        if (p.main() == lbl) return;
        if (Label::total_less(lbl, p.main())) stale_label = true;
      };
      store_.for_each_max(check);
      store_.for_each_stored(check);
    }
    if (stale_label) {
      ++stats_.aborts_sent;
      w.boolean(true);
      mux_.send_datagram(dlink::kPortCounter, from, w.take());
      return;
    }
    ++stats_.writes_served;
    if (incoming.has_main()) {
      // maxC[j] ← max_ct(maxj, maxC[j]); enqueue into the creator's queue.
      store_.receipt(incoming, CounterPair::null(), from);
      cancel_exhausted();
      store_.refresh();
    }
    w.boolean(false);
  } else {
    ++stats_.aborts_sent;
    w.boolean(true);
  }
  mux_.send_datagram(dlink::kPortCounter, from, w.take());
}

void CounterManager::on_message(NodeId from, const wire::Bytes& data) {
  wire::Reader r(data);
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case CounterMsg::kExchange: {
      if (!member_) return;
      if (!store_.members().contains(from)) return;
      const reconf::ConfigValue& cur = recsa_.get_config_ref();
      if (!recsa_.no_reco() || conf_change(cur)) return;  // line 24
      CounterPair sent_max = CounterPair::decode(r);
      CounterPair last_sent = CounterPair::decode(r);
      if (!r.ok() || !r.exhausted()) return;
      store_.clean_max(store_.members());
      sent_max = clean_cp(sent_max, store_.members());
      last_sent = clean_cp(last_sent, store_.members());
      ++stats_.exchanges;
      cancel_exhausted();
      store_.receipt(sent_max, last_sent, from);
      return;
    }
    case CounterMsg::kReadReq: {
      const std::uint32_t op = r.u32();
      if (!r.ok() || !r.exhausted()) return;
      serve_read(from, op);
      return;
    }
    case CounterMsg::kWriteReq: {
      const std::uint32_t op = r.u32();
      auto c = Counter::decode(r);
      if (!r.ok() || !r.exhausted() || !c) return;
      serve_write(from, op, *c);
      return;
    }
    case CounterMsg::kReadResp:
    case CounterMsg::kWriteResp: {
      const std::uint32_t op = r.u32();
      const bool abort = r.boolean();
      CounterPair pair = tag == CounterMsg::kReadResp ? CounterPair::decode(r)
                                                      : CounterPair::null();
      if (!r.ok() || !r.exhausted()) return;
      for (const auto& handler : resp_handlers_) {
        handler(from, tag, op, abort, pair);
      }
      return;
    }
    default:
      return;  // unknown tag — corrupted
  }
}

}  // namespace ssr::counter
