#pragma once

#include <optional>
#include <string>

#include "label/label.hpp"

namespace ssr::counter {

using label::Label;

/// Practically-infinite counter ⟨lbl, seqn, wid⟩ (paper §4.2): an epoch
/// label from the labeling scheme, a bounded sequence number, and the
/// identifier of the sequence number's writer. Strictly ordered whenever
/// the labels are comparable:
///   ct1 ≺ct ct2 ⇔ lbl1 ≺lb lbl2 ∨ (lbl1 = lbl2 ∧ seqn1 < seqn2)
///                ∨ (lbl1 = lbl2 ∧ seqn1 = seqn2 ∧ wid1 < wid2).
struct Counter {
  Label lbl;
  std::uint64_t seqn = 0;
  NodeId wid = kNoNode;

  friend bool operator==(const Counter&, const Counter&) = default;

  /// ≺ct with the deterministic total extension of ≺lb on labels.
  static bool ct_less(const Counter& a, const Counter& b);

  void encode(wire::Writer& w) const;
  static std::optional<Counter> decode(wire::Reader& r);

  std::string to_string() const;
};

/// ⟨mct, cct⟩ — counter pair; `cct` non-null cancels `mct` (stale epoch or
/// exhausted sequence number). Satisfies the PairStore interface so the
/// counter structures reuse Algorithm 4.2's receipt action (paper:
/// "counterReceiptAction … is essentially the same").
struct CounterPair {
  std::optional<Counter> mct;
  std::optional<Counter> cct;

  static CounterPair null() { return CounterPair{}; }
  static CounterPair of(Counter c) {
    return CounterPair{std::move(c), std::nullopt};
  }

  bool has_main() const { return mct.has_value(); }
  bool legit() const { return mct.has_value() && !cct.has_value(); }
  NodeId creator() const { return mct ? mct->lbl.creator : kNoNode; }
  const Label& main() const { return mct->lbl; }
  /// Pairs match by *label*: only the greatest counter per label is kept.
  bool same_main(const CounterPair& o) const {
    return mct.has_value() && o.mct.has_value() && mct->lbl == o.mct->lbl;
  }
  void cancel_with(const Label& evidence) {
    cct = Counter{evidence, 0, creator()};
  }
  /// Exhaustion: cancel with the counter itself (cancelExhausted).
  void cancel_exhausted() { cct = mct; }
  /// A counter whose *increment* would reach the bound is already
  /// exhausted, so exhausted sequence numbers are never handed out.
  bool exhausted(std::uint64_t bound) const {
    return mct.has_value() && mct->seqn + 1 >= bound;
  }

  /// Same label: prefer the cancelled copy, else the greater (seqn, wid).
  CounterPair merged_with(const CounterPair& o) const {
    if (!legit()) return *this;
    if (!o.legit()) return o;
    return Counter::ct_less(*mct, *o.mct) ? o : *this;
  }
  /// In-place merged_with: `*this = merged_with(o)` without the temporary,
  /// so a no-op merge (the steady state) performs no allocation.
  void merge_from(const CounterPair& o) {
    if (!legit()) return;
    if (!o.legit() || Counter::ct_less(*mct, *o.mct)) *this = o;
  }

  bool has_foreign_creator(const IdSet& members) const {
    if (mct && !members.contains(mct->lbl.creator)) return true;
    if (cct && !members.contains(cct->lbl.creator)) return true;
    return false;
  }

  static bool total_less(const CounterPair& a, const CounterPair& b) {
    if (!a.has_main()) return b.has_main();
    if (!b.has_main()) return false;
    return Counter::ct_less(*a.mct, *b.mct);
  }

  friend bool operator==(const CounterPair&, const CounterPair&) = default;

  void encode(wire::Writer& w) const;
  static CounterPair decode(wire::Reader& r);

  std::string to_string() const;
};

}  // namespace ssr::counter
