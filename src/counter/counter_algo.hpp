#pragma once

#include <functional>

#include "counter/counter_store.hpp"
#include "dlink/link_mux.hpp"
#include "reconf/recsa.hpp"

namespace ssr::counter {

struct CounterConfig {
  /// Sequence-number exhaustion bound 2^b (tests use tiny bounds to
  /// exercise epoch rollover; 2^62 is practically inexhaustible).
  std::uint64_t exhaust_bound = 1ULL << 62;
  label::StoreConfig store;
};

struct CounterMgrStats {
  std::uint64_t rebuilds = 0;
  std::uint64_t exchanges = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t writes_served = 0;
  std::uint64_t aborts_sent = 0;
  std::uint64_t exhaust_cancels = 0;
};

/// Message tags on the counter port.
struct CounterMsg {
  static constexpr std::uint8_t kExchange = 1;
  static constexpr std::uint8_t kReadReq = 2;
  static constexpr std::uint8_t kReadResp = 3;
  static constexpr std::uint8_t kWriteReq = 4;
  static constexpr std::uint8_t kWriteResp = 5;
};

/// Counter management — Algorithm 4.3 plus the member ("server") side of the
/// increment protocol (Algorithm 4.4 lines 20–24 and 32–36): configuration
/// members maintain the maximal counter by exchanging maxC pairs exactly as
/// the labeling algorithm exchanges labels, answer majority-read and
/// majority-write requests, and abort them during reconfigurations.
class CounterManager {
 public:
  /// Routes read/write responses to the local increment client.
  using RespHandler = std::function<void(NodeId from, std::uint8_t tag,
                                         std::uint32_t op, bool abort,
                                         const CounterPair& pair)>;

  CounterManager(dlink::LinkMux& mux, reconf::RecSA& recsa, NodeId self,
                 CounterConfig cfg, Rng rng);

  /// One do-forever iteration (reconfiguration absorption + exchange).
  void tick();

  /// findMaxCounter(): cancel exhausted maxima, run the receipt action,
  /// leaving local_max() at the best known (possibly freshly minted) value.
  void find_max();

  /// Adopts a successfully written counter (maxC[i] ← newCntr; enqueue).
  void adopt_local(const Counter& c);

  const CounterPair& local_max() { return store_.local_max(); }
  CounterStore& store() { return store_; }
  bool member() const { return member_; }
  const IdSet& members() const { return store_.members(); }
  std::uint64_t exhaust_bound() const { return cfg_.exhaust_bound; }

  /// Several increment clients may coexist (the VS layer and the
  /// application); responses are fanned out and filtered by operation id.
  void add_response_handler(RespHandler fn) {
    resp_handlers_.push_back(std::move(fn));
  }

  const CounterMgrStats& stats() const { return stats_; }

 private:
  bool conf_change(const reconf::ConfigValue& cur) const;
  void on_message(NodeId from, const wire::Bytes& data);
  void serve_read(NodeId from, std::uint32_t op);
  void serve_write(NodeId from, std::uint32_t op, const Counter& c);
  void cancel_exhausted();
  wire::Bytes encode_exchange(NodeId peer);

  dlink::LinkMux& mux_;
  reconf::RecSA& recsa_;
  NodeId self_;
  CounterConfig cfg_;
  CounterStore store_;
  bool member_ = false;
  std::vector<RespHandler> resp_handlers_;
  CounterMgrStats stats_;
};

}  // namespace ssr::counter
