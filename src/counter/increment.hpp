#pragma once

#include <map>

#include "counter/counter_algo.hpp"

namespace ssr::counter {

struct IncrementConfig {
  /// Give up (return ⊥) after this many ticks without completion.
  unsigned timeout_ticks = 120;
  /// Retransmit outstanding requests to silent members at this cadence.
  unsigned resend_every_ticks = 8;
  /// findMaxCounter() repeat bound (the repeat/until of Algorithm 4.4).
  unsigned find_max_attempts = 4;
};

struct IncrementStats {
  std::uint64_t completed = 0;
  std::uint64_t aborted = 0;
};

/// Counter increment — Algorithm 4.4 (configuration member) and
/// Algorithm 4.5 (non-member participant), unified: the mode is chosen per
/// operation from the caller's membership.
///
/// incrementCounter() is a two-phase quorum operation: majRead the maximal
/// counters from a majority of the configuration, pick/construct the global
/// maximum, increment its seqn with our write identifier, then majWrite it
/// back to a majority. Any Abort (a member inside a reconfiguration)
/// aborts the operation with ⊥; callers simply retry. Completed increments
/// are strictly ordered by ≺ct (Theorem 4.6).
class IncrementClient {
 public:
  /// Completion: the written counter, or std::nullopt (⊥, aborted).
  using Callback = std::function<void(std::optional<Counter>)>;

  IncrementClient(reconf::RecSA& recsa, CounterManager& mgr,
                  dlink::LinkMux& mux, NodeId self, IncrementConfig cfg,
                  Rng rng);

  /// Starts an increment; false if one is already in flight.
  bool begin(Callback cb);
  /// Drives retransmissions and timeouts; call from the node's loop.
  void tick();

  bool busy() const { return busy_; }
  const IncrementStats& stats() const { return stats_; }

 private:
  enum class Phase : std::uint8_t { kIdle, kRead, kWrite };

  void on_response(NodeId from, std::uint8_t tag, std::uint32_t op, bool abort,
                   const CounterPair& pair);
  void start_write();
  void send_read(NodeId to);
  void send_write(NodeId to);
  void finish(std::optional<Counter> result);

  reconf::RecSA& recsa_;
  CounterManager& mgr_;
  dlink::LinkMux& mux_;
  NodeId self_;
  IncrementConfig cfg_;

  Rng rng_{0};
  bool busy_ = false;
  Phase phase_ = Phase::kIdle;
  std::uint32_t op_id_ = 0;
  bool member_mode_ = false;
  IdSet members_;
  std::map<NodeId, CounterPair> read_replies_;
  IdSet write_acks_;
  Counter new_counter_;
  unsigned ticks_in_op_ = 0;
  Callback callback_;
  IncrementStats stats_;
};

}  // namespace ssr::counter
