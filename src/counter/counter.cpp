#include "counter/counter.hpp"

namespace ssr::counter {

bool Counter::ct_less(const Counter& a, const Counter& b) {
  if (!(a.lbl == b.lbl)) return Label::total_less(a.lbl, b.lbl);
  if (a.seqn != b.seqn) return a.seqn < b.seqn;
  return a.wid < b.wid;
}

void Counter::encode(wire::Writer& w) const {
  lbl.encode(w);
  w.u64(seqn);
  w.node_id(wid);
}

std::optional<Counter> Counter::decode(wire::Reader& r) {
  auto lbl = Label::decode(r);
  if (!lbl) return std::nullopt;
  Counter c;
  c.lbl = *lbl;
  c.seqn = r.u64();
  c.wid = r.node_id();
  return c;
}

std::string Counter::to_string() const {
  return lbl.to_string() + ":" + std::to_string(seqn) + "@" +
         std::to_string(wid);
}

void CounterPair::encode(wire::Writer& w) const {
  w.boolean(mct.has_value());
  if (mct) mct->encode(w);
  w.boolean(cct.has_value());
  if (cct) cct->encode(w);
}

CounterPair CounterPair::decode(wire::Reader& r) {
  CounterPair p;
  if (r.boolean()) p.mct = Counter::decode(r);
  if (r.boolean()) p.cct = Counter::decode(r);
  return p;
}

std::string CounterPair::to_string() const {
  return "<" + (mct ? mct->to_string() : "⊥") + "," +
         (cct ? cct->to_string() : "⊥") + ">";
}

}  // namespace ssr::counter
