#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/types.hpp"

namespace ssr::sim {

/// Discrete-event scheduler implementing the paper's interleaving model
/// (Section 2): at most one step executes at any moment; a step is triggered
/// either by a packet arrival or by a periodic timer whose rate is unknown
/// to the algorithms. Virtual time is microseconds.
class Scheduler {
 public:
  using Action = std::function<void()>;

  /// Handle used to cancel a scheduled event (e.g., timers of a crashed
  /// node). Cancellation is O(1): the event is tombstoned and skipped.
  class Handle {
   public:
    Handle() = default;
    void cancel() const {
      if (auto p = alive_.lock()) *p = false;
    }
    bool pending() const {
      auto p = alive_.lock();
      return p && *p;
    }
    /// Liveness token, shared with the scheduled event. Transports wrap it
    /// in their own handle type so cancelling through either sets the same
    /// tombstone (and quiescence detection stays exact).
    std::weak_ptr<bool> token() const { return alive_; }

   private:
    friend class Scheduler;
    explicit Handle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}
    std::weak_ptr<bool> alive_;
  };

  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` after the current time.
  Handle schedule_after(SimTime delay, Action action);
  /// Schedules `action` at absolute time `when` (>= now).
  Handle schedule_at(SimTime when, Action action);

  /// Runs events until the queue is empty or `deadline` is passed.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);
  /// Runs for `duration` more virtual time.
  std::uint64_t run_for(SimTime duration) { return run_until(now_ + duration); }
  /// Executes exactly one event if any is pending before `deadline`.
  bool step(SimTime deadline);

  /// True when no *live* events remain. Cancelled (tombstoned) events are
  /// lazily dropped from the front of the queue so quiescence detection is
  /// exact: a queue holding only tombstones is empty.
  bool empty() const {
    drop_tombstones();
    return queue_.empty();
  }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    SimTime when = 0;
    std::uint64_t seq = 0;  // FIFO tie-break at equal times → determinism
    Action action;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_tombstones() const;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  mutable std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ssr::sim
