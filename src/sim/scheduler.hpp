#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/types.hpp"
#include "wire/wire.hpp"

namespace ssr::sim {

/// Destination of a typed packet event (the scheduler's fast path).
/// Channels implement this so steady-state packet traffic never builds a
/// closure: the event record is just {sink, pooled payload}.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  /// The scheduled packet came due. Called after the event's slot has been
  /// freed, so scheduling (even into the same slot) is safe from inside.
  /// The sink owns `payload` and is expected to release it back to
  /// wire::BufferPool::local() once the packet dies.
  virtual void deliver_packet(wire::Bytes&& payload) = 0;
};

/// Discrete-event scheduler implementing the paper's interleaving model
/// (Section 2): at most one step executes at any moment; a step is triggered
/// either by a packet arrival or by a periodic timer whose rate is unknown
/// to the algorithms. Virtual time is microseconds.
///
/// Events live in a slab of pooled slots addressed by {slot, generation}
/// handles and ordered by a 4-ary min-heap of 24-byte POD entries
/// keyed on the same (when, seq) pair as the original priority_queue — so
/// execution order, FIFO tie-breaks and therefore every RNG draw are
/// unchanged, while the steady-state hot path performs zero heap
/// allocations: no per-event std::function, no shared_ptr tombstone, and no
/// copy-out of the top event. Cancellation is O(1) (a generation bump frees
/// the slot; the stale heap entry is dropped lazily when it surfaces).
class Scheduler {
 public:
  // ssr-lint: allow(hot-path-alloc): closure events are the cold path; packets ride PacketSink.
  using Action = std::function<void()>;

  /// Handle used to cancel a scheduled event (e.g., timers of a crashed
  /// node). Cancellation and pending checks are O(1) generation compares;
  /// both are idempotent and safe after the event fired, was cancelled, or
  /// its slot was reused (the generation no longer matches). A handle must
  /// not outlive the scheduler it came from.
  class Handle {
   public:
    Handle() = default;
    void cancel() const {
      if (sched_ != nullptr) sched_->cancel_event(slot_, gen_);
    }
    bool pending() const {
      return sched_ != nullptr && sched_->event_pending(slot_, gen_);
    }
    /// Raw slot/generation pair, for transports that wrap scheduler events
    /// in their own handle type (see net::TimerHandle).
    std::uint32_t slot() const { return slot_; }
    std::uint32_t generation() const { return gen_; }

   private:
    friend class Scheduler;
    Handle(Scheduler* sched, std::uint32_t slot, std::uint32_t gen)
        : sched_(sched), slot_(slot), gen_(gen) {}
    Scheduler* sched_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
  };

  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` after the current time.
  Handle schedule_after(SimTime delay, Action action);
  /// Schedules `action` at absolute time `when` (>= now).
  Handle schedule_at(SimTime when, Action action);
  /// Fast path: schedules delivery of `payload` to `sink` without building
  /// a closure. Consumes the same (when, seq) key as schedule_after, so the
  /// two paths interleave exactly like two closure events would.
  Handle schedule_packet_after(SimTime delay, PacketSink* sink,
                               wire::Bytes payload);

  /// Runs events until the queue is empty or `deadline` is passed.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime deadline);
  /// Runs for `duration` more virtual time.
  std::uint64_t run_for(SimTime duration) { return run_until(now_ + duration); }
  /// Executes exactly one event if any is pending before `deadline`.
  bool step(SimTime deadline);

  /// True when no *live* events remain. Cancelled (tombstoned) entries are
  /// lazily dropped from the front of the heap so quiescence detection is
  /// exact: a heap holding only tombstones is empty.
  bool empty() const {
    flush_staged();
    drop_tombstones();
    return heap_.empty();
  }
  std::uint64_t events_executed() const { return executed_; }

  /// O(1) generation-compare primitives backing Handle and the transports'
  /// TimerHandle. Both are no-ops / false when the pair is stale.
  void cancel_event(std::uint32_t slot, std::uint32_t gen);
  bool event_pending(std::uint32_t slot, std::uint32_t gen) const;

  /// Pre-sizes the slab, heap and staging buffer (warm start for worlds
  /// that know their steady-state event population).
  void reserve(std::size_t events);

  /// Slab footprint: slots ever allocated (live + pooled). Bounded by the
  /// peak number of simultaneously pending events, not by traffic volume.
  std::size_t slots_total() const { return slots_.size(); }
  /// Currently scheduled (live) events.
  std::size_t live_events() const { return live_; }

 private:
  enum class Kind : std::uint8_t { kFree = 0, kClosure, kPacket };

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Pooled event record. `gen` is bumped every time the slot is freed, so
  /// a {slot, gen} pair names one event incarnation forever.
  struct Slot {
    std::uint32_t gen = 0;
    Kind kind = Kind::kFree;
    std::uint32_t next_free = kNoSlot;
    PacketSink* sink = nullptr;
    wire::Bytes payload;  // packet events (pooled)
    Action fn;            // closure events
  };

  /// Heap entry: the full ordering key is inline so sifts never touch the
  /// slab. (when, seq) reproduces the original priority_queue order; a
  /// stale (slot, gen) pair marks a tombstone of a cancelled/freed event.
  struct HeapEntry {
    SimTime when = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  // 4-ary min-heap over heap_ (root at 0, children of i at 4i+1..4i+4):
  // half the levels of a binary heap and cache-friendlier sift-downs. The
  // extraction order is the total order (when, seq) — seq is unique — so
  // the heap's internal shape cannot affect execution order or traces.
  void heap_push(const HeapEntry& e) const;
  void heap_pop() const;

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  Handle push_event(SimTime when, std::uint32_t slot);
  bool entry_live(const HeapEntry& e) const {
    return slots_[e.slot].gen == e.gen;
  }
  void drop_tombstones() const;
  /// Events scheduled while a step executes are staged and enter the heap
  /// in one batch when the step completes (the ROADMAP "batch channel
  /// delivery events" item): a protocol step that fans a frame out to k
  /// peers performs one staged append per send and a single flush.
  void flush_staged() const;

  SimTime now_ = 0;
  /// The thread's buffer pool, resolved once (free_slot and the packet
  /// path hit it per event; the TLS lookup is not free at that rate).
  wire::BufferPool& pool_ = wire::BufferPool::local();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  bool in_step_ = false;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  mutable std::vector<HeapEntry> heap_;    // 4-ary min-heap (heap_push/pop)
  mutable std::vector<HeapEntry> staged_;  // pending batch insert
};

}  // namespace ssr::sim
