#include "sim/scheduler.hpp"

#include "util/assert.hpp"

namespace ssr::sim {

void Scheduler::reserve(std::size_t events) {
  slots_.reserve(events);
  heap_.reserve(events);
  staged_.reserve(64);
}

std::uint32_t Scheduler::alloc_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    return slot;
  }
  // ssr-lint: allow(hot-path-alloc): slab growth, bounded by the peak live-event population.
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::free_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  // Bumping the generation retires every outstanding {slot, gen} handle and
  // turns the slot's heap entry into a tombstone in one store.
  ++s.gen;
  s.kind = Kind::kFree;
  s.sink = nullptr;
  if (s.payload.capacity() != 0) {
    pool_.release(std::move(s.payload));
    s.payload = wire::Bytes();
  }
  if (s.fn) s.fn = nullptr;
  s.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

void Scheduler::heap_push(const HeapEntry& e) const {
  std::size_t i = heap_.size();
  // ssr-lint: allow(hot-path-alloc): amortized heap growth, capacity sticks across laps.
  heap_.resize(i + 1);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];  // move the hole up
    i = parent;
  }
  heap_[i] = e;
}

void Scheduler::heap_pop() const {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t m = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (earlier(heap_[c], heap_[m])) m = c;
    }
    if (!earlier(heap_[m], last)) break;
    heap_[i] = heap_[m];  // move the hole down
    i = m;
  }
  heap_[i] = last;
}

Scheduler::Handle Scheduler::push_event(SimTime when, std::uint32_t slot) {
  HeapEntry e{when, next_seq_++, slot, slots_[slot].gen};
  ++live_;
  if (in_step_) {
    // ssr-lint: allow(hot-path-alloc): staging buffer keeps its capacity across steps.
    staged_.push_back(e);
  } else {
    heap_push(e);
  }
  return Handle(this, slot, e.gen);
}

Scheduler::Handle Scheduler::schedule_after(SimTime delay, Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

Scheduler::Handle Scheduler::schedule_at(SimTime when, Action action) {
  SSR_ASSERT(when >= now_, "cannot schedule into the past");
  const std::uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  s.kind = Kind::kClosure;
  s.fn = std::move(action);
  return push_event(when, slot);
}

Scheduler::Handle Scheduler::schedule_packet_after(SimTime delay,
                                                   PacketSink* sink,
                                                   wire::Bytes payload) {
  const std::uint32_t slot = alloc_slot();
  Slot& s = slots_[slot];
  s.kind = Kind::kPacket;
  s.sink = sink;
  s.payload = std::move(payload);
  return push_event(now_ + delay, slot);
}

void Scheduler::cancel_event(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= slots_.size() || slots_[slot].gen != gen) return;  // stale
  free_slot(slot);
}

bool Scheduler::event_pending(std::uint32_t slot, std::uint32_t gen) const {
  return slot < slots_.size() && slots_[slot].gen == gen;
}

void Scheduler::flush_staged() const {
  for (const HeapEntry& e : staged_) heap_push(e);
  staged_.clear();
}

void Scheduler::drop_tombstones() const {
  // Popping the stale prefix is sufficient for an exact emptiness test: if
  // the new top is live the heap is non-empty regardless of tombstones
  // buried behind it.
  while (!heap_.empty() && !entry_live(heap_.front())) heap_pop();
}

bool Scheduler::step(SimTime deadline) {
  flush_staged();
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    if (top.when > deadline) return false;
    heap_pop();
    if (!entry_live(top)) continue;  // cancelled
    now_ = top.when;
    ++executed_;
    Slot& s = slots_[top.slot];
    // Move the work out and free the slot *before* executing, mirroring the
    // old `*alive = false` semantics: while the action runs its own handle
    // is no longer pending, and rescheduling may reuse the slot safely.
    in_step_ = true;
    if (s.kind == Kind::kPacket) {
      PacketSink* sink = s.sink;
      wire::Bytes payload = std::move(s.payload);
      s.payload = wire::Bytes();
      free_slot(top.slot);
      sink->deliver_packet(std::move(payload));
    } else {
      Action fn = std::move(s.fn);
      s.fn = nullptr;
      free_slot(top.slot);
      fn();
    }
    in_step_ = false;
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  while (step(deadline)) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace ssr::sim
