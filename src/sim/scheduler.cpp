#include "sim/scheduler.hpp"

#include "util/assert.hpp"

namespace ssr::sim {

Scheduler::Handle Scheduler::schedule_after(SimTime delay, Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

Scheduler::Handle Scheduler::schedule_at(SimTime when, Action action) {
  SSR_ASSERT(when >= now_, "cannot schedule into the past");
  Event ev;
  ev.when = when;
  ev.seq = next_seq_++;
  ev.action = std::move(action);
  ev.alive = std::make_shared<bool>(true);
  Handle h(ev.alive);
  queue_.push(std::move(ev));
  return h;
}

bool Scheduler::step(SimTime deadline) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.when > deadline) return false;
    // Copy out before popping; the action may schedule new events.
    Event ev = top;
    queue_.pop();
    if (!*ev.alive) continue;  // cancelled
    now_ = ev.when;
    *ev.alive = false;
    ++executed_;
    ev.action();
    return true;
  }
  return false;
}

void Scheduler::drop_tombstones() const {
  // Popping the cancelled prefix is sufficient for an exact emptiness test:
  // if the new top is live the queue is non-empty regardless of tombstones
  // buried behind it.
  while (!queue_.empty() && !*queue_.top().alive) queue_.pop();
}

std::uint64_t Scheduler::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  while (step(deadline)) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace ssr::sim
