#include "label/label.hpp"

#include <algorithm>

namespace ssr::label {

bool Label::contains_antisting(std::uint32_t s) const {
  return std::binary_search(antistings.begin(), antistings.end(), s);
}

bool Label::cancels(const Label& small, const Label& big) {
  return big.contains_antisting(small.sting) &&
         !small.contains_antisting(big.sting);
}

bool Label::lb_less(const Label& a, const Label& b) {
  if (a.creator != b.creator) return a.creator < b.creator;
  return cancels(a, b);
}

bool Label::total_less(const Label& a, const Label& b) {
  if (a.creator != b.creator) return a.creator < b.creator;
  if (cancels(a, b)) return true;
  if (cancels(b, a)) return false;
  // Incomparable: deterministic tie-break (transient only).
  if (a.sting != b.sting) return a.sting < b.sting;
  return a.antistings < b.antistings;
}

Label Label::next_label(NodeId creator, std::span<const Label* const> known,
                        Rng& rng) {
  Label next;
  next.creator = creator;
  // The fresh label escapes to the caller, so its antisting storage is one
  // deliberate allocation — reserved up-front to its bound so push_back
  // below never reallocates.
  // ssr-lint: allow(hot-path-alloc) the minted label escapes; single
  // reserve to the kAntistings bound.
  next.antistings.reserve(kAntistings);
  // Antistings: the stings of the most recent known labels (front of the
  // queue first), capped at kAntistings.
  for (const Label* l : known) {
    if (next.antistings.size() >= kAntistings) break;
    if (l->creator != creator) continue;
    // ssr-lint: allow(hot-path-alloc) within the reserve above.
    next.antistings.push_back(l->sting);
  }
  std::sort(next.antistings.begin(), next.antistings.end());
  next.antistings.erase(
      std::unique(next.antistings.begin(), next.antistings.end()),
      next.antistings.end());
  // Fresh sting: outside every known antisting set and our own.
  auto forbidden = [&](std::uint32_t s) {
    if (std::binary_search(next.antistings.begin(), next.antistings.end(), s))
      return true;
    for (const Label* l : known) {
      if (l->creator == creator && l->contains_antisting(s)) return true;
    }
    return false;
  };
  std::uint32_t sting =
      static_cast<std::uint32_t>(rng.next_below(kStingDomain));
  // The forbidden set is tiny compared to the domain; a handful of draws
  // suffices, with a deterministic linear fallback for completeness.
  for (int attempt = 0; attempt < 64 && forbidden(sting); ++attempt) {
    sting = static_cast<std::uint32_t>(rng.next_below(kStingDomain));
  }
  while (forbidden(sting)) sting = (sting + 1) % kStingDomain;
  next.sting = sting;
  return next;
}

Label Label::next_label(NodeId creator, const std::vector<Label>& known,
                        Rng& rng) {
  // Compatibility wrapper for callers holding labels by value (tools,
  // tests, fault injection); the stores' mint paths use the span overload
  // over an arena-backed pointer scratch instead.
  // ssr-lint: allow(hot-path-alloc) compat shim off the mint fast path.
  std::vector<const Label*> ptrs;
  // ssr-lint: allow(hot-path-alloc) single exact reserve in the shim.
  ptrs.reserve(known.size());
  // ssr-lint: allow(hot-path-alloc) within the reserve above.
  for (const Label& l : known) ptrs.push_back(&l);
  return next_label(creator, std::span<const Label* const>(ptrs), rng);
}

void Label::encode(wire::Writer& w) const {
  w.node_id(creator);
  w.u32(sting);
  w.u16(static_cast<std::uint16_t>(antistings.size()));
  for (std::uint32_t a : antistings) w.u32(a);
}

std::optional<Label> Label::decode(wire::Reader& r) {
  Label l;
  l.creator = r.node_id();
  l.sting = r.u32() % kStingDomain;
  const std::uint16_t n = r.u16();
  if (n > kAntistings) return std::nullopt;  // malformed / corrupted
  l.antistings.reserve(n);
  // ssr-lint: allow(hot-path-alloc) within the exact reserve above; the
  // decoded label escapes to the caller.
  for (std::uint16_t i = 0; i < n; ++i) l.antistings.push_back(r.u32());
  std::sort(l.antistings.begin(), l.antistings.end());
  l.antistings.erase(std::unique(l.antistings.begin(), l.antistings.end()),
                     l.antistings.end());
  return l;
}

std::string Label::to_string() const {
  return "L(" + std::to_string(creator) + "," + std::to_string(sting) + ",#" +
         std::to_string(antistings.size()) + ")";
}

void LabelPair::encode(wire::Writer& w) const {
  w.boolean(ml.has_value());
  if (ml) ml->encode(w);
  w.boolean(cl.has_value());
  if (cl) cl->encode(w);
}

LabelPair LabelPair::decode(wire::Reader& r) {
  LabelPair p;
  if (r.boolean()) p.ml = Label::decode(r);
  if (r.boolean()) p.cl = Label::decode(r);
  return p;
}

std::string LabelPair::to_string() const {
  return "<" + (ml ? ml->to_string() : "⊥") + "," +
         (cl ? cl->to_string() : "⊥") + ">";
}

}  // namespace ssr::label
