#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"
#include "wire/wire.hpp"

namespace ssr::label {

/// Bounded epoch label of the labeling scheme (paper §4.1, ported from the
/// authors' static-membership algorithm [11]; Israeli–Li style).
///
/// A label is ⟨creator, sting, Antistings⟩ with a fixed-size antisting set
/// drawn from a bounded domain. Labels of different creators are totally
/// ordered by creator identifier; labels of the same creator obey the
/// cancellation order: a ≺lb b ⇔ a.sting ∈ b.antistings ∧ b.sting ∉
/// a.antistings — so same-creator labels can be *incomparable*, and a
/// processor aware of a set of its own labels can always create a greater
/// one (nextLabel()).
struct Label {
  NodeId creator = kNoNode;
  std::uint32_t sting = 0;
  std::vector<std::uint32_t> antistings;  // sorted, unique, size ≤ kAntistings

  /// Antisting set size: must be at least the own-queue capacity so that
  /// nextLabel() can dominate every stored label (see LabelAlgoConfig).
  static constexpr std::size_t kAntistings = 24;
  /// Bounded sting domain (finite ⇒ bounded label size).
  static constexpr std::uint32_t kStingDomain = 0x7FFFFFFF;

  bool contains_antisting(std::uint32_t s) const;

  friend bool operator==(const Label&, const Label&) = default;

  /// Same-creator cancellation order (see class comment). Asymmetric;
  /// returns false for incomparable pairs.
  static bool cancels(const Label& small, const Label& big);

  /// ≺lb, as the paper compares arbitrary labels: creator id first, then
  /// the cancellation order for equal creators.
  static bool lb_less(const Label& a, const Label& b);
  /// Total extension of ≺lb used for deterministic max-selection among
  /// transiently incomparable labels (the cancellation machinery removes
  /// the losers eventually).
  static bool total_less(const Label& a, const Label& b);

  /// Creates a label greater (under ≺lb) than every label in `known` with
  /// the same creator: antistings cover their stings, the fresh sting avoids
  /// all of their antistings.
  ///
  /// The span overload is the core: it reads candidates through pointers so
  /// callers that already own the labels (the stores' mint paths) can pass
  /// an arena-backed pointer scratch list instead of copying whole labels —
  /// candidate iteration order, and therefore every RNG draw, is identical
  /// between the two overloads.
  static Label next_label(NodeId creator, std::span<const Label* const> known,
                          Rng& rng);
  static Label next_label(NodeId creator, const std::vector<Label>& known,
                          Rng& rng);

  void encode(wire::Writer& w) const;
  static std::optional<Label> decode(wire::Reader& r);

  std::string to_string() const;
};

/// ⟨ml, cl⟩ — a label and optionally the label that cancels it. `cl` null
/// means the label is legit (usable); a non-null `cl` is evidence that `ml`
/// is not maximal (cl ⊀lb ml).
struct LabelPair {
  std::optional<Label> ml;
  std::optional<Label> cl;

  static LabelPair null() { return LabelPair{}; }
  static LabelPair of(Label l) { return LabelPair{std::move(l), std::nullopt}; }

  bool has_main() const { return ml.has_value(); }
  bool legit() const { return ml.has_value() && !cl.has_value(); }
  NodeId creator() const { return ml ? ml->creator : kNoNode; }
  const Label& main() const { return *ml; }
  bool same_main(const LabelPair& o) const {
    return ml.has_value() && o.ml.has_value() && *ml == *o.ml;
  }
  /// Cancels this pair using `evidence` (a label that is not below ml).
  void cancel_with(const Label& evidence) { cl = evidence; }

  /// Duplicate resolution inside a queue: prefer the cancelled copy (it
  /// carries strictly more information).
  LabelPair merged_with(const LabelPair& o) const {
    return legit() ? o : *this;
  }
  /// In-place merged_with: `*this = merged_with(o)` without the temporary,
  /// so a no-op merge (the steady state) performs no allocation.
  void merge_from(const LabelPair& o) {
    if (legit()) *this = o;
  }

  /// cleanLP(): true if ml or cl was created by a non-member.
  bool has_foreign_creator(const IdSet& members) const {
    if (ml && !members.contains(ml->creator)) return true;
    if (cl && !members.contains(cl->creator)) return true;
    return false;
  }

  /// Deterministic total order on the main label (for max-selection).
  static bool total_less(const LabelPair& a, const LabelPair& b) {
    if (!a.has_main()) return b.has_main();
    if (!b.has_main()) return false;
    return Label::total_less(*a.ml, *b.ml);
  }

  friend bool operator==(const LabelPair&, const LabelPair&) = default;

  void encode(wire::Writer& w) const;
  static LabelPair decode(wire::Reader& r);

  std::string to_string() const;
};

}  // namespace ssr::label
