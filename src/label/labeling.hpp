#pragma once

#include "dlink/link_mux.hpp"
#include "label/label_store.hpp"
#include "reconf/recsa.hpp"

namespace ssr::label {

struct LabelingStats {
  std::uint64_t rebuilds = 0;   // configuration changes absorbed
  std::uint64_t exchanges = 0;  // label messages processed
};

/// Self-stabilizing labeling algorithm for reconfiguration — Algorithm 4.1.
///
/// Runs only on configuration members and only while no reconfiguration is
/// taking place. Members continuously exchange ⟨max[i], max[k]⟩ pairs; the
/// receipt action (Algorithm 4.2, `LabelStore`) maintains the queues and
/// converges every member to one globally maximal label (Theorem 4.4).
/// After a reconfiguration completes, the structures are rebuilt for the
/// new member set and all queues are emptied, which is what makes the
/// post-reconfiguration bound O(N²) instead of O(N(N²+m)).
class Labeling {
 public:
  Labeling(dlink::LinkMux& mux, reconf::RecSA& recsa, NodeId self,
           StoreConfig cfg, Rng rng);

  /// One do-forever iteration: reconfiguration detection + transmission.
  void tick();

  /// The local maximal label pair (legit during steady states).
  const LabelPair& local_max() { return store_.local_max(); }
  LabelStore& store() { return store_; }
  bool member() const { return member_; }
  const LabelingStats& stats() const { return stats_; }

 private:
  /// confChange(): the label structures disagree with getConfig().
  bool conf_change(const reconf::ConfigValue& cur) const;
  void on_message(NodeId from, const wire::Bytes& data);
  wire::Bytes encode_exchange(NodeId peer);

  dlink::LinkMux& mux_;
  reconf::RecSA& recsa_;
  NodeId self_;
  LabelStore store_;
  bool member_ = false;
  LabelingStats stats_;
};

}  // namespace ssr::label
