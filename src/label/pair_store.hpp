#pragma once

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "label/label.hpp"
#include "util/id_set.hpp"

namespace ssr::label {

struct StoreConfig {
  /// storedLabels[i] queue bound — the paper uses (v(v²+m))+v; we size the
  /// antisting set to the queue bound instead so that nextLabel() always
  /// dominates everything stored (DESIGN.md §3).
  std::size_t own_queue_capacity = Label::kAntistings;
  /// storedLabels[j], j ≠ i: bound v+m in the paper.
  std::size_t peer_queue_capacity = 12;
};

struct StoreStats {
  std::uint64_t created = 0;       // nextLabel() invocations
  std::uint64_t cancellations = 0; // pairs cancelled by stored evidence
  std::uint64_t stale_flushes = 0; // emptyAllQueues() due to staleInfo()
};

/// The receipt action of Algorithm 4.2, generic over the pair type: the
/// paper runs the *same* maintenance for label pairs (Algorithm 4.1/4.2)
/// and counter pairs (Algorithm 4.3, "adjusted for counter structures").
///
/// Requirements on P: has_main(), legit(), creator(), main() → Label,
/// same_main(P), cancel_with(Label), merge_from(P) (in-place duplicate
/// resolution), has_foreign_creator(IdSet), static total_less(P,P),
/// static null().
template <class P>
class PairStore {
 public:
  /// Creates a fresh pair greater than all `known` same-creator pairs.
  /// Takes the stored queue directly (rather than a vector copy of it) so
  /// the steady-state maintenance path never materializes temporaries.
  // ssr-lint: allow(hot-path-alloc) one type-erased hook bound at store
  // construction, invoked only when a label is minted — not per receipt.
  using CreateFn = std::function<P(const std::deque<P>& known)>;

  PairStore(NodeId self, StoreConfig cfg, CreateFn create)
      : self_(self), cfg_(cfg), create_(std::move(create)) {
    // ssr-lint: allow(hot-path-alloc) constructor-time membership seed.
    members_.insert(self_);
  }

  /// Rebuild for a new configuration (operator rebuild(v) of Alg. 4.1):
  /// non-member structures are dropped and every queue is emptied.
  void rebuild(const IdSet& members) {
    members_ = members;
    stored_.clear();
    for (auto it = max_.begin(); it != max_.end();) {
      if (!members_.contains(it->first)) {
        it = max_.erase(it);
      } else {
        ++it;
      }
    }
    clean_max(members);
  }

  void empty_all_queues() { stored_.clear(); }

  /// cleanMax(): voids max entries holding labels by non-member creators.
  void clean_max(const IdSet& members) {
    for (auto& [id, pair] : max_) {
      (void)id;
      if (pair.has_foreign_creator(members)) pair = P::null();
    }
  }

  /// The labelReceiptAction / counterReceiptAction. `from == self` with
  /// null arguments acts as the argument-less refresh.
  void receipt(const P& sent_max, const P& last_sent, NodeId from) {
    if (from != self_) max_[from] = sent_max;  // line 18
    // Line 19: the peer echoed a cancellation of our own max.
    P& mine = max_[self_];
    if (last_sent.has_main() && !last_sent.legit() && mine.has_main() &&
        mine.same_main(last_sent)) {
      mine = last_sent;
    }
    maintain();
  }

  /// Argument-less maintenance (used after rebuilds and by refresh loops).
  void refresh() { maintain(); }

  const P& local_max() {
    return max_[self_];
  }
  const P* max_entry(NodeId j) const {
    auto it = max_.find(j);
    return it == max_.end() ? nullptr : &it->second;
  }
  const std::deque<P>* queue(NodeId j) const {
    auto it = stored_.find(j);
    return it == stored_.end() ? nullptr : &it->second;
  }
  const IdSet& members() const { return members_; }
  const StoreStats& stats() const { return stats_; }

  /// Fault injection: plants an arbitrary pair in a queue / max entry.
  // ssr-lint: allow(hot-path-alloc) test-only fault injection, never on
  // the maintenance path.
  void inject_stored(NodeId j, P pair) { stored_[j].push_front(std::move(pair)); }
  void inject_max(NodeId j, P pair) { max_[j] = std::move(pair); }

  /// Mutable sweep over the max entries (the counter layer cancels
  /// exhausted counters before maintenance — cancelExhaustedMaxC()).
  // ssr-lint: allow(hot-path-alloc) visitor taken by const reference; a
  // capture-light lambda binds to it without heap allocation.
  void for_each_max(const std::function<void(NodeId, P&)>& fn) {
    for (auto& [j, mp] : max_) fn(j, mp);
  }
  // ssr-lint: allow(hot-path-alloc) same visitor idiom as for_each_max.
  void for_each_stored(const std::function<void(NodeId, P&)>& fn) {
    for (auto& [j, q] : stored_) {
      for (P& lp : q) fn(j, lp);
    }
  }

 private:
  std::deque<P>& labels_of(NodeId creator) { return stored_[creator]; }

  bool stale_info() const {
    for (const auto& [j, q] : stored_) {
      bool legit_seen = false;
      for (const P& lp : q) {
        if (!lp.has_main() || lp.creator() != j) return true;
        if (lp.legit()) {
          if (legit_seen) return true;  // double: two legit in one queue
          legit_seen = true;
        }
      }
      // double: two copies of the same main label.
      for (std::size_t a = 0; a < q.size(); ++a) {
        for (std::size_t b = a + 1; b < q.size(); ++b) {
          if (q[a].same_main(q[b])) return true;
        }
      }
    }
    return false;
  }

  void dedupe(NodeId j, std::deque<P>& q) {
    (void)j;
    // In place: elements before `i` are the already-deduped prefix (the
    // "kept" list); a later same-main element merges into the earliest
    // occurrence and is erased. Mirrors the old copy-out pass exactly —
    // same merge order, same survivor order — without the temporary deque,
    // so steady-state maintenance stays allocation-free.
    for (std::size_t i = 0; i < q.size();) {
      bool merged = false;
      for (std::size_t k = 0; k < i; ++k) {
        if (q[k].same_main(q[i])) {
          q[k].merge_from(q[i]);
          merged = true;
          break;
        }
      }
      if (merged) {
        q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    // Two distinct legit labels by one creator: keep the most recent (queue
    // front), cancel is produced later by the notgeq pass if warranted.
    bool legit_seen = false;
    for (P& lp : q) {
      if (!lp.legit()) continue;
      if (legit_seen) {
        // Cancel the older legit with the newer as evidence.
        for (const P& ev : q) {
          if (ev.legit() && !(&ev == &lp)) {
            lp.cancel_with(ev.main());
            break;
          }
        }
      }
      legit_seen = true;
    }
  }

  void enforce_capacity(NodeId j, std::deque<P>& q) {
    const std::size_t cap =
        j == self_ ? cfg_.own_queue_capacity : cfg_.peer_queue_capacity;
    while (q.size() > cap) q.pop_back();
  }

  void maintain() {
    // staleInfo() → emptyAllQueues() (line 20).
    if (stale_info()) {
      ++stats_.stale_flushes;
      stored_.clear();
    }
    // Line 21: record every max entry in its creator's queue. A same-main
    // entry is merged instead of duplicated (the counter variant's enqueue:
    // "only maintains the instance with the greatest counter w.r.t. ≺ct").
    for (auto& [j, mp] : max_) {
      (void)j;
      if (!mp.has_main()) continue;
      if (!members_.contains(mp.creator())) continue;
      auto& q = labels_of(mp.creator());
      bool exists = false;
      for (P& lp : q) {
        if (lp.same_main(mp)) {
          lp.merge_from(mp);
          exists = true;
          break;
        }
      }
      if (!exists) {
        // ssr-lint: allow(hot-path-alloc) steady state merges in place
        // (same_main above); a new front entry only appears when a label
        // actually changes, and deque growth is bounded by enforce_capacity
        // so freed chunks recycle through the allocator.
        q.push_front(mp);
        enforce_capacity(mp.creator(), q);
      }
    }
    // Line 22: cancel stored legit pairs that are provably not maximal.
    for (auto& [j, q] : stored_) {
      (void)j;
      for (P& lp : q) {
        if (!lp.legit()) continue;
        for (const P& other : q) {
          if (other.same_main(lp)) continue;
          if (!other.has_main()) continue;
          if (!Label::cancels(other.main(), lp.main())) {
            // other ⋠lb lp fails: `other` is not below lp → evidence.
            lp.cancel_with(other.main());
            ++stats_.cancellations;
            break;
          }
        }
      }
    }
    // Line 23: propagate cancellations carried by max entries into queues.
    for (auto& [j, mp] : max_) {
      (void)j;
      if (!mp.has_main() || mp.legit()) continue;
      if (!members_.contains(mp.creator())) continue;
      auto& q = labels_of(mp.creator());
      for (P& lp : q) {
        if (lp.legit() && lp.same_main(mp)) lp = mp;
      }
    }
    // Line 24: remove doubles.
    for (auto& [j, q] : stored_) dedupe(j, q);
    // Line 25: apply stored cancellation evidence to legit max entries.
    for (auto& [j, mp] : max_) {
      (void)j;
      if (!mp.has_main() || !mp.legit()) continue;
      if (!members_.contains(mp.creator())) continue;
      auto& q = labels_of(mp.creator());
      for (const P& lp : q) {
        if (!lp.legit() && lp.same_main(mp)) {
          mp = lp;
          break;
        }
      }
    }
    // Lines 26–27: adopt the maximal legit label, or fall back to our own.
    const P* best_ptr = nullptr;
    for (const auto& [j, mp] : max_) {
      (void)j;
      if (!mp.legit()) continue;
      if (!members_.contains(mp.creator())) continue;
      if (best_ptr == nullptr || P::total_less(*best_ptr, mp)) best_ptr = &mp;
    }
    if (best_ptr != nullptr) {
      // Copy before mutating max_ — into a reusable scratch slot whose
      // heap blocks (antisting vectors, optionals) persist across calls,
      // so the adoption step allocates only while the adopted label grows.
      adopt_scratch_ = *best_ptr;
      const P& best = adopt_scratch_;
      max_[self_] = best;
      // Epoch-refresh rule (DESIGN.md §3): if one of our *own* cancelled
      // labels still compares above the adopted best (an exhausted epoch we
      // created), no other processor can mint a label restoring the global
      // order — only a fresh label of ours dominates it. Mint one. The
      // fresh label covers our cancelled stings, so this fires at most once
      // per cancellation event.
      bool own_cancelled_above = false;
      for (const P& lp : labels_of(self_)) {
        if (!lp.has_main() || lp.legit()) continue;
        if (P::total_less(best, lp)) {
          own_cancelled_above = true;
          break;
        }
      }
      if (own_cancelled_above) mint_fresh();
    } else {
      use_own();
    }
  }

  void use_own() {
    auto& q = labels_of(self_);
    const P* best = nullptr;
    for (const P& lp : q) {
      if (!lp.legit()) continue;
      if (best == nullptr || P::total_less(*best, lp)) best = &lp;
    }
    if (best != nullptr) {
      max_[self_] = *best;
      return;
    }
    mint_fresh();
  }

  void mint_fresh() {
    auto& q = labels_of(self_);
    P fresh = create_(q);
    ++stats_.created;
    // ssr-lint: allow(hot-path-alloc) minting is the rare event the store
    // exists to make rare (StoreStats::created counts it); the steady-state
    // maintenance path never reaches here.
    q.push_front(fresh);
    enforce_capacity(self_, q);
    max_[self_] = std::move(fresh);
  }

  NodeId self_;
  StoreConfig cfg_;
  CreateFn create_;
  IdSet members_;
  std::map<NodeId, P> max_;              // max[] / maxC[]
  std::map<NodeId, std::deque<P>> stored_;  // storedLabels[] / storedCnts[]
  P adopt_scratch_ = P::null();          // reused by the adoption step
  StoreStats stats_;
};

}  // namespace ssr::label
