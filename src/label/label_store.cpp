#include "label/label_store.hpp"

#include <span>

namespace ssr::label {

LabelStore::LabelStore(NodeId self, StoreConfig cfg, Rng rng)
    : PairStore<LabelPair>(self, cfg,
                           [this, self](const std::deque<LabelPair>& known) {
                             return create(self, known);
                           }),
      rng_(rng) {}

LabelPair LabelStore::create(NodeId self, const std::deque<LabelPair>& known) {
  // nextLabel() considers both ml and cl of every stored own pair
  // (Algorithm 4.2, line 16 comment). The candidate list is pointers into
  // the queue, built in arena scratch that is rewound per mint: after the
  // arena's high-water mark is reached (bounded by the queue capacity),
  // this path no longer touches the heap.
  arena_.reset();
  std::vector<const Label*, util::ArenaAllocator<const Label*>> labels{
      util::ArenaAllocator<const Label*>(arena_)};
  labels.reserve(2 * known.size());
  for (const LabelPair& lp : known) {
    // ssr-lint: allow(hot-path-alloc) arena-backed scratch vector: growth
    // bumps the mint arena, not the heap (exact reserve above).
    if (lp.ml) labels.push_back(&*lp.ml);
    // ssr-lint: allow(hot-path-alloc) same arena-backed scratch.
    if (lp.cl) labels.push_back(&*lp.cl);
  }
  return LabelPair::of(Label::next_label(
      self, std::span<const Label* const>(labels.data(), labels.size()),
      rng_));
}

}  // namespace ssr::label
