#include "label/label_store.hpp"

namespace ssr::label {

LabelStore::LabelStore(NodeId self, StoreConfig cfg, Rng rng)
    : PairStore<LabelPair>(self, cfg,
                           [this, self](const std::deque<LabelPair>& known) {
                             return create(self, rng_, known);
                           }),
      rng_(rng) {}

LabelPair LabelStore::create(NodeId self, Rng& rng,
                             const std::deque<LabelPair>& known) {
  // nextLabel() considers both ml and cl of every stored own pair
  // (Algorithm 4.2, line 16 comment).
  std::vector<Label> labels;
  for (const LabelPair& lp : known) {
    if (lp.ml) labels.push_back(*lp.ml);
    if (lp.cl) labels.push_back(*lp.cl);
  }
  return LabelPair::of(Label::next_label(self, labels, rng));
}

}  // namespace ssr::label
