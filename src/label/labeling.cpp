#include "label/labeling.hpp"

namespace ssr::label {

namespace {
/// cleanLP(x) — voids a pair naming any non-member creator (Alg. 4.1).
LabelPair clean_lp(LabelPair x, const IdSet& members) {
  if (x.has_foreign_creator(members)) return LabelPair::null();
  return x;
}
}  // namespace

Labeling::Labeling(dlink::LinkMux& mux, reconf::RecSA& recsa, NodeId self,
                   StoreConfig cfg, Rng rng)
    : mux_(mux), recsa_(recsa), self_(self), store_(self, cfg, rng) {
  mux_.subscribe(dlink::kPortLabel, [this](NodeId from, const wire::Bytes& d) {
    on_message(from, d);
  });
}

bool Labeling::conf_change(const reconf::ConfigValue& cur) const {
  return !cur.is_proper() || !(cur.ids() == store_.members());
}

wire::Bytes Labeling::encode_exchange(NodeId peer) {
  wire::Writer w;
  // transmit ⟨max[i], max[k]⟩ ← ⟨cleanLP(max[i]), cleanLP(max[k])⟩ (line 17).
  LabelPair mine = clean_lp(store_.local_max(), store_.members());
  const LabelPair* theirs = store_.max_entry(peer);
  LabelPair echo =
      theirs ? clean_lp(*theirs, store_.members()) : LabelPair::null();
  mine.encode(w);
  echo.encode(w);
  return w.take();
}

void Labeling::tick() {
  const reconf::ConfigValue& cur = recsa_.get_config_ref();
  const bool no_reco = recsa_.no_reco();

  member_ = cur.is_proper() && cur.ids().contains(self_) &&
            recsa_.is_participant();
  if (!member_) {
    mux_.clear_state_all(dlink::kPortLabel);
    return;
  }

  // Lines 9–14: absorb a completed reconfiguration.
  if (no_reco && conf_change(cur)) {
    ++stats_.rebuilds;
    store_.rebuild(cur.ids());
    store_.empty_all_queues();
    store_.clean_max(cur.ids());
    store_.refresh();  // labelReceiptAction(⟨⊥, max[i], pi⟩)
  }

  // Lines 15–17: transmit to every other member, unless reconfiguring.
  if (no_reco && !conf_change(cur)) {
    for (NodeId k : store_.members()) {
      if (k == self_) continue;
      mux_.publish_state(dlink::kPortLabel, k, encode_exchange(k));
    }
  }
  mux_.for_each_peer([&](NodeId peer) {
    if (!store_.members().contains(peer))
      mux_.clear_state(dlink::kPortLabel, peer);
  });
}

void Labeling::on_message(NodeId from, const wire::Bytes& data) {
  // Lines 18–22: receive ⟨sentMax, lastSent⟩ from a member.
  if (!member_) return;
  if (!store_.members().contains(from)) return;
  const reconf::ConfigValue& cur = recsa_.get_config_ref();
  if (!recsa_.no_reco() || conf_change(cur)) return;
  wire::Reader r(data);
  LabelPair sent_max = LabelPair::decode(r);
  LabelPair last_sent = LabelPair::decode(r);
  if (!r.ok() || !r.exhausted()) return;
  store_.clean_max(store_.members());
  sent_max = clean_lp(sent_max, store_.members());
  last_sent = clean_lp(last_sent, store_.members());
  ++stats_.exchanges;
  store_.receipt(sent_max, last_sent, from);
}

}  // namespace ssr::label
