#pragma once

#include "label/pair_store.hpp"
#include "util/arena.hpp"

namespace ssr::label {

/// Concrete Algorithm 4.2 store over label pairs.
class LabelStore : public PairStore<LabelPair> {
 public:
  LabelStore(NodeId self, StoreConfig cfg, Rng rng);

  /// Mint-scratch arena telemetry (capacity growth stops once the first
  /// mint establishes the high-water mark — the reset-reuse property the
  /// arena unit tests pin; pair_store_test's MintScratchStopsGrowing
  /// checks it end to end through this accessor).
  const util::Arena& mint_arena() const { return arena_; }

 private:
  LabelPair create(NodeId self, const std::deque<LabelPair>& known);
  Rng rng_;
  /// Backs the candidate pointer list built per mint; reset() at the top of
  /// every create() call, so after the first few mints the bootstrap path
  /// performs no heap allocation for its scratch work.
  util::Arena arena_;
};

}  // namespace ssr::label
