#pragma once

#include "label/pair_store.hpp"

namespace ssr::label {

/// Concrete Algorithm 4.2 store over label pairs.
class LabelStore : public PairStore<LabelPair> {
 public:
  LabelStore(NodeId self, StoreConfig cfg, Rng rng);

 private:
  static LabelPair create(NodeId self, Rng& rng,
                          const std::deque<LabelPair>& known);
  Rng rng_;
};

}  // namespace ssr::label
