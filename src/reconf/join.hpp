#pragma once

#include <functional>
#include <map>

#include "reconf/recsa.hpp"

namespace ssr::reconf {

struct JoinStats {
  std::uint64_t joined = 0;            // successful participate() via passes
  std::uint64_t bootstrap_resets = 0;  // collapse path: participate() → ⊥
  std::uint64_t passes_granted = 0;    // replies sent with pass = true
};

struct JoinConfig {
  /// Ticks of quiet (noReco, zero visible participants, stable FD) a joiner
  /// waits before concluding the configuration completely collapsed and
  /// seeding the brute-force reset (paper §3.1.1 / §3.3; the paper leaves
  /// the invoker of the collapse path unspecified — see DESIGN.md §3).
  unsigned bootstrap_patience_ticks = 200;
};

/// Joining mechanism — Algorithm 3.3.
///
/// Both sides live here: a non-participant runs the joiner's loop (reset
/// app state, collect passes from a majority of configuration members, then
/// participate()); a participant answers join requests with
/// ⟨passQuery(), state⟩ when no reconfiguration is taking place. Passes are
/// published continuously on the token links, so they are retracted
/// automatically when a reconfiguration starts (paper, Claim 3.24).
class Joiner {
 public:
  /// Application admission control (paper Fig. 1: passQuery()).
  using PassQuery = std::function<bool()>;
  /// Application state snapshot handed to joiners.
  using StateProvider = std::function<wire::Bytes()>;
  /// resetVars(): default-initialize application state (line 7).
  using ResetVars = std::function<void()>;
  /// initVars(states): initialize application state from the states sent by
  /// the pass-granting configuration members (line 11).
  using InitVars = std::function<void(const std::vector<wire::Bytes>&)>;

  Joiner(dlink::LinkMux& mux, RecSA& recsa, NodeId self, JoinConfig cfg,
         PassQuery pass_query, StateProvider state_provider,
         ResetVars reset_vars, InitVars init_vars);

  /// One iteration of the joiner/participant loop.
  void tick();

  const JoinStats& stats() const { return stats_; }
  bool waiting_to_join() const { return !recsa_.is_participant(); }

 private:
  struct PassRecord {
    bool pass = false;
    wire::Bytes state;
  };

  void on_message(NodeId from, const wire::Bytes& data);
  void joiner_tick();
  void participant_tick();

  dlink::LinkMux& mux_;
  RecSA& recsa_;
  NodeId self_;
  JoinConfig cfg_;
  PassQuery pass_query_;
  StateProvider state_provider_;
  ResetVars reset_vars_;
  InitVars init_vars_;

  bool was_participant_ = false;
  std::map<NodeId, PassRecord> passes_;   // joiner side: pass[]
  std::map<NodeId, bool> join_requests_;  // participant side: active requests
  unsigned quiet_ticks_ = 0;
  JoinStats stats_;
};

}  // namespace ssr::reconf
