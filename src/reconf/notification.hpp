#pragma once

#include <string>

#include "util/id_set.hpp"
#include "wire/wire.hpp"

namespace ssr::reconf {

/// A configuration-replacement notification `prp = ⟨phase, set⟩`
/// (Algorithm 3.1). `phase ∈ {0,1,2}` drives the Fig. 2 automaton; `set` is
/// the proposed configuration or ⊥ ("no value"). The default notification
/// dfltNtf = ⟨0, ⊥⟩ means "no proposal".
struct Notification {
  std::uint8_t phase = 0;
  bool has_set = false;
  IdSet set;

  /// dfltNtf = ⟨0,⊥⟩.
  static Notification none() { return Notification{}; }
  static Notification proposal(std::uint8_t phase, IdSet ids) {
    return Notification{phase, true, std::move(ids)};
  }

  bool is_default() const { return phase == 0 && !has_set; }

  /// degree = 2·phase + all-flag (paper macro `degree(k)`).
  int degree(bool all_flag) const { return 2 * phase + (all_flag ? 1 : 0); }

  friend bool operator==(const Notification&, const Notification&) = default;

  /// The paper's ≤lex: phase first, then the proposed set (ascending-id
  /// tuple order). Used by maxNtf() to select a single proposal
  /// deterministically and uniformly.
  static bool lex_less(const Notification& a, const Notification& b);

  void encode(wire::Writer& w) const;
  static Notification decode(wire::Reader& r);

  std::string to_string() const;
};

}  // namespace ssr::reconf
