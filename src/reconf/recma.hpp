#pragma once

#include <functional>
#include <map>
#include <optional>

#include "reconf/recsa.hpp"

namespace ssr::reconf {

struct RecMAStats {
  std::uint64_t majority_loss_triggers = 0;  // line 13 estab() calls
  std::uint64_t eval_conf_triggers = 0;      // line 17 estab() calls
  std::uint64_t flag_flushes = 0;
};

/// Reconfiguration Management — Algorithm 3.2.
///
/// Triggers a delicate reconfiguration through recSA's estab() when
/// (i) a majority of the configuration appears collapsed and the local core
/// unanimously agrees (lines 12–14), or (ii) the application's prediction
/// function advises reconfiguration and a majority of members concurs
/// (lines 16–18). The prediction function is injected (`EvalConf`); the
/// default used by the examples is the paper's sample policy "reconfigure
/// once 1/4 of the members are no longer trusted".
class RecMA {
 public:
  /// Application prediction function evalConf(config) → bool.
  using EvalConf = std::function<bool(const IdSet& config)>;

  RecMA(dlink::LinkMux& mux, RecSA& recsa, NodeId self, EvalConf eval);

  /// One iteration of the do-forever loop (lines 5–19).
  void tick();

  /// Algorithm 4.6 (coordinator-led delicate reconfiguration): replaces the
  /// prediction-majority trigger of line 16 with needDelicateReconf() —
  /// the virtual-synchrony coordinator decides alone once the whole view is
  /// suspended.
  void set_direct_trigger(std::function<bool()> fn) {
    direct_trigger_ = std::move(fn);
  }

  const RecMAStats& stats() const { return stats_; }

  /// Fault injection: plants stale flags as if left by a transient fault.
  void inject_flags(NodeId entry, bool no_maj, bool need_reconf);

 private:
  struct Flags {
    bool no_maj = false;
    bool need_reconf = false;
  };

  IdSet core() const;  // ∩_{j ∈ FD[i].part} FD[j].part
  void flush_flags();  // flushFlags()
  void on_message(NodeId from, const wire::Bytes& data);
  void broadcast();

  dlink::LinkMux& mux_;
  RecSA& recsa_;
  NodeId self_;
  EvalConf eval_;

  std::map<NodeId, Flags> flags_;
  std::optional<ConfigValue> prev_config_;
  std::function<bool()> direct_trigger_;
  RecMAStats stats_;
};

}  // namespace ssr::reconf
