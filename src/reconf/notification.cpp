#include "reconf/notification.hpp"

namespace ssr::reconf {

bool Notification::lex_less(const Notification& a, const Notification& b) {
  if (a.phase != b.phase) return a.phase < b.phase;
  if (a.has_set != b.has_set) return !a.has_set;  // ⊥ below any set
  return a.set < b.set;
}

void Notification::encode(wire::Writer& w) const {
  w.u8(phase);
  w.boolean(has_set);
  if (has_set) w.id_set(set);
}

Notification Notification::decode(wire::Reader& r) {
  Notification n;
  n.phase = r.u8();
  if (n.phase > 2) n.phase = 0;  // corrupted phase → default-shaped
  n.has_set = r.boolean();
  if (n.has_set) n.set = r.id_set();
  return n;
}

std::string Notification::to_string() const {
  if (is_default()) return "<0,⊥>";
  return "<" + std::to_string(static_cast<int>(phase)) + "," +
         (has_set ? set.to_string() : "⊥") + ">";
}

}  // namespace ssr::reconf

