#include "reconf/join.hpp"

namespace ssr::reconf {

namespace {
constexpr std::uint8_t kTagRequest = 1;
constexpr std::uint8_t kTagReply = 2;

wire::Bytes encode_request(bool want) {
  wire::Writer w;
  w.u8(kTagRequest);
  w.boolean(want);
  return w.take();
}

wire::Bytes encode_reply(bool pass, const wire::Bytes& state) {
  wire::Writer w;
  w.u8(kTagReply);
  w.boolean(pass);
  w.bytes(state);
  return w.take();
}
}  // namespace

Joiner::Joiner(dlink::LinkMux& mux, RecSA& recsa, NodeId self, JoinConfig cfg,
               PassQuery pass_query, StateProvider state_provider,
               ResetVars reset_vars, InitVars init_vars)
    : mux_(mux),
      recsa_(recsa),
      self_(self),
      cfg_(cfg),
      pass_query_(std::move(pass_query)),
      state_provider_(std::move(state_provider)),
      reset_vars_(std::move(reset_vars)),
      init_vars_(std::move(init_vars)) {
  mux_.subscribe(dlink::kPortJoin, [this](NodeId from, const wire::Bytes& d) {
    on_message(from, d);
  });
}

void Joiner::on_message(NodeId from, const wire::Bytes& data) {
  wire::Reader r(data);
  const std::uint8_t tag = r.u8();
  if (tag == kTagRequest) {
    const bool want = r.boolean();
    if (!r.ok() || !r.exhausted()) return;
    join_requests_[from] = want;
    return;
  }
  if (tag == kTagReply) {
    PassRecord rec;
    rec.pass = r.boolean();
    rec.state = r.bytes();
    if (!r.ok() || !r.exhausted()) return;
    // Line 18: only non-participants consume pass replies.
    if (!recsa_.is_participant()) passes_[from] = rec;
    return;
  }
}

void Joiner::tick() {
  if (recsa_.is_participant()) {
    if (!was_participant_) {
      // Just promoted: stop requesting, drop collected passes.
      was_participant_ = true;
      passes_.clear();
      quiet_ticks_ = 0;
      mux_.clear_state_all(dlink::kPortJoin);
    }
    participant_tick();
  } else {
    if (was_participant_) {
      // Demoted (e.g., cleaned after being dropped from every FD): restart
      // the join procedure from scratch with default state (line 7).
      was_participant_ = false;
      reset_vars_();
      passes_.clear();
      quiet_ticks_ = 0;
    }
    joiner_tick();
  }
}

void Joiner::joiner_tick() {
  const ConfigValue com_conf = recsa_.get_config();  // line 9
  const bool quiet = recsa_.no_reco();

  if (quiet && com_conf.is_proper()) {
    // Count passes from configuration members we still trust (line 10).
    const IdSet& cfg = com_conf.ids();
    const IdSet& fd = recsa_.trusted();
    std::size_t granted = 0;
    std::vector<wire::Bytes> states;
    for (NodeId j : cfg) {
      if (!fd.contains(j)) continue;
      auto it = passes_.find(j);
      if (it != passes_.end() && it->second.pass) {
        ++granted;
        states.push_back(it->second.state);
      }
    }
    if (granted > cfg.size() / 2) {
      init_vars_(states);        // line 11
      if (recsa_.participate())  // line 12
        ++stats_.joined;
      return;
    }
  }

  // Complete-collapse bootstrap: a stable quiet view with no participant at
  // all means the quorum system holds no active member; seed the reset.
  const bool no_participants = recsa_.participants().empty();
  if (quiet && no_participants) {
    if (++quiet_ticks_ >= cfg_.bootstrap_patience_ticks) {
      quiet_ticks_ = 0;
      reset_vars_();
      if (recsa_.participate()) {
        // participate() adopted ⊥ and seeded the brute-force reset.
        ++stats_.bootstrap_resets;
      }
      return;
    }
  } else {
    quiet_ticks_ = 0;
  }

  // Line 13: keep requesting from every trusted processor.
  for (NodeId j : recsa_.trusted()) {
    if (j == self_) continue;
    mux_.publish_state(dlink::kPortJoin, j, encode_request(true));
  }
}

void Joiner::participant_tick() {
  // Line 16: answer active join requests with ⟨passQuery(), state⟩; the
  // pass is recomputed (and possibly retracted) on every iteration.
  const ConfigValue cur = recsa_.get_config();
  const bool member =
      cur.is_set() && cur.ids().contains(self_);
  for (auto& [joiner, active] : join_requests_) {
    if (!active || recsa_.peer_is_participant(joiner)) {
      mux_.clear_state(dlink::kPortJoin, joiner);
      continue;
    }
    bool pass = false;
    if (member && recsa_.no_reco()) pass = pass_query_();
    if (pass) ++stats_.passes_granted;
    mux_.publish_state(dlink::kPortJoin, joiner,
                       encode_reply(pass, state_provider_()));
  }
}

}  // namespace ssr::reconf
