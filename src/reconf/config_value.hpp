#pragma once

#include <compare>
#include <string>

#include "util/id_set.hpp"
#include "wire/wire.hpp"

namespace ssr::reconf {

/// The three-valued `config` field of Algorithm 3.1:
///  * `]`  (kNonParticipant) — the holder is not a participant;
///  * `⊥`  (kBottom)         — a configuration reset is in progress;
///  * a processor set         — the (quorum) configuration.
///
/// An *empty* set is representable but is type-2 stale information
/// (Definition 3.1) and triggers a reset.
class ConfigValue {
 public:
  enum class Tag : std::uint8_t { kNonParticipant = 0, kBottom = 1, kSet = 2 };

  ConfigValue() = default;  // non-participant (the boot value, line 31)

  static ConfigValue non_participant() { return ConfigValue(); }
  static ConfigValue bottom();
  static ConfigValue set(IdSet ids);

  bool is_non_participant() const { return tag_ == Tag::kNonParticipant; }
  bool is_bottom() const { return tag_ == Tag::kBottom; }
  bool is_set() const { return tag_ == Tag::kSet; }
  /// A usable quorum configuration: a non-empty processor set.
  bool is_proper() const { return tag_ == Tag::kSet && !ids_.empty(); }

  /// Only valid when is_set().
  const IdSet& ids() const;

  Tag tag() const { return tag_; }

  friend bool operator==(const ConfigValue&, const ConfigValue&) = default;
  /// Deterministic total order (tag, then set) for the `choose` rule.
  friend std::strong_ordering operator<=>(const ConfigValue&,
                                          const ConfigValue&) = default;

  void encode(wire::Writer& w) const;
  static ConfigValue decode(wire::Reader& r);

  std::string to_string() const;

 private:
  Tag tag_ = Tag::kNonParticipant;
  IdSet ids_;
};

}  // namespace ssr::reconf
