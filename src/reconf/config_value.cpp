#include "reconf/config_value.hpp"

#include "util/assert.hpp"

namespace ssr::reconf {

ConfigValue ConfigValue::bottom() {
  ConfigValue v;
  v.tag_ = Tag::kBottom;
  return v;
}

ConfigValue ConfigValue::set(IdSet ids) {
  ConfigValue v;
  v.tag_ = Tag::kSet;
  v.ids_ = std::move(ids);
  return v;
}

const IdSet& ConfigValue::ids() const {
  SSR_ASSERT(is_set(), "ids() requires a set-valued config");
  return ids_;
}

void ConfigValue::encode(wire::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(tag_));
  if (tag_ == Tag::kSet) w.id_set(ids_);
}

ConfigValue ConfigValue::decode(wire::Reader& r) {
  const std::uint8_t tag = r.u8();
  ConfigValue v;
  switch (tag) {
    case 0:
      return non_participant();
    case 1:
      return bottom();
    case 2:
      return set(r.id_set());
    default:
      // Corrupted tag: decode as a reset marker — the safest interpretation
      // for a self-stabilizing consumer (it triggers recovery, never silent
      // adoption of garbage).
      return bottom();
  }
}

std::string ConfigValue::to_string() const {
  switch (tag_) {
    case Tag::kNonParticipant:
      return "]";
    case Tag::kBottom:
      return "⊥";
    case Tag::kSet:
      return ids_.to_string();
  }
  return "?";
}

}  // namespace ssr::reconf
