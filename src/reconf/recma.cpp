#include "reconf/recma.hpp"

namespace ssr::reconf {

namespace {
/// Flag exchange message (lines 19–20): ⟨noMaj, needReconf⟩.
wire::Bytes encode_flags(bool no_maj, bool need_reconf) {
  wire::Writer w;
  w.boolean(no_maj);
  w.boolean(need_reconf);
  return w.take();
}
}  // namespace

RecMA::RecMA(dlink::LinkMux& mux, RecSA& recsa, NodeId self, EvalConf eval)
    : mux_(mux), recsa_(recsa), self_(self), eval_(std::move(eval)) {
  mux_.subscribe(dlink::kPortRecMA,
                 [this](NodeId from, const wire::Bytes& data) {
                   on_message(from, data);
                 });
}

void RecMA::on_message(NodeId from, const wire::Bytes& data) {
  // Line 20: only participants consume the flag exchange.
  if (!recsa_.is_participant()) return;
  wire::Reader r(data);
  Flags f;
  f.no_maj = r.boolean();
  f.need_reconf = r.boolean();
  if (!r.ok() || !r.exhausted()) return;
  flags_[from] = f;
}

IdSet RecMA::core() const {
  // core() = ∩_{pj ∈ FD[i].part} FD[j].part. A missing view makes the core
  // unevaluable; we return ∅ (no unilateral brute trigger on partial data).
  IdSet part = recsa_.participants();
  IdSet acc = part;
  for (NodeId j : part) {
    auto view = recsa_.peer_part_view(j);
    if (!view) return IdSet{};
    acc = acc.intersect(*view);
  }
  return acc;
}

void RecMA::flush_flags() {
  ++stats_.flag_flushes;
  flags_.clear();
}

void RecMA::tick() {
  // Line 6: essentially executed only by participants.
  if (!recsa_.is_participant()) {
    mux_.clear_state_all(dlink::kPortRecMA);
    return;
  }

  const ConfigValue& cur = recsa_.get_config_ref();  // line 7
  Flags& mine = flags_[self_];
  mine.no_maj = false;  // line 8
  mine.need_reconf = false;

  // Line 9: a configuration change invalidates every collected flag.
  if (prev_config_ && !(*prev_config_ == cur)) flush_flags();

  if (recsa_.no_reco() && cur.is_proper()) {  // line 10
    prev_config_ = cur;                       // line 11
    const IdSet& cfg = cur.ids();
    const IdSet& fd = recsa_.trusted();
    const std::size_t alive_members = cfg.intersection_size(fd);
    const std::size_t majority = cfg.size() / 2 + 1;

    Flags& my_flags = flags_[self_];
    if (alive_members < majority) my_flags.no_maj = true;  // line 12

    const IdSet c = core();
    bool core_agrees = my_flags.no_maj && c.size() > 1;
    if (core_agrees) {
      for (NodeId k : c) {
        if (k == self_) continue;
        auto it = flags_.find(k);
        if (it == flags_.end() || !it->second.no_maj) {
          core_agrees = false;
          break;
        }
      }
    }
    if (core_agrees) {
      // Lines 13–14: the whole core failed to see a members' majority.
      if (recsa_.estab(recsa_.participants())) ++stats_.majority_loss_triggers;
      flush_flags();
    } else if (direct_trigger_) {
      // Algorithm 4.6: the coordinator alone decides (line 17 replacement).
      if (direct_trigger_()) {
        if (recsa_.estab(recsa_.participants())) ++stats_.eval_conf_triggers;
        flush_flags();
      }
    } else {
      // Lines 16–18: application-driven reconfiguration.
      Flags& f = flags_[self_];
      f.need_reconf = eval_(cfg);
      if (f.need_reconf) {
        std::size_t votes = 0;
        for (NodeId j : cfg) {
          if (!fd.contains(j)) continue;
          if (j == self_) {
            ++votes;
            continue;
          }
          auto it = flags_.find(j);
          if (it != flags_.end() && it->second.need_reconf) ++votes;
        }
        if (votes > cfg.size() / 2) {
          if (recsa_.estab(recsa_.participants())) ++stats_.eval_conf_triggers;
          flush_flags();
        }
      }
    }
  }

  broadcast();  // line 19
}

void RecMA::broadcast() {
  const Flags& mine = flags_[self_];
  const IdSet part = recsa_.participants();
  for (NodeId j : part) {
    if (j == self_) continue;
    mux_.publish_state(dlink::kPortRecMA, j,
                       encode_flags(mine.no_maj, mine.need_reconf));
  }
  mux_.for_each_peer([&](NodeId peer) {
    if (!part.contains(peer)) mux_.clear_state(dlink::kPortRecMA, peer);
  });
}

void RecMA::inject_flags(NodeId entry, bool no_maj, bool need_reconf) {
  flags_[entry] = Flags{no_maj, need_reconf};
}

}  // namespace ssr::reconf
