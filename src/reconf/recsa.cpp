#include "reconf/recsa.hpp"

#include <algorithm>
#include <vector>

namespace ssr::reconf {

namespace {
const ConfigValue kNonParticipantValue = ConfigValue::non_participant();
const Notification kDefaultNtf = Notification::none();
}  // namespace

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

void EchoView::encode(wire::Writer& w) const {
  w.id_set(part);
  prp.encode(w);
  w.boolean(all);
}

EchoView EchoView::decode(wire::Reader& r) {
  EchoView e;
  e.part = r.id_set();
  e.prp = Notification::decode(r);
  e.all = r.boolean();
  return e;
}

wire::Bytes RecSAMessage::encode() const {
  wire::Writer w;
  w.id_set(fd);
  w.id_set(part);
  config.encode(w);
  prp.encode(w);
  w.boolean(all);
  echo.encode(w);
  return w.take();
}

std::optional<RecSAMessage> RecSAMessage::decode(const wire::Bytes& raw) {
  wire::Reader r(raw);
  RecSAMessage m;
  m.fd = r.id_set();
  m.part = r.id_set();
  m.config = ConfigValue::decode(r);
  m.prp = Notification::decode(r);
  m.all = r.boolean();
  m.echo = EchoView::decode(r);
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return m;
}

// ---------------------------------------------------------------------------
// Construction / wiring
// ---------------------------------------------------------------------------

RecSA::RecSA(dlink::LinkMux& mux, NodeId self, FdSupplier fd_supplier,
             RecSAOptions options)
    : mux_(mux),
      self_(self),
      fd_supplier_(std::move(fd_supplier)),
      options_(options) {
  // Boot interrupt (line 31): every entry starts as (], dfltNtf, false);
  // absent records read exactly that way, so only the own record is created.
  ++state_version_;  // boot writes records_/fd_self_ directly
  records_[self_] = PeerRecord{};
  fd_self_.insert(self_);
  mux_.subscribe(dlink::kPortRecSA,
                 [this](NodeId from, const wire::Bytes& data) {
                   on_message(from, data);
                 });
}

const ConfigValue& RecSA::config_of(NodeId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? kNonParticipantValue : it->second.config;
}

const Notification& RecSA::prp_of(NodeId id) const {
  auto it = records_.find(id);
  return it == records_.end() ? kDefaultNtf : it->second.prp;
}

RecSA::PeerRecord& RecSA::record(NodeId id) {
  // Non-const access means a write is coming: invalidate the derived-view
  // caches up front (the ref may be written through after we return).
  ++state_version_;
  return records_[id];
}

void RecSA::on_message(NodeId from, const wire::Bytes& data) {
  if (from == self_) return;
  auto msg = RecSAMessage::decode(data);
  if (!msg) return;  // corrupted in flight
  // Deliberately not via record(): fields are compared before assignment,
  // and the derived-view caches are only invalidated when something
  // actually changed — in the steady state every peer re-broadcasts the
  // same view, so no_reco()/chs_config() stay cached across deliveries.
  // (A default-constructed record reads identically to an absent one for
  // every derived view, so creating the map entry itself is not a change.)
  PeerRecord& r = records_[from];
  bool changed = false;
  if (!(r.fd == msg->fd)) {
    r.fd = std::move(msg->fd);
    changed = true;
  }
  if (!(r.part == msg->part)) {
    r.part = std::move(msg->part);
    changed = true;
  }
  if (!r.fd_known) {
    r.fd_known = true;
    changed = true;
  }
  if (!(r.config == msg->config)) {
    r.config = std::move(msg->config);
    changed = true;
  }
  if (!(r.prp == msg->prp)) {
    r.prp = std::move(msg->prp);
    changed = true;
  }
  if (r.all != msg->all) {
    r.all = msg->all;
    changed = true;
  }
  if (!(r.echo == msg->echo)) {
    r.echo = std::move(msg->echo);
    changed = true;
  }
  if (changed) ++state_version_;
}

void RecSA::set_own_config(ConfigValue v) {
  PeerRecord& me = record(self_);
  if (me.config == v) return;
  me.config = std::move(v);
  for (const auto& fn : on_config_change_) fn(me.config);
}

void RecSA::config_set(const ConfigValue& val) {
  ++state_version_;  // the loop below writes records_ directly
  if (val.is_bottom() && !config_of(self_).is_bottom()) ++stats_.resets_started;
  if (val.is_set()) ++stats_.brute_installs;
  // Ensure entries exist for every trusted processor so a reset marks
  // joiners as well — by the end of brute force all active processors are
  // participants (paper, §3.1.1).
  for (NodeId k : fd_self_) record(k);
  for (auto& [id, rec] : records_) {
    if (id == self_) continue;
    rec.config = val;
    rec.prp = Notification::none();
  }
  record(self_).prp = Notification::none();
  record(self_).all = false;
  all_seen_.clear();
  set_own_config(val);
}

// ---------------------------------------------------------------------------
// Derived views
// ---------------------------------------------------------------------------

IdSet RecSA::part_set() const {
  IdSet part;
  for (NodeId k : fd_self_) {
    if (!config_of(k).is_non_participant()) part.insert(k);
  }
  return part;
}

IdSet RecSA::participants() const { return part_set(); }

std::optional<IdSet> RecSA::peer_part_view(NodeId id) const {
  if (id == self_) return part_set();
  auto it = records_.find(id);
  if (it == records_.end() || !it->second.fd_known) return std::nullopt;
  return it->second.part;
}

Notification RecSA::max_ntf() const {
  Notification best;  // default = "no notification"
  for (NodeId k : part_set()) {
    const Notification& n = prp_of(k);
    if (n.is_default()) continue;
    if (best.is_default() || Notification::lex_less(best, n)) best = n;
  }
  return best;
}

const ConfigValue& RecSA::chs_config_ref() const {
  if (chs_version_ == state_version_ && chs_value_ != nullptr) {
    return *chs_value_;
  }
  // choose(): deterministic pick — the minimum under the total order.
  // Tracked as a pointer: deduplication is irrelevant to the minimum, so
  // the old distinct-values vector (and its ConfigValue copies) is not
  // needed.
  const ConfigValue* best = nullptr;
  for (NodeId k : fd_self_) {
    const ConfigValue& c = config_of(k);
    if (c.is_non_participant()) continue;
    if (best == nullptr || c < *best) best = &c;
  }
  static const ConfigValue kBottom = ConfigValue::bottom();
  chs_value_ = best == nullptr ? &kBottom : best;  // null = complete collapse
  chs_version_ = state_version_;
  return *chs_value_;
}

ConfigValue RecSA::chs_config() const { return chs_config_ref(); }

bool RecSA::echo_no_all(NodeId k, const IdSet& part) const {
  if (k == self_) return true;
  auto it = records_.find(k);
  if (it == records_.end()) return false;
  return it->second.echo.part == part && it->second.echo.prp == prp_of(self_);
}

bool RecSA::same_strict(NodeId k, const IdSet& part) const {
  if (k == self_) return true;
  auto it = records_.find(k);
  if (it == records_.end()) return false;
  return it->second.part == part && it->second.prp == prp_of(self_);
}

bool RecSA::one_ahead(NodeId k, const IdSet& part) const {
  if (!options_.relaxed_barrier) return false;
  if (k == self_) return false;
  auto it = records_.find(k);
  if (it == records_.end()) return false;
  if (it->second.part != part) return false;
  const Notification& mine = prp_of(self_);
  const Notification& theirs = it->second.prp;
  if (mine.phase == 1 && mine.has_set) {
    return theirs.phase == 2 && theirs.has_set && theirs.set == mine.set;
  }
  if (mine.phase == 2 && mine.has_set) return theirs.is_default();
  return false;
}

bool RecSA::same_relaxed(NodeId k, const IdSet& part) const {
  return same_strict(k, part) || one_ahead(k, part);
}

bool RecSA::echo_complete(const IdSet& part) const {
  const EchoView want{part, prp_of(self_),
                      records_.count(self_) ? records_.at(self_).all : false};
  for (NodeId j : part) {
    if (j == self_) continue;
    auto it = records_.find(j);
    if (it == records_.end() || !(it->second.echo == want)) return false;
  }
  return true;
}

bool RecSA::all_seen_complete(const IdSet& part) const {
  for (NodeId j : part) {
    if (j == self_) {
      if (!records_.at(self_).all) return false;
      continue;
    }
    if (!all_seen_.contains(j)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Stale-information classification (Definition 3.1)
// ---------------------------------------------------------------------------

int RecSA::stale_type(const IdSet& part) const {
  // type-1: a phase-0 notification that carries a set — and, symmetrically,
  // a non-zero-phase notification that carries none (proposals always name
  // a set; only transient faults produce the other shapes).
  for (const auto& [id, rec] : records_) {
    (void)id;
    if (rec.prp.phase == 0 && rec.prp.has_set) return 1;
    if (rec.prp.phase != 0 && !rec.prp.has_set) return 1;
  }
  // type-2: a ⊥ or empty configuration anywhere in the local view.
  for (const auto& [id, rec] : records_) {
    (void)id;
    if (rec.config.is_bottom()) return 2;
    if (rec.config.is_set() && rec.config.ids().empty()) return 2;
  }
  // type-3: notification degrees out of synch. Deviation #5 (DESIGN.md):
  // the gap threshold is 2, because the token-link's coalescing delivery
  // legitimately exhibits gap-2 snapshots in fault-free runs.
  std::vector<int> degrees;
  std::vector<const IdSet*> sets;
  bool phase2_present = false;
  for (NodeId k : part) {
    auto it = records_.find(k);
    if (it == records_.end()) continue;
    const Notification& n = it->second.prp;
    if (n.is_default()) continue;
    degrees.push_back(n.degree(it->second.all));
    if (n.has_set) sets.push_back(&n.set);
    if (n.phase == 2) phase2_present = true;
  }
  if (!degrees.empty()) {
    auto [lo, hi] = std::minmax_element(degrees.begin(), degrees.end());
    if (*hi - *lo > 2) return 3;
  }
  if (phase2_present && sets.size() > 1) {
    // |notifSet| > 1 while a phase-2 notification exists: selection failed.
    for (std::size_t i = 1; i < sets.size(); ++i) {
      if (!(*sets[i] == *sets[0])) return 3;
    }
  }
  // type-4: stable views but the configuration holds no active participant.
  const ConfigValue& own = config_of(self_);
  if (own.is_proper() && own.ids().intersection_size(part) == 0) {
    bool stable = true;
    for (NodeId k : part) {
      if (k == self_) continue;
      auto it = records_.find(k);
      if (it == records_.end() || !it->second.fd_known ||
          it->second.fd != fd_self_ || it->second.part != part) {
        stable = false;
        break;
      }
    }
    if (stable) return 4;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Interface functions (Fig. 1)
// ---------------------------------------------------------------------------

bool RecSA::no_reco() const {
  if (no_reco_version_ == state_version_) return no_reco_value_;
  no_reco_value_ = compute_no_reco();
  no_reco_version_ = state_version_;
  return no_reco_value_;
}

bool RecSA::compute_no_reco() const {
  // Called once per subsystem per tick: evaluated allocation-free. The
  // participant set builds into a reusable scratch (capacity sticks) and
  // the conflict scan tracks a pointer to the first configuration instead
  // of collecting distinct copies — any second distinct value means false
  // either way.
  part_scratch_.clear();
  for (NodeId k : fd_self_) {
    if (!config_of(k).is_non_participant()) part_scratch_.insert(k);
  }
  const IdSet& part = part_scratch_;
  // (5) no delicate replacement in progress anywhere in the local view.
  for (const auto& [id, rec] : records_) {
    (void)id;
    if (!rec.prp.is_default()) return false;
  }
  // (2)+(4) configuration conflicts / reset / empty configurations.
  const ConfigValue* first = nullptr;
  for (NodeId k : fd_self_) {
    const ConfigValue& c = config_of(k);
    if (c.is_non_participant()) continue;
    if (c.is_bottom()) return false;
    if (c.is_set() && c.ids().empty()) return false;
    if (first == nullptr) {
      first = &c;
    } else if (!(*first == c)) {
      return false;  // two distinct configurations — a conflict
    }
  }
  // (1) pi is recognized by every trusted participant.
  for (NodeId j : part) {
    if (j == self_) continue;
    auto it = records_.find(j);
    if (it == records_.end() || !it->second.fd_known) return false;
    if (!it->second.fd.contains(self_)) return false;
  }
  // (3) participant sets have stabilized. The echoed-part clause is only
  // evaluable for participants (joiners receive no echoes — DESIGN.md §3).
  const bool participant = part.contains(self_);
  for (NodeId j : part) {
    if (j == self_) continue;
    auto it = records_.find(j);
    if (it == records_.end() || it->second.part != part) return false;
    if (participant && !(it->second.echo.part == part)) return false;
  }
  return true;
}

const ConfigValue& RecSA::get_config_ref() const {
  if (no_reco()) return chs_config_ref();
  return config_of(self_);
}

ConfigValue RecSA::get_config() const { return get_config_ref(); }

bool RecSA::estab(const IdSet& proposed) {
  if (!is_participant()) return false;
  if (!no_reco()) return false;
  if (proposed.empty()) return false;
  const ConfigValue& cur = config_of(self_);
  if (cur.is_set() && cur.ids() == proposed) return false;
  record(self_).prp = Notification::proposal(1, proposed);
  record(self_).all = false;
  all_seen_.clear();
  ++stats_.proposals_accepted;
  broadcast();  // disseminate immediately so noReco() flips system-wide
  return true;
}

bool RecSA::participate() {
  if (!no_reco()) return false;
  const ConfigValue chosen = chs_config();
  // chosen is a set (join an existing configuration) or ⊥ (complete
  // collapse: seed the reset process — paper §3.1.1).
  set_own_config(chosen);
  if (chosen.is_set()) ++stats_.joins_accepted;
  return is_participant();
}

// ---------------------------------------------------------------------------
// The do-forever loop (lines 24–29)
// ---------------------------------------------------------------------------

void RecSA::tick() {
  ++state_version_;  // fd refresh + the cleanup loop write state directly
  fd_self_ = fd_supplier_();
  fd_self_.insert(self_);

  // Line 25a — clean after crashes: entries of processors outside the
  // trusted set revert to (], dfltNtf); we erase them, which reads back
  // identically and bounds memory. Trusted non-participants cannot carry
  // notifications.
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->first != self_ && !fd_self_.contains(it->first)) {
      all_seen_.erase(it->first);
      it = records_.erase(it);
    } else {
      // pk ∉ FD[i].part — non-participants (including pi itself) cannot
      // carry notifications.
      if (it->second.config.is_non_participant()) {
        it->second.prp = Notification::none();
        it->second.all = false;
      }
      ++it;
    }
  }

  IdSet part = part_set();

  // Line 25b — stale-information tests (Definition 3.1).
  if (int t = stale_type(part); t != 0) {
    ++stats_.stale_detected[t];
    config_set(ConfigValue::bottom());
    part = part_set();
  }

  const Notification m = max_ntf();
  if (m.is_default()) {
    // ---- Brute-force stabilization (lines 26) ----
    std::vector<ConfigValue> values;
    for (NodeId k : fd_self_) {
      const ConfigValue& c = config_of(k);
      if (c.is_non_participant() || c.is_bottom()) continue;
      if (std::find(values.begin(), values.end(), c) == values.end())
        values.push_back(c);
    }
    if (values.size() > 1) {
      ++stats_.stale_detected[2];
      config_set(ConfigValue::bottom());
    }
    if (config_of(self_).is_bottom()) {
      // Reset completes when every trusted processor reports the same
      // trusted set: config ← FD[i].
      bool agree = true;
      for (NodeId k : fd_self_) {
        if (k == self_) continue;
        auto it = records_.find(k);
        if (it == records_.end() || !it->second.fd_known ||
            it->second.fd != fd_self_) {
          agree = false;
          break;
        }
      }
      if (agree) config_set(ConfigValue::set(fd_self_));
    }
    if (!is_participant()) {
      // Ghost-participant repair (DESIGN.md §3): a transient fault can wipe
      // our own participation mark while every participant still lists us
      // in its participant set. Since we never broadcast as a
      // non-participant, their records would never refresh and the
      // participant views would disagree forever. When the whole quorum
      // already counts us in, re-adopt participation. Fresh joiners are
      // never listed, so the admission path is untouched.
      const IdSet part = part_set();
      bool listed_by_all = !part.empty();
      for (NodeId k : part) {
        auto it = records_.find(k);
        if (it == records_.end() || !it->second.fd_known ||
            !it->second.part.contains(self_)) {
          listed_by_all = false;
          break;
        }
      }
      if (listed_by_all) {
        const ConfigValue chosen = chs_config();
        if (chosen.is_proper()) set_own_config(chosen);
      }
    }
  } else if (is_participant()) {
    // ---- Delicate replacement (lines 28) ----
    PeerRecord& me = record(self_);
    // Selection: adopt the lexically maximal notification (Claim 3.12(1)
    // requires adoption before the barrier; DESIGN.md deviation #3). A node
    // one step behind advances through its own transition instead, and a
    // finished replacement (phase-2 set already installed) is not re-adopted.
    const bool mine_one_behind = me.prp.phase == 1 && me.prp.has_set &&
                                 m.phase == 2 && m.set == me.prp.set;
    const bool finished = m.phase == 2 && config_of(self_).is_set() &&
                          config_of(self_).ids() == m.set;
    if (Notification::lex_less(me.prp, m) && !mine_one_behind && !finished &&
        !(me.prp == m)) {
      me.prp = m;
      me.all = false;
      all_seen_.clear();
      if (m.phase == 2) {
        // Catching up directly into phase 2 installs the set as well
        // (the effect of the 1→2 transition we skipped).
        set_own_config(ConfigValue::set(m.set));
        ++stats_.delicate_installs;
      }
    }

    if (!me.prp.is_default()) {
      // all[i] ← every trusted participant echoed my values and reports the
      // same (participant set, notification) — with the one-phase-ahead
      // relaxation (DESIGN.md deviation #4).
      bool new_all = true;
      for (NodeId k : part) {
        if (!(echo_no_all(k, part) && same_relaxed(k, part))) {
          new_all = false;
          break;
        }
      }
      me.all = new_all;
      // allSeen accumulates participants observed to have completed the
      // current phase.
      for (NodeId k : part) {
        if (k == self_) {
          if (me.all) all_seen_.insert(k);
          continue;
        }
        auto it = records_.find(k);
        if (it == records_.end()) continue;
        if (one_ahead(k, part) ||
            (echo_no_all(k, part) && same_relaxed(k, part) && it->second.all)) {
          all_seen_.insert(k);
        }
      }
      // Barrier: everyone echoed my triple and everyone finished the phase.
      if (echo_complete(part) && all_seen_complete(part)) {
        ++stats_.phase_transitions;
        const std::uint8_t next = (me.prp.phase == 1) ? 2 : 0;  // increment()
        all_seen_.clear();
        me.all = false;
        if (next == 2) {
          me.prp.phase = 2;
          set_own_config(ConfigValue::set(me.prp.set));
          ++stats_.delicate_installs;
        } else {
          me.prp = Notification::none();
        }
      }
    }
  }

  broadcast();
}

void RecSA::broadcast() {
  if (!is_participant()) {
    // Non-participants must not broadcast (line 29 guard); they only follow.
    mux_.clear_state_all(dlink::kPortRecSA);
    return;
  }
  // Encoded field-by-field from references, byte-identical to
  // RecSAMessage::encode(): the old per-peer message staging copied four
  // sets per trusted peer on every do-forever iteration, which dominated
  // the simulator's allocation profile.
  bcast_scratch_.clear();
  for (NodeId k : fd_self_) {
    if (!config_of(k).is_non_participant()) bcast_scratch_.insert(k);
  }
  const ConfigValue& own_config = config_of(self_);
  const Notification& own_prp = prp_of(self_);
  const bool own_all = records_.at(self_).all;
  for (NodeId j : fd_self_) {
    if (j == self_) continue;
    wire::Writer w;
    w.id_set(fd_self_);
    w.id_set(bcast_scratch_);
    own_config.encode(w);
    own_prp.encode(w);
    w.boolean(own_all);
    auto it = records_.find(j);
    if (it != records_.end()) {
      // echo = what j last told us (its part/prp/all view).
      w.id_set(it->second.part);
      it->second.prp.encode(w);
      w.boolean(it->second.all);
    } else {
      static const EchoView kEmptyEcho;
      kEmptyEcho.encode(w);
    }
    mux_.publish_state(dlink::kPortRecSA, j, w.take());
  }
  // Stop talking to processors we no longer trust.
  mux_.for_each_peer([&](NodeId peer) {
    if (!fd_self_.contains(peer)) mux_.clear_state(dlink::kPortRecSA, peer);
  });
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

namespace {
IdSet random_subset(Rng& rng, const IdSet& universe) {
  IdSet out;
  for (NodeId id : universe) {
    if (rng.chance(0.5)) out.insert(id);
  }
  return out;
}

ConfigValue random_config(Rng& rng, const IdSet& universe) {
  switch (rng.next_below(4)) {
    case 0:
      return ConfigValue::non_participant();
    case 1:
      return ConfigValue::bottom();
    default:
      return ConfigValue::set(random_subset(rng, universe));
  }
}

Notification random_ntf(Rng& rng, const IdSet& universe) {
  if (rng.chance(0.3)) return Notification::none();
  Notification n;
  n.phase = static_cast<std::uint8_t>(rng.next_below(3));
  n.has_set = rng.chance(0.8);
  if (n.has_set) n.set = random_subset(rng, universe);
  return n;
}
}  // namespace

void RecSA::inject_corruption(Rng& rng, const IdSet& universe) {
  ++state_version_;
  records_.clear();
  fd_self_ = random_subset(rng, universe);
  fd_self_.insert(self_);
  for (NodeId k : universe) {
    if (!rng.chance(0.7)) continue;
    PeerRecord rec;
    rec.fd = random_subset(rng, universe);
    rec.part = random_subset(rng, universe);
    rec.fd_known = rng.chance(0.8);
    rec.config = random_config(rng, universe);
    rec.prp = random_ntf(rng, universe);
    rec.all = rng.chance(0.5);
    rec.echo = EchoView{random_subset(rng, universe), random_ntf(rng, universe),
                        rng.chance(0.5)};
    records_[k] = rec;
  }
  if (!records_.count(self_)) records_[self_] = PeerRecord{};
  records_[self_].config = random_config(rng, universe);
  records_[self_].prp = random_ntf(rng, universe);
  all_seen_ = random_subset(rng, universe);
}

void RecSA::inject_config(NodeId entry, ConfigValue v) {
  record(entry).config = std::move(v);
}

void RecSA::inject_notification(NodeId entry, Notification n) {
  record(entry).prp = std::move(n);
}

}  // namespace ssr::reconf
