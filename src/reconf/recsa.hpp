#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "dlink/link_mux.hpp"
#include "reconf/config_value.hpp"
#include "reconf/notification.hpp"
#include "util/rng.hpp"

namespace ssr::reconf {

/// Echoed view of a peer's (participant set, notification, all-flag) triple
/// — the `echo[]` field of Algorithm 3.1.
struct EchoView {
  IdSet part;
  Notification prp;
  bool all = false;

  friend bool operator==(const EchoView&, const EchoView&) = default;

  void encode(wire::Writer& w) const;
  static EchoView decode(wire::Reader& r);
};

/// The full per-iteration broadcast of Algorithm 3.1 (line 29):
/// ⟨FD, config, prp, all, echo-of-receiver⟩. The FD field also encodes the
/// sender's participant view.
struct RecSAMessage {
  IdSet fd;
  IdSet part;
  ConfigValue config;
  Notification prp;
  bool all = false;
  EchoView echo;

  wire::Bytes encode() const;
  static std::optional<RecSAMessage> decode(const wire::Bytes& raw);
};

/// Counters exported for the benches (E1–E4) and the property tests.
struct RecSAStats {
  std::uint64_t resets_started = 0;       // configSet(⊥) calls
  std::uint64_t brute_installs = 0;       // configSet(FD) completions
  std::uint64_t delicate_installs = 0;    // phase-2 config replacements
  std::uint64_t proposals_accepted = 0;   // effective estab() calls
  std::uint64_t phase_transitions = 0;    // barrier advances
  std::uint64_t joins_accepted = 0;       // effective participate() calls
  std::uint64_t stale_detected[5] = {0, 0, 0, 0, 0};  // [0] unused, 1..4
};

/// Behavioural switches for ablation studies (bench_ablation).
struct RecSAOptions {
  /// DESIGN.md deviation #4: treat "same notification set, exactly one
  /// phase ahead" as matching in the barrier predicates. Disabling restores
  /// the paper's literal (stricter) tests; under the coalescing token link
  /// this causes spurious brute-force resets during delicate replacements.
  bool relaxed_barrier = true;
};

/// Reconfiguration Stability Assurance — Algorithm 3.1.
///
/// Guarantees (Theorems 3.15/3.16): starting from an arbitrary state, all
/// active processors eventually share one configuration (convergence), and
/// from a stale-free state only explicit estab()/participate() calls change
/// it (closure). The class is a pure protocol engine: the owner wires in the
/// failure detector reading and calls tick() from its do-forever loop; the
/// broadcast rides the token-link state slots.
///
/// The OCR-damaged pseudocode is reconstructed from the prose and the
/// correctness proofs; see DESIGN.md §3 for the five documented deviations.
class RecSA {
 public:
  using FdSupplier = std::function<IdSet()>;

  RecSA(dlink::LinkMux& mux, NodeId self, FdSupplier fd_supplier,
        RecSAOptions options = {});

  // -- Interface functions of Algorithm 3.1 (Fig. 1 arrows) -----------------

  /// getConfig(): the agreed configuration; during quiet periods the chosen
  /// common value, otherwise the local view (possibly ⊥ or ]).
  ConfigValue get_config() const;
  /// Allocation-free variant for the per-tick hot paths: the reference
  /// aliases a peer record (or a static ⊥) and is invalidated by the next
  /// message or tick — copy it if it must survive one.
  const ConfigValue& get_config_ref() const;
  /// noReco(): true iff no reconfiguration (brute-force or delicate) is in
  /// progress and the participant views are stable. (Paper polarity:
  /// "returns True if a reconfiguration is not taking place".)
  bool no_reco() const;
  /// estab(set): requests a delicate replacement of the configuration by
  /// `set`. Effective only when noReco() and the set is proper and differs
  /// from the current configuration. Returns true when accepted.
  bool estab(const IdSet& proposed);
  /// participate(): requests promotion from joiner to participant.
  /// Effective only when noReco(). Returns true when now a participant.
  bool participate();

  // -- Wiring ---------------------------------------------------------------

  /// One iteration of the do-forever loop (lines 24–29).
  void tick();

  bool is_participant() const { return !config_of(self_).is_non_participant(); }
  NodeId self() const { return self_; }
  /// FD[i].part — the participant subset of the trusted set.
  IdSet participants() const;
  /// Last received FD[j].part view of a peer (used by recMA's core()).
  std::optional<IdSet> peer_part_view(NodeId id) const;
  /// Whether `id` is a participant in the local view (config[j] ≠ ]).
  bool peer_is_participant(NodeId id) const {
    return !config_of(id).is_non_participant();
  }
  /// Last failure-detector reading used by tick().
  const IdSet& trusted() const { return fd_self_; }
  const Notification& notification() const { return prp_of(self_); }
  const RecSAStats& stats() const { return stats_; }

  /// Fired whenever config[i] changes value (brute-force install, delicate
  /// install, reset, participation). Listeners accumulate — monitors and
  /// trace recorders observe independently.
  void add_config_change_handler(std::function<void(const ConfigValue&)> fn) {
    on_config_change_.push_back(std::move(fn));
  }

  // -- Transient-fault injection (tests & benches only) ----------------------
  /// Overwrites internal state with arbitrary values drawn from `rng`, with
  /// node ids drawn from `universe` — models an arbitrary starting state.
  void inject_corruption(Rng& rng, const IdSet& universe);
  /// Directly plants a value (targeted corruption for unit tests).
  void inject_config(NodeId entry, ConfigValue v);
  void inject_notification(NodeId entry, Notification n);

 private:
  struct PeerRecord {
    IdSet fd;
    IdSet part;
    bool fd_known = false;  // no broadcast from this peer yet
    ConfigValue config;     // defaults to ] (non-participant)
    Notification prp;
    bool all = false;
    EchoView echo;
  };

  // Accessors that tolerate absent records (default-constructed views).
  const ConfigValue& config_of(NodeId id) const;
  const Notification& prp_of(NodeId id) const;
  PeerRecord& record(NodeId id);

  void on_message(NodeId from, const wire::Bytes& data);
  void set_own_config(ConfigValue v);

  // configSet(val) — wraps access to the local config copies (line 21).
  void config_set(const ConfigValue& val);

  // Predicate helpers (names follow the paper's macros).
  IdSet part_set() const;
  Notification max_ntf() const;                 // maxNtf()
  ConfigValue chs_config() const;               // chsConfig()
  const ConfigValue& chs_config_ref() const;    // allocation-free chsConfig()
  bool echo_no_all(NodeId k, const IdSet& part) const;
  bool same_strict(NodeId k, const IdSet& part) const;
  bool one_ahead(NodeId k, const IdSet& part) const;
  bool same_relaxed(NodeId k, const IdSet& part) const;
  bool echo_complete(const IdSet& part) const;  // echo()
  bool all_seen_complete(const IdSet& part) const;

  // Stale-information classification (Definition 3.1); returns the first
  // matching type (1..4) or 0.
  int stale_type(const IdSet& part) const;

  void broadcast();

  dlink::LinkMux& mux_;
  NodeId self_;
  FdSupplier fd_supplier_;
  RecSAOptions options_;

  IdSet fd_self_;  // FD[i] — refreshed at each tick
  std::map<NodeId, PeerRecord> records_;  // includes own record (entry i)
  IdSet all_seen_;                        // allSeen
  /// Scratch for no_reco()'s participant set (rebuilt per call; capacity
  /// sticks so the per-tick legality check never allocates).
  mutable IdSet part_scratch_;
  /// Scratch for broadcast()'s participant set (kept separate: no_reco()
  /// may run while a broadcast-encoded set is still referenced).
  IdSet bcast_scratch_;

  // -- Derived-view memoization ----------------------------------------------
  // no_reco() and chs_config_ref() are pure functions of (records_,
  // fd_self_) but every subsystem re-evaluates them on every do-forever
  // tick. `state_version_` is bumped by every mutation path (record(),
  // tick(), config_set(), inject_corruption()); the caches recompute on a
  // version mismatch, so results are always identical to the uncached
  // evaluation — over-bumping merely costs a recompute.
  std::uint64_t state_version_ = 0;
  mutable std::uint64_t no_reco_version_ = ~0ULL;
  mutable bool no_reco_value_ = false;
  mutable std::uint64_t chs_version_ = ~0ULL;
  mutable const ConfigValue* chs_value_ = nullptr;

  bool compute_no_reco() const;

  RecSAStats stats_;
  std::vector<std::function<void(const ConfigValue&)>> on_config_change_;
};

}  // namespace ssr::reconf
