#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "shard/shard_map.hpp"
#include "util/id_set.hpp"

namespace ssr::shard {

/// Client-side router: hashes register/counter keys to shards via the
/// current ShardMap, tracks each shard's current configuration (the member
/// set a client should address), and drives a bounded retry/redirect loop
/// for in-flight operations that collide with reconfigurations or
/// shard-map epoch changes.
///
/// Map updates are push-style: interested clients register a listener and
/// are called back whenever a newer-epoch map is adopted (the
/// ParticipantConfig::was_updated idiom — consumers react to the change
/// instead of polling the version). Adoption is strictly epoch-monotonic,
/// so replayed or stale maps are ignored no matter the arrival order.
class Router {
 public:
  using MapListener = std::function<void(const ShardMap&)>;

  /// Verdict for a failed attempt of an in-flight operation.
  enum class Verdict {
    kRetry,     // same shard, next member — transient refusal/timeout
    kRedirect,  // shard map changed under the op: re-hash and start over
    kGiveUp,    // attempt budget exhausted
  };

  /// One keyed client operation in flight. `shard`/`map_epoch` snapshot
  /// the routing decision so a concurrent map adoption is detected as a
  /// redirect instead of silently retargeting half-done quorum work.
  struct Op {
    std::string key;
    ShardId shard = 0;
    std::uint64_t map_epoch = 0;
    std::uint32_t attempts = 0;   // failed attempts on the current shard
    std::uint32_t redirects = 0;  // map-change reroutes so far
    std::size_t cursor = 0;       // rotation index into the shard's config
  };

  explicit Router(ShardMap map) : map_(std::move(map)) {}

  const ShardMap& map() const { return map_; }

  /// Adopts `m` iff m.epoch() > map().epoch(); true when adopted.
  /// Listeners run synchronously inside the adopting call.
  bool adopt(const ShardMap& m);

  /// Registers a push callback for adopted maps; returns a token for
  /// remove_listener. The callback fires only on future adoptions.
  std::size_t add_listener(MapListener cb);
  void remove_listener(std::size_t token);

  /// Updates the tracked configuration of one shard (fed by whatever
  /// membership source the deployment has: scenario samples, daemon
  /// STATUS replies, gossip).
  void note_config(ShardId shard, IdSet config);
  /// Last known configuration of `shard` (empty set when never reported).
  const IdSet& config_of(ShardId shard) const;

  ShardId route(std::string_view key) const {
    return map_.shard_for_key(key);
  }

  /// Starts a keyed operation: routes the key and snapshots the epoch.
  Op begin(std::string key) const;

  /// Current target node for `op`: the cursor-th member (mod size) of the
  /// op's shard configuration. nullopt when the config is unknown/empty.
  std::optional<NodeId> target(const Op& op) const;

  /// Called when the current attempt failed (refused, aborted, timed
  /// out). Advances the op state and classifies: if the map moved under
  /// the op the verdict is kRedirect and the op is re-routed (fresh
  /// attempt budget); within budget it is kRetry against the next member;
  /// past budget, kGiveUp. Bounded overall: at most max_redirects()
  /// reroutes of max_attempts() attempts each.
  Verdict on_failure(Op& op) const;

  std::uint32_t max_attempts() const { return max_attempts_; }
  std::uint32_t max_redirects() const { return max_redirects_; }

 private:
  ShardMap map_;
  std::map<ShardId, IdSet> configs_;
  std::vector<std::pair<std::size_t, MapListener>> listeners_;
  std::size_t next_token_ = 1;
  std::uint32_t max_attempts_ = 8;
  std::uint32_t max_redirects_ = 4;
};

}  // namespace ssr::shard
