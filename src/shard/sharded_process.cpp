#include "shard/sharded_process.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "util/wallclock.hpp"

namespace ssr::shard {
namespace {

const char* kind_name(ShardedAction::Kind k) {
  switch (k) {
    case ShardedAction::Kind::kRunFor: return "run_for";
    case ShardedAction::Kind::kAwaitAllConverged: return "await_all_converged";
    case ShardedAction::Kind::kWorkload: return "workload";
    case ShardedAction::Kind::kCrashOneInShard: return "crash_one_in_shard";
    case ShardedAction::Kind::kPauseShard: return "pause_shard";
    case ShardedAction::Kind::kResumeShard: return "resume_shard";
    case ShardedAction::Kind::kGrowMap: return "grow_map";
    case ShardedAction::Kind::kMarkStable: return "mark_stable";
  }
  return "?";
}

void sweep_sleep() {
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
}

}  // namespace

ShardedProcessRunner::ShardedProcessRunner(ShardedSpec spec,
                                           scenario::ProcessBackendOptions opt)
    : spec_(std::move(spec)),
      opt_(std::move(opt)),
      router_(ShardMap::uniform(spec_.map_shards())) {
  epoch_usec_ = steady_usec();
  fleets_.reserve(spec_.shards);
  for (std::uint32_t s = 0; s < spec_.shards; ++s) {
    scenario::ScenarioSpec fleet_spec;
    fleet_spec.name = spec_.name + "/shard" + std::to_string(s);
    fleet_spec.initial_nodes = spec_.nodes_per_shard;

    scenario::ProcessBackendOptions fleet_opt = opt_;
    // Shard tags start at 1: 0 is the untagged default, and a fleet must
    // never accept a stray datagram from an untagged sender either.
    fleet_opt.shard = s + 1;
    // Same per-shard stream split as the simulator backend.
    fleet_opt.seed = opt_.seed + 0x9E3779B97F4A7C15ULL * (s + 1);
    if (!opt_.work_dir.empty()) {
      fleet_opt.work_dir = opt_.work_dir + "/shard" + std::to_string(s);
    }

    Fleet f;
    f.runner = std::make_unique<scenario::ProcessRunner>(
        std::move(fleet_spec), std::move(fleet_opt));
    fleets_.push_back(std::move(f));
  }
}

ShardedProcessRunner::~ShardedProcessRunner() = default;

SimTime ShardedProcessRunner::now() const {
  return steady_usec() - epoch_usec_;
}

SimTime ShardedProcessRunner::scaled(SimTime d) const {
  return static_cast<SimTime>(static_cast<double>(d) * opt_.time_scale);
}

SimTime ShardedProcessRunner::await_budget(SimTime d) const {
  const SimTime s = scaled(d);
  return s < opt_.min_await ? opt_.min_await : s;
}

void ShardedProcessRunner::fail(const ShardedAction& a,
                                const std::string& detail) {
  if (failed_) return;
  failed_ = true;
  std::ostringstream os;
  os << kind_name(a.kind) << ": " << detail;
  failure_ = os.str();
}

void ShardedProcessRunner::sample_fleets() {
  for (Fleet& f : fleets_) {
    if (!f.paused) f.runner->sample();
  }
}

void ShardedProcessRunner::check_fleets() {
  if (failed_) return;
  for (std::uint32_t s = 0; s < fleets_.size(); ++s) {
    if (fleets_[s].runner->failed()) {
      failed_ = true;
      failure_ = "shard " + std::to_string(s) + ": " +
                 fleets_[s].runner->failure();
      return;
    }
  }
}

void ShardedProcessRunner::refresh_config(ShardId s) {
  router_.note_config(s, fleets_[s].runner->routing_config());
}

void ShardedProcessRunner::adopt_pending_grow() {
  if (!pending_grow_) return;
  pending_grow_ = false;
  router_.adopt(router_.map().with_shard_added());
}

ShardedResult ShardedProcessRunner::run() {
  // Spawn every fleet up front; from here on they all run concurrently in
  // real time and the action loop samples them in one sweep.
  for (Fleet& f : fleets_) {
    if (!f.runner->bootstrap()) break;
  }
  check_fleets();

  for (const ShardedAction& a : spec_.actions) {
    if (failed_) break;
    apply(a);
    check_fleets();
  }

  ShardedResult r;
  r.name = spec_.name;
  r.seed = opt_.seed;
  r.failure = failure_;
  r.ops_attempted = ops_attempted_;
  r.ops_completed = ops_completed_;
  r.ops_aborted_faulted = aborted_faulted_;
  r.ops_aborted_healthy = aborted_healthy_;
  r.ops_redirected = redirects_;

  bool shards_ok = true;
  for (Fleet& f : fleets_) {
    scenario::ScenarioResult pr = f.runner->finish();
    pr.seed = opt_.seed;
    shards_ok = shards_ok && pr.ok;
    if (!pr.ok && failure_.empty()) r.failure = pr.name + ": " + pr.failure;
    r.per_shard.push_back(std::move(pr));
  }

  if (aborted_healthy_ != 0 && r.failure.empty()) {
    r.failure = std::to_string(aborted_healthy_) +
                " op(s) aborted on healthy shards (isolation violated)";
  }
  r.ok = !failed_ && shards_ok && aborted_healthy_ == 0;
  return r;
}

void ShardedProcessRunner::apply(const ShardedAction& a) {
  // Same lazy-adoption contract as the simulator backend: a queued map
  // growth lands inside the next workload; anything else flushes it.
  if (a.kind != ShardedAction::Kind::kWorkload &&
      a.kind != ShardedAction::Kind::kGrowMap) {
    adopt_pending_grow();
  }
  switch (a.kind) {
    case ShardedAction::Kind::kRunFor: {
      const SimTime deadline = now() + scaled(a.duration);
      while (now() < deadline && !failed_) {
        sample_fleets();
        check_fleets();
        sweep_sleep();
      }
      return;
    }
    case ShardedAction::Kind::kAwaitAllConverged: {
      const SimTime deadline = now() + await_budget(a.duration);
      auto all_converged = [&] {
        for (const Fleet& f : fleets_) {
          if (!f.paused && !f.runner->converged_sampled()) return false;
        }
        return true;
      };
      for (;;) {
        sample_fleets();
        check_fleets();
        if (failed_) return;
        if (all_converged()) return;
        if (now() >= deadline) {
          fail(a, "a healthy shard missed the convergence budget");
          return;
        }
        sweep_sleep();
      }
    }
    case ShardedAction::Kind::kWorkload:
      do_workload(a);
      return;
    case ShardedAction::Kind::kCrashOneInShard: {
      Fleet& f = fleets_[a.shard];
      const IdSet alive = f.runner->alive_ids();
      if (alive.empty()) {
        fail(a, "no alive node to crash in shard " + std::to_string(a.shard));
        return;
      }
      IdSet victim;
      victim.insert(*alive.begin());
      f.runner->step(scenario::Action::crash(victim));
      return;
    }
    case ShardedAction::Kind::kPauseShard: {
      Fleet& f = fleets_[a.shard];
      f.paused_ids = f.runner->alive_ids();
      f.runner->step(scenario::Action::pause_nodes(f.paused_ids));
      f.paused = true;
      return;
    }
    case ShardedAction::Kind::kResumeShard: {
      Fleet& f = fleets_[a.shard];
      f.paused = false;
      f.runner->step(scenario::Action::resume_nodes(f.paused_ids));
      f.paused_ids = IdSet{};
      return;
    }
    case ShardedAction::Kind::kGrowMap:
      pending_grow_ = true;
      return;
    case ShardedAction::Kind::kMarkStable:
      for (Fleet& f : fleets_) {
        if (!f.paused) f.runner->step(scenario::Action::mark_stable());
      }
      return;
  }
}

bool ShardedProcessRunner::drive_attempt(const Router::Op& op, NodeId target) {
  scenario::ProcessRunner& r = *fleets_[op.shard].runner;
  const std::uint64_t before = r.ops_completed();
  IdSet one;
  one.insert(target);
  r.step(scenario::Action::increment_burst(1, one));
  // One more harvested op on this fleet counts as this attempt completing.
  // A paused or crashed target is skipped by the burst, so its await is
  // instant and the delta stays zero — the router rotates on immediately.
  // An op that straggles past the burst's drain budget gets credited to a
  // later attempt on the same shard; both ops did complete there, which is
  // what the isolation ledger measures.
  return r.ops_completed() > before;
}

void ShardedProcessRunner::do_workload(const ShardedAction& a) {
  for (std::uint64_t i = 0; i < a.n && !failed_; ++i) {
    const std::string key = a.key_prefix + ":" + std::to_string(i);
    Router::Op op = router_.begin(key);
    bool completed = false;
    for (;;) {
      refresh_config(op.shard);
      const auto target = router_.target(op);
      if (target && drive_attempt(op, *target)) {
        completed = true;
        break;
      }
      check_fleets();
      if (failed_) break;
      // A failed attempt is when a queued epoch change becomes visible —
      // exactly the moment a real client would learn its map is stale.
      adopt_pending_grow();
      const Router::Verdict v = router_.on_failure(op);
      if (v == Router::Verdict::kGiveUp) break;
      if (v == Router::Verdict::kRedirect) ++redirects_;
    }
    ++ops_attempted_;
    if (completed) {
      ++ops_completed_;
    } else if (fleets_[op.shard].paused) {
      ++aborted_faulted_;
    } else {
      ++aborted_healthy_;
    }
  }
  adopt_pending_grow();
}

ShardedResult run_sharded_process(const ShardedSpec& spec,
                                  const scenario::ProcessBackendOptions& opt) {
  ShardedProcessRunner runner(spec, opt);
  return runner.run();
}

}  // namespace ssr::shard
