#pragma once

// Deterministic multi-shard backend. One harness::World per shard, all
// advanced on a single thread in fixed round-robin slices, so a run is a
// pure function of (spec, seed): per-shard trace hashes replay bit-for-bit.
// The keyed workload goes through the client Router exactly as a real
// client would — hash the key, pick the shard's current configuration,
// retry/redirect on failure within the router's bounded budgets.

#include <memory>
#include <optional>
#include <vector>

#include "counter/counter.hpp"
#include "harness/world.hpp"
#include "scenario/invariants.hpp"
#include "scenario/trace.hpp"
#include "shard/router.hpp"
#include "shard/sharded_scenario.hpp"
#include "util/histogram.hpp"

namespace ssr::shard {

class ShardedSimRunner : public ShardedBackend {
 public:
  ShardedSimRunner(ShardedSpec spec, std::uint64_t seed);
  ~ShardedSimRunner() override;

  ShardedResult run() override;

 private:
  /// Everything one shard owns: its own fabric, protocol stack, invariant
  /// registry, trace and workload latency histogram. Shards share nothing
  /// but the lockstep clock — the isolation invariant is meaningful only
  /// because of that.
  struct ShardState {
    std::unique_ptr<harness::World> world;
    std::unique_ptr<scenario::InvariantRegistry> registry;
    std::unique_ptr<scenario::TraceRecorder> trace;
    util::LatencyHistogram latency;
    bool paused = false;
  };

  struct PendingOp {
    SimTime started = 0;
    bool done = false;
    std::optional<counter::Counter> got;
  };

  /// Advances every world by `d`, interleaved in kSliceUs chunks so no
  /// shard's virtual clock runs ahead of the others by more than one slice.
  void run_all_for(SimTime d);
  /// Lockstep await: steps all worlds until `pred` holds or `budget` of
  /// virtual time elapses. Returns whether the predicate was met.
  bool await_all(SimTime budget, const std::function<bool()>& pred);

  void apply(const ShardedAction& a);
  void do_workload(const ShardedAction& a);
  /// One routed attempt: drives an increment on `target` of `op.shard`.
  bool drive_attempt(const Router::Op& op, NodeId target);
  /// Feeds the router the shard's current membership (the common
  /// configuration when one exists, the alive set while reconfiguring).
  void refresh_config(ShardId s);
  /// Adopts the pending grown map (kGrowMap) if one is queued.
  void adopt_pending_grow();
  void fail(const ShardedAction& a, const std::string& detail);
  /// Late completions of attempts whose await timed out: fold them into the
  /// shard's counter-order monitor and latency histogram. Observing a
  /// finish late only widens its [started, finished] interval, which can
  /// never manufacture a false real-time-ordered pair.
  void harvest_outstanding();

  ShardedSpec spec_;
  std::uint64_t seed_;
  Router router_;
  std::vector<ShardState> shards_;
  std::vector<std::tuple<ShardId, NodeId, std::shared_ptr<PendingOp>>>
      outstanding_;
  bool pending_grow_ = false;
  bool failed_ = false;
  std::string failure_;
  std::uint64_t ops_attempted_ = 0;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t aborted_faulted_ = 0;
  std::uint64_t aborted_healthy_ = 0;
  std::uint64_t redirects_ = 0;
};

/// Convenience wrapper mirroring scenario::run_scenario().
ShardedResult run_sharded_sim(const ShardedSpec& spec, std::uint64_t seed);

}  // namespace ssr::shard
