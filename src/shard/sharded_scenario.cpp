#include "shard/sharded_scenario.hpp"

#include <sstream>

namespace ssr::shard {

std::string ShardedResult::summary() const {
  std::ostringstream os;
  os << name << " [seed " << seed << "]: " << (ok ? "OK" : "FAIL");
  os << " shards=" << per_shard.size();
  os << " ops=" << ops_completed << "/" << ops_attempted;
  if (ops_aborted_faulted != 0 || ops_aborted_healthy != 0) {
    os << " aborted(faulted=" << ops_aborted_faulted
       << " healthy=" << ops_aborted_healthy << ")";
  }
  if (ops_redirected != 0) os << " redirects=" << ops_redirected;
  if (!failure.empty()) os << " — " << failure;
  for (const auto& shard : per_shard) {
    for (const auto& v : shard.violations) {
      os << "\n  " << shard.name << " " << v.invariant << ": " << v.message;
    }
  }
  return os.str();
}

const std::vector<ShardedSpec>& sharded_library() {
  static const std::vector<ShardedSpec> lib = [] {
    std::vector<ShardedSpec> v;

    {
      // Acceptance scenario 1: K shards bootstrap from nothing, then one
      // keyed workload spreads over all of them through the router.
      ShardedSpec s;
      s.name = "sharded-bootstrap";
      s.description =
          "3 shards x 3 nodes bootstrap independently; a keyed increment "
          "workload routes across all shards and every shard converges";
      s.shards = 3;
      s.actions = {
          ShardedAction::await_all_converged(90 * kSec),
          ShardedAction::mark_stable(),
          ShardedAction::workload(18, "boot"),
          ShardedAction::await_all_converged(60 * kSec),
      };
      v.push_back(std::move(s));
    }

    {
      // Acceptance scenario 2: faults in two shards at once — a crash that
      // forces a reconfiguration in shard 0 and a full stall of shard 1 —
      // while shard 2 stays marked stable. Keyed ops on shards 0 and 2 must
      // complete during the fault window; ops on the stalled shard may give
      // up (bounded by the router's retry budget) without failing the run.
      ShardedSpec s;
      s.name = "sharded-fault-isolation";
      s.description =
          "crash in shard 0 + full stall of shard 1; shards 0 and 2 keep "
          "serving the workload and shard 2 never reconfigures";
      s.shards = 3;
      s.actions = {
          ShardedAction::await_all_converged(90 * kSec),
          ShardedAction::mark_stable(),
          ShardedAction::workload(9, "pre"),
          ShardedAction::crash_one_in_shard(0),
          ShardedAction::pause_shard(1),
          // Give shard 0 room to replace the crashed member before keyed
          // traffic returns; shard 1 stays stalled through the workload.
          ShardedAction::run_for(30 * kSec),
          ShardedAction::workload(18, "mid"),
          ShardedAction::resume_shard(1),
          ShardedAction::await_all_converged(150 * kSec),
          ShardedAction::workload(9, "post"),
      };
      v.push_back(std::move(s));
    }

    {
      // Acceptance scenario 3: shard-map epoch change under load. The run
      // starts with a 2-shard map over 3 fleets (fleet 2 idle), stalls the
      // map's most-loaded shard, then grows the map mid-workload: the first
      // failed attempt adopts the epoch-2 map, and keys whose slots moved
      // are redirected to the fresh shard and complete there.
      ShardedSpec s;
      s.name = "sharded-map-growth";
      s.description =
          "grow a 2-shard map to 3 shards while shard 0 is stalled; "
          "redirected keys complete on the fresh shard";
      s.shards = 3;
      s.initial_map_shards = 2;
      s.actions = {
          ShardedAction::await_all_converged(90 * kSec),
          ShardedAction::workload(12, "pre"),
          // uniform(2)'s most-loaded shard is shard 0 (ties break low), and
          // with_shard_added() steals exactly its slots first — so stalling
          // shard 0 guarantees some mid-workload redirects land on the
          // fresh shard.
          ShardedAction::pause_shard(0),
          ShardedAction::grow_map(),
          ShardedAction::workload(18, "grow"),
          ShardedAction::resume_shard(0),
          ShardedAction::await_all_converged(150 * kSec),
          ShardedAction::workload(9, "post"),
      };
      v.push_back(std::move(s));
    }

    return v;
  }();
  return lib;
}

std::optional<ShardedSpec> find_sharded_scenario(const std::string& name) {
  for (const ShardedSpec& s : sharded_library()) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

}  // namespace ssr::shard
