#include "shard/router.hpp"

namespace ssr::shard {

bool Router::adopt(const ShardMap& m) {
  if (m.epoch() <= map_.epoch()) return false;
  map_ = m;
  // Listeners may adopt further maps or mutate the listener list from the
  // callback; iterate over a snapshot of the tokens so neither invalidates
  // this loop.
  std::vector<std::size_t> tokens;
  tokens.reserve(listeners_.size());
  for (const auto& [token, cb] : listeners_) tokens.push_back(token);
  for (std::size_t token : tokens) {
    for (const auto& [t, cb] : listeners_) {
      if (t == token) {
        cb(map_);
        break;
      }
    }
  }
  return true;
}

std::size_t Router::add_listener(MapListener cb) {
  const std::size_t token = next_token_++;
  listeners_.emplace_back(token, std::move(cb));
  return token;
}

void Router::remove_listener(std::size_t token) {
  std::erase_if(listeners_,
                [token](const auto& e) { return e.first == token; });
}

void Router::note_config(ShardId shard, IdSet config) {
  configs_[shard] = std::move(config);
}

const IdSet& Router::config_of(ShardId shard) const {
  static const IdSet kEmpty;
  auto it = configs_.find(shard);
  return it == configs_.end() ? kEmpty : it->second;
}

Router::Op Router::begin(std::string key) const {
  Op op;
  op.shard = route(key);
  op.key = std::move(key);
  op.map_epoch = map_.epoch();
  return op;
}

std::optional<NodeId> Router::target(const Op& op) const {
  const IdSet& cfg = config_of(op.shard);
  if (cfg.empty()) return std::nullopt;
  return *(cfg.begin() + static_cast<std::ptrdiff_t>(op.cursor % cfg.size()));
}

Router::Verdict Router::on_failure(Op& op) const {
  if (op.map_epoch != map_.epoch()) {
    // The map moved under the op: the key may now live on another shard.
    // Re-route with a fresh attempt budget (itself bounded by
    // max_redirects_, so a flapping map cannot spin an op forever).
    if (op.redirects >= max_redirects_) return Verdict::kGiveUp;
    ++op.redirects;
    op.shard = route(op.key);
    op.map_epoch = map_.epoch();
    op.attempts = 0;
    op.cursor = 0;
    return Verdict::kRedirect;
  }
  ++op.attempts;
  ++op.cursor;  // rotate to the next member of the shard's config
  if (op.attempts >= max_attempts_) return Verdict::kGiveUp;
  return Verdict::kRetry;
}

}  // namespace ssr::shard
