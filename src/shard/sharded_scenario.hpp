#pragma once

// Multi-shard scenario model: K independent quorum groups (shards), each
// running the paper's full self-stabilizing reconfiguration stack, driven
// by one keyed workload through the client Router. A sharded scenario is a
// single sequence of shard-aware actions; per-shard correctness is judged
// by the same InvariantRegistry machinery as single-shard scenarios, and a
// cross-shard isolation invariant on top: faults injected into one shard
// must not stall convergence or workload progress in any other shard.
//
// Two execution backends exist, mirroring the single-shard engine:
//  * ShardedSimRunner      — K harness::Worlds advanced in deterministic
//    round-robin lockstep on one thread (sharded_sim.hpp);
//  * ShardedProcessRunner  — K disjoint ssr_node fleets, one OS process
//    per node, faults via signals (sharded_process.hpp, POSIX only).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "scenario/backend.hpp"
#include "shard/shard_map.hpp"
#include "util/types.hpp"

namespace ssr::shard {

struct ShardedAction {
  enum class Kind {
    kRunFor,             // every shard advances `duration`
    kAwaitAllConverged,  // every non-faulted shard converged within budget
    kWorkload,           // n keyed increments routed through the Router
    kCrashOneInShard,    // crash the lowest-id alive node of `shard`
    kPauseShard,         // stop every node of `shard` (sim: isolate fabric;
                         // process: SIGSTOP)
    kResumeShard,        // undo kPauseShard
    kGrowMap,            // router adopts map().with_shard_added()
    kMarkStable,         // open a closure window on every shard
  };

  Kind kind{};
  ShardId shard = 0;
  std::uint64_t n = 0;
  SimTime duration = 0;
  std::string key_prefix;

  static ShardedAction run_for(SimTime d) {
    return {Kind::kRunFor, 0, 0, d, {}};
  }
  static ShardedAction await_all_converged(SimTime budget) {
    return {Kind::kAwaitAllConverged, 0, 0, budget, {}};
  }
  static ShardedAction workload(std::uint64_t n, std::string key_prefix) {
    return {Kind::kWorkload, 0, n, 0, std::move(key_prefix)};
  }
  static ShardedAction crash_one_in_shard(ShardId s) {
    return {Kind::kCrashOneInShard, s, 0, 0, {}};
  }
  static ShardedAction pause_shard(ShardId s) {
    return {Kind::kPauseShard, s, 0, 0, {}};
  }
  static ShardedAction resume_shard(ShardId s) {
    return {Kind::kResumeShard, s, 0, 0, {}};
  }
  static ShardedAction grow_map() { return {Kind::kGrowMap, 0, 0, 0, {}}; }
  static ShardedAction mark_stable() {
    return {Kind::kMarkStable, 0, 0, 0, {}};
  }
};

struct ShardedSpec {
  std::string name;
  std::string description;
  /// Shard fleets instantiated (each one full protocol stack).
  std::uint32_t shards = 2;
  /// Shards covered by the initial ShardMap; 0 ⇒ all of them. Setting it
  /// below `shards` leaves the tail fleets idle until kGrowMap routes
  /// traffic to them (the shard-map epoch-change scenario).
  std::uint32_t initial_map_shards = 0;
  std::size_t nodes_per_shard = 3;
  std::vector<ShardedAction> actions;

  std::uint32_t map_shards() const {
    return initial_map_shards == 0 ? shards : initial_map_shards;
  }
};

/// Outcome of one sharded execution. `per_shard[s]` carries shard s's own
/// invariant verdict (violations, latency, event counts) in the familiar
/// ScenarioResult shape; the top-level fields aggregate the run.
struct ShardedResult {
  std::string name;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string failure;
  std::vector<scenario::ScenarioResult> per_shard;
  /// Workload accounting for the isolation invariant: ops attempted /
  /// completed overall, and aborted ops split by whether their shard was
  /// faulted when they gave up (aborts on healthy shards fail the run).
  std::uint64_t ops_attempted = 0;
  std::uint64_t ops_completed = 0;
  std::uint64_t ops_aborted_faulted = 0;
  std::uint64_t ops_aborted_healthy = 0;
  /// Redirects observed after kGrowMap epoch changes.
  std::uint64_t ops_redirected = 0;

  std::string summary() const;
};

/// A backend that can execute a ShardedSpec.
class ShardedBackend {
 public:
  virtual ~ShardedBackend() = default;
  virtual ShardedResult run() = 0;
};

/// The multi-shard scenario library: bootstrap, fault isolation, and
/// shard-map growth under load.
const std::vector<ShardedSpec>& sharded_library();
std::optional<ShardedSpec> find_sharded_scenario(const std::string& name);

}  // namespace ssr::shard
