#include "shard/sharded_sim.hpp"

#include <algorithm>
#include <sstream>

namespace ssr::shard {
namespace {

// One lockstep slice: no shard's virtual clock leads another by more.
constexpr SimTime kSliceUs = 20 * kMsec;

const char* kind_name(ShardedAction::Kind k) {
  switch (k) {
    case ShardedAction::Kind::kRunFor: return "run_for";
    case ShardedAction::Kind::kAwaitAllConverged: return "await_all_converged";
    case ShardedAction::Kind::kWorkload: return "workload";
    case ShardedAction::Kind::kCrashOneInShard: return "crash_one_in_shard";
    case ShardedAction::Kind::kPauseShard: return "pause_shard";
    case ShardedAction::Kind::kResumeShard: return "resume_shard";
    case ShardedAction::Kind::kGrowMap: return "grow_map";
    case ShardedAction::Kind::kMarkStable: return "mark_stable";
  }
  return "?";
}

std::uint64_t digest_ids(const IdSet& ids) {
  std::uint64_t h = scenario::TraceRecorder::kFnvBasis;
  for (NodeId id : ids) h = scenario::TraceRecorder::mix(h, id);
  return h;
}

}  // namespace

ShardedSimRunner::ShardedSimRunner(ShardedSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)),
      seed_(seed),
      router_(ShardMap::uniform(spec_.map_shards())) {
  shards_.reserve(spec_.shards);
  for (std::uint32_t s = 0; s < spec_.shards; ++s) {
    harness::WorldConfig cfg;
    // Distinct, seed-derived stream per shard: shard fabrics stay
    // statistically independent while the whole run replays from one seed.
    cfg.seed = seed_ + 0x9E3779B97F4A7C15ULL * (s + 1);
    ShardState shard;
    shard.world = std::make_unique<harness::World>(cfg);
    shard.registry = std::make_unique<scenario::InvariantRegistry>(*shard.world);
    shard.trace = std::make_unique<scenario::TraceRecorder>();
    shard.trace->attach(*shard.world);
    for (std::size_t i = 1; i <= spec_.nodes_per_shard; ++i) {
      const NodeId id = static_cast<NodeId>(i);
      shard.world->add_node(id);
      shard.trace->attach_node(*shard.world, id);
      shard.registry->attach_node(id);
      shard.trace->record(scenario::TraceKind::kNodeAdded, id);
    }
    shards_.push_back(std::move(shard));
  }
}

ShardedSimRunner::~ShardedSimRunner() = default;

void ShardedSimRunner::run_all_for(SimTime d) {
  SimTime advanced = 0;
  while (advanced < d) {
    const SimTime step = std::min(kSliceUs, d - advanced);
    for (ShardState& shard : shards_) shard.world->run_for(step);
    advanced += step;
  }
}

bool ShardedSimRunner::await_all(SimTime budget,
                                 const std::function<bool()>& pred) {
  SimTime waited = 0;
  for (;;) {
    if (pred()) return true;
    if (waited >= budget) return false;
    const SimTime step = std::min(kSliceUs, budget - waited);
    run_all_for(step);
    waited += step;
  }
}

void ShardedSimRunner::fail(const ShardedAction& a, const std::string& detail) {
  if (failed_) return;
  failed_ = true;
  std::ostringstream os;
  os << kind_name(a.kind) << ": " << detail;
  failure_ = os.str();
}

void ShardedSimRunner::refresh_config(ShardId s) {
  harness::World& world = *shards_[s].world;
  const auto common = world.common_config();
  router_.note_config(s, common ? *common : world.alive());
}

void ShardedSimRunner::adopt_pending_grow() {
  if (!pending_grow_) return;
  pending_grow_ = false;
  router_.adopt(router_.map().with_shard_added());
}

ShardedResult ShardedSimRunner::run() {
  for (const ShardedAction& a : spec_.actions) {
    if (failed_) break;
    for (ShardState& shard : shards_) {
      shard.trace->record(scenario::TraceKind::kActionApplied, kNoNode,
                          static_cast<std::uint64_t>(a.kind), a.n);
    }
    apply(a);
  }
  harvest_outstanding();

  ShardedResult r;
  r.name = spec_.name;
  r.seed = seed_;
  r.failure = failure_;
  r.ops_attempted = ops_attempted_;
  r.ops_completed = ops_completed_;
  r.ops_aborted_faulted = aborted_faulted_;
  r.ops_aborted_healthy = aborted_healthy_;
  r.ops_redirected = redirects_;

  bool shards_ok = true;
  for (std::uint32_t s = 0; s < spec_.shards; ++s) {
    ShardState& shard = shards_[s];
    scenario::ScenarioResult pr;
    pr.name = spec_.name + "/shard" + std::to_string(s);
    pr.seed = seed_;
    pr.violations = shard.registry->check_all();
    pr.ok = pr.violations.empty();
    pr.trace_hash = shard.trace->hash();
    pr.trace_events = shard.trace->size();
    pr.sim_time = shard.world->scheduler().now();
    pr.sched_events = shard.world->scheduler().events_executed();
    shard.world->network().for_each_channel(
        [&pr](NodeId, NodeId, net::Channel& ch) {
          pr.packets_sent += ch.stats().sent;
          pr.packets_delivered += ch.stats().delivered;
        });
    pr.ops_completed = shard.latency.count();
    pr.op_p50_us = shard.latency.percentile(50);
    pr.op_p99_us = shard.latency.percentile(99);
    shards_ok = shards_ok && pr.ok;
    r.per_shard.push_back(std::move(pr));
  }

  // The cross-shard isolation invariant: an op may give up only when its
  // own shard was faulted; any abort on a healthy shard fails the run.
  if (aborted_healthy_ != 0 && failure_.empty()) {
    r.failure = std::to_string(aborted_healthy_) +
                " op(s) aborted on healthy shards (isolation violated)";
  }
  r.ok = !failed_ && shards_ok && aborted_healthy_ == 0;
  return r;
}

void ShardedSimRunner::apply(const ShardedAction& a) {
  // A queued map growth lands lazily inside the next workload (the "epoch
  // change under load" path); any other action materializes it up front.
  if (a.kind != ShardedAction::Kind::kWorkload &&
      a.kind != ShardedAction::Kind::kGrowMap) {
    adopt_pending_grow();
  }
  switch (a.kind) {
    case ShardedAction::Kind::kRunFor:
      run_all_for(a.duration);
      return;
    case ShardedAction::Kind::kAwaitAllConverged: {
      auto all_converged = [&] {
        for (const ShardState& shard : shards_) {
          if (!shard.paused && !shard.world->converged()) return false;
        }
        return true;
      };
      if (!await_all(a.duration, all_converged)) {
        fail(a, "a healthy shard missed the convergence budget");
        return;
      }
      for (ShardState& shard : shards_) {
        if (shard.paused) continue;
        shard.trace->record(scenario::TraceKind::kConverged, kNoNode,
                            digest_ids(*shard.world->common_config()));
      }
      return;
    }
    case ShardedAction::Kind::kWorkload:
      do_workload(a);
      return;
    case ShardedAction::Kind::kCrashOneInShard: {
      ShardState& shard = shards_[a.shard];
      const IdSet alive = shard.world->alive();
      if (alive.empty()) {
        fail(a, "no alive node to crash in shard " + std::to_string(a.shard));
        return;
      }
      const NodeId victim = *alive.begin();
      shard.registry->unmark_stable();
      shard.world->crash(victim);
      shard.trace->record(scenario::TraceKind::kNodeCrashed, victim);
      return;
    }
    case ShardedAction::Kind::kPauseShard: {
      ShardState& shard = shards_[a.shard];
      shard.registry->unmark_stable();
      shard.paused = true;
      for (NodeId id : shard.world->alive()) {
        shard.world->network().isolate(id);
        shard.trace->record(scenario::TraceKind::kNodePaused, id);
      }
      return;
    }
    case ShardedAction::Kind::kResumeShard: {
      ShardState& shard = shards_[a.shard];
      shard.paused = false;
      for (NodeId id : shard.world->alive()) {
        shard.world->network().rejoin(id);
        shard.trace->record(scenario::TraceKind::kNodeResumed, id);
      }
      return;
    }
    case ShardedAction::Kind::kGrowMap:
      pending_grow_ = true;
      return;
    case ShardedAction::Kind::kMarkStable:
      for (ShardState& shard : shards_) {
        if (shard.paused) continue;
        shard.registry->mark_stable();
        shard.trace->record(scenario::TraceKind::kStableMarked, kNoNode);
      }
      return;
  }
}

bool ShardedSimRunner::drive_attempt(const Router::Op& op, NodeId target) {
  ShardState& shard = shards_[op.shard];
  harness::World& world = *shard.world;
  if (!world.has_node(target) || world.node(target).crashed()) return false;
  auto& client = world.node(target).increment();
  // A stalled shard cannot complete anything; the runner knows that (it
  // injected the stall) and keeps per-attempt patience short so the
  // router's bounded give-up path doesn't dominate virtual time. The
  // router's verdicts are unaffected — it still burns its full budget.
  const SimTime busy_budget = shard.paused ? 5 * kSec : 30 * kSec;
  const SimTime done_budget = shard.paused ? 5 * kSec : 120 * kSec;
  if (!await_all(busy_budget, [&] { return !client.busy(); })) return false;
  auto st = std::make_shared<PendingOp>();
  st->started = world.scheduler().now();
  if (!client.begin([st](std::optional<counter::Counter> c) {
        st->got = std::move(c);
        st->done = true;
      })) {
    return false;
  }
  await_all(done_budget, [&] { return st->done; });
  if (st->done && st->got) {
    shard.registry->counter_order().record(st->started,
                                           world.scheduler().now(), *st->got);
    shard.latency.record(world.scheduler().now() - st->started);
    shard.trace->record(scenario::TraceKind::kIncrementDone, target, 1,
                        st->got->seqn);
    return true;
  }
  if (st->done) {
    shard.trace->record(scenario::TraceKind::kIncrementDone, target, 0, 0);
  } else {
    outstanding_.emplace_back(op.shard, target, st);
  }
  return false;
}

void ShardedSimRunner::do_workload(const ShardedAction& a) {
  for (std::uint64_t i = 0; i < a.n; ++i) {
    const std::string key = a.key_prefix + ":" + std::to_string(i);
    Router::Op op = router_.begin(key);
    bool completed = false;
    for (;;) {
      refresh_config(op.shard);
      const auto target = router_.target(op);
      if (target && drive_attempt(op, *target)) {
        completed = true;
        break;
      }
      // A failed attempt is when a queued epoch change becomes visible —
      // exactly the moment a real client would learn its map is stale.
      adopt_pending_grow();
      const Router::Verdict v = router_.on_failure(op);
      if (v == Router::Verdict::kGiveUp) break;
      if (v == Router::Verdict::kRedirect) ++redirects_;
    }
    ++ops_attempted_;
    if (completed) {
      ++ops_completed_;
    } else if (shards_[op.shard].paused) {
      ++aborted_faulted_;
    } else {
      ++aborted_healthy_;
    }
  }
  // No attempt failed, so nothing pulled the queued map in: adopt it now
  // rather than letting it leak past the workload it was aimed at.
  adopt_pending_grow();
  harvest_outstanding();
}

void ShardedSimRunner::harvest_outstanding() {
  std::erase_if(outstanding_, [&](const auto& entry) {
    const auto& [s, target, st] = entry;
    if (!st->done) return false;
    if (st->got) {
      ShardState& shard = shards_[s];
      shard.registry->counter_order().record(
          st->started, shard.world->scheduler().now(), *st->got);
      shard.latency.record(shard.world->scheduler().now() - st->started);
      shard.trace->record(scenario::TraceKind::kIncrementDone, target, 1,
                          st->got->seqn);
    }
    return true;
  });
}

ShardedResult run_sharded_sim(const ShardedSpec& spec, std::uint64_t seed) {
  ShardedSimRunner runner(spec, seed);
  return runner.run();
}

}  // namespace ssr::shard
