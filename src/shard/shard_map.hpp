#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "wire/wire.hpp"

namespace ssr::shard {

/// Identifier of one quorum group (shard). Shards are numbered densely
/// from 0; each one runs an independent instance of the paper's
/// self-stabilizing reconfiguration stack.
using ShardId = std::uint32_t;

/// Versioned key→shard assignment over a fixed slot space.
///
/// Keys hash (FNV-1a over the raw bytes — byte-order independent, so every
/// process on every architecture computes the same slot) into one of
/// kSlots slots; each slot is owned by exactly one shard. The map carries
/// a monotonic epoch: routers only ever adopt a map with a higher epoch,
/// so a stale map seen during reconfiguration loses deterministically.
///
/// Rebalancing moves whole slots, never individual keys: adding a shard
/// reassigns ~kSlots/new_count slots taken round-robin from the currently
/// most-loaded shards, which bounds key movement to ~1/K of the space
/// (stable hashing) and is itself deterministic — two routers that apply
/// the same transition compute identical maps.
class ShardMap {
 public:
  /// Slot-space size. 64 slots keeps the wire image small (one byte per
  /// slot) while allowing fine-grained balance up to dozens of shards.
  static constexpr std::size_t kSlots = 64;

  /// An empty (0-shard) map routes nothing; epoch 0 never wins adoption.
  ShardMap() = default;

  /// Uniform assignment of kSlots slots over `shard_count` shards
  /// (slot s → s % shard_count), at the given epoch.
  static ShardMap uniform(std::uint32_t shard_count, std::uint64_t epoch = 1);

  std::uint64_t epoch() const { return epoch_; }
  std::uint32_t shard_count() const { return shard_count_; }
  bool empty() const { return shard_count_ == 0; }

  /// Stable, endianness-independent key hash (FNV-1a 64 over bytes).
  static std::uint64_t hash_key(std::string_view key);
  static std::uint32_t slot_for_key(std::string_view key) {
    return static_cast<std::uint32_t>(hash_key(key) % kSlots);
  }

  ShardId shard_of_slot(std::uint32_t slot) const { return slots_[slot]; }
  ShardId shard_for_key(std::string_view key) const {
    return slots_[slot_for_key(key)];
  }

  /// Number of slots currently owned by `shard`.
  std::uint32_t slots_owned(ShardId shard) const;

  /// Deterministic minimal-movement transition: a new shard (id =
  /// shard_count()) takes floor(kSlots / (count+1)) slots, each stolen
  /// from whichever shard owns the most slots at that moment (lowest slot
  /// index of that shard moves). Every surviving slot assignment is
  /// untouched. The result's epoch is epoch()+1.
  ShardMap with_shard_added() const;

  /// Same map re-stamped at a higher epoch (shard-map "update in place",
  /// e.g. after an administrative reload that changed nothing).
  ShardMap at_epoch(std::uint64_t epoch) const;

  void encode(wire::Writer& w) const;
  static std::optional<ShardMap> decode(wire::Reader& r);

  friend bool operator==(const ShardMap&, const ShardMap&) = default;

  std::string to_string() const;

 private:
  std::uint64_t epoch_ = 0;
  std::uint32_t shard_count_ = 0;
  ShardId slots_[kSlots] = {};
};

}  // namespace ssr::shard
