#include "shard/shard_map.hpp"

#include "util/assert.hpp"

namespace ssr::shard {

ShardMap ShardMap::uniform(std::uint32_t shard_count, std::uint64_t epoch) {
  SSR_ASSERT(shard_count > 0, "a shard map needs at least one shard");
  SSR_ASSERT(shard_count <= kSlots, "more shards than slots");
  ShardMap m;
  m.epoch_ = epoch;
  m.shard_count_ = shard_count;
  for (std::size_t s = 0; s < kSlots; ++s) {
    m.slots_[s] = static_cast<ShardId>(s % shard_count);
  }
  return m;
}

std::uint64_t ShardMap::hash_key(std::string_view key) {
  // FNV-1a 64: byte-at-a-time, so the result is identical on every
  // architecture regardless of endianness or word size.
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint32_t ShardMap::slots_owned(ShardId shard) const {
  std::uint32_t n = 0;
  for (ShardId owner : slots_) {
    if (owner == shard) ++n;
  }
  return n;
}

ShardMap ShardMap::with_shard_added() const {
  SSR_ASSERT(shard_count_ > 0, "cannot grow an empty map");
  SSR_ASSERT(shard_count_ < kSlots, "slot space exhausted");
  ShardMap m = *this;
  ++m.epoch_;
  const ShardId fresh = m.shard_count_++;
  const std::uint32_t take = static_cast<std::uint32_t>(kSlots) /
                             m.shard_count_;
  for (std::uint32_t moved = 0; moved < take; ++moved) {
    // Steal from the currently most-loaded shard; ties break toward the
    // lower shard id, and within a shard the lowest-numbered slot moves.
    // Entirely deterministic, so independently-updating routers agree.
    ShardId victim = 0;
    std::uint32_t victim_load = 0;
    for (ShardId s = 0; s < fresh; ++s) {
      const std::uint32_t load = m.slots_owned(s);
      if (load > victim_load) {
        victim = s;
        victim_load = load;
      }
    }
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
      if (m.slots_[slot] == victim) {
        m.slots_[slot] = fresh;
        break;
      }
    }
  }
  return m;
}

ShardMap ShardMap::at_epoch(std::uint64_t epoch) const {
  ShardMap m = *this;
  m.epoch_ = epoch;
  return m;
}

void ShardMap::encode(wire::Writer& w) const {
  w.u64(epoch_);
  w.u32(shard_count_);
  // One byte per slot: ShardId < kSlots ≤ 255.
  for (ShardId owner : slots_) w.u8(static_cast<std::uint8_t>(owner));
}

std::optional<ShardMap> ShardMap::decode(wire::Reader& r) {
  ShardMap m;
  m.epoch_ = r.u64();
  m.shard_count_ = r.u32();
  for (std::size_t s = 0; s < kSlots; ++s) m.slots_[s] = r.u8();
  if (!r.ok()) return std::nullopt;
  if (m.shard_count_ == 0 || m.shard_count_ > kSlots) return std::nullopt;
  for (ShardId owner : m.slots_) {
    if (owner >= m.shard_count_) return std::nullopt;
  }
  return m;
}

std::string ShardMap::to_string() const {
  std::string out = "shardmap{epoch=" + std::to_string(epoch_) +
                    " shards=" + std::to_string(shard_count_) + " slots=";
  for (ShardId owner : slots_) out += std::to_string(owner);
  out += "}";
  return out;
}

}  // namespace ssr::shard
