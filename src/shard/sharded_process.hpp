#pragma once

// Process execution backend for sharded scenarios (POSIX only).
//
// K disjoint ssr_node fleets — one ProcessRunner per shard, each in its own
// scratch directory with its own seed and a distinct --shard tag — driven
// concurrently by one wall-clock loop. The fleets run in real time in
// parallel, so run_for/await stretches sample every fleet in one sweep
// instead of paying the duration once per shard.
//
// The keyed workload goes through the same client-side Router as the
// simulator backend: hash the key, address the shard's sampled
// configuration, retry/redirect on failure, adopt a queued map growth
// lazily on the first failed attempt (the "epoch change under load" path).
// One routed attempt is one single-op increment_burst stepped into the
// owning fleet; completion is judged by that fleet's harvested-op delta
// (a paused fleet silently skips the burst, so the attempt fails
// immediately and the router rotates on).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "scenario/process_runner.hpp"
#include "shard/router.hpp"
#include "shard/sharded_scenario.hpp"

namespace ssr::shard {

/// ShardedBackend over real processes. One runner instance runs one spec
/// once; fleet scratch directories follow ProcessRunner's keep-on-failure
/// rules. The per-fleet options are taken from `opt` with work_dir, seed
/// and shard specialized per fleet.
///
/// Threading: deliberately single-threaded. Fleets are separate OS
/// processes driven round-robin from one control loop, so there is no
/// shared in-process state to guard — nothing here needs SSR_GUARDED_BY
/// (see util/thread_annotations.hpp for the surfaces that do).
class ShardedProcessRunner final : public ShardedBackend {
 public:
  ShardedProcessRunner(ShardedSpec spec, scenario::ProcessBackendOptions opt);
  ~ShardedProcessRunner() override;

  ShardedProcessRunner(const ShardedProcessRunner&) = delete;
  ShardedProcessRunner& operator=(const ShardedProcessRunner&) = delete;

  ShardedResult run() override;

 private:
  struct Fleet {
    std::unique_ptr<scenario::ProcessRunner> runner;
    bool paused = false;
    /// The ids stopped by kPauseShard (resume must target exactly these).
    IdSet paused_ids;
  };

  SimTime now() const;
  SimTime scaled(SimTime d) const;
  SimTime await_budget(SimTime d) const;

  void apply(const ShardedAction& a);
  void do_workload(const ShardedAction& a);
  bool drive_attempt(const Router::Op& op, NodeId target);
  void refresh_config(ShardId s);
  void adopt_pending_grow();
  /// One sampling sweep over every unpaused fleet.
  void sample_fleets();
  /// Propagates the first fleet-level failure into the run.
  void check_fleets();
  void fail(const ShardedAction& a, const std::string& detail);

  ShardedSpec spec_;
  scenario::ProcessBackendOptions opt_;
  std::uint64_t epoch_usec_ = 0;
  Router router_;
  std::vector<Fleet> fleets_;
  bool pending_grow_ = false;
  bool failed_ = false;
  std::string failure_;
  std::uint64_t ops_attempted_ = 0;
  std::uint64_t ops_completed_ = 0;
  std::uint64_t aborted_faulted_ = 0;
  std::uint64_t aborted_healthy_ = 0;
  std::uint64_t redirects_ = 0;
};

/// Convenience one-shot: build, run, return.
ShardedResult run_sharded_process(const ShardedSpec& spec,
                                  const scenario::ProcessBackendOptions& opt);

}  // namespace ssr::shard
