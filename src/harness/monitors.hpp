#pragma once

#include <string>
#include <vector>

#include "harness/world.hpp"

namespace ssr::harness {

/// Records every configuration change at every node — used to verify
/// closure (Theorem 3.16: no changes during legal executions) and to count
/// reconfigurations in the benches.
class ConfigHistoryMonitor {
 public:
  struct Event {
    SimTime when = 0;
    NodeId node = kNoNode;
    reconf::ConfigValue config;
  };

  /// Attaches to every node currently in the world.
  void attach(World& world);
  void attach_node(World& world, NodeId id);

  /// Direct feed for world-less observers (the process backend records
  /// changes it samples over the control socket).
  void record(SimTime when, NodeId node, reconf::ConfigValue config) {
    events_.push_back(Event{when, node, std::move(config)});
  }

  const std::vector<Event>& events() const { return events_; }
  std::size_t events_since(SimTime t) const;
  void clear() { events_.clear(); }

 private:
  std::vector<Event> events_;
};

/// Validates Theorem 4.6: counters returned by completed increments are
/// strictly increasing with respect to real-time order — if increment A
/// completed before increment B began, then counter(A) ≺ct counter(B).
class CounterOrderMonitor {
 public:
  struct Op {
    SimTime started = 0;
    SimTime finished = 0;
    counter::Counter value;
  };

  void record(SimTime started, SimTime finished, const counter::Counter& c) {
    ops_.push_back(Op{started, finished, c});
  }

  std::size_t completed() const { return ops_.size(); }
  /// Number of real-time-ordered pairs that violate ≺ct (must be 0).
  std::size_t violations() const;

 private:
  std::vector<Op> ops_;
};

/// Validates the virtual synchrony property (Theorem 4.13): any two
/// processors that deliver a batch for the same (view id, round) deliver
/// exactly the same messages, and replica digests never diverge at equal
/// (view, round).
class VirtualSynchronyMonitor {
 public:
  void attach(World& world);
  void attach_node(World& world, NodeId id);

  std::size_t deliveries() const { return deliveries_; }
  std::size_t mismatches() const { return mismatches_; }
  std::uint64_t rounds_observed() const { return keys_.size(); }

 private:
  struct Key {
    counter::Counter view_id;
    std::uint64_t rnd;
    std::uint64_t digest;
  };
  static std::uint64_t digest_msgs(
      const std::vector<std::pair<NodeId, wire::Bytes>>& msgs);

  std::vector<Key> keys_;
  std::size_t deliveries_ = 0;
  std::size_t mismatches_ = 0;
};

}  // namespace ssr::harness
