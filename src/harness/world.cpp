#include "harness/world.hpp"

#include "util/assert.hpp"

namespace ssr::harness {

World::World(WorldConfig cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      net_(sched_, Rng(cfg.seed ^ 0xC0FFEE), cfg.channel),
      transport_(net_) {
  // Warm start: pre-size the event slab/heap so scenario startup does not
  // pay growth reallocations on the first traffic bursts. The steady-state
  // population is one timer per node plus capacity-bounded in-flight
  // packets per channel pair; 4096 covers every library scenario.
  sched_.reserve(4096);
  if (cfg_.adversary.enabled) {
    adversary_ = std::make_unique<net::Adversary>(
        sched_, Rng(cfg_.seed ^ 0xADE551ULL), cfg_.adversary);
    // The believed coordinator: the VS layer's elected one when available,
    // otherwise the lowest alive id (the deterministic tie-break every
    // choose rule in Algorithm 3.1 leans toward).
    adversary_->set_coordinator_probe([this]() -> NodeId {
      for (const auto& [id, n] : nodes_) {
        if (!n->started() || n->crashed()) continue;
        vs::VsSmr* v = n->vs();
        if (v != nullptr && !v->view().is_null() && !v->no_coordinator()) {
          return v->coordinator();
        }
      }
      for (const auto& [id, n] : nodes_) {
        if (n->started() && !n->crashed()) return id;
      }
      return kNoNode;
    });
    net_.set_adversary(adversary_.get());
  }
}

node::Node& World::add_stopped_node(NodeId id) {
  SSR_ASSERT(!nodes_.count(id), "node id reused — identifiers are unique");
  auto n = std::make_unique<node::Node>(transport_, id, cfg_.node, rng_.fork());
  auto& ref = *n;
  nodes_[id] = std::move(n);
  return ref;
}

node::Node& World::add_node(NodeId id) {
  node::Node& n = add_stopped_node(id);
  boot(id);
  return n;
}

void World::boot(NodeId id) {
  IdSet seeds;
  for (const auto& [other, n] : nodes_) {
    if (other != id && n->started() && !n->crashed()) seeds.insert(other);
  }
  node(id).start(seeds);
}

node::Node& World::node(NodeId id) {
  auto it = nodes_.find(id);
  SSR_ASSERT(it != nodes_.end(), "unknown node id");
  return *it->second;
}

void World::crash(NodeId id) { node(id).crash(); }

IdSet World::alive() const {
  IdSet out;
  for (const auto& [id, n] : nodes_) {
    if (n->started() && !n->crashed()) out.insert(id);
  }
  return out;
}

IdSet World::all_ids() const {
  IdSet out;
  for (const auto& [id, n] : nodes_) {
    (void)n;
    out.insert(id);
  }
  return out;
}

bool World::converged() const {
  std::optional<IdSet> common;
  bool any = false;
  for (const auto& [id, n] : nodes_) {
    (void)id;
    if (!n->started() || n->crashed()) continue;
    any = true;
    if (!n->recsa().no_reco()) return false;
    const reconf::ConfigValue& c = n->recsa().get_config_ref();
    if (!c.is_proper()) return false;
    // Agreement alone is not a fixpoint: if the node's prediction policy
    // already advises reconfiguration, a config change is imminent and a
    // caller that marks the system stable here races it (scenario_fuzz
    // shrank a closure violation down to exactly this window).
    if (n->reconfig_advised()) return false;
    if (!common) {
      common = c.ids();
    } else if (!(*common == c.ids())) {
      return false;
    }
  }
  return any;
}

std::optional<IdSet> World::common_config() const {
  if (!converged()) return std::nullopt;
  for (const auto& [id, n] : nodes_) {
    (void)id;
    if (n->started() && !n->crashed()) return n->recsa().get_config().ids();
  }
  return std::nullopt;
}

std::optional<SimTime> World::run_until_converged(SimTime timeout,
                                                  SimTime check_every) {
  const SimTime start = sched_.now();
  const SimTime deadline = start + timeout;
  while (sched_.now() < deadline) {
    if (converged()) return sched_.now() - start;
    run_for(check_every);
  }
  return converged() ? std::optional<SimTime>(sched_.now() - start)
                     : std::nullopt;
}

bool World::vs_stable() const {
  if (!converged()) return false;
  std::optional<vs::View> common;
  NodeId crd = kNoNode;
  for (const auto& [id, n] : nodes_) {
    (void)id;
    if (!n->started() || n->crashed()) continue;
    vs::VsSmr* v = const_cast<node::Node&>(*n).vs();
    if (v == nullptr) return false;
    if (!n->recsa().is_participant()) continue;
    if (v->status() != vs::Status::kMulticast) return false;
    if (v->view().is_null()) return false;
    if (v->no_coordinator()) return false;
    if (!common) {
      common = v->view();
      crd = v->coordinator();
    } else if (!(*common == v->view()) || crd != v->coordinator()) {
      return false;
    }
  }
  return common.has_value();
}

std::optional<SimTime> World::run_until_vs_stable(SimTime timeout,
                                                  SimTime check_every) {
  const SimTime start = sched_.now();
  const SimTime deadline = start + timeout;
  while (sched_.now() < deadline) {
    if (vs_stable()) return sched_.now() - start;
    run_for(check_every);
  }
  return vs_stable() ? std::optional<SimTime>(sched_.now() - start)
                     : std::nullopt;
}

}  // namespace ssr::harness
