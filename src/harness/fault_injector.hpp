#pragma once

#include "harness/world.hpp"

namespace ssr::harness {

/// Transient-fault injection (the paper's fault model: an arbitrary
/// starting state of processors and channels). Every injector leaves the
/// *code* intact and corrupts only state, as self-stabilization requires.
class FaultInjector {
 public:
  explicit FaultInjector(World& world, std::uint64_t seed)
      : world_(world), rng_(seed) {}

  /// Arbitrary recSA state at one node (configs, notifications, echoes).
  void corrupt_recsa(NodeId id);
  /// Arbitrary recSA state at every alive node — the canonical "arbitrary
  /// starting state" of the convergence theorems.
  void corrupt_all_recsa();
  /// Plants a specific configuration conflict: half the nodes believe
  /// `a`, the rest believe `b`.
  void split_config(const IdSet& a, const IdSet& b);
  /// Scrambles failure-detector heartbeat counts.
  void corrupt_fd(NodeId id);
  void corrupt_all_fd();
  /// Fills every channel with garbage packets (stale channel content).
  void fill_channels_with_garbage(std::size_t per_channel = 2);
  /// Stale recMA flags (bounded-triggering experiment, Lemma 3.18).
  void plant_recma_flags(NodeId id, bool no_maj, bool need_reconf);
  /// Near-exhausted counter planted at a member (epoch rollover tests).
  void plant_exhausted_counter(NodeId id, std::uint64_t seqn);

  Rng& rng() { return rng_; }

 private:
  World& world_;
  Rng rng_;
};

}  // namespace ssr::harness
