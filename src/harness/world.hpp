#pragma once

#include <map>
#include <memory>
#include <optional>

#include "net/adversary.hpp"
#include "net/sim_transport.hpp"
#include "node/node.hpp"

namespace ssr::harness {

struct WorldConfig {
  std::uint64_t seed = 1;
  net::ChannelConfig channel;
  /// Worst-case delivery policy (disabled by default: every pinned replay
  /// hash was recorded under uniform delays).
  net::AdversaryConfig adversary;
  node::NodeConfig node;

  WorldConfig() {
    // The data-link thresholds follow the channel capacity ("more than the
    // total round-trip capacity" — paper, Section 2).
    channel.capacity = 3;
    node.mux.link.ack_threshold = 2 * channel.capacity + 1;
    node.mux.link.clean_threshold = 2 * channel.capacity + 1;
  }
};

/// Simulation world: scheduler + network + a SimTransport over them + a set
/// of full protocol nodes. This is the entry point used by the examples,
/// the integration tests and every bench scenario. Nodes see only the
/// net::Transport seam; the underlying fabric stays available for fault
/// injection and channel inspection.
class World {
 public:
  explicit World(WorldConfig cfg);

  /// Creates and boots a node, seeding its links with all currently alive
  /// nodes. Returns the node (owned by the world).
  node::Node& add_node(NodeId id);
  /// Creates a node without booting it (tests that need pre-boot wiring).
  node::Node& add_stopped_node(NodeId id);
  void boot(NodeId id);

  node::Node& node(NodeId id);
  bool has_node(NodeId id) const { return nodes_.count(id) != 0; }
  void crash(NodeId id);

  IdSet alive() const;
  IdSet all_ids() const;

  sim::Scheduler& scheduler() { return sched_; }
  net::Network& network() { return net_; }
  /// Null unless WorldConfig::adversary.enabled.
  net::Adversary* adversary() { return adversary_.get(); }
  net::Transport& transport() { return transport_; }
  const WorldConfig& config() const { return cfg_; }
  Rng& rng() { return rng_; }

  void run_for(SimTime d) { sched_.run_for(d); }
  void run_until(SimTime t) { sched_.run_until(t); }

  // -- Convergence predicates (legal-execution detectors) --------------------

  /// True when every alive node reports noReco() and the same proper
  /// configuration — the conflict-free state of Theorem 3.15.
  bool converged() const;
  /// The common configuration when converged.
  std::optional<IdSet> common_config() const;
  /// Runs until converged() holds (checked every `check_every`); returns
  /// the virtual time spent, or nullopt on timeout.
  std::optional<SimTime> run_until_converged(SimTime timeout,
                                             SimTime check_every = 20 * kMsec);
  /// True when every alive node's VS layer agrees on one installed view
  /// containing a configuration majority, with a single coordinator.
  bool vs_stable() const;
  std::optional<SimTime> run_until_vs_stable(SimTime timeout,
                                             SimTime check_every = 20 * kMsec);

 private:
  WorldConfig cfg_;
  Rng rng_;
  sim::Scheduler sched_;
  net::Network net_;
  /// Created (and installed on net_) before any channel exists, so every
  /// lazily created channel sees the same policy pointer.
  std::unique_ptr<net::Adversary> adversary_;
  net::SimTransport transport_;
  std::map<NodeId, std::unique_ptr<node::Node>> nodes_;
};

}  // namespace ssr::harness
