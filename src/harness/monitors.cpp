#include "harness/monitors.hpp"

#include <algorithm>

namespace ssr::harness {

void ConfigHistoryMonitor::attach(World& world) {
  for (NodeId id : world.all_ids()) attach_node(world, id);
}

void ConfigHistoryMonitor::attach_node(World& world, NodeId id) {
  auto& n = world.node(id);
  n.recsa().add_config_change_handler(
      [this, &world, id](const reconf::ConfigValue& c) {
        events_.push_back(Event{world.scheduler().now(), id, c});
      });
}

std::size_t ConfigHistoryMonitor::events_since(SimTime t) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [t](const Event& e) { return e.when >= t; }));
}

std::size_t CounterOrderMonitor::violations() const {
  std::size_t bad = 0;
  for (std::size_t a = 0; a < ops_.size(); ++a) {
    for (std::size_t b = 0; b < ops_.size(); ++b) {
      if (a == b) continue;
      if (ops_[a].finished < ops_[b].started) {
        if (!counter::Counter::ct_less(ops_[a].value, ops_[b].value)) ++bad;
      }
    }
  }
  return bad;
}

std::uint64_t VirtualSynchronyMonitor::digest_msgs(
    const std::vector<std::pair<NodeId, wire::Bytes>>& msgs) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& [id, m] : msgs) {
    h = (h ^ id) * 1099511628211ULL;
    for (std::uint8_t b : m) h = (h ^ b) * 1099511628211ULL;
  }
  return h;
}

void VirtualSynchronyMonitor::attach(World& world) {
  for (NodeId id : world.all_ids()) attach_node(world, id);
}

void VirtualSynchronyMonitor::attach_node(World& world, NodeId id) {
  auto& n = world.node(id);
  if (n.vs() == nullptr) return;
  n.vs()->add_deliver_handler(
      [this](const vs::View& v, std::uint64_t rnd,
             const std::vector<std::pair<NodeId, wire::Bytes>>& msgs) {
        ++deliveries_;
        const std::uint64_t d = digest_msgs(msgs);
        for (const Key& k : keys_) {
          if (k.view_id == v.id && k.rnd == rnd) {
            if (k.digest != d) ++mismatches_;
            return;
          }
        }
        keys_.push_back(Key{v.id, rnd, d});
      });
}

}  // namespace ssr::harness
