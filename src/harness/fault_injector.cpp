#include "harness/fault_injector.hpp"

namespace ssr::harness {

void FaultInjector::corrupt_recsa(NodeId id) {
  world_.node(id).recsa().inject_corruption(rng_, world_.alive());
}

void FaultInjector::corrupt_all_recsa() {
  for (NodeId id : world_.alive()) corrupt_recsa(id);
}

void FaultInjector::split_config(const IdSet& a, const IdSet& b) {
  bool first_half = true;
  const IdSet alive = world_.alive();
  std::size_t i = 0;
  for (NodeId id : alive) {
    first_half = i < alive.size() / 2;
    auto& recsa = world_.node(id).recsa();
    const IdSet& mine = first_half ? a : b;
    recsa.inject_config(id, reconf::ConfigValue::set(mine));
    ++i;
  }
}

void FaultInjector::corrupt_fd(NodeId id) {
  world_.node(id).failure_detector().inject_corruption(rng_);
}

void FaultInjector::corrupt_all_fd() {
  for (NodeId id : world_.alive()) corrupt_fd(id);
}

void FaultInjector::fill_channels_with_garbage(std::size_t per_channel) {
  world_.network().for_each_channel(
      [&](NodeId, NodeId, net::Channel& ch) { ch.inject_garbage(per_channel); });
}

void FaultInjector::plant_recma_flags(NodeId id, bool no_maj,
                                      bool need_reconf) {
  auto& n = world_.node(id);
  for (NodeId other : world_.alive()) {
    n.recma().inject_flags(other, no_maj, need_reconf);
  }
}

void FaultInjector::plant_exhausted_counter(NodeId id, std::uint64_t seqn) {
  auto& n = world_.node(id);
  auto& store = n.counters().store();
  counter::Counter c;
  c.lbl = label::Label::next_label(id, std::vector<label::Label>{}, rng_);
  c.seqn = seqn;
  c.wid = id;
  store.inject_max(id, counter::CounterPair::of(c));
}

}  // namespace ssr::harness
