#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace ssr::util {

// std::mutex with clang thread-safety-analysis capability attributes, so
// fields can be declared SSR_GUARDED_BY(mu_) and functions SSR_REQUIRES(mu_).
// The analysis does not see through std::lock_guard<std::mutex>, hence the
// thin wrapper instead of using std::mutex directly.
class SSR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SSR_ACQUIRE() { mu_.lock(); }
  void unlock() SSR_RELEASE() { mu_.unlock(); }
  bool try_lock() SSR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// Scoped lock for util::Mutex, visible to the analysis.
class SSR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SSR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SSR_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace ssr::util
