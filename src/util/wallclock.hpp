#pragma once

#include <chrono>
#include <cstdint>

namespace ssr {

/// System-wide monotonic microseconds (steady_clock). Every process on one
/// machine reads the same clock, so intervals stamped in one daemon are
/// directly comparable with another's — the cross-process counter-order
/// check and the process scenario backend both rely on exactly that.
inline std::uint64_t steady_usec() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace ssr
