#pragma once

// Clang thread-safety analysis attributes, compiled to nothing elsewhere.
// Under clang the build adds -Wthread-safety (promoted to an error in CI),
// so a lock-discipline violation on annotated state fails the build instead
// of surfacing as a TSan report three jobs later.
//
// Usage pattern (see util::Mutex in mutex.hpp for the annotated wrapper):
//
//   util::Mutex mu_;
//   int shared_ SSR_GUARDED_BY(mu_);
//   void touch() SSR_REQUIRES(mu_);

#if defined(__clang__) && defined(__has_attribute)
#define SSR_THREAD_ATTR(x) __attribute__((x))
#else
#define SSR_THREAD_ATTR(x)
#endif

#define SSR_CAPABILITY(x) SSR_THREAD_ATTR(capability(x))
#define SSR_SCOPED_CAPABILITY SSR_THREAD_ATTR(scoped_lockable)
#define SSR_GUARDED_BY(x) SSR_THREAD_ATTR(guarded_by(x))
#define SSR_PT_GUARDED_BY(x) SSR_THREAD_ATTR(pt_guarded_by(x))
#define SSR_REQUIRES(...) \
  SSR_THREAD_ATTR(requires_capability(__VA_ARGS__))
#define SSR_EXCLUDES(...) \
  SSR_THREAD_ATTR(locks_excluded(__VA_ARGS__))
#define SSR_ACQUIRE(...) \
  SSR_THREAD_ATTR(acquire_capability(__VA_ARGS__))
#define SSR_RELEASE(...) \
  SSR_THREAD_ATTR(release_capability(__VA_ARGS__))
#define SSR_TRY_ACQUIRE(...) \
  SSR_THREAD_ATTR(try_acquire_capability(__VA_ARGS__))
#define SSR_NO_THREAD_SAFETY_ANALYSIS \
  SSR_THREAD_ATTR(no_thread_safety_analysis)
