#pragma once

#include <algorithm>
#include <compare>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ssr {

/// Ordered set of processor identifiers with value semantics.
///
/// Configurations, failure-detector outputs and participant sets are all
/// small sets of NodeIds that are compared, intersected and serialized
/// constantly; a sorted array beats node-based containers for every use in
/// this library and gives deterministic iteration order (required for the
/// deterministic "choose" and lexical-max rules of Algorithm 3.1).
///
/// Storage is a small-buffer optimization: up to kInlineCapacity ids live
/// directly in the object (participant/config sets almost never exceed a
/// dozen members), so the protocol hot paths — copies of configurations in
/// recSA/recMA state, temporary intersections in quorum checks — touch no
/// allocator. Larger sets spill to a heap array transparently.
class IdSet {
 public:
  /// Sets of ≤16 ids are stored inline. Sized for the scenario library's
  /// largest cohorts (flood-of-joiners peaks at 13 nodes) with headroom.
  static constexpr std::size_t kInlineCapacity = 16;

  // User-provided (not `= default`) so const-qualified default-initialized
  // aggregates holding an IdSet stay well-formed with the uninitialized
  // inline buffer (only the first size_ slots are ever meaningful).
  IdSet() {}
  IdSet(std::initializer_list<NodeId> ids);
  /// Builds from an arbitrary (possibly unsorted, duplicated) vector.
  static IdSet from_vector(std::vector<NodeId> ids);

  IdSet(const IdSet& other) { copy_from(other); }
  IdSet(IdSet&& other) noexcept { steal_from(other); }
  IdSet& operator=(const IdSet& other) {
    if (this != &other) {
      release();
      copy_from(other);
    }
    return *this;
  }
  IdSet& operator=(IdSet&& other) noexcept {
    if (this != &other) {
      release();
      steal_from(other);
    }
    return *this;
  }
  ~IdSet() { release(); }

  /// Defined inline: membership tests run tens of millions of times per
  /// scenario. Sets are small (participants/configurations), so a linear
  /// scan with early exit beats binary search below ~32 elements.
  bool contains(NodeId id) const {
    const NodeId* p = data();
    if (size_ <= 32) {
      for (std::size_t i = 0; i < size_; ++i) {
        if (p[i] >= id) return p[i] == id;
      }
      return false;
    }
    return std::binary_search(p, p + size_, id);
  }
  /// Inserts `id`; returns true if it was not already present. Inline for
  /// the same reason as contains(); appends (the common case — callers
  /// insert in ascending order) avoid the general shift path.
  bool insert(NodeId id) {
    if (size_ == 0 || data()[size_ - 1] < id) {
      if (size_ == capacity_) grow(size_ + 1);
      data()[size_++] = id;
      return true;
    }
    return insert_slow(id);
  }
  /// Removes `id`; returns true if it was present.
  bool erase(NodeId id);
  void clear() { size_ = 0; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// True if every element of *this is in `other`.
  bool subset_of(const IdSet& other) const;
  IdSet intersect(const IdSet& other) const;
  IdSet unite(const IdSet& other) const;
  IdSet subtract(const IdSet& other) const;

  /// Number of elements present in both sets (|a ∩ b| without allocating).
  std::size_t intersection_size(const IdSet& other) const;

  const NodeId* begin() const { return data(); }
  const NodeId* end() const { return data() + size_; }
  /// Materializes the contents as a vector (by value: the backing storage
  /// may be the inline buffer, so there is no stable vector to reference).
  std::vector<NodeId> values() const {
    return std::vector<NodeId>(begin(), end());
  }

  /// Total order used for deterministic tie-breaking (lexicographic on the
  /// sorted contents — matches the paper's ordering of proposal sets).
  friend std::strong_ordering operator<=>(const IdSet& a, const IdSet& b) {
    return std::lexicographical_compare_three_way(a.begin(), a.end(),
                                                  b.begin(), b.end());
  }
  friend bool operator==(const IdSet& a, const IdSet& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

  std::string to_string() const;

 private:
  const NodeId* data() const { return heap_ != nullptr ? heap_ : inline_; }
  NodeId* data() { return heap_ != nullptr ? heap_ : inline_; }
  bool insert_slow(NodeId id);
  /// Ensures capacity ≥ need (geometric growth once spilled).
  void grow(std::size_t need);
  void release() {
    delete[] heap_;
    heap_ = nullptr;
    size_ = 0;
    capacity_ = kInlineCapacity;
  }
  void copy_from(const IdSet& other);
  void steal_from(IdSet& other) noexcept;

  std::size_t size_ = 0;
  std::size_t capacity_ = kInlineCapacity;
  NodeId* heap_ = nullptr;          // nullptr ⇒ contents are in inline_
  NodeId inline_[kInlineCapacity];  // sorted, unique
};

}  // namespace ssr
