#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ssr {

/// Ordered set of processor identifiers with value semantics.
///
/// Configurations, failure-detector outputs and participant sets are all
/// small sets of NodeIds that are compared, intersected and serialized
/// constantly; a sorted vector beats node-based containers for every use in
/// this library and gives deterministic iteration order (required for the
/// deterministic "choose" and lexical-max rules of Algorithm 3.1).
class IdSet {
 public:
  IdSet() = default;
  IdSet(std::initializer_list<NodeId> ids);
  /// Builds from an arbitrary (possibly unsorted, duplicated) vector.
  static IdSet from_vector(std::vector<NodeId> ids);

  /// Defined inline: membership tests run tens of millions of times per
  /// scenario. Sets are small (participants/configurations), so a linear
  /// scan with early exit beats binary search below ~32 elements.
  bool contains(NodeId id) const {
    if (ids_.size() <= 32) {
      for (NodeId v : ids_) {
        if (v >= id) return v == id;
      }
      return false;
    }
    return std::binary_search(ids_.begin(), ids_.end(), id);
  }
  /// Inserts `id`; returns true if it was not already present. Inline for
  /// the same reason as contains(); appends (the common case — callers
  /// insert in ascending order) avoid the general shift path.
  bool insert(NodeId id) {
    if (ids_.empty() || ids_.back() < id) {
      ids_.push_back(id);
      return true;
    }
    auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
    if (it != ids_.end() && *it == id) return false;
    ids_.insert(it, id);
    return true;
  }
  /// Removes `id`; returns true if it was present.
  bool erase(NodeId id);
  void clear() { ids_.clear(); }

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }

  /// True if every element of *this is in `other`.
  bool subset_of(const IdSet& other) const;
  IdSet intersect(const IdSet& other) const;
  IdSet unite(const IdSet& other) const;
  IdSet subtract(const IdSet& other) const;

  /// Number of elements present in both sets (|a ∩ b| without allocating).
  std::size_t intersection_size(const IdSet& other) const;

  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }
  const std::vector<NodeId>& values() const { return ids_; }

  /// Total order used for deterministic tie-breaking (lexicographic on the
  /// sorted contents — matches the paper's ordering of proposal sets).
  friend auto operator<=>(const IdSet&, const IdSet&) = default;
  friend bool operator==(const IdSet&, const IdSet&) = default;

  std::string to_string() const;

 private:
  std::vector<NodeId> ids_;  // sorted, unique
};

}  // namespace ssr
