#pragma once

#include <cstdint>
#include <limits>

namespace ssr {

/// Unique processor identifier, drawn from the totally ordered set P
/// (paper, Section 2). Identifiers are never reused.
using NodeId = std::uint32_t;

/// Sentinel meaning "no processor".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Virtual time in microseconds (discrete-event simulation).
using SimTime = std::uint64_t;

inline constexpr SimTime kUsec = 1;
inline constexpr SimTime kMsec = 1000 * kUsec;
inline constexpr SimTime kSec = 1000 * kMsec;

}  // namespace ssr
