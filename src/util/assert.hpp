#pragma once

#include <cstdio>
#include <cstdlib>

/// Invariant checking used throughout the library. Violations indicate a
/// programming error (never expected input), so we abort rather than throw:
/// self-stabilizing algorithms must tolerate *state* corruption, but the
/// *code* is assumed intact (paper, Section 1).
#define SSR_ASSERT(cond, msg)                                                  \
  do {                                                                         \
    if (!(cond)) {                                                             \
      std::fprintf(stderr, "SSR_ASSERT failed at %s:%d: %s\n  %s\n", __FILE__, \
                   __LINE__, #cond, msg);                                      \
      std::abort();                                                            \
    }                                                                          \
  } while (false)
