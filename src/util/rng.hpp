#pragma once

#include <cstdint>

#include "util/assert.hpp"

namespace ssr {

/// Deterministic pseudo-random generator (splitmix64 core).
///
/// Every source of randomness in the simulation (delays, losses, fault
/// injection, workload) flows through explicitly seeded Rng instances so
/// executions are exactly reproducible from a seed — a requirement for the
/// convergence experiments and the seed-sweep property tests.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  std::uint64_t next_u64();

  /// Uniform in [0, bound). `bound` must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

  /// True with probability `p` (clamped to [0,1]).
  bool chance(double p);

  /// Derives an independent stream (for per-node / per-channel generators).
  Rng fork();

 private:
  std::uint64_t state_;
};

}  // namespace ssr
