#include "util/id_set.hpp"

#include <cstring>

namespace ssr {

void IdSet::grow(std::size_t need) {
  if (need <= capacity_) return;
  std::size_t cap = capacity_ * 2;
  if (cap < need) cap = need;
  NodeId* fresh = new NodeId[cap];
  std::memcpy(fresh, data(), size_ * sizeof(NodeId));
  delete[] heap_;
  heap_ = fresh;
  capacity_ = cap;
}

void IdSet::copy_from(const IdSet& other) {
  size_ = other.size_;
  if (other.size_ <= kInlineCapacity) {
    capacity_ = kInlineCapacity;
    heap_ = nullptr;
    std::memcpy(inline_, other.data(), size_ * sizeof(NodeId));
  } else {
    capacity_ = other.size_;
    heap_ = new NodeId[capacity_];
    std::memcpy(heap_, other.heap_, size_ * sizeof(NodeId));
  }
}

void IdSet::steal_from(IdSet& other) noexcept {
  size_ = other.size_;
  if (other.heap_ != nullptr) {
    heap_ = other.heap_;
    capacity_ = other.capacity_;
    other.heap_ = nullptr;
  } else {
    heap_ = nullptr;
    capacity_ = kInlineCapacity;
    std::memcpy(inline_, other.inline_, size_ * sizeof(NodeId));
  }
  other.size_ = 0;
  other.capacity_ = kInlineCapacity;
}

IdSet::IdSet(std::initializer_list<NodeId> ids) {
  for (NodeId id : ids) insert(id);
}

IdSet IdSet::from_vector(std::vector<NodeId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  IdSet s;
  s.grow(ids.size());
  s.size_ = ids.size();
  std::memcpy(s.data(), ids.data(), ids.size() * sizeof(NodeId));
  return s;
}

bool IdSet::insert_slow(NodeId id) {
  NodeId* p = data();
  NodeId* it = std::lower_bound(p, p + size_, id);
  if (it != p + size_ && *it == id) return false;
  const std::size_t at = static_cast<std::size_t>(it - p);
  if (size_ == capacity_) {
    grow(size_ + 1);
    p = data();
  }
  std::memmove(p + at + 1, p + at, (size_ - at) * sizeof(NodeId));
  p[at] = id;
  ++size_;
  return true;
}

bool IdSet::erase(NodeId id) {
  NodeId* p = data();
  NodeId* it = std::lower_bound(p, p + size_, id);
  if (it == p + size_ || *it != id) return false;
  std::memmove(it, it + 1,
               (size_ - static_cast<std::size_t>(it - p) - 1) *
                   sizeof(NodeId));
  --size_;
  return true;
}

bool IdSet::subset_of(const IdSet& other) const {
  return std::includes(other.begin(), other.end(), begin(), end());
}

IdSet IdSet::intersect(const IdSet& other) const {
  IdSet out;
  // Result is no larger than the smaller input; reserve once so the
  // set-algorithm loop below appends without reallocating.
  out.grow(std::min(size_, other.size_));
  const NodeId* last = std::set_intersection(begin(), end(), other.begin(),
                                             other.end(), out.data());
  out.size_ = static_cast<std::size_t>(last - out.data());
  return out;
}

IdSet IdSet::unite(const IdSet& other) const {
  IdSet out;
  out.grow(size_ + other.size_);
  const NodeId* last = std::set_union(begin(), end(), other.begin(),
                                      other.end(), out.data());
  out.size_ = static_cast<std::size_t>(last - out.data());
  return out;
}

IdSet IdSet::subtract(const IdSet& other) const {
  IdSet out;
  out.grow(size_);
  const NodeId* last = std::set_difference(begin(), end(), other.begin(),
                                           other.end(), out.data());
  out.size_ = static_cast<std::size_t>(last - out.data());
  return out;
}

std::size_t IdSet::intersection_size(const IdSet& other) const {
  std::size_t n = 0;
  const NodeId* a = begin();
  const NodeId* b = other.begin();
  while (a != end() && b != other.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++n;
      ++a;
      ++b;
    }
  }
  return n;
}

std::string IdSet::to_string() const {
  std::string out = "{";
  const NodeId* p = data();
  for (std::size_t i = 0; i < size_; ++i) {
    if (i != 0) out += ",";
    out += std::to_string(p[i]);
  }
  out += "}";
  return out;
}

}  // namespace ssr
