#include "util/id_set.hpp"

namespace ssr {

IdSet::IdSet(std::initializer_list<NodeId> ids) : ids_(ids) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

IdSet IdSet::from_vector(std::vector<NodeId> ids) {
  IdSet s;
  s.ids_ = std::move(ids);
  std::sort(s.ids_.begin(), s.ids_.end());
  s.ids_.erase(std::unique(s.ids_.begin(), s.ids_.end()), s.ids_.end());
  return s;
}

bool IdSet::erase(NodeId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return false;
  ids_.erase(it);
  return true;
}

bool IdSet::subset_of(const IdSet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

IdSet IdSet::intersect(const IdSet& other) const {
  IdSet out;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

IdSet IdSet::unite(const IdSet& other) const {
  IdSet out;
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

IdSet IdSet::subtract(const IdSet& other) const {
  IdSet out;
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

std::size_t IdSet::intersection_size(const IdSet& other) const {
  std::size_t n = 0;
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++n;
      ++a;
      ++b;
    }
  }
  return n;
}

std::string IdSet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(ids_[i]);
  }
  out += "}";
  return out;
}

}  // namespace ssr
