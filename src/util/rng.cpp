#include "util/rng.hpp"

namespace ssr {

std::uint64_t Rng::next_u64() {
  state_ += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SSR_ASSERT(bound > 0, "next_below requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) {
  SSR_ASSERT(lo <= hi, "next_range requires lo <= hi");
  const std::uint64_t span = hi - lo + 1;
  // span == 0 means the full 64-bit range (hi - lo + 1 wrapped): every
  // value is in range, so the raw draw is already the answer. Without this
  // case the wrapped span would trip next_below's positive-bound assert.
  if (span == 0) return next_u64();
  return lo + next_below(span);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53 < p;
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace ssr
