#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace ssr::util {

/// Fixed-footprint log-linear latency histogram (HdrHistogram-style).
///
/// Values (microseconds) land in one of 16 linear sub-buckets per power of
/// two, so the relative quantile error is bounded by 1/16 ≈ 6% across the
/// full 64-bit range — plenty for p50/p99 reporting — while record() is a
/// couple of shifts and an increment with zero allocation, making it safe
/// to call from scenario workload hot paths without disturbing the pinned
/// deterministic traces or the counting-new benches.
class LatencyHistogram {
 public:
  void record(std::uint64_t us) {
    ++counts_[index_of(us)];
    ++count_;
    max_us_ = std::max(max_us_, us);
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t max() const { return max_us_; }

  /// Upper edge of the bucket holding the p-th percentile sample
  /// (p in [0,100]); 0 when empty.
  std::uint64_t percentile(double p) const {
    if (count_ == 0) return 0;
    const double want = p / 100.0 * static_cast<double>(count_);
    std::uint64_t target = static_cast<std::uint64_t>(want);
    if (static_cast<double>(target) < want) ++target;
    if (target == 0) target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target) return std::min(upper_edge(i), max_us_);
    }
    return max_us_;
  }

  void merge(const LatencyHistogram& o) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += o.counts_[i];
    count_ += o.count_;
    max_us_ = std::max(max_us_, o.max_us_);
  }

  void reset() { *this = LatencyHistogram{}; }

 private:
  // 16 linear sub-buckets per power of two: values < 16 index directly;
  // larger values keep their top 4 mantissa bits.
  static constexpr std::uint32_t kSubBits = 4;
  static constexpr std::uint32_t kSub = 1u << kSubBits;  // 16
  // Majors cover bit widths 5..64 → (64 - kSubBits) rows above the linear
  // range.
  static constexpr std::size_t kBuckets = kSub + (64 - kSubBits) * kSub;

  static std::size_t index_of(std::uint64_t us) {
    if (us < kSub) return static_cast<std::size_t>(us);
    const std::uint32_t msb =
        static_cast<std::uint32_t>(std::bit_width(us));  // ≥ kSubBits + 1
    const std::uint32_t row = msb - kSubBits;            // ≥ 1
    const std::uint64_t sub = (us >> (msb - kSubBits - 1)) & (kSub - 1);
    return static_cast<std::size_t>(row * kSub + sub);
  }

  static std::uint64_t upper_edge(std::size_t idx) {
    if (idx < kSub) return static_cast<std::uint64_t>(idx);
    const std::uint64_t row = idx / kSub;  // ≥ 1
    const std::uint64_t sub = idx % kSub;
    // Inverse of index_of: bucket holds [base + sub·step, base + (sub+1)·step)
    // where base = 2^(row + kSubBits - 1), step = base / kSub.
    const std::uint64_t base = 1ULL << (row + kSubBits - 1);
    const std::uint64_t step = base >> kSubBits;
    return base + (sub + 1) * step - 1;
  }

  // Same width as count_: a uint32 here silently wraps after 2^32 samples
  // land in one bucket (long sweeps merge many runs), skewing every
  // percentile that walks past it while count() still reports the truth.
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t max_us_ = 0;
};

}  // namespace ssr::util
