#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/assert.hpp"

namespace ssr::util {

/// Bump allocator with O(1) reset — the backing store for bounded scratch
/// work on otherwise zero-allocation paths (label minting, per-run scratch
/// lists). allocate() is a pointer bump inside the current block; reset()
/// rewinds every block without returning memory to the heap, so a
/// reset-per-use scratch arena touches the global allocator only while its
/// high-water mark is still growing. Individual deallocation is deliberately
/// absent: lifetimes end collectively at reset()/destruction, which is what
/// makes the fast path branch-light and fragmentation-free.
///
/// Not thread-safe; one arena belongs to one owner (the sweep engine gives
/// every world its own instances, so arenas never cross threads).
class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 4096;

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes > 0 ? block_bytes : kDefaultBlockBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  // Movable so owners (the stores) keep their implicit moves; outstanding
  // allocations stay valid — block ownership just changes hands.
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Requests larger than the block size get a dedicated block — the
  /// oversize fallback — which reset() recycles like any other block.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    SSR_ASSERT(align != 0 && (align & (align - 1)) == 0,
               "arena alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    while (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get());
      const std::uintptr_t at = (base + off_ + (align - 1)) & ~(align - 1);
      if (at + bytes <= base + b.cap) {
        off_ = at + bytes - base;
        ++allocations_;
        return reinterpret_cast<void*>(at);
      }
      // Current block exhausted (or too small for this request): move on.
      ++cur_;
      off_ = 0;
    }
    // No existing block fits: grow. `align - 1` slack guarantees the aligned
    // start fits even when the block base is minimally aligned.
    const std::size_t need = bytes + align - 1;
    const std::size_t cap = need > block_bytes_ ? need : block_bytes_;
    // ssr-lint: allow(hot-path-alloc) arena growth: amortized away once the
    // high-water mark is reached; reset() keeps the block for reuse.
    blocks_.push_back(Block{std::make_unique<std::byte[]>(cap), cap});
    cur_ = blocks_.size() - 1;
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(blocks_[cur_].data.get());
    const std::uintptr_t at = (base + (align - 1)) & ~(align - 1);
    off_ = at + bytes - base;
    ++allocations_;
    return reinterpret_cast<void*>(at);
  }

  /// Rewinds every block. All memory handed out so far is invalidated;
  /// nothing is returned to the heap, so the next fill re-uses the same
  /// storage allocation-free up to the previous high-water mark.
  void reset() {
    cur_ = 0;
    off_ = 0;
  }

  /// Heap blocks currently owned (growth telemetry for the tests/benches).
  std::size_t blocks() const { return blocks_.size(); }
  /// Total bytes of backing storage owned.
  std::size_t capacity_bytes() const {
    std::size_t n = 0;
    for (const Block& b : blocks_) n += b.cap;
    return n;
  }
  /// allocate() calls served over the arena's lifetime.
  std::uint64_t allocations() const { return allocations_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t cap = 0;
  };

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t cur_ = 0;   // block currently bumped into
  std::size_t off_ = 0;   // bump offset within blocks_[cur_]
  std::uint64_t allocations_ = 0;
};

/// Minimal STL allocator over an Arena, for short-lived scratch containers
/// (`std::vector<T, ArenaAllocator<T>>`) that are rebuilt after every
/// reset(). deallocate() is a no-op by design — storage is reclaimed
/// wholesale at Arena::reset() — so only use it for containers whose
/// lifetime ends before the owning arena rewinds.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}  // reclaimed at reset()

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  Arena* arena_;
};

}  // namespace ssr::util
