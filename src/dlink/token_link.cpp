#include "dlink/token_link.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"

namespace ssr::dlink {

wire::Bytes Frame::encode() const {
  wire::Writer w;
  w.reserve(1 + 4 + 1 + 4 + payload.size() + 4);
  w.u8(static_cast<std::uint8_t>(kind));
  w.node_id(link_sender);
  w.u8(label);
  if (kind == FrameKind::kData) w.bytes(payload);
  w.seal();
  return w.take();
}

std::optional<Frame> Frame::decode(const wire::Bytes& raw) {
  wire::Reader r(raw);
  Frame f;
  const std::uint8_t kind = r.u8();
  if (kind < 1 || kind > 4) return std::nullopt;
  f.kind = static_cast<FrameKind>(kind);
  f.link_sender = r.node_id();
  f.label = r.u8();
  if (f.kind == FrameKind::kData) f.payload = r.bytes();
  // The seal (last u32) covers every preceding byte: a flipped bit in a
  // value field decodes structurally but not semantically — without this,
  // corrupt_probability runs can deliver a valid-looking message with
  // different content (found by scenario_fuzz as a VS divergence).
  const std::uint32_t seal = r.u32();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  if (seal != wire::fnv1a32(raw.data(), raw.size() - 4)) return std::nullopt;
  return f;
}

wire::Bytes encode_bundle(const std::vector<BundleItem>& items) {
  wire::Writer w;
  std::size_t total = 1;
  for (const auto& item : items) total += 1 + 1 + 4 + item.data.size();
  w.reserve(total);
  w.u8(static_cast<std::uint8_t>(items.size()));
  for (const auto& item : items) {
    w.u8(item.port);
    w.boolean(item.is_state);
    w.bytes(item.data);
  }
  return w.take();
}

bool decode_bundle(const wire::Bytes& raw, std::vector<BundleItem>& out) {
  out.clear();
  wire::Reader r(raw);
  const std::uint8_t n = r.u8();
  out.reserve(n);
  for (std::uint8_t i = 0; i < n; ++i) {
    BundleItem item;
    item.port = r.u8();
    item.is_state = r.boolean();
    item.data = r.bytes();
    if (!r.ok()) return false;
    // ssr-lint: allow(hot-path-alloc): decode scratch growth; buffers inside are pooled.
    out.push_back(std::move(item));
  }
  return r.ok() && r.exhausted();
}

std::optional<std::vector<BundleItem>> decode_bundle(const wire::Bytes& raw) {
  std::vector<BundleItem> items;
  if (!decode_bundle(raw, items)) return std::nullopt;
  return items;
}

TokenLink::TokenLink(net::Transport& transport, Rng rng, LinkConfig cfg,
                     NodeId self, NodeId peer, ComposeFn compose,
                     DeliverFn deliver, HeartbeatFn heartbeat)
    : transport_(transport),
      rng_(rng),
      cfg_(cfg),
      self_(self),
      peer_(peer),
      compose_(std::move(compose)),
      deliver_(std::move(deliver)),
      heartbeat_(std::move(heartbeat)) {
  SSR_ASSERT(cfg_.label_domain >= 4, "label domain too small");
  rx_clean_ = !cfg_.strict_clean;
}

void TokenLink::start() {
  if (tx_state_ != TxState::kIdle) return;
  down_ = false;
  tx_state_ = TxState::kCleaning;
  clean_nonce_ = static_cast<std::uint8_t>(rng_.next_below(cfg_.label_domain));
  acks_seen_ = 0;
  transmit_current();
  arm_timer();
}

void TokenLink::shutdown() {
  timer_.cancel();
  tx_state_ = TxState::kIdle;
  down_ = true;  // a crashed endpoint takes no further steps, not even acks
}

void TokenLink::arm_timer() {
  timer_.cancel();
  // Small jitter keeps links from lock-stepping in the simulation.
  const SimTime jitter = rng_.next_below(cfg_.retransmit_period / 4 + 1);
  timer_ = transport_.schedule_after(cfg_.retransmit_period + jitter,
                                     [this]() { on_timer(); });
}

void TokenLink::on_timer() {
  if (tx_state_ == TxState::kIdle) return;
  transmit_current();
  arm_timer();
}

void TokenLink::transmit_current() {
  // Encoded in place (byte-identical to Frame::encode) so the every-round
  // retransmission neither copies tx_payload_ into a temporary Frame nor
  // allocates: the Writer buffer comes from the pool.
  wire::Writer w;
  w.reserve(1 + 4 + 1 + 4 + tx_payload_.size() + 4);
  if (tx_state_ == TxState::kCleaning) {
    w.u8(static_cast<std::uint8_t>(FrameKind::kClean));
    w.node_id(self_);
    w.u8(clean_nonce_);
  } else {
    w.u8(static_cast<std::uint8_t>(FrameKind::kData));
    w.node_id(self_);
    w.u8(tx_label_);
    w.bytes(tx_payload_);
  }
  w.seal();
  transport_.send(self_, peer_, w.take());
}

void TokenLink::begin_round() {
  tx_label_ = static_cast<std::uint8_t>((tx_label_ + 1) % cfg_.label_domain);
  acks_seen_ = 0;
  // The previous round's payload buffer feeds the next compose.
  wire::BufferPool::local().release(std::move(tx_payload_));
  tx_payload_ = compose_();
  transmit_current();
}

void TokenLink::handle_frame(const Frame& frame) {
  if (down_) return;
  switch (frame.kind) {
    case FrameKind::kData: {
      // Receiver side of link (peer → self).
      if (frame.link_sender != peer_) return;
      if (!rx_clean_) {
        // Paper §3.3: a fresh endpoint must not consume possibly-stale
        // packets before the link is cleaned; the quarantine lifts only
        // after more than the round-trip capacity of cleaning probes.
        ++stats_.stale_discarded;
        return;
      }
      Frame ack;
      ack.kind = FrameKind::kAck;
      ack.link_sender = peer_;  // names the link, i.e. its sender
      ack.label = frame.label;
      transport_.send(self_, peer_, ack.encode());
      const bool seen =
          std::find(rx_recent_.begin(), rx_recent_.end(), frame.label) !=
          rx_recent_.end();
      if (!seen) {
        // ssr-lint: allow(hot-path-alloc): label-history deque, bounded by label_domain/2.
        rx_recent_.push_front(frame.label);
        // History shorter than the label domain (else fresh labels would be
        // rejected) but long enough to cover reordered stragglers.
        while (rx_recent_.size() > cfg_.label_domain / 2u) rx_recent_.pop_back();
        ++stats_.frames_delivered;
        heartbeat_();
        deliver_(frame.payload);
      }
      return;
    }
    case FrameKind::kAck: {
      // Sender side of link (self → peer).
      if (frame.link_sender != self_ || tx_state_ != TxState::kRunning) return;
      if (frame.label != tx_label_) return;  // stale ack
      if (++acks_seen_ > cfg_.ack_threshold) {
        ++stats_.rounds_completed;
        heartbeat_();
        begin_round();
      }
      return;
    }
    case FrameKind::kClean: {
      if (frame.link_sender != peer_) return;
      // Reset the receiver side: everything previously in flight on this
      // link is untrusted. The sender needs > clean_threshold CLEAN-ACKs
      // before it transmits data, and acks are only sent on probe arrival,
      // so by that point we have seen at least as many probes — any stale
      // data packet has drained from the bounded channel meanwhile.
      // The label history resets only when a *new* cleaning epoch (fresh
      // nonce) starts; straggling probes of the current epoch must not
      // reopen the window for already-delivered labels.
      if (frame.label != rx_clean_nonce_ || rx_clean_count_ == 0) {
        rx_clean_nonce_ = frame.label;
        rx_clean_count_ = 0;
        rx_recent_.clear();
      }
      ++rx_clean_count_;
      if (rx_clean_count_ > cfg_.clean_threshold) rx_clean_ = true;
      Frame ack;
      ack.kind = FrameKind::kCleanAck;
      ack.link_sender = peer_;
      ack.label = frame.label;
      transport_.send(self_, peer_, ack.encode());
      return;
    }
    case FrameKind::kCleanAck: {
      if (frame.link_sender != self_ || tx_state_ != TxState::kCleaning) return;
      if (frame.label != clean_nonce_) return;
      if (++acks_seen_ > cfg_.clean_threshold) {
        ++stats_.cleans_completed;
        tx_state_ = TxState::kRunning;
        tx_label_ = static_cast<std::uint8_t>(rng_.next_below(cfg_.label_domain));
        begin_round();
      }
      return;
    }
  }
}

}  // namespace ssr::dlink
