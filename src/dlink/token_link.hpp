#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "dlink/frame.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace ssr::dlink {

struct LinkConfig {
  /// Pacing of retransmissions of the current frame / cleaning probe.
  SimTime retransmit_period = 400 * kUsec;
  /// How many acknowledgments carrying the current label complete a round.
  /// The paper requires "more than the total (round-trip) capacity", i.e.
  /// 2·cap + 1 for symmetric channels; configured by the owner from the
  /// channel capacity.
  std::size_t ack_threshold = 7;
  /// Cleaning completes after more than the round-trip capacity of matching
  /// clean-acks (paper, Section 2, snap-stabilizing data link of [15]).
  std::size_t clean_threshold = 7;
  /// Bounded ARQ label domain; must exceed 2·cap + 2 so a fresh label always
  /// eventually exists outside the channels.
  std::uint8_t label_domain = 16;
  /// A freshly created receiver discards data until the peer's cleaning
  /// probe has been observed (joining processors must not consume stale
  /// packets — paper, Section 3.3).
  bool strict_clean = true;
};

/// Both directed data links between `self` and one `peer`:
///  * the *sender side* of link (self → peer): stop-and-wait ARQ that
///    retransmits the current frame until more than `ack_threshold`
///    matching acknowledgments arrive — this completes a token round trip,
///    which doubles as the heartbeat of the (N,Θ) failure detector;
///  * the *receiver side* of link (peer → self): delivers each fresh label
///    once and acknowledges every data packet (acks are never spontaneous).
class TokenLink {
 public:
  /// Called when the sender side may compose the next frame payload.
  // ssr-lint: allow(hot-path-alloc): wired once at link construction, never on the frame path.
  using ComposeFn = std::function<wire::Bytes()>;
  /// Called when the receiver side delivers a fresh payload.
  // ssr-lint: allow(hot-path-alloc): wired once at link construction, never on the frame path.
  using DeliverFn = std::function<void(const wire::Bytes&)>;
  /// Called on token progress (fresh data received / round completed).
  // ssr-lint: allow(hot-path-alloc): wired once at link construction, never on the frame path.
  using HeartbeatFn = std::function<void()>;

  TokenLink(net::Transport& transport, Rng rng, LinkConfig cfg, NodeId self,
            NodeId peer, ComposeFn compose, DeliverFn deliver,
            HeartbeatFn heartbeat);
  ~TokenLink() { shutdown(); }

  TokenLink(const TokenLink&) = delete;
  TokenLink& operator=(const TokenLink&) = delete;

  /// Starts the snap-stabilizing cleaning handshake and then the ARQ.
  void start();
  /// Cancels all timers (crash / disconnect).
  void shutdown();

  void handle_frame(const Frame& frame);

  /// Statistics for tests and benches.
  struct Stats {
    std::uint64_t rounds_completed = 0;   // token round trips
    std::uint64_t frames_delivered = 0;   // fresh payloads delivered
    std::uint64_t cleans_completed = 0;
    std::uint64_t stale_discarded = 0;    // data discarded while dirty
  };
  const Stats& stats() const { return stats_; }
  bool cleaning() const { return tx_state_ == TxState::kCleaning; }

 private:
  enum class TxState : std::uint8_t { kIdle, kCleaning, kRunning };

  void arm_timer();
  void on_timer();
  void transmit_current();
  void begin_round();

  net::Transport& transport_;
  Rng rng_;
  LinkConfig cfg_;
  NodeId self_;
  NodeId peer_;
  ComposeFn compose_;
  DeliverFn deliver_;
  HeartbeatFn heartbeat_;

  // Sender side of link (self → peer).
  TxState tx_state_ = TxState::kIdle;
  std::uint8_t tx_label_ = 0;
  std::uint8_t clean_nonce_ = 0;
  std::size_t acks_seen_ = 0;
  wire::Bytes tx_payload_;

  // Receiver side of link (peer → self). Reordered duplicates of earlier
  // rounds may arrive after a newer label was delivered; a short history of
  // recently delivered labels (shorter than the label domain, longer than
  // the round-trip capacity) filters them.
  std::deque<std::uint8_t> rx_recent_;
  bool rx_clean_ = false;        // quarantine lifted
  std::uint8_t rx_clean_nonce_ = 0;
  std::size_t rx_clean_count_ = 0;
  bool down_ = false;

  net::TimerHandle timer_;
  Stats stats_;
};

}  // namespace ssr::dlink
