#pragma once

#include <cstdint>
#include <optional>

#include "wire/wire.hpp"

namespace ssr::dlink {

/// Logical multiplexing port for the protocol stack (paper Fig. 1 layers).
using Port = std::uint8_t;

inline constexpr Port kPortRecSA = 1;
inline constexpr Port kPortRecMA = 2;
inline constexpr Port kPortJoin = 3;
inline constexpr Port kPortLabel = 4;
inline constexpr Port kPortCounter = 5;
inline constexpr Port kPortVS = 6;
inline constexpr Port kPortShmem = 7;

/// Data-link frame kinds. A data link is directional; the anti-parallel pair
/// of links between two processors (paper, Section 2) is realized as two
/// independent sender/receiver state machines. Every frame names the
/// *link sender*, so each endpoint can route frames of both links.
enum class FrameKind : std::uint8_t {
  kData = 1,      // sender → receiver: labelled payload
  kAck = 2,       // receiver → sender: acknowledges a label
  kClean = 3,     // sender → receiver: snap-stabilizing cleaning probe
  kCleanAck = 4,  // receiver → sender
};

struct Frame {
  FrameKind kind = FrameKind::kData;
  NodeId link_sender = kNoNode;  // identifies which directed link
  std::uint8_t label = 0;        // bounded ARQ label / cleaning nonce
  wire::Bytes payload;           // bundle bytes (kData only)

  wire::Bytes encode() const;
  static std::optional<Frame> decode(const wire::Bytes& raw);
};

/// One multiplexed item inside a data frame's payload bundle.
struct BundleItem {
  Port port = 0;
  bool is_state = true;  // state slot (coalesced) vs. queued datagram
  wire::Bytes data;
};

wire::Bytes encode_bundle(const std::vector<BundleItem>& items);
std::optional<std::vector<BundleItem>> decode_bundle(const wire::Bytes& raw);
/// Allocation-light variant for the per-frame hot path: decodes into `out`
/// (cleared first, capacity reused across frames). Returns false on a
/// corrupted bundle; `out` may then hold a partial decode.
bool decode_bundle(const wire::Bytes& raw, std::vector<BundleItem>& out);

}  // namespace ssr::dlink
