#include "dlink/link_mux.hpp"

#include <utility>

namespace ssr::dlink {

LinkMux::LinkMux(net::Transport& transport, NodeId self, MuxConfig cfg, Rng rng)
    : transport_(transport), self_(self), cfg_(cfg), rng_(rng) {}

LinkMux::PeerState& LinkMux::ensure_peer(NodeId peer) {
  auto it = peers_.find(peer);
  if (it != peers_.end()) return it->second;
  auto& ps = peers_[peer];
  ps.link = std::make_unique<TokenLink>(
      transport_, rng_.fork(), cfg_.link, self_, peer,
      /*compose=*/[this, peer]() { return compose(peer); },
      /*deliver=*/
      [this, peer](const wire::Bytes& bundle) { deliver_bundle(peer, bundle); },
      /*heartbeat=*/
      [this, peer]() {
        if (heartbeat_) heartbeat_(peer);
      });
  return ps;
}

void LinkMux::connect(NodeId peer) {
  if (down_ || peer == self_) return;
  ensure_peer(peer).link->start();
}

void LinkMux::disconnect(NodeId peer) { peers_.erase(peer); }

void LinkMux::shutdown() {
  down_ = true;
  peers_.clear();
}

void LinkMux::publish_state(Port port, NodeId peer, wire::Bytes data) {
  if (down_ || peer == self_) return;
  ensure_peer(peer).state_slots[port] = std::move(data);
  ensure_peer(peer).link->start();
}

void LinkMux::publish_state_all(Port port, const wire::Bytes& data) {
  for (auto& [peer, ps] : peers_) {
    (void)ps;
    publish_state(port, peer, data);
  }
}

void LinkMux::clear_state(Port port, NodeId peer) {
  auto it = peers_.find(peer);
  if (it != peers_.end()) it->second.state_slots.erase(port);
}

void LinkMux::clear_state_all(Port port) {
  for (auto& [peer, ps] : peers_) {
    (void)peer;
    ps.state_slots.erase(port);
  }
}

bool LinkMux::send_datagram(Port port, NodeId peer, wire::Bytes data) {
  if (down_ || peer == self_) return false;
  auto& ps = ensure_peer(peer);
  ps.link->start();
  auto& q = ps.datagrams[port];
  if (q.size() >= cfg_.datagram_queue_capacity) return false;
  q.push_back(std::move(data));
  return true;
}

void LinkMux::subscribe(Port port, DeliverFn fn) {
  subscribers_[port] = std::move(fn);
}

wire::Bytes LinkMux::compose(NodeId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return {};
  auto& ps = it->second;
  std::vector<BundleItem> items;
  for (const auto& [port, data] : ps.state_slots) {
    items.push_back(BundleItem{port, true, data});
  }
  std::size_t budget = cfg_.max_datagrams_per_frame;
  for (auto& [port, q] : ps.datagrams) {
    while (budget > 0 && !q.empty()) {
      items.push_back(BundleItem{port, false, std::move(q.front())});
      q.pop_front();
      --budget;
    }
  }
  return encode_bundle(items);
}

void LinkMux::deliver_bundle(NodeId peer, const wire::Bytes& bundle) {
  if (bundle.empty()) return;
  auto items = decode_bundle(bundle);
  if (!items) return;  // corrupted in flight — drop
  for (const auto& item : *items) {
    auto sub = subscribers_.find(item.port);
    if (sub != subscribers_.end()) sub->second(peer, item.data);
  }
}

void LinkMux::handle_packet(const net::Packet& pkt) {
  if (down_) return;
  auto frame = Frame::decode(pkt.payload);
  if (!frame) return;  // garbage or corrupted — drop
  // A link is named by its sender; only frames naming `self` or the actual
  // network source are meaningful here (paper, Section 2: mismatched labels
  // are ignored).
  if (frame->link_sender != self_ && frame->link_sender != pkt.src) return;
  // First contact from an unknown processor triggers the cleaning handshake
  // before any message is delivered upward (paper, Section 2).
  auto& ps = ensure_peer(pkt.src);
  ps.link->start();
  ps.link->handle_frame(*frame);
}

IdSet LinkMux::peers() const {
  IdSet out;
  for (const auto& [peer, ps] : peers_) {
    (void)ps;
    out.insert(peer);
  }
  return out;
}

const TokenLink* LinkMux::link(NodeId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : it->second.link.get();
}

}  // namespace ssr::dlink
