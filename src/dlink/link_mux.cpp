#include "dlink/link_mux.hpp"

#include <utility>

namespace ssr::dlink {

LinkMux::LinkMux(net::Transport& transport, NodeId self, MuxConfig cfg, Rng rng)
    : transport_(transport), self_(self), cfg_(cfg), rng_(rng) {}

LinkMux::PeerState& LinkMux::ensure_peer(NodeId peer) {
  auto it = peers_.find(peer);
  if (it != peers_.end()) return it->second;
  auto& ps = peers_[peer];
  // ssr-lint: allow(hot-path-alloc): one-time link construction on first contact (cold path).
  ps.link = std::make_unique<TokenLink>(
      transport_, rng_.fork(), cfg_.link, self_, peer,
      /*compose=*/[this, peer]() { return compose(peer); },
      /*deliver=*/
      [this, peer](const wire::Bytes& bundle) { deliver_bundle(peer, bundle); },
      /*heartbeat=*/
      [this, peer]() {
        if (heartbeat_) heartbeat_(peer);
      });
  return ps;
}

void LinkMux::connect(NodeId peer) {
  if (down_ || peer == self_) return;
  ensure_peer(peer).link->start();
}

void LinkMux::disconnect(NodeId peer) { peers_.erase(peer); }

void LinkMux::shutdown() {
  down_ = true;
  peers_.clear();
}

void LinkMux::publish_state(Port port, NodeId peer, wire::Bytes data) {
  if (down_ || peer == self_) return;
  auto& ps = ensure_peer(peer);
  wire::Bytes& slot = ps.state_slots[port];
  wire::BufferPool::local().release(std::move(slot));  // recycle the stale state
  slot = std::move(data);
  ps.link->start();
}

void LinkMux::publish_state_all(Port port, const wire::Bytes& data) {
  for (auto& [peer, ps] : peers_) {
    (void)ps;
    // Pooled per-peer copy: the broadcast fan-out is the hottest publish
    // path and must not allocate once the pool is warm.
    wire::Bytes copy = wire::BufferPool::local().acquire();
    copy.assign(data.begin(), data.end());  // ssr-lint: allow(hot-path-alloc): pooled capacity
    publish_state(port, peer, std::move(copy));
  }
}

void LinkMux::clear_state(Port port, NodeId peer) {
  auto it = peers_.find(peer);
  if (it != peers_.end()) it->second.state_slots.erase(port);
}

void LinkMux::clear_state_all(Port port) {
  for (auto& [peer, ps] : peers_) {
    (void)peer;
    ps.state_slots.erase(port);
  }
}

bool LinkMux::send_datagram(Port port, NodeId peer, wire::Bytes data) {
  if (down_ || peer == self_) return false;
  auto& ps = ensure_peer(peer);
  ps.link->start();
  auto& q = ps.datagrams[port];
  if (q.size() >= cfg_.datagram_queue_capacity) return false;
  // ssr-lint: allow(hot-path-alloc): datagram queue, bounded by datagram_queue_capacity.
  q.push_back(std::move(data));
  return true;
}

void LinkMux::subscribe(Port port, DeliverFn fn) {
  subscribers_[port] = std::move(fn);
}

wire::Bytes LinkMux::compose(NodeId peer) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return {};
  auto& ps = it->second;
  // Scratch item list reused across rounds; every buffer that passes
  // through it is released back to the pool after the encode, so a compose
  // round is allocation-free in the steady state.
  compose_scratch_.clear();
  for (const auto& [port, data] : ps.state_slots) {
    BundleItem item;
    item.port = port;
    item.is_state = true;
    item.data = wire::BufferPool::local().acquire();
    item.data.assign(data.begin(), data.end());  // ssr-lint: allow(hot-path-alloc): pooled capacity
    // ssr-lint: allow(hot-path-alloc): scratch list keeps its capacity across rounds.
    compose_scratch_.push_back(std::move(item));
  }
  std::size_t budget = cfg_.max_datagrams_per_frame;
  for (auto& [port, q] : ps.datagrams) {
    while (budget > 0 && !q.empty()) {
      // ssr-lint: allow(hot-path-alloc): scratch list keeps its capacity across rounds.
      compose_scratch_.push_back(
          BundleItem{port, false, std::move(q.front())});
      q.pop_front();
      --budget;
    }
  }
  wire::Bytes out = encode_bundle(compose_scratch_);
  for (auto& item : compose_scratch_) {
    wire::BufferPool::local().release(std::move(item.data));
  }
  compose_scratch_.clear();
  return out;
}

void LinkMux::deliver_bundle(NodeId peer, const wire::Bytes& bundle) {
  if (bundle.empty()) return;
  const bool ok = decode_bundle(bundle, decode_scratch_);
  if (ok) {
    for (auto& item : decode_scratch_) {
      auto sub = subscribers_.find(item.port);
      if (sub != subscribers_.end()) sub->second(peer, item.data);
    }
  }  // else: corrupted in flight — drop (partial decode is recycled too)
  for (auto& item : decode_scratch_) {
    // The subscribers had their look; the slice buffers return to the pool.
    wire::BufferPool::local().release(std::move(item.data));
  }
  decode_scratch_.clear();
}

void LinkMux::handle_packet(const net::Packet& pkt) {
  if (down_) return;
  auto frame = Frame::decode(pkt.payload);
  if (!frame) return;  // garbage or corrupted — drop
  // A link is named by its sender; only frames naming `self` or the actual
  // network source are meaningful here (paper, Section 2: mismatched labels
  // are ignored).
  if (frame->link_sender != self_ && frame->link_sender != pkt.src) return;
  // First contact from an unknown processor triggers the cleaning handshake
  // before any message is delivered upward (paper, Section 2).
  auto& ps = ensure_peer(pkt.src);
  ps.link->start();
  ps.link->handle_frame(*frame);
  // The decoded payload slice dies here; recycle it for the next frame.
  wire::BufferPool::local().release(std::move(frame->payload));
}

IdSet LinkMux::peers() const {
  IdSet out;
  for (const auto& [peer, ps] : peers_) {
    (void)ps;
    out.insert(peer);  // ssr-lint: allow(hot-path-alloc): cold accessor (tests/monitors only)
  }
  return out;
}

const TokenLink* LinkMux::link(NodeId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : it->second.link.get();
}

}  // namespace ssr::dlink
