#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "dlink/token_link.hpp"
#include "util/id_set.hpp"

namespace ssr::dlink {

struct MuxConfig {
  LinkConfig link;
  std::size_t datagram_queue_capacity = 16;
  std::size_t max_datagrams_per_frame = 4;
};

/// Per-node multiplexer over the token links.
///
/// Two transfer modes, both riding the continuous token exchange:
///  * **state slots** — one coalescing slot per (port, peer); every token
///    round carries the latest published state. This matches the paper's
///    algorithms, which re-broadcast their full state in every do-forever
///    iteration: only the newest state matters, and retransmission is
///    implicit ("a packet sent infinitely often is received infinitely
///    often").
///  * **datagrams** — bounded FIFO per (port, peer) for request/response
///    style traffic (join, counter reads/writes, register ops). Overflow is
///    reported to the caller, which retries — every user is a
///    self-stabilizing retry loop anyway.
class LinkMux {
 public:
  /// Delivery of one bundle item to a subscriber.
  using DeliverFn =
      // ssr-lint: allow(hot-path-alloc): seam, wired once per port at startup
      std::function<void(NodeId from, const wire::Bytes& data)>;
  // ssr-lint: allow(hot-path-alloc): seam, wired once per port at startup.
  using HeartbeatFn = std::function<void(NodeId peer)>;

  LinkMux(net::Transport& transport, NodeId self, MuxConfig cfg, Rng rng);
  ~LinkMux() { shutdown(); }

  LinkMux(const LinkMux&) = delete;
  LinkMux& operator=(const LinkMux&) = delete;

  NodeId self() const { return self_; }

  /// Establishes the anti-parallel link pair with `peer` (idempotent);
  /// starts with the snap-stabilizing cleaning handshake.
  void connect(NodeId peer);
  void disconnect(NodeId peer);
  /// Cancels every timer; used on crash.
  void shutdown();

  /// Publishes the latest state for (port, peer); carried on every
  /// subsequent token round until replaced or cleared.
  void publish_state(Port port, NodeId peer, wire::Bytes data);
  /// Publishes the same state to every connected peer.
  void publish_state_all(Port port, const wire::Bytes& data);
  void clear_state(Port port, NodeId peer);
  void clear_state_all(Port port);

  /// Enqueues a datagram; returns false if the queue is full (caller
  /// retries on its next do-forever iteration).
  bool send_datagram(Port port, NodeId peer, wire::Bytes data);

  void subscribe(Port port, DeliverFn fn);
  void set_heartbeat_handler(HeartbeatFn fn) { heartbeat_ = std::move(fn); }

  /// Tick-boundary flush: pushes every frame the links staged during one
  /// protocol tick out to the fabric in a single batch (no-op on
  /// non-batching transports). The node stack calls this once per tick,
  /// after all layers have published — never per link, which would degrade
  /// a batching transport back to one syscall per peer.
  void flush_transport() { transport_.flush(); }

  /// Entry point wired to the Transport.
  void handle_packet(const net::Packet& pkt);

  IdSet peers() const;
  /// Applies `fn` to every connected peer, oldest id first — the per-tick
  /// alternative to peers() that materializes no set. `fn` may clear state
  /// slots but must not connect/disconnect peers. A template (not
  /// std::function) so no capture size can reintroduce an allocation.
  template <typename Fn>
  void for_each_peer(Fn&& fn) const {
    for (const auto& [peer, ps] : peers_) {
      (void)ps;
      fn(peer);
    }
  }
  const TokenLink* link(NodeId peer) const;

 private:
  struct PeerState {
    std::unique_ptr<TokenLink> link;
    std::map<Port, wire::Bytes> state_slots;
    std::map<Port, std::deque<wire::Bytes>> datagrams;
  };

  wire::Bytes compose(NodeId peer);
  void deliver_bundle(NodeId peer, const wire::Bytes& bundle);
  PeerState& ensure_peer(NodeId peer);

  net::Transport& transport_;
  NodeId self_;
  MuxConfig cfg_;
  Rng rng_;
  std::map<NodeId, PeerState> peers_;
  std::map<Port, DeliverFn> subscribers_;
  HeartbeatFn heartbeat_;
  bool down_ = false;
  /// Reused by compose() / deliver_bundle(); the buffers they carry are
  /// pooled per round/frame.
  std::vector<BundleItem> compose_scratch_;
  std::vector<BundleItem> decode_scratch_;
};

}  // namespace ssr::dlink
