#include "vs/vs_smr.hpp"

#include <algorithm>

namespace ssr::vs {

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

wire::Bytes VSRecord::encode() const {
  wire::Writer w;
  view.encode(w);
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(rnd);
  w.bytes(replica);
  w.u16(static_cast<std::uint16_t>(msgs.size()));
  for (const auto& [id, m] : msgs) {
    w.node_id(id);
    w.bytes(m);
  }
  w.bytes(input);
  prop_view.encode(w);
  w.boolean(no_crd);
  w.boolean(suspend);
  w.node_id(crd);
  return w.take();
}

std::optional<VSRecord> VSRecord::decode(const wire::Bytes& raw) {
  wire::Reader r(raw);
  VSRecord rec;
  auto view = View::decode(r);
  if (!view) return std::nullopt;
  rec.view = *view;
  const std::uint8_t status = r.u8();
  if (status > 2) return std::nullopt;
  rec.status = static_cast<Status>(status);
  rec.rnd = r.u64();
  rec.replica = r.bytes();
  const std::uint16_t n = r.u16();
  if (n > wire::Reader::kMaxElements) return std::nullopt;
  for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
    NodeId id = r.node_id();
    rec.msgs.emplace_back(id, r.bytes());
  }
  rec.input = r.bytes();
  auto pv = View::decode(r);
  if (!pv) return std::nullopt;
  rec.prop_view = *pv;
  rec.no_crd = r.boolean();
  rec.suspend = r.boolean();
  rec.crd = r.node_id();
  if (!r.ok() || !r.exhausted()) return std::nullopt;
  return rec;
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

VsSmr::VsSmr(dlink::LinkMux& mux, reconf::RecSA& recsa,
             counter::CounterManager& counters, NodeId self,
             std::unique_ptr<StateMachine> sm, FetchFn fetch, EvalConf eval,
             counter::IncrementConfig inc_cfg, Rng rng)
    : mux_(mux),
      recsa_(recsa),
      counters_(counters),
      self_(self),
      sm_(std::move(sm)),
      fetch_(std::move(fetch)),
      eval_(std::move(eval)),
      inc_(recsa, counters, mux, self, inc_cfg, rng) {
  sm_->reset();
  mine_.replica = sm_->snapshot();
  mux_.subscribe(dlink::kPortVS, [this](NodeId from, const wire::Bytes& d) {
    on_message(from, d);
  });
}

void VsSmr::on_message(NodeId from, const wire::Bytes& data) {
  if (from == self_) return;
  auto rec = VSRecord::decode(data);
  if (!rec) return;
  records_[from] = std::move(*rec);
}

const VSRecord* VsSmr::record_of(NodeId id) const {
  if (id == self_) return &mine_;
  auto it = records_.find(id);
  return it == records_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Coordinator discovery (lines 6–8)
// ---------------------------------------------------------------------------

IdSet VsSmr::seem_crd(const IdSet& part, const IdSet& conf) const {
  IdSet out;
  const std::size_t conf_majority = conf.size() / 2 + 1;
  for (NodeId l : part) {
    if (!conf.contains(l)) continue;
    const VSRecord* st = record_of(l);
    if (st == nullptr) continue;
    const View& pv = st->prop_view;
    if (pv.is_null() || pv.proposer() != l) continue;
    if (pv.set.intersection_size(conf) < conf_majority) continue;
    if (!pv.set.contains(l) || !pv.set.contains(self_)) continue;
    if (st->status == Status::kMulticast &&
        (!(st->view == pv) || st->crd != l)) {
      continue;
    }
    if (st->status == Status::kInstall && st->crd != l) continue;
    out.insert(l);
  }
  return out;
}

// ---------------------------------------------------------------------------
// The do-forever loop
// ---------------------------------------------------------------------------

void VsSmr::tick() {
  inc_.tick();
  if (!recsa_.is_participant()) {
    mux_.clear_state_all(dlink::kPortVS);
    return;
  }
  const reconf::ConfigValue& cur = recsa_.get_config_ref();  // line 5
  const IdSet part = recsa_.participants();

  // Crash cleanup: drop records of processors we no longer trust.
  for (auto it = records_.begin(); it != records_.end();) {
    if (!recsa_.trusted().contains(it->first)) {
      it = records_.erase(it);
    } else {
      ++it;
    }
  }

  if (!cur.is_proper()) {
    // No usable configuration (brute-force reset in progress): suspend and
    // wait for recSA to re-establish one.
    mine_.suspend = true;
    broadcast(part, IdSet{});
    return;
  }
  const IdSet& conf = cur.ids();

  // Lines 6–8: coordinator discovery.
  const IdSet seem = seem_crd(part, conf);
  valid_crd_ = kNoNode;
  for (NodeId l : seem) {
    if (valid_crd_ == kNoNode ||
        View::id_less(record_of(valid_crd_)->prop_view,
                      record_of(l)->prop_view)) {
      valid_crd_ = l;
    }
  }
  mine_.no_crd = (valid_crd_ == kNoNode);
  mine_.crd = valid_crd_;

  // Line 9: suspension bookkeeping.
  if (valid_crd_ == self_ && mine_.status == Status::kMulticast &&
      reconf_ready_) {
    const bool still = eval_(conf);
    reconf_ready_ = still;
    if (still && !mine_.suspend) ++stats_.suspensions;
    mine_.suspend = still;
  } else if (valid_crd_ != self_ && valid_crd_ != kNoNode) {
    const VSRecord* st = record_of(valid_crd_);
    if (st->status != Status::kMulticast) {
      mine_.suspend = false;
      reconf_ready_ = false;
    }
  }
  if (!recsa_.no_reco()) mine_.suspend = true;

  // Lines 10 / 11–17 / 18–23.
  if (!maybe_propose(part, conf)) {
    if (valid_crd_ == self_) {
      coordinator_step(part);
    } else if (valid_crd_ != kNoNode) {
      follower_step();
    }
  }

  broadcast(part, seem);  // lines 24–25
}

// Line 10: view proposal.
bool VsSmr::maybe_propose(const IdSet& part, const IdSet& conf) {
  if (inc_pending_) return true;  // a mint is in flight
  const std::size_t conf_majority = conf.size() / 2 + 1;
  if (part.intersection_size(conf) < conf_majority) return false;
  if (!recsa_.no_reco()) return false;

  bool no_crd_case = false;
  if (valid_crd_ == kNoNode) {
    std::size_t votes = 0;
    for (NodeId k : part) {
      const VSRecord* st = record_of(k);
      if (st != nullptr && st->no_crd) ++votes;
    }
    no_crd_case = votes >= conf_majority;
  }
  bool repropose_case = false;
  if (valid_crd_ == self_ && !(part == mine_.prop_view.set)) {
    std::size_t votes = 0;
    for (NodeId k : part) {
      const VSRecord* st = record_of(k);
      if (st != nullptr && st->prop_view == mine_.prop_view) ++votes;
    }
    repropose_case = votes >= conf_majority;
  }
  if (!no_crd_case && !repropose_case) return false;

  // (status, propV) ← (Propose, ⟨inc(), FD.part⟩); inc() is asynchronous —
  // the proposal takes effect when the counter is minted.
  inc_pending_ = true;
  ++stats_.proposals_started;
  const IdSet proposed = part;
  inc_.begin([this, proposed](std::optional<Counter> c) {
    inc_pending_ = false;
    if (!c) {
      ++stats_.inc_aborts;  // retried on a later tick
      return;
    }
    mine_.status = Status::kPropose;
    mine_.prop_view = View{*c, proposed};
  });
  return true;
}

// Lines 11–17: coordinator actions.
void VsSmr::coordinator_step(const IdSet& part) {
  (void)part;
  // Gate: every relevant processor reports an aligned state.
  bool aligned_view = true;
  for (NodeId j : mine_.view.set) {
    if (j == self_) continue;
    const VSRecord* st = record_of(j);
    if (st == nullptr || !(st->view == mine_.view) ||
        st->status != mine_.status || st->rnd != mine_.rnd) {
      aligned_view = false;
      break;
    }
  }
  bool aligned_prop = mine_.status != Status::kMulticast;
  if (aligned_prop) {
    for (NodeId j : mine_.prop_view.set) {
      if (j == self_) continue;
      const VSRecord* st = record_of(j);
      if (st == nullptr || !(st->prop_view == mine_.prop_view) ||
          st->status != mine_.status) {
        aligned_prop = false;
        break;
      }
    }
  }

  switch (mine_.status) {
    case Status::kMulticast: {
      if (!aligned_view) return;
      // Suspension bookkeeping (lines 12–14): hold rounds once every view
      // member acknowledged the suspension.
      const reconf::ConfigValue& cur = recsa_.get_config_ref();
      const bool want =
          (cur.is_proper() && eval_(cur.ids())) || !recsa_.no_reco();
      if (want && !mine_.suspend) ++stats_.suspensions;
      mine_.suspend = want;
      bool all_susp = mine_.suspend;
      if (all_susp) {
        for (NodeId j : mine_.view.set) {
          if (j == self_) continue;
          const VSRecord* st = record_of(j);
          if (st == nullptr || !st->suspend) {
            all_susp = false;
            break;
          }
        }
      }
      reconf_ready_ = all_susp;
      if (reconf_ready_ || !recsa_.no_reco()) return;  // no new rounds
      // Advance one multicast round (lines 15–16): collect every member's
      // last fetched input, apply, and snapshot post-apply.
      std::vector<std::pair<NodeId, wire::Bytes>> batch;
      for (NodeId j : mine_.view.set) {
        const VSRecord* st = record_of(j);
        if (st == nullptr) continue;
        batch.emplace_back(j, st->input);
      }
      mine_.rnd += 1;
      mine_.msgs = batch;
      for (const auto& [id, m] : batch) {
        if (!m.empty()) sm_->apply(id, m);
      }
      mine_.replica = sm_->snapshot();
      ++stats_.rounds_applied;
      emit_round(mine_.view, mine_.rnd, batch);
      auto next = fetch_();
      mine_.input = next ? std::move(*next) : wire::Bytes{};
      return;
    }
    case Status::kPropose: {
      if (!aligned_prop) return;
      synch_state();  // (state, status, msg) ← (synchState, Install, synchMsgs)
      mine_.status = Status::kInstall;
      return;
    }
    case Status::kInstall: {
      if (!aligned_prop) return;
      mine_.view = mine_.prop_view;
      mine_.status = Status::kMulticast;
      mine_.rnd = 0;
      mine_.suspend = false;
      reconf_ready_ = false;
      ++stats_.views_installed;
      for (const auto& fn : on_view_install_) fn(mine_.view);
      emit_round(mine_.view, 0, mine_.msgs);
      auto next = fetch_();
      mine_.input = next ? std::move(*next) : wire::Bytes{};
      return;
    }
  }
}

// Lines 18–23: follower actions.
void VsSmr::follower_step() {
  const VSRecord* st = record_of(valid_crd_);
  if (st == nullptr) return;
  switch (st->status) {
    case Status::kMulticast:
    case Status::kInstall: {
      const bool differs = !(st->view == mine_.view) ||
                           st->rnd != mine_.rnd ||
                           st->status != mine_.status;
      if (!differs) return;
      // state[i] ← state[ℓ]: the coordinator's snapshot is post-apply, so
      // adoption replaces rather than re-applies (no double delivery).
      if (!(st->view == mine_.view)) {
        for (const auto& fn : on_view_install_) fn(st->view);
      }
      mine_.view = st->view;
      mine_.status = st->status;
      mine_.rnd = st->rnd;
      mine_.replica = st->replica;
      mine_.msgs = st->msgs;
      mine_.suspend = st->suspend;  // also adopts the suspend flag
      mine_.prop_view = st->prop_view;
      sm_->restore(st->replica);
      ++stats_.adoptions;
      if (st->status == Status::kMulticast) {
        emit_round(st->view, st->rnd, st->msgs);
        if (!st->suspend) {
          auto next = fetch_();
          mine_.input = next ? std::move(*next) : wire::Bytes{};
        }
      }
      return;
    }
    case Status::kPropose: {
      // (status, propV) ← state[ℓ].(status, propV): join the proposal (and
      // abandon our own, if any).
      mine_.status = Status::kPropose;
      mine_.prop_view = st->prop_view;
      return;
    }
  }
}

// synchState()/synchMsgs(): consolidate the most recent state among the
// proposed view's members (majority intersection guarantees it contains the
// last completed round of the previous view).
void VsSmr::synch_state() {
  const VSRecord* best = &mine_;
  for (NodeId j : mine_.prop_view.set) {
    if (j == self_) continue;
    const VSRecord* st = record_of(j);
    if (st == nullptr) continue;
    const bool newer = View::id_less(best->view, st->view) ||
                       (best->view == st->view && best->rnd < st->rnd);
    if (newer) best = st;
  }
  if (best != &mine_) {
    mine_.replica = best->replica;
    mine_.msgs = best->msgs;
    mine_.rnd = best->rnd;
    sm_->restore(best->replica);
  }
}

void VsSmr::emit_round(const View& v, std::uint64_t rnd,
                       const std::vector<std::pair<NodeId, wire::Bytes>>& m) {
  if (applied_any_ && applied_view_id_ == v.id && applied_rnd_ >= rnd) return;
  applied_any_ = true;
  applied_view_id_ = v.id;
  applied_rnd_ = rnd;
  for (const auto& fn : deliver_) fn(v, rnd, m);
}

bool VsSmr::need_delicate_reconf() const {
  if (!reconf_ready_ || valid_crd_ != self_) return false;
  if (mine_.status != Status::kMulticast) return false;
  const reconf::ConfigValue& cur = recsa_.get_config_ref();
  return cur.is_proper() && eval_(cur.ids());
}

// Lines 24–25: broadcast the full state to the relevant processors.
void VsSmr::broadcast(const IdSet& part, const IdSet& seem) {
  IdSet send_set = seem;
  if (valid_crd_ == self_) send_set = send_set.unite(mine_.prop_view.set);
  if (mine_.no_crd || mine_.status == Status::kPropose) {
    send_set = send_set.unite(recsa_.trusted());
  }
  // Followers also keep the coordinator's candidates updated about their
  // round progress; always include the participant set when small systems
  // are still converging.
  send_set = send_set.unite(part);
  const wire::Bytes encoded = mine_.encode();
  for (NodeId j : send_set) {
    if (j == self_) continue;
    if (!recsa_.trusted().contains(j)) continue;
    mux_.publish_state(dlink::kPortVS, j, encoded);
  }
  mux_.for_each_peer([&](NodeId peer) {
    if (!send_set.contains(peer) || !recsa_.trusted().contains(peer)) {
      mux_.clear_state(dlink::kPortVS, peer);
    }
  });
}

}  // namespace ssr::vs
