#include "vs/state_machine.hpp"

namespace ssr::vs {

namespace {
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_bytes(std::uint64_t h, const wire::Bytes& b) {
  for (std::uint8_t byte : b) h = mix(h, byte);
  return h;
}
}  // namespace

void KvStateMachine::apply(NodeId sender, const wire::Bytes& command) {
  digest_ = mix(digest_, sender);
  digest_ = hash_bytes(digest_, command);
  wire::Reader r(command);
  const std::uint8_t op = r.u8();
  if (op == 1) {
    std::string key = r.str();
    std::string value = r.str();
    if (r.ok() && r.exhausted()) data_[key] = value;
  } else if (op == 2) {
    std::string key = r.str();
    if (r.ok() && r.exhausted()) data_.erase(key);
  }
  // Unknown ops are ignored deterministically.
}

wire::Bytes KvStateMachine::snapshot() const {
  wire::Writer w;
  w.u64(digest_);
  w.u32(static_cast<std::uint32_t>(data_.size()));
  for (const auto& [k, v] : data_) {
    w.str(k);
    w.str(v);
  }
  return w.take();
}

void KvStateMachine::restore(const wire::Bytes& snapshot) {
  reset();
  digest_ = 0;
  wire::Reader r(snapshot);
  const std::uint64_t digest = r.u64();
  const std::uint32_t n = r.u32();
  if (!r.ok() || n > wire::Reader::kMaxElements) return;
  std::map<std::string, std::string> data;
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string k = r.str();
    std::string v = r.str();
    if (r.ok()) data[k] = v;
  }
  if (!r.ok() || !r.exhausted()) return;  // malformed — stay default
  data_ = std::move(data);
  digest_ = digest;
}

wire::Bytes KvStateMachine::set_cmd(const std::string& key,
                                    const std::string& value) {
  wire::Writer w;
  w.u8(1);
  w.str(key);
  w.str(value);
  return w.take();
}

wire::Bytes KvStateMachine::del_cmd(const std::string& key) {
  wire::Writer w;
  w.u8(2);
  w.str(key);
  return w.take();
}

}  // namespace ssr::vs
