#pragma once

#include <functional>
#include <map>
#include <memory>

#include "counter/increment.hpp"
#include "vs/state_machine.hpp"
#include "vs/view.hpp"

namespace ssr::vs {

enum class Status : std::uint8_t { kMulticast = 0, kPropose = 1, kInstall = 2 };

/// The per-processor state record of Algorithm 4.7 — broadcast in full on
/// every iteration (line 25).
struct VSRecord {
  View view;
  Status status = Status::kMulticast;
  std::uint64_t rnd = 0;
  wire::Bytes replica;  // replica snapshot, post-apply of `msgs` at `rnd`
  std::vector<std::pair<NodeId, wire::Bytes>> msgs;  // round `rnd` deliveries
  wire::Bytes input;    // last fetched multicast input
  View prop_view;       // propV
  bool no_crd = true;
  bool suspend = false;
  NodeId crd = kNoNode;  // FD[i].crd — the coordinator this processor follows

  wire::Bytes encode() const;
  static std::optional<VSRecord> decode(const wire::Bytes& raw);
};

struct VsStats {
  std::uint64_t views_installed = 0;
  std::uint64_t rounds_applied = 0;
  std::uint64_t proposals_started = 0;
  std::uint64_t adoptions = 0;       // follower state adoptions
  std::uint64_t suspensions = 0;     // transitions into suspend = true
  std::uint64_t inc_aborts = 0;      // failed view-id mints
};

/// Self-stabilizing reconfigurable virtually synchronous SMR —
/// Algorithm 4.7, with the coordinator-led delicate reconfiguration of
/// Algorithm 4.6 exposed through needDelicateReconf().
///
/// A coordinator (the processor whose proposed view carries the highest
/// counter and is followed by a configuration majority) drives lockstep
/// multicast rounds: it collects each member's last fetched input, applies
/// the batch, and advances `rnd`; followers adopt the coordinator's state
/// wholesale (the broadcast replica snapshot is always post-apply, so
/// adoption never double-applies). View changes preserve state by
/// consolidating the records of the new view's members (synchState /
/// synchMsgs); a coordinator that wants to reconfigure first suspends
/// multicast until every view member acknowledged the suspension
/// (Theorem 4.13: the replica state survives delicate reconfigurations).
class VsSmr {
 public:
  /// Application: next command to multicast (nullopt = none pending).
  using FetchFn = std::function<std::optional<wire::Bytes>()>;
  /// Application prediction function evalConf() — reconfigure when true.
  using EvalConf = std::function<bool(const IdSet& config)>;
  /// Fired once per applied round (and once per installed view) with the
  /// delivered batch, in delivery order.
  using DeliverFn = std::function<void(
      const View& view, std::uint64_t rnd,
      const std::vector<std::pair<NodeId, wire::Bytes>>& msgs)>;

  VsSmr(dlink::LinkMux& mux, reconf::RecSA& recsa,
        counter::CounterManager& counters, NodeId self,
        std::unique_ptr<StateMachine> sm, FetchFn fetch, EvalConf eval,
        counter::IncrementConfig inc_cfg, Rng rng);

  /// One iteration of the do-forever loop (lines 4–25).
  void tick();

  /// Algorithm 4.6: the recMA delicate-reconfiguration trigger — true when
  /// this processor is an established coordinator, the whole view is
  /// suspended, and the prediction function still advises reconfiguring.
  bool need_delicate_reconf() const;

  // -- Introspection ---------------------------------------------------------
  const View& view() const { return mine_.view; }
  Status status() const { return mine_.status; }
  std::uint64_t round() const { return mine_.rnd; }
  bool is_coordinator() const { return valid_crd_ == self_; }
  NodeId coordinator() const { return valid_crd_; }
  bool no_coordinator() const { return mine_.no_crd; }
  bool suspended() const { return mine_.suspend; }
  StateMachine& state_machine() { return *sm_; }
  const VsStats& stats() const { return stats_; }

  /// Listeners accumulate — monitors and trace recorders observe
  /// independently.
  void add_deliver_handler(DeliverFn fn) { deliver_.push_back(std::move(fn)); }
  /// Fired once per installed view (after state synchronization).
  void add_view_install_handler(std::function<void(const View&)> fn) {
    on_view_install_.push_back(std::move(fn));
  }

 private:
  struct SeenCrd {
    NodeId id = kNoNode;
    bool valid = false;
  };

  void on_message(NodeId from, const wire::Bytes& data);
  IdSet seem_crd(const IdSet& part, const IdSet& conf) const;
  bool maybe_propose(const IdSet& part, const IdSet& conf);
  void coordinator_step(const IdSet& part);
  void follower_step();
  void synch_state();
  void emit_round(const View& v, std::uint64_t rnd,
                  const std::vector<std::pair<NodeId, wire::Bytes>>& msgs);
  void broadcast(const IdSet& part, const IdSet& seem);
  const VSRecord* record_of(NodeId id) const;

  dlink::LinkMux& mux_;
  reconf::RecSA& recsa_;
  counter::CounterManager& counters_;
  NodeId self_;
  std::unique_ptr<StateMachine> sm_;
  FetchFn fetch_;
  EvalConf eval_;
  counter::IncrementClient inc_;

  VSRecord mine_;
  std::map<NodeId, VSRecord> records_;  // peers' broadcasts
  NodeId valid_crd_ = kNoNode;          // valCrd (kNoNode: none/ambiguous)
  bool reconf_ready_ = false;
  bool inc_pending_ = false;
  // Deduplication of round applications: (view id, rnd) last emitted.
  Counter applied_view_id_;
  std::uint64_t applied_rnd_ = 0;
  bool applied_any_ = false;

  std::vector<DeliverFn> deliver_;
  std::vector<std::function<void(const View&)>> on_view_install_;
  VsStats stats_;
};

}  // namespace ssr::vs
