#pragma once

#include <map>
#include <string>

#include "util/types.hpp"
#include "wire/wire.hpp"

namespace ssr::vs {

/// Deterministic replicated state machine plugged into the virtually
/// synchronous SMR service. Commands are opaque byte strings; apply() must
/// be deterministic so that every replica that applies the same sequence
/// reaches the same state.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  /// Applies one multicast command from `sender`.
  virtual void apply(NodeId sender, const wire::Bytes& command) = 0;
  /// Serializes the full replica state.
  virtual wire::Bytes snapshot() const = 0;
  /// Replaces the replica state with a snapshot (view installation /
  /// follower adoption). Malformed snapshots must reset to default.
  virtual void restore(const wire::Bytes& snapshot) = 0;
  /// Default-initializes (joiners, resetVars()).
  virtual void reset() = 0;
};

/// A simple replicated key→value machine; commands are "set k v" /
/// "del k" strings. Used by the examples and the SMR consistency tests.
class KvStateMachine final : public StateMachine {
 public:
  void apply(NodeId sender, const wire::Bytes& command) override;
  wire::Bytes snapshot() const override;
  void restore(const wire::Bytes& snapshot) override;
  void reset() override { data_.clear(); }

  const std::map<std::string, std::string>& data() const { return data_; }
  /// Order-sensitive digest of the applied history (divergence detector).
  std::uint64_t digest() const { return digest_; }

  /// Command builders.
  static wire::Bytes set_cmd(const std::string& key, const std::string& value);
  static wire::Bytes del_cmd(const std::string& key);

 private:
  std::map<std::string, std::string> data_;
  std::uint64_t digest_ = 0;
};

}  // namespace ssr::vs
