#pragma once

#include "counter/counter.hpp"

namespace ssr::vs {

using counter::Counter;

/// A view ⟨ID, set⟩ (paper §4.3): a processor set together with a unique
/// identifier drawn from the self-stabilizing counter scheme. View IDs are
/// totally ordered by ≺ct, and the writer id inside the counter names the
/// proposer/coordinator.
struct View {
  Counter id;  // boot value: creator kNoNode — smaller than any real counter
  IdSet set;

  /// The processor that minted this view's identifier (the coordinator).
  NodeId proposer() const { return id.wid; }

  /// True for the boot/default view (no real counter minted yet).
  bool is_null() const { return id.wid == kNoNode; }

  friend bool operator==(const View&, const View&) = default;

  /// ≺ct on view identifiers; the null (boot) view is below every real one
  /// (its creator sentinel would otherwise compare greatest).
  static bool id_less(const View& a, const View& b) {
    if (a.is_null()) return !b.is_null();
    if (b.is_null()) return false;
    return Counter::ct_less(a.id, b.id);
  }

  void encode(wire::Writer& w) const;
  static std::optional<View> decode(wire::Reader& r);

  std::string to_string() const;
};

}  // namespace ssr::vs
