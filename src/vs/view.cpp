#include "vs/view.hpp"

namespace ssr::vs {

void View::encode(wire::Writer& w) const {
  id.encode(w);
  w.id_set(set);
}

std::optional<View> View::decode(wire::Reader& r) {
  auto id = Counter::decode(r);
  if (!id) return std::nullopt;
  View v;
  v.id = *id;
  v.set = r.id_set();
  return v;
}

std::string View::to_string() const {
  if (is_null()) return "view(⊥)";
  return "view(" + id.to_string() + "," + set.to_string() + ")";
}

}  // namespace ssr::vs
