#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/id_set.hpp"
#include "util/rng.hpp"

namespace ssr::fd {

struct FdConfig {
  /// Upper bound N on simultaneously active processors (paper, Section 2);
  /// entries ranked below the Nth are ignored and evicted.
  std::size_t max_nodes = 64;
  /// Trust threshold: a processor is trusted while its heartbeat count is
  /// ≤ theta · (min count + 1). The "significant ever-expanding gap" of a
  /// crashed processor eventually exceeds any fixed theta.
  std::uint64_t theta = 10;
};

/// (N,Θ)-failure detector (paper, Section 2; extension of the Θ-detector
/// of [6]). Each completed token exchange with pj zeroes pj's heartbeat
/// count and increments every other count; processors are ranked by count
/// and trusted while they stay within Θ of the freshest processor. The same
/// vector yields the activity estimate n_i (the rank just before the gap).
class ThetaFD {
 public:
  ThetaFD(NodeId self, FdConfig cfg) : self_(self), cfg_(cfg) {}

  /// Token exchanged with `from` (heartbeat). New processors are admitted
  /// with a fresh (zero) count.
  void heartbeat(NodeId from);

  /// Trusted set: always contains self; capped at N entries.
  IdSet trusted() const;

  /// Estimate n_i of the number of active processors (rank before the first
  /// Θ-gap in the sorted count vector), including self.
  std::size_t active_estimate() const;

  /// nonCrashed vector: (processor, count) sorted by freshness.
  std::vector<std::pair<NodeId, std::uint64_t>> ranking() const;

  /// Drops an entry (e.g., when the link layer reports a disconnect).
  void forget(NodeId id) { counts_.erase(id); }

  /// Transient-fault injection: scrambles every count.
  void inject_corruption(Rng& rng, std::uint64_t max_count = 1000);

  NodeId self() const { return self_; }

 private:
  std::uint64_t limit(std::uint64_t base) const;

  NodeId self_;
  FdConfig cfg_;
  std::map<NodeId, std::uint64_t> counts_;
};

}  // namespace ssr::fd
