#include "fd/theta_fd.hpp"

#include <algorithm>

namespace ssr::fd {

void ThetaFD::heartbeat(NodeId from) {
  if (from == self_) return;
  for (auto& [id, count] : counts_) {
    if (id != from) ++count;
  }
  counts_[from] = 0;
  // Bounded storage: keep at most N-1 peers — evict the stalest.
  while (counts_.size() > cfg_.max_nodes - 1) {
    auto worst = std::max_element(
        counts_.begin(), counts_.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    counts_.erase(worst);
  }
}

std::vector<std::pair<NodeId, std::uint64_t>> ThetaFD::ranking() const {
  std::vector<std::pair<NodeId, std::uint64_t>> v(counts_.begin(),
                                                  counts_.end());
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  return v;
}

std::uint64_t ThetaFD::limit(std::uint64_t base) const {
  // A healthy peer's count hovers around the number of peers (every token
  // from any peer increments all the others), so the trust threshold must
  // scale with the population; a crashed peer's count still grows without
  // bound and crosses any such limit (the "ever-expanding gap").
  return cfg_.theta * (base + 1) + cfg_.theta * counts_.size();
}

IdSet ThetaFD::trusted() const {
  IdSet out;
  out.insert(self_);
  if (counts_.empty()) return out;
  std::uint64_t min_count = ~0ULL;
  for (const auto& [id, count] : counts_) {
    (void)id;
    min_count = std::min(min_count, count);
  }
  const std::uint64_t lim = limit(min_count);
  std::size_t admitted = 0;
  for (const auto& [id, count] : ranking()) {
    if (admitted + 1 >= cfg_.max_nodes) break;  // +1 accounts for self
    if (count <= lim) {
      out.insert(id);
      ++admitted;
    }
  }
  return out;
}

std::size_t ThetaFD::active_estimate() const {
  const auto ranked = ranking();
  std::size_t n = 1;  // self
  std::uint64_t prev = 0;
  for (const auto& [id, count] : ranked) {
    (void)id;
    if (count > limit(prev)) break;  // the significant gap
    ++n;
    prev = count;
    if (n >= cfg_.max_nodes) break;
  }
  return n;
}

void ThetaFD::inject_corruption(Rng& rng, std::uint64_t max_count) {
  for (auto& [id, count] : counts_) {
    (void)id;
    count = rng.next_below(max_count + 1);
  }
}

}  // namespace ssr::fd
