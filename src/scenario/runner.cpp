#include "scenario/runner.hpp"

#include <sstream>

namespace ssr::scenario {
namespace {

std::uint64_t digest_ids(const IdSet& ids) {
  std::uint64_t h = TraceRecorder::kFnvBasis;
  for (NodeId id : ids) h = TraceRecorder::mix(h, id);
  return h;
}

std::uint64_t digest_action(const Action& a) {
  std::uint64_t h = TraceRecorder::kFnvBasis;
  h = TraceRecorder::mix(h, digest_ids(a.targets));
  h = TraceRecorder::mix(h, digest_ids(a.group_b));
  h = TraceRecorder::mix(h, a.n);
  h = TraceRecorder::mix(h, a.duration);
  for (char c : a.reg) h = TraceRecorder::mix(h, static_cast<std::uint8_t>(c));
  return h;
}

std::uint64_t digest_name(const std::string& s) {
  std::uint64_t h = TraceRecorder::kFnvBasis;
  for (char c : s) h = TraceRecorder::mix(h, static_cast<std::uint8_t>(c));
  return h;
}

// The "replace on any suspected member" prediction policy.
reconf::RecMA::EvalConf aggressive_eval(node::Node& n) {
  return [&n](const IdSet& cfg) {
    return cfg.intersection_size(n.failure_detector().trusted()) < cfg.size();
  };
}

// Wraps `base` with the joiner-adoption term: also advise reconfiguration
// while some trusted recSA participant is outside the configuration. Both
// stock policies count only *suspected members*, so a cohort whose churn
// never touches a config member (joins, or crashes of other joiners) keeps
// its configuration frozen — estab(participants()) only ever piggybacks on
// an eviction trigger. Opt-in (ScenarioSpec::adopt_joiners) so the pinned
// default-policy traces stay byte-identical.
reconf::RecMA::EvalConf with_adoption(node::Node& n,
                                      reconf::RecMA::EvalConf base) {
  return [&n, base = std::move(base)](const IdSet& cfg) {
    if (base(cfg)) return true;
    const IdSet admitted =
        n.recsa().participants().intersect(n.failure_detector().trusted());
    return !admitted.subset_of(cfg);
  };
}

}  // namespace

ScenarioRunner::ScenarioRunner(ScenarioSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed) {
  harness::WorldConfig cfg;
  cfg.seed = seed;
  cfg.node.enable_vs = spec_.enable_vs;
  cfg.channel.corrupt_probability = spec_.corrupt_probability;
  cfg.adversary.enabled = spec_.adversarial;
  if (spec_.exhaust_bound != 0) {
    cfg.node.counter.exhaust_bound = spec_.exhaust_bound;
  }
  pool_at_start_ = wire::BufferPool::local().stats();
  world_ = std::make_unique<harness::World>(cfg);
  injector_ =
      std::make_unique<harness::FaultInjector>(*world_, seed ^ 0xFA417ULL);
  registry_ = std::make_unique<InvariantRegistry>(*world_);
  trace_.attach(*world_);
  for (std::size_t i = 0; i < spec_.initial_nodes; ++i) add_fresh_node();
}

NodeId ScenarioRunner::add_fresh_node() {
  const NodeId id = next_id_++;
  node::Node& n = world_->add_node(id);
  if (spec_.aggressive_policy || spec_.adopt_joiners) {
    reconf::RecMA::EvalConf eval =
        spec_.aggressive_policy
            ? aggressive_eval(n)
            : node::quarter_failed_policy(n.failure_detector());
    if (spec_.adopt_joiners) eval = with_adoption(n, std::move(eval));
    n.set_eval_conf(std::move(eval));
  }
  trace_.attach_node(*world_, id);
  registry_->attach_node(id);
  trace_.record(TraceKind::kNodeAdded, id);
  return id;
}

void ScenarioRunner::fail(const Action& a, const std::string& detail) {
  if (failed_) return;
  failed_ = true;
  std::ostringstream os;
  os << to_string(a.kind) << ": " << detail;
  failure_ = os.str();
}

IdSet ScenarioRunner::targets_or_alive(const Action& a) const {
  return a.targets.empty() ? world_->alive() : a.targets;
}

ScenarioResult ScenarioRunner::run() {
  for (const Phase& phase : spec_.phases) {
    if (failed_) break;
    trace_.record(TraceKind::kPhaseStart, kNoNode, digest_name(phase.name));
    for (const Action& a : phase.actions) {
      if (failed_) break;
      trace_.record(TraceKind::kActionApplied, kNoNode,
                    static_cast<std::uint64_t>(a.kind), digest_action(a));
      apply(a);
    }
  }

  harvest_increments();

  ScenarioResult r;
  r.name = spec_.name;
  r.seed = seed_;
  r.failure = failure_;
  r.violations = registry_->check_all();
  r.ok = !failed_ && r.violations.empty();
  r.trace_hash = trace_.hash();
  r.trace_events = trace_.size();
  r.sim_time = world_->scheduler().now();
  r.sched_events = world_->scheduler().events_executed();
  const wire::BufferPool::Stats& pool = wire::BufferPool::local().stats();
  r.pool_acquired = pool.acquired - pool_at_start_.acquired;
  r.pool_reused = pool.reused - pool_at_start_.reused;
  r.ops_completed = op_latency_.count();
  r.op_p50_us = op_latency_.percentile(50);
  r.op_p99_us = op_latency_.percentile(99);
  r.op_latency = op_latency_;
  world_->network().for_each_channel(
      [&r](NodeId, NodeId, net::Channel& ch) {
        r.packets_sent += ch.stats().sent;
        r.packets_delivered += ch.stats().delivered;
      });
  return r;
}

void ScenarioRunner::apply(const Action& a) {
  switch (a.kind) {
    case ActionKind::kAddNodes: {
      registry_->unmark_stable();
      for (std::uint64_t i = 0; i < a.n; ++i) add_fresh_node();
      return;
    }
    case ActionKind::kCrash: {
      registry_->unmark_stable();
      for (NodeId id : a.targets) {
        world_->crash(id);
        trace_.record(TraceKind::kNodeCrashed, id);
      }
      return;
    }
    case ActionKind::kReboot: {
      registry_->unmark_stable();
      // Identifiers are never reused (paper, Section 2): a reboot is a
      // crash-stop plus a fresh processor taking the slot.
      for (NodeId id : a.targets) {
        world_->crash(id);
        trace_.record(TraceKind::kNodeCrashed, id);
        add_fresh_node();
      }
      return;
    }
    case ActionKind::kSplitNetwork:
      registry_->unmark_stable();
      world_->network().split(a.targets, a.group_b);
      return;
    case ActionKind::kHealNetwork:
      world_->network().heal();
      return;
    case ActionKind::kCorruptRecsa:
      registry_->unmark_stable();
      for (NodeId id : targets_or_alive(a)) injector_->corrupt_recsa(id);
      return;
    case ActionKind::kCorruptFd:
      registry_->unmark_stable();
      for (NodeId id : targets_or_alive(a)) injector_->corrupt_fd(id);
      return;
    case ActionKind::kSplitConfigState:
      registry_->unmark_stable();
      injector_->split_config(a.targets, a.group_b);
      return;
    case ActionKind::kGarbageChannels:
      registry_->unmark_stable();
      injector_->fill_channels_with_garbage(a.n);
      return;
    case ActionKind::kPlantExhaustedCounter:
      registry_->unmark_stable();
      for (NodeId id : a.targets) injector_->plant_exhausted_counter(id, a.n);
      return;
    case ActionKind::kPlantRecmaFlags:
      registry_->unmark_stable();
      for (NodeId id : a.targets) {
        injector_->plant_recma_flags(id, (a.n & 1) != 0, (a.n & 2) != 0);
      }
      return;
    case ActionKind::kIncrementBurst:
      do_increment_burst(a);
      return;
    case ActionKind::kShmemWrite:
      do_shmem(a, /*write=*/true);
      return;
    case ActionKind::kShmemRead:
      do_shmem(a, /*write=*/false);
      return;
    case ActionKind::kRunFor:
      world_->run_for(a.duration);
      return;
    case ActionKind::kAwaitConverged: {
      if (!await(a.duration, [&] { return world_->converged(); })) {
        fail(a, "no convergence within the time budget");
        return;
      }
      trace_.record(TraceKind::kConverged, kNoNode,
                    digest_ids(*world_->common_config()));
      return;
    }
    case ActionKind::kAwaitVsStable: {
      if (!await(a.duration, [&] { return world_->vs_stable(); })) {
        fail(a, "VS layer did not stabilize");
        return;
      }
      trace_.record(TraceKind::kVsStable, kNoNode);
      return;
    }
    case ActionKind::kAwaitParticipants: {
      auto all_part = [&] {
        for (NodeId id : a.targets) {
          if (!world_->node(id).recsa().is_participant()) return false;
        }
        return true;
      };
      if (!await(a.duration, all_part)) {
        fail(a, "targets were not admitted as participants");
      }
      return;
    }
    case ActionKind::kAwaitConfigEqualsAlive: {
      auto caught_up = [&] {
        auto c = world_->common_config();
        return c && *c == world_->alive();
      };
      if (!await(a.duration, caught_up)) {
        fail(a, "configuration did not catch up with the alive set");
      }
      return;
    }
    case ActionKind::kMarkStable:
      registry_->mark_stable();
      trace_.record(TraceKind::kStableMarked, kNoNode);
      return;
    case ActionKind::kCrashAll: {
      registry_->unmark_stable();
      for (NodeId id : world_->alive()) {
        world_->crash(id);
        trace_.record(TraceKind::kNodeCrashed, id);
      }
      return;
    }
    case ActionKind::kAwaitQuiescent:
      do_await_quiescent(a);
      return;
    case ActionKind::kPauseNodes: {
      // The closest fabric analog of SIGSTOP: a stopped process takes no
      // steps and answers nothing, so from its peers' point of view it is
      // unreachable until resumed.
      registry_->unmark_stable();
      for (NodeId id : a.targets) {
        world_->network().isolate(id);
        trace_.record(TraceKind::kNodePaused, id);
      }
      return;
    }
    case ActionKind::kResumeNodes: {
      for (NodeId id : a.targets) {
        world_->network().rejoin(id);
        trace_.record(TraceKind::kNodeResumed, id);
      }
      return;
    }
  }
}

void ScenarioRunner::do_increment_burst(const Action& a) {
  const IdSet clients = targets_or_alive(a);
  // Sequential ops create real-time-ordered pairs, which is exactly what the
  // counter-order invariant (Theorem 4.6) constrains.
  for (NodeId id : clients) {
    if (!world_->has_node(id) || world_->node(id).crashed()) continue;
    for (std::uint64_t op = 0; op < a.n; ++op) {
      auto& client = world_->node(id).increment();
      bool completed = false;
      // A begin() can be refused while a previous operation drains, and a
      // begun operation can abort during reconfigurations — both are legal;
      // retry a bounded number of times. Each attempt gets fresh state so a
      // late completion of a timed-out attempt never bleeds into the next.
      for (int attempt = 0; attempt < 12 && !completed; ++attempt) {
        if (!await(30 * kSec, [&] { return !client.busy(); })) break;
        auto st = std::make_shared<PendingIncrement>();
        st->started = world_->scheduler().now();
        if (!client.begin([st](std::optional<counter::Counter> c) {
              st->got = std::move(c);
              st->done = true;
            })) {
          continue;
        }
        await(120 * kSec, [&] { return st->done; }, 5 * kMsec);
        if (st->done && st->got) {
          registry_->counter_order().record(
              st->started, world_->scheduler().now(), *st->got);
          op_latency_.record(world_->scheduler().now() - st->started);
          trace_.record(TraceKind::kIncrementDone, id, 1, st->got->seqn);
          completed = true;
        } else if (st->done) {
          trace_.record(TraceKind::kIncrementDone, id, 0, 0);
        } else {
          outstanding_.emplace_back(id, st);
        }
      }
    }
  }
  harvest_increments();
}

void ScenarioRunner::harvest_increments() {
  // Records attempts that completed after their await timed out (possibly
  // phases later). Observing the finish late only widens the [started,
  // finished] interval, which can never manufacture a false real-time-
  // ordered pair. Recorded entries are removed; still-pending ones stay for
  // the next harvest (every burst, and once more before check_all()).
  std::erase_if(outstanding_, [&](const auto& entry) {
    const auto& [id, st] = entry;
    if (!st->done) return false;
    if (st->got) {
      registry_->counter_order().record(st->started,
                                        world_->scheduler().now(), *st->got);
      op_latency_.record(world_->scheduler().now() - st->started);
      trace_.record(TraceKind::kIncrementDone, id, 1, st->got->seqn);
    }
    return true;
  });
}

void ScenarioRunner::do_shmem(const Action& a, bool write) {
  // As with increments: the service stores the callback, and an operation
  // can outlive this function, so completion state is heap-held and
  // captured by value.
  struct OpState {
    bool done = false;
    bool ok = false;
  };
  for (NodeId id : targets_or_alive(a)) {
    if (!world_->has_node(id) || world_->node(id).crashed()) continue;
    auto& svc = world_->node(id).registers();
    bool succeeded = false;
    for (int attempt = 0; attempt < 12 && !succeeded; ++attempt) {
      if (!await(30 * kSec, [&] { return !svc.busy(); })) break;
      auto st = std::make_shared<OpState>();
      const SimTime op_started = world_->scheduler().now();
      bool begun;
      if (write) {
        wire::Bytes payload;
        for (int i = 0; i < 8; ++i) {
          payload.push_back(
              static_cast<std::uint8_t>((a.n + id) >> (8 * i) & 0xFF));
        }
        begun = svc.write(a.reg, std::move(payload),
                          [st](bool w_ok, counter::Counter) {
                            st->ok = w_ok;
                            st->done = true;
                          });
      } else {
        begun = svc.read(a.reg, [st](bool r_ok, const wire::Bytes&,
                                     counter::Counter) {
          st->ok = r_ok;
          st->done = true;
        });
      }
      if (!begun) continue;
      await(160 * kSec, [&] { return st->done; }, 5 * kMsec);
      succeeded = st->done && st->ok;
      if (succeeded) {
        op_latency_.record(world_->scheduler().now() - op_started);
      }
    }
    trace_.record(TraceKind::kShmemOpDone, id, succeeded ? 1 : 0,
                  write ? 1 : 0);
  }
}

void ScenarioRunner::do_await_quiescent(const Action& a) {
  if (!world_->alive().empty()) {
    registry_->report("silence", false,
                      "await_quiescent requires every node crashed first");
    return;
  }
  auto& sched = world_->scheduler();
  const SimTime deadline = sched.now() + a.duration;
  while (sched.now() < deadline && !sched.empty()) {
    world_->run_for(10 * kMsec);
  }
  const bool drained = sched.empty();
  registry_->report("silence", drained,
                    "scheduler still holds live events after every node "
                    "crashed (silent stabilization violated)");
  trace_.record(TraceKind::kQuiescent, kNoNode, drained ? 1 : 0);
}

ScenarioResult run_scenario(const ScenarioSpec& spec, std::uint64_t seed) {
  ScenarioRunner runner(spec, seed);
  return runner.run();
}

}  // namespace ssr::scenario
