#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/backend.hpp"
#include "scenario/scenario.hpp"
#include "util/rng.hpp"

namespace ssr::scenario {

struct FuzzOptions {
  /// Master seed: case `i` (spec AND run seed) is a pure function of
  /// (seed, i), so a fuzz campaign is reproducible from two numbers.
  std::uint64_t seed = 1;
  /// Number of generated (spec, seed) cases per run() call.
  std::size_t cases = 50;
  /// SweepRunner workers executing the case matrix. Results (and any
  /// counterexamples) are byte-identical at any jobs count.
  std::size_t jobs = 1;
  /// Allow generated specs to enable the worst-case delivery scheduler.
  bool allow_adversarial = true;
  /// Re-execution budget for shrinking one counterexample.
  std::size_t max_shrink_runs = 250;
};

/// A failing fuzz case, shrunk to a (greedy) minimum that still fails with
/// the same signature.
struct Counterexample {
  ScenarioSpec spec;      ///< shrunk spec (save with spec_io for the repro)
  ScenarioSpec original;  ///< as generated, before shrinking
  std::uint64_t run_seed = 0;
  /// Failure class preserved through shrinking: "violation:<invariant>" or
  /// "failure:<action kind>".
  std::string signature;
  std::size_t shrink_runs = 0;  ///< re-executions the shrinker spent
  ScenarioResult result;        ///< result of the shrunk spec
};

struct FuzzReport {
  std::size_t cases_run = 0;
  std::size_t failures = 0;
  /// One per failing case, in submission order.
  std::vector<Counterexample> counterexamples;
  /// Every case result, in submission order (hashes feed the determinism
  /// property test).
  std::vector<ScenarioResult> results;
};

/// Adversarial ScenarioSpec fuzzer (the ROADMAP "coverage beyond the
/// library" item). generate() splices and perturbs library specs — fault
/// timing, churn order, partition shape, workload mix — inside a validity
/// model that keeps every generated execution within the paper's liveness
/// prerequisites (a configuration majority stays alive, partitions heal,
/// paused nodes resume, await budgets are generous), so a failing case is
/// evidence of a bug, not of an impossible demand. run() fans the case
/// matrix out on SweepRunner and greedily shrinks every failure to a
/// minimal repro.
class Fuzzer {
 public:
  explicit Fuzzer(FuzzOptions opt) : opt_(opt) {}

  /// Deterministic generation: the spec depends only on (opt.seed, index).
  ScenarioSpec generate(std::uint64_t index) const;
  /// The runner seed paired with case `index` (also (opt.seed, index)-pure).
  std::uint64_t run_seed(std::uint64_t index) const;

  /// Runs cases [0, opt.cases): generate, execute on a jobs-wide sweep,
  /// shrink every failure.
  FuzzReport run() { return run_range(0, opt_.cases); }
  /// Runs cases [first, first + count) — the batching hook behind the CLI
  /// wall-clock budget: each batch is deterministic by case index, so a
  /// budget cut changes how MANY cases run, never WHAT a case does.
  FuzzReport run_range(std::uint64_t first, std::size_t count);

  /// Failure class of a result: "" when passing, "violation:<invariant>"
  /// for invariant violations (strongest — checked first), otherwise
  /// "failure:<detail-prefix>" for missed awaits.
  static std::string failure_signature(const ScenarioResult& r);

  /// Greedy shrink to a local minimum: drop phases, drop actions, simplify
  /// parameters, clear stack options — adopting any reduction that still
  /// fails with `signature`, until no candidate applies or `max_runs`
  /// re-executions were spent. Candidates that would reference a node id
  /// the shrunk spec never creates are skipped (validity is re-checked per
  /// candidate, never assumed).
  static ScenarioSpec shrink(const ScenarioSpec& spec, std::uint64_t seed,
                             const std::string& signature,
                             std::size_t max_runs,
                             std::size_t* runs_used = nullptr);

  /// True when every node id referenced by an action exists by the time
  /// the action runs (ids are 1-based, minted in order: initial nodes,
  /// then one per add_nodes unit / reboot target).
  static bool spec_references_valid(const ScenarioSpec& spec);

 private:
  FuzzOptions opt_;
};

}  // namespace ssr::scenario
