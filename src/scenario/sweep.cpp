#include "scenario/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "scenario/runner.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#define SSR_SWEEP_HAS_THREAD_CPU 1
#else
#define SSR_SWEEP_HAS_THREAD_CPU 0
#endif

// DESIGN — why a parallel sweep is byte-identical to a serial one.
//
// A (spec, seed) job touches, transitively: the World (scheduler, network,
// channels, nodes — all owned by the job), thread-local pools
// (wire::BufferPool, the TraceRecorder segment pool — recycled buffers are
// fully rewritten before being read), and the C++ heap (thread-safe, and
// allocation addresses never feed the trace). The remaining shared state in
// the library was audited for this engine and consists only of immutable
// function-local statics initialized on first use — scenario::library(),
// shard::sharded_library(), RecSA's kBottom / kEmptyEcho sentinels and the
// Router's kEmpty set — which C++ guarantees thread-safe to initialize and
// which no code path mutates afterwards. There is no global RNG: every
// random draw forks from the World's seed. Keep it that way; a new mutable
// global in the node stack would surface here first (and in the TSan CI
// job, which runs this engine).

namespace ssr::scenario {
namespace {

double thread_cpu_sec() {
#if SSR_SWEEP_HAS_THREAD_CPU
  timespec ts{};
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0;
#endif
}

}  // namespace

std::string SweepSummary::summary() const {
  std::ostringstream os;
  os << "sweep: " << results.size() << " runs, " << failed << " failed";
  if (op_latency.count() > 0) {
    os << ", " << op_latency.count() << " ops"
       << " p50=" << op_latency.percentile(50) << "us"
       << " p99=" << op_latency.percentile(99) << "us"
       << " p999=" << op_latency.percentile(99.9) << "us";
  }
  os << ", wall=" << static_cast<std::uint64_t>(wall_ms) << "ms";
  return os.str();
}

SweepRunner::SweepRunner(SweepOptions opt) : opt_(std::move(opt)) {
  if (opt_.jobs == 0) opt_.jobs = 1;
}

void SweepRunner::add(const ScenarioSpec& spec, std::uint64_t seed) {
  jobs_.push_back(SweepJob{spec, seed});
}

void SweepRunner::add_seed_range(const ScenarioSpec& spec, std::uint64_t first,
                                 std::uint64_t last) {
  for (std::uint64_t s = first; s <= last; ++s) {
    add(spec, s);
    if (s == last) break;  // guard seed == UINT64_MAX wrap
  }
}

ScenarioResult SweepRunner::run_job(const SweepJob& job,
                                    std::size_t index) const {
  // Fully isolated world: constructed, run, and destroyed inside the job.
  ScenarioRunner runner(job.spec, job.seed);
  ScenarioResult r = runner.run();
  if (!opt_.record_dir.empty()) {
    // The submission index makes the path unique per job by construction;
    // no two concurrent jobs can collide even on duplicate (spec, seed).
    std::ostringstream path;
    path << opt_.record_dir << "/" << index << "-" << job.spec.name << "-seed"
         << job.seed << ".trace";
    std::ofstream out(path.str());
    if (out) runner.trace().save(out);
  }
  return r;
}

void SweepRunner::work() {
  const double cpu0 = thread_cpu_sec();
  for (;;) {
    std::size_t index;
    {
      util::MutexLock lock(mu_);
      if (next_ >= jobs_.size()) break;
      index = next_++;
    }
    Harvested h;
    h.index = index;
    h.result = run_job(jobs_[index], index);
    util::MutexLock lock(mu_);
    harvested_.push_back(std::move(h));
  }
  // Per-worker CPU attribution: measured on the worker thread itself, so
  // the slowest-worker figure is a real clock reading, not an estimate.
  const double cpu = thread_cpu_sec() - cpu0;
  util::MutexLock lock(mu_);
  worker_cpu_.push_back(cpu);
}

SweepSummary SweepRunner::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  if (!opt_.record_dir.empty()) {
    // Created up front, single-threaded: workers only append files into it.
    std::error_code ec;
    std::filesystem::create_directories(opt_.record_dir, ec);
  }
  {
    util::MutexLock lock(mu_);
    next_ = 0;
    harvested_.clear();
    harvested_.reserve(jobs_.size());
    worker_cpu_.clear();
  }

  const std::size_t workers = std::min(opt_.jobs, std::max<std::size_t>(
                                                      jobs_.size(), 1));
  if (workers <= 1) {
    // Serial fast path: no threads, same code path per job. This is the
    // reference execution the determinism property compares against.
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([this] { work(); });
    }
    for (std::thread& t : pool) t.join();
  }

  SweepSummary out;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  util::MutexLock lock(mu_);
  // Drain the harvest queue into submission-order slots: report order is a
  // function of what was submitted, never of worker finish order.
  out.results.resize(jobs_.size());
  for (Harvested& h : harvested_) {
    out.results[h.index] = std::move(h.result);
  }
  for (double c : worker_cpu_) {
    out.max_worker_cpu_sec = std::max(out.max_worker_cpu_sec, c);
  }
  for (const ScenarioResult& r : out.results) {
    if (!r.ok) ++out.failed;
    out.op_latency.merge(r.op_latency);
  }
  out.ok = out.failed == 0;
  return out;
}

SweepSummary run_sweep(const std::vector<ScenarioSpec>& specs,
                       std::uint64_t first_seed, std::uint64_t last_seed,
                       std::size_t jobs) {
  SweepOptions opt;
  opt.jobs = jobs;
  SweepRunner runner(opt);
  for (const ScenarioSpec& spec : specs) {
    runner.add_seed_range(spec, first_seed, last_seed);
  }
  return runner.run();
}

}  // namespace ssr::scenario
