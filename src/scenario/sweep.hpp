#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/scenario.hpp"
#include "scenario/backend.hpp"
#include "util/histogram.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ssr::scenario {

/// One unit of sweep work: a (spec, seed) pair, which names exactly one
/// execution. The spec is copied so jobs share nothing — two jobs built
/// from the same library entry still own independent data.
struct SweepJob {
  ScenarioSpec spec;
  std::uint64_t seed = 0;
};

struct SweepOptions {
  /// Worker threads (clamped to >= 1). Each worker runs whole jobs, each in
  /// a fully isolated World + ScenarioRunner; nothing below the harvest
  /// queue is shared, so --jobs=N is byte-identical to --jobs=1.
  std::size_t jobs = 1;
  /// When non-empty: one trace file per job is written here, named
  /// "<index>-<scenario>-seed<seed>.trace". The submission index prefixes
  /// the name so no two jobs can ever collide on a path, even if the same
  /// (spec, seed) pair is submitted twice.
  std::string record_dir;
};

/// Everything a finished sweep reports. `results` is in submission order
/// regardless of which worker finished when — the deterministic contract
/// the jobs=1-vs-jobs=N property test pins.
struct SweepSummary {
  std::vector<ScenarioResult> results;  // submission order
  bool ok = false;            // every job ran clean
  std::size_t failed = 0;     // jobs with !ok
  /// Per-job latency histograms merged bucket-wise (exact aggregation;
  /// averaging per-run percentiles would not be).
  util::LatencyHistogram op_latency;
  double wall_ms = 0;
  /// Slowest worker's thread CPU seconds — the capacity-per-core number
  /// BM_SweepThroughput normalizes by (0 where unsupported).
  double max_worker_cpu_sec = 0;

  std::string summary() const;
};

/// Executes independent (spec, seed) jobs on a fixed-size thread pool.
///
/// Design notes, in decreasing order of importance:
///  * Determinism. A job's execution depends only on its (spec, seed) pair:
///    every random draw flows from the World seeded with the job seed, the
///    wire::BufferPool and the TraceRecorder segment pool are thread-local
///    (recycled memory is rewritten before it is read), and the repo keeps
///    no mutable globals in the node stack (the only function-local statics
///    are the const scenario/shard libraries and const sentinels — audited,
///    see DESIGN note in sweep.cpp). Hence a parallel sweep produces
///    byte-identical per-job trace hashes to a serial one.
///  * Harvest. Workers publish finished results into a mutex-guarded queue
///    (thread-safety-annotated; the TSan CI job race-checks it); run()
///    drains the queue into submission-order slots after the join.
///  * Isolation. Per-job record files embed the submission index, and each
///    job's RNG stream derivation is its own seed — no two concurrent jobs
///    share a work path or an RNG stream.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opt);

  /// Enqueues one (spec, seed) job. Submission order is report order.
  void add(const ScenarioSpec& spec, std::uint64_t seed);
  /// Enqueues the inclusive seed range [first, last] for one spec.
  void add_seed_range(const ScenarioSpec& spec, std::uint64_t first,
                      std::uint64_t last);

  std::size_t job_count() const { return jobs_.size(); }

  /// Runs every job and returns the deterministic summary. Call once.
  SweepSummary run();

 private:
  struct Harvested {
    std::size_t index = 0;  // submission index
    ScenarioResult result;
  };

  /// Worker loop: pull the next unclaimed index, run it fully isolated,
  /// publish to the harvest queue.
  void work();
  ScenarioResult run_job(const SweepJob& job, std::size_t index) const;

  SweepOptions opt_;
  std::vector<SweepJob> jobs_;

  util::Mutex mu_;
  std::size_t next_ SSR_GUARDED_BY(mu_) = 0;
  std::vector<Harvested> harvested_ SSR_GUARDED_BY(mu_);
  /// Thread CPU seconds burned by each worker over its whole loop, measured
  /// on the worker itself — max over these is SweepSummary::max_worker_cpu_sec.
  std::vector<double> worker_cpu_ SSR_GUARDED_BY(mu_);
};

/// Convenience: sweep `specs` × seeds [first, last] at `jobs` workers.
SweepSummary run_sweep(const std::vector<ScenarioSpec>& specs,
                       std::uint64_t first_seed, std::uint64_t last_seed,
                       std::size_t jobs);

}  // namespace ssr::scenario
