#pragma once

// Control channel between a scenario process-backend runner and the
// ssr_node daemons it spawns (POSIX only, like the UDP transport).
//
// Transport: one UDP datagram per request and per reply on 127.0.0.1. The
// wire format is line-oriented text for debuggability (`nc -u` works):
//
//   request:  "<reqid> <CMD> [args...]"
//   reply:    "<reqid> OK [payload]"   |   "<reqid> ERR <message>"
//
// Loopback UDP can still drop under pressure, so the client retries a
// request with the *same* reqid until the matching reply arrives; the
// server caches its last reply and re-sends it on a duplicate reqid
// instead of re-applying the command. A single sequential client is
// assumed (the process runner), which makes one cache slot sufficient.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/id_set.hpp"
#include "util/types.hpp"
#include "wire/wire.hpp"

namespace ssr::scenario::ctl {

struct Request {
  std::uint64_t reqid = 0;
  std::string cmd;
  std::vector<std::string> args;
};

/// Parses "<reqid> <CMD> [args...]"; nullopt on malformed input.
std::optional<Request> parse_request(const std::string& line);

// -- Payload helpers ---------------------------------------------------------

/// "1,2,3"; "-" for the empty set (an empty token is not a valid field).
std::string format_ids(const IdSet& ids);
std::optional<IdSet> parse_ids(const std::string& s);

/// Splits a reply payload of "k=v" tokens; tokens without '=' are skipped.
std::map<std::string, std::string> parse_kv(const std::string& payload);

std::string hex_encode(const wire::Bytes& b);
std::optional<wire::Bytes> hex_decode(const std::string& s);

/// ssr_node's control-socket command set (shared so the runner and the
/// daemon cannot drift apart):
///   STATUS                       node state snapshot as k=v pairs
///   BLOCK <ids|->                install the transport peer filter
///   PEER <id> <host> <port>      add/rebind one transport route
///   RELOAD                      re-read the peers file now
///   INC <n>                      queue n sequential counter increments
///   OPS                          completed increments: op=<start>:<end>:<hex>
///   SHMEMW <reg> <salt>          queue one register write
///   SHMEMR <reg>                 queue one register read
///   CORRUPT <recsa|fd>           transient-fault the named component
///   CONF <ids>                   plant a believed configuration
///   PLANT_CTR <seqn>             plant a near-exhausted counter
///   RECMA <nomaj> <needreconf>   plant stale recMA flags (0/1 each)

// -- Endpoints ---------------------------------------------------------------

/// Daemon side: a non-blocking UDP socket on 127.0.0.1, OS-picked port.
class ControlServer {
 public:
  /// Handler returns the reply body ("OK ..." / "ERR ..."); the server
  /// prepends the reqid and handles duplicate-request re-sends itself.
  using HandlerFn = std::function<std::string(const Request&)>;

  ControlServer();
  ~ControlServer();
  ControlServer(const ControlServer&) = delete;
  ControlServer& operator=(const ControlServer&) = delete;

  std::uint16_t port() const { return port_; }

  /// Drains every pending request (non-blocking); call from the daemon's
  /// main loop between transport polls.
  void poll(const HandlerFn& handler);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t last_reqid_ = 0;
  std::string last_reply_;
  std::vector<char> buf_;
};

/// Runner side: one socket shared across every daemon (ports differ).
class ControlClient {
 public:
  ControlClient();
  ~ControlClient();
  ControlClient(const ControlClient&) = delete;
  ControlClient& operator=(const ControlClient&) = delete;

  /// Sends `cmd` to 127.0.0.1:`port` and waits for the matching reply,
  /// retrying with the same reqid. Returns the reply body ("OK ..." /
  /// "ERR ...") or nullopt when every attempt timed out (daemon dead).
  std::optional<std::string> request(std::uint16_t port,
                                     const std::string& cmd,
                                     int timeout_ms = 500, int attempts = 8);

 private:
  int fd_ = -1;
  std::uint64_t next_reqid_ = 1;
  std::vector<char> buf_;
};

}  // namespace ssr::scenario::ctl
