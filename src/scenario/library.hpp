#pragma once

#include <optional>
#include <vector>

#include "scenario/scenario.hpp"

namespace ssr::scenario {

/// The built-in scenario library: one named spec per execution shape the
/// paper's theorems talk about. `tools/scenario_runner --list` surfaces
/// these; tests and benches reference them by name.
const std::vector<ScenarioSpec>& library();

/// Looks a scenario up by name.
std::optional<ScenarioSpec> find_scenario(const std::string& name);

}  // namespace ssr::scenario
