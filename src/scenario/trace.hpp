#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ssr::harness {
class World;
}

namespace ssr::scenario {

/// Canonical event kinds recorded by every scenario run. The stream is the
/// ground truth the invariant registry and the replay tests reason about:
/// two runs are "the same execution" iff their streams hash identically.
enum class TraceKind : std::uint8_t {
  kPhaseStart = 1,   ///< a = FNV hash of the phase name
  kActionApplied,    ///< node = kNoNode, a = ActionKind, b = param digest
  kNodeAdded,
  kNodeCrashed,
  kConfigChange,     ///< a = digest of the new ConfigValue
  kViewInstall,      ///< a = digest of the installed view
  kVsDeliver,        ///< a = (view id, rnd) digest, b = batch digest
  kIncrementDone,    ///< a = 1 completed / 0 aborted, b = counter seqn
  kShmemOpDone,      ///< a = 1 ok / 0 aborted, b = read(0)/write(1)
  kConverged,        ///< a = digest of the common configuration
  kVsStable,
  kStableMarked,
  kQuiescent,        ///< a = 1 drained / 0 still busy at budget
};

const char* to_string(TraceKind k);

struct TraceEvent {
  SimTime when = 0;
  NodeId node = kNoNode;
  TraceKind kind = TraceKind::kPhaseStart;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Records the canonical event stream of one run and folds it into a stable
/// 64-bit hash (FNV-1a over the packed event fields). Attach before any
/// traffic flows; explicit events (actions, convergence points) are pushed
/// by the runner via record().
class TraceRecorder {
 public:
  void attach(harness::World& world);
  void attach_node(harness::World& world, NodeId id);

  void record(TraceKind kind, NodeId node, std::uint64_t a = 0,
              std::uint64_t b = 0);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t hash() const;

  /// Human-readable dump of up to `max_lines` events (0 = all).
  std::string dump(std::size_t max_lines = 0) const;

  /// FNV-1a over an arbitrary byte-less word sequence — exposed so callers
  /// digest configs/views consistently with the recorder itself.
  static std::uint64_t mix(std::uint64_t h, std::uint64_t x);
  static constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

 private:
  harness::World* world_ = nullptr;
  std::vector<TraceEvent> events_;
};

}  // namespace ssr::scenario
