#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace ssr::harness {
class World;
}

namespace ssr::scenario {

/// Canonical event kinds recorded by every scenario run. The stream is the
/// ground truth the invariant registry and the replay tests reason about:
/// two runs are "the same execution" iff their streams hash identically.
enum class TraceKind : std::uint8_t {
  kPhaseStart = 1,   ///< a = FNV hash of the phase name
  kActionApplied,    ///< node = kNoNode, a = ActionKind, b = param digest
  kNodeAdded,
  kNodeCrashed,
  kConfigChange,     ///< a = digest of the new ConfigValue
  kViewInstall,      ///< a = digest of the installed view
  kVsDeliver,        ///< a = (view id, rnd) digest, b = batch digest
  kIncrementDone,    ///< a = 1 completed / 0 aborted, b = counter seqn
  kShmemOpDone,      ///< a = 1 ok / 0 aborted, b = read(0)/write(1)
  kConverged,        ///< a = digest of the common configuration
  kVsStable,
  kStableMarked,
  kQuiescent,        ///< a = 1 drained / 0 still busy at budget
  kNodePaused,       ///< SIGSTOP (process) / fabric isolation (sim)
  kNodeResumed,      ///< SIGCONT (process) / fabric rejoin (sim)
  kNodeSample,       ///< process backend poll: a = config digest,
                     ///< b = bit0 participant, bit1 noReco
};

const char* to_string(TraceKind k);

struct TraceEvent {
  SimTime when = 0;
  NodeId node = kNoNode;
  TraceKind kind = TraceKind::kPhaseStart;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Records the canonical event stream of one run and folds it into a stable
/// 64-bit hash (FNV-1a over the packed event fields). Attach before any
/// traffic flows; explicit events (actions, convergence points) are pushed
/// by the runner via record().
///
/// Storage is a ring of fixed-size segments drawn from a thread-local pool:
/// record() is a slot write — never a reallocate-and-copy — and allocates
/// only while the trace outgrows every segment seen so far on this thread.
/// clear() rewinds without releasing segments and the destructor returns
/// them to the pool, so recorders churned by a sweep worker reuse the same
/// storage run after run (asserted by BM_TraceRecordAlloc).
class TraceRecorder {
 public:
  /// Events per pooled segment. Sized so one segment covers every library
  /// scenario's trace (tens of events) while heavy fuzz/sweep traces grow
  /// in coarse, pool-recyclable steps.
  static constexpr std::size_t kSegmentEvents = 512;
  struct Segment {
    TraceEvent ev[kSegmentEvents];
  };

  TraceRecorder() = default;
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;
  TraceRecorder(TraceRecorder&&) = default;
  TraceRecorder& operator=(TraceRecorder&&) = default;

  void attach(harness::World& world);
  void attach_node(harness::World& world, NodeId id);

  /// World-less time source (process backend: wall clock since run start).
  /// When set it wins over the attached world's scheduler.
  // ssr-lint: allow(hot-path-alloc) std::function: set once per run by the
  // process backend, never on the per-event path.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  void record(TraceKind kind, NodeId node, std::uint64_t a = 0,
              std::uint64_t b = 0);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const TraceEvent& operator[](std::size_t i) const {
    return segs_[i / kSegmentEvents]->ev[i % kSegmentEvents];
  }

  /// Rewinds to empty while keeping every segment: the next run records
  /// into warm storage without touching the heap (the "ring" reuse).
  void clear() { size_ = 0; }

  std::uint64_t hash() const;

  /// Human-readable dump of up to `max_lines` events (0 = all).
  std::string dump(std::size_t max_lines = 0) const;

  /// Machine-readable golden format for `scenario_runner --record/--diff`:
  /// one "when node kind a b" line per event (decimal when/node/kind, hex
  /// a/b), terminated by a "hash <hex>" line.
  void save(std::ostream& os) const;
  /// Parses the save() format; nullopt on any malformed line.
  static std::optional<std::vector<TraceEvent>> load(std::istream& is);

  /// One-line rendering of one event (shared by dump() and the --diff
  /// divergence report).
  static std::string format_event(const TraceEvent& e);

  /// FNV-1a over an arbitrary byte-less word sequence — exposed so callers
  /// digest configs/views consistently with the recorder itself.
  static std::uint64_t mix(std::uint64_t h, std::uint64_t x);
  static constexpr std::uint64_t kFnvBasis = 1469598103934665603ULL;

 private:
  /// Appends one segment (pool hit: zero heap traffic). Cold: called once
  /// per kSegmentEvents records, and only past the high-water mark.
  void grow();

  harness::World* world_ = nullptr;
  // ssr-lint: allow(hot-path-alloc) std::function: assigned once per run
  // (process backend), read-only on the per-event path.
  std::function<SimTime()> clock_;
  std::vector<std::unique_ptr<Segment>> segs_;
  std::size_t size_ = 0;
};

}  // namespace ssr::scenario
