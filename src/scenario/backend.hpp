#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/invariants.hpp"
#include "scenario/trace.hpp"
#include "util/histogram.hpp"
#include "util/types.hpp"

namespace ssr::scenario {

/// Outcome of one scenario execution, shared by every backend. Simulator
/// runs fill the determinism fields (trace_hash, sched_events, pool_*);
/// process runs leave them at their sim-only defaults and report wall time
/// through sim_time.
struct ScenarioResult {
  std::string name;
  std::uint64_t seed = 0;
  /// Every await met its deadline and the invariant registry is clean.
  bool ok = false;
  /// First await that missed its deadline (empty when all met).
  std::string failure;
  std::uint64_t trace_hash = 0;
  std::size_t trace_events = 0;
  /// Virtual time under the simulator; wall time under the process backend.
  SimTime sim_time = 0;
  /// Scheduler events executed during the run — the unit bench_scenarios
  /// reports as events/sec. Simulator only.
  std::uint64_t sched_events = 0;
  /// Fabric totals summed over every channel (sim) or every transport
  /// (process) at the end of the run.
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  /// wire::BufferPool activity during the run (deltas of the thread pool):
  /// acquired = payload buffers requested, reused = served from the
  /// freelist. reused/acquired ≈ 1 is the zero-allocation steady state.
  /// Simulator only.
  std::uint64_t pool_acquired = 0;
  std::uint64_t pool_reused = 0;
  /// Client-op latency over every workload action (increments + register
  /// ops): completed-op count and p50/p99 in microseconds (virtual time
  /// under the simulator, wall time under the process backend). Zero when
  /// the scenario drives no workload.
  std::uint64_t ops_completed = 0;
  std::uint64_t op_p50_us = 0;
  std::uint64_t op_p99_us = 0;
  /// The full latency histogram behind the percentiles above, so sweep
  /// aggregation can merge bucket counts across runs (summing buckets is
  /// exact; averaging per-run percentiles is not).
  util::LatencyHistogram op_latency;
  /// UDP syscall batching, summed over the fleet's final STATUS samples
  /// (process backend only; the simulator makes no syscalls): sendmmsg +
  /// recvmmsg invocations, and datagrams that shared a send syscall with at
  /// least one other. batched/sent close to 1 means the ring is doing its
  /// job; syscalls well below packets_sent+packets_delivered is the win.
  std::uint64_t net_syscalls = 0;
  std::uint64_t net_batched = 0;
  std::vector<InvariantRegistry::Violation> violations;

  std::string summary() const;
};

/// One way of executing a ScenarioSpec. Two implementations exist:
///  * ScenarioRunner  — the deterministic in-process simulator;
///  * ProcessRunner   — one real ssr_node OS process per node on localhost
///    UDP, with faults injected through OS primitives (signals, dropped
///    datagrams) and a control socket.
/// Both consume the same spec and evaluate the same InvariantRegistry, so a
/// scenario written once runs under either harness.
class ScenarioBackend {
 public:
  virtual ~ScenarioBackend() = default;

  /// Runs every phase, then evaluates the invariant registry. Call once.
  virtual ScenarioResult run() = 0;

  virtual TraceRecorder& trace() = 0;
  virtual InvariantRegistry& invariants() = 0;
};

}  // namespace ssr::scenario
