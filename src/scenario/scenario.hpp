#pragma once

#include <string>
#include <vector>

#include "util/id_set.hpp"
#include "util/types.hpp"

namespace ssr::scenario {

/// One step of a scenario script. Actions are plain data so a spec can be
/// printed, hashed and replayed; the ScenarioRunner interprets them against
/// a harness::World on the deterministic scheduler.
enum class ActionKind : std::uint8_t {
  kAddNodes = 1,      ///< n: nodes to add (fresh sequential ids)
  kCrash,             ///< targets: crash-stop these nodes
  kReboot,            ///< targets: crash each and add a fresh replacement
  kSplitNetwork,      ///< targets | group_b: block cross traffic
  kHealNetwork,       ///< remove every partition
  kCorruptRecsa,      ///< targets (empty = all alive): arbitrary recSA state
  kCorruptFd,         ///< targets (empty = all alive): scrambled FD counts
  kSplitConfigState,  ///< plant config conflict targets-believe vs b-believe
  kGarbageChannels,   ///< n: garbage packets per channel
  kPlantExhaustedCounter,  ///< targets, n = seqn near the exhaustion bound
  kPlantRecmaFlags,   ///< targets, n bit0 = noMaj, bit1 = needReconf
  kIncrementBurst,    ///< targets (empty = all alive), n = ops per node
  kShmemWrite,        ///< targets write register `reg` (payload from n)
  kShmemRead,         ///< targets read register `reg`
  kRunFor,            ///< duration of plain execution
  kAwaitConverged,    ///< duration = timeout (Theorem 3.15 predicate)
  kAwaitVsStable,     ///< duration = timeout (one view, one coordinator)
  kAwaitParticipants, ///< targets are participants within duration
  kAwaitConfigEqualsAlive,  ///< config catches up with churn within duration
  kMarkStable,        ///< opens a closure window (no config changes allowed)
  kCrashAll,          ///< crash every alive node (teardown)
  kAwaitQuiescent,    ///< duration = drain budget; scheduler must empty
  kPauseNodes,        ///< targets: freeze (SIGSTOP under the process
                      ///< backend; fabric isolation under the simulator — a
                      ///< stopped process is unreachable from the outside)
  kResumeNodes,       ///< targets: unfreeze (SIGCONT / fabric rejoin)
};

const char* to_string(ActionKind k);

struct Action {
  ActionKind kind = ActionKind::kRunFor;
  IdSet targets;
  IdSet group_b;
  std::uint64_t n = 0;
  SimTime duration = 0;
  std::string reg;

  // -- Named constructors (keep scenario scripts readable) -------------------
  static Action add_nodes(std::uint64_t count);
  static Action crash(IdSet targets);
  static Action reboot(IdSet targets);
  static Action split_network(IdSet a, IdSet b);
  static Action heal_network();
  static Action corrupt_recsa(IdSet targets = {});
  static Action corrupt_fd(IdSet targets = {});
  static Action split_config_state(IdSet a, IdSet b);
  static Action garbage_channels(std::uint64_t per_channel);
  static Action plant_exhausted_counter(IdSet targets, std::uint64_t seqn);
  static Action plant_recma_flags(IdSet targets, bool no_maj, bool need_reconf);
  static Action increment_burst(std::uint64_t ops_per_node, IdSet targets = {});
  static Action shmem_write(IdSet targets, std::string reg, std::uint64_t salt);
  static Action shmem_read(IdSet targets, std::string reg);
  static Action run_for(SimTime d);
  static Action await_converged(SimTime timeout);
  static Action await_vs_stable(SimTime timeout);
  static Action await_participants(IdSet targets, SimTime timeout);
  static Action await_config_equals_alive(SimTime timeout);
  static Action mark_stable();
  static Action crash_all();
  static Action await_quiescent(SimTime budget);
  static Action pause_nodes(IdSet targets);
  static Action resume_nodes(IdSet targets);
};

struct Phase {
  std::string name;
  std::vector<Action> actions;
};

/// A declarative execution shape: initial population, stack options, and a
/// sequence of named phases. Specs carry no randomness of their own — every
/// random choice during a run flows from the runner's seed, so a (spec,
/// seed) pair names one exact execution.
struct ScenarioSpec {
  std::string name;
  std::string description;
  std::size_t initial_nodes = 3;
  bool enable_vs = false;
  /// Replace-on-any-suspect prediction policy (default: quarter policy).
  bool aggressive_policy = false;
  /// Extends the prediction policy with a joiner-adoption term: advise
  /// reconfiguration while some trusted recSA participant is missing from
  /// the configuration. Without it, churn purely among joiners (no config
  /// member ever suspected) leaves the configuration frozen forever — the
  /// eval trigger counts only suspected members, and estab(participants())
  /// fires solely on eviction triggers. Found by scenario_fuzz; see the
  /// "joiner-adoption" library scenario for the minimal shape.
  bool adopt_joiners = false;
  double corrupt_probability = 0.0;
  /// 0 = keep the counter default exhaustion bound.
  std::uint64_t exhaust_bound = 0;
  /// Worst-case delivery scheduling (net::Adversary): delay the believed
  /// coordinator's frames, reorder across partition boundaries, deliver
  /// stale-label retransmissions first. Deterministic per (spec, seed);
  /// simulator backend only (the process backend ignores it).
  bool adversarial = false;
  std::vector<Phase> phases;
};

}  // namespace ssr::scenario
