#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/monitors.hpp"

namespace ssr::scenario {

/// One registry for every execution-level property a run must satisfy.
///
/// Wraps the existing harness monitors (config history, counter order,
/// virtual synchrony) together with the trace-level checks the paper's
/// theorems add on top:
///  * closure  — Theorem 3.16: during a marked-stable window no node may
///    change its configuration;
///  * silence  — after every node crashed, the scheduler drains to empty
///    (a stabilized protocol stops doing things; Devismes et al.'s notion
///    of silent self-stabilization at the event level).
///
/// check_all() evaluates every built-in and custom invariant and returns the
/// violations; a legal execution yields an empty vector.
class InvariantRegistry {
 public:
  struct Violation {
    std::string invariant;
    std::string message;
  };

  /// Custom invariant: returns an error message on violation.
  using Check = std::function<std::optional<std::string>()>;
  /// Time source for closure windows: virtual time under the simulator,
  /// wall time under the process backend.
  using Clock = std::function<SimTime()>;

  /// Simulator form: monitors attach to live World nodes, the clock is the
  /// scheduler.
  explicit InvariantRegistry(harness::World& world);
  /// Backend-agnostic form: no world — the owner feeds the monitors
  /// directly (config_history().record(), counter_order().record(),
  /// report()) from whatever event source it has.
  explicit InvariantRegistry(Clock clock) : clock_(std::move(clock)) {}

  /// Attaches the wrapped monitors to one node. Call exactly once per node
  /// (handlers accumulate; a second attach would double-count events).
  /// Simulator form only.
  void attach_node(NodeId id);

  /// Registers a named custom invariant evaluated by check_all().
  void add(std::string name, Check fn);

  /// Opens a closure window: configuration changes inside it count as
  /// violations. unmark_stable() closes the window and evaluates it — the
  /// runner unmarks automatically on churn, faults and partitions, so a
  /// window covers exactly one legal (fault-free) stretch of the execution.
  void mark_stable();
  void unmark_stable();
  bool stable_marked() const { return stable_since_.has_value(); }

  /// Records a runner-observed pass/fail check (e.g. quiescence drains).
  void report(const std::string& invariant, bool ok, std::string message);

  harness::ConfigHistoryMonitor& config_history() { return config_history_; }
  harness::CounterOrderMonitor& counter_order() { return counter_order_; }
  harness::VirtualSynchronyMonitor& vsync() { return vsync_; }

  std::vector<Violation> check_all() const;

 private:
  std::optional<Violation> closure_violation(SimTime since) const;

  harness::World* world_ = nullptr;
  Clock clock_;
  harness::ConfigHistoryMonitor config_history_;
  harness::CounterOrderMonitor counter_order_;
  harness::VirtualSynchronyMonitor vsync_;
  std::optional<SimTime> stable_since_;
  std::vector<std::pair<std::string, Check>> custom_;
  std::vector<Violation> reported_;
};

}  // namespace ssr::scenario
