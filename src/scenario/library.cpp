#include "scenario/library.hpp"

namespace ssr::scenario {
namespace {

using A = Action;

ScenarioSpec bootstrap() {
  ScenarioSpec s;
  s.name = "bootstrap";
  s.description =
      "5 nodes boot from the all-joiner state, converge to one common "
      "configuration, then hold it (closure) for a quiet minute";
  s.initial_nodes = 5;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      {"closure", {A::mark_stable(), A::run_for(60 * kSec)}},
  };
  return s;
}

ScenarioSpec rolling_churn() {
  ScenarioSpec s;
  s.name = "rolling-churn";
  s.description =
      "join one / crash one waves under the aggressive replacement policy; "
      "the configuration follows the participation through every wave";
  s.initial_nodes = 4;
  s.aggressive_policy = true;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      {"wave-1",
       {A::add_nodes(1), A::await_participants({5}, 600 * kSec),
        A::crash({1}), A::await_config_equals_alive(900 * kSec)}},
      {"wave-2",
       {A::add_nodes(1), A::await_participants({6}, 600 * kSec),
        A::crash({2}), A::await_config_equals_alive(900 * kSec)}},
  };
  return s;
}

ScenarioSpec majority_split() {
  ScenarioSpec s;
  s.name = "majority-split";
  s.description =
      "a planted configuration conflict (half believe {1,2,3}, half "
      "{3,4,5}) is detected as stale information and resolved";
  s.initial_nodes = 5;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      {"split", {A::split_config_state({1, 2, 3}, {3, 4, 5})}},
      {"recover", {A::await_converged(900 * kSec)}},
  };
  return s;
}

ScenarioSpec flood_of_joiners() {
  ScenarioSpec s;
  s.name = "flood-of-joiners";
  s.description =
      "a 3-node configuration admits 6 simultaneous joiners; joins must "
      "not move the configuration";
  s.initial_nodes = 3;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      {"flood",
       {A::add_nodes(6),
        A::await_participants({4, 5, 6, 7, 8, 9}, 900 * kSec)}},
      {"settle",
       {A::await_converged(300 * kSec), A::mark_stable(),
        A::run_for(60 * kSec)}},
  };
  return s;
}

ScenarioSpec epoch_rollover() {
  ScenarioSpec s;
  s.name = "epoch-rollover";
  s.description =
      "a planted near-exhausted counter (the classic transient fault of "
      "section 4.1) is cancelled; increments keep completing in order";
  s.initial_nodes = 3;
  s.exhaust_bound = 1ULL << 20;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec), A::run_for(30 * kSec)}},
      {"exhaust",
       {A::plant_exhausted_counter({2}, (1ULL << 20) + 5),
        A::run_for(60 * kSec)}},
      {"workload", {A::increment_burst(2), A::await_converged(300 * kSec)}},
  };
  return s;
}

ScenarioSpec garbage_channel_recovery() {
  ScenarioSpec s;
  s.name = "garbage-channel-recovery";
  s.description =
      "every channel is stuffed with arbitrary stale packets; decoders "
      "survive, the token links flush them, and the system re-converges";
  s.initial_nodes = 4;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      {"garbage", {A::garbage_channels(3), A::await_converged(600 * kSec)}},
      {"closure", {A::mark_stable(), A::run_for(60 * kSec)}},
  };
  return s;
}

ScenarioSpec partition_heal() {
  ScenarioSpec s;
  s.name = "partition-heal";
  s.description =
      "a minority {1,2} is cut off from the majority {3,4,5}; after the "
      "heal both sides resolve any divergence into one configuration";
  s.initial_nodes = 5;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      {"partition",
       {A::split_network({1, 2}, {3, 4, 5}), A::run_for(120 * kSec)}},
      {"heal", {A::heal_network(), A::await_converged(1800 * kSec)}},
  };
  return s;
}

ScenarioSpec silent_after_convergence() {
  ScenarioSpec s;
  s.name = "silent-after-convergence";
  s.description =
      "after convergence the system is silent at the config level "
      "(closure) and, once every node crashes, the event queue drains to "
      "empty — nothing keeps running";
  s.initial_nodes = 3;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      {"silence", {A::mark_stable(), A::run_for(120 * kSec)}},
      {"teardown", {A::crash_all(), A::await_quiescent(30 * kSec)}},
  };
  return s;
}

ScenarioSpec transient_blast() {
  ScenarioSpec s;
  s.name = "transient-blast";
  s.description =
      "the canonical arbitrary starting state: every node's recSA and FD "
      "state corrupted and every channel garbaged at once; Theorem 3.15 "
      "convergence from scratch";
  s.initial_nodes = 4;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      {"blast",
       {A::corrupt_recsa(), A::corrupt_fd(), A::garbage_channels(2)}},
      {"recover",
       {A::await_converged(1200 * kSec), A::mark_stable(),
        A::run_for(60 * kSec)}},
  };
  return s;
}

ScenarioSpec crash_respawn() {
  ScenarioSpec s;
  s.name = "crash-respawn";
  s.description =
      "a member is crash-stopped and a fresh processor takes the slot "
      "(identifiers are never reused); the configuration follows the "
      "replacement and then holds";
  s.initial_nodes = 4;
  s.aggressive_policy = true;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      // The reboot replaces the crashed member in the configuration (the
      // aggressive policy reconfigures as soon as a member is suspected)
      // and the fresh processor is admitted as a participant of whatever
      // configuration results.
      {"respawn",
       {A::reboot({2}), A::await_participants({5}, 900 * kSec)}},
      {"closure",
       {A::await_converged(900 * kSec), A::mark_stable(),
        A::run_for(60 * kSec)}},
  };
  return s;
}

ScenarioSpec stall_resume() {
  ScenarioSpec s;
  s.name = "stall-resume";
  s.description =
      "one member freezes long enough to be suspected (SIGSTOP under the "
      "process backend, fabric isolation under the simulator), then resumes "
      "with stale timers; the system re-converges either way";
  s.initial_nodes = 4;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      {"stall", {A::pause_nodes({2}), A::run_for(120 * kSec)}},
      {"resume", {A::resume_nodes({2}), A::await_converged(1800 * kSec)}},
      {"closure", {A::mark_stable(), A::run_for(60 * kSec)}},
  };
  return s;
}

ScenarioSpec pause_through_heal() {
  ScenarioSpec s;
  s.name = "pause-through-heal";
  s.description =
      "a partitioned member is frozen, the partition heals while it is "
      "stopped, and only then does it resume — the wake-up must see the "
      "healed fabric (stale filters/isolation must not survive the resume)";
  s.initial_nodes = 4;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      {"cut",
       {A::split_network({2}, {1, 3, 4}), A::run_for(60 * kSec),
        A::pause_nodes({2}), A::run_for(30 * kSec)}},
      {"heal-while-stopped", {A::heal_network(), A::run_for(30 * kSec)}},
      {"wake", {A::resume_nodes({2}), A::await_converged(1800 * kSec)}},
      {"closure", {A::mark_stable(), A::run_for(60 * kSec)}},
  };
  return s;
}

ScenarioSpec joiner_adoption() {
  ScenarioSpec s;
  s.name = "joiner-adoption";
  s.description =
      "churn purely among joiners (two admitted, one of them crashes) with "
      "no config member ever suspected; the configuration must still catch "
      "up with the alive set — the shrunk scenario_fuzz counterexample that "
      "motivated the adopt_joiners policy term";
  s.initial_nodes = 3;
  s.aggressive_policy = true;
  s.adopt_joiners = true;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      // Nodes 4 and 5 are admitted as participants of config {1,2,3}; node
      // 5 crashes before any reconfiguration is obliged to happen. Neither
      // event suspects a config member, so without the adoption term no
      // eval trigger ever fires and the config stays {1,2,3} forever.
      {"joiner-churn",
       {A::add_nodes(2), A::await_participants({4, 5}, 600 * kSec),
        A::crash({5}), A::await_config_equals_alive(900 * kSec)}},
      {"closure",
       {A::await_converged(600 * kSec), A::mark_stable(),
        A::run_for(60 * kSec)}},
  };
  return s;
}

ScenarioSpec crash_then_stable() {
  ScenarioSpec s;
  s.name = "crash-then-stable";
  s.description =
      "two members crash, then the run demands convergence and closure; "
      "promoted from a scenario_fuzz counterexample where await_converged "
      "accepted agreement on the stale config before the failure detector "
      "suspected the victims, and mark_stable raced the pending eviction";
  s.initial_nodes = 5;
  s.aggressive_policy = true;
  s.phases = {
      {"converge", {A::await_converged(180 * kSec)}},
      // run_for bridges the FD blind window; the strengthened converged()
      // predicate (policy quiet at every alive node) then holds the await
      // open until the eviction reconfiguration has actually finished.
      {"cull",
       {A::crash({3, 5}), A::run_for(30 * kSec),
        A::await_converged(900 * kSec)}},
      {"closure", {A::mark_stable(), A::run_for(60 * kSec)}},
  };
  return s;
}

ScenarioSpec adversarial_bitflips() {
  ScenarioSpec s;
  s.name = "adversarial-bitflips";
  s.description =
      "full stack with the VS layer under worst-case scheduling plus 1% "
      "wire bit flips; promoted from a scenario_fuzz counterexample where "
      "a flipped bit inside a value field decoded as a valid message and "
      "broke virtual synchrony — frames are sealed with fnv1a32 since";
  s.initial_nodes = 5;
  s.enable_vs = true;
  s.corrupt_probability = 0.01;
  s.adversarial = true;
  s.phases = {
      {"converge", {A::await_converged(600 * kSec)}},
      {"blizzard", {A::run_for(60 * kSec)}},
      {"settle",
       {A::await_converged(1200 * kSec), A::await_vs_stable(1200 * kSec),
        A::mark_stable(), A::run_for(60 * kSec)}},
  };
  return s;
}

ScenarioSpec vs_workload() {
  ScenarioSpec s;
  s.name = "vs-workload";
  s.description =
      "full stack with the virtually synchronous SMR layer: counter "
      "increments and shared-memory reads/writes while the VS monitor "
      "checks batch agreement at every (view, round)";
  s.initial_nodes = 3;
  s.enable_vs = true;
  s.phases = {
      {"converge",
       {A::await_converged(300 * kSec), A::await_vs_stable(900 * kSec)}},
      {"workload",
       {A::mark_stable(), A::increment_burst(2),
        A::shmem_write({1}, "x", 42), A::shmem_read({2}, "x"),
        A::run_for(30 * kSec)}},
      {"stable", {A::await_vs_stable(600 * kSec)}},
  };
  return s;
}

}  // namespace

const std::vector<ScenarioSpec>& library() {
  static const std::vector<ScenarioSpec> specs = {
      bootstrap(),
      rolling_churn(),
      majority_split(),
      flood_of_joiners(),
      epoch_rollover(),
      garbage_channel_recovery(),
      partition_heal(),
      silent_after_convergence(),
      transient_blast(),
      crash_respawn(),
      stall_resume(),
      pause_through_heal(),
      joiner_adoption(),
      crash_then_stable(),
      adversarial_bitflips(),
      vs_workload(),
  };
  return specs;
}

std::optional<ScenarioSpec> find_scenario(const std::string& name) {
  for (const ScenarioSpec& s : library()) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

}  // namespace ssr::scenario
