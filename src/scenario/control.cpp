#include "scenario/control.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "util/assert.hpp"

namespace ssr::scenario::ctl {
namespace {

int bind_loopback_udp(std::uint16_t* port_out) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  SSR_ASSERT(fd >= 0, "control socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  SSR_ASSERT(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
             "control bind failed");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  *port_out = ntohs(bound.sin_port);
  return fd;
}

sockaddr_in loopback_to(std::uint16_t port) {
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  to.sin_port = htons(port);
  return to;
}

constexpr std::size_t kMaxDatagram = 60 * 1024;

}  // namespace

std::optional<Request> parse_request(const std::string& line) {
  std::istringstream is(line);
  Request r;
  if (!(is >> r.reqid >> r.cmd)) return std::nullopt;
  std::string tok;
  while (is >> tok) r.args.push_back(tok);
  return r;
}

std::string format_ids(const IdSet& ids) {
  if (ids.empty()) return "-";
  std::ostringstream os;
  bool first = true;
  for (NodeId id : ids) {
    if (!first) os << ',';
    os << id;
    first = false;
  }
  return os.str();
}

std::optional<IdSet> parse_ids(const std::string& s) {
  IdSet out;
  if (s == "-") return out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (tok.empty()) return std::nullopt;
    char* end = nullptr;
    const unsigned long v = std::strtoul(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0') return std::nullopt;
    out.insert(static_cast<NodeId>(v));
  }
  if (out.empty()) return std::nullopt;  // "" and "," are malformed
  return out;
}

std::map<std::string, std::string> parse_kv(const std::string& payload) {
  std::map<std::string, std::string> out;
  std::istringstream is(payload);
  std::string tok;
  while (is >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) continue;
    out[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  return out;
}

std::string hex_encode(const wire::Bytes& b) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xF]);
  }
  return out;
}

std::optional<wire::Bytes> hex_decode(const std::string& s) {
  if (s.size() % 2 != 0) return std::nullopt;
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  wire::Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const int hi = nib(s[i]), lo = nib(s[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

// -- ControlServer -----------------------------------------------------------

ControlServer::ControlServer() : buf_(kMaxDatagram) {
  fd_ = bind_loopback_udp(&port_);
}

ControlServer::~ControlServer() {
  if (fd_ >= 0) ::close(fd_);
}

void ControlServer::poll(const HandlerFn& handler) {
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n = ::recvfrom(fd_, buf_.data(), buf_.size(), 0,
                                 reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) return;  // EAGAIN — drained
    auto req = parse_request(std::string(buf_.data(),
                                         static_cast<std::size_t>(n)));
    if (!req) continue;  // not ours; a reply needs a parseable reqid anyway
    std::string reply;
    if (req->reqid == last_reqid_ && !last_reply_.empty()) {
      // Duplicate of the last request (the client's retry): replay the
      // cached reply, do not re-apply the command.
      reply = last_reply_;
    } else {
      reply = std::to_string(req->reqid) + " " + handler(*req);
      last_reqid_ = req->reqid;
      last_reply_ = reply;
    }
    (void)::sendto(fd_, reply.data(), reply.size(), 0,
                   reinterpret_cast<sockaddr*>(&from), from_len);
  }
}

// -- ControlClient -----------------------------------------------------------

ControlClient::ControlClient() : buf_(kMaxDatagram) {
  std::uint16_t unused = 0;
  fd_ = bind_loopback_udp(&unused);
}

ControlClient::~ControlClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<std::string> ControlClient::request(std::uint16_t port,
                                                  const std::string& cmd,
                                                  int timeout_ms,
                                                  int attempts) {
  const std::uint64_t reqid = next_reqid_++;
  const std::string wire = std::to_string(reqid) + " " + cmd;
  const sockaddr_in to = loopback_to(port);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    (void)::sendto(fd_, wire.data(), wire.size(), 0,
                   reinterpret_cast<const sockaddr*>(&to), sizeof(to));
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc <= 0) continue;  // timeout — retransmit with the same reqid
    for (;;) {
      const ssize_t n = ::recvfrom(fd_, buf_.data(), buf_.size(), 0,
                                   nullptr, nullptr);
      if (n < 0) break;
      const std::string got(buf_.data(), static_cast<std::size_t>(n));
      std::istringstream is(got);
      std::uint64_t got_id = 0;
      if (!(is >> got_id) || got_id != reqid) continue;  // stale reply
      std::string rest;
      std::getline(is, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      return rest;
    }
  }
  return std::nullopt;
}

}  // namespace ssr::scenario::ctl
