#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "scenario/scenario.hpp"

namespace ssr::scenario {

/// Plain-text ScenarioSpec format, the interchange behind fuzzing:
/// counterexamples are shrunk to a minimal spec and saved with save_spec;
/// `scenario_runner --spec FILE` (and the CI artifact flow) reproduce them
/// with load_spec. The rendering is canonical — field order fixed, every
/// field always present — so two equal specs serialize byte-identically
/// (the fuzzer determinism test compares renderings directly).
///
///   ssrspec v1
///   name <token>
///   description <rest of line>
///   nodes <N>
///   vs <0|1>
///   aggressive <0|1>
///   corrupt_prob <%.17g double>
///   exhaust_bound <u64>
///   adversarial <0|1>
///   phase <rest of line>
///   action <kind> targets=1,2 group=3,4 n=<u64> duration=<u64> reg=<rest>
///   ...
///   end
void save_spec(std::ostream& os, const ScenarioSpec& spec);

/// Convenience: the canonical rendering as a string (what save_spec emits).
std::string spec_to_string(const ScenarioSpec& spec);

/// Parses the save_spec format; nullopt on any malformed or unknown line.
std::optional<ScenarioSpec> load_spec(std::istream& is);

/// File-path convenience wrappers. save returns false when the file cannot
/// be opened; load returns nullopt on open or parse failure.
bool save_spec_file(const std::string& path, const ScenarioSpec& spec);
std::optional<ScenarioSpec> load_spec_file(const std::string& path);

/// Parses an ActionKind by its to_string name; nullopt for unknown names.
std::optional<ActionKind> action_kind_from_string(const std::string& name);

}  // namespace ssr::scenario
