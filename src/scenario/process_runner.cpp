#include "scenario/process_runner.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "counter/counter.hpp"
#include "reconf/config_value.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/wallclock.hpp"

namespace ssr::scenario {
namespace {

std::uint64_t digest_ids(const IdSet& ids) {
  std::uint64_t h = TraceRecorder::kFnvBasis;
  for (NodeId id : ids) h = TraceRecorder::mix(h, id);
  return h;
}

std::uint64_t digest_name(const std::string& s) {
  std::uint64_t h = TraceRecorder::kFnvBasis;
  for (char c : s) h = TraceRecorder::mix(h, static_cast<std::uint8_t>(c));
  return h;
}

std::uint64_t digest_action(const Action& a) {
  std::uint64_t h = TraceRecorder::kFnvBasis;
  h = TraceRecorder::mix(h, digest_ids(a.targets));
  h = TraceRecorder::mix(h, digest_ids(a.group_b));
  h = TraceRecorder::mix(h, a.n);
  h = TraceRecorder::mix(h, a.duration);
  for (char c : a.reg) h = TraceRecorder::mix(h, static_cast<std::uint8_t>(c));
  return h;
}

std::uint64_t parse_u64(const std::map<std::string, std::string>& kv,
                        const std::string& key) {
  auto it = kv.find(key);
  if (it == kv.end()) return 0;
  return std::strtoull(it->second.c_str(), nullptr, 10);
}

}  // namespace

ProcessRunner::ProcessRunner(ScenarioSpec spec, ProcessBackendOptions opt)
    : spec_(std::move(spec)), opt_(std::move(opt)) {
  SSR_ASSERT(!opt_.node_binary.empty(),
             "ProcessBackendOptions.node_binary is required");
  epoch_usec_ = steady_usec();
  if (opt_.work_dir.empty()) {
    std::string templ =
        (std::filesystem::temp_directory_path() / "ssr-scenario-XXXXXX")
            .string();
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    SSR_ASSERT(::mkdtemp(buf.data()) != nullptr, "mkdtemp failed");
    dir_ = buf.data();
    made_dir_ = true;
  } else {
    dir_ = opt_.work_dir;
    std::filesystem::create_directories(dir_);
  }
  trace_.set_clock([this] { return now(); });
  registry_ = std::make_unique<InvariantRegistry>(
      InvariantRegistry::Clock([this] { return now(); }));
}

ProcessRunner::~ProcessRunner() {
  for (auto& [id, p] : procs_) {
    if (p.pid > 0) {
      ::kill(p.pid, SIGKILL);  // kills stopped children too
      int status = 0;
      ::waitpid(p.pid, &status, 0);
      p.pid = -1;
    }
  }
  // Keep the directory (logs, peer maps) whenever something went wrong so
  // CI can upload it as an artifact.
  if (made_dir_ && !opt_.keep_dir && ran_ && !failed_) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
}

SimTime ProcessRunner::now() const { return steady_usec() - epoch_usec_; }

SimTime ProcessRunner::scaled(SimTime sim_duration) const {
  return static_cast<SimTime>(static_cast<double>(sim_duration) *
                              opt_.time_scale);
}

SimTime ProcessRunner::await_budget(SimTime sim_duration) const {
  const SimTime s = scaled(sim_duration);
  return s < opt_.min_await ? opt_.min_await : s;
}

void ProcessRunner::step_sleep() const {
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
}

IdSet ProcessRunner::alive() const {
  IdSet out;
  for (const auto& [id, p] : procs_) {
    if (p.alive) out.insert(id);
  }
  return out;
}

IdSet ProcessRunner::targets_or_alive(const Action& a) const {
  return a.targets.empty() ? alive() : a.targets;
}

bool ProcessRunner::converged_now() const {
  const IdSet live = alive();
  if (live.empty()) return false;
  bool first = true;
  IdSet common;
  for (NodeId id : live) {
    const Proc& p = procs_.at(id);
    if (!p.sampled || !p.noreco || !p.cfg_proper) return false;
    if (first) {
      common = p.cfg;
      first = false;
    } else if (!(p.cfg == common)) {
      return false;
    }
  }
  return true;
}

bool ProcessRunner::vs_stable_now() const {
  if (!converged_now()) return false;
  bool any = false;
  bool first = true;
  std::uint64_t view = 0;
  NodeId crd = kNoNode;
  for (NodeId id : alive()) {
    const Proc& p = procs_.at(id);
    if (!p.sampled || !p.has_vs) return false;
    if (!p.participant) continue;  // joiners sync up after installation
    if (!p.vs_multicast || p.vs_null || p.vs_no_crd) return false;
    if (first) {
      view = p.vs_view_digest;
      crd = p.vs_crd;
      first = false;
    } else if (view != p.vs_view_digest || crd != p.vs_crd) {
      return false;
    }
    any = true;
  }
  return any;
}

void ProcessRunner::fail(const Action& a, const std::string& detail) {
  if (failed_) return;
  failed_ = true;
  std::ostringstream os;
  os << to_string(a.kind) << ": " << detail;
  failure_ = os.str();
}

// -- Process management ------------------------------------------------------

void ProcessRunner::write_cohort_peer_map() {
  // Atomic rewrite (tmp + rename): daemons re-read this file while any of
  // their entries still shows port 0.
  const std::string path = dir_ + "/peers.txt";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    for (const auto& [id, p] : procs_) {
      out << id << " 127.0.0.1 " << p.data_port << "\n";
    }
  }
  std::rename(tmp.c_str(), path.c_str());
}

void ProcessRunner::spawn(NodeId id, const std::string& peers_path) {
  Proc& p = procs_[id];
  const std::string port_file = dir_ + "/port." + std::to_string(id);
  std::remove(port_file.c_str());
  const std::string log_file = dir_ + "/node-" + std::to_string(id) + ".log";

  std::vector<std::string> args = {
      opt_.node_binary,
      "--id", std::to_string(id),
      "--peers", peers_path,
      "--port-file", port_file,
      "--seconds", std::to_string(opt_.node_seconds),
      "--tick-us", std::to_string(opt_.tick_us),
      "--seed",
      std::to_string((opt_.seed + 0x9E3779B97F4A7C15ULL) * 1000003ULL + id),
  };
  if (opt_.shard != 0) {
    args.push_back("--shard");
    args.push_back(std::to_string(opt_.shard));
  }
  if (spec_.enable_vs) args.push_back("--vs");
  if (spec_.aggressive_policy) args.push_back("--aggressive");
  if (spec_.exhaust_bound != 0) {
    args.push_back("--exhaust-bound");
    args.push_back(std::to_string(spec_.exhaust_bound));
  }

  const int pid = ::fork();
  SSR_ASSERT(pid >= 0, "fork failed");
  if (pid == 0) {
    // Child: log to its own file, then become the daemon.
    const int fd = ::open(log_file.c_str(),
                          O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
      ::close(fd);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& s : args) argv.push_back(s.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("execv ssr_node");
    ::_exit(127);
  }
  p.pid = pid;
  p.alive = true;
  p.paused = false;
  p.sampled = false;
  p.ops_harvested = 0;
}

bool ProcessRunner::collect_ports(NodeId id) {
  Proc& p = procs_[id];
  const std::string port_file = dir_ + "/port." + std::to_string(id);
  const SimTime deadline = now() + 15 * kSec;
  while (now() < deadline) {
    std::ifstream in(port_file);
    unsigned data = 0, ctl = 0;
    if (in && (in >> data >> ctl) && data != 0 && ctl != 0) {
      p.data_port = static_cast<std::uint16_t>(data);
      p.ctl_port = static_cast<std::uint16_t>(ctl);
      return true;
    }
    int status = 0;
    if (::waitpid(p.pid, &status, WNOHANG) == p.pid) {
      p.alive = false;
      p.pid = -1;
      return false;  // died before binding — the log file has the story
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  return false;
}

NodeId ProcessRunner::spawn_fresh_node() {
  const NodeId id = next_id_++;
  // A late joiner gets its own map: every current cohort member with its
  // real port, plus itself at port 0 (bind-and-discover). Existing nodes
  // learn the newcomer's address from its first well-formed datagram.
  std::string peers_path = dir_ + "/peers." + std::to_string(id) + ".txt";
  {
    std::ofstream out(peers_path);
    for (const auto& [other, p] : procs_) {
      if (p.alive) out << other << " 127.0.0.1 " << p.data_port << "\n";
    }
    out << id << " 127.0.0.1 0\n";
  }
  spawn(id, peers_path);
  trace_.record(TraceKind::kNodeAdded, id);
  if (!collect_ports(id)) {
    Action dummy;
    dummy.kind = ActionKind::kAddNodes;
    fail(dummy, "node " + std::to_string(id) + " failed to start");
  }
  return id;
}

void ProcessRunner::kill_node(NodeId id) {
  auto it = procs_.find(id);
  if (it == procs_.end() || !it->second.alive) return;
  Proc& p = it->second;
  // Completed operations die with the process; pull them first so the
  // counter-order record stays complete.
  if (!p.paused) harvest_ops_from(id, p);
  ::kill(p.pid, SIGKILL);  // kills stopped processes too
  int status = 0;
  ::waitpid(p.pid, &status, 0);
  p.pid = -1;
  p.alive = false;
  trace_.record(TraceKind::kNodeCrashed, id);
}

// -- Sampling ----------------------------------------------------------------

bool ProcessRunner::sample_node(NodeId id, Proc& p) {
  auto reply = client_.request(p.ctl_port, "STATUS", 250, 2);
  if (!reply) {
    // Unreachable: either mid-GC busy (retry next round) or dead. Only an
    // observed exit is fatal — a wedged-alive node surfaces as an await
    // timeout instead.
    int status = 0;
    if (p.pid > 0 && ::waitpid(p.pid, &status, WNOHANG) == p.pid) {
      p.pid = -1;
      p.alive = false;
      failed_ = true;
      failure_ = "node " + std::to_string(id) + " exited unexpectedly";
    }
    return false;
  }
  if (reply->rfind("OK", 0) != 0) return false;
  const auto kv = ctl::parse_kv(reply->substr(2));
  const std::uint64_t changes = parse_u64(kv, "cfgchanges");
  p.noreco = parse_u64(kv, "noreco") != 0;
  p.participant = parse_u64(kv, "part") != 0;
  const auto cfg_it = kv.find("cfg");
  IdSet cfg;
  if (cfg_it != kv.end() && cfg_it->second != "-") {
    if (auto parsed = ctl::parse_ids(cfg_it->second)) cfg = *parsed;
  }
  p.cfg = cfg;
  p.cfg_proper =
      parse_u64(kv, "cfgtag") ==
          static_cast<std::uint64_t>(reconf::ConfigValue::Tag::kSet) &&
      !cfg.empty();
  p.incq = parse_u64(kv, "incq");
  p.shmq = parse_u64(kv, "shmq");
  p.sent = parse_u64(kv, "sent");
  p.recv = parse_u64(kv, "recv");
  p.syscalls = parse_u64(kv, "syscalls");
  p.batched = parse_u64(kv, "batched");
  p.has_vs = kv.count("vsmc") != 0;
  if (p.has_vs) {
    p.vs_multicast = parse_u64(kv, "vsmc") != 0;
    p.vs_null = parse_u64(kv, "vsnull") != 0;
    p.vs_no_crd = parse_u64(kv, "vsnocrd") != 0;
    p.vs_crd = static_cast<NodeId>(parse_u64(kv, "vscrd"));
    p.vs_view_digest = parse_u64(kv, "vsview");
  }

  const std::uint64_t new_digest = digest_ids(p.cfg);
  if (p.sampled && changes > p.cfgchanges) {
    // The daemon reconfigured since the last sample. The count is exact
    // (the daemon counts every change handler fire); the *values* are
    // sampled, so each of the missed changes is attributed the currently
    // believed configuration at the sample instant.
    const std::uint64_t delta = changes - p.cfgchanges;
    for (std::uint64_t i = 0; i < delta; ++i) {
      registry_->config_history().record(
          now(), id,
          p.cfg_proper ? reconf::ConfigValue::set(p.cfg)
                       : reconf::ConfigValue::bottom());
    }
    trace_.record(TraceKind::kConfigChange, id, new_digest, delta);
  } else if (!p.sampled || new_digest != p.cfg_digest) {
    trace_.record(TraceKind::kNodeSample, id, new_digest,
                  (p.noreco ? 2u : 0u) | (p.participant ? 1u : 0u));
  }
  p.cfgchanges = changes;
  p.cfg_digest = new_digest;
  p.sampled = true;
  return true;
}

bool ProcessRunner::sample_all() {
  bool all = true;
  for (auto& [id, p] : procs_) {
    if (!p.alive || p.paused) continue;
    all = sample_node(id, p) && all;
    if (failed_) return false;
  }
  return all;
}

void ProcessRunner::harvest_ops_from(NodeId id, Proc& p) {
  // Paged pull: every reply carries ops starting at our cursor plus the
  // daemon's total. The cursor only moves past fully validated ops, so a
  // truncated or garbled reply is refetched on the next harvest instead of
  // silently dropping completed increments from the order check.
  for (;;) {
    auto reply = client_.request(
        p.ctl_port, "OPS " + std::to_string(p.ops_harvested), 300, 2);
    if (!reply || reply->rfind("OK", 0) != 0) return;
    std::istringstream is(reply->substr(2));
    std::string tok;
    std::size_t total = 0;
    bool progressed = false;
    while (is >> tok) {
      if (tok.rfind("total=", 0) == 0) {
        total = std::strtoull(tok.substr(6).c_str(), nullptr, 10);
        continue;
      }
      if (tok.rfind("op=", 0) != 0) continue;
      const std::string body = tok.substr(3);
      const auto c1 = body.find(':');
      const auto c2 = body.find(':', c1 + 1);
      if (c1 == std::string::npos || c2 == std::string::npos) return;
      const std::uint64_t started =
          std::strtoull(body.substr(0, c1).c_str(), nullptr, 10);
      const std::uint64_t finished =
          std::strtoull(body.substr(c1 + 1, c2 - c1 - 1).c_str(), nullptr,
                        10);
      auto blob = ctl::hex_decode(body.substr(c2 + 1));
      if (!blob) return;
      wire::Reader r(*blob);
      auto c = counter::Counter::decode(r);
      if (!c || !r.ok()) return;
      registry_->counter_order().record(started, finished, *c);
      if (finished >= started) op_latency_.record(finished - started);
      trace_.record(TraceKind::kIncrementDone, id, 1, c->seqn);
      ++p.ops_harvested;
      progressed = true;
    }
    if (p.ops_harvested >= total || !progressed) return;
  }
}

void ProcessRunner::harvest_ops() {
  for (auto& [id, p] : procs_) {
    if (p.alive && !p.paused) harvest_ops_from(id, p);
  }
}

// -- Control helpers ---------------------------------------------------------

void ProcessRunner::control_or_fail(const Action& a, NodeId id,
                                    const std::string& cmd) {
  auto& p = procs_.at(id);
  auto reply = client_.request(p.ctl_port, cmd);
  if (!reply) {
    fail(a, "node " + std::to_string(id) + " unreachable for '" + cmd + "'");
    return;
  }
  if (reply->rfind("OK", 0) != 0) {
    fail(a, "node " + std::to_string(id) + " rejected '" + cmd +
            "': " + *reply);
  }
}

void ProcessRunner::send_blocked_sets(const IdSet& touched) {
  Action a;
  a.kind = ActionKind::kSplitNetwork;
  for (NodeId id : touched) {
    auto it = procs_.find(id);
    if (it == procs_.end() || !it->second.alive || it->second.paused) continue;
    control_or_fail(a, id, "BLOCK " + ctl::format_ids(blocked_[id]));
  }
}

void ProcessRunner::do_garbage(std::uint64_t per_node) {
  // OS-level channel garbage: raw junk datagrams straight at every node's
  // data socket — no cooperation from the daemon at all.
  const int raw = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (raw < 0) return;
  Rng rng(opt_.seed ^ 0x6A12BA6EULL);
  for (const auto& [id, p] : procs_) {
    if (!p.alive) continue;
    sockaddr_in to{};
    to.sin_family = AF_INET;
    to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    to.sin_port = htons(p.data_port);
    for (std::uint64_t i = 0; i < per_node; ++i) {
      std::uint8_t junk[64];
      for (std::uint8_t& b : junk) {
        b = static_cast<std::uint8_t>(rng.next_u64() & 0xFF);
      }
      (void)::sendto(raw, junk, sizeof(junk), 0,
                     reinterpret_cast<sockaddr*>(&to), sizeof(to));
    }
  }
  ::close(raw);
}

// -- Run loop ----------------------------------------------------------------

bool ProcessRunner::bootstrap() {
  SSR_ASSERT(!bootstrapped_, "bootstrap() spawns the cohort once");
  bootstrapped_ = true;
  ran_ = true;  // the destructor's keep-the-scratch-dir logic keys on this

  // Bootstrap cohort: spawn everyone against a placeholder map (all ports
  // 0), then publish the real ports in one atomic rewrite. The daemons
  // poll the map until their view has no port-0 entries left.
  for (std::size_t i = 0; i < spec_.initial_nodes; ++i) {
    const NodeId id = next_id_++;
    procs_[id];  // placeholder so the shared map lists the whole cohort
  }
  {
    const std::string path = dir_ + "/peers.txt";
    std::ofstream out(path);
    for (const auto& [id, p] : procs_) {
      (void)p;
      out << id << " 127.0.0.1 0\n";
    }
  }
  for (auto& [id, p] : procs_) {
    (void)p;
    spawn(id, dir_ + "/peers.txt");
    trace_.record(TraceKind::kNodeAdded, id);
  }
  for (auto& [id, p] : procs_) {
    (void)p;
    if (!collect_ports(id)) {
      failed_ = true;
      failure_ = "node " + std::to_string(id) + " failed to start";
      break;
    }
  }
  if (!failed_) write_cohort_peer_map();
  return !failed_;
}

void ProcessRunner::step(const Action& a) {
  if (failed_) return;
  trace_.record(TraceKind::kActionApplied, kNoNode,
                static_cast<std::uint64_t>(a.kind), digest_action(a));
  apply(a);
}

IdSet ProcessRunner::routing_config() const {
  if (converged_now()) {
    for (const auto& [id, p] : procs_) {
      (void)id;
      if (p.alive && p.sampled) return p.cfg;
    }
  }
  return alive();
}

ScenarioResult ProcessRunner::run() {
  SSR_ASSERT(!ran_, "a ProcessRunner runs its spec once");
  ran_ = true;

  bootstrap();
  for (const Phase& phase : spec_.phases) {
    if (failed_) break;
    trace_.record(TraceKind::kPhaseStart, kNoNode, digest_name(phase.name));
    for (const Action& a : phase.actions) step(a);
  }
  return finish();
}

ScenarioResult ProcessRunner::finish() {
  harvest_ops();

  ScenarioResult r;
  r.name = spec_.name;
  r.seed = opt_.seed;
  r.failure = failure_;
  r.violations = registry_->check_all();
  r.ok = !failed_ && r.violations.empty();
  // Any failure — missed await OR invariant violation — must keep the
  // scratch directory: the destructor keys on failed_.
  if (!r.ok) failed_ = true;
  r.trace_hash = trace_.hash();
  r.trace_events = trace_.size();
  r.sim_time = now();
  r.ops_completed = op_latency_.count();
  r.op_p50_us = op_latency_.percentile(50);
  r.op_p99_us = op_latency_.percentile(99);
  r.op_latency = op_latency_;
  for (const auto& [id, p] : procs_) {
    (void)id;
    r.packets_sent += p.sent;
    r.packets_delivered += p.recv;
    r.net_syscalls += p.syscalls;
    r.net_batched += p.batched;
  }
  return r;
}

void ProcessRunner::apply(const Action& a) {
  switch (a.kind) {
    case ActionKind::kAddNodes: {
      registry_->unmark_stable();
      for (std::uint64_t i = 0; i < a.n && !failed_; ++i) spawn_fresh_node();
      return;
    }
    case ActionKind::kCrash: {
      registry_->unmark_stable();
      for (NodeId id : a.targets) kill_node(id);
      return;
    }
    case ActionKind::kReboot: {
      registry_->unmark_stable();
      // Identifiers are never reused (paper, Section 2): a reboot is a
      // crash-stop plus a fresh processor taking the slot.
      for (NodeId id : a.targets) {
        kill_node(id);
        if (!failed_) spawn_fresh_node();
      }
      return;
    }
    case ActionKind::kSplitNetwork: {
      registry_->unmark_stable();
      for (NodeId x : a.targets) {
        for (NodeId y : a.group_b) {
          if (x == y) continue;
          blocked_[x].insert(y);
          blocked_[y].insert(x);
        }
      }
      IdSet touched = a.targets;
      for (NodeId y : a.group_b) touched.insert(y);
      send_blocked_sets(touched);
      return;
    }
    case ActionKind::kHealNetwork: {
      IdSet touched;
      for (auto& [id, set] : blocked_) {
        if (!set.empty()) touched.insert(id);
        set = IdSet{};
      }
      send_blocked_sets(touched);
      return;
    }
    case ActionKind::kCorruptRecsa:
      registry_->unmark_stable();
      for (NodeId id : targets_or_alive(a)) {
        control_or_fail(a, id, "CORRUPT recsa");
      }
      return;
    case ActionKind::kCorruptFd:
      registry_->unmark_stable();
      for (NodeId id : targets_or_alive(a)) {
        control_or_fail(a, id, "CORRUPT fd");
      }
      return;
    case ActionKind::kSplitConfigState: {
      registry_->unmark_stable();
      // Mirrors harness::FaultInjector::split_config: the first half of the
      // alive set (in id order) believes `targets`, the rest believe
      // `group_b`.
      const IdSet all = alive();
      std::size_t i = 0;
      for (NodeId id : all) {
        const bool first_half = i < all.size() / 2;
        const IdSet& mine = first_half ? a.targets : a.group_b;
        control_or_fail(a, id, "CONF " + ctl::format_ids(mine));
        ++i;
      }
      return;
    }
    case ActionKind::kGarbageChannels:
      registry_->unmark_stable();
      do_garbage(a.n);
      return;
    case ActionKind::kPlantExhaustedCounter:
      registry_->unmark_stable();
      for (NodeId id : a.targets) {
        control_or_fail(a, id, "PLANT_CTR " + std::to_string(a.n));
      }
      return;
    case ActionKind::kPlantRecmaFlags:
      registry_->unmark_stable();
      for (NodeId id : a.targets) {
        control_or_fail(a, id,
                        std::string("RECMA ") + ((a.n & 1) ? "1" : "0") + " " +
                            ((a.n & 2) ? "1" : "0"));
      }
      return;
    case ActionKind::kIncrementBurst:
      do_increment_burst(a);
      return;
    case ActionKind::kShmemWrite:
      do_shmem(a, /*write=*/true);
      return;
    case ActionKind::kShmemRead:
      do_shmem(a, /*write=*/false);
      return;
    case ActionKind::kRunFor: {
      const SimTime deadline = now() + scaled(a.duration);
      while (now() < deadline && !failed_) {
        sample_all();
        step_sleep();
      }
      return;
    }
    case ActionKind::kAwaitConverged: {
      if (!await(await_budget(a.duration), [&] { return converged_now(); })) {
        if (!failed_) fail(a, "no convergence within the time budget");
        return;
      }
      trace_.record(TraceKind::kConverged, kNoNode,
                    digest_ids(procs_.at(*alive().begin()).cfg));
      return;
    }
    case ActionKind::kAwaitVsStable: {
      if (!spec_.enable_vs) {
        fail(a, "await_vs_stable needs enable_vs in the spec");
        return;
      }
      if (!await(await_budget(a.duration), [&] { return vs_stable_now(); })) {
        if (!failed_) fail(a, "VS layer did not stabilize");
        return;
      }
      trace_.record(TraceKind::kVsStable, kNoNode);
      return;
    }
    case ActionKind::kAwaitParticipants: {
      auto all_part = [&] {
        for (NodeId id : a.targets) {
          auto it = procs_.find(id);
          if (it == procs_.end() || !it->second.alive ||
              !it->second.sampled || !it->second.participant) {
            return false;
          }
        }
        return true;
      };
      if (!await(await_budget(a.duration), all_part) && !failed_) {
        fail(a, "targets were not admitted as participants");
      }
      return;
    }
    case ActionKind::kAwaitConfigEqualsAlive: {
      auto caught_up = [&] {
        const IdSet live = alive();
        for (NodeId id : live) {
          const Proc& p = procs_.at(id);
          if (!p.sampled || !p.cfg_proper || !(p.cfg == live)) return false;
        }
        return !live.empty();
      };
      if (!await(await_budget(a.duration), caught_up) && !failed_) {
        fail(a, "configuration did not catch up with the alive set");
      }
      return;
    }
    case ActionKind::kMarkStable: {
      // Take a fresh sample of *every* node first, so changes that happened
      // before the window opened are not attributed into it. A transiently
      // unresponsive daemon (busy lap, loopback drop) gets retried — one
      // missed node here would turn into a spurious closure violation at
      // its next successful sample.
      for (int lap = 0; lap < 20 && !sample_all() && !failed_; ++lap) {
        step_sleep();
      }
      registry_->mark_stable();
      trace_.record(TraceKind::kStableMarked, kNoNode);
      return;
    }
    case ActionKind::kCrashAll: {
      registry_->unmark_stable();
      for (NodeId id : alive()) kill_node(id);
      return;
    }
    case ActionKind::kAwaitQuiescent: {
      if (!alive().empty()) {
        registry_->report("silence", false,
                          "await_quiescent requires every node crashed first");
        return;
      }
      // Process-level quiescence is an OS triviality (the processes are
      // gone); the event-level drain check is a simulator property. Record
      // the teardown point so traces stay comparable.
      trace_.record(TraceKind::kQuiescent, kNoNode, 1);
      return;
    }
    case ActionKind::kPauseNodes: {
      registry_->unmark_stable();
      for (NodeId id : a.targets) {
        auto it = procs_.find(id);
        if (it == procs_.end() || !it->second.alive) continue;
        // Harvest first: a stopped process cannot answer OPS, and it may
        // be SIGKILLed before ever resuming.
        harvest_ops_from(id, it->second);
        ::kill(it->second.pid, SIGSTOP);
        it->second.paused = true;
        trace_.record(TraceKind::kNodePaused, id);
      }
      return;
    }
    case ActionKind::kResumeNodes: {
      for (NodeId id : a.targets) {
        auto it = procs_.find(id);
        if (it == procs_.end() || !it->second.alive || !it->second.paused) {
          continue;
        }
        ::kill(it->second.pid, SIGCONT);
        it->second.paused = false;
        trace_.record(TraceKind::kNodeResumed, id);
        // Peer-filter updates (splits/heals) that happened while the node
        // was stopped were never delivered; reinstall the current set.
        control_or_fail(a, id, "BLOCK " + ctl::format_ids(blocked_[id]));
        // And sample immediately, so state from before the pause cannot be
        // attributed into a closure window opened later.
        sample_node(id, it->second);
      }
      return;
    }
  }
}

void ProcessRunner::do_increment_burst(const Action& a) {
  const IdSet clients = targets_or_alive(a);
  IdSet queued;
  for (NodeId id : clients) {
    auto it = procs_.find(id);
    if (it == procs_.end() || !it->second.alive || it->second.paused) continue;
    control_or_fail(a, id, "INC " + std::to_string(a.n));
    if (failed_) return;
    queued.insert(id);
  }
  // Generous drain budget: increments are quorum operations that legally
  // abort and retry through reconfigurations. Remaining queue depth at the
  // deadline is not a scenario failure — exactly like the simulator's
  // bounded-attempt bursts — it only means fewer ops feed the order check.
  const SimTime budget = await_budget(120 * kSec * (a.n == 0 ? 1 : a.n));
  await(budget, [&] {
    for (NodeId id : queued) {
      const Proc& p = procs_.at(id);
      if (p.alive && !p.paused && (!p.sampled || p.incq != 0)) return false;
    }
    return true;
  });
  harvest_ops();
}

void ProcessRunner::do_shmem(const Action& a, bool write) {
  std::string cmd;
  if (write) {
    cmd = "SHMEMW " + a.reg + " " + std::to_string(a.n);
  } else {
    cmd = "SHMEMR " + a.reg;
  }
  IdSet queued;
  for (NodeId id : targets_or_alive(a)) {
    auto it = procs_.find(id);
    if (it == procs_.end() || !it->second.alive || it->second.paused) continue;
    control_or_fail(a, id, cmd);
    if (failed_) return;
    queued.insert(id);
  }
  await(await_budget(160 * kSec), [&] {
    for (NodeId id : queued) {
      const Proc& p = procs_.at(id);
      if (p.alive && !p.paused && (!p.sampled || p.shmq != 0)) return false;
    }
    return true;
  });
  for (NodeId id : queued) {
    const Proc& p = procs_.at(id);
    trace_.record(TraceKind::kShmemOpDone, id,
                  (p.sampled && p.shmq == 0) ? 1 : 0, write ? 1 : 0);
  }
}

}  // namespace ssr::scenario
