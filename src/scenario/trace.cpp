#include "scenario/trace.hpp"

#include <sstream>

#include "harness/world.hpp"

namespace ssr::scenario {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t digest_config(const reconf::ConfigValue& c) {
  std::uint64_t h = TraceRecorder::kFnvBasis;
  h = TraceRecorder::mix(h, static_cast<std::uint64_t>(c.tag()));
  if (c.is_set()) {
    for (NodeId id : c.ids()) h = TraceRecorder::mix(h, id);
  }
  return h;
}

std::uint64_t digest_view(const vs::View& v) {
  std::uint64_t h = TraceRecorder::kFnvBasis;
  h = TraceRecorder::mix(h, v.id.seqn);
  h = TraceRecorder::mix(h, v.id.wid);
  for (NodeId id : v.set) h = TraceRecorder::mix(h, id);
  return h;
}

std::uint64_t digest_batch(
    const std::vector<std::pair<NodeId, wire::Bytes>>& msgs) {
  std::uint64_t h = TraceRecorder::kFnvBasis;
  for (const auto& [id, m] : msgs) {
    h = TraceRecorder::mix(h, id);
    for (std::uint8_t byte : m) h = TraceRecorder::mix(h, byte);
  }
  return h;
}

/// Thread-local free list of trace segments, mirroring wire::BufferPool:
/// recorders on one thread (a sweep worker churning through jobs, the bench
/// loop) hand segments back on destruction and the next recorder picks them
/// up warm. Bounded so a one-off giant trace cannot pin memory forever.
class SegmentPool {
 public:
  static constexpr std::size_t kMaxFree = 32;

  std::unique_ptr<TraceRecorder::Segment> acquire() {
    if (!free_.empty()) {
      auto seg = std::move(free_.back());
      free_.pop_back();
      return seg;
    }
    // ssr-lint: allow(hot-path-alloc) pool miss: only while this thread's
    // high-water trace size is still growing; recycled ever after.
    return std::make_unique<TraceRecorder::Segment>();
  }

  void release(std::unique_ptr<TraceRecorder::Segment> seg) {
    if (free_.size() >= kMaxFree) return;  // drop: bounded retention
    // ssr-lint: allow(hot-path-alloc) free-list growth is bounded by
    // kMaxFree slots and amortized across every later acquire().
    free_.push_back(std::move(seg));
  }

  static SegmentPool& local() {
    thread_local SegmentPool pool;
    return pool;
  }

 private:
  std::vector<std::unique_ptr<TraceRecorder::Segment>> free_;
};

}  // namespace

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kPhaseStart: return "phase";
    case TraceKind::kActionApplied: return "action";
    case TraceKind::kNodeAdded: return "node_added";
    case TraceKind::kNodeCrashed: return "node_crashed";
    case TraceKind::kConfigChange: return "config_change";
    case TraceKind::kViewInstall: return "view_install";
    case TraceKind::kVsDeliver: return "vs_deliver";
    case TraceKind::kIncrementDone: return "increment_done";
    case TraceKind::kShmemOpDone: return "shmem_op_done";
    case TraceKind::kConverged: return "converged";
    case TraceKind::kVsStable: return "vs_stable";
    case TraceKind::kStableMarked: return "stable_marked";
    case TraceKind::kQuiescent: return "quiescent";
    case TraceKind::kNodePaused: return "node_paused";
    case TraceKind::kNodeResumed: return "node_resumed";
    case TraceKind::kNodeSample: return "node_sample";
  }
  return "unknown";
}

std::uint64_t TraceRecorder::mix(std::uint64_t h, std::uint64_t x) {
  // Word-wise FNV-1a: eight rounds keep the full 64 bits of `x` in play.
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((x >> (8 * i)) & 0xFF)) * kFnvPrime;
  }
  return h;
}

TraceRecorder::~TraceRecorder() {
  for (auto& seg : segs_) {
    if (seg) SegmentPool::local().release(std::move(seg));
  }
}

void TraceRecorder::grow() {
  // ssr-lint: allow(hot-path-alloc) segment-pointer vector: grows once per
  // kSegmentEvents records and only past the recorder's high-water mark.
  segs_.push_back(SegmentPool::local().acquire());
}

void TraceRecorder::attach(harness::World& world) {
  world_ = &world;
  for (NodeId id : world.all_ids()) attach_node(world, id);
}

void TraceRecorder::attach_node(harness::World& world, NodeId id) {
  world_ = &world;
  auto& n = world.node(id);
  n.recsa().add_config_change_handler(
      [this, id](const reconf::ConfigValue& c) {
        record(TraceKind::kConfigChange, id, digest_config(c));
      });
  if (auto* v = n.vs()) {
    v->add_view_install_handler([this, id](const vs::View& view) {
      record(TraceKind::kViewInstall, id, digest_view(view));
    });
    v->add_deliver_handler(
        [this, id](const vs::View& view, std::uint64_t rnd,
                   const std::vector<std::pair<NodeId, wire::Bytes>>& msgs) {
          std::uint64_t key = mix(digest_view(view), rnd);
          record(TraceKind::kVsDeliver, id, key, digest_batch(msgs));
        });
  }
}

void TraceRecorder::record(TraceKind kind, NodeId node, std::uint64_t a,
                           std::uint64_t b) {
  if (size_ == segs_.size() * kSegmentEvents) grow();
  TraceEvent& ev = segs_[size_ / kSegmentEvents]->ev[size_ % kSegmentEvents];
  if (clock_) {
    ev.when = clock_();
  } else if (world_ != nullptr) {
    ev.when = world_->scheduler().now();
  } else {
    ev.when = 0;
  }
  ev.node = node;
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  ++size_;
}

std::uint64_t TraceRecorder::hash() const {
  std::uint64_t h = kFnvBasis;
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceEvent& e = (*this)[i];
    h = mix(h, e.when);
    h = mix(h, e.node);
    h = mix(h, static_cast<std::uint64_t>(e.kind));
    h = mix(h, e.a);
    h = mix(h, e.b);
  }
  return h;
}

std::string TraceRecorder::format_event(const TraceEvent& e) {
  std::ostringstream os;
  os << e.when / kMsec << "ms\t";
  if (e.node == kNoNode) {
    os << "-";
  } else {
    os << "n" << e.node;
  }
  os << "\t" << to_string(e.kind) << "\t" << std::hex << e.a << "\t" << e.b
     << std::dec;
  return os.str();
}

std::string TraceRecorder::dump(std::size_t max_lines) const {
  std::ostringstream os;
  std::size_t n = size_;
  if (max_lines != 0 && max_lines < n) n = max_lines;
  for (std::size_t i = 0; i < n; ++i) {
    os << format_event((*this)[i]) << "\n";
  }
  if (n < size_) {
    os << "... (" << size_ - n << " more)\n";
  }
  return os.str();
}

void TraceRecorder::save(std::ostream& os) const {
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceEvent& e = (*this)[i];
    os << e.when << ' ' << e.node << ' '
       << static_cast<std::uint64_t>(e.kind) << ' ' << std::hex << e.a << ' '
       << e.b << std::dec << '\n';
  }
  os << "hash " << std::hex << hash() << std::dec << '\n';
}

std::optional<std::vector<TraceEvent>> TraceRecorder::load(std::istream& is) {
  std::vector<TraceEvent> out;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string first;
    ls >> first;
    if (first == "hash") continue;  // trailer; the events are the record
    TraceEvent e;
    std::uint64_t kind = 0;
    std::istringstream when_s(first);
    if (!(when_s >> e.when)) return std::nullopt;
    if (!(ls >> e.node >> kind >> std::hex >> e.a >> e.b)) return std::nullopt;
    e.kind = static_cast<TraceKind>(kind);
    // ssr-lint: allow(hot-path-alloc) golden-trace parsing: tooling path
    // (--diff), never on the recording hot path.
    out.push_back(e);
  }
  return out;
}

}  // namespace ssr::scenario
