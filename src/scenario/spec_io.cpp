#include "scenario/spec_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace ssr::scenario {
namespace {

constexpr const char* kMagic = "ssrspec v1";

/// Every ActionKind, for the name -> kind reverse map. Kept in enum order;
/// a kind missing here would fail the spec_io round-trip test.
constexpr ActionKind kAllKinds[] = {
    ActionKind::kAddNodes,       ActionKind::kCrash,
    ActionKind::kReboot,         ActionKind::kSplitNetwork,
    ActionKind::kHealNetwork,    ActionKind::kCorruptRecsa,
    ActionKind::kCorruptFd,      ActionKind::kSplitConfigState,
    ActionKind::kGarbageChannels, ActionKind::kPlantExhaustedCounter,
    ActionKind::kPlantRecmaFlags, ActionKind::kIncrementBurst,
    ActionKind::kShmemWrite,     ActionKind::kShmemRead,
    ActionKind::kRunFor,         ActionKind::kAwaitConverged,
    ActionKind::kAwaitVsStable,  ActionKind::kAwaitParticipants,
    ActionKind::kAwaitConfigEqualsAlive, ActionKind::kMarkStable,
    ActionKind::kCrashAll,       ActionKind::kAwaitQuiescent,
    ActionKind::kPauseNodes,     ActionKind::kResumeNodes,
};

void write_ids(std::ostream& os, const IdSet& ids) {
  bool first = true;
  for (NodeId id : ids) {
    if (!first) os << ',';
    os << id;
    first = false;
  }
}

bool parse_ids(const std::string& s, IdSet& out) {
  out.clear();
  if (s.empty()) return true;
  std::size_t pos = 0;
  while (pos < s.size()) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str() + pos, &end, 10);
    if (end == s.c_str() + pos) return false;
    out.insert(static_cast<NodeId>(v));
    pos = static_cast<std::size_t>(end - s.c_str());
    if (pos < s.size()) {
      if (s[pos] != ',') return false;
      ++pos;
    }
  }
  return true;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return *end == '\0';
}

bool parse_bool(const std::string& s, bool& out) {
  if (s == "0") {
    out = false;
    return true;
  }
  if (s == "1") {
    out = true;
    return true;
  }
  return false;
}

/// Splits "key rest-of-line"; returns false on a blank line.
bool split_key(const std::string& line, std::string& key, std::string& rest) {
  const auto sp = line.find(' ');
  if (sp == std::string::npos) {
    key = line;
    rest.clear();
  } else {
    key = line.substr(0, sp);
    rest = line.substr(sp + 1);
  }
  return !key.empty();
}

/// Pulls "name=" ... " name2=" fields off an action line. `reg=` must come
/// last (its value runs to the end of the line, so registers may contain
/// spaces — everything else is a single token).
bool take_field(std::string& rest, const char* name, std::string& value) {
  const std::string tag = std::string(name) + "=";
  if (rest.rfind(tag, 0) != 0) return false;
  rest.erase(0, tag.size());
  const auto sp = rest.find(' ');
  if (sp == std::string::npos) {
    value = rest;
    rest.clear();
  } else {
    value = rest.substr(0, sp);
    rest.erase(0, sp + 1);
  }
  return true;
}

}  // namespace

std::optional<ActionKind> action_kind_from_string(const std::string& name) {
  for (ActionKind k : kAllKinds) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

void save_spec(std::ostream& os, const ScenarioSpec& spec) {
  os << kMagic << '\n';
  os << "name " << spec.name << '\n';
  os << "description " << spec.description << '\n';
  os << "nodes " << spec.initial_nodes << '\n';
  os << "vs " << (spec.enable_vs ? 1 : 0) << '\n';
  os << "aggressive " << (spec.aggressive_policy ? 1 : 0) << '\n';
  os << "adopt_joiners " << (spec.adopt_joiners ? 1 : 0) << '\n';
  char prob[64];
  std::snprintf(prob, sizeof prob, "%.17g", spec.corrupt_probability);
  os << "corrupt_prob " << prob << '\n';
  os << "exhaust_bound " << spec.exhaust_bound << '\n';
  os << "adversarial " << (spec.adversarial ? 1 : 0) << '\n';
  for (const Phase& phase : spec.phases) {
    os << "phase " << phase.name << '\n';
    for (const Action& a : phase.actions) {
      os << "action " << to_string(a.kind) << " targets=";
      write_ids(os, a.targets);
      os << " group=";
      write_ids(os, a.group_b);
      os << " n=" << a.n << " duration=" << a.duration << " reg=" << a.reg
         << '\n';
    }
  }
  os << "end\n";
}

std::string spec_to_string(const ScenarioSpec& spec) {
  std::ostringstream os;
  save_spec(os, spec);
  return os.str();
}

std::optional<ScenarioSpec> load_spec(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic) return std::nullopt;
  ScenarioSpec spec;
  spec.initial_nodes = 0;
  Phase* phase = nullptr;
  bool ended = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (ended) return std::nullopt;  // trailing garbage after "end"
    std::string key, rest;
    if (!split_key(line, key, rest)) return std::nullopt;
    if (key == "name") {
      spec.name = rest;
    } else if (key == "description") {
      spec.description = rest;
    } else if (key == "nodes") {
      std::uint64_t v = 0;
      if (!parse_u64(rest, v)) return std::nullopt;
      spec.initial_nodes = static_cast<std::size_t>(v);
    } else if (key == "vs") {
      if (!parse_bool(rest, spec.enable_vs)) return std::nullopt;
    } else if (key == "aggressive") {
      if (!parse_bool(rest, spec.aggressive_policy)) return std::nullopt;
    } else if (key == "adopt_joiners") {
      if (!parse_bool(rest, spec.adopt_joiners)) return std::nullopt;
    } else if (key == "corrupt_prob") {
      char* end = nullptr;
      spec.corrupt_probability = std::strtod(rest.c_str(), &end);
      if (end == rest.c_str() || *end != '\0') return std::nullopt;
    } else if (key == "exhaust_bound") {
      if (!parse_u64(rest, spec.exhaust_bound)) return std::nullopt;
    } else if (key == "adversarial") {
      if (!parse_bool(rest, spec.adversarial)) return std::nullopt;
    } else if (key == "phase") {
      spec.phases.push_back(Phase{rest, {}});
      phase = &spec.phases.back();
    } else if (key == "action") {
      if (phase == nullptr) return std::nullopt;
      std::string kind_name, field;
      if (!split_key(rest, kind_name, rest)) return std::nullopt;
      auto kind = action_kind_from_string(kind_name);
      if (!kind) return std::nullopt;
      Action a;
      a.kind = *kind;
      if (!take_field(rest, "targets", field) ||
          !parse_ids(field, a.targets)) {
        return std::nullopt;
      }
      if (!take_field(rest, "group", field) || !parse_ids(field, a.group_b)) {
        return std::nullopt;
      }
      if (!take_field(rest, "n", field) || !parse_u64(field, a.n)) {
        return std::nullopt;
      }
      std::uint64_t dur = 0;
      if (!take_field(rest, "duration", field) || !parse_u64(field, dur)) {
        return std::nullopt;
      }
      a.duration = static_cast<SimTime>(dur);
      // reg= runs to the end of the line.
      const std::string tag = "reg=";
      if (rest.rfind(tag, 0) != 0) return std::nullopt;
      a.reg = rest.substr(tag.size());
      phase->actions.push_back(std::move(a));
    } else if (key == "end") {
      ended = true;
    } else {
      return std::nullopt;
    }
  }
  if (!ended || spec.name.empty() || spec.initial_nodes == 0) {
    return std::nullopt;
  }
  return spec;
}

bool save_spec_file(const std::string& path, const ScenarioSpec& spec) {
  std::ofstream out(path);
  if (!out) return false;
  save_spec(out, spec);
  return static_cast<bool>(out);
}

std::optional<ScenarioSpec> load_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return load_spec(in);
}

}  // namespace ssr::scenario
