#pragma once

// Process execution backend for the scenario engine (POSIX only).
//
// Takes the same ScenarioSpec the simulator consumes and runs it against
// real ssr_node daemons on localhost UDP — one OS process per node — with
// the fault script implemented in OS primitives:
//
//   crash / reboot      SIGKILL (+ a fresh process for the replacement id)
//   pause / resume      SIGSTOP / SIGCONT
//   partition / heal    per-node peer filters installed over the control
//                       socket (UdpTransport::set_blocked on each side)
//   channel garbage     raw junk datagrams fired at every node's data port
//   state corruption    CORRUPT/CONF/PLANT_CTR/RECMA control commands
//   workload            INC/SHMEMW/SHMEMR control commands
//
// Node state is sampled over the control socket into the same TraceRecorder
// the simulator uses, and the same InvariantRegistry checks evaluate at the
// end: closure windows over sampled config changes, counter order over the
// per-operation intervals the daemons report, convergence awaits. Wall
// time replaces virtual time; sim durations are scaled by
// ProcessBackendOptions::time_scale.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "scenario/backend.hpp"
#include "scenario/control.hpp"
#include "scenario/scenario.hpp"
#include "util/histogram.hpp"

namespace ssr::scenario {

struct ProcessBackendOptions {
  /// Path to the ssr_node binary (required).
  std::string node_binary;
  /// Scratch directory for peer maps, port files and per-node logs; empty =
  /// a fresh mkdtemp under TMPDIR. Kept on failure (CI uploads it), removed
  /// on success unless keep_dir.
  std::string work_dir;
  bool keep_dir = false;
  /// Wall-clock seconds per simulated second for durations in the spec.
  /// Awaits stop early on success, so this mostly paces run_for stretches
  /// and closure windows.
  double time_scale = 0.05;
  /// Floor for await budgets after scaling (process startup + real
  /// convergence time dominate short awaits).
  SimTime min_await = 30 * kSec;
  /// Forwarded into the daemons' RNG seeds (per-node mixed).
  std::uint64_t seed = 1;
  /// --seconds passed to every daemon: a self-destruct horizon so orphans
  /// die even if the runner is SIGKILLed mid-scenario.
  std::uint64_t node_seconds = 900;
  /// Daemon do-forever tick (µs); smaller than the daemon's standalone
  /// default to keep scaled scenarios snappy.
  std::uint64_t tick_us = 2000;
  /// Shard tag for the whole fleet: forwarded to every daemon as --shard,
  /// stamped into the UDP envelopes and checked on receive. Disjoint
  /// fleets on one host cannot leak protocol traffic into each other even
  /// with overlapping node ids (see UdpTransportConfig::shard).
  std::uint32_t shard = 0;
};

/// ScenarioBackend over real processes. One runner instance runs one spec
/// once; the destructor reaps every child it spawned.
class ProcessRunner final : public ScenarioBackend {
 public:
  ProcessRunner(ScenarioSpec spec, ProcessBackendOptions opt);
  ~ProcessRunner() override;

  ProcessRunner(const ProcessRunner&) = delete;
  ProcessRunner& operator=(const ProcessRunner&) = delete;

  ScenarioResult run() override;
  TraceRecorder& trace() override { return trace_; }
  InvariantRegistry& invariants() override { return *registry_; }

  const std::string& work_dir() const { return dir_; }

  // -- Multi-fleet driving (shard::ShardedProcessRunner) ---------------------
  // The three stages of run(), exposed so a driver owning several fleets can
  // interleave their scripts: run() is exactly bootstrap(), then every phase
  // action through step(), then finish().

  /// Spawns the initial cohort and publishes the port map. Returns false
  /// (with the failure recorded) when any daemon failed to start.
  bool bootstrap();
  /// Applies one action; records it in the trace first. No-op once failed.
  void step(const Action& a);
  /// Final harvest + invariant evaluation; call once, after the last step.
  ScenarioResult finish();

  bool failed() const { return failed_; }
  const std::string& failure() const { return failure_; }
  /// Completed client ops harvested so far — a driver diffs this across a
  /// step() to judge whether one routed attempt completed.
  std::uint64_t ops_completed() const { return op_latency_.count(); }
  /// Ids of the currently alive daemons.
  IdSet alive_ids() const { return alive(); }
  /// One sampling round; true when every polled daemon answered.
  bool sample() { return sample_all(); }
  /// The converged() predicate over the latest samples (no new sampling).
  bool converged_sampled() const { return converged_now(); }
  /// Latest believed membership for client routing: the common sampled
  /// configuration when the fleet agrees on one, else the alive set.
  IdSet routing_config() const;

 private:
  struct Proc {
    int pid = -1;
    std::uint16_t data_port = 0;
    std::uint16_t ctl_port = 0;
    bool alive = false;
    bool paused = false;
    // Last STATUS sample (valid once sampled = true).
    bool sampled = false;
    bool noreco = false;
    bool participant = false;
    bool cfg_proper = false;
    IdSet cfg;
    std::uint64_t cfg_digest = 0;
    std::uint64_t cfgchanges = 0;
    std::uint64_t incq = 0;
    std::uint64_t shmq = 0;
    std::uint64_t sent = 0;
    std::uint64_t recv = 0;
    std::uint64_t syscalls = 0;  // sendmmsg+recvmmsg calls (STATUS syscalls=)
    std::uint64_t batched = 0;   // datagrams sharing a send syscall
    // VS layer sample (valid when has_vs).
    bool has_vs = false;
    bool vs_multicast = false;
    bool vs_null = true;
    bool vs_no_crd = true;
    NodeId vs_crd = kNoNode;
    std::uint64_t vs_view_digest = 0;
    /// How many of the daemon's completed ops were already fed to the
    /// counter-order monitor (the OPS reply is append-only).
    std::size_t ops_harvested = 0;
  };

  /// Wall microseconds since run start — the backend's SimTime.
  SimTime now() const;
  SimTime scaled(SimTime sim_duration) const;
  SimTime await_budget(SimTime sim_duration) const;

  NodeId spawn_fresh_node();
  void spawn(NodeId id, const std::string& peers_path);
  void kill_node(NodeId id);
  void write_cohort_peer_map();
  bool collect_ports(NodeId id);
  void fail(const Action& a, const std::string& detail);

  IdSet alive() const;
  IdSet targets_or_alive(const Action& a) const;
  /// The converged() predicate over the latest samples: every alive node
  /// reports noReco and the same proper configuration.
  bool converged_now() const;
  /// World::vs_stable over the latest samples: converged, and every alive
  /// participant multicasting in one common non-null view with one
  /// coordinator.
  bool vs_stable_now() const;

  /// One STATUS round over every alive, unpaused node. Config changes
  /// observed since the previous round are recorded into the trace and the
  /// config-history monitor. An unreachable node is checked against
  /// waitpid: an unexpected exit fails the scenario. Returns true when
  /// every polled node answered this round.
  bool sample_all();
  bool sample_node(NodeId id, Proc& p);
  /// Pulls completed operations from every alive node into the
  /// counter-order monitor (incremental; safe to call repeatedly).
  void harvest_ops();
  void harvest_ops_from(NodeId id, Proc& p);

  /// Sleeps in sampling steps until `pred` holds or `budget` elapses.
  template <class Pred>
  bool await(SimTime budget, Pred pred) {
    const SimTime deadline = now() + budget;
    for (;;) {
      sample_all();
      if (failed_) return false;
      if (pred()) return true;
      if (now() >= deadline) return pred();
      step_sleep();
    }
  }

  void step_sleep() const;
  void send_blocked_sets(const IdSet& touched);
  void control_or_fail(const Action& a, NodeId id, const std::string& cmd);

  void apply(const Action& a);
  void do_increment_burst(const Action& a);
  void do_shmem(const Action& a, bool write);
  void do_garbage(std::uint64_t per_node);

  ScenarioSpec spec_;
  ProcessBackendOptions opt_;
  std::string dir_;
  bool made_dir_ = false;
  std::uint64_t epoch_usec_ = 0;
  ctl::ControlClient client_;
  TraceRecorder trace_;
  std::unique_ptr<InvariantRegistry> registry_;
  std::map<NodeId, Proc> procs_;
  /// Runner-side view of each node's peer filter (BLOCK replaces the whole
  /// set, so partitions accumulate here and ship as full sets).
  std::map<NodeId, IdSet> blocked_;
  NodeId next_id_ = 1;
  bool failed_ = false;
  std::string failure_;
  /// Wall-clock client-op latencies harvested from the daemons.
  util::LatencyHistogram op_latency_;
  bool ran_ = false;
  bool bootstrapped_ = false;
};

}  // namespace ssr::scenario
