#include "scenario/backend.hpp"

#include <sstream>

namespace ssr::scenario {

std::string ScenarioResult::summary() const {
  std::ostringstream os;
  os << name << " seed=" << seed << " " << (ok ? "OK" : "FAIL")
     << " events=" << trace_events << " hash=" << std::hex << trace_hash
     << std::dec << " sim=" << sim_time / kSec << "s";
  if (!failure.empty()) os << " failure=\"" << failure << "\"";
  for (const auto& v : violations) {
    os << "\n  violation[" << v.invariant << "]: " << v.message;
  }
  return os.str();
}

}  // namespace ssr::scenario
