#include "scenario/backend.hpp"

#include <sstream>

namespace ssr::scenario {

std::string ScenarioResult::summary() const {
  std::ostringstream os;
  os << name << " seed=" << seed << " " << (ok ? "OK" : "FAIL")
     << " events=" << trace_events << " hash=" << std::hex << trace_hash
     << std::dec << " sim=" << sim_time / kSec << "s";
  if (ops_completed > 0) {
    os << " ops=" << ops_completed << " p50=" << op_p50_us << "us"
       << " p99=" << op_p99_us << "us";
  }
  if (net_syscalls > 0) {
    os << " syscalls=" << net_syscalls << " batched=" << net_batched;
  }
  if (!failure.empty()) os << " failure=\"" << failure << "\"";
  for (const auto& v : violations) {
    os << "\n  violation[" << v.invariant << "]: " << v.message;
  }
  return os.str();
}

}  // namespace ssr::scenario
