#include "scenario/scenario.hpp"

namespace ssr::scenario {

const char* to_string(ActionKind k) {
  switch (k) {
    case ActionKind::kAddNodes: return "add_nodes";
    case ActionKind::kCrash: return "crash";
    case ActionKind::kReboot: return "reboot";
    case ActionKind::kSplitNetwork: return "split_network";
    case ActionKind::kHealNetwork: return "heal_network";
    case ActionKind::kCorruptRecsa: return "corrupt_recsa";
    case ActionKind::kCorruptFd: return "corrupt_fd";
    case ActionKind::kSplitConfigState: return "split_config_state";
    case ActionKind::kGarbageChannels: return "garbage_channels";
    case ActionKind::kPlantExhaustedCounter: return "plant_exhausted_counter";
    case ActionKind::kPlantRecmaFlags: return "plant_recma_flags";
    case ActionKind::kIncrementBurst: return "increment_burst";
    case ActionKind::kShmemWrite: return "shmem_write";
    case ActionKind::kShmemRead: return "shmem_read";
    case ActionKind::kRunFor: return "run_for";
    case ActionKind::kAwaitConverged: return "await_converged";
    case ActionKind::kAwaitVsStable: return "await_vs_stable";
    case ActionKind::kAwaitParticipants: return "await_participants";
    case ActionKind::kAwaitConfigEqualsAlive: return "await_config_equals_alive";
    case ActionKind::kMarkStable: return "mark_stable";
    case ActionKind::kCrashAll: return "crash_all";
    case ActionKind::kAwaitQuiescent: return "await_quiescent";
    case ActionKind::kPauseNodes: return "pause_nodes";
    case ActionKind::kResumeNodes: return "resume_nodes";
  }
  return "unknown";
}

Action Action::add_nodes(std::uint64_t count) {
  Action a;
  a.kind = ActionKind::kAddNodes;
  a.n = count;
  return a;
}

Action Action::crash(IdSet targets) {
  Action a;
  a.kind = ActionKind::kCrash;
  a.targets = std::move(targets);
  return a;
}

Action Action::reboot(IdSet targets) {
  Action a;
  a.kind = ActionKind::kReboot;
  a.targets = std::move(targets);
  return a;
}

Action Action::split_network(IdSet x, IdSet y) {
  Action a;
  a.kind = ActionKind::kSplitNetwork;
  a.targets = std::move(x);
  a.group_b = std::move(y);
  return a;
}

Action Action::heal_network() {
  Action a;
  a.kind = ActionKind::kHealNetwork;
  return a;
}

Action Action::corrupt_recsa(IdSet targets) {
  Action a;
  a.kind = ActionKind::kCorruptRecsa;
  a.targets = std::move(targets);
  return a;
}

Action Action::corrupt_fd(IdSet targets) {
  Action a;
  a.kind = ActionKind::kCorruptFd;
  a.targets = std::move(targets);
  return a;
}

Action Action::split_config_state(IdSet x, IdSet y) {
  Action a;
  a.kind = ActionKind::kSplitConfigState;
  a.targets = std::move(x);
  a.group_b = std::move(y);
  return a;
}

Action Action::garbage_channels(std::uint64_t per_channel) {
  Action a;
  a.kind = ActionKind::kGarbageChannels;
  a.n = per_channel;
  return a;
}

Action Action::plant_exhausted_counter(IdSet targets, std::uint64_t seqn) {
  Action a;
  a.kind = ActionKind::kPlantExhaustedCounter;
  a.targets = std::move(targets);
  a.n = seqn;
  return a;
}

Action Action::plant_recma_flags(IdSet targets, bool no_maj, bool need_reconf) {
  Action a;
  a.kind = ActionKind::kPlantRecmaFlags;
  a.targets = std::move(targets);
  a.n = (no_maj ? 1u : 0u) | (need_reconf ? 2u : 0u);
  return a;
}

Action Action::increment_burst(std::uint64_t ops_per_node, IdSet targets) {
  Action a;
  a.kind = ActionKind::kIncrementBurst;
  a.targets = std::move(targets);
  a.n = ops_per_node;
  return a;
}

Action Action::shmem_write(IdSet targets, std::string reg, std::uint64_t salt) {
  Action a;
  a.kind = ActionKind::kShmemWrite;
  a.targets = std::move(targets);
  a.reg = std::move(reg);
  a.n = salt;
  return a;
}

Action Action::shmem_read(IdSet targets, std::string reg) {
  Action a;
  a.kind = ActionKind::kShmemRead;
  a.targets = std::move(targets);
  a.reg = std::move(reg);
  return a;
}

Action Action::run_for(SimTime d) {
  Action a;
  a.kind = ActionKind::kRunFor;
  a.duration = d;
  return a;
}

Action Action::await_converged(SimTime timeout) {
  Action a;
  a.kind = ActionKind::kAwaitConverged;
  a.duration = timeout;
  return a;
}

Action Action::await_vs_stable(SimTime timeout) {
  Action a;
  a.kind = ActionKind::kAwaitVsStable;
  a.duration = timeout;
  return a;
}

Action Action::await_participants(IdSet targets, SimTime timeout) {
  Action a;
  a.kind = ActionKind::kAwaitParticipants;
  a.targets = std::move(targets);
  a.duration = timeout;
  return a;
}

Action Action::await_config_equals_alive(SimTime timeout) {
  Action a;
  a.kind = ActionKind::kAwaitConfigEqualsAlive;
  a.duration = timeout;
  return a;
}

Action Action::mark_stable() {
  Action a;
  a.kind = ActionKind::kMarkStable;
  return a;
}

Action Action::crash_all() {
  Action a;
  a.kind = ActionKind::kCrashAll;
  return a;
}

Action Action::await_quiescent(SimTime budget) {
  Action a;
  a.kind = ActionKind::kAwaitQuiescent;
  a.duration = budget;
  return a;
}

Action Action::pause_nodes(IdSet targets) {
  Action a;
  a.kind = ActionKind::kPauseNodes;
  a.targets = std::move(targets);
  return a;
}

Action Action::resume_nodes(IdSet targets) {
  Action a;
  a.kind = ActionKind::kResumeNodes;
  a.targets = std::move(targets);
  return a;
}

}  // namespace ssr::scenario
