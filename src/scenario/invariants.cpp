#include "scenario/invariants.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace ssr::scenario {

InvariantRegistry::InvariantRegistry(harness::World& world)
    : world_(&world), clock_([&world] { return world.scheduler().now(); }) {}

void InvariantRegistry::attach_node(NodeId id) {
  SSR_ASSERT(world_ != nullptr,
             "attach_node needs the World-backed registry form");
  config_history_.attach_node(*world_, id);
  vsync_.attach_node(*world_, id);
}

void InvariantRegistry::add(std::string name, Check fn) {
  custom_.emplace_back(std::move(name), std::move(fn));
}

void InvariantRegistry::mark_stable() { stable_since_ = clock_(); }

std::optional<InvariantRegistry::Violation>
InvariantRegistry::closure_violation(SimTime since) const {
  const std::size_t n = config_history_.events_since(since);
  if (n == 0) return std::nullopt;
  std::ostringstream os;
  os << n << " configuration changes inside the closure window opened at "
     << since / kMsec << "ms (Theorem 3.16)";
  return Violation{"closure", os.str()};
}

void InvariantRegistry::unmark_stable() {
  if (!stable_since_) return;
  if (auto v = closure_violation(*stable_since_)) {
    reported_.push_back(std::move(*v));
  }
  stable_since_.reset();
}

void InvariantRegistry::report(const std::string& invariant, bool ok,
                               std::string message) {
  if (!ok) reported_.push_back(Violation{invariant, std::move(message)});
}

std::vector<InvariantRegistry::Violation> InvariantRegistry::check_all()
    const {
  std::vector<Violation> out = reported_;

  if (std::size_t bad = counter_order_.violations(); bad != 0) {
    std::ostringstream os;
    os << bad << " real-time-ordered increment pairs violate the counter "
          "order (Theorem 4.6)";
    out.push_back(Violation{"counter-order", os.str()});
  }

  if (vsync_.mismatches() != 0) {
    std::ostringstream os;
    os << vsync_.mismatches() << " of " << vsync_.deliveries()
       << " deliveries diverged at equal (view, round) (Theorem 4.13)";
    out.push_back(Violation{"virtual-synchrony", os.str()});
  }

  if (stable_since_) {
    if (auto v = closure_violation(*stable_since_)) out.push_back(std::move(*v));
  }

  for (const auto& [name, fn] : custom_) {
    if (auto msg = fn()) out.push_back(Violation{name, *msg});
  }
  return out;
}

}  // namespace ssr::scenario
