#pragma once

#include <memory>
#include <string>

#include "harness/fault_injector.hpp"
#include "harness/world.hpp"
#include "scenario/backend.hpp"
#include "scenario/invariants.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"
#include "util/histogram.hpp"

namespace ssr::scenario {

/// Interprets a ScenarioSpec against a fresh World on the deterministic
/// scheduler. One (spec, seed) pair names exactly one execution: the same
/// pair always produces a byte-identical trace (and therefore hash).
class ScenarioRunner final : public ScenarioBackend {
 public:
  ScenarioRunner(ScenarioSpec spec, std::uint64_t seed);

  /// Runs every phase, then evaluates the invariant registry.
  ScenarioResult run() override;

  harness::World& world() { return *world_; }
  TraceRecorder& trace() override { return trace_; }
  InvariantRegistry& invariants() override { return *registry_; }

 private:
  void apply(const Action& a);
  NodeId add_fresh_node();
  void fail(const Action& a, const std::string& detail);
  IdSet targets_or_alive(const Action& a) const;

  /// Runs until `pred` holds, polling every `step`; true iff met in time.
  template <class Pred>
  bool await(SimTime timeout, Pred pred, SimTime step = 20 * kMsec) {
    const SimTime deadline = world_->scheduler().now() + timeout;
    while (world_->scheduler().now() < deadline) {
      if (pred()) return true;
      world_->run_for(step);
    }
    return pred();
  }

  void do_increment_burst(const Action& a);
  void do_shmem(const Action& a, bool write);
  void do_await_quiescent(const Action& a);
  void harvest_increments();

  /// Completion state of one increment attempt. Heap-held and captured by
  /// value in the client callback: a quorum operation can outlive the
  /// action that started it, and its callback must still have somewhere
  /// safe to write.
  struct PendingIncrement {
    SimTime started = 0;
    bool done = false;
    std::optional<counter::Counter> got;
  };

  ScenarioSpec spec_;
  std::uint64_t seed_;
  /// Buffer-pool counters at construction, for per-run deltas.
  wire::BufferPool::Stats pool_at_start_;
  std::unique_ptr<harness::World> world_;
  std::unique_ptr<harness::FaultInjector> injector_;
  TraceRecorder trace_;
  std::unique_ptr<InvariantRegistry> registry_;
  NodeId next_id_ = 1;
  bool failed_ = false;
  std::string failure_;
  /// Virtual-time client-op latencies across every workload action.
  util::LatencyHistogram op_latency_;
  /// Attempts whose await timed out with the operation still in flight;
  /// re-harvested at every burst and once more before check_all().
  std::vector<std::pair<NodeId, std::shared_ptr<PendingIncrement>>>
      outstanding_;
};

/// Convenience: build, run, and summarize in one call.
ScenarioResult run_scenario(const ScenarioSpec& spec, std::uint64_t seed);

}  // namespace ssr::scenario
