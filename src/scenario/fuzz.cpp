#include "scenario/fuzz.hpp"

#include <algorithm>
#include <iterator>
#include <limits>
#include <utility>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"
#include "scenario/sweep.hpp"
#include "util/assert.hpp"

namespace ssr::scenario {
namespace {

using A = Action;

/// splitmix64 gamma: seeds `opt.seed + k*gamma` walk the splitmix stream,
/// giving per-index generators that are independent of each other and of
/// the run seeds (which use a different offset parity below).
constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;

/// Generator-side population model. The fuzzer only emits an action after
/// checking it here, which is what keeps generated executions inside the
/// paper's liveness prerequisites: a configuration majority stays alive,
/// partitions heal before any await, paused nodes resume.
struct Model {
  std::vector<NodeId> alive;  // sorted, invariant of every mutator below
  IdSet config;               // believed config (alive set at last await)
  NodeId next_id = 1;

  static Model initial(std::size_t n) {
    Model m;
    for (std::size_t i = 0; i < n; ++i) m.alive.push_back(m.next_id++);
    for (NodeId id : m.alive) m.config.insert(id);
    return m;
  }

  NodeId pick(Rng& rng) const {
    return alive[static_cast<std::size_t>(rng.next_below(alive.size()))];
  }

  /// A subset of 1..k alive nodes (deterministic given the rng stream).
  IdSet pick_subset(Rng& rng, std::size_t max_count) const {
    const std::size_t count =
        1 + static_cast<std::size_t>(rng.next_below(
                std::min(max_count, alive.size())));
    IdSet out;
    while (out.size() < count) out.insert(pick(rng));
    return out;
  }

  void add(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) alive.push_back(next_id++);
  }

  void kill(NodeId id) {
    alive.erase(std::remove(alive.begin(), alive.end(), id), alive.end());
  }

  /// Would the believed config keep an alive majority if `victim` died?
  bool may_crash(NodeId victim) const {
    if (alive.size() <= 3) return false;
    std::size_t survivors_in_config = 0;
    for (NodeId id : alive) {
      if (id != victim && config.contains(id)) ++survivors_in_config;
    }
    return 2 * survivors_in_config > config.size();
  }

  void settle_config() {
    config = IdSet::from_vector(alive);
  }
};

/// Appends a partition episode: split into two non-empty halves, run, heal.
/// Always emitted as a matched triple so no generated spec ever awaits
/// convergence across a live partition.
void emit_partition(Rng& rng, const Model& m, std::vector<Action>& out) {
  if (m.alive.size() < 2) return;
  IdSet a, b;
  for (NodeId id : m.alive) {
    (rng.chance(0.5) ? a : b).insert(id);
  }
  if (a.empty()) {
    const NodeId moved = *b.begin();
    b.erase(moved);
    a.insert(moved);
  } else if (b.empty()) {
    const NodeId moved = *a.begin();
    a.erase(moved);
    b.insert(moved);
  }
  out.push_back(A::split_network(a, b));
  out.push_back(A::run_for((20 + rng.next_below(100)) * kSec));
  out.push_back(A::heal_network());
}

/// Appends a pause episode (freeze, run, resume) — again a matched triple.
void emit_pause(Rng& rng, const Model& m, std::vector<Action>& out) {
  if (m.alive.size() < 3) return;
  const IdSet frozen = {m.pick(rng)};
  out.push_back(A::pause_nodes(frozen));
  out.push_back(A::run_for((20 + rng.next_below(80)) * kSec));
  out.push_back(A::resume_nodes(frozen));
}

/// Splices fault actions out of a random library spec, retargeted onto the
/// model's alive set. Only state-corruption kinds survive the splice: churn
/// and await kinds would invalidate the model or demand the donor's timing.
void emit_splice(Rng& rng, const Model& m, std::vector<Action>& out) {
  const std::vector<ScenarioSpec>& lib = library();
  if (lib.empty()) return;
  const ScenarioSpec& donor =
      lib[static_cast<std::size_t>(rng.next_below(lib.size()))];
  for (const Phase& phase : donor.phases) {
    for (const Action& a : phase.actions) {
      switch (a.kind) {
        case ActionKind::kCorruptRecsa:
        case ActionKind::kCorruptFd:
        case ActionKind::kPlantRecmaFlags: {
          Action copy = a;
          IdSet retargeted;
          for (std::size_t i = 0; i < copy.targets.size(); ++i) {
            retargeted.insert(m.pick(rng));
          }
          copy.targets = retargeted;
          out.push_back(std::move(copy));
          break;
        }
        case ActionKind::kGarbageChannels:
          out.push_back(a);
          break;
        default:
          break;  // churn/await/workload kinds are not spliceable
      }
      if (out.size() > 24) return;  // keep spliced phases bounded
    }
  }
}

/// One random mid-run action (or matched episode), validity-checked against
/// the model. Falls back to run_for when the drawn kind is not allowed in
/// the current model state, so the generator never stalls.
void emit_action(Rng& rng, Model& m, std::vector<Action>& out, bool& churned) {
  const std::uint64_t roll = rng.next_below(100);
  if (roll < 12) {  // grow the cohort
    if (m.next_id <= 10) {
      const std::uint64_t n = 1 + rng.next_below(2);
      out.push_back(A::add_nodes(n));
      m.add(n);
      churned = true;
      return;
    }
  } else if (roll < 24) {  // crash-stop
    const NodeId victim = m.pick(rng);
    if (m.may_crash(victim)) {
      out.push_back(A::crash({victim}));
      m.kill(victim);
      churned = true;
      return;
    }
  } else if (roll < 34) {  // reboot (crash + fresh replacement)
    const NodeId victim = m.pick(rng);
    if (m.may_crash(victim) && m.next_id <= 12) {
      out.push_back(A::reboot({victim}));
      m.kill(victim);
      m.add(1);
      churned = true;
      return;
    }
  } else if (roll < 46) {  // partition episode
    emit_partition(rng, m, out);
    return;
  } else if (roll < 56) {  // pause episode
    emit_pause(rng, m, out);
    return;
  } else if (roll < 64) {  // arbitrary recSA state
    out.push_back(A::corrupt_recsa(rng.chance(0.4) ? IdSet{}
                                                   : m.pick_subset(rng, 3)));
    return;
  } else if (roll < 70) {  // scrambled failure detector
    out.push_back(A::corrupt_fd(rng.chance(0.4) ? IdSet{}
                                                : m.pick_subset(rng, 3)));
    return;
  } else if (roll < 75) {  // stale channel content
    out.push_back(A::garbage_channels(1 + rng.next_below(3)));
    return;
  } else if (roll < 79) {  // planted config conflict (overlapping halves)
    if (m.alive.size() >= 3) {
      const std::size_t pivot =
          1 + static_cast<std::size_t>(rng.next_below(m.alive.size() - 2));
      IdSet a, b;
      for (std::size_t i = 0; i <= pivot; ++i) a.insert(m.alive[i]);
      for (std::size_t i = pivot; i < m.alive.size(); ++i) {
        b.insert(m.alive[i]);
      }
      out.push_back(A::split_config_state(a, b));
      return;
    }
  } else if (roll < 83) {  // stale recMA flags (Lemma 3.18 shape)
    out.push_back(A::plant_recma_flags(m.pick_subset(rng, 2),
                                       rng.chance(0.7), rng.chance(0.7)));
    return;
  } else if (roll < 87) {  // counter increments (the Theorem 4.6 workload)
    // Always explicit, small targets: each op carries a 12-attempt retry
    // budget in the runner, so an all-alive burst mid-storm can cost tens
    // of thousands of sim-seconds without finding anything new.
    out.push_back(A::increment_burst(1 + rng.next_below(2),
                                     m.pick_subset(rng, 2)));
    return;
  } else if (roll < 92) {  // register workload
    const char* const regs[] = {"x", "y", "z"};
    const std::string reg = regs[rng.next_below(3)];
    if (rng.chance(0.6)) {
      out.push_back(A::shmem_write({m.pick(rng)}, reg, rng.next_u64() % 997));
    } else {
      out.push_back(A::shmem_read({m.pick(rng)}, reg));
    }
    return;
  } else if (roll < 96) {  // spliced library faults
    emit_splice(rng, m, out);
    return;
  }
  out.push_back(A::run_for((5 + rng.next_below(55)) * kSec));
}

}  // namespace

ScenarioSpec Fuzzer::generate(std::uint64_t index) const {
  Rng rng(opt_.seed + (2 * index + 1) * kGamma);
  ScenarioSpec s;
  s.name = "fuzz-" + std::to_string(opt_.seed) + "-" + std::to_string(index);
  s.description = "generated by scenario::Fuzzer";
  s.initial_nodes = 3 + static_cast<std::size_t>(rng.next_below(5));
  s.enable_vs = rng.chance(0.5);
  s.aggressive_policy = rng.chance(0.3);
  s.adopt_joiners = rng.chance(0.4);
  if (rng.chance(0.25)) {
    // Wire corruption only (checksummed away); state corruption is injected
    // through explicit actions so every fault has a place in the trace.
    s.corrupt_probability = 0.01 * static_cast<double>(1 + rng.next_below(4));
  }
  if (rng.chance(0.2)) s.exhaust_bound = 500 + rng.next_below(1500);
  s.adversarial = opt_.allow_adversarial && rng.chance(0.5);

  Model m = Model::initial(s.initial_nodes);

  s.phases.push_back(Phase{"converge", {A::await_converged(600 * kSec)}});

  const std::size_t phase_count = 1 + static_cast<std::size_t>(rng.next_below(3));
  for (std::size_t p = 0; p < phase_count; ++p) {
    Phase phase{"storm-" + std::to_string(p), {}};
    bool churned = false;
    const std::size_t action_count =
        1 + static_cast<std::size_t>(rng.next_below(6));
    for (std::size_t i = 0; i < action_count; ++i) {
      emit_action(rng, m, phase.actions, churned);
    }
    if (churned) {
      // Give the reconfiguration time to catch up with the churn before the
      // next storm piles on (the paper's "majority stays alive long enough"
      // prerequisite), and fold the new population into the model's config.
      // Exact config == alive is only promised when members are evicted on
      // any suspicion (aggressive) AND admitted joiners are folded in
      // (adopt_joiners): the quarter policy tolerates a sub-25% dead
      // minority by design, and without the adoption term churn purely
      // among joiners never triggers a reconfiguration at all. Both were
      // found as fuzzer counterexamples — the second is promoted as the
      // "joiner-adoption" library scenario.
      // Bridge the failure detector's blind window first: right after a
      // crash the survivors still trust the victim, so agreement on the
      // stale config is genuine "convergence" by local knowledge. 30 sim-s
      // is ~10x the theta suspicion latency at this scale.
      phase.actions.push_back(A::run_for(30 * kSec));
      if (s.aggressive_policy && s.adopt_joiners) {
        phase.actions.push_back(A::await_config_equals_alive(1200 * kSec));
      } else {
        phase.actions.push_back(A::await_converged(900 * kSec));
      }
      m.settle_config();
    }
    s.phases.push_back(std::move(phase));
  }

  Phase settle{"settle", {}};
  settle.actions.push_back(A::heal_network());
  settle.actions.push_back(A::await_converged(2400 * kSec));
  if (s.enable_vs) settle.actions.push_back(A::await_vs_stable(1800 * kSec));
  if (rng.chance(0.5)) {
    settle.actions.push_back(A::mark_stable());
    settle.actions.push_back(A::run_for(60 * kSec));
  }
  s.phases.push_back(std::move(settle));

  SSR_ASSERT(spec_references_valid(s), "fuzzer generated an invalid spec");
  return s;
}

std::uint64_t Fuzzer::run_seed(std::uint64_t index) const {
  // Offset parity 2k+2 keeps run-seed derivation off the generator streams.
  Rng rng(opt_.seed + (2 * index + 2) * kGamma);
  // Full-width draw: exercises the Rng::next_range(0, UINT64_MAX) edge.
  return rng.next_range(0, std::numeric_limits<std::uint64_t>::max());
}

std::string Fuzzer::failure_signature(const ScenarioResult& r) {
  if (!r.violations.empty()) {
    return "violation:" + r.violations.front().invariant;
  }
  if (!r.ok) return "failure:" + r.failure;
  return "";
}

bool Fuzzer::spec_references_valid(const ScenarioSpec& spec) {
  if (spec.initial_nodes == 0) return false;
  std::uint64_t created = spec.initial_nodes;
  const auto ok_ids = [&created](const IdSet& ids) {
    for (NodeId id : ids) {
      if (id == 0 || id > created) return false;
    }
    return true;
  };
  for (const Phase& phase : spec.phases) {
    for (const Action& a : phase.actions) {
      if (!ok_ids(a.targets) || !ok_ids(a.group_b)) return false;
      if (a.kind == ActionKind::kAddNodes) created += a.n;
      if (a.kind == ActionKind::kReboot) created += a.targets.size();
    }
  }
  return true;
}

namespace {

/// Shrinker candidate enumeration: every one-step reduction of `spec`, most
/// aggressive first (whole phases, then single actions, then parameters,
/// then stack options). Returned lazily-ish as a vector of thunks would be
/// overkill — specs are tiny, so materializing is fine.
std::vector<ScenarioSpec> shrink_candidates(const ScenarioSpec& spec) {
  std::vector<ScenarioSpec> out;

  // 1. Drop a whole phase.
  for (std::size_t p = 0; p < spec.phases.size(); ++p) {
    ScenarioSpec c = spec;
    c.phases.erase(c.phases.begin() + static_cast<std::ptrdiff_t>(p));
    out.push_back(std::move(c));
  }

  // 2. Drop one action.
  for (std::size_t p = 0; p < spec.phases.size(); ++p) {
    for (std::size_t i = 0; i < spec.phases[p].actions.size(); ++i) {
      ScenarioSpec c = spec;
      auto& actions = c.phases[p].actions;
      actions.erase(actions.begin() + static_cast<std::ptrdiff_t>(i));
      if (actions.empty()) {
        c.phases.erase(c.phases.begin() + static_cast<std::ptrdiff_t>(p));
      }
      out.push_back(std::move(c));
    }
  }

  // 3. Simplify action parameters.
  for (std::size_t p = 0; p < spec.phases.size(); ++p) {
    for (std::size_t i = 0; i < spec.phases[p].actions.size(); ++i) {
      const Action& a = spec.phases[p].actions[i];
      if (a.n > 1) {
        ScenarioSpec c = spec;
        c.phases[p].actions[i].n = a.n / 2;
        out.push_back(std::move(c));
      }
      // Halving durations covers run_for AND await budgets: a failure that
      // survives a halved await both tightens the repro and roughly halves
      // the cost of every later shrink re-execution.
      if (a.duration > kSec) {
        ScenarioSpec c = spec;
        c.phases[p].actions[i].duration = a.duration / 2;
        out.push_back(std::move(c));
      }
      if (a.targets.size() > 1) {
        ScenarioSpec c = spec;
        IdSet& t = c.phases[p].actions[i].targets;
        t.erase(*std::prev(t.end()));
        out.push_back(std::move(c));
      }
    }
  }

  // 4. Clear stack options (each separately).
  if (spec.adversarial) {
    ScenarioSpec c = spec;
    c.adversarial = false;
    out.push_back(std::move(c));
  }
  if (spec.aggressive_policy) {
    ScenarioSpec c = spec;
    c.aggressive_policy = false;
    out.push_back(std::move(c));
  }
  if (spec.adopt_joiners) {
    ScenarioSpec c = spec;
    c.adopt_joiners = false;
    out.push_back(std::move(c));
  }
  if (spec.enable_vs) {
    ScenarioSpec c = spec;
    c.enable_vs = false;
    out.push_back(std::move(c));
  }
  if (spec.corrupt_probability != 0.0) {
    ScenarioSpec c = spec;
    c.corrupt_probability = 0.0;
    out.push_back(std::move(c));
  }
  if (spec.exhaust_bound != 0) {
    ScenarioSpec c = spec;
    c.exhaust_bound = 0;
    out.push_back(std::move(c));
  }

  // 5. Fewer initial nodes (validity check filters over-shrunk specs).
  if (spec.initial_nodes > 3) {
    ScenarioSpec c = spec;
    c.initial_nodes -= 1;
    out.push_back(std::move(c));
  }

  return out;
}

}  // namespace

ScenarioSpec Fuzzer::shrink(const ScenarioSpec& spec, std::uint64_t seed,
                            const std::string& signature,
                            std::size_t max_runs, std::size_t* runs_used) {
  ScenarioSpec cur = spec;
  std::size_t runs = 0;
  bool progress = true;
  while (progress && runs < max_runs) {
    progress = false;
    for (ScenarioSpec& cand : shrink_candidates(cur)) {
      if (runs >= max_runs) break;
      if (!spec_references_valid(cand)) continue;
      ++runs;
      const ScenarioResult r = run_scenario(cand, seed);
      if (failure_signature(r) == signature) {
        cur = std::move(cand);
        progress = true;
        break;  // restart enumeration from the smaller spec
      }
    }
  }
  if (runs_used != nullptr) *runs_used = runs;
  return cur;
}

FuzzReport Fuzzer::run_range(std::uint64_t first, std::size_t count) {
  FuzzReport report;

  // Execute the generated case matrix on the sweep engine: jobs=N is
  // byte-identical to jobs=1 (SweepRunner's pinned contract), so the
  // fuzzer's verdicts are independent of parallelism.
  SweepRunner sweep(SweepOptions{opt_.jobs, ""});
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t index = first + i;
    sweep.add(generate(index), run_seed(index));
  }
  SweepSummary summary = sweep.run();
  report.cases_run = summary.results.size();
  report.results = std::move(summary.results);

  // Shrink failures serially, in submission order, so the report is
  // deterministic regardless of which worker surfaced which failure.
  for (std::size_t i = 0; i < report.results.size(); ++i) {
    const ScenarioResult& r = report.results[i];
    if (r.ok) continue;
    ++report.failures;
    const std::uint64_t index = first + i;
    Counterexample cex;
    cex.original = generate(index);
    cex.run_seed = run_seed(index);
    cex.signature = failure_signature(r);
    cex.spec = shrink(cex.original, cex.run_seed, cex.signature,
                      opt_.max_shrink_runs, &cex.shrink_runs);
    cex.result = run_scenario(cex.spec, cex.run_seed);
    report.counterexamples.push_back(std::move(cex));
  }
  return report;
}

}  // namespace ssr::scenario
