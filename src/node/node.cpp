#include "node/node.hpp"

namespace ssr::node {

reconf::RecMA::EvalConf quarter_failed_policy(const fd::ThetaFD& fd) {
  return [&fd](const IdSet& cfg) {
    const IdSet trusted = fd.trusted();
    const std::size_t suspected = cfg.size() - cfg.intersection_size(trusted);
    return suspected > 0 && suspected * 4 >= cfg.size();
  };
}

Node::Node(net::Transport& transport, NodeId id, NodeConfig cfg, Rng rng)
    : transport_(transport),
      id_(id),
      cfg_(cfg),
      rng_(rng),
      mux_(transport, id, cfg.mux, rng_.fork()),
      fd_(id, cfg.fd),
      recsa_(mux_, id, [this] { return fd_.trusted(); }, cfg.recsa),
      recma_(mux_, recsa_, id,
             [this](const IdSet& c) { return eval_conf_(c); }),
      joiner_(
          mux_, recsa_, id, cfg.join, [this] { return pass_query_(); },
          [this] {
            return vs_ ? vs_->state_machine().snapshot() : wire::Bytes{};
          },
          [this] {
            if (vs_) vs_->state_machine().reset();
          },
          [this](const std::vector<wire::Bytes>& states) {
            if (!vs_) return;
            for (const auto& s : states) {
              if (!s.empty()) {
                vs_->state_machine().restore(s);
                return;
              }
            }
          }),
      labeling_(mux_, recsa_, id, cfg.label_store, rng_.fork()),
      counters_(mux_, recsa_, id, cfg.counter, rng_.fork()),
      increment_(recsa_, counters_, mux_, id, cfg.increment, rng_.fork()),
      registers_(mux_, recsa_, counters_, id, cfg.shmem, rng_.fork()),
      pass_query_([] { return true; }),
      eval_conf_(quarter_failed_policy(fd_)),
      fetch_([]() -> std::optional<wire::Bytes> { return std::nullopt; }) {
  if (cfg_.enable_vs) {
    vs_ = std::make_unique<vs::VsSmr>(
        mux_, recsa_, counters_, id, std::make_unique<vs::KvStateMachine>(),
        [this] { return fetch_(); },
        [this](const IdSet& c) { return eval_conf_(c); }, cfg_.increment,
        rng_.fork());
    // Algorithm 4.6: the view coordinator owns delicate reconfigurations.
    recma_.set_direct_trigger([this] { return vs_->need_delicate_reconf(); });
  }
  mux_.set_heartbeat_handler([this](NodeId peer) { fd_.heartbeat(peer); });
}

Node::~Node() { crash(); }

void Node::set_pass_query(reconf::Joiner::PassQuery fn) {
  pass_query_ = std::move(fn);
}
void Node::set_eval_conf(reconf::RecMA::EvalConf fn) {
  eval_conf_ = std::move(fn);
}
void Node::set_fetch(vs::VsSmr::FetchFn fn) { fetch_ = std::move(fn); }

void Node::start(const IdSet& seed_peers) {
  if (started_ || crashed_) return;
  started_ = true;
  transport_.attach(id_, [this](const net::Packet& pkt) {
    if (!crashed_) mux_.handle_packet(pkt);
  });
  for (NodeId peer : seed_peers) {
    if (peer != id_) mux_.connect(peer);
  }
  mux_.flush_transport();  // cleaning probes for every seed peer, one batch
  arm_timer();
}

void Node::crash() {
  if (crashed_) return;
  crashed_ = true;
  timer_.cancel();
  mux_.shutdown();
  if (started_) transport_.detach(id_);
}

void Node::arm_timer() {
  const SimTime jitter = rng_.next_below(cfg_.tick_period / 4 + 1);
  timer_ = transport_.schedule_after(cfg_.tick_period + jitter,
                                     [this] { tick(); });
}

void Node::tick() {
  if (crashed_) return;
  recsa_.tick();
  recma_.tick();
  joiner_.tick();
  labeling_.tick();
  counters_.tick();
  increment_.tick();
  if (vs_) vs_->tick();
  registers_.tick();
  mux_.flush_transport();  // tick boundary: the whole fan-out in one batch
  arm_timer();
}

}  // namespace ssr::node
