#pragma once

#include <memory>

#include "counter/increment.hpp"
#include "fd/theta_fd.hpp"
#include "label/labeling.hpp"
#include "reconf/join.hpp"
#include "reconf/recma.hpp"
#include "shmem/register_service.hpp"
#include "vs/vs_smr.hpp"

namespace ssr::node {

struct NodeConfig {
  reconf::RecSAOptions recsa;
  fd::FdConfig fd;
  dlink::MuxConfig mux;
  reconf::JoinConfig join;
  label::StoreConfig label_store;
  counter::CounterConfig counter;
  counter::IncrementConfig increment;
  shmem::ShmemConfig shmem;
  /// Period of the do-forever loop (jittered per node; the algorithms make
  /// no timing assumption — paper, Section 2).
  SimTime tick_period = 1500 * kUsec;
  /// Enables the virtually synchronous SMR layer (and with it the
  /// coordinator-led delicate reconfiguration of Algorithm 4.6).
  bool enable_vs = true;
};

/// The paper's sample prediction policy: advise reconfiguration once at
/// least a quarter of the configuration members are no longer trusted.
reconf::RecMA::EvalConf quarter_failed_policy(const fd::ThetaFD& fd);

/// One processor running the full protocol stack of Fig. 1:
/// token links + (N,Θ)-FD + recSA + recMA + joining + labeling + counters +
/// virtually synchronous SMR + shared-memory registers. The stack depends
/// only on net::Transport, so the same node runs over the simulated fabric
/// (harness::World) and over real UDP sockets (tools/ssr_node).
class Node {
 public:
  Node(net::Transport& transport, NodeId id, NodeConfig cfg, Rng rng);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Boots the processor and connects it to `seed_peers`.
  void start(const IdSet& seed_peers);
  /// Crash-stop: the processor takes no further steps and never rejoins.
  void crash();
  bool crashed() const { return crashed_; }
  bool started() const { return started_; }

  NodeId id() const { return id_; }
  /// True while the installed prediction policy advises reconfiguring the
  /// current configuration. Harness convergence checks use it: agreement on
  /// a config the policy is about to move is not a fixpoint (scenario_fuzz
  /// found mark_stable racing a pending eviction through that gap).
  bool reconfig_advised() { return eval_conf_(recsa_.get_config_ref().ids()); }
  fd::ThetaFD& failure_detector() { return fd_; }
  dlink::LinkMux& mux() { return mux_; }
  reconf::RecSA& recsa() { return recsa_; }
  reconf::RecMA& recma() { return recma_; }
  reconf::Joiner& joiner() { return joiner_; }
  label::Labeling& labeling() { return labeling_; }
  counter::CounterManager& counters() { return counters_; }
  counter::IncrementClient& increment() { return increment_; }
  shmem::RegisterService& registers() { return registers_; }
  /// Null when the VS layer is disabled.
  vs::VsSmr* vs() { return vs_.get(); }

  // -- Application hooks (set before start()) -------------------------------
  /// Admission control for joiners (passQuery()); default: always grant.
  void set_pass_query(reconf::Joiner::PassQuery fn);
  /// Reconfiguration prediction function; default: quarter_failed_policy.
  void set_eval_conf(reconf::RecMA::EvalConf fn);
  /// Next command to multicast through the SMR service.
  /// (Delivery listeners are appended directly on vs() —
  /// VsSmr::add_deliver_handler; listeners accumulate.)
  void set_fetch(vs::VsSmr::FetchFn fn);

 private:
  void tick();
  void arm_timer();

  net::Transport& transport_;
  NodeId id_;
  NodeConfig cfg_;
  Rng rng_;

  dlink::LinkMux mux_;
  fd::ThetaFD fd_;
  reconf::RecSA recsa_;
  reconf::RecMA recma_;
  reconf::Joiner joiner_;
  label::Labeling labeling_;
  counter::CounterManager counters_;
  counter::IncrementClient increment_;
  shmem::RegisterService registers_;
  std::unique_ptr<vs::VsSmr> vs_;

  // Pluggable policies (referenced by the components through indirection so
  // they can be replaced before start()).
  reconf::Joiner::PassQuery pass_query_;
  reconf::RecMA::EvalConf eval_conf_;
  vs::VsSmr::FetchFn fetch_;

  bool started_ = false;
  bool crashed_ = false;
  net::TimerHandle timer_;
};

}  // namespace ssr::node
