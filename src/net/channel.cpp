#include "net/channel.hpp"

#include <algorithm>

namespace ssr::net {

Channel::Channel(sim::Scheduler& sched, Rng rng, ChannelConfig cfg, NodeId src,
                 NodeId dst, Deliver deliver)
    : sched_(sched),
      rng_(rng),
      cfg_(cfg),
      src_(src),
      dst_(dst),
      deliver_(std::move(deliver)) {}

void Channel::prune() {
  std::erase_if(in_flight_,
                [](const sim::Scheduler::Handle& h) { return !h.pending(); });
}

std::size_t Channel::in_flight() const {
  return static_cast<std::size_t>(
      std::count_if(in_flight_.begin(), in_flight_.end(),
                    [](const sim::Scheduler::Handle& h) { return h.pending(); }));
}

void Channel::schedule_delivery(wire::Bytes payload, bool count_as_send) {
  prune();
  if (count_as_send) ++stats_.sent;
  if (in_flight_.size() >= cfg_.capacity) {
    // Bounded capacity: either the new packet or some already sent packet
    // is omitted (paper, Section 2).
    ++stats_.overflowed;
    if (rng_.chance(0.5)) return;  // omit the new packet
    const std::size_t victim = rng_.next_below(in_flight_.size());
    in_flight_[victim].cancel();
    in_flight_.erase(in_flight_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  const SimTime delay = rng_.next_range(cfg_.min_delay, cfg_.max_delay);
  Packet pkt{src_, dst_, std::move(payload)};
  if (cfg_.corrupt_probability > 0 && !pkt.payload.empty() &&
      rng_.chance(cfg_.corrupt_probability)) {
    ++stats_.corrupted;
    const std::size_t pos = rng_.next_below(pkt.payload.size());
    pkt.payload[pos] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
  }
  in_flight_.push_back(sched_.schedule_after(
      delay, [this, pkt = std::move(pkt)]() mutable {
        ++stats_.delivered;
        deliver_(std::move(pkt));
      }));
}

void Channel::send(wire::Bytes payload) {
  if (rng_.chance(cfg_.loss_probability)) {
    ++stats_.sent;
    ++stats_.lost;
    return;
  }
  const bool dup = rng_.chance(cfg_.duplicate_probability);
  if (dup) {
    ++stats_.duplicated;
    schedule_delivery(payload, false);
  }
  schedule_delivery(std::move(payload), true);
}

void Channel::inject_garbage(std::size_t count, std::size_t max_len) {
  for (std::size_t i = 0; i < count; ++i) {
    wire::Bytes junk(rng_.next_range(1, max_len));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng_.next_u64());
    schedule_delivery(std::move(junk), false);
  }
}

void Channel::inject_packet(wire::Bytes payload) {
  schedule_delivery(std::move(payload), false);
}

void Channel::flush() {
  for (auto& h : in_flight_) h.cancel();
  in_flight_.clear();
}

}  // namespace ssr::net
