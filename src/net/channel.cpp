#include "net/channel.hpp"

namespace ssr::net {

Channel::Channel(sim::Scheduler& sched, Rng rng, ChannelConfig cfg, NodeId src,
                 NodeId dst, Deliver deliver, Adversary* adversary)
    : sched_(sched),
      rng_(rng),
      cfg_(cfg),
      src_(src),
      dst_(dst),
      deliver_(std::move(deliver)),
      adversary_(adversary) {
  in_flight_.reserve(cfg_.capacity + 1);
}

void Channel::deliver_packet(wire::Bytes&& payload) {
  // The fired event's slot is already freed, so exactly one handle is no
  // longer pending; drop it, preserving insertion order for the victim
  // draw. The scan is bounded by the channel capacity and each check is a
  // generation compare, not an atomic weak_ptr lock.
  for (auto it = in_flight_.begin(); it != in_flight_.end(); ++it) {
    if (!it->pending()) {
      in_flight_.erase(it);
      break;
    }
  }
  ++stats_.delivered;
  Packet pkt{src_, dst_, std::move(payload)};
  deliver_(pkt);
  pool_.release(std::move(pkt.payload));
}

void Channel::schedule_delivery(wire::Bytes payload, bool count_as_send) {
  if (count_as_send) ++stats_.sent;
  if (in_flight_.size() >= cfg_.capacity) {
    // Bounded capacity: either the new packet or some already sent packet
    // is omitted (paper, Section 2).
    ++stats_.overflowed;
    if (rng_.chance(0.5)) {  // omit the new packet
      pool_.release(std::move(payload));
      return;
    }
    const std::size_t victim = rng_.next_below(in_flight_.size());
    in_flight_[victim].cancel();  // frees the slot, recycles the buffer
    in_flight_.erase(in_flight_.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  // The uniform draw always happens (one draw per scheduled packet keeps
  // the channel's RNG stream shape independent of the adversary's rules);
  // an installed adversary then remaps it within the same window.
  SimTime delay = rng_.next_range(cfg_.min_delay, cfg_.max_delay);
  if (adversary_ != nullptr) {
    delay = adversary_->delivery_delay(src_, dst_, payload, delay,
                                       cfg_.min_delay, cfg_.max_delay);
  }
  if (cfg_.corrupt_probability > 0 && !payload.empty() &&
      rng_.chance(cfg_.corrupt_probability)) {
    ++stats_.corrupted;
    const std::size_t pos = rng_.next_below(payload.size());
    payload[pos] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
  }
  in_flight_.push_back(
      sched_.schedule_packet_after(delay, this, std::move(payload)));
}

void Channel::send(wire::Bytes payload) {
  if (rng_.chance(cfg_.loss_probability)) {
    ++stats_.sent;
    ++stats_.lost;
    pool_.release(std::move(payload));
    return;
  }
  if (rng_.chance(cfg_.duplicate_probability)) {
    ++stats_.duplicated;
    // The duplicate is the (pooled) copy; the original payload always
    // moves, so the common no-dup path never copies a byte.
    wire::Bytes dup = pool_.acquire();
    dup.assign(payload.begin(), payload.end());
    schedule_delivery(std::move(dup), false);
  }
  schedule_delivery(std::move(payload), true);
}

void Channel::inject_garbage(std::size_t count, std::size_t max_len) {
  for (std::size_t i = 0; i < count; ++i) {
    wire::Bytes junk = pool_.acquire();
    junk.resize(rng_.next_range(1, max_len));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng_.next_u64());
    schedule_delivery(std::move(junk), false);
  }
}

void Channel::inject_packet(wire::Bytes payload) {
  schedule_delivery(std::move(payload), false);
}

void Channel::flush() {
  for (auto& h : in_flight_) h.cancel();
  in_flight_.clear();
}

}  // namespace ssr::net
