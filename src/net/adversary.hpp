#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "sim/scheduler.hpp"
#include "util/id_set.hpp"
#include "util/rng.hpp"
#include "wire/wire.hpp"

namespace ssr::net {

/// Knobs of the worst-case delivery policy. Every bias is a probability so
/// the adversary degrades gracefully toward the uniform scheduler at 0 and
/// is maximally hostile at 1; all biases stay inside the channel's
/// [min_delay, max_delay] window, so fair communication (the paper's
/// liveness prerequisite) is preserved — the adversary reorders, it never
/// starves.
struct AdversaryConfig {
  bool enabled = false;
  /// Frames touching the believed coordinator are pushed to the top of the
  /// delay window with this probability (slows the node whose progress the
  /// delicate-reconfiguration path depends on).
  double coordinator_delay = 0.9;
  /// Frames crossing the most recent partition boundary draw bimodal
  /// (min-or-max) delays with this probability — maximal reordering exactly
  /// where the merge-after-heal logic has to reconcile divergent state.
  double boundary_reorder = 0.9;
  /// Data frames retransmitting an already-seen ARQ label jump to the front
  /// of the window while label *transitions* are held back, so stale copies
  /// overtake fresh state with this probability.
  double stale_first = 0.9;
};

/// Worst-case delivery scheduler: consulted by every Channel (when
/// installed) to replace the uniform per-packet delay draw with biased
/// interleavings. Self-stabilization is quantified over *arbitrary* fair
/// executions; uniform sampling concentrates on the benign center of that
/// space, while this policy steers toward the corners — delayed
/// coordinators, cross-partition reorderings, stale-label overtakes.
///
/// Determinism: one Adversary lives per Network (per World); all extra
/// randomness flows from its own seeded Rng, and its label/boundary state
/// mutates only on the single simulator thread, so a (spec, seed) pair
/// still names exactly one execution, and parallel sweep jobs stay
/// byte-identical to serial ones.
class Adversary {
 public:
  Adversary(sim::Scheduler& sched, Rng rng, AdversaryConfig cfg)
      : sched_(sched), rng_(rng), cfg_(cfg) {}

  /// Installed once by the World before traffic flows; polled (cached, see
  /// kProbePeriod) to learn which node currently acts as coordinator.
  // ssr-lint: allow(hot-path-alloc) std::function: assigned once at world
  // construction, only invoked on the cached-probe slow path.
  using CoordinatorProbe = std::function<NodeId()>;
  void set_coordinator_probe(CoordinatorProbe probe) {
    probe_ = std::move(probe);
  }

  /// Network::split() reports every cut; the last boundary is remembered
  /// (also across heal(): packets racing through a *just-healed* boundary
  /// are exactly the ones worth reordering).
  void note_boundary(const IdSet& a, const IdSet& b) {
    boundary_a_ = a;
    boundary_b_ = b;
  }

  /// Replaces the uniform delay draw for one in-flight packet. `base` is
  /// the channel's own uniform draw (kept so RNG stream shapes stay simple
  /// to reason about); the result is always within [min_delay, max_delay].
  SimTime delivery_delay(NodeId src, NodeId dst, const wire::Bytes& payload,
                         SimTime base, SimTime min_delay, SimTime max_delay);

  struct Stats {
    std::uint64_t inspected = 0;
    std::uint64_t coordinator_delayed = 0;
    std::uint64_t boundary_reordered = 0;
    std::uint64_t stale_preferred = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Coordinator cache refresh period (virtual time). The probe walks the
  /// node table, so it runs at fault-injection cadence, not per packet.
  static constexpr SimTime kProbePeriod = 50 * kMsec;

  bool crosses_boundary(NodeId src, NodeId dst) const {
    return (boundary_a_.contains(src) && boundary_b_.contains(dst)) ||
           (boundary_b_.contains(src) && boundary_a_.contains(dst));
  }

  sim::Scheduler& sched_;
  Rng rng_;
  AdversaryConfig cfg_;
  // ssr-lint: allow(hot-path-alloc) std::function: set once per world, read
  // every kProbePeriod, never per packet.
  CoordinatorProbe probe_;
  NodeId coordinator_ = kNoNode;
  SimTime next_probe_ = 0;
  IdSet boundary_a_;
  IdSet boundary_b_;
  /// Last ARQ label seen per directed link (key = src<<32|dst). One slot
  /// per link, populated during warmup; steady state is pure lookups.
  std::unordered_map<std::uint64_t, std::uint8_t> last_label_;
  Stats stats_;
};

}  // namespace ssr::net
