#include "net/adversary.hpp"

#include "dlink/frame.hpp"

namespace ssr::net {
namespace {

/// Header-only peek at a dlink frame: kind, link sender and ARQ label
/// without copying the payload (Frame::decode would allocate a payload
/// buffer per packet — this is the per-delivery hot path). Layout mirrors
/// Frame::encode: u8 kind, u32 sender, u8 label.
bool peek_frame_header(const wire::Bytes& raw, dlink::FrameKind& kind,
                       NodeId& sender, std::uint8_t& label) {
  wire::Reader r(raw);
  const std::uint8_t k = r.u8();
  if (k < 1 || k > 4) return false;
  sender = r.node_id();
  label = r.u8();
  if (!r.ok()) return false;
  kind = static_cast<dlink::FrameKind>(k);
  return true;
}

}  // namespace

SimTime Adversary::delivery_delay(NodeId src, NodeId dst,
                                  const wire::Bytes& payload, SimTime base,
                                  SimTime min_delay, SimTime max_delay) {
  ++stats_.inspected;
  if (probe_ && sched_.now() >= next_probe_) {
    coordinator_ = probe_();
    next_probe_ = sched_.now() + kProbePeriod;
  }
  const SimTime window = max_delay - min_delay;

  // Rule 1 — stale labels first. Token links retransmit one labelled frame
  // until acked, then step the label; delivering the *repeats* early and
  // holding the *transition* back means receivers keep chewing on old state
  // while new state crawls. Garbage/undecodable payloads skip this rule.
  dlink::FrameKind kind{};
  NodeId sender = kNoNode;
  std::uint8_t label = 0;
  if (cfg_.stale_first > 0 &&
      peek_frame_header(payload, kind, sender, label) &&
      kind == dlink::FrameKind::kData) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(src) << 32) | dst;
    auto it = last_label_.find(key);
    const bool fresh = it == last_label_.end() || it->second != label;
    if (fresh) {
      // ssr-lint: allow(hot-path-alloc) growing-container: one slot per
      // directed link, bounded by the topology; steady state is find-only.
      last_label_[key] = label;
    }
    if (rng_.chance(cfg_.stale_first)) {
      ++stats_.stale_preferred;
      return fresh ? max_delay : min_delay;
    }
  }

  // Rule 2 — starve the coordinator (within fairness bounds): every frame
  // it sends or receives lands in the top eighth of the delay window.
  if (coordinator_ != kNoNode &&
      (src == coordinator_ || dst == coordinator_) &&
      rng_.chance(cfg_.coordinator_delay)) {
    ++stats_.coordinator_delayed;
    return max_delay - rng_.next_below(window / 8 + 1);
  }

  // Rule 3 — maximal reordering across the partition boundary: bimodal
  // delays make post-heal reconciliation traffic interleave as wildly as
  // the window allows.
  if (crosses_boundary(src, dst) && rng_.chance(cfg_.boundary_reorder)) {
    ++stats_.boundary_reordered;
    return rng_.chance(0.5) ? min_delay : max_delay;
  }

  return base;
}

}  // namespace ssr::net
