#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "util/id_set.hpp"

namespace ssr::net {

/// Numeric IPv4 address of one node's UDP socket.
struct UdpEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = let the OS pick (tests); read local_port()
};

struct UdpTransportConfig {
  /// The node this transport serves; its entry in `peers` is the bind
  /// address. Must be present in `peers`.
  NodeId self = kNoNode;
  /// Static address book: node id → where its datagrams go. Entries can be
  /// added or rebound later with set_peer() (e.g. after peers bound port 0).
  std::map<NodeId, UdpEndpoint> peers;
  /// Receive buffer size; datagrams longer than this are truncated by the
  /// socket and then dropped as malformed.
  std::size_t max_datagram = 64 * 1024;
  /// Learn/refresh peer addresses from the source address of well-formed
  /// incoming datagrams. This lets a cohort that bound port 0 find each
  /// other from any one seed direction, and re-resolves a peer that
  /// respawned on a new port — no static address book maintenance.
  bool learn_peers = true;
  /// Shard this transport belongs to. Stamped into every outgoing envelope
  /// and checked on receive: a datagram tagged with a different shard is
  /// counted and dropped before it reaches any handler, so disjoint shard
  /// fleets sharing one host (or one misrouted address book entry) can
  /// never leak protocol traffic into each other's quorums.
  std::uint32_t shard = 0;
};

/// Transport over non-blocking UDP sockets with a poll-based event loop and
/// wall-clock timers — the same node stack that runs on the simulated
/// fabric runs over this on localhost or a real network.
///
/// Every datagram carries a small versioned envelope (magic, version, src,
/// dst, payload) around the existing bounded wire format. Decoding is
/// garbage-tolerant: a corrupted or truncated datagram is counted and
/// dropped, never delivered and never fatal — exactly the channel fault
/// model the protocol stack is built to survive.
///
/// Threading: single-threaded by design, like the simulator. The owner
/// drives the loop with run_for()/poll_once(); handlers and timers fire on
/// the driving thread.
class UdpTransport final : public Transport {
 public:
  explicit UdpTransport(UdpTransportConfig cfg);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  // -- Transport interface ---------------------------------------------------
  void attach(NodeId id, Handler handler) override;
  void detach(NodeId id) override { handlers_.erase(id); }
  bool attached(NodeId id) const override { return handlers_.count(id) != 0; }
  void send(NodeId src, NodeId dst, wire::Bytes payload) override;
  /// Wall-clock microseconds since the transport was created.
  SimTime now() const override;
  TimerHandle schedule_after(SimTime delay, TimerFn fn) override;

  // -- Event loop ------------------------------------------------------------
  /// One poll round: sleeps until a datagram arrives, the next timer is due
  /// or `max_wait` elapses; then drains the socket and fires due timers.
  /// Returns true when any packet or timer was processed.
  bool poll_once(SimTime max_wait);
  /// Drives the loop for `duration` of wall time.
  void run_for(SimTime duration);

  // -- Address book ----------------------------------------------------------
  /// Adds or rebinds a peer address (late binding for port-0 test setups).
  void set_peer(NodeId id, const UdpEndpoint& ep);
  /// True when a route to `id` is known (configured, set_peer, or learned).
  bool has_peer(NodeId id) const { return addrs_.count(id) != 0; }
  /// The actually bound local port (resolves port 0 at construction).
  std::uint16_t local_port() const { return local_port_; }
  const UdpTransportConfig& config() const { return cfg_; }

  // -- Dynamic peer filter ---------------------------------------------------
  /// Blocks traffic with these peers in both directions: outgoing datagrams
  /// toward them are not sent and incoming ones from them are dropped after
  /// decode. This is the per-node half of a network partition — the process
  /// scenario backend installs complementary filters over the control
  /// socket to cut a cohort in two without touching routing tables.
  void set_blocked(IdSet blocked) { blocked_ = std::move(blocked); }
  const IdSet& blocked() const { return blocked_; }

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t send_failures = 0;  // full socket buffer etc. — lossy-link
    std::uint64_t received = 0;
    std::uint64_t dropped_malformed = 0;  // bad magic/version/encoding
    std::uint64_t dropped_wrong_shard = 0;  // well-formed, foreign shard tag
    std::uint64_t dropped_unattached = 0;  // well-formed, but no such node
    std::uint64_t filtered_out = 0;  // sends suppressed by the peer filter
    std::uint64_t filtered_in = 0;   // receives dropped by the peer filter
    std::uint64_t timers_fired = 0;
  };
  const Stats& stats() const { return stats_; }

  // -- Envelope codec (exposed for tests and tooling) ------------------------
  // v2 layout: magic u32 | version u8 | shard u32 | src u32 | dst u32 |
  // payload-length u32 | payload. v1 (no shard field) is not accepted: a
  // cohort is always deployed as one build, and rejecting the old version
  // outright keeps the strict-framing property (every accepted datagram
  // has exactly one valid reading).
  static constexpr std::uint32_t kMagic = 0x55525353;  // "SSRU" little-endian
  static constexpr std::uint8_t kVersion = 2;
  static wire::Bytes encode_envelope(std::uint32_t shard, NodeId src,
                                     NodeId dst, const wire::Bytes& payload);
  /// On success `*shard_out` (when non-null) receives the envelope's shard
  /// tag; shard filtering is the receive path's job, not the codec's.
  static std::optional<Packet> decode_envelope(const std::uint8_t* data,
                                               std::size_t len,
                                               std::uint32_t* shard_out =
                                                   nullptr);

 private:
  /// Pooled timer record; the same {slot, generation} handle scheme as
  /// sim::Scheduler (a TimerHandle is a generation compare away from its
  /// slot — no shared_ptr tombstone per timer).
  struct TimerSlot {
    std::uint32_t gen = 0;  // liveness == generation match, nothing else
    std::uint32_t next_free = 0xFFFFFFFFu;
    TimerFn fn;
  };
  /// Heap entry with the full ordering key inline; a stale (slot, gen)
  /// pair marks a cancelled timer's tombstone, dropped lazily.
  struct TimerEntry {
    SimTime when = 0;
    std::uint64_t seq = 0;  // FIFO tie-break at equal deadlines
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  struct Later {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool drain_socket();
  bool fire_due_timers();
  /// Wall time until the next live timer, or `fallback` with none pending.
  SimTime wait_budget(SimTime fallback);
  std::uint32_t alloc_timer_slot();
  void free_timer_slot(std::uint32_t slot);
  bool timer_live(const TimerEntry& e) const {
    return timer_slots_[e.slot].gen == e.gen;
  }
  static const TimerHandle::Ops kTimerOps;

  UdpTransportConfig cfg_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::uint64_t epoch_usec_ = 0;  // steady-clock origin
  std::map<NodeId, Handler> handlers_;
  std::map<NodeId, std::vector<std::uint8_t>> addrs_;  // resolved sockaddr_in
  IdSet blocked_;
  std::uint64_t next_seq_ = 0;
  std::vector<TimerSlot> timer_slots_;
  std::uint32_t timer_free_head_ = 0xFFFFFFFFu;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, Later> timers_;
  std::vector<std::uint8_t> rx_buf_;
  Stats stats_;
};

}  // namespace ssr::net
