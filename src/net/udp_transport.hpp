#pragma once

#include <netinet/in.h>
#include <sys/socket.h>

#include <cstdint>
#include <map>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "net/session.hpp"
#include "net/transport.hpp"
#include "util/id_set.hpp"

namespace ssr::net {

/// Numeric IPv4 address of one node's UDP socket.
struct UdpEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = let the OS pick (tests); read local_port()
};

struct UdpTransportConfig {
  /// The node this transport serves; its entry in `peers` is the bind
  /// address. Must be present in `peers`.
  NodeId self = kNoNode;
  /// Static address book: node id → where its datagrams go. Entries can be
  /// added or rebound later with set_peer() (e.g. after peers bound port 0).
  std::map<NodeId, UdpEndpoint> peers;
  /// Receive buffer size; datagrams longer than this are truncated by the
  /// socket and then dropped as malformed.
  std::size_t max_datagram = 64 * 1024;
  /// Learn/refresh peer addresses from the source address of well-formed
  /// incoming datagrams. This lets a cohort that bound port 0 find each
  /// other from any one seed direction, and re-resolves a peer that
  /// respawned on a new port — no static address book maintenance.
  bool learn_peers = true;
  /// Shard this transport belongs to. Stamped into every outgoing envelope
  /// and checked on receive: a datagram tagged with a different shard is
  /// counted and dropped before it reaches any handler, so disjoint shard
  /// fleets sharing one host (or one misrouted address book entry) can
  /// never leak protocol traffic into each other's quorums.
  std::uint32_t shard = 0;
  /// Syscall batching factor (clamped to [1, kMaxBatch]). Sends are staged
  /// into a `batch`-deep mmsghdr ring flushed with one sendmmsg — on ring
  /// full, on Transport::flush() at tick boundaries, and before any poll
  /// sleep; receives drain up to `batch` datagrams per recvmmsg. 1 degrades
  /// to one syscall per datagram (the A/B baseline for `--batch=1`).
  std::size_t batch = 16;
};

/// Transport over non-blocking UDP sockets with a poll-based event loop and
/// wall-clock timers — the same node stack that runs on the simulated
/// fabric runs over this on localhost or a real network.
///
/// The datapath batches the syscall boundary: outgoing datagrams are staged
/// into a fixed mmsghdr/iovec ring and flushed with a single sendmmsg (the
/// token-link layer fans a frame to every peer each tick, so one protocol
/// tick is one syscall, not one per peer); the receive side drains several
/// datagrams per recvmmsg. Envelope framing, version/shard checks and
/// peer-address learning live in the transport-agnostic net::Session — this
/// class is pure syscall plumbing.
///
/// Threading: single-threaded by design, like the simulator. The owner
/// drives the loop with run_for()/poll_once(); handlers and timers fire on
/// the driving thread.
class UdpTransport final : public Transport {
 public:
  /// Upper bound on the ring depth: past ~64 the per-flush win flattens
  /// while the staged-buffer footprint keeps growing.
  static constexpr std::size_t kMaxBatch = 64;

  explicit UdpTransport(UdpTransportConfig cfg);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  // -- Transport interface ---------------------------------------------------
  void attach(NodeId id, Handler handler) override;
  void detach(NodeId id) override { handlers_.erase(id); }
  bool attached(NodeId id) const override { return handlers_.count(id) != 0; }
  void send(NodeId src, NodeId dst, wire::Bytes payload) override;
  /// Flushes the staged send ring with sendmmsg (tick-boundary hook).
  void flush() override;
  /// Wall-clock microseconds since the transport was created.
  SimTime now() const override;
  TimerHandle schedule_after(SimTime delay, TimerFn fn) override;

  // -- Event loop ------------------------------------------------------------
  /// One poll round: flushes staged sends, sleeps until a datagram arrives,
  /// the next timer is due or `max_wait` elapses; then drains the socket,
  /// fires due timers and flushes whatever those staged. Returns true when
  /// any packet or timer was processed.
  bool poll_once(SimTime max_wait);
  /// Drives the loop for `duration` of wall time.
  void run_for(SimTime duration);

  // -- Address book ----------------------------------------------------------
  /// Adds or rebinds a peer address (late binding for port-0 test setups).
  void set_peer(NodeId id, const UdpEndpoint& ep);
  /// True when a route to `id` is known (configured, set_peer, or learned).
  bool has_peer(NodeId id) const { return session_.has_route(id); }
  /// The actually bound local port (resolves port 0 at construction).
  std::uint16_t local_port() const { return local_port_; }
  const UdpTransportConfig& config() const { return cfg_; }
  const Session& session() const { return session_; }

  // -- Dynamic peer filter ---------------------------------------------------
  /// Blocks traffic with these peers in both directions: outgoing datagrams
  /// toward them are not sent and incoming ones from them are dropped after
  /// decode. This is the per-node half of a network partition — the process
  /// scenario backend installs complementary filters over the control
  /// socket to cut a cohort in two without touching routing tables.
  void set_blocked(IdSet blocked) { blocked_ = std::move(blocked); }
  const IdSet& blocked() const { return blocked_; }

  struct Stats {
    std::uint64_t sent = 0;           // datagrams the kernel accepted whole
    std::uint64_t send_failures = 0;  // errno-level sendmmsg losses
    std::uint64_t no_route = 0;       // sends with no address-book entry
    std::uint64_t send_partial = 0;   // kernel accepted fewer bytes than staged
    std::uint64_t send_syscalls = 0;  // successful sendmmsg invocations
    std::uint64_t recv_syscalls = 0;  // successful recvmmsg invocations
    std::uint64_t batched_sends = 0;  // datagrams that shared a sendmmsg (≥2)
    std::uint64_t received = 0;
    std::uint64_t recv_errors = 0;        // real recvmmsg errors (not EAGAIN)
    std::uint64_t dropped_malformed = 0;  // bad magic/version/encoding
    std::uint64_t dropped_wrong_shard = 0;  // well-formed, foreign shard tag
    std::uint64_t dropped_unattached = 0;  // well-formed, but no such node
    std::uint64_t filtered_out = 0;  // sends suppressed by the peer filter
    std::uint64_t filtered_in = 0;   // receives dropped by the peer filter
    std::uint64_t timers_fired = 0;
  };
  const Stats& stats() const { return stats_; }

  // -- Syscall seams (tests only) --------------------------------------------
  // Raw function pointers so batching edge cases (partial sendmmsg returns,
  // per-datagram errors, scripted recvmmsg fills) are testable without a
  // cooperating kernel. Production code never touches these.
  using SendmmsgFn = int (*)(int fd, mmsghdr* msgs, unsigned n, int flags);
  using RecvmmsgFn = int (*)(int fd, mmsghdr* msgs, unsigned n, int flags,
                             timespec* timeout);
  void set_syscall_hooks(SendmmsgFn send_fn, RecvmmsgFn recv_fn);

 private:
  /// Pooled timer record; the same {slot, generation} handle scheme as
  /// sim::Scheduler (a TimerHandle is a generation compare away from its
  /// slot — no shared_ptr tombstone per timer).
  struct TimerSlot {
    std::uint32_t gen = 0;  // liveness == generation match, nothing else
    std::uint32_t next_free = 0xFFFFFFFFu;
    TimerFn fn;
  };
  /// Heap entry with the full ordering key inline; a stale (slot, gen)
  /// pair marks a cancelled timer's tombstone, dropped lazily.
  struct TimerEntry {
    SimTime when = 0;
    std::uint64_t seq = 0;  // FIFO tie-break at equal deadlines
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };
  struct Later {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool drain_socket();
  void process_datagram(const std::uint8_t* data, std::size_t len,
                        const sockaddr_in& from, socklen_t from_len);
  bool fire_due_timers();
  /// Wall time until the next live timer, or `fallback` with none pending.
  SimTime wait_budget(SimTime fallback);
  std::uint32_t alloc_timer_slot();
  void free_timer_slot(std::uint32_t slot);
  bool timer_live(const TimerEntry& e) const {
    return timer_slots_[e.slot].gen == e.gen;
  }
  static const TimerHandle::Ops kTimerOps;

  UdpTransportConfig cfg_;
  Session session_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::uint64_t epoch_usec_ = 0;  // steady-clock origin
  std::map<NodeId, Handler> handlers_;
  IdSet blocked_;
  std::uint64_t next_seq_ = 0;
  std::vector<TimerSlot> timer_slots_;
  std::uint32_t timer_free_head_ = 0xFFFFFFFFu;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, Later> timers_;

  // Send ring: parallel fixed-size arrays, `tx_count_` staged entries.
  // Destination addresses are copied at stage time — the session's address
  // book may rebind a route between stage and flush, and the datagram must
  // go where the route pointed when send() ran.
  std::vector<wire::Bytes> tx_bufs_;
  std::vector<sockaddr_in> tx_addrs_;
  std::vector<iovec> tx_iov_;
  std::vector<mmsghdr> tx_msgs_;
  std::size_t tx_count_ = 0;

  // Receive array: one contiguous block sliced into `batch` buffers of
  // max_datagram bytes each, filled by a single recvmmsg.
  std::vector<std::uint8_t> rx_block_;
  std::vector<sockaddr_in> rx_from_;
  std::vector<iovec> rx_iov_;
  std::vector<mmsghdr> rx_msgs_;

  SendmmsgFn sendmmsg_fn_;
  RecvmmsgFn recvmmsg_fn_;
  Stats stats_;
};

}  // namespace ssr::net
