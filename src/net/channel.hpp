#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace ssr::net {

/// Behavioural parameters of every directed link.
struct ChannelConfig {
  /// Bounded capacity `cap` (paper, Section 2): at most this many packets
  /// are in flight; overflowing sends omit either the new packet or a
  /// previously sent one.
  std::size_t capacity = 8;
  SimTime min_delay = 50 * kUsec;
  SimTime max_delay = 2 * kMsec;
  /// Spontaneous omission probability. Must be < 1 so that fair
  /// communication holds (a packet sent infinitely often arrives infinitely
  /// often).
  double loss_probability = 0.05;
  double duplicate_probability = 0.01;
  /// Probability that a delivered packet has one byte flipped (models
  /// hardware corruption; decoders must survive it).
  double corrupt_probability = 0.0;
};

/// Directed unreliable bounded-capacity channel from one processor to
/// another. Delivery order is randomized through per-packet delays.
class Channel {
 public:
  using Deliver = std::function<void(Packet)>;

  Channel(sim::Scheduler& sched, Rng rng, ChannelConfig cfg, NodeId src,
          NodeId dst, Deliver deliver);

  /// Sends a payload. May silently omit (loss or capacity overflow).
  void send(wire::Bytes payload);

  /// Transient-fault injection: places `count` packets with arbitrary
  /// content directly into the channel, as if left over from before the
  /// fault. Never exceeds capacity.
  void inject_garbage(std::size_t count, std::size_t max_len = 64);

  /// Transient-fault injection: places a specific stale packet in flight
  /// (used to model stale protocol messages surviving in channels).
  void inject_packet(wire::Bytes payload);

  /// Drops every in-flight packet (models the snap-stabilizing cleaning
  /// completing, and link failure).
  void flush();

  std::size_t in_flight() const;
  const ChannelConfig& config() const { return cfg_; }

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    std::uint64_t overflowed = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void schedule_delivery(wire::Bytes payload, bool count_as_send);
  void prune();

  sim::Scheduler& sched_;
  Rng rng_;
  ChannelConfig cfg_;
  NodeId src_;
  NodeId dst_;
  Deliver deliver_;
  std::vector<sim::Scheduler::Handle> in_flight_;
  Stats stats_;
};

}  // namespace ssr::net
