#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/adversary.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace ssr::net {

/// Behavioural parameters of every directed link.
struct ChannelConfig {
  /// Bounded capacity `cap` (paper, Section 2): at most this many packets
  /// are in flight; overflowing sends omit either the new packet or a
  /// previously sent one.
  std::size_t capacity = 8;
  SimTime min_delay = 50 * kUsec;
  SimTime max_delay = 2 * kMsec;
  /// Spontaneous omission probability. Must be < 1 so that fair
  /// communication holds (a packet sent infinitely often arrives infinitely
  /// often).
  double loss_probability = 0.05;
  double duplicate_probability = 0.01;
  /// Probability that a delivered packet has one byte flipped (models
  /// hardware corruption; decoders must survive it).
  double corrupt_probability = 0.0;
};

/// Directed unreliable bounded-capacity channel from one processor to
/// another. Delivery order is randomized through per-packet delays.
///
/// The channel is the scheduler's packet sink: every in-flight packet is a
/// typed pooled event ({this, payload buffer}) rather than a closure, and
/// payload buffers cycle through wire::BufferPool, so steady-state traffic
/// allocates nothing. `in_flight_` always holds exactly the live delivery
/// handles in insertion order — the handle of a delivered packet is dropped
/// as the event fires — which makes in_flight() O(1) and removes the old
/// per-send prune/count scans.
class Channel final : public sim::PacketSink {
 public:
  /// Delivery callback. The packet is only valid for the duration of the
  /// call: its payload buffer is recycled when the callback returns.
  using Deliver = std::function<void(Packet&)>;

  /// `adversary` (optional) replaces the uniform delay draw with the
  /// worst-case delivery policy; null keeps the pinned uniform behaviour
  /// byte-identical.
  Channel(sim::Scheduler& sched, Rng rng, ChannelConfig cfg, NodeId src,
          NodeId dst, Deliver deliver, Adversary* adversary = nullptr);

  /// Sends a payload. May silently omit (loss or capacity overflow). The
  /// buffer is consumed either way (recycled on omission).
  void send(wire::Bytes payload);

  /// Transient-fault injection: places `count` packets with arbitrary
  /// content directly into the channel, as if left over from before the
  /// fault. Never exceeds capacity.
  void inject_garbage(std::size_t count, std::size_t max_len = 64);

  /// Transient-fault injection: places a specific stale packet in flight
  /// (used to model stale protocol messages surviving in channels).
  void inject_packet(wire::Bytes payload);

  /// Drops every in-flight packet in one batch (models the snap-stabilizing
  /// cleaning completing, and link failure); the payload buffers return to
  /// the pool.
  void flush();

  std::size_t in_flight() const { return in_flight_.size(); }
  const ChannelConfig& config() const { return cfg_; }

  /// sim::PacketSink: a scheduled delivery came due.
  void deliver_packet(wire::Bytes&& payload) override;

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    std::uint64_t overflowed = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void schedule_delivery(wire::Bytes payload, bool count_as_send);

  sim::Scheduler& sched_;
  wire::BufferPool& pool_ = wire::BufferPool::local();
  Rng rng_;
  ChannelConfig cfg_;
  NodeId src_;
  NodeId dst_;
  Deliver deliver_;
  /// Worst-case delivery policy; null = uniform delays (the default, and
  /// the behaviour every pinned replay hash was recorded under).
  Adversary* adversary_ = nullptr;
  /// Live delivery events only, in insertion order. Order matters: the
  /// overflow victim draw indexes this vector, and the index → packet
  /// mapping is part of the pinned replay executions (which is why victims
  /// are erased in place, not swap-and-popped — swapping would permute the
  /// mapping and drift every downstream trace hash).
  std::vector<sim::Scheduler::Handle> in_flight_;
  Stats stats_;
};

}  // namespace ssr::net
