#include "net/network.hpp"

namespace ssr::net {

Channel& Network::channel(NodeId src, NodeId dst) {
  auto key = std::make_pair(src, dst);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    auto deliver = [this, dst](Packet pkt) {
      auto h = handlers_.find(dst);
      if (h != handlers_.end()) h->second(pkt);
      // else: destination crashed or absent — the packet vanishes.
    };
    it = channels_
             .emplace(key, std::make_unique<Channel>(sched_, rng_.fork(), cfg_,
                                                     src, dst, deliver))
             .first;
  }
  return *it->second;
}

void Network::block_pair(NodeId a, NodeId b) {
  blocked_.insert({a, b});
  blocked_.insert({b, a});
}

void Network::split(const IdSet& a, const IdSet& b) {
  for (NodeId x : a) {
    for (NodeId y : b) {
      if (x != y) block_pair(x, y);
    }
  }
}

void Network::heal() { blocked_.clear(); }

void Network::send(NodeId src, NodeId dst, wire::Bytes payload) {
  if (blocked(src, dst)) {
    ++packets_blocked_;
    return;
  }
  if (src == dst) {
    // Loopback: deliver next step without loss (a processor reading its own
    // state needs no channel; kept for uniformity of broadcast loops).
    auto h = handlers_.find(dst);
    if (h == handlers_.end()) return;
    Packet pkt{src, dst, std::move(payload)};
    sched_.schedule_after(1, [this, dst, pkt = std::move(pkt)]() {
      auto it = handlers_.find(dst);
      if (it != handlers_.end()) it->second(pkt);
    });
    return;
  }
  channel(src, dst).send(std::move(payload));
}

void Network::for_each_channel(
    const std::function<void(NodeId, NodeId, Channel&)>& fn) {
  for (auto& [key, ch] : channels_) fn(key.first, key.second, *ch);
}

}  // namespace ssr::net
