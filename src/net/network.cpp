#include "net/network.hpp"

namespace ssr::net {

Channel& Network::channel(NodeId src, NodeId dst) {
  const std::uint64_t flat =
      (static_cast<std::uint64_t>(src) << 32) | dst;
  auto hit = channel_index_.find(flat);
  if (hit != channel_index_.end()) return *hit->second;
  auto key = std::make_pair(src, dst);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    // The per-delivery handler lookup is cached across calls and
    // revalidated against the attach epoch (attach/detach invalidates).
    auto deliver = [this, dst, cached = static_cast<const Handler*>(nullptr),
                    epoch = std::uint64_t(0)](Packet& pkt) mutable {
      if (epoch != attach_epoch_) {
        auto h = handlers_.find(dst);
        cached = h == handlers_.end() ? nullptr : &h->second;
        epoch = attach_epoch_;
      }
      if (cached != nullptr) (*cached)(pkt);
      // else: destination crashed or absent — the packet vanishes.
    };
    it = channels_
             .emplace(key, std::make_unique<Channel>(sched_, rng_.fork(), cfg_,
                                                     src, dst, deliver,
                                                     adversary_))
             .first;
  }
  channel_index_.emplace(flat, it->second.get());
  return *it->second;
}

void Network::block_pair(NodeId a, NodeId b) {
  blocked_.insert({a, b});
  blocked_.insert({b, a});
}

void Network::split(const IdSet& a, const IdSet& b) {
  for (NodeId x : a) {
    for (NodeId y : b) {
      if (x != y) block_pair(x, y);
    }
  }
  // The adversary keeps targeting the most recent boundary — including
  // after heal(), when reconciliation traffic crosses it.
  if (adversary_ != nullptr) adversary_->note_boundary(a, b);
}

void Network::heal() { blocked_.clear(); }

void Network::LoopbackSink::deliver_packet(wire::Bytes&& payload) {
  // Handler existence is re-checked at fire time: the destination may have
  // crashed while the loopback packet was in flight.
  auto it = net->handlers_.find(dst);
  if (it != net->handlers_.end()) {
    Packet pkt{dst, dst, std::move(payload)};
    it->second(pkt);
    wire::BufferPool::local().release(std::move(pkt.payload));
  } else {
    wire::BufferPool::local().release(std::move(payload));
  }
}

void Network::send(NodeId src, NodeId dst, wire::Bytes payload) {
  if (blocked(src, dst)) {
    ++packets_blocked_;
    wire::BufferPool::local().release(std::move(payload));
    return;
  }
  if (src == dst) {
    // Loopback: deliver next step without loss (a processor reading its own
    // state needs no channel; kept for uniformity of broadcast loops).
    // As before, nothing is scheduled when the destination is absent at
    // send time (event seq numbering is part of the pinned executions).
    if (handlers_.find(dst) == handlers_.end()) {
      wire::BufferPool::local().release(std::move(payload));
      return;
    }
    auto lb = loopbacks_.find(dst);
    if (lb == loopbacks_.end()) {
      lb = loopbacks_.emplace(dst, std::make_unique<LoopbackSink>(this, dst))
               .first;
    }
    sched_.schedule_packet_after(1, lb->second.get(), std::move(payload));
    return;
  }
  channel(src, dst).send(std::move(payload));
}

void Network::for_each_channel(
    const std::function<void(NodeId, NodeId, Channel&)>& fn) {
  for (auto& [key, ch] : channels_) fn(key.first, key.second, *ch);
}

}  // namespace ssr::net
