#include "net/network.hpp"

namespace ssr::net {

Channel& Network::channel(NodeId src, NodeId dst) {
  auto key = std::make_pair(src, dst);
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    auto deliver = [this, dst](Packet pkt) {
      auto h = handlers_.find(dst);
      if (h != handlers_.end()) h->second(pkt);
      // else: destination crashed or absent — the packet vanishes.
    };
    it = channels_
             .emplace(key, std::make_unique<Channel>(sched_, rng_.fork(), cfg_,
                                                     src, dst, deliver))
             .first;
  }
  return *it->second;
}

void Network::send(NodeId src, NodeId dst, wire::Bytes payload) {
  if (src == dst) {
    // Loopback: deliver next step without loss (a processor reading its own
    // state needs no channel; kept for uniformity of broadcast loops).
    auto h = handlers_.find(dst);
    if (h == handlers_.end()) return;
    Packet pkt{src, dst, std::move(payload)};
    sched_.schedule_after(1, [this, dst, pkt = std::move(pkt)]() {
      auto it = handlers_.find(dst);
      if (it != handlers_.end()) it->second(pkt);
    });
    return;
  }
  channel(src, dst).send(std::move(payload));
}

void Network::for_each_channel(
    const std::function<void(NodeId, NodeId, Channel&)>& fn) {
  for (auto& [key, ch] : channels_) fn(key.first, key.second, *ch);
}

}  // namespace ssr::net
