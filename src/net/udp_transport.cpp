#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/assert.hpp"
#include "util/wallclock.hpp"
#include "wire/wire.hpp"

namespace ssr::net {
namespace {

std::vector<std::uint8_t> resolve(const UdpEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  SSR_ASSERT(::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) == 1,
             "UdpEndpoint.host must be a numeric IPv4 address");
  std::vector<std::uint8_t> raw(sizeof(addr));
  std::memcpy(raw.data(), &addr, sizeof(addr));
  return raw;
}

}  // namespace

wire::Bytes UdpTransport::encode_envelope(std::uint32_t shard, NodeId src,
                                          NodeId dst,
                                          const wire::Bytes& payload) {
  wire::Writer w;
  w.reserve(4 + 1 + 4 + 4 + 4 + 4 + payload.size());
  w.u32(kMagic);
  w.u8(kVersion);
  w.u32(shard);
  w.node_id(src);
  w.node_id(dst);
  w.bytes(payload);
  return w.take();
}

std::optional<Packet> UdpTransport::decode_envelope(const std::uint8_t* data,
                                                    std::size_t len,
                                                    std::uint32_t* shard_out) {
  // Parsed by hand over the receive buffer: going through wire::Reader
  // would copy the whole datagram once for the Reader and once more for
  // the payload slice — on the hot receive path the payload copy is the
  // only one allowed.
  constexpr std::size_t kHeader = 4 + 1 + 4 + 4 + 4 + 4;
  const auto rd_u32 = [data](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[off + i]) << (8 * i);
    }
    return v;
  };
  if (len < kHeader) return std::nullopt;
  if (rd_u32(0) != kMagic) return std::nullopt;
  if (data[4] != kVersion) return std::nullopt;
  Packet pkt;
  if (shard_out != nullptr) *shard_out = rd_u32(5);
  pkt.src = rd_u32(9);
  pkt.dst = rd_u32(13);
  // Strict framing: the length prefix must name exactly the bytes present
  // (truncated or padded datagrams are corruption, not messages).
  if (rd_u32(17) != len - kHeader) return std::nullopt;
  pkt.payload = wire::BufferPool::local().acquire();
  pkt.payload.assign(data + kHeader, data + len);
  return pkt;
}

UdpTransport::UdpTransport(UdpTransportConfig cfg) : cfg_(std::move(cfg)) {
  SSR_ASSERT(cfg_.peers.count(cfg_.self) != 0,
             "UdpTransportConfig.peers must contain the self endpoint");
  epoch_usec_ = steady_usec();
  rx_buf_.resize(cfg_.max_datagram);

  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  SSR_ASSERT(fd_ >= 0, "socket(AF_INET, SOCK_DGRAM) failed");

  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_addr.s_addr = htonl(INADDR_ANY);
  bind_addr.sin_port = htons(cfg_.peers.at(cfg_.self).port);
  SSR_ASSERT(::bind(fd_, reinterpret_cast<sockaddr*>(&bind_addr),
                    sizeof(bind_addr)) == 0,
             "bind failed — port already in use?");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  local_port_ = ntohs(bound.sin_port);

  for (const auto& [id, ep] : cfg_.peers) {
    if (ep.port != 0) addrs_[id] = resolve(ep);
  }
  // Self always resolves to the actually bound port (covers port 0).
  UdpEndpoint self_ep = cfg_.peers.at(cfg_.self);
  self_ep.port = local_port_;
  addrs_[cfg_.self] = resolve(self_ep);
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::set_peer(NodeId id, const UdpEndpoint& ep) {
  addrs_[id] = resolve(ep);
}

void UdpTransport::attach(NodeId id, Handler handler) {
  SSR_ASSERT(handlers_.count(id) == 0,
             "re-attach of a live node — detach the old incarnation first");
  handlers_[id] = std::move(handler);
}

void UdpTransport::send(NodeId src, NodeId dst, wire::Bytes payload) {
  if (blocked_.contains(dst)) {
    ++stats_.filtered_out;
    wire::BufferPool::local().release(std::move(payload));
    return;
  }
  auto it = addrs_.find(dst);
  if (it == addrs_.end()) {
    // No route — indistinguishable from a crashed destination; the
    // retransmitting link layer handles it like any other loss.
    ++stats_.send_failures;
    wire::BufferPool::local().release(std::move(payload));
    return;
  }
  wire::Bytes datagram = encode_envelope(cfg_.shard, src, dst, payload);
  const ssize_t n = ::sendto(
      fd_, datagram.data(), datagram.size(), 0,
      reinterpret_cast<const sockaddr*>(it->second.data()),
      static_cast<socklen_t>(it->second.size()));
  if (n == static_cast<ssize_t>(datagram.size())) {
    ++stats_.sent;
  } else {
    ++stats_.send_failures;  // EAGAIN/ENOBUFS — UDP is lossy anyway
  }
  // Both buffers die here: recycle them for the next send.
  wire::BufferPool::local().release(std::move(datagram));
  wire::BufferPool::local().release(std::move(payload));
}

SimTime UdpTransport::now() const { return steady_usec() - epoch_usec_; }

const TimerHandle::Ops UdpTransport::kTimerOps{
    [](void* owner, std::uint32_t slot, std::uint32_t gen) {
      auto* t = static_cast<UdpTransport*>(owner);
      if (slot < t->timer_slots_.size() && t->timer_slots_[slot].gen == gen) {
        t->free_timer_slot(slot);
      }
    },
    [](const void* owner, std::uint32_t slot, std::uint32_t gen) {
      const auto* t = static_cast<const UdpTransport*>(owner);
      return slot < t->timer_slots_.size() && t->timer_slots_[slot].gen == gen;
    }};

std::uint32_t UdpTransport::alloc_timer_slot() {
  if (timer_free_head_ != 0xFFFFFFFFu) {
    const std::uint32_t slot = timer_free_head_;
    timer_free_head_ = timer_slots_[slot].next_free;
    return slot;
  }
  timer_slots_.emplace_back();
  return static_cast<std::uint32_t>(timer_slots_.size() - 1);
}

void UdpTransport::free_timer_slot(std::uint32_t slot) {
  TimerSlot& s = timer_slots_[slot];
  ++s.gen;  // retires outstanding handles and the heap tombstone
  if (s.fn) s.fn = nullptr;
  s.next_free = timer_free_head_;
  timer_free_head_ = slot;
}

TimerHandle UdpTransport::schedule_after(SimTime delay, TimerFn fn) {
  const std::uint32_t slot = alloc_timer_slot();
  TimerSlot& s = timer_slots_[slot];
  s.fn = std::move(fn);
  timers_.push(TimerEntry{now() + delay, next_seq_++, slot, s.gen});
  return TimerHandle(&kTimerOps, this, slot, s.gen);
}

SimTime UdpTransport::wait_budget(SimTime fallback) {
  // Skim cancelled timers off the top so a dead timer never shortens the
  // poll sleep (and the queue cannot fill with tombstones).
  while (!timers_.empty() && !timer_live(timers_.top())) timers_.pop();
  if (timers_.empty()) return fallback;
  const SimTime t = now();
  const SimTime due = timers_.top().when;
  return std::min(fallback, due > t ? due - t : 0);
}

bool UdpTransport::poll_once(SimTime max_wait) {
  const SimTime wait = wait_budget(max_wait);
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms = static_cast<int>((wait + 999) / 1000);
  const int rc = ::poll(&pfd, 1, timeout_ms);
  bool activity = false;
  if (rc > 0 && (pfd.revents & POLLIN) != 0) activity |= drain_socket();
  activity |= fire_due_timers();
  return activity;
}

void UdpTransport::run_for(SimTime duration) {
  const SimTime deadline = now() + duration;
  while (now() < deadline) poll_once(deadline - now());
}

bool UdpTransport::drain_socket() {
  bool any = false;
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n =
        ::recvfrom(fd_, rx_buf_.data(), rx_buf_.size(), 0,
                   reinterpret_cast<sockaddr*>(&from), &from_len);
    if (n < 0) break;  // EAGAIN — drained (other errors: drop and retry next poll)
    any = true;
    std::uint32_t shard = 0;
    auto pkt =
        decode_envelope(rx_buf_.data(), static_cast<std::size_t>(n), &shard);
    if (!pkt) {
      ++stats_.dropped_malformed;
      continue;
    }
    if (shard != cfg_.shard) {
      // A foreign shard's datagram: well-formed, but it must never feed
      // this fleet's quorums (and its source must not be learned — the
      // same node id legitimately exists in every shard).
      ++stats_.dropped_wrong_shard;
      wire::BufferPool::local().release(std::move(pkt->payload));
      continue;
    }
    if (cfg_.learn_peers && pkt->src != cfg_.self &&
        from_len == sizeof(from)) {
      // A well-formed envelope vouches for its source id; remember where it
      // actually came from so replies route even when the address book only
      // had a port-0 placeholder (or a stale port from before a respawn).
      std::vector<std::uint8_t>& known = addrs_[pkt->src];
      if (known.size() != sizeof(from) ||
          std::memcmp(known.data(), &from, sizeof(from)) != 0) {
        known.assign(reinterpret_cast<const std::uint8_t*>(&from),
                     reinterpret_cast<const std::uint8_t*>(&from) +
                         sizeof(from));
      }
    }
    if (blocked_.contains(pkt->src)) {
      ++stats_.filtered_in;
      wire::BufferPool::local().release(std::move(pkt->payload));
      continue;
    }
    auto h = handlers_.find(pkt->dst);
    if (h == handlers_.end()) {
      ++stats_.dropped_unattached;
      wire::BufferPool::local().release(std::move(pkt->payload));
      continue;
    }
    ++stats_.received;
    h->second(*pkt);
    wire::BufferPool::local().release(std::move(pkt->payload));
  }
  return any;
}

bool UdpTransport::fire_due_timers() {
  bool any = false;
  while (!timers_.empty()) {
    const TimerEntry top = timers_.top();
    if (!timer_live(top)) {
      timers_.pop();
      continue;
    }
    if (top.when > now()) break;
    timers_.pop();
    // Move the callback out and free the slot before firing, so the timer's
    // own handle reads as not-pending and rescheduling from inside is safe.
    TimerFn fn = std::move(timer_slots_[top.slot].fn);
    timer_slots_[top.slot].fn = nullptr;
    free_timer_slot(top.slot);
    ++stats_.timers_fired;
    any = true;
    fn();
  }
  return any;
}

}  // namespace ssr::net
