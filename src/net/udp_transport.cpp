#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/assert.hpp"
#include "util/wallclock.hpp"
#include "wire/wire.hpp"

namespace ssr::net {
namespace {

Session::Address resolve(const UdpEndpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  SSR_ASSERT(::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) == 1,
             "UdpEndpoint.host must be a numeric IPv4 address");
  Session::Address raw(sizeof(addr));
  std::memcpy(raw.data(), &addr, sizeof(addr));
  return raw;
}

int real_sendmmsg(int fd, mmsghdr* msgs, unsigned n, int flags) {
  return static_cast<int>(::sendmmsg(fd, msgs, n, flags));
}

int real_recvmmsg(int fd, mmsghdr* msgs, unsigned n, int flags,
                  timespec* timeout) {
  return static_cast<int>(::recvmmsg(fd, msgs, n, flags, timeout));
}

}  // namespace

UdpTransport::UdpTransport(UdpTransportConfig cfg)
    : cfg_(std::move(cfg)),
      session_(SessionConfig{cfg_.self, cfg_.shard, cfg_.learn_peers}),
      sendmmsg_fn_(&real_sendmmsg),
      recvmmsg_fn_(&real_recvmmsg) {
  SSR_ASSERT(cfg_.peers.count(cfg_.self) != 0,
             "UdpTransportConfig.peers must contain the self endpoint");
  cfg_.batch = std::clamp<std::size_t>(cfg_.batch, 1, kMaxBatch);
  epoch_usec_ = steady_usec();

  // One-time ring setup; nothing on the datapath grows these again.
  // ssr-lint: allow(hot-path-alloc): send/recv ring setup, once per transport.
  tx_bufs_.resize(cfg_.batch);
  // ssr-lint: allow(hot-path-alloc): send/recv ring setup, once per transport.
  tx_addrs_.resize(cfg_.batch);
  // ssr-lint: allow(hot-path-alloc): send/recv ring setup, once per transport.
  tx_iov_.resize(cfg_.batch);
  // ssr-lint: allow(hot-path-alloc): send/recv ring setup, once per transport.
  tx_msgs_.resize(cfg_.batch);
  // ssr-lint: allow(hot-path-alloc): send/recv ring setup, once per transport.
  rx_block_.resize(cfg_.batch * cfg_.max_datagram);
  // ssr-lint: allow(hot-path-alloc): send/recv ring setup, once per transport.
  rx_from_.resize(cfg_.batch);
  // ssr-lint: allow(hot-path-alloc): send/recv ring setup, once per transport.
  rx_iov_.resize(cfg_.batch);
  // ssr-lint: allow(hot-path-alloc): send/recv ring setup, once per transport.
  rx_msgs_.resize(cfg_.batch);
  for (std::size_t i = 0; i < cfg_.batch; ++i) {
    rx_iov_[i].iov_base = rx_block_.data() + i * cfg_.max_datagram;
    rx_iov_[i].iov_len = cfg_.max_datagram;
  }

  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK, 0);
  SSR_ASSERT(fd_ >= 0, "socket(AF_INET, SOCK_DGRAM) failed");

  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_addr.s_addr = htonl(INADDR_ANY);
  bind_addr.sin_port = htons(cfg_.peers.at(cfg_.self).port);
  SSR_ASSERT(::bind(fd_, reinterpret_cast<sockaddr*>(&bind_addr),
                    sizeof(bind_addr)) == 0,
             "bind failed — port already in use?");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  local_port_ = ntohs(bound.sin_port);

  for (const auto& [id, ep] : cfg_.peers) {
    if (ep.port != 0) session_.set_route(id, resolve(ep));
  }
  // Self always resolves to the actually bound port (covers port 0).
  UdpEndpoint self_ep = cfg_.peers.at(cfg_.self);
  self_ep.port = local_port_;
  session_.set_route(cfg_.self, resolve(self_ep));
}

UdpTransport::~UdpTransport() {
  flush();
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::set_peer(NodeId id, const UdpEndpoint& ep) {
  session_.set_route(id, resolve(ep));
}

void UdpTransport::set_syscall_hooks(SendmmsgFn send_fn, RecvmmsgFn recv_fn) {
  sendmmsg_fn_ = send_fn != nullptr ? send_fn : &real_sendmmsg;
  recvmmsg_fn_ = recv_fn != nullptr ? recv_fn : &real_recvmmsg;
}

void UdpTransport::attach(NodeId id, Handler handler) {
  SSR_ASSERT(handlers_.count(id) == 0,
             "re-attach of a live node — detach the old incarnation first");
  handlers_[id] = std::move(handler);
}

void UdpTransport::send(NodeId src, NodeId dst, wire::Bytes payload) {
  if (blocked_.contains(dst)) {
    ++stats_.filtered_out;
    wire::BufferPool::local().release(std::move(payload));
    return;
  }
  const Session::Address* route = session_.route(dst);
  if (route == nullptr) {
    // No route — indistinguishable from a crashed destination; the
    // retransmitting link layer handles it like any other loss.
    ++stats_.no_route;
    wire::BufferPool::local().release(std::move(payload));
    return;
  }
  SSR_ASSERT(route->size() == sizeof(sockaddr_in),
             "UDP routes must be resolved sockaddr_in blobs");
  // Stage into the ring: the address is copied now (the route may be
  // rebound before the flush), the sealed datagram buffer is owned by the
  // ring until the flush releases it.
  std::memcpy(&tx_addrs_[tx_count_], route->data(), sizeof(sockaddr_in));
  tx_bufs_[tx_count_] = session_.seal(src, dst, payload);
  ++tx_count_;
  wire::BufferPool::local().release(std::move(payload));
  if (tx_count_ == tx_bufs_.size()) flush();
}

void UdpTransport::flush() {
  if (tx_count_ == 0) return;
  for (std::size_t i = 0; i < tx_count_; ++i) {
    tx_iov_[i].iov_base = tx_bufs_[i].data();
    tx_iov_[i].iov_len = tx_bufs_[i].size();
    mmsghdr& m = tx_msgs_[i];
    std::memset(&m, 0, sizeof(m));
    m.msg_hdr.msg_name = &tx_addrs_[i];
    m.msg_hdr.msg_namelen = sizeof(sockaddr_in);
    m.msg_hdr.msg_iov = &tx_iov_[i];
    m.msg_hdr.msg_iovlen = 1;
  }
  std::size_t off = 0;
  while (off < tx_count_) {
    const int r = sendmmsg_fn_(fd_, tx_msgs_.data() + off,
                               static_cast<unsigned>(tx_count_ - off), 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
        // Kernel backpressure: UDP is lossy anyway — charge the rest as
        // losses rather than spin on a full socket buffer.
        stats_.send_failures += tx_count_ - off;
        break;
      }
      // Per-datagram error (bad address, EMSGSIZE, ...): charge the head
      // message and keep flushing the rest of the ring.
      ++stats_.send_failures;
      ++off;
      continue;
    }
    ++stats_.send_syscalls;
    if (r >= 2) stats_.batched_sends += static_cast<std::uint64_t>(r);
    for (int i = 0; i < r; ++i) {
      if (tx_msgs_[off + i].msg_len ==
          static_cast<unsigned>(tx_iov_[off + i].iov_len)) {
        ++stats_.sent;
      } else {
        ++stats_.send_partial;  // kernel truncated the datagram — lost
      }
    }
    // r < remaining is a partial completion: resume at the first unsent
    // message (the next call typically reports why it stopped).
    off += static_cast<std::size_t>(r);
  }
  for (std::size_t i = 0; i < tx_count_; ++i) {
    wire::BufferPool::local().release(std::move(tx_bufs_[i]));
  }
  tx_count_ = 0;
}

SimTime UdpTransport::now() const { return steady_usec() - epoch_usec_; }

const TimerHandle::Ops UdpTransport::kTimerOps{
    [](void* owner, std::uint32_t slot, std::uint32_t gen) {
      auto* t = static_cast<UdpTransport*>(owner);
      if (slot < t->timer_slots_.size() && t->timer_slots_[slot].gen == gen) {
        t->free_timer_slot(slot);
      }
    },
    [](const void* owner, std::uint32_t slot, std::uint32_t gen) {
      const auto* t = static_cast<const UdpTransport*>(owner);
      return slot < t->timer_slots_.size() && t->timer_slots_[slot].gen == gen;
    }};

std::uint32_t UdpTransport::alloc_timer_slot() {
  if (timer_free_head_ != 0xFFFFFFFFu) {
    const std::uint32_t slot = timer_free_head_;
    timer_free_head_ = timer_slots_[slot].next_free;
    return slot;
  }
  // ssr-lint: allow(hot-path-alloc): slab growth — amortized, slots recycle.
  timer_slots_.emplace_back();
  return static_cast<std::uint32_t>(timer_slots_.size() - 1);
}

void UdpTransport::free_timer_slot(std::uint32_t slot) {
  TimerSlot& s = timer_slots_[slot];
  ++s.gen;  // retires outstanding handles and the heap tombstone
  if (s.fn) s.fn = nullptr;
  s.next_free = timer_free_head_;
  timer_free_head_ = slot;
}

TimerHandle UdpTransport::schedule_after(SimTime delay, TimerFn fn) {
  const std::uint32_t slot = alloc_timer_slot();
  TimerSlot& s = timer_slots_[slot];
  s.fn = std::move(fn);
  timers_.push(TimerEntry{now() + delay, next_seq_++, slot, s.gen});
  return TimerHandle(&kTimerOps, this, slot, s.gen);
}

SimTime UdpTransport::wait_budget(SimTime fallback) {
  // Skim cancelled timers off the top so a dead timer never shortens the
  // poll sleep (and the queue cannot fill with tombstones).
  while (!timers_.empty() && !timer_live(timers_.top())) timers_.pop();
  if (timers_.empty()) return fallback;
  const SimTime t = now();
  const SimTime due = timers_.top().when;
  return std::min(fallback, due > t ? due - t : 0);
}

bool UdpTransport::poll_once(SimTime max_wait) {
  // Pre-sleep flush: a staged send must never wait out a poll sleep —
  // batching trades syscalls, not latency.
  flush();
  const SimTime wait = wait_budget(max_wait);
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms = static_cast<int>((wait + 999) / 1000);
  const int rc = ::poll(&pfd, 1, timeout_ms);
  bool activity = false;
  if (rc > 0 && (pfd.revents & POLLIN) != 0) activity |= drain_socket();
  activity |= fire_due_timers();
  // Round boundary: everything the handlers and timers just staged (acks
  // for the drained batch, a tick's full fan-out) leaves in one sendmmsg.
  flush();
  return activity;
}

void UdpTransport::run_for(SimTime duration) {
  const SimTime deadline = now() + duration;
  while (now() < deadline) poll_once(deadline - now());
}

bool UdpTransport::drain_socket() {
  bool any = false;
  const unsigned n = static_cast<unsigned>(rx_msgs_.size());
  for (;;) {
    for (unsigned i = 0; i < n; ++i) {
      mmsghdr& m = rx_msgs_[i];
      std::memset(&m, 0, sizeof(m));
      m.msg_hdr.msg_name = &rx_from_[i];
      m.msg_hdr.msg_namelen = sizeof(sockaddr_in);  // value-result field
      m.msg_hdr.msg_iov = &rx_iov_[i];
      m.msg_hdr.msg_iovlen = 1;
    }
    const int r = recvmmsg_fn_(fd_, rx_msgs_.data(), n, 0, nullptr);
    if (r < 0) {
      if (errno == EINTR) continue;  // a stray signal must not end the drain
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;  // drained
      ++stats_.recv_errors;  // real error: count it, yield to the next poll
      break;
    }
    if (r == 0) break;
    ++stats_.recv_syscalls;
    any = true;
    for (int i = 0; i < r; ++i) {
      process_datagram(static_cast<const std::uint8_t*>(rx_iov_[i].iov_base),
                       rx_msgs_[i].msg_len, rx_from_[i],
                       rx_msgs_[i].msg_hdr.msg_namelen);
    }
    if (static_cast<unsigned>(r) < n) break;  // short fill: queue is dry
  }
  return any;
}

void UdpTransport::process_datagram(const std::uint8_t* data, std::size_t len,
                                    const sockaddr_in& from,
                                    socklen_t from_len) {
  const bool addr_ok = from_len == sizeof(sockaddr_in);
  Packet pkt;
  switch (session_.admit(
      data, len,
      addr_ok ? reinterpret_cast<const std::uint8_t*>(&from) : nullptr,
      addr_ok ? sizeof(from) : 0, &pkt)) {
    case Session::Verdict::kMalformed:
      ++stats_.dropped_malformed;
      return;
    case Session::Verdict::kWrongShard:
      ++stats_.dropped_wrong_shard;
      return;
    case Session::Verdict::kAccept:
      break;
  }
  if (blocked_.contains(pkt.src)) {
    ++stats_.filtered_in;
    wire::BufferPool::local().release(std::move(pkt.payload));
    return;
  }
  auto h = handlers_.find(pkt.dst);
  if (h == handlers_.end()) {
    ++stats_.dropped_unattached;
    wire::BufferPool::local().release(std::move(pkt.payload));
    return;
  }
  ++stats_.received;
  h->second(pkt);
  wire::BufferPool::local().release(std::move(pkt.payload));
}

bool UdpTransport::fire_due_timers() {
  bool any = false;
  while (!timers_.empty()) {
    const TimerEntry top = timers_.top();
    if (!timer_live(top)) {
      timers_.pop();
      continue;
    }
    if (top.when > now()) break;
    timers_.pop();
    // Move the callback out and free the slot before firing, so the timer's
    // own handle reads as not-pending and rescheduling from inside is safe.
    TimerFn fn = std::move(timer_slots_[top.slot].fn);
    timer_slots_[top.slot].fn = nullptr;
    free_timer_slot(top.slot);
    ++stats_.timers_fired;
    any = true;
    fn();
  }
  return any;
}

}  // namespace ssr::net
