#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "net/channel.hpp"
#include "sim/scheduler.hpp"
#include "util/assert.hpp"
#include "util/id_set.hpp"
#include "util/rng.hpp"

namespace ssr::net {

/// Fully connected network fabric over the simulated scheduler.
///
/// A directed Channel is created lazily per ordered pair. Crashed or
/// never-registered destinations silently drop packets (a crashed processor
/// takes no further steps — paper, Section 2).
class Network {
 public:
  using Handler = std::function<void(const Packet&)>;

  Network(sim::Scheduler& sched, Rng rng, ChannelConfig cfg)
      : sched_(sched), rng_(rng), cfg_(cfg) {}

  /// Registers a node's packet handler. Attaching over a live handler is a
  /// programming error — it would silently splice a second incarnation into
  /// the fabric; crash (detach) the old node first. Identifiers are never
  /// reused (paper, Section 2).
  void attach(NodeId id, Handler handler) {
    SSR_ASSERT(handlers_.count(id) == 0,
               "re-attach of a live node — detach the old incarnation first");
    handlers_[id] = std::move(handler);
  }
  /// Detaches a node: models a crash; its inbound packets are dropped.
  void detach(NodeId id) { handlers_.erase(id); }
  bool attached(NodeId id) const { return handlers_.count(id) != 0; }

  void send(NodeId src, NodeId dst, wire::Bytes payload);

  // -- Partitions -------------------------------------------------------------
  // A partition blocks packets at the send side in both directions; packets
  // already in flight still deliver (the fabric does not destroy traffic that
  // left before the cut). Blocks accumulate until heal() is called.

  /// Blocks both directed channels between `a` and `b`.
  void block_pair(NodeId a, NodeId b);
  /// Blocks every pair with one endpoint in `a` and the other in `b`.
  void split(const IdSet& a, const IdSet& b);
  /// Removes every block.
  void heal();
  bool blocked(NodeId src, NodeId dst) const {
    return blocked_.count({src, dst}) != 0;
  }
  std::uint64_t packets_blocked() const { return packets_blocked_; }

  /// Direct access to a channel for fault injection and inspection.
  Channel& channel(NodeId src, NodeId dst);

  /// Applies `fn` to every channel that currently exists.
  void for_each_channel(const std::function<void(NodeId, NodeId, Channel&)>& fn);

  const ChannelConfig& config() const { return cfg_; }
  sim::Scheduler& scheduler() { return sched_; }

 private:
  sim::Scheduler& sched_;
  Rng rng_;
  ChannelConfig cfg_;
  std::map<NodeId, Handler> handlers_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Channel>> channels_;
  std::set<std::pair<NodeId, NodeId>> blocked_;
  std::uint64_t packets_blocked_ = 0;
};

}  // namespace ssr::net
