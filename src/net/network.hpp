#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>

#include "net/channel.hpp"
#include "sim/scheduler.hpp"
#include "util/assert.hpp"
#include "util/id_set.hpp"
#include "util/rng.hpp"

namespace ssr::net {

/// Fully connected network fabric over the simulated scheduler.
///
/// A directed Channel is created lazily per ordered pair. Crashed or
/// never-registered destinations silently drop packets (a crashed processor
/// takes no further steps — paper, Section 2).
///
/// Hot-path notes: each channel's delivery callback caches the destination
/// handler pointer, validated against an attach epoch, so steady-state
/// delivery costs no map lookup; loopback traffic rides the scheduler's
/// typed packet path (no closure, pooled payload buffer).
class Network {
 public:
  using Handler = std::function<void(const Packet&)>;

  Network(sim::Scheduler& sched, Rng rng, ChannelConfig cfg)
      : sched_(sched), rng_(rng), cfg_(cfg) {}

  /// Registers a node's packet handler. Attaching over a live handler is a
  /// programming error — it would silently splice a second incarnation into
  /// the fabric; crash (detach) the old node first. Identifiers are never
  /// reused (paper, Section 2).
  void attach(NodeId id, Handler handler) {
    SSR_ASSERT(handlers_.count(id) == 0,
               "re-attach of a live node — detach the old incarnation first");
    handlers_[id] = std::move(handler);
    ++attach_epoch_;
  }
  /// Detaches a node: models a crash; its inbound packets are dropped.
  void detach(NodeId id) {
    handlers_.erase(id);
    ++attach_epoch_;
  }
  bool attached(NodeId id) const { return handlers_.count(id) != 0; }

  void send(NodeId src, NodeId dst, wire::Bytes payload);

  /// Installs the worst-case delivery policy. Must be called before the
  /// first channel is created (i.e. before any node sends); channels pick
  /// the pointer up at construction. Null (the default) keeps the uniform
  /// delay draws that every pinned replay hash was recorded under.
  void set_adversary(Adversary* adversary) { adversary_ = adversary; }
  Adversary* adversary() { return adversary_; }

  // -- Partitions -------------------------------------------------------------
  // A partition blocks packets at the send side in both directions; packets
  // already in flight still deliver (the fabric does not destroy traffic that
  // left before the cut). Blocks accumulate until heal() is called.

  /// Blocks both directed channels between `a` and `b`.
  void block_pair(NodeId a, NodeId b);
  /// Blocks every pair with one endpoint in `a` and the other in `b`.
  void split(const IdSet& a, const IdSet& b);
  /// Cuts `id` off from everyone — the fabric analog of SIGSTOP (a stopped
  /// process neither sends nor acknowledges; from the outside it is simply
  /// unreachable). Isolation is tracked separately from partitions: heal()
  /// does not resume a paused node, and rejoin() does not touch partition
  /// blocks — exactly like signals vs. peer filters on the process backend.
  void isolate(NodeId id) { isolated_.insert(id); }
  /// The isolate() inverse; any split()-created partition stays in place.
  void rejoin(NodeId id) { isolated_.erase(id); }
  /// Removes every partition block (isolated nodes stay isolated).
  void heal();
  bool blocked(NodeId src, NodeId dst) const {
    return isolated_.count(src) != 0 || isolated_.count(dst) != 0 ||
           blocked_.count({src, dst}) != 0;
  }
  std::uint64_t packets_blocked() const { return packets_blocked_; }

  /// Direct access to a channel for fault injection and inspection.
  Channel& channel(NodeId src, NodeId dst);

  /// Applies `fn` to every channel that currently exists.
  void for_each_channel(const std::function<void(NodeId, NodeId, Channel&)>& fn);

  const ChannelConfig& config() const { return cfg_; }
  sim::Scheduler& scheduler() { return sched_; }

 private:
  /// Typed scheduler sink for loopback packets (src == dst): delivery next
  /// step without loss, no closure, pooled buffer.
  struct LoopbackSink final : sim::PacketSink {
    LoopbackSink(Network* n, NodeId d) : net(n), dst(d) {}
    void deliver_packet(wire::Bytes&& payload) override;
    Network* net;
    NodeId dst;
  };

  sim::Scheduler& sched_;
  Rng rng_;
  ChannelConfig cfg_;
  /// Owned by the World (lives as long as the fabric); see set_adversary.
  Adversary* adversary_ = nullptr;
  std::map<NodeId, Handler> handlers_;
  /// Bumped on every attach/detach; channels revalidate their cached
  /// handler pointer against it (map nodes are address-stable otherwise).
  std::uint64_t attach_epoch_ = 1;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<Channel>> channels_;
  /// O(1) send-path index over channels_. The ordered map stays the source
  /// of truth so for_each_channel keeps its deterministic iteration order
  /// (fault injection draws RNG per channel in that order).
  std::unordered_map<std::uint64_t, Channel*> channel_index_;
  std::map<NodeId, std::unique_ptr<LoopbackSink>> loopbacks_;
  std::set<std::pair<NodeId, NodeId>> blocked_;
  std::set<NodeId> isolated_;
  std::uint64_t packets_blocked_ = 0;
};

}  // namespace ssr::net
