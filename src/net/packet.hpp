#pragma once

#include "util/types.hpp"
#include "wire/wire.hpp"

namespace ssr::net {

/// Low-level packet (paper, Section 2): packets may be lost, reordered or
/// duplicated but never arbitrarily created by the network itself — although
/// channels may *initially* (i.e., after a transient fault) hold stale
/// packets, which the fault injector models explicitly.
struct Packet {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  wire::Bytes payload;
};

}  // namespace ssr::net
