#pragma once

#include "net/network.hpp"
#include "net/transport.hpp"

namespace ssr::net {

/// TimerHandle dispatch straight into the scheduler's {slot, generation}
/// slab — a simulated timer handle is two words of POD, no allocation.
inline constexpr TimerHandle::Ops kSchedulerTimerOps{
    [](void* owner, std::uint32_t slot, std::uint32_t gen) {
      static_cast<sim::Scheduler*>(owner)->cancel_event(slot, gen);
    },
    [](const void* owner, std::uint32_t slot, std::uint32_t gen) {
      return static_cast<const sim::Scheduler*>(owner)->event_pending(slot,
                                                                      gen);
    }};

/// Transport over the simulated fabric: delegates packet movement to the
/// Network (bounded lossy channels, partitions) and timers to the
/// deterministic scheduler. A pure pass-through — wrapping a stack in a
/// SimTransport instead of handing it the Network directly changes neither
/// the RNG draw order nor the event order, so scenario traces (and their
/// replay hashes) are byte-identical to the pre-abstraction fabric.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(Network& net) : net_(net) {}

  void attach(NodeId id, Handler handler) override {
    net_.attach(id, std::move(handler));
  }
  void detach(NodeId id) override { net_.detach(id); }
  bool attached(NodeId id) const override { return net_.attached(id); }

  void send(NodeId src, NodeId dst, wire::Bytes payload) override {
    net_.send(src, dst, std::move(payload));
  }

  SimTime now() const override { return net_.scheduler().now(); }
  TimerHandle schedule_after(SimTime delay, TimerFn fn) override {
    const sim::Scheduler::Handle h =
        net_.scheduler().schedule_after(delay, std::move(fn));
    return TimerHandle(&kSchedulerTimerOps, &net_.scheduler(), h.slot(),
                       h.generation());
  }

  /// The wrapped fabric, for fault injection and channel inspection.
  Network& network() { return net_; }

 private:
  Network& net_;
};

}  // namespace ssr::net
