#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/packet.hpp"
#include "util/types.hpp"
#include "wire/wire.hpp"

namespace ssr::net {

struct SessionConfig {
  /// The node this session serves; its own id is never learned as a peer.
  NodeId self = kNoNode;
  /// Shard stamped into every outgoing envelope and checked on receive.
  std::uint32_t shard = 0;
  /// Learn/refresh peer addresses from the source address of well-formed
  /// same-shard datagrams (see UdpTransportConfig.learn_peers).
  bool learn_peers = true;
};

/// Transport-agnostic SSRU session layer: the envelope codec, version
/// check, shard filter and peer-address learning that PR 5/6 grew inside
/// `UdpTransport`, extracted so a batched UDP backend is pure syscall
/// plumbing and a future TCP backend reuses the identical logic.
///
/// The session knows nothing about sockets. Peer addresses are opaque byte
/// blobs the owning transport resolves and interprets (a `sockaddr_in` for
/// UDP, a connection id for TCP); the session only stores, compares and
/// hands them back.
class Session {
 public:
  /// Opaque peer address as the owning transport understands it.
  using Address = std::vector<std::uint8_t>;

  explicit Session(SessionConfig cfg) : cfg_(cfg) {}

  const SessionConfig& config() const { return cfg_; }

  // -- Envelope codec --------------------------------------------------------
  // v2 layout: magic u32 | version u8 | shard u32 | src u32 | dst u32 |
  // payload-length u32 | payload. v1 (no shard field) is not accepted: a
  // cohort is always deployed as one build, and rejecting the old version
  // outright keeps the strict-framing property (every accepted datagram
  // has exactly one valid reading).
  static constexpr std::uint32_t kMagic = 0x55525353;  // "SSRU" little-endian
  static constexpr std::uint8_t kVersion = 2;
  static wire::Bytes encode_envelope(std::uint32_t shard, NodeId src,
                                     NodeId dst, const wire::Bytes& payload);
  /// On success `*shard_out` (when non-null) receives the envelope's shard
  /// tag; shard filtering is the receive path's job, not the codec's.
  static std::optional<Packet> decode_envelope(const std::uint8_t* data,
                                               std::size_t len,
                                               std::uint32_t* shard_out =
                                                   nullptr);

  /// Seals `payload` into an envelope stamped with this session's shard.
  wire::Bytes seal(NodeId src, NodeId dst, const wire::Bytes& payload) const {
    return encode_envelope(cfg_.shard, src, dst, payload);
  }

  // -- Inbound classification ------------------------------------------------
  enum class Verdict {
    kAccept,      // *out holds a valid same-shard packet (pooled payload)
    kMalformed,   // bad magic/version/framing — count and drop
    kWrongShard,  // well-formed, foreign shard tag — count and drop
  };

  /// Classifies one inbound datagram. On kAccept, fills `*out` (the payload
  /// buffer comes from the thread's wire::BufferPool — the caller owns it)
  /// and applies the peer-learning policy: a well-formed envelope vouches
  /// for its source id, so `from` (when non-empty and not self) refreshes
  /// the route to `out->src`. A foreign shard's source is never learned —
  /// the same node id legitimately exists in every shard. Pass an empty
  /// `from` when the transport has no usable source address.
  Verdict admit(const std::uint8_t* data, std::size_t len,
                const std::uint8_t* from, std::size_t from_len, Packet* out);

  // -- Address book ----------------------------------------------------------
  void set_route(NodeId id, Address addr);
  /// The known route to `id`, or nullptr. The pointer is invalidated by the
  /// next set_route()/admit() — copy out before staging deferred work.
  const Address* route(NodeId id) const;
  bool has_route(NodeId id) const { return addrs_.count(id) != 0; }

  struct Stats {
    std::uint64_t learned = 0;  // routes added or refreshed by admit()
  };
  const Stats& stats() const { return stats_; }

 private:
  SessionConfig cfg_;
  std::map<NodeId, Address> addrs_;
  Stats stats_;
};

}  // namespace ssr::net
