#include "net/session.hpp"

#include <cstring>

namespace ssr::net {

wire::Bytes Session::encode_envelope(std::uint32_t shard, NodeId src,
                                     NodeId dst, const wire::Bytes& payload) {
  wire::Writer w;
  w.reserve(4 + 1 + 4 + 4 + 4 + 4 + payload.size());
  w.u32(kMagic);
  w.u8(kVersion);
  w.u32(shard);
  w.node_id(src);
  w.node_id(dst);
  w.bytes(payload);
  return w.take();
}

std::optional<Packet> Session::decode_envelope(const std::uint8_t* data,
                                               std::size_t len,
                                               std::uint32_t* shard_out) {
  // Parsed by hand over the receive buffer: going through wire::Reader
  // would copy the whole datagram once for the Reader and once more for
  // the payload slice — on the hot receive path the payload copy is the
  // only one allowed.
  constexpr std::size_t kHeader = 4 + 1 + 4 + 4 + 4 + 4;
  const auto rd_u32 = [data](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data[off + i]) << (8 * i);
    }
    return v;
  };
  if (len < kHeader) return std::nullopt;
  if (rd_u32(0) != kMagic) return std::nullopt;
  if (data[4] != kVersion) return std::nullopt;
  Packet pkt;
  if (shard_out != nullptr) *shard_out = rd_u32(5);
  pkt.src = rd_u32(9);
  pkt.dst = rd_u32(13);
  // Strict framing: the length prefix must name exactly the bytes present
  // (truncated or padded datagrams are corruption, not messages).
  if (rd_u32(17) != len - kHeader) return std::nullopt;
  pkt.payload = wire::BufferPool::local().acquire();
  // ssr-lint: allow(hot-path-alloc): pooled buffer keeps capacity on reuse.
  pkt.payload.assign(data + kHeader, data + len);
  return pkt;
}

Session::Verdict Session::admit(const std::uint8_t* data, std::size_t len,
                                const std::uint8_t* from,
                                std::size_t from_len, Packet* out) {
  std::uint32_t shard = 0;
  auto pkt = decode_envelope(data, len, &shard);
  if (!pkt) return Verdict::kMalformed;
  if (shard != cfg_.shard) {
    // A foreign shard's datagram: well-formed, but it must never feed this
    // fleet's quorums (and its source must not be learned).
    wire::BufferPool::local().release(std::move(pkt->payload));
    return Verdict::kWrongShard;
  }
  if (cfg_.learn_peers && pkt->src != cfg_.self && from != nullptr &&
      from_len > 0) {
    // A well-formed envelope vouches for its source id; remember where it
    // actually came from so replies route even when the address book only
    // had a port-0 placeholder (or a stale port from before a respawn).
    Address& known = addrs_[pkt->src];
    if (known.size() != from_len ||
        std::memcmp(known.data(), from, from_len) != 0) {
      // ssr-lint: allow(hot-path-alloc): route rebind — rare respawn.
      known.assign(from, from + from_len);
      ++stats_.learned;
    }
  }
  *out = std::move(*pkt);
  return Verdict::kAccept;
}

void Session::set_route(NodeId id, Address addr) {
  addrs_[id] = std::move(addr);
}

const Session::Address* Session::route(NodeId id) const {
  auto it = addrs_.find(id);
  return it == addrs_.end() ? nullptr : &it->second;
}

}  // namespace ssr::net
