#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "util/types.hpp"

namespace ssr::net {

/// Cancelable handle for a transport timer. Cancellation and pending checks
/// are O(1), idempotent generation compares against the owning transport's
/// event slab (the same {slot, generation} scheme as sim::Scheduler::Handle
/// — no shared_ptr tombstone, no atomics). A handle must not outlive the
/// transport that issued it; both operations are safe no-ops after the
/// timer fired, was cancelled, or its slot was reused.
class TimerHandle {
 public:
  /// Per-transport dispatch table; one static instance per transport type
  /// keeps the handle itself at two words of POD.
  struct Ops {
    void (*cancel)(void* owner, std::uint32_t slot, std::uint32_t gen);
    bool (*pending)(const void* owner, std::uint32_t slot, std::uint32_t gen);
  };

  TimerHandle() = default;
  TimerHandle(const Ops* ops, void* owner, std::uint32_t slot,
              std::uint32_t gen)
      : ops_(ops), owner_(owner), slot_(slot), gen_(gen) {}

  void cancel() const {
    if (ops_ != nullptr) ops_->cancel(owner_, slot_, gen_);
  }
  bool pending() const {
    return ops_ != nullptr && ops_->pending(owner_, slot_, gen_);
  }

 private:
  const Ops* ops_ = nullptr;
  void* owner_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Message-passing fabric under the node stack.
///
/// The paper's algorithms are specified over asynchronous links with no
/// timing assumptions (Section 2): all a processor needs is (a) a way to
/// send a bounded packet toward a named peer, (b) delivery of inbound
/// packets, and (c) a local periodic-timer service whose rate the
/// algorithms never rely on for correctness. This interface captures
/// exactly that, so the same stack runs over the deterministic simulated
/// fabric (SimTransport) and over real UDP sockets (UdpTransport).
class Transport {
 public:
  using Handler = std::function<void(const Packet&)>;
  using TimerFn = std::function<void()>;

  virtual ~Transport() = default;

  /// Registers the packet handler of a local node. Attaching an id that is
  /// already attached is a programming error (crash/detach the previous
  /// incarnation first — identifiers are never reused, paper Section 2).
  virtual void attach(NodeId id, Handler handler) = 0;
  /// Detaches a node: models a crash; its inbound packets are dropped.
  virtual void detach(NodeId id) = 0;
  virtual bool attached(NodeId id) const = 0;

  /// Sends a payload toward `dst`. Sends are fire-and-forget and may be
  /// silently lost, reordered or duplicated; the data-link layer above
  /// assumes only fair communication (a packet sent infinitely often is
  /// received infinitely often).
  virtual void send(NodeId src, NodeId dst, wire::Bytes payload) = 0;

  /// Pushes any sends the transport has staged out to the fabric. Batching
  /// transports (UdpTransport's sendmmsg ring) override this; the node
  /// stack calls it at tick boundaries, after the burst of sends a protocol
  /// tick fans out. The default is a no-op so SimTransport — where every
  /// send is already an immediate scheduler event — is untouched, and the
  /// pinned replay hashes with it.
  virtual void flush() {}

  // -- Clock service ---------------------------------------------------------
  // Virtual microseconds under the simulator, wall-clock microseconds since
  // transport start over real sockets. Algorithms use this only to pace
  // their do-forever loops, never for correctness.

  virtual SimTime now() const = 0;
  virtual TimerHandle schedule_after(SimTime delay, TimerFn fn) = 0;
};

}  // namespace ssr::net
