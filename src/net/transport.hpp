#pragma once

#include <functional>
#include <memory>

#include "net/packet.hpp"
#include "util/types.hpp"

namespace ssr::net {

/// Cancelable handle for a transport timer. Cancellation is O(1) and
/// idempotent: the shared liveness token is flipped and the transport skips
/// the event when it comes due (the same tombstone scheme as
/// sim::Scheduler::Handle, so simulated timers carry no extra bookkeeping).
class TimerHandle {
 public:
  TimerHandle() = default;
  explicit TimerHandle(std::weak_ptr<bool> alive) : alive_(std::move(alive)) {}

  void cancel() const {
    if (auto p = alive_.lock()) *p = false;
  }
  bool pending() const {
    auto p = alive_.lock();
    return p && *p;
  }

 private:
  std::weak_ptr<bool> alive_;
};

/// Message-passing fabric under the node stack.
///
/// The paper's algorithms are specified over asynchronous links with no
/// timing assumptions (Section 2): all a processor needs is (a) a way to
/// send a bounded packet toward a named peer, (b) delivery of inbound
/// packets, and (c) a local periodic-timer service whose rate the
/// algorithms never rely on for correctness. This interface captures
/// exactly that, so the same stack runs over the deterministic simulated
/// fabric (SimTransport) and over real UDP sockets (UdpTransport).
class Transport {
 public:
  using Handler = std::function<void(const Packet&)>;
  using TimerFn = std::function<void()>;

  virtual ~Transport() = default;

  /// Registers the packet handler of a local node. Attaching an id that is
  /// already attached is a programming error (crash/detach the previous
  /// incarnation first — identifiers are never reused, paper Section 2).
  virtual void attach(NodeId id, Handler handler) = 0;
  /// Detaches a node: models a crash; its inbound packets are dropped.
  virtual void detach(NodeId id) = 0;
  virtual bool attached(NodeId id) const = 0;

  /// Sends a payload toward `dst`. Sends are fire-and-forget and may be
  /// silently lost, reordered or duplicated; the data-link layer above
  /// assumes only fair communication (a packet sent infinitely often is
  /// received infinitely often).
  virtual void send(NodeId src, NodeId dst, wire::Bytes payload) = 0;

  // -- Clock service ---------------------------------------------------------
  // Virtual microseconds under the simulator, wall-clock microseconds since
  // transport start over real sockets. Algorithms use this only to pace
  // their do-forever loops, never for correctness.

  virtual SimTime now() const = 0;
  virtual TimerHandle schedule_after(SimTime delay, TimerFn fn) = 0;
};

}  // namespace ssr::net
