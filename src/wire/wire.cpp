#include "wire/wire.hpp"

namespace ssr::wire {

std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t len) {
  // 64-bit FNV-1a folded by xor — cheaper per byte than the 32-bit variant
  // on 64-bit hardware and mixes the high bytes into the fold.
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

BufferPool& BufferPool::local() {
  thread_local BufferPool pool;
  return pool;
}

Bytes BufferPool::acquire() {
  ++stats_.acquired;
  if (free_.empty()) return {};
  ++stats_.reused;
  Bytes b = std::move(free_.back());
  free_.pop_back();
  return b;
}

void BufferPool::release(Bytes&& b) {
  if (b.capacity() == 0 || b.capacity() > kMaxRetainedCapacity ||
      free_.size() >= kMaxPooled) {
    ++stats_.dropped;
    return;  // let it free normally
  }
  ++stats_.released;
  b.clear();
  // ssr-lint: allow(hot-path-alloc): freelist growth is bounded by kMaxPooled.
  free_.push_back(std::move(b));
}

// ssr-lint: allow(hot-path-alloc): amortized into the pooled buffer's sticky capacity
// (allocs/packet = 0 at steady state, asserted by BM_ChannelSendAlloc).
void Writer::u8(std::uint8_t v) { out_.push_back(v); }

// Multi-byte little-endian fields grow the buffer once and store through a
// raw pointer: one capacity check per field instead of one per byte (these
// run per field of every frame the simulator moves).

void Writer::u16(std::uint16_t v) {
  const std::size_t n = out_.size();
  out_.resize(n + 2);  // ssr-lint: allow(hot-path-alloc): pooled capacity
  std::uint8_t* p = out_.data() + n;
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

void Writer::u32(std::uint32_t v) {
  const std::size_t n = out_.size();
  out_.resize(n + 4);  // ssr-lint: allow(hot-path-alloc): pooled capacity
  std::uint8_t* p = out_.data() + n;
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void Writer::u64(std::uint64_t v) {
  const std::size_t n = out_.size();
  out_.resize(n + 8);  // ssr-lint: allow(hot-path-alloc): pooled capacity
  std::uint8_t* p = out_.data() + n;
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::id_set(const IdSet& s) {
  // One growth for the whole set: id sets ride in every protocol
  // broadcast, so the per-field resize adds up.
  const std::size_t count = s.size();
  const std::size_t n = out_.size();
  out_.resize(n + 2 + 4 * count);  // ssr-lint: allow(hot-path-alloc): pooled capacity
  std::uint8_t* p = out_.data() + n;
  *p++ = static_cast<std::uint8_t>(count);
  *p++ = static_cast<std::uint8_t>(count >> 8);
  for (NodeId id : s) {
    for (int i = 0; i < 4; ++i) {
      *p++ = static_cast<std::uint8_t>(id >> (8 * i));
    }
  }
}

void Writer::bytes(const Bytes& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  out_.insert(out_.end(), b.begin(), b.end());  // ssr-lint: allow(hot-path-alloc): pooled capacity
}

void Writer::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());  // ssr-lint: allow(hot-path-alloc): pooled capacity
}

bool Reader::take(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!take(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

bool Reader::boolean() {
  std::uint8_t v = u8();
  if (v > 1) ok_ = false;  // corrupted flag byte
  return v == 1;
}

IdSet Reader::id_set() {
  std::uint16_t n = u16();
  if (!ok_ || n > kMaxElements) {
    ok_ = false;
    return {};
  }
  std::vector<NodeId> ids;
  ids.reserve(n);
  // ssr-lint: allow(hot-path-alloc): single reserved growth per decoded set.
  for (std::uint16_t i = 0; i < n && ok_; ++i) ids.push_back(node_id());
  if (!ok_) return {};
  return IdSet::from_vector(std::move(ids));
}

Bytes Reader::bytes() {
  std::uint32_t n = u32();
  if (!ok_ || n > data_.size() - pos_) {
    ok_ = false;
    return {};
  }
  // Pooled so the per-frame payload slice on the decode path rides the
  // same freelist as the encode/transport buffers.
  Bytes out = BufferPool::local().acquire();
  // ssr-lint: allow(hot-path-alloc): assign into a pooled buffer's sticky capacity.
  out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string Reader::str() {
  std::uint32_t n = u32();
  if (!ok_ || n > data_.size() - pos_) {
    ok_ = false;
    return {};
  }
  std::string out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace ssr::wire
