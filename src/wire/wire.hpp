#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/id_set.hpp"
#include "util/types.hpp"

namespace ssr::wire {

using Bytes = std::vector<std::uint8_t>;

/// Serializer producing the bounded wire format used by every protocol
/// message. The format is explicit (little-endian fixed ints + length
/// prefixes) so that messages have a provable size bound and byte-level
/// fault injection exercises the same decode paths as real corruption.
class Writer {
 public:
  /// Pre-allocates room for `n` more bytes. Hot encoders (frames, bundles,
  /// transport envelopes) know their size up front; reserving once replaces
  /// the per-field geometric growth of the output vector.
  void reserve(std::size_t n) { out_.reserve(out_.size() + n); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void boolean(bool v);
  void node_id(NodeId v) { u32(v); }
  /// Length-prefixed id set (u16 count).
  void id_set(const IdSet& s);
  /// Length-prefixed raw bytes (u32 count).
  void bytes(const Bytes& b);
  void str(const std::string& s);

  const Bytes& data() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Deserializer. Decoding arbitrary (possibly corrupted) byte strings must
/// never crash: every accessor reports failure through ok() and returns a
/// default value after the first malformed field. Callers check ok() once at
/// the end of a message decode.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  bool boolean();
  NodeId node_id() { return u32(); }
  IdSet id_set();
  Bytes bytes();
  std::string str();

  /// True iff no read ran past the buffer or hit a malformed field.
  bool ok() const { return ok_; }
  /// True iff the whole buffer was consumed (strict decoders require this).
  bool exhausted() const { return pos_ == data_.size(); }

  /// Caps accepted collection sizes; corrupted length prefixes otherwise
  /// cause pathological allocations.
  static constexpr std::size_t kMaxElements = 1 << 16;

 private:
  bool take(std::size_t n);

  const Bytes& data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ssr::wire
