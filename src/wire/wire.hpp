#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/id_set.hpp"
#include "util/types.hpp"

namespace ssr::wire {

using Bytes = std::vector<std::uint8_t>;

/// FNV-1a over a byte range, folded to 32 bits. The end-to-end frame
/// integrity check: structural decode validation catches truncation and
/// garbage, but a bit flip inside a value field yields a VALID message
/// with different semantics — scenario_fuzz found exactly that as a
/// virtual-synchrony violation under corrupt_prob + the adversarial
/// scheduler. Every data-link frame is sealed with this digest.
std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t len);

/// Freelist of payload buffers for the simulator/transport hot path.
///
/// Every protocol message lives in a `Bytes` vector that is born in a
/// Writer, travels through a channel event, and dies right after delivery.
/// Recycling those vectors through a thread-local freelist makes the
/// steady-state packet path allocation-free: Writer::Writer() acquires,
/// Channel/Network release after delivery (and on loss, overflow and
/// cancellation), and the capacity sticks to the buffer across laps.
///
/// The pool is an optimization, never an owner: a buffer that is not
/// released simply frees normally, and acquire() on an empty pool falls
/// back to a fresh vector. Nothing behavioural depends on pool state —
/// contents are only ever read inside [0, size()) and every acquired
/// buffer starts at size 0 — so recycling cannot perturb the deterministic
/// replay executions.
class BufferPool {
 public:
  /// Buffers kept in the freelist; beyond this, release() just frees.
  static constexpr std::size_t kMaxPooled = 1024;
  /// Buffers with more capacity than this are not retained (a rare giant
  /// message must not pin its footprint forever).
  static constexpr std::size_t kMaxRetainedCapacity = 64 * 1024;

  /// The calling thread's pool. The whole node stack is single-threaded
  /// (simulator and UDP loop alike), so this is one pool per world/process
  /// in practice.
  static BufferPool& local();

  /// An empty buffer, reusing a pooled allocation when one is available.
  Bytes acquire();
  /// Returns a buffer to the pool (cleared, capacity kept). Safe to call
  /// with moved-from or capacity-less vectors; they are dropped.
  void release(Bytes&& b);

  struct Stats {
    std::uint64_t acquired = 0;  ///< acquire() calls
    std::uint64_t reused = 0;    ///< acquires served from the freelist
    std::uint64_t released = 0;  ///< buffers accepted back
    std::uint64_t dropped = 0;   ///< releases declined (full pool / giant)
  };
  const Stats& stats() const { return stats_; }

  std::size_t size() const { return free_.size(); }

 private:
  std::vector<Bytes> free_;
  Stats stats_;
};

/// Serializer producing the bounded wire format used by every protocol
/// message. The format is explicit (little-endian fixed ints + length
/// prefixes) so that messages have a provable size bound and byte-level
/// fault injection exercises the same decode paths as real corruption.
///
/// The output buffer is acquired from the thread's BufferPool; take() hands
/// it to the caller (who releases it back once the message dies) and an
/// untaken buffer returns to the pool on destruction.
class Writer {
 public:
  Writer() : out_(BufferPool::local().acquire()) {}
  ~Writer() { BufferPool::local().release(std::move(out_)); }
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Pre-allocates room for `n` more bytes. Hot encoders (frames, bundles,
  /// transport envelopes) know their size up front; reserving once replaces
  /// the per-field geometric growth of the output vector.
  void reserve(std::size_t n) { out_.reserve(out_.size() + n); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void boolean(bool v);
  void node_id(NodeId v) { u32(v); }
  /// Length-prefixed id set (u16 count).
  void id_set(const IdSet& s);
  /// Length-prefixed raw bytes (u32 count).
  void bytes(const Bytes& b);
  void str(const std::string& s);

  /// Appends the fnv1a32 digest of everything written so far. Must be the
  /// last write; the matching decoder reads the digest as its final u32
  /// field and re-hashes the preceding bytes.
  void seal() { u32(fnv1a32(out_.data(), out_.size())); }

  const Bytes& data() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Deserializer. Decoding arbitrary (possibly corrupted) byte strings must
/// never crash: every accessor reports failure through ok() and returns a
/// default value after the first malformed field. Callers check ok() once at
/// the end of a message decode.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  bool boolean();
  NodeId node_id() { return u32(); }
  IdSet id_set();
  Bytes bytes();
  std::string str();

  /// True iff no read ran past the buffer or hit a malformed field.
  bool ok() const { return ok_; }
  /// True iff the whole buffer was consumed (strict decoders require this).
  bool exhausted() const { return pos_ == data_.size(); }

  /// Caps accepted collection sizes; corrupted length prefixes otherwise
  /// cause pathological allocations.
  static constexpr std::size_t kMaxElements = 1 << 16;

 private:
  bool take(std::size_t n);

  const Bytes& data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ssr::wire
