// MWMR shared-memory emulation (paper §4.3, end): multiple writers and
// readers use two-phase quorum operations with counter-scheme tags; the
// register contents survive a delicate reconfiguration.
//
// Build & run:   ./build/examples/shared_memory
#include <cstdio>
#include <string>

#include "harness/world.hpp"

using namespace ssr;

namespace {
bool write_reg(harness::World& w, NodeId id, const std::string& name,
               const std::string& value) {
  for (int attempt = 0; attempt < 30; ++attempt) {
    bool done = false, ok = false;
    if (w.node(id).registers().write(
            name, wire::Bytes(value.begin(), value.end()),
            [&](bool success, counter::Counter) {
              ok = success;
              done = true;
            })) {
      const SimTime deadline = w.scheduler().now() + 60 * kSec;
      while (!done && w.scheduler().now() < deadline) w.run_for(5 * kMsec);
      if (done && ok) return true;
    }
    w.run_for(5 * kSec);
  }
  return false;
}

std::string read_reg(harness::World& w, NodeId id, const std::string& name) {
  for (int attempt = 0; attempt < 30; ++attempt) {
    bool done = false, ok = false;
    std::string out;
    if (w.node(id).registers().read(
            name, [&](bool success, const wire::Bytes& v, counter::Counter) {
              ok = success;
              out.assign(v.begin(), v.end());
              done = true;
            })) {
      const SimTime deadline = w.scheduler().now() + 60 * kSec;
      while (!done && w.scheduler().now() < deadline) w.run_for(5 * kMsec);
      if (done && ok) return out;
    }
    w.run_for(5 * kSec);
  }
  return "(read failed)";
}
}  // namespace

int main() {
  harness::WorldConfig cfg;
  cfg.seed = 55;
  cfg.node.enable_vs = false;
  harness::World w(cfg);
  for (NodeId id = 1; id <= 4; ++id) w.add_node(id);
  if (!w.run_until_converged(180 * kSec)) return 1;
  w.run_for(60 * kSec);
  std::printf("Configuration: %s\n\n", w.common_config()->to_string().c_str());

  std::printf("p1 writes inbox := 'hello'...\n");
  if (!write_reg(w, 1, "inbox", "hello")) return 1;
  std::printf("p3 reads inbox  -> '%s'\n", read_reg(w, 3, "inbox").c_str());

  std::printf("p2 overwrites inbox := 'world' (last write wins)...\n");
  if (!write_reg(w, 2, "inbox", "world")) return 1;
  std::printf("p4 reads inbox  -> '%s'\n\n", read_reg(w, 4, "inbox").c_str());

  std::printf("Delicate reconfiguration to {1,2,3} while the register lives...\n");
  w.node(1).recsa().estab(IdSet{1, 2, 3});
  if (!w.run_until_converged(300 * kSec)) return 1;
  w.run_for(60 * kSec);
  std::printf("New configuration: %s\n", w.common_config()->to_string().c_str());
  std::printf("p4 (now a non-member) reads inbox -> '%s'\n",
              read_reg(w, 4, "inbox").c_str());

  std::printf("p4 writes inbox := 'post-reconfig' through the new quorum...\n");
  if (!write_reg(w, 4, "inbox", "post-reconfig")) return 1;
  std::printf("p1 reads inbox  -> '%s'\n", read_reg(w, 1, "inbox").c_str());
  std::printf("\nDone.\n");
  return 0;
}
