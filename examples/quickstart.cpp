// Quickstart: boot a five-processor system, watch it converge to a common
// quorum configuration, then replace the configuration delicately and
// survive a transient fault.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "harness/fault_injector.hpp"
#include "harness/world.hpp"

using namespace ssr;

namespace {
void print_state(harness::World& w, const char* phase) {
  std::printf("\n-- %s (t = %.2fs) --\n", phase,
              static_cast<double>(w.scheduler().now()) / kSec);
  for (NodeId id : w.alive()) {
    auto& n = w.node(id);
    std::printf("  p%u: config=%s %s%s\n", id,
                n.recsa().get_config().to_string().c_str(),
                n.recsa().is_participant() ? "participant" : "joiner",
                n.recsa().no_reco() ? "" : " (reconfiguring)");
  }
}
}  // namespace

int main() {
  harness::WorldConfig cfg;
  cfg.seed = 2016;  // MIDDLEWARE '16
  harness::World w(cfg);

  std::printf("Booting processors p1..p5 with empty state...\n");
  for (NodeId id = 1; id <= 5; ++id) w.add_node(id);

  // 1. Bootstrap: from the all-joiner state (a "complete collapse" in the
  //    paper's terms) brute-force stabilization installs config = FD set.
  auto t = w.run_until_converged(120 * kSec);
  if (!t) {
    std::printf("bootstrap failed\n");
    return 1;
  }
  std::printf("Converged after %.2fs of virtual time.\n",
              static_cast<double>(*t) / kSec);
  print_state(w, "after bootstrap");

  // 2. Delicate replacement: ask recSA to install {1,2,3} (paper Fig. 2
  //    automaton: select one proposal, install it, return to monitoring).
  std::printf("\np1 requests estab({1,2,3})...\n");
  w.node(1).recsa().estab(IdSet{1, 2, 3});
  w.run_until_converged(120 * kSec);
  print_state(w, "after delicate replacement");

  // 3. Transient fault: arbitrary recSA state at every node plus garbage in
  //    every channel. Self-stabilization (Theorem 3.15) recovers a
  //    conflict-free configuration without operator action.
  std::printf("\nInjecting a transient fault (arbitrary state + channel garbage)...\n");
  harness::FaultInjector fi(w, 99);
  fi.corrupt_all_recsa();
  fi.fill_channels_with_garbage(3);
  t = w.run_until_converged(400 * kSec);
  if (!t) {
    std::printf("recovery failed\n");
    return 1;
  }
  std::printf("Recovered after %.2fs.\n", static_cast<double>(*t) / kSec);
  print_state(w, "after recovery");

  std::printf("\nDone: the system is conflict-free; every active processor\n"
              "agrees on %s.\n",
              w.common_config()->to_string().c_str());
  return 0;
}
