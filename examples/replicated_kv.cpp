// Replicated key–value store on the virtually synchronous SMR service
// (paper §4.3): clients submit commands through the fetch() interface, the
// view coordinator batches them into multicast rounds, and every replica
// applies the same sequence. The example then crashes the coordinator and
// shows that the store survives with a new view.
//
// Build & run:   ./build/examples/replicated_kv
#include <cstdio>
#include <deque>

#include "harness/world.hpp"

using namespace ssr;

namespace {
std::map<NodeId, std::deque<wire::Bytes>> g_pending;

void attach_workload(harness::World& w, NodeId id) {
  w.node(id).set_fetch([id]() -> std::optional<wire::Bytes> {
    auto& q = g_pending[id];
    if (q.empty()) return std::nullopt;
    wire::Bytes cmd = q.front();
    q.pop_front();
    return cmd;
  });
}

const vs::KvStateMachine& kv(harness::World& w, NodeId id) {
  return static_cast<const vs::KvStateMachine&>(
      const_cast<const vs::StateMachine&>(w.node(id).vs()->state_machine()));
}

void print_replicas(harness::World& w) {
  for (NodeId id : w.alive()) {
    const auto& data = kv(w, id).data();
    std::printf("  p%u (view %s, digest %016llx): {", id,
                w.node(id).vs()->view().set.to_string().c_str(),
                static_cast<unsigned long long>(kv(w, id).digest()));
    bool first = true;
    for (const auto& [k, v] : data) {
      std::printf("%s%s=%s", first ? "" : ", ", k.c_str(), v.c_str());
      first = false;
    }
    std::printf("}\n");
  }
}
}  // namespace

int main() {
  harness::WorldConfig cfg;
  cfg.seed = 42;
  harness::World w(cfg);
  for (NodeId id = 1; id <= 4; ++id) w.add_node(id);
  for (NodeId id = 1; id <= 4; ++id) attach_workload(w, id);

  if (!w.run_until_converged(180 * kSec) ||
      !w.run_until_vs_stable(600 * kSec)) {
    std::printf("bootstrap failed\n");
    return 1;
  }
  const NodeId crd = w.node(1).vs()->coordinator();
  std::printf("View established; coordinator is p%u.\n", crd);

  std::printf("\nSubmitting commands from every node...\n");
  g_pending[1].push_back(vs::KvStateMachine::set_cmd("user:alice", "42"));
  g_pending[2].push_back(vs::KvStateMachine::set_cmd("user:bob", "7"));
  g_pending[3].push_back(vs::KvStateMachine::set_cmd("topic", "reconfig"));
  g_pending[4].push_back(vs::KvStateMachine::set_cmd("paper", "middleware16"));
  w.run_for(90 * kSec);
  print_replicas(w);

  std::printf("\nCrashing the coordinator p%u...\n", crd);
  w.crash(crd);
  // Wait for a *new* view that excludes the crashed coordinator (right
  // after the crash the old view still looks stable to the survivors).
  const SimTime deadline = w.scheduler().now() + 900 * kSec;
  bool new_view = false;
  while (!new_view && w.scheduler().now() < deadline) {
    w.run_for(50 * kMsec);
    new_view = w.vs_stable() &&
               !w.node(*w.alive().begin()).vs()->view().set.contains(crd);
  }
  if (!new_view) {
    std::printf("no new view installed\n");
    return 1;
  }
  NodeId survivor = *w.alive().begin();
  std::printf("New view installed; coordinator is p%u.\n",
              w.node(survivor).vs()->coordinator());

  std::printf("\nState after failover (all replicas identical, nothing lost):\n");
  g_pending[survivor].push_back(
      vs::KvStateMachine::set_cmd("post-crash", "still-running"));
  w.run_for(90 * kSec);
  print_replicas(w);

  // Consistency check across survivors.
  std::uint64_t digest = kv(w, survivor).digest();
  for (NodeId id : w.alive()) {
    if (kv(w, id).digest() != digest) {
      std::printf("DIVERGENCE at p%u!\n", id);
      return 1;
    }
  }
  std::printf("\nAll replicas agree. Done.\n");
  return 0;
}
