// Distributed ticket dispenser built on the self-stabilizing counter scheme
// (paper §4.2): every processor — configuration members and plain
// participants alike — draws strictly increasing tickets. The example also
// exhausts an epoch on purpose (tiny sequence-number bound) to show the
// labeling scheme rolling over to a fresh epoch label.
//
// Build & run:   ./build/examples/ticket_counter
#include <cstdio>
#include <vector>

#include "harness/world.hpp"

using namespace ssr;

namespace {
std::optional<counter::Counter> draw_ticket(harness::World& w, NodeId id) {
  std::optional<counter::Counter> ticket;
  bool done = false;
  if (!w.node(id).increment().begin([&](std::optional<counter::Counter> c) {
        ticket = c;
        done = true;
      })) {
    return std::nullopt;
  }
  const SimTime deadline = w.scheduler().now() + 60 * kSec;
  while (!done && w.scheduler().now() < deadline) w.run_for(5 * kMsec);
  return ticket;
}

counter::Counter draw_ticket_retry(harness::World& w, NodeId id) {
  for (int attempt = 0;; ++attempt) {
    auto t = draw_ticket(w, id);
    if (t) return *t;
    w.run_for(5 * kSec);  // ⊥: epoch rollover or reconfiguration — retry
    if (attempt > 50) {
      std::printf("ticket draw stuck\n");
      std::exit(1);
    }
  }
}
}  // namespace

int main() {
  harness::WorldConfig cfg;
  cfg.seed = 7;
  cfg.node.enable_vs = false;          // the counter stack alone
  cfg.node.counter.exhaust_bound = 8;  // tiny epoch: force rollovers
  harness::World w(cfg);
  for (NodeId id = 1; id <= 3; ++id) w.add_node(id);
  if (!w.run_until_converged(180 * kSec)) {
    std::printf("bootstrap failed\n");
    return 1;
  }
  w.run_for(60 * kSec);  // let the epoch labels converge

  // A non-member participant joins and draws tickets through Alg. 4.5.
  w.add_node(4);
  w.run_for(120 * kSec);
  std::printf("Config is %s; p4 joined as a non-member participant.\n\n",
              w.common_config()->to_string().c_str());

  std::vector<counter::Counter> tickets;
  for (int i = 0; i < 20; ++i) {
    const NodeId who = 1 + (i % 4);  // includes the non-member p4
    counter::Counter t = draw_ticket_retry(w, who);
    const bool fresh_epoch =
        !tickets.empty() && !(tickets.back().lbl == t.lbl);
    std::printf("ticket %2d  by p%u: epoch (creator=%u, sting=%u) seqn=%llu%s\n",
                i + 1, who, t.lbl.creator, t.lbl.sting,
                static_cast<unsigned long long>(t.seqn),
                fresh_epoch ? "   <-- new epoch label" : "");
    tickets.push_back(t);
  }

  // Verify the global strict order of the dispensed tickets.
  for (std::size_t i = 1; i < tickets.size(); ++i) {
    if (!counter::Counter::ct_less(tickets[i - 1], tickets[i])) {
      std::printf("ORDER VIOLATION at ticket %zu!\n", i);
      return 1;
    }
  }
  std::printf("\nAll %zu tickets strictly increasing across %s.\n",
              tickets.size(), "epoch rollovers");
  return 0;
}
