// Churn and disaster recovery: processors continuously join and crash while
// the reconfiguration scheme keeps one conflict-free configuration alive;
// finally a majority of the configuration collapses at once and recMA's
// brute trigger re-forms the system from the survivors (paper §3.2).
//
// Build & run:   ./build/examples/churn_recovery
#include <cstdio>

#include "harness/monitors.hpp"
#include "harness/world.hpp"

using namespace ssr;

namespace {
void report(harness::World& w, const char* what) {
  auto c = w.common_config();
  std::printf("%-34s t=%7.2fs alive=%-18s config=%s\n", what,
              static_cast<double>(w.scheduler().now()) / kSec,
              w.alive().to_string().c_str(),
              c ? c->to_string().c_str() : "(diverged)");
}

bool await_config(harness::World& w, const IdSet& expect, SimTime budget) {
  const SimTime deadline = w.scheduler().now() + budget;
  while (w.scheduler().now() < deadline) {
    auto c = w.common_config();
    if (c && *c == expect) return true;
    w.run_for(50 * kMsec);
  }
  return false;
}
}  // namespace

int main() {
  harness::WorldConfig cfg;
  cfg.seed = 1234;
  cfg.node.enable_vs = false;
  harness::World w(cfg);
  harness::ConfigHistoryMonitor history;

  for (NodeId id = 1; id <= 5; ++id) w.add_node(id);
  // Aggressive application policy: advise reconfiguration as soon as any
  // single member is suspected (the paper's evalConf() is app-defined).
  for (NodeId id = 1; id <= 5; ++id) {
    auto& n = w.node(id);
    n.set_eval_conf([&n](const IdSet& cfg) {
      return cfg.intersection_size(n.failure_detector().trusted()) < cfg.size();
    });
  }
  if (!w.run_until_converged(180 * kSec)) return 1;
  history.attach(w);
  report(w, "bootstrap");

  // Rolling churn: one join and one crash per wave.
  NodeId next_id = 6;
  IdSet crash_order{1, 2, 3};
  for (NodeId victim : crash_order) {
    auto& fresh = w.add_node(next_id);
    fresh.set_eval_conf([&fresh](const IdSet& cfg) {
      return cfg.intersection_size(fresh.failure_detector().trusted()) <
             cfg.size();
    });
    w.run_for(120 * kSec);  // the joiner becomes a participant
    w.crash(victim);
    // recMA notices the failed member (quarter policy / majority check)
    // and replaces the configuration with the current participants.
    const SimTime deadline = w.scheduler().now() + 600 * kSec;
    while (w.scheduler().now() < deadline) {
      auto c = w.common_config();
      if (c && !c->contains(victim) && c->contains(next_id)) break;
      w.run_for(100 * kMsec);
    }
    char label[64];
    std::snprintf(label, sizeof label, "join p%u / crash p%u", next_id, victim);
    report(w, label);
    ++next_id;
  }

  // Disaster: crash a majority of the current configuration at once.
  auto cfg_now = w.common_config();
  if (!cfg_now) return 1;
  std::printf("\nCrashing a majority of %s at once...\n",
              cfg_now->to_string().c_str());
  std::size_t to_kill = cfg_now->size() / 2 + 1;
  for (NodeId id : *cfg_now) {
    if (to_kill == 0) break;
    if (w.alive().contains(id)) {
      w.crash(id);
      --to_kill;
    }
  }
  if (!await_config(w, w.alive(), 900 * kSec)) {
    report(w, "recovery FAILED");
    return 1;
  }
  report(w, "after majority collapse");

  std::printf("\n%zu configuration change events were observed; the system\n"
              "ends conflict-free with all survivors participating.\n",
              history.events().size());
  return 0;
}
