// scenario_runner — run named scenarios from the library against either
// execution backend.
//
//   scenario_runner --list                 enumerate scenarios
//   scenario_runner --run NAME [--run NAME2 ...] [--seed N]
//   scenario_runner --all [--seed N]       run every scenario
//   scenario_runner --spec FILE            run a spec_io file (the fuzzer's
//                                          counterexample format)
//   scenario_runner --adversary            force worst-case delivery
//                                          scheduling on the selected specs
//   scenario_runner --trace K              also dump the first K trace events
//
// Backend selection:
//   --backend sim            deterministic in-process simulator (default)
//   --backend process        one real ssr_node OS process per node over
//                            localhost UDP; requires --node-bin
//   --node-bin PATH          path to the ssr_node binary
//   --time-scale X           wall seconds per simulated second (default .05)
//   --work-dir DIR           scratch/log directory (default: mkdtemp)
//   --keep-logs              keep the scratch directory even on success
//
// Trace tooling (simulator backend, single --run):
//   --record FILE            save the trace event stream + hash to FILE
//   --diff FILE              re-run and report the first event where the
//                            current trace diverges from the recorded one
//
// Parallel sweeps (simulator backend):
//   --sweep                  run the selected scenarios as a (spec, seed)
//                            job matrix on a worker pool; results print in
//                            submission order and are byte-identical to a
//                            serial run at any --jobs
//   --jobs N                 worker threads (default 1)
//   --seeds A..B             inclusive seed range (default: --seed alone)
//   --record-dir DIR         save one trace file per job into DIR
//
// Exit status: 0 when every run met its awaits with zero invariant
// violations (and, under --diff, the traces match), 1 otherwise (2 on
// usage errors).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec_io.hpp"
#include "scenario/sweep.hpp"
#include "shard/sharded_scenario.hpp"
#include "shard/sharded_sim.hpp"
#ifdef __unix__
#include "scenario/process_runner.hpp"
#include "shard/sharded_process.hpp"
#endif

namespace {

using namespace ssr;
using namespace ssr::scenario;

struct CliOptions {
  bool list = false;
  bool all = false;
  std::vector<std::string> names;
  std::vector<std::string> spec_files;
  bool adversary = false;
  bool sharded = false;
  std::uint64_t seed = 1;
  std::size_t trace_lines = 0;
  std::string backend = "sim";
  std::string node_bin;
  double time_scale = 0.05;
  std::string work_dir;
  bool keep_logs = false;
  std::string record_path;
  std::string diff_path;
  bool sweep = false;
  std::size_t jobs = 1;
  std::uint64_t seed_first = 0;
  std::uint64_t seed_last = 0;
  bool seeds_set = false;
  std::string record_dir;
};

void list_scenarios() {
  for (const auto& s : library()) {
    std::printf("%-26s %zu nodes%s  %s\n", s.name.c_str(), s.initial_nodes,
                s.enable_vs ? " +vs" : "    ", s.description.c_str());
  }
}

void list_sharded_scenarios() {
  for (const auto& s : shard::sharded_library()) {
    std::printf("%-26s %u shards x %zu nodes  %s\n", s.name.c_str(), s.shards,
                s.nodes_per_shard, s.description.c_str());
  }
}

/// Runs one sharded spec under the selected backend; prints the aggregate
/// summary and one line per shard.
bool run_one_sharded(const shard::ShardedSpec& spec, const CliOptions& cli) {
  shard::ShardedResult r;
  if (cli.backend == "process") {
#ifdef __unix__
    ProcessBackendOptions opt;
    opt.node_binary = cli.node_bin;
    opt.work_dir =
        cli.work_dir.empty() ? "" : cli.work_dir + "/" + spec.name;
    opt.keep_dir = cli.keep_logs;
    opt.time_scale = cli.time_scale;
    opt.seed = cli.seed;
    r = shard::run_sharded_process(spec, opt);
#else
    std::fprintf(stderr, "backend 'process' is not available on this "
                         "platform\n");
    return false;
#endif
  } else {
    r = shard::run_sharded_sim(spec, cli.seed);
  }
  std::printf("%s\n", r.summary().c_str());
  for (const ScenarioResult& pr : r.per_shard) {
    std::printf("  %s\n", pr.summary().c_str());
  }
  return r.ok;
}

std::unique_ptr<ScenarioBackend> make_backend(const ScenarioSpec& spec,
                                              const CliOptions& cli) {
  if (cli.backend == "process") {
#ifdef __unix__
    ProcessBackendOptions opt;
    opt.node_binary = cli.node_bin;
    // One subdirectory per scenario so multi-run invocations don't clobber
    // each other's peer maps and logs.
    opt.work_dir =
        cli.work_dir.empty() ? "" : cli.work_dir + "/" + spec.name;
    opt.keep_dir = cli.keep_logs;
    opt.time_scale = cli.time_scale;
    opt.seed = cli.seed;
    return std::make_unique<ProcessRunner>(spec, std::move(opt));
#else
    return nullptr;
#endif
  }
  return std::make_unique<ScenarioRunner>(spec, cli.seed);
}

/// Runs one spec; prints the summary (and, under the process backend, where
/// the logs live when the run failed).
bool run_one(const ScenarioSpec& spec, const CliOptions& cli) {
  auto backend = make_backend(spec, cli);
  if (!backend) {
    std::fprintf(stderr, "backend '%s' is not available on this platform\n",
                 cli.backend.c_str());
    return false;
  }
  const ScenarioResult r = backend->run();
  std::printf("%s\n", r.summary().c_str());
  if (cli.trace_lines > 0) {
    std::printf("%s", backend->trace().dump(cli.trace_lines).c_str());
  }
#ifdef __unix__
  if (!r.ok && cli.backend == "process") {
    auto* pr = dynamic_cast<ProcessRunner*>(backend.get());
    if (pr != nullptr) {
      std::printf("  logs kept in %s\n", pr->work_dir().c_str());
    }
  }
#endif

  bool ok = r.ok;
  if (!cli.record_path.empty()) {
    std::ofstream out(cli.record_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", cli.record_path.c_str());
      return false;
    }
    backend->trace().save(out);
    std::printf("recorded %zu events to %s\n", r.trace_events,
                cli.record_path.c_str());
  }
  if (!cli.diff_path.empty()) {
    std::ifstream in(cli.diff_path);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", cli.diff_path.c_str());
      return false;
    }
    auto golden = TraceRecorder::load(in);
    if (!golden) {
      std::fprintf(stderr, "'%s' is not a recorded trace\n",
                   cli.diff_path.c_str());
      return false;
    }
    const TraceRecorder& current = backend->trace();
    const std::size_t n = std::min(golden->size(), current.size());
    std::size_t at = n;
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& g = (*golden)[i];
      const TraceEvent& c = current[i];
      if (g.when != c.when || g.node != c.node || g.kind != c.kind ||
          g.a != c.a || g.b != c.b) {
        at = i;
        break;
      }
    }
    if (at == n && golden->size() == current.size()) {
      std::printf("traces identical (%zu events)\n", current.size());
    } else if (at == n) {
      std::printf("traces diverge at event %zu: one stream ends "
                  "(recorded %zu events, current %zu)\n",
                  n, golden->size(), current.size());
      ok = false;
    } else {
      std::printf("traces diverge at event %zu:\n  recorded: %s\n"
                  "  current:  %s\n",
                  at, TraceRecorder::format_event((*golden)[at]).c_str(),
                  TraceRecorder::format_event(current[at]).c_str());
      ok = false;
    }
  }
  return ok;
}

///// --sweep mode: the selected scenarios × the seed range as one job matrix
/// on a SweepRunner worker pool. Output is in submission order — identical
/// text at --jobs=1 and --jobs=N (the CI equivalence check diffs the two).
bool run_sweep_mode(const std::vector<ScenarioSpec>& specs,
                    const CliOptions& cli) {
  SweepOptions opt;
  opt.jobs = cli.jobs;
  opt.record_dir = cli.record_dir;
  SweepRunner runner(opt);
  const std::uint64_t first = cli.seeds_set ? cli.seed_first : cli.seed;
  const std::uint64_t last = cli.seeds_set ? cli.seed_last : cli.seed;
  for (const ScenarioSpec& spec : specs) {
    runner.add_seed_range(spec, first, last);
  }
  SweepSummary s = runner.run();
  for (const ScenarioResult& r : s.results) {
    std::printf("%s\n", r.summary().c_str());
  }
  std::printf("%s, jobs=%zu\n", s.summary().c_str(), cli.jobs);
  return s.ok;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: scenario_runner --list\n"
      "       scenario_runner (--run NAME | --spec FILE)... | --all"
      "  [options]\n"
      "options:\n"
      "  --spec FILE       run a spec_io scenario file (the format fuzz\n"
      "                    counterexamples are saved in)\n"
      "  --adversary       force worst-case delivery scheduling on every\n"
      "                    selected spec (sim backend)\n"
      "  --sharded         use the multi-shard scenario library (K node\n"
      "                    fleets + client-side router; both backends)\n"
      "  --seed N          runner seed (default 1)\n"
      "  --trace K         dump the first K trace events\n"
      "  --backend B       sim (default) | process\n"
      "  --node-bin PATH   ssr_node binary (process backend)\n"
      "  --time-scale X    wall seconds per sim second (process backend)\n"
      "  --work-dir DIR    scratch/log dir (process backend)\n"
      "  --keep-logs       keep the scratch dir on success too\n"
      "  --record FILE     save the trace stream (single --run)\n"
      "  --diff FILE       compare against a recorded trace (single --run)\n"
      "  --sweep           run scenarios x seeds on a worker pool (sim)\n"
      "  --jobs N          sweep worker threads (default 1)\n"
      "  --seeds A..B      inclusive sweep seed range (default: --seed)\n"
      "  --record-dir DIR  save one trace file per sweep job into DIR\n");
  return 2;
}

/// Parses "A..B" (inclusive) or a single "A" into [first, last].
bool parse_seed_range(const std::string& s, std::uint64_t& first,
                      std::uint64_t& last) {
  const auto dots = s.find("..");
  if (dots == std::string::npos) {
    char* end = nullptr;
    first = last = std::strtoull(s.c_str(), &end, 10);
    return end != nullptr && *end == '\0' && !s.empty();
  }
  const std::string a = s.substr(0, dots);
  const std::string b = s.substr(dots + 2);
  if (a.empty() || b.empty()) return false;
  char* end_a = nullptr;
  char* end_b = nullptr;
  first = std::strtoull(a.c_str(), &end_a, 10);
  last = std::strtoull(b.c_str(), &end_b, 10);
  return *end_a == '\0' && *end_b == '\0' && first <= last;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  // Accept both "--flag value" and "--flag=value".
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }
  const int nargs = static_cast<int>(args.size());
  for (int i = 0; i < nargs; ++i) {
    const std::string& arg = args[i];
    if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--all") {
      cli.all = true;
    } else if (arg == "--sharded") {
      cli.sharded = true;
    } else if (arg == "--run" && i + 1 < nargs) {
      cli.names.push_back(args[++i]);
    } else if (arg == "--spec" && i + 1 < nargs) {
      cli.spec_files.push_back(args[++i]);
    } else if (arg == "--adversary") {
      cli.adversary = true;
    } else if (arg == "--seed" && i + 1 < nargs) {
      cli.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (arg == "--trace" && i + 1 < nargs) {
      cli.trace_lines = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (arg == "--backend" && i + 1 < nargs) {
      cli.backend = args[++i];
    } else if (arg == "--node-bin" && i + 1 < nargs) {
      cli.node_bin = args[++i];
    } else if (arg == "--time-scale" && i + 1 < nargs) {
      cli.time_scale = std::strtod(args[++i].c_str(), nullptr);
    } else if (arg == "--work-dir" && i + 1 < nargs) {
      cli.work_dir = args[++i];
    } else if (arg == "--keep-logs") {
      cli.keep_logs = true;
    } else if (arg == "--record" && i + 1 < nargs) {
      cli.record_path = args[++i];
    } else if (arg == "--diff" && i + 1 < nargs) {
      cli.diff_path = args[++i];
    } else if (arg == "--sweep") {
      cli.sweep = true;
    } else if (arg == "--jobs" && i + 1 < nargs) {
      cli.jobs = std::strtoull(args[++i].c_str(), nullptr, 10);
      if (cli.jobs == 0) cli.jobs = 1;
    } else if (arg == "--seeds" && i + 1 < nargs) {
      if (!parse_seed_range(args[++i], cli.seed_first, cli.seed_last)) {
        std::fprintf(stderr, "--seeds wants A..B (inclusive) or a single "
                             "seed, got '%s'\n", args[i].c_str());
        return 2;
      }
      cli.seeds_set = true;
    } else if (arg == "--record-dir" && i + 1 < nargs) {
      cli.record_dir = args[++i];
    } else {
      return usage();
    }
  }

  if (cli.backend != "sim" && cli.backend != "process") {
    std::fprintf(stderr, "unknown backend '%s'\n", cli.backend.c_str());
    return 2;
  }
  if (cli.backend == "process" && cli.node_bin.empty()) {
    std::fprintf(stderr, "--backend process requires --node-bin\n");
    return 2;
  }
  if ((!cli.record_path.empty() || !cli.diff_path.empty()) &&
      (cli.all || cli.names.size() + cli.spec_files.size() != 1)) {
    std::fprintf(stderr, "--record/--diff need exactly one --run/--spec\n");
    return 2;
  }
  if (cli.adversary && cli.backend != "sim") {
    // The worst-case delivery scheduler lives inside the simulated fabric;
    // real UDP offers no delivery-order hook.
    std::fprintf(stderr, "--adversary works on the sim backend only\n");
    return 2;
  }
  if (cli.sharded && (cli.adversary || !cli.spec_files.empty())) {
    std::fprintf(stderr, "--spec/--adversary do not apply to --sharded\n");
    return 2;
  }
  if ((!cli.record_path.empty() || !cli.diff_path.empty()) &&
      cli.backend != "sim") {
    // Process-backend timestamps are wall clock; a diff would always
    // diverge at event 0.
    std::fprintf(stderr,
                 "--record/--diff work on the deterministic sim backend\n");
    return 2;
  }
  if (cli.sharded &&
      (!cli.record_path.empty() || !cli.diff_path.empty())) {
    // A sharded run has one trace per shard, not one recordable stream.
    std::fprintf(stderr, "--record/--diff do not apply to --sharded runs\n");
    return 2;
  }
  if (cli.sweep) {
    if (cli.backend != "sim") {
      // The sweep's determinism contract (and its one-world-per-thread
      // isolation) is a simulator property; process fleets contend for
      // real OS resources.
      std::fprintf(stderr, "--sweep runs on the sim backend only\n");
      return 2;
    }
    if (cli.sharded || !cli.record_path.empty() || !cli.diff_path.empty() ||
        cli.trace_lines > 0) {
      std::fprintf(stderr,
                   "--sweep does not combine with --sharded/--record/--diff/"
                   "--trace (use --record-dir for per-job traces)\n");
      return 2;
    }
    if (!cli.all && cli.names.empty() && cli.spec_files.empty()) {
      std::fprintf(stderr,
                   "--sweep wants --all or at least one --run/--spec\n");
      return 2;
    }
    std::vector<ScenarioSpec> specs;
    if (cli.all) {
      specs = library();
    } else {
      for (const std::string& name : cli.names) {
        auto spec = find_scenario(name);
        if (!spec) {
          std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                       name.c_str());
          return 2;
        }
        specs.push_back(*spec);
      }
      for (const std::string& path : cli.spec_files) {
        auto spec = load_spec_file(path);
        if (!spec) {
          std::fprintf(stderr, "cannot load spec file '%s'\n", path.c_str());
          return 2;
        }
        specs.push_back(*spec);
      }
    }
    if (cli.adversary) {
      for (ScenarioSpec& spec : specs) spec.adversarial = true;
    }
    return run_sweep_mode(specs, cli) ? 0 : 1;
  }
  if (cli.jobs > 1 || cli.seeds_set || !cli.record_dir.empty()) {
    std::fprintf(stderr,
                 "--jobs/--seeds/--record-dir only apply to --sweep\n");
    return 2;
  }

  if (cli.list) {
    if (cli.sharded) {
      list_sharded_scenarios();
    } else {
      list_scenarios();
    }
    return 0;
  }
  if (cli.all) {
    bool ok = true;
    if (cli.sharded) {
      for (const auto& s : shard::sharded_library()) {
        ok = run_one_sharded(s, cli) && ok;
      }
    } else {
      for (const auto& s : library()) {
        ScenarioSpec spec = s;
        if (cli.adversary) spec.adversarial = true;
        ok = run_one(spec, cli) && ok;
      }
    }
    return ok ? 0 : 1;
  }
  if (!cli.names.empty() || !cli.spec_files.empty()) {
    bool ok = true;
    for (const std::string& path : cli.spec_files) {
      auto spec = load_spec_file(path);
      if (!spec) {
        std::fprintf(stderr, "cannot load spec file '%s'\n", path.c_str());
        return 2;
      }
      if (cli.adversary) spec->adversarial = true;
      ok = run_one(*spec, cli) && ok;
    }
    for (const std::string& name : cli.names) {
      if (cli.sharded) {
        auto spec = shard::find_sharded_scenario(name);
        if (!spec) {
          std::fprintf(stderr,
                       "unknown sharded scenario '%s' (try --sharded "
                       "--list)\n",
                       name.c_str());
          return 2;
        }
        ok = run_one_sharded(*spec, cli) && ok;
        continue;
      }
      auto spec = find_scenario(name);
      if (!spec) {
        std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                     name.c_str());
        return 2;
      }
      if (cli.adversary) spec->adversarial = true;
      ok = run_one(*spec, cli) && ok;
    }
    return ok ? 0 : 1;
  }
  return usage();
}
