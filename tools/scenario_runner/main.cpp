// scenario_runner — run named scenarios from the library against the
// deterministic simulator.
//
//   scenario_runner --list                 enumerate scenarios
//   scenario_runner --run NAME [--seed N]  run one scenario
//   scenario_runner --all [--seed N]       run every scenario
//   scenario_runner --trace K              also dump the first K trace events
//
// Exit status: 0 when every run met its awaits with zero invariant
// violations, 1 otherwise (2 on usage errors).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/library.hpp"
#include "scenario/runner.hpp"

namespace {

void list_scenarios() {
  for (const auto& s : ssr::scenario::library()) {
    std::printf("%-26s %zu nodes%s  %s\n", s.name.c_str(), s.initial_nodes,
                s.enable_vs ? " +vs" : "    ", s.description.c_str());
  }
}

bool run_one(const ssr::scenario::ScenarioSpec& spec, std::uint64_t seed,
             std::size_t trace_lines) {
  ssr::scenario::ScenarioRunner runner(spec, seed);
  ssr::scenario::ScenarioResult r = runner.run();
  std::printf("%s\n", r.summary().c_str());
  if (trace_lines > 0) {
    std::printf("%s", runner.trace().dump(trace_lines).c_str());
  }
  return r.ok;
}

int usage() {
  std::fprintf(stderr,
               "usage: scenario_runner --list\n"
               "       scenario_runner --run NAME [--seed N] [--trace K]\n"
               "       scenario_runner --all [--seed N] [--trace K]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool list = false;
  bool all = false;
  std::string name;
  std::uint64_t seed = 1;
  std::size_t trace_lines = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--run" && i + 1 < argc) {
      name = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_lines = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return usage();
    }
  }

  if (list) {
    list_scenarios();
    return 0;
  }
  if (all) {
    bool ok = true;
    for (const auto& s : ssr::scenario::library()) {
      ok = run_one(s, seed, trace_lines) && ok;
    }
    return ok ? 0 : 1;
  }
  if (!name.empty()) {
    auto spec = ssr::scenario::find_scenario(name);
    if (!spec) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   name.c_str());
      return 2;
    }
    return run_one(*spec, seed, trace_lines) ? 0 : 1;
  }
  return usage();
}
