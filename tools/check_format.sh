#!/usr/bin/env bash
# Verifies the tree is clang-format clean against the checked-in
# .clang-format. Skips gracefully (exit 0 with a notice) when clang-format
# is not installed, so local builds on minimal images are not blocked; CI
# installs clang-format and gets the real check.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

fmt="${CLANG_FORMAT:-clang-format}"
if ! command -v "$fmt" >/dev/null 2>&1; then
  echo "check_format: $fmt not found; skipping (install clang-format to run)"
  exit 0
fi

mapfile -t files < <(git ls-files \
  'src/**/*.cpp' 'src/**/*.hpp' \
  'tests/**/*.cpp' 'tests/**/*.hpp' \
  'bench/*.cpp' 'examples/*.cpp' \
  'tools/scenario_runner/*.cpp' 'tools/ssr_node/*.cpp')

bad=0
for f in "${files[@]}"; do
  if ! "$fmt" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "check_format: needs formatting: $f"
    bad=1
  fi
done

if [ "$bad" -ne 0 ]; then
  echo "check_format: run '$fmt -i' on the files above" >&2
  exit 1
fi
echo "check_format: OK (${#files[@]} files)"
