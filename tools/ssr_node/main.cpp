// ssr_node — one full-stack protocol node over real UDP sockets.
//
//   ssr_node --id N --peers FILE [--seconds S] [--increments K]
//            [--tick-us T] [--retransmit-us T] [--ack-threshold A] [--vs]
//            [--seed R] [--aggressive] [--port-file FILE]
//
// FILE holds one "id host port" triple per line ('#' starts a comment);
// the entry matching --id is the local bind address. Port 0 anywhere means
// "not known yet": the local entry binds an OS-assigned port, and foreign
// port-0 entries make the daemon re-read the file periodically until every
// port is known — so a whole cohort can bind port 0, report through
// --port-file, and find each other once the launcher rewrites the map.
//
// The daemon boots the node against every other entry and prints progress
// markers to stdout:
//
//   SSR_NODE_START id=1 port=921 control=922  ports (also in --port-file)
//   CONVERGED t=2.1s config={1,2,3}           noReco + common proper config
//   INCREMENT_OK seqn=4                       one counter increment done
//   SSR_NODE_DONE                             all goals met (stays up)
//
// Exit status: 0 when the goals (convergence, plus --increments completed
// operations) were met — whether the deadline ran out or SIGTERM/SIGINT
// arrived first — and 3 when they were not.
//
// A control socket (UDP on 127.0.0.1, OS-assigned port) accepts the
// scenario::ctl command set — STATUS snapshots, peer-filter partitions,
// workload injection, peer-map reload, and transient-fault injection. The
// process scenario backend drives whole fault scripts through it; see
// src/scenario/control.hpp for the command reference.
//
// This is the real-deployment counterpart of harness::World: the identical
// node stack, parameterized only by the transport underneath it.

#include <arpa/inet.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "label/label.hpp"
#include "net/udp_transport.hpp"
#include "node/node.hpp"
#include "scenario/control.hpp"
#include "scenario/trace.hpp"
#include "util/wallclock.hpp"

namespace {

using namespace ssr;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  NodeId id = kNoNode;
  std::string peers_file;
  std::string port_file;
  std::uint64_t seconds = 60;
  std::uint64_t increments = 0;
  std::uint64_t tick_us = 5000;
  std::uint64_t retransmit_us = 2000;
  std::size_t ack_threshold = 3;
  std::uint64_t seed = 0;  // 0 = derive from id
  std::uint64_t exhaust_bound = 0;  // 0 = keep the counter default
  std::uint32_t shard = 0;  // envelope shard tag (sharded deployments)
  std::size_t batch = 16;   // sendmmsg/recvmmsg ring depth (1 = unbatched)
  bool enable_vs = false;
  bool aggressive = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: ssr_node --id N --peers FILE [--seconds S=60]\n"
               "                [--increments K=0] [--tick-us T=5000]\n"
               "                [--retransmit-us T=2000] [--ack-threshold A=3]"
               " [--vs]\n"
               "                [--seed R] [--aggressive] [--port-file FILE]"
               " [--batch N=16]\n");
  return 2;
}

std::string format_ids(const IdSet& ids) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (NodeId id : ids) {
    if (!first) os << ',';
    os << id;
    first = false;
  }
  os << '}';
  return os.str();
}

/// One parse of the peers file; nullopt when unreadable. Lines that do not
/// parse as "id host port" are skipped (comments, blanks).
std::optional<std::map<NodeId, net::UdpEndpoint>> read_peers(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open peers file '" + path + "'";
    return std::nullopt;
  }
  std::map<NodeId, net::UdpEndpoint> out;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::uint32_t id = 0;
    net::UdpEndpoint ep;
    if (!(ls >> id >> ep.host >> ep.port)) continue;  // blank / comment
    in_addr probe{};
    if (::inet_pton(AF_INET, ep.host.c_str(), &probe) != 1) {
      *error = "peers file '" + path + "': host '" + ep.host +
               "' is not a numeric IPv4 address";
      return std::nullopt;
    }
    out[id] = ep;
  }
  return out;
}

/// The daemon: node stack + control server + workload engines, driven by
/// one single-threaded loop.
class Daemon {
 public:
  Daemon(const Options& opt, net::UdpTransportConfig tcfg, IdSet all_ids)
      : opt_(opt),
        all_ids_(std::move(all_ids)),
        transport_(std::move(tcfg)),
        rng_(opt.seed != 0 ? opt.seed : 0x55D9 + opt.id),
        corrupt_rng_(rng_.fork()) {
    for (const auto& [id, ep] : transport_.config().peers) {
      if (id != opt_.id && ep.port == 0) unresolved_.insert(id);
    }

    node::NodeConfig ncfg;
    ncfg.enable_vs = opt_.enable_vs;
    ncfg.tick_period = opt_.tick_us;
    ncfg.mux.link.retransmit_period = opt_.retransmit_us;
    // Real sockets have no fixed channel capacity; the threshold trades
    // round (heartbeat) rate against duplicate tolerance.
    ncfg.mux.link.ack_threshold = opt_.ack_threshold;
    ncfg.mux.link.clean_threshold = opt_.ack_threshold;
    if (opt_.exhaust_bound != 0) {
      ncfg.counter.exhaust_bound = opt_.exhaust_bound;
    }
    node_ = std::make_unique<node::Node>(transport_, opt_.id, ncfg,
                                         rng_.fork());
    if (opt_.aggressive) {
      // Replace-on-any-suspect prediction policy (the scenario library's
      // aggressive_policy flag).
      node_->set_eval_conf([this](const IdSet& cfg) {
        return cfg.intersection_size(
                   node_->failure_detector().trusted()) < cfg.size();
      });
    }
    node_->recsa().add_config_change_handler(
        [this](const reconf::ConfigValue&) { ++config_changes_; });
  }

  int run() {
    IdSet seed_peers = all_ids_;
    seed_peers.erase(opt_.id);
    node_->start(seed_peers);
    std::printf("SSR_NODE_START id=%u shard=%u port=%u control=%u peers=%s\n",
                opt_.id, opt_.shard, transport_.local_port(), control_.port(),
                format_ids(seed_peers).c_str());
    std::fflush(stdout);
    if (!opt_.port_file.empty()) {
      // Written atomically (rename) so a half-written file is never read.
      const std::string tmp = opt_.port_file + ".tmp";
      if (std::ofstream pf(tmp); pf) {
        pf << transport_.local_port() << ' ' << control_.port() << '\n';
      }
      std::rename(tmp.c_str(), opt_.port_file.c_str());
    }

    const SimTime deadline = opt_.seconds * kSec;
    pending_increments_ = 0;  // --increments waits for convergence below
    SimTime next_status = 5 * kSec;
    SimTime next_peer_poll = 0;

    while (!g_stop && transport_.now() < deadline) {
      transport_.run_for(20 * kMsec);
      control_.poll([this](const scenario::ctl::Request& req) {
        return handle_control(req);
      });
      if (!unresolved_.empty() && transport_.now() >= next_peer_poll) {
        next_peer_poll = transport_.now() + 200 * kMsec;
        reload_peers();
      }
      drive_workload();

      const double t = static_cast<double>(transport_.now()) / kSec;
      const reconf::ConfigValue cfg = node_->recsa().get_config();
      if (!converged_ && node_->recsa().no_reco() && cfg.is_proper() &&
          cfg.ids() == all_ids_) {
        converged_ = true;
        pending_increments_ += opt_.increments;
        std::printf("CONVERGED t=%.1fs config=%s\n", t,
                    format_ids(cfg.ids()).c_str());
        std::fflush(stdout);
      }
      if (converged_ && increments_done_ >= opt_.increments &&
          !done_printed_) {
        done_printed_ = true;
        std::printf("SSR_NODE_DONE\n");
        std::fflush(stdout);
      }
      if (transport_.now() >= next_status) {
        next_status += 5 * kSec;
        std::printf(
            "STATUS t=%.1fs trusted=%zu config=%s sent=%llu recv=%llu\n", t,
            node_->failure_detector().trusted().size(),
            format_ids(cfg.ids()).c_str(),
            static_cast<unsigned long long>(transport_.stats().sent),
            static_cast<unsigned long long>(transport_.stats().received));
        std::fflush(stdout);
      }
    }

    std::printf("SSR_NODE_EXIT ok=%d\n", done_printed_ ? 1 : 0);
    std::fflush(stdout);
    return done_printed_ ? 0 : 3;
  }

 private:
  struct DoneOp {
    std::uint64_t started = 0;   // steady_usec() at begin()
    std::uint64_t finished = 0;  // steady_usec() at completion
    counter::Counter value;
  };

  /// Re-reads the peers file: resolves port-0 entries, adopts new ids.
  /// Never downgrades a resolved route (a port-0 line for a known peer just
  /// means the launcher has not filled it in yet).
  void reload_peers() {
    std::string err;
    auto parsed = read_peers(opt_.peers_file, &err);
    if (!parsed) return;  // transient rewrite race — retry next poll
    for (const auto& [id, ep] : *parsed) {
      if (id == opt_.id) continue;
      const bool known = all_ids_.contains(id);
      if (!known) {
        all_ids_.insert(id);
        if (ep.port == 0) unresolved_.insert(id);
      }
      if (ep.port != 0) {
        transport_.set_peer(id, ep);
        unresolved_.erase(id);
      }
    }
  }

  void drive_workload() {
    // Counter increments, strictly sequential: at most one in flight, and
    // an abort re-queues the same operation (every protocol user is a
    // self-stabilizing retry loop).
    if (pending_increments_ > 0 && !increment_in_flight_ &&
        !node_->increment().busy()) {
      // Set the flag before begin(): an increment refused mid-reconf runs
      // the callback synchronously, and the callback must win over the
      // begin() return value or the abort would latch the flag forever.
      increment_in_flight_ = true;
      const std::uint64_t started = steady_usec();
      const bool begun = node_->increment().begin(
          [this, started](std::optional<counter::Counter> c) {
            increment_in_flight_ = false;
            if (c) {
              if (pending_increments_ > 0) --pending_increments_;
              ++increments_done_;
              done_ops_.push_back(DoneOp{started, steady_usec(), *c});
              std::printf("INCREMENT_OK seqn=%llu\n",
                          static_cast<unsigned long long>(c->seqn));
            } else {
              ++increments_aborted_;
              std::printf("INCREMENT_ABORT\n");  // legal during reconf; retry
            }
            std::fflush(stdout);
          });
      if (!begun) increment_in_flight_ = false;
    }

    // Shared-memory register operations, same discipline.
    if (!shmem_queue_.empty() && !shmem_in_flight_ &&
        !node_->registers().busy()) {
      const auto [write, reg, salt] = shmem_queue_.front();
      shmem_in_flight_ = true;
      bool begun;
      // An aborted operation stays queued and is retried on a later lap
      // (reconfigurations legally abort in-flight quorum ops).
      auto complete = [this](bool ok) {
        shmem_in_flight_ = false;
        if (ok) {
          shmem_queue_.erase(shmem_queue_.begin());
          ++shmem_ok_;
        } else {
          ++shmem_failed_;
        }
      };
      if (write) {
        wire::Bytes payload;
        for (int i = 0; i < 8; ++i) {
          payload.push_back(
              static_cast<std::uint8_t>((salt + opt_.id) >> (8 * i) & 0xFF));
        }
        begun = node_->registers().write(
            reg, std::move(payload),
            [complete](bool ok, counter::Counter) { complete(ok); });
      } else {
        begun = node_->registers().read(
            reg, [complete](bool ok, const wire::Bytes&, counter::Counter) {
              complete(ok);
            });
      }
      if (!begun) shmem_in_flight_ = false;
    }
  }

  std::string handle_control(const scenario::ctl::Request& req) {
    namespace ctl = scenario::ctl;
    const auto& a = req.args;
    if (req.cmd == "STATUS") {
      const reconf::ConfigValue cfg = node_->recsa().get_config();
      std::ostringstream os;
      os << "OK id=" << opt_.id << " shard=" << transport_.config().shard
         << " t=" << transport_.now()
         << " abs=" << steady_usec()
         << " noreco=" << (node_->recsa().no_reco() ? 1 : 0)
         << " part=" << (node_->recsa().is_participant() ? 1 : 0)
         << " cfgtag=" << static_cast<int>(cfg.tag())
         << " cfg=" << (cfg.is_set() ? ctl::format_ids(cfg.ids()) : "-")
         << " cfgchanges=" << config_changes_
         << " trusted=" << ctl::format_ids(node_->failure_detector().trusted())
         << " incq=" << pending_increments_
         << " incdone=" << increments_done_
         << " incabort=" << increments_aborted_
         << " shmq=" << shmem_queue_.size() << " shmok=" << shmem_ok_
         << " shmfail=" << shmem_failed_
         << " sent=" << transport_.stats().sent
         << " recv=" << transport_.stats().received
         << " malformed=" << transport_.stats().dropped_malformed
         << " wrongshard=" << transport_.stats().dropped_wrong_shard
         << " filtin=" << transport_.stats().filtered_in
         << " filtout=" << transport_.stats().filtered_out
         << " syscalls=" << transport_.stats().send_syscalls +
                                transport_.stats().recv_syscalls
         << " batched=" << transport_.stats().batched_sends
         << " noroute=" << transport_.stats().no_route
         << " sendfail=" << transport_.stats().send_failures
         << " partial=" << transport_.stats().send_partial
         << " recverr=" << transport_.stats().recv_errors;
      if (auto* v = node_->vs()) {
        const vs::View& view = v->view();
        std::uint64_t vd = scenario::TraceRecorder::kFnvBasis;
        vd = scenario::TraceRecorder::mix(vd, view.id.seqn);
        vd = scenario::TraceRecorder::mix(vd, view.id.wid);
        for (NodeId m : view.set) vd = scenario::TraceRecorder::mix(vd, m);
        os << " vsmc=" << (v->status() == vs::Status::kMulticast ? 1 : 0)
           << " vsnull=" << (view.is_null() ? 1 : 0)
           << " vsnocrd=" << (v->no_coordinator() ? 1 : 0)
           << " vscrd=" << v->coordinator() << " vsview=" << vd;
      }
      return os.str();
    }
    if (req.cmd == "BLOCK" && a.size() == 1) {
      auto ids = ctl::parse_ids(a[0]);
      if (!ids) return "ERR bad id list";
      transport_.set_blocked(std::move(*ids));
      return "OK";
    }
    if (req.cmd == "PEER" && a.size() == 3) {
      net::UdpEndpoint ep;
      ep.host = a[1];
      ep.port = static_cast<std::uint16_t>(std::strtoul(a[2].c_str(),
                                                        nullptr, 10));
      in_addr probe{};
      if (::inet_pton(AF_INET, ep.host.c_str(), &probe) != 1) {
        return "ERR bad host";
      }
      const NodeId id =
          static_cast<NodeId>(std::strtoul(a[0].c_str(), nullptr, 10));
      transport_.set_peer(id, ep);
      all_ids_.insert(id);
      unresolved_.erase(id);
      return "OK";
    }
    if (req.cmd == "RELOAD" && a.empty()) {
      reload_peers();
      return "OK";
    }
    if (req.cmd == "INC" && a.size() == 1) {
      pending_increments_ += std::strtoull(a[0].c_str(), nullptr, 10);
      return "OK";
    }
    if (req.cmd == "OPS" && a.size() <= 1) {
      // Paged: "OPS <from>" replies ops [from, from+page) plus the total,
      // so the reply datagram stays bounded no matter how many operations
      // completed (the runner iterates until its cursor reaches total).
      constexpr std::size_t kOpsPerReply = 200;
      std::size_t from = 0;
      if (!a.empty()) from = std::strtoull(a[0].c_str(), nullptr, 10);
      std::ostringstream os;
      os << "OK total=" << done_ops_.size();
      const std::size_t end =
          std::min(done_ops_.size(), from + kOpsPerReply);
      for (std::size_t i = from; i < end; ++i) {
        const DoneOp& op = done_ops_[i];
        wire::Writer w;
        op.value.encode(w);
        os << " op=" << op.started << ':' << op.finished << ':'
           << ctl::hex_encode(w.take());
      }
      return os.str();
    }
    if (req.cmd == "SHMEMW" && a.size() == 2) {
      shmem_queue_.emplace_back(true, a[0],
                                std::strtoull(a[1].c_str(), nullptr, 10));
      return "OK";
    }
    if (req.cmd == "SHMEMR" && a.size() == 1) {
      shmem_queue_.emplace_back(false, a[0], 0);
      return "OK";
    }
    if (req.cmd == "CORRUPT" && a.size() == 1) {
      if (a[0] == "recsa") {
        node_->recsa().inject_corruption(corrupt_rng_, all_ids_);
        return "OK";
      }
      if (a[0] == "fd") {
        node_->failure_detector().inject_corruption(corrupt_rng_);
        return "OK";
      }
      return "ERR unknown component";
    }
    if (req.cmd == "CONF" && a.size() == 1) {
      auto ids = ctl::parse_ids(a[0]);
      if (!ids) return "ERR bad id list";
      node_->recsa().inject_config(opt_.id, reconf::ConfigValue::set(*ids));
      return "OK";
    }
    if (req.cmd == "PLANT_CTR" && a.size() == 1) {
      counter::Counter c;
      c.lbl = label::Label::next_label(opt_.id, std::vector<label::Label>{}, corrupt_rng_);
      c.seqn = std::strtoull(a[0].c_str(), nullptr, 10);
      c.wid = opt_.id;
      node_->counters().store().inject_max(opt_.id,
                                           counter::CounterPair::of(c));
      return "OK";
    }
    if (req.cmd == "RECMA" && a.size() == 2) {
      const bool no_maj = a[0] == "1";
      const bool need = a[1] == "1";
      for (NodeId other : all_ids_) {
        if (other != opt_.id) node_->recma().inject_flags(other, no_maj, need);
      }
      return "OK";
    }
    return "ERR unknown command";
  }

  Options opt_;
  IdSet all_ids_;
  net::UdpTransport transport_;
  Rng rng_;
  Rng corrupt_rng_;
  scenario::ctl::ControlServer control_;
  std::unique_ptr<node::Node> node_;
  IdSet unresolved_;

  bool converged_ = false;
  bool done_printed_ = false;
  std::uint64_t config_changes_ = 0;

  std::uint64_t pending_increments_ = 0;
  bool increment_in_flight_ = false;
  std::uint64_t increments_done_ = 0;
  std::uint64_t increments_aborted_ = 0;
  std::vector<DoneOp> done_ops_;

  std::vector<std::tuple<bool, std::string, std::uint64_t>> shmem_queue_;
  bool shmem_in_flight_ = false;
  std::uint64_t shmem_ok_ = 0;
  std::uint64_t shmem_failed_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--id" && i + 1 < argc) {
      opt.id = static_cast<NodeId>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--peers" && i + 1 < argc) {
      opt.peers_file = argv[++i];
    } else if (arg == "--port-file" && i + 1 < argc) {
      opt.port_file = argv[++i];
    } else if (arg == "--seconds" && i + 1 < argc) {
      opt.seconds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--increments" && i + 1 < argc) {
      opt.increments = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--tick-us" && i + 1 < argc) {
      opt.tick_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--retransmit-us" && i + 1 < argc) {
      opt.retransmit_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--ack-threshold" && i + 1 < argc) {
      opt.ack_threshold = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--shard" && i + 1 < argc) {
      opt.shard = static_cast<std::uint32_t>(
          std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--exhaust-bound" && i + 1 < argc) {
      opt.exhaust_bound = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--batch" && i + 1 < argc) {
      // A/B switch for the syscall-batching datapath; 1 = one syscall per
      // datagram (the pre-batching behavior), clamped by the transport.
      opt.batch = std::strtoull(argv[++i], nullptr, 10);
      if (opt.batch == 0) opt.batch = 1;
    } else if (arg == "--vs") {
      opt.enable_vs = true;
    } else if (arg == "--aggressive") {
      opt.aggressive = true;
    } else {
      return usage();
    }
  }
  if (opt.id == kNoNode || opt.peers_file.empty()) return usage();

  std::string err;
  auto peers = read_peers(opt.peers_file, &err);
  if (!peers) {
    std::fprintf(stderr, "%s\n", err.c_str());
    return 2;
  }
  if (peers->count(opt.id) == 0) {
    std::fprintf(stderr, "--id %u has no entry in '%s'\n", opt.id,
                 opt.peers_file.c_str());
    return 2;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  net::UdpTransportConfig tcfg;
  tcfg.self = opt.id;
  tcfg.peers = *peers;
  tcfg.shard = opt.shard;
  tcfg.batch = opt.batch;
  ssr::IdSet all_ids;
  for (const auto& [id, ep] : *peers) {
    (void)ep;
    all_ids.insert(id);
  }

  Daemon daemon(opt, std::move(tcfg), std::move(all_ids));
  return daemon.run();
}
