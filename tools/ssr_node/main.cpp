// ssr_node — one full-stack protocol node over real UDP sockets.
//
//   ssr_node --id N --peers FILE [--seconds S] [--increments K]
//            [--tick-us T] [--retransmit-us T] [--ack-threshold A] [--vs]
//
// FILE holds one "id host port" triple per line ('#' starts a comment);
// the entry matching --id is the local bind address. The daemon boots the
// node against every other entry and prints progress markers to stdout:
//
//   CONVERGED t=2.1s config={1,2,3}     noReco + the common proper config
//   INCREMENT_OK seqn=4                 one counter increment completed
//   SSR_NODE_DONE                       all goals met (stays up for peers)
//
// Exit status: 0 when the goals (convergence, plus --increments completed
// operations) were met — whether the deadline ran out or SIGTERM/SIGINT
// arrived first — and 3 when they were not.
//
// This is the real-deployment counterpart of harness::World: the identical
// node stack, parameterized only by the transport underneath it.

#include <arpa/inet.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "net/udp_transport.hpp"
#include "node/node.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct Options {
  ssr::NodeId id = ssr::kNoNode;
  std::string peers_file;
  std::uint64_t seconds = 60;
  std::uint64_t increments = 0;
  std::uint64_t tick_us = 5000;
  std::uint64_t retransmit_us = 2000;
  std::size_t ack_threshold = 3;
  bool enable_vs = false;
};

int usage() {
  std::fprintf(stderr,
               "usage: ssr_node --id N --peers FILE [--seconds S=60]\n"
               "                [--increments K=0] [--tick-us T=5000]\n"
               "                [--retransmit-us T=2000] [--ack-threshold A=3]"
               " [--vs]\n");
  return 2;
}

std::string format_ids(const ssr::IdSet& ids) {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (ssr::NodeId id : ids) {
    if (!first) os << ',';
    os << id;
    first = false;
  }
  os << '}';
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr;

  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--id" && i + 1 < argc) {
      opt.id = static_cast<NodeId>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--peers" && i + 1 < argc) {
      opt.peers_file = argv[++i];
    } else if (arg == "--seconds" && i + 1 < argc) {
      opt.seconds = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--increments" && i + 1 < argc) {
      opt.increments = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--tick-us" && i + 1 < argc) {
      opt.tick_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--retransmit-us" && i + 1 < argc) {
      opt.retransmit_us = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--ack-threshold" && i + 1 < argc) {
      opt.ack_threshold = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--vs") {
      opt.enable_vs = true;
    } else {
      return usage();
    }
  }
  if (opt.id == kNoNode || opt.peers_file.empty()) return usage();

  net::UdpTransportConfig tcfg;
  tcfg.self = opt.id;
  IdSet all_ids;
  {
    std::ifstream in(opt.peers_file);
    if (!in) {
      std::fprintf(stderr, "cannot open peers file '%s'\n",
                   opt.peers_file.c_str());
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      std::istringstream ls(line);
      std::uint32_t id = 0;
      net::UdpEndpoint ep;
      if (!(ls >> id >> ep.host >> ep.port)) continue;  // blank / comment
      // Reject non-numeric hosts here with a usage error; inside the
      // transport an unresolvable address is an assertion (API misuse).
      in_addr probe{};
      if (::inet_pton(AF_INET, ep.host.c_str(), &probe) != 1) {
        std::fprintf(stderr,
                     "peers file '%s': host '%s' for node %u is not a "
                     "numeric IPv4 address\n",
                     opt.peers_file.c_str(), ep.host.c_str(), id);
        return 2;
      }
      tcfg.peers[id] = ep;
      all_ids.insert(id);
    }
  }
  if (tcfg.peers.count(opt.id) == 0) {
    std::fprintf(stderr, "--id %u has no entry in '%s'\n", opt.id,
                 opt.peers_file.c_str());
    return 2;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  net::UdpTransport transport(tcfg);

  node::NodeConfig ncfg;
  ncfg.enable_vs = opt.enable_vs;
  ncfg.tick_period = opt.tick_us;
  ncfg.mux.link.retransmit_period = opt.retransmit_us;
  // Real sockets have no fixed channel capacity; the threshold trades
  // round (heartbeat) rate against duplicate tolerance.
  ncfg.mux.link.ack_threshold = opt.ack_threshold;
  ncfg.mux.link.clean_threshold = opt.ack_threshold;

  node::Node node(transport, opt.id, ncfg, Rng(0x55D9 + opt.id));
  IdSet seed_peers = all_ids;
  seed_peers.erase(opt.id);
  node.start(seed_peers);
  std::printf("SSR_NODE_START id=%u port=%u peers=%s\n", opt.id,
              transport.local_port(), format_ids(seed_peers).c_str());
  std::fflush(stdout);

  const SimTime deadline = opt.seconds * kSec;
  bool converged = false;
  bool done_printed = false;
  bool increment_in_flight = false;
  std::uint64_t increments_done = 0;
  SimTime next_status = 5 * kSec;

  while (!g_stop && transport.now() < deadline) {
    transport.run_for(50 * kMsec);
    const double t = static_cast<double>(transport.now()) / kSec;

    const reconf::ConfigValue cfg = node.recsa().get_config();
    if (!converged && node.recsa().no_reco() && cfg.is_proper() &&
        cfg.ids() == all_ids) {
      converged = true;
      std::printf("CONVERGED t=%.1fs config=%s\n", t,
                  format_ids(cfg.ids()).c_str());
      std::fflush(stdout);
    }

    if (converged && increments_done < opt.increments &&
        !increment_in_flight && !node.increment().busy()) {
      // Set the flag before begin(): an increment refused mid-reconf runs
      // the callback synchronously, and the callback must win over the
      // begin() return value or the abort would latch the flag forever.
      increment_in_flight = true;
      const bool begun = node.increment().begin(
          [&](std::optional<counter::Counter> c) {
            increment_in_flight = false;
            if (c) {
              ++increments_done;
              std::printf("INCREMENT_OK seqn=%llu\n",
                          static_cast<unsigned long long>(c->seqn));
            } else {
              std::printf("INCREMENT_ABORT\n");  // legal during reconf; retry
            }
            std::fflush(stdout);
          });
      if (!begun) increment_in_flight = false;
    }

    if (converged && increments_done >= opt.increments && !done_printed) {
      done_printed = true;
      std::printf("SSR_NODE_DONE\n");
      std::fflush(stdout);
    }

    if (transport.now() >= next_status) {
      next_status += 5 * kSec;
      std::printf("STATUS t=%.1fs trusted=%zu config=%s sent=%llu recv=%llu\n",
                  t, node.failure_detector().trusted().size(),
                  format_ids(cfg.ids()).c_str(),
                  static_cast<unsigned long long>(transport.stats().sent),
                  static_cast<unsigned long long>(transport.stats().received));
      std::fflush(stdout);
    }
  }

  std::printf("SSR_NODE_EXIT ok=%d\n", done_printed ? 1 : 0);
  std::fflush(stdout);
  return done_printed ? 0 : 3;
}
