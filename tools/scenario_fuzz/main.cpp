// scenario_fuzz — adversarial ScenarioSpec fuzzing with shrinking.
//
//   scenario_fuzz [--seed N] [--cases K] [--jobs N] [--out DIR]
//                 [--budget-sec S] [--no-adversary] [--shrink-runs M]
//                 [--print-specs]
//
// Generates (spec, seed) cases that splice and perturb the scenario
// library — fault timing, churn order, partition shape, workload mix —
// runs them on a SweepRunner worker pool, and greedily shrinks every
// failure to a minimal repro. A campaign is a pure function of --seed:
// the same seed re-finds the same counterexamples at any --jobs.
//
//   --seed N         master seed (default 1); case i is (seed, i)-pure
//   --cases K        cases to run (default 50)
//   --jobs N         sweep worker threads (default 1)
//   --out DIR        save each counterexample as DIR/cex-<i>.spec (shrunk),
//                    DIR/cex-<i>.orig.spec, and DIR/cex-<i>.trace (the
//                    shrunk repro's trace stream) — the CI artifact flow
//   --budget-sec S   wall-clock cap: cases run in batches and the campaign
//                    stops starting new batches once S seconds elapsed
//                    (a budget cut changes how MANY cases run, never what
//                    any case does)
//   --batch K        cases per budget batch (default: jobs, min 8)
//   --shrink-runs M  re-execution budget per shrink (default 250)
//   --no-adversary   generate only fair-scheduler specs
//   --print-specs    dump every generated spec (debugging the generator)
//
// Exit status: 0 when every case passed, 1 when any counterexample was
// found, 2 on usage errors.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/fuzz.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec_io.hpp"

namespace {

using namespace ssr;
using namespace ssr::scenario;

struct CliOptions {
  FuzzOptions fuzz;
  std::string out_dir;
  double budget_sec = 0;  // 0 = no wall-clock cap
  std::size_t batch = 0;  // 0 = derive from jobs
  bool print_specs = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: scenario_fuzz [options]\n"
      "  --seed N         master seed (default 1)\n"
      "  --cases K        cases to run (default 50)\n"
      "  --jobs N         sweep worker threads (default 1)\n"
      "  --out DIR        save counterexample spec + trace files into DIR\n"
      "  --budget-sec S   stop starting new batches after S wall seconds\n"
      "  --batch K        cases per budget batch (default: jobs, min 8)\n"
      "  --shrink-runs M  shrink re-execution budget (default 250)\n"
      "  --no-adversary   generate only fair-scheduler specs\n"
      "  --print-specs    dump every generated spec\n");
  return 2;
}

/// Saves one counterexample triple (shrunk spec, original spec, trace of
/// the shrunk repro). Returns false on any I/O failure.
bool save_counterexample(const std::string& dir, std::uint64_t index,
                         const Counterexample& cex) {
  const std::string base = dir + "/cex-" + std::to_string(index);
  if (!save_spec_file(base + ".spec", cex.spec)) return false;
  if (!save_spec_file(base + ".orig.spec", cex.original)) return false;
  // Re-run the shrunk spec to capture its trace stream (run_scenario
  // reports only the hash; the artifact wants the replayable events).
  ScenarioRunner runner(cex.spec, cex.run_seed);
  runner.run();
  std::ofstream trace(base + ".trace");
  if (!trace) return false;
  runner.trace().save(trace);
  std::printf("  saved %s.spec / .orig.spec / .trace\n", base.c_str());
  return static_cast<bool>(trace);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }
  const int nargs = static_cast<int>(args.size());
  for (int i = 0; i < nargs; ++i) {
    const std::string& arg = args[i];
    if (arg == "--seed" && i + 1 < nargs) {
      cli.fuzz.seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (arg == "--cases" && i + 1 < nargs) {
      cli.fuzz.cases = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (arg == "--jobs" && i + 1 < nargs) {
      cli.fuzz.jobs = std::strtoull(args[++i].c_str(), nullptr, 10);
      if (cli.fuzz.jobs == 0) cli.fuzz.jobs = 1;
    } else if (arg == "--out" && i + 1 < nargs) {
      cli.out_dir = args[++i];
    } else if (arg == "--budget-sec" && i + 1 < nargs) {
      cli.budget_sec = std::strtod(args[++i].c_str(), nullptr);
    } else if (arg == "--batch" && i + 1 < nargs) {
      cli.batch = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (arg == "--shrink-runs" && i + 1 < nargs) {
      cli.fuzz.max_shrink_runs = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (arg == "--no-adversary") {
      cli.fuzz.allow_adversarial = false;
    } else if (arg == "--print-specs") {
      cli.print_specs = true;
    } else {
      return usage();
    }
  }
  if (cli.fuzz.cases == 0) return 0;

  Fuzzer fuzzer(cli.fuzz);

  if (cli.print_specs) {
    for (std::uint64_t i = 0; i < cli.fuzz.cases; ++i) {
      std::printf("# case %llu, run seed %llu\n%s\n",
                  static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(fuzzer.run_seed(i)),
                  spec_to_string(fuzzer.generate(i)).c_str());
    }
    std::fflush(stdout);
  }

  const std::size_t batch =
      cli.batch > 0 ? cli.batch : std::max<std::size_t>(cli.fuzz.jobs, 8);
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_sec = [&start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::size_t cases_run = 0;
  std::size_t failures = 0;
  std::uint64_t next_index = 0;
  bool io_ok = true;
  while (next_index < cli.fuzz.cases) {
    if (cli.budget_sec > 0 && cases_run > 0 && elapsed_sec() > cli.budget_sec) {
      std::printf("budget: %.0fs elapsed, stopping after case %llu of %zu\n",
                  elapsed_sec(), static_cast<unsigned long long>(next_index),
                  cli.fuzz.cases);
      break;
    }
    const std::size_t count = static_cast<std::size_t>(
        std::min<std::uint64_t>(batch, cli.fuzz.cases - next_index));
    FuzzReport report = fuzzer.run_range(next_index, count);
    cases_run += report.cases_run;
    failures += report.failures;
    std::printf("batch [%llu, %llu): %zu ok, %zu failing (%.0fs elapsed)\n",
                static_cast<unsigned long long>(next_index),
                static_cast<unsigned long long>(next_index + count),
                report.cases_run - report.failures, report.failures,
                elapsed_sec());
    std::fflush(stdout);
    for (std::size_t i = 0; i < report.counterexamples.size(); ++i) {
      const Counterexample& cex = report.counterexamples[i];
      std::printf("counterexample: %s seed=%llu signature=\"%s\" "
                  "(shrunk in %zu runs)\n",
                  cex.spec.name.c_str(),
                  static_cast<unsigned long long>(cex.run_seed),
                  cex.signature.c_str(), cex.shrink_runs);
      std::printf("%s", spec_to_string(cex.spec).c_str());
      if (!cli.out_dir.empty()) {
        // Index by the case number so re-runs overwrite deterministically.
        std::uint64_t case_index = next_index;
        std::size_t seen = 0;
        for (std::size_t j = 0; j < report.results.size(); ++j) {
          if (!report.results[j].ok && seen++ == i) {
            case_index = next_index + j;
            break;
          }
        }
        io_ok = save_counterexample(cli.out_dir, case_index, cex) && io_ok;
      }
    }
    next_index += count;
  }

  std::printf("fuzz: seed=%llu cases=%zu failures=%zu jobs=%zu wall=%.1fs\n",
              static_cast<unsigned long long>(cli.fuzz.seed), cases_run,
              failures, cli.fuzz.jobs, elapsed_sec());
  if (!io_ok) {
    std::fprintf(stderr, "failed to save one or more counterexamples\n");
    return 2;
  }
  return failures == 0 ? 0 : 1;
}
