#!/usr/bin/env python3
"""ssr_lint — domain-specific static checks for the ssr codebase.

Three rules that generic tooling cannot express:

  hot-path-alloc     Designated hot-path files (the simulator event loop,
                     the wire codec, the dlink send/decode paths) must not
                     introduce heap allocation: no `new`/`malloc`, no
                     `std::function`, no growing-container calls. This is
                     the compile-time complement of the counting-operator-new
                     benches (BM_ChannelSendAlloc et al.): the bench proves
                     the steady state allocates zero, the lint stops a new
                     allocation from being written in the first place.
                     Deliberate cold-path or amortized allocations carry an
                     `ssr-lint: allow(hot-path-alloc)` annotation naming the
                     justification, so every allocation in a hot file is
                     explicitly accounted for.

  unchecked-decode   Every function that constructs a `wire::Reader` over a
                     raw byte buffer must consult `.ok()` before its result
                     escapes. Sub-decoders taking `wire::Reader&` are exempt
                     by contract (the top-level decoder checks once), but a
                     top-level decode that never looks at ok() is a bug
                     waiting for a corrupted datagram.

  memo-invalidate    Version-memoized derived views (RecSA's no_reco() /
                     chs_config()) are only correct if every mutation of the
                     underlying state bumps the version. Any function that
                     mutates a guarded field must also mention the
                     invalidation hook (or route the write through an
                     accessor that does).

Zero dependencies beyond the Python standard library; config lives in
ssr_lint.json next to this script (overridable with --config, which the
fixture tests use).

Exit status: 0 clean, 1 violations found, 2 bad invocation/config.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import re
import sys

SUPPRESS_RE = re.compile(r"ssr-lint:\s*allow\(([\w\-, ]+)\)")

ALL_RULES = ("hot-path-alloc", "unchecked-decode", "memo-invalidate")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# C++-light lexing: blank out comments and string/char literals while keeping
# the byte offsets (and therefore line numbers) of everything else intact.
# ---------------------------------------------------------------------------

def strip_comments_and_strings(text):
    out = list(text)
    i, n = 0, len(text)
    CODE, LINE_C, BLOCK_C, STR, CHAR = range(5)
    state = CODE
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == CODE:
            if c == "/" and nxt == "/":
                state = LINE_C
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = BLOCK_C
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == '"':
                state = STR
                i += 1
                continue
            if c == "'":
                state = CHAR
                i += 1
                continue
            i += 1
        elif state == LINE_C:
            if c == "\n":
                state = CODE
            elif c != "\t":
                out[i] = " "
            i += 1
        elif state == BLOCK_C:
            if c == "*" and nxt == "/":
                state = CODE
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c not in "\n\t":
                out[i] = " "
            i += 1
        else:  # STR or CHAR
            quote = '"' if state == STR else "'"
            if c == "\\" and i + 1 < n:
                out[i] = out[i + 1] = " "
                i += 2
                continue
            if c == quote:
                state = CODE
            elif c != "\n":
                out[i] = " "
            i += 1
    return "".join(out)


def line_starts(text):
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)
    return starts


def line_of(starts, idx):
    lo, hi = 0, len(starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if starts[mid] <= idx:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1  # 1-indexed


# ---------------------------------------------------------------------------
# Suppression annotations
# ---------------------------------------------------------------------------

def collect_suppressions(raw_lines):
    """Maps 1-indexed line numbers to the set of rules allowed there.

    An annotation on a line with code applies to that line; an annotation on
    a comment-only line applies to the next line with code.
    """
    allowed = {}
    pending = set()
    for lineno, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        rules = set()
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            unknown = rules - set(ALL_RULES)
            if unknown:
                raise SystemExit(
                    f"error: line {lineno}: unknown ssr-lint rule(s) "
                    f"{sorted(unknown)} in allow() annotation")
        code = line.split("//", 1)[0].strip()
        if rules and not code:
            pending |= rules  # comment-only line: applies to the next code line
            continue
        here = set(rules)
        if code and pending:
            here |= pending
            pending = set()
        if here:
            allowed[lineno] = allowed.get(lineno, set()) | here
    return allowed


# ---------------------------------------------------------------------------
# Function segmentation (brace matching over the cleaned text)
# ---------------------------------------------------------------------------

_FUNC_TAIL = re.compile(
    r"\)\s*(?:const|noexcept|override|final|mutable|->\s*[\w:<>,&*\s]+)*\s*$")
_CTOR_INIT_TAIL = re.compile(r"\)\s*:\s*[^;{}]*$", re.S)
_NAMESPACE_TAIL = re.compile(r"namespace\s*[\w:]*\s*$")
_TYPE_TAIL = re.compile(r"\b(?:struct|class|union|enum)\b[^;{}()]*$", re.S)
_NAME_BEFORE_PAREN = re.compile(r"([\w~][\w:~]*)\s*\($")


def _function_name(clean, open_idx):
    """Best-effort name of the function whose ')' precedes clean[open_idx]."""
    tail = clean[max(0, open_idx - 600):open_idx].rstrip()
    # Strip a constructor initializer list: everything after ') :'.
    m = _CTOR_INIT_TAIL.search(tail)
    if m:
        tail = tail[:m.start() + 1]
    # Walk back over the parameter list to its opening paren.
    depth = 0
    i = len(tail) - 1
    while i >= 0:
        if tail[i] == ")":
            depth += 1
        elif tail[i] == "(":
            depth -= 1
            if depth == 0:
                break
        i -= 1
    if i <= 0:
        return "<anon>"
    m = _NAME_BEFORE_PAREN.search(tail[:i + 1])
    return m.group(1) if m else "<anon>"


def find_functions(clean):
    """Yields (name, body_start_idx, body_end_idx) for every function body.

    Namespaces and type bodies are transparent; braces inside a function
    (lambdas included) attribute to the enclosing function.
    """
    functions = []
    stack = []  # entries: (kind, open_idx, name)
    in_function = 0
    for i, c in enumerate(clean):
        if c == "{":
            tail = clean[max(0, i - 600):i].rstrip()
            if in_function:
                kind = "inner"
            elif _NAMESPACE_TAIL.search(tail):
                kind = "namespace"
            elif _TYPE_TAIL.search(tail):
                kind = "type"
            elif _FUNC_TAIL.search(tail) or _CTOR_INIT_TAIL.search(tail):
                kind = "function"
            else:
                kind = "other"
            name = _function_name(clean, i) if kind == "function" else ""
            stack.append((kind, i, name))
            if kind == "function":
                in_function += 1
        elif c == "}":
            if not stack:
                continue  # unbalanced; stay permissive
            kind, open_idx, name = stack.pop()
            if kind == "function":
                in_function -= 1
                functions.append((name, open_idx + 1, i))
    return functions


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

HOT_PATTERNS = [
    (re.compile(r"(?<!operator )\bnew\b"), "operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc|strdup)\s*\("), "C allocation"),
    (re.compile(r"\bstd::function\b"), "std::function (type-erased closure)"),
    (re.compile(r"\bstd::make_(?:shared|unique)\b"), "heap-owning factory"),
    (re.compile(
        r"\.(?:push_back|emplace_back|emplace_front|push_front|emplace|"
        r"resize|insert|append|assign)\s*\("),
     "growing-container call"),
]

_READER_CTOR = re.compile(r"\bwire::Reader\s+(\w+)\s*[({]")
_OK_CALL = re.compile(r"\.\s*ok\s*\(")


def check_hot_path(relpath, clean, starts, allowed, out):
    for pat, what in HOT_PATTERNS:
        for m in pat.finditer(clean):
            lineno = line_of(starts, m.start())
            if "hot-path-alloc" in allowed.get(lineno, ()):
                continue
            out.append(Violation(
                relpath, lineno, "hot-path-alloc",
                f"{what} in a designated hot-path file; move it off the hot "
                f"path or justify with an "
                f"'ssr-lint: allow(hot-path-alloc)' annotation"))


def check_unchecked_decode(relpath, clean, starts, allowed, out):
    for name, b0, b1 in find_functions(clean):
        body = clean[b0:b1]
        for m in _READER_CTOR.finditer(body):
            lineno = line_of(starts, b0 + m.start())
            if "unchecked-decode" in allowed.get(lineno, ()):
                continue
            if _OK_CALL.search(body):
                continue
            out.append(Violation(
                relpath, lineno, "unchecked-decode",
                f"function '{name}' constructs wire::Reader "
                f"'{m.group(1)}' but never checks .ok(); a corrupted "
                f"buffer would be consumed as valid data"))


def check_memo_invalidate(relpath, clean, starts, allowed, rule_cfg, out):
    mutator_pats = []
    for field in rule_cfg["fields"]:
        f = re.escape(field)
        mutator_pats.append((field, re.compile(
            rf"\b{f}\s*=(?!=)"              # assignment (not comparison)
            rf"|\b{f}\s*\["                 # map/vector operator[] write
            rf"|\b{f}\.(?:insert|erase|clear|push_back|emplace)\s*\(")))
    invalidate_pats = [re.compile(tok) for tok in rule_cfg["invalidate"]]
    hook_names = ", ".join(rule_cfg["invalidate"])
    for name, b0, b1 in find_functions(clean):
        body = clean[b0:b1]
        if any(p.search(body) for p in invalidate_pats):
            continue
        for field, pat in mutator_pats:
            m = pat.search(body)
            if not m:
                continue
            lineno = line_of(starts, b0 + m.start())
            if "memo-invalidate" in allowed.get(lineno, ()):
                continue
            out.append(Violation(
                relpath, lineno, "memo-invalidate",
                f"function '{name}' mutates memo-guarded state "
                f"'{field}' without invalidating the derived-view cache "
                f"(expected one of: {hook_names})"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def match_any(relpath, globs):
    return any(fnmatch.fnmatch(relpath, g) for g in globs)


def lint_file(root, relpath, cfg):
    path = os.path.join(root, relpath)
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        raise SystemExit(f"error: cannot read {path}: {e}")
    raw_lines = text.splitlines()
    allowed = collect_suppressions(raw_lines)
    clean = strip_comments_and_strings(text)
    starts = line_starts(clean)
    out = []
    if match_any(relpath, cfg["hot_path"]["files"]):
        check_hot_path(relpath, clean, starts, allowed, out)
    if match_any(relpath, cfg["decode"]["files"]):
        check_unchecked_decode(relpath, clean, starts, allowed, out)
    for rule_cfg in cfg.get("memo", []):
        if relpath == rule_cfg["file"] or match_any(relpath, [rule_cfg["file"]]):
            check_memo_invalidate(relpath, clean, starts, allowed, rule_cfg, out)
    return out


def target_files(root, cfg):
    wanted = set()
    globs = set(cfg["hot_path"]["files"]) | set(cfg["decode"]["files"])
    globs |= {m["file"] for m in cfg.get("memo", [])}
    skip_dirs = set(cfg.get("skip_dirs", []))
    for dirpath, dirnames, filenames in os.walk(root):
        rel = os.path.relpath(dirpath, root)
        dirnames[:] = [
            d for d in dirnames
            if not d.startswith(".")
            and os.path.normpath(os.path.join(rel, d)) not in skip_dirs
            and d not in skip_dirs]
        for fn in filenames:
            if not fn.endswith((".cpp", ".hpp", ".cc", ".h")):
                continue
            relpath = os.path.normpath(os.path.join(rel, fn))
            if match_any(relpath, list(globs)):
                wanted.add(relpath)
    return sorted(wanted)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repository root (default: two levels above this "
                         "script)")
    ap.add_argument("--config", default=None,
                    help="lint config JSON (default: ssr_lint.json next to "
                         "this script)")
    ap.add_argument("--list-files", action="store_true",
                    help="print the files the config selects and exit")
    ap.add_argument("files", nargs="*",
                    help="specific files (relative to --root) instead of the "
                         "configured sweep")
    args = ap.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    root = os.path.abspath(args.root or os.path.join(script_dir, "..", ".."))
    config_path = args.config or os.path.join(script_dir, "ssr_lint.json")
    try:
        with open(config_path, encoding="utf-8") as f:
            cfg = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot load config {config_path}: {e}", file=sys.stderr)
        return 2

    files = args.files or target_files(root, cfg)
    if args.list_files:
        print("\n".join(files))
        return 0

    violations = []
    for relpath in files:
        violations.extend(lint_file(root, relpath, cfg))
    for v in violations:
        print(v)
    if violations:
        print(f"ssr_lint: {len(violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"ssr_lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
