// Fixture: the clean twin of memo_bad.cpp — every mutation path bumps the
// version (directly or through the record() accessor), so the memoized
// view can never serve a stale answer.
#include <cstdint>
#include <map>

namespace fixture {

class Memoized {
 public:
  void set_entry(int id, int value) {
    record(id) = value;  // routed through the bumping accessor
  }

  void clear_trusted() {
    ++state_version_;
    fd_self_.clear();
  }

  bool view() const {
    if (view_version_ == state_version_) return view_value_;
    view_value_ = records_.empty();
    view_version_ = state_version_;
    return view_value_;
  }

 private:
  int& record(int id) {
    ++state_version_;
    return records_[id];
  }

  std::map<int, int> records_;
  std::map<int, int> fd_self_;
  std::uint64_t state_version_ = 0;
  mutable std::uint64_t view_version_ = ~0ULL;
  mutable bool view_value_ = false;
};

}  // namespace fixture
