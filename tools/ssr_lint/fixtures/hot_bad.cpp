// Fixture: every hot-path-alloc violation class, one per line group.
// The twin hot_good.cpp performs the same work without tripping the rule.
#include <cstdlib>
#include <functional>
#include <vector>

namespace fixture {

struct Event {
  int when = 0;
};

int* leak_an_int() {
  return new int(7);  // violation: operator new
}

void* c_alloc(std::size_t n) {
  return std::malloc(n);  // violation: malloc
}

std::function<void()> g_callback;  // violation: std::function

void grow(std::vector<Event>& events, Event e) {
  events.push_back(e);  // violation: growing-container call
}

}  // namespace fixture
