// Fixture: a version-memoized view whose underlying state is mutated
// without bumping the version — the cached answer silently goes stale.
#include <cstdint>
#include <map>

namespace fixture {

class Memoized {
 public:
  void set_entry(int id, int value) {
    records_[id] = value;  // violation: no state_version_ bump
  }

  void clear_trusted() {
    fd_self_.clear();  // violation: no state_version_ bump
  }

  bool view() const {
    if (view_version_ == state_version_) return view_value_;
    view_value_ = records_.empty();
    view_version_ = state_version_;
    return view_value_;
  }

 private:
  std::map<int, int> records_;
  std::map<int, int> fd_self_;
  std::uint64_t state_version_ = 0;
  mutable std::uint64_t view_version_ = ~0ULL;
  mutable bool view_value_ = false;
};

}  // namespace fixture
