// Fixture: the clean twin of decode_bad.cpp — same decode, but the
// function checks ok() before the result escapes. Sub-decoders that take
// wire::Reader& are exempt by contract (the top-level decode checks once).
#include <cstdint>

namespace wire {
using Bytes = int;
struct Reader {
  explicit Reader(const Bytes&) {}
  std::uint32_t u32() { return 0; }
  bool ok() const { return true; }
};
}  // namespace wire

namespace fixture {

struct Msg {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  bool valid = false;
};

std::uint32_t decode_field(wire::Reader& r) {  // sub-decoder: exempt
  return r.u32();
}

Msg decode_checked(const wire::Bytes& raw) {
  wire::Reader r(raw);
  Msg m;
  m.a = decode_field(r);
  m.b = decode_field(r);
  m.valid = r.ok();
  return m;
}

}  // namespace fixture
