// Fixture: the clean twin of hot_bad.cpp. Pre-sized storage, function
// pointers instead of std::function, and one annotated (justified)
// amortized growth. Mentions of new/malloc in comments and strings must
// not fire either: "new std::function malloc push_back".
#include <cstdlib>
#include <vector>

namespace fixture {

struct Event {
  int when = 0;
};

using Callback = void (*)();  // plain function pointer: no type erasure
Callback g_callback = nullptr;

void fill(std::vector<Event>& events, Event e, std::size_t n) {
  // Writes into pre-sized storage; the one growth is justified inline.
  // ssr-lint: allow(hot-path-alloc): warm-up growth, capacity sticks.
  events.resize(n);
  for (std::size_t i = 0; i < n; ++i) events[i] = e;
}

const char* describe() { return "calls new and malloc all day"; }

}  // namespace fixture
