// Fixture: a top-level decoder that constructs a wire::Reader but never
// consults ok() — a corrupted buffer flows straight into the result.
#include <cstdint>

namespace wire {
using Bytes = int;
struct Reader {
  explicit Reader(const Bytes&) {}
  std::uint32_t u32() { return 0; }
  bool ok() const { return true; }
};
}  // namespace wire

namespace fixture {

struct Msg {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

Msg decode_unchecked(const wire::Bytes& raw) {
  wire::Reader r(raw);  // violation: result escapes without an ok() check
  Msg m;
  m.a = r.u32();
  m.b = r.u32();
  return m;
}

}  // namespace fixture
