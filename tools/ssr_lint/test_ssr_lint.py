#!/usr/bin/env python3
"""Fixture tests for ssr_lint: every rule must flag its known-bad fixture
and pass the clean twin. Run directly or via ctest (lint_selftest)."""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import ssr_lint  # noqa: E402

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
CONFIG = os.path.join(FIXTURES, "fixtures.json")


def run_lint(*files):
    """Returns (exit_code, violations) for the given fixture files."""
    import json
    with open(CONFIG, encoding="utf-8") as f:
        cfg = json.load(f)
    out = []
    for relpath in files:
        out.extend(ssr_lint.lint_file(FIXTURES, relpath, cfg))
    return out


class HotPathAllocRule(unittest.TestCase):
    def test_flags_every_violation_class(self):
        violations = run_lint("hot_bad.cpp")
        rules = {v.rule for v in violations}
        self.assertEqual(rules, {"hot-path-alloc"})
        messages = "\n".join(v.message for v in violations)
        self.assertIn("operator new", messages)
        self.assertIn("C allocation", messages)
        self.assertIn("std::function", messages)
        self.assertIn("growing-container", messages)
        self.assertEqual(len(violations), 4)

    def test_clean_twin_passes(self):
        self.assertEqual(run_lint("hot_good.cpp"), [])

    def test_comments_and_strings_do_not_fire(self):
        # hot_good.cpp mentions new/malloc/std::function/push_back in a
        # comment and a string literal; covered by the clean-twin test, but
        # assert the reason explicitly: stripping removed them.
        with open(os.path.join(FIXTURES, "hot_good.cpp")) as f:
            text = f.read()
        self.assertIn("new std::function malloc push_back", text)
        self.assertEqual(run_lint("hot_good.cpp"), [])

    def test_annotation_must_name_a_real_rule(self):
        with self.assertRaises(SystemExit):
            ssr_lint.collect_suppressions(
                ["int x;  // ssr-lint: allow(no-such-rule)"])


class UncheckedDecodeRule(unittest.TestCase):
    def test_flags_unchecked_reader(self):
        violations = run_lint("decode_bad.cpp")
        self.assertEqual(len(violations), 1)
        v = violations[0]
        self.assertEqual(v.rule, "unchecked-decode")
        self.assertIn("decode_unchecked", v.message)
        self.assertIn("never checks .ok()", v.message)

    def test_checked_twin_and_subdecoder_pass(self):
        self.assertEqual(run_lint("decode_good.cpp"), [])


class MemoInvalidateRule(unittest.TestCase):
    def test_flags_unbumped_mutations(self):
        violations = run_lint("memo_bad.cpp")
        self.assertEqual({v.rule for v in violations}, {"memo-invalidate"})
        fields = "\n".join(v.message for v in violations)
        self.assertIn("records_", fields)
        self.assertIn("fd_self_", fields)
        self.assertEqual(len(violations), 2)

    def test_bumping_twin_passes(self):
        self.assertEqual(run_lint("memo_good.cpp"), [])


class RepoIsClean(unittest.TestCase):
    def test_whole_repo_lints_clean(self):
        # The acceptance gate: the shipped config over the real tree.
        root = os.path.abspath(os.path.join(FIXTURES, "..", "..", ".."))
        rc = ssr_lint.main(["--root", root])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main(verbosity=2)
